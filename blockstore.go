package realloc

import (
	"realloc/internal/arena"
	"realloc/internal/btl"
	"realloc/internal/telemetry"
)

// BlockStore is a crash-consistent database block store: logical block
// names translate to physical extents managed by a checkpointed
// cost-oblivious reallocator. Moving a block updates the in-memory
// translation map; the durable copy is written at checkpoints, and space
// freed since the last checkpoint is never rewritten — so recovery always
// finds intact data at the addresses the durable map records.
type BlockStore struct {
	inner *btl.Store
}

// BlockStoreOption configures NewBlockStore.
type BlockStoreOption func(*btl.Config)

// BlockStoreEpsilon sets the footprint slack (default 0.25).
func BlockStoreEpsilon(eps float64) BlockStoreOption {
	return func(c *btl.Config) { c.Epsilon = eps }
}

// BlockStoreDeamortized selects the deamortized reallocator, bounding the
// work any single block write performs.
func BlockStoreDeamortized() BlockStoreOption {
	return func(c *btl.Config) { c.Deamortized = true }
}

// BlockStoreBackend selects the payload data backend (default Metered).
// With a real backend, Put stores each block's bytes at its physical
// extent, Get reads them back, and Recover verifies every durable
// block's payload checksum against the raw cells that survived the
// crash.
func BlockStoreBackend(b Backend) BlockStoreOption {
	return func(c *btl.Config) { c.Backend = arena.Kind(b) }
}

// BlockStoreDir selects durable mode: the store writes real media in
// dir — a file-backed (mmap where available) payload arena synced at
// every checkpoint plus a write-ahead log of every placement. A store
// created with NewBlockStore truncates any state in dir; use
// OpenBlockStore to recover it instead. In durable mode Crash/Recover
// model a machine reboot (replaying the log against the surviving
// arena image), and BlockStoreBackend is ignored — payloads always
// live on media.
func BlockStoreDir(dir string) BlockStoreOption {
	return func(c *btl.Config) { c.Dir = dir }
}

// BlockStoreTelemetry arms durability telemetry: WAL group-fsync
// latencies and recovery durations land in the registry's shard-0 set
// (exported like every other histogram through the registry's
// snapshot/Prometheus surfaces).
func BlockStoreTelemetry(reg *telemetry.Registry) BlockStoreOption {
	return func(c *btl.Config) { c.Telemetry = reg.Shard(0) }
}

// BlockStoreRecovery reports what OpenBlockStore (or Recover) rebuilt.
type BlockStoreRecovery struct {
	// Recovered is the number of blocks reloaded from the last durable
	// checkpoint.
	Recovered int
	// Seq is the checkpoint sequence number recovery landed on.
	Seq uint64
	// WALTail is how many torn/uncheckpointed tail records were
	// truncated from the write-ahead log.
	WALTail int
}

// OpenBlockStore recovers a durable block store from the media a
// previous BlockStoreDir store left behind: the WAL is replayed to the
// last durable checkpoint, every surviving block's checksum is
// verified against the arena image, and the blocks are reloaded.
// Opening a directory that never held a store yields an empty store.
func OpenBlockStore(opts ...BlockStoreOption) (*BlockStore, BlockStoreRecovery, error) {
	var cfg btl.Config
	for _, o := range opts {
		o(&cfg)
	}
	inner, rep, err := btl.Open(cfg)
	if err != nil {
		return nil, BlockStoreRecovery{}, err
	}
	return &BlockStore{inner: inner},
		BlockStoreRecovery{Recovered: rep.Recovered, Seq: rep.Seq, WALTail: rep.WALTail}, nil
}

// NewBlockStore creates an empty block store.
func NewBlockStore(opts ...BlockStoreOption) (*BlockStore, error) {
	var cfg btl.Config
	for _, o := range opts {
		o(&cfg)
	}
	inner, err := btl.New(cfg)
	if err != nil {
		return nil, err
	}
	return &BlockStore{inner: inner}, nil
}

// Put creates a block holding data (size = len(data)). On a real
// backend (see BlockStoreBackend) the bytes are physically stored at
// the block's extent and follow it through every reallocation; under
// the default Metered backend only the extent bookkeeping happens.
func (s *BlockStore) Put(name string, data []byte) error { return s.inner.Put(name, data) }

// Reserve creates a block of the given size with no payload — the
// cost-model form of Put for workloads that only exercise placement.
func (s *BlockStore) Reserve(name string, size int64) error { return s.inner.Reserve(name, size) }

// Get returns a copy of a block's payload bytes; it fails unless the
// block was written through Put on a real backend.
func (s *BlockStore) Get(name string) ([]byte, error) { return s.inner.Get(name) }

// Update rewrites a block at a new size.
func (s *BlockStore) Update(name string, size int64) error { return s.inner.Update(name, size) }

// Drop deletes a block.
func (s *BlockStore) Drop(name string) error { return s.inner.Drop(name) }

// Lookup translates a block name to its current physical extent.
func (s *BlockStore) Lookup(name string) (Extent, bool) {
	e, ok := s.inner.Lookup(name)
	return Extent{Start: e.Start, Size: e.Size}, ok
}

// Len returns the number of live blocks.
func (s *BlockStore) Len() int { return s.inner.Len() }

// Footprint returns the largest allocated address in the store's
// address space — the end of the region a disk-backed deployment would
// have to provision. (Nothing here touches a disk: with a real backend
// the cells live in memory, and under Metered they are bookkeeping
// only.)
func (s *BlockStore) Footprint() int64 { return s.inner.Footprint() }

// Volume returns the total live block volume.
func (s *BlockStore) Volume() int64 { return s.inner.Volume() }

// Checkpoint durably writes the translation map and recycles freed space.
func (s *BlockStore) Checkpoint() { s.inner.Checkpoint() }

// Checkpoints returns how many checkpoints have occurred (explicit plus
// reallocator-forced).
func (s *BlockStore) Checkpoints() int64 { return s.inner.Checkpoints() }

// Crash simulates losing all volatile state.
func (s *BlockStore) Crash() { s.inner.Crash() }

// Recover rebuilds the store from the durable translation map, verifying
// every mapped block's data survived. It returns the number of blocks
// recovered; blocks created after the last checkpoint are lost (a real
// database replays its logical log to restore them). In durable mode
// (BlockStoreDir) the rebuild reads real media: WAL replay plus
// checksum verification against the arena image.
func (s *BlockStore) Recover() (int, error) {
	rep, err := s.inner.Recover()
	return rep.Recovered, err
}

// Err returns the sticky durable-I/O failure, if any: after a WAL or
// arena write fails, every operation refuses with the latched cause
// until Crash/Recover rebuilds the store from media.
func (s *BlockStore) Err() error { return s.inner.Err() }

// CheckInvariants verifies the store's cross-layer consistency: the
// reallocator's structural invariants, the name/id maps, and every
// stored payload's checksum against its current extent.
func (s *BlockStore) CheckInvariants() error { return s.inner.CheckInvariants() }

// Close releases the store's resources; in durable mode it closes the
// arena mapping and the WAL handle (without checkpointing — call
// Checkpoint first to make recent work durable).
func (s *BlockStore) Close() error { return s.inner.Close() }
