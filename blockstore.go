package realloc

import (
	"realloc/internal/arena"
	"realloc/internal/btl"
)

// BlockStore is a crash-consistent database block store: logical block
// names translate to physical extents managed by a checkpointed
// cost-oblivious reallocator. Moving a block updates the in-memory
// translation map; the durable copy is written at checkpoints, and space
// freed since the last checkpoint is never rewritten — so recovery always
// finds intact data at the addresses the durable map records.
type BlockStore struct {
	inner *btl.Store
}

// BlockStoreOption configures NewBlockStore.
type BlockStoreOption func(*btl.Config)

// BlockStoreEpsilon sets the footprint slack (default 0.25).
func BlockStoreEpsilon(eps float64) BlockStoreOption {
	return func(c *btl.Config) { c.Epsilon = eps }
}

// BlockStoreDeamortized selects the deamortized reallocator, bounding the
// work any single block write performs.
func BlockStoreDeamortized() BlockStoreOption {
	return func(c *btl.Config) { c.Deamortized = true }
}

// BlockStoreBackend selects the payload data backend (default Metered).
// With a real backend, Put stores each block's bytes at its physical
// extent, Get reads them back, and Recover verifies every durable
// block's payload checksum against the raw cells that survived the
// crash.
func BlockStoreBackend(b Backend) BlockStoreOption {
	return func(c *btl.Config) { c.Backend = arena.Kind(b) }
}

// NewBlockStore creates an empty block store.
func NewBlockStore(opts ...BlockStoreOption) (*BlockStore, error) {
	var cfg btl.Config
	for _, o := range opts {
		o(&cfg)
	}
	inner, err := btl.New(cfg)
	if err != nil {
		return nil, err
	}
	return &BlockStore{inner: inner}, nil
}

// Put creates a block holding data (size = len(data)). On a real
// backend (see BlockStoreBackend) the bytes are physically stored at
// the block's extent and follow it through every reallocation; under
// the default Metered backend only the extent bookkeeping happens.
func (s *BlockStore) Put(name string, data []byte) error { return s.inner.Put(name, data) }

// Reserve creates a block of the given size with no payload — the
// cost-model form of Put for workloads that only exercise placement.
func (s *BlockStore) Reserve(name string, size int64) error { return s.inner.Reserve(name, size) }

// Get returns a copy of a block's payload bytes; it fails unless the
// block was written through Put on a real backend.
func (s *BlockStore) Get(name string) ([]byte, error) { return s.inner.Get(name) }

// Update rewrites a block at a new size.
func (s *BlockStore) Update(name string, size int64) error { return s.inner.Update(name, size) }

// Drop deletes a block.
func (s *BlockStore) Drop(name string) error { return s.inner.Drop(name) }

// Lookup translates a block name to its current physical extent.
func (s *BlockStore) Lookup(name string) (Extent, bool) {
	e, ok := s.inner.Lookup(name)
	return Extent{Start: e.Start, Size: e.Size}, ok
}

// Len returns the number of live blocks.
func (s *BlockStore) Len() int { return s.inner.Len() }

// Footprint returns the largest allocated address in the store's
// address space — the end of the region a disk-backed deployment would
// have to provision. (Nothing here touches a disk: with a real backend
// the cells live in memory, and under Metered they are bookkeeping
// only.)
func (s *BlockStore) Footprint() int64 { return s.inner.Footprint() }

// Volume returns the total live block volume.
func (s *BlockStore) Volume() int64 { return s.inner.Volume() }

// Checkpoint durably writes the translation map and recycles freed space.
func (s *BlockStore) Checkpoint() { s.inner.Checkpoint() }

// Checkpoints returns how many checkpoints have occurred (explicit plus
// reallocator-forced).
func (s *BlockStore) Checkpoints() int64 { return s.inner.Checkpoints() }

// Crash simulates losing all volatile state.
func (s *BlockStore) Crash() { s.inner.Crash() }

// Recover rebuilds the store from the durable translation map, verifying
// every mapped block's data survived. It returns the number of blocks
// recovered; blocks created after the last checkpoint are lost (a real
// database replays its logical log to restore them).
func (s *BlockStore) Recover() (int, error) {
	rep, err := s.inner.Recover()
	return rep.Recovered, err
}
