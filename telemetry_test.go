package realloc

import (
	"io"
	"math/rand/v2"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"realloc/internal/telemetry"
)

// churnTelemetry drives a deterministic insert/delete mix and returns
// how many of each were issued.
func churnTelemetry(t *testing.T, insert func(int64, int64) error, del func(int64) error, ops int, seed uint64) (inserts, deletes int64) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 99))
	var live []int64
	next := int64(1)
	for op := 0; op < ops; op++ {
		if len(live) == 0 || rng.Float64() < 0.6 {
			if err := insert(next, 1+rng.Int64N(64)); err != nil {
				t.Fatalf("op %d insert: %v", op, err)
			}
			live = append(live, next)
			next++
			inserts++
		} else {
			i := rng.IntN(len(live))
			if err := del(live[i]); err != nil {
				t.Fatalf("op %d delete: %v", op, err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			deletes++
		}
	}
	return inserts, deletes
}

// TestTelemetryFacadeStats is the facade drift test: both facades must
// fill the same telemetry summary fields in Stats, derived from the
// registry exactly as latencyP99s computes them, and the registry must
// account for every op issued through either facade.
func TestTelemetryFacadeStats(t *testing.T) {
	const ops = 4000
	run := func(t *testing.T, reg *telemetry.Registry, stats func() (Stats, bool), ins, del int64) {
		st, ok := stats()
		if !ok {
			t.Fatal("Stats missing despite WithMetrics")
		}
		var snap telemetry.Snapshot
		reg.ReadSnapshot(&snap)
		if got := snap.InsertLatency.Count; got != ins {
			t.Errorf("registry insert count = %d, want %d", got, ins)
		}
		if got := snap.DeleteLatency.Count; got != del {
			t.Errorf("registry delete count = %d, want %d", got, del)
		}
		wantOp, wantFlush := latencyP99s(&snap)
		if st.LatencyP99 != wantOp || st.FlushP99 != wantFlush {
			t.Errorf("Stats p99s (%v, %v) drift from registry (%v, %v)",
				st.LatencyP99, st.FlushP99, wantOp, wantFlush)
		}
		if st.LatencyP99 <= 0 {
			t.Errorf("LatencyP99 = %v, want > 0 after %d ops", st.LatencyP99, ops)
		}
		if snap.FlushDuration.Count > 0 && st.FlushP99 <= 0 {
			t.Errorf("FlushP99 = %v despite %d flushes", st.FlushP99, snap.FlushDuration.Count)
		}
	}
	t.Run("unsharded", func(t *testing.T) {
		reg := telemetry.NewRegistry()
		r, err := New(WithEpsilon(0.25), WithVariant(Deamortized), WithMetrics(), WithTelemetry(reg))
		if err != nil {
			t.Fatal(err)
		}
		ins, del := churnTelemetry(t, r.Insert, r.Delete, ops, 1)
		if err := r.Drain(); err != nil {
			t.Fatal(err)
		}
		run(t, reg, r.Stats, ins, del)
	})
	t.Run("sharded", func(t *testing.T) {
		reg := telemetry.NewRegistry()
		s, err := NewSharded(WithShards(4), WithEpsilon(0.25), WithVariant(Deamortized),
			WithMetrics(), WithTelemetry(reg))
		if err != nil {
			t.Fatal(err)
		}
		ins, del := churnTelemetry(t, s.Insert, s.Delete, ops, 2)
		if err := s.Drain(); err != nil {
			t.Fatal(err)
		}
		run(t, reg, s.Stats, ins, del)
		if reg.NumShards() != 4 {
			t.Errorf("registry shards = %d, want 4", reg.NumShards())
		}
		// Per-shard stats carry that shard's own tail, from the same
		// registry, through the same derivation.
		st0, ok := s.ShardStats(0)
		if !ok {
			t.Fatal("ShardStats missing")
		}
		var shard0 telemetry.Snapshot
		reg.ReadShardSnapshot(0, &shard0)
		wantOp, wantFlush := latencyP99s(&shard0)
		if st0.LatencyP99 != wantOp || st0.FlushP99 != wantFlush {
			t.Errorf("ShardStats p99s (%v, %v) drift from shard snapshot (%v, %v)",
				st0.LatencyP99, st0.FlushP99, wantOp, wantFlush)
		}
	})
}

// TestTelemetryOffStatsNilSafe pins the nil path: without WithTelemetry
// the summary fields stay zero and nothing panics.
func TestTelemetryOffStatsNilSafe(t *testing.T) {
	r, err := New(WithEpsilon(0.25), WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	churnTelemetry(t, r.Insert, r.Delete, 500, 3)
	st, ok := r.Stats()
	if !ok {
		t.Fatal("stats missing")
	}
	if st.LatencyP99 != 0 || st.FlushP99 != 0 {
		t.Fatalf("telemetry-off Stats carries p99s: %v %v", st.LatencyP99, st.FlushP99)
	}
	s, err := NewSharded(WithShards(2), WithEpsilon(0.25), WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	churnTelemetry(t, s.Insert, s.Delete, 500, 4)
	sst, ok := s.Stats()
	if !ok {
		t.Fatal("sharded stats missing")
	}
	if sst.LatencyP99 != 0 || sst.FlushP99 != 0 {
		t.Fatalf("telemetry-off sharded Stats carries p99s: %v %v", sst.LatencyP99, sst.FlushP99)
	}
}

// TestObserverFromShardZero is the regression test for the adapter bug
// where every event from shard i carried FromShard == i: FromShard is
// documented migrate-only, so ordinary events from nonzero shards must
// report 0.
func TestObserverFromShardZero(t *testing.T) {
	var mu sync.Mutex
	sawNonzeroShard := false
	s, err := NewSharded(WithShards(4), WithEpsilon(0.25),
		WithObserver(func(e Event) {
			mu.Lock()
			defer mu.Unlock()
			if e.Shard != 0 {
				sawNonzeroShard = true
			}
			if e.Kind != EventMigrate && e.FromShard != 0 {
				t.Errorf("%v event on shard %d has FromShard %d, want 0",
					e.Kind, e.Shard, e.FromShard)
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	churnTelemetry(t, s.Insert, s.Delete, 2000, 5)
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if !sawNonzeroShard {
		t.Fatal("workload never touched a nonzero shard; test proves nothing")
	}
}

// TestObserverFlushSpanReplay checks the span stream: with telemetry
// armed every completed flush is replayed as one EventFlushSpan right
// after its EventFlushEnd, carrying chunk count, moved volume, and the
// stall/active timing split; without telemetry no span ever appears.
func TestObserverFlushSpanReplay(t *testing.T) {
	type span struct{ chunks, moved, stall, active int64 }
	var mu sync.Mutex
	var spans []span
	lastKind := EventKind(255)
	reg := telemetry.NewRegistry()
	r, err := New(WithEpsilon(0.25), WithVariant(Deamortized), WithTelemetry(reg),
		WithObserver(func(e Event) {
			mu.Lock()
			defer mu.Unlock()
			if e.Kind == EventFlushSpan {
				if lastKind != EventFlushEnd {
					t.Errorf("span not adjacent to flush-end (followed %v)", lastKind)
				}
				spans = append(spans, span{e.ID, e.Size, e.From, e.To})
			}
			lastKind = e.Kind
		}))
	if err != nil {
		t.Fatal(err)
	}
	churnTelemetry(t, r.Insert, r.Delete, 4000, 6)
	if err := r.Drain(); err != nil {
		t.Fatal(err)
	}
	var snap telemetry.Snapshot
	reg.ReadSnapshot(&snap)
	if int64(len(spans)) != snap.FlushDuration.Count {
		t.Fatalf("%d spans for %d recorded flushes", len(spans), snap.FlushDuration.Count)
	}
	if len(spans) == 0 {
		t.Fatal("no flushes observed; test proves nothing")
	}
	sawMoved := false
	for _, sp := range spans {
		// A flush that moved volume executed at least one plan chunk; a
		// log-drain-only flush legitimately reports zero.
		if sp.moved > 0 && sp.chunks < 1 {
			t.Errorf("span moved %d cells in %d chunks", sp.moved, sp.chunks)
		}
		if sp.moved < 0 || sp.stall < 0 || sp.active < 0 {
			t.Errorf("negative span fields: %+v", sp)
		}
		if sp.stall > sp.active {
			t.Errorf("span stall %dns exceeds active %dns", sp.stall, sp.active)
		}
		if sp.moved > 0 {
			sawMoved = true
		}
	}
	if !sawMoved {
		t.Error("no span moved any volume")
	}

	// Without telemetry the spans must not exist: the timings they carry
	// are never measured.
	sawSpan := false
	r2, err := New(WithEpsilon(0.25), WithVariant(Deamortized),
		WithObserver(func(e Event) {
			if e.Kind == EventFlushSpan {
				sawSpan = true
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	churnTelemetry(t, r2.Insert, r2.Delete, 2000, 7)
	if err := r2.Drain(); err != nil {
		t.Fatal(err)
	}
	if sawSpan {
		t.Fatal("flush span emitted without WithTelemetry")
	}
}

// TestMetricsEndpointLiveChurn scrapes /metrics while a sharded
// reallocator churns concurrently: the acceptance check that the
// Prometheus surface holds per-shard op-latency and flush-duration
// histograms under live load.
func TestMetricsEndpointLiveChurn(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, err := NewSharded(WithShards(2), WithEpsilon(0.25), WithVariant(Deamortized),
		WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(telemetry.NewServeMux(reg))
	defer srv.Close()

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 8))
			next := int64(w)*1_000_000 + 1
			var live []int64
			for !stop.Load() {
				if len(live) == 0 || rng.Float64() < 0.6 {
					if err := s.Insert(next, 1+rng.Int64N(64)); err != nil {
						t.Errorf("insert: %v", err)
						return
					}
					live = append(live, next)
					next++
				} else {
					i := rng.IntN(len(live))
					if err := s.Delete(live[i]); err != nil {
						t.Errorf("delete: %v", err)
						return
					}
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
				}
			}
		}(w)
	}

	deadline := time.Now().Add(5 * time.Second)
	wanted := []string{
		`realloc_insert_latency_seconds_bucket{shard="0",`,
		`realloc_insert_latency_seconds_bucket{shard="1",`,
		`realloc_flush_duration_seconds_bucket{shard="0",`,
		`realloc_flush_duration_seconds_count{shard="1"}`,
	}
	var body string
	for time.Now().Before(deadline) {
		resp, err := srv.Client().Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("/metrics status %d", resp.StatusCode)
		}
		body = string(b)
		ok := true
		for _, w := range wanted {
			if !strings.Contains(body, w) {
				ok = false
			}
		}
		if ok {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	for _, w := range wanted {
		if !strings.Contains(body, w) {
			t.Errorf("live /metrics never served %q", w)
		}
	}
}

// TestReadStatsTelemetryAllocationFree extends the aggregate-read
// allocation pin to the telemetry-armed path: ReadStats now also folds
// a registry snapshot into the summary fields, and must stay 0
// allocs/op through the pooled snapshot.
func TestReadStatsTelemetryAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation perturbs allocation counts")
	}
	reg := telemetry.NewRegistry()
	s, err := NewSharded(WithShards(4), WithEpsilon(0.25), WithMetrics(), WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	churnTelemetry(t, s.Insert, s.Delete, 2000, 9)
	var st Stats
	s.ReadStats(&st) // warm pools and maps
	if n := testing.AllocsPerRun(100, func() { s.ReadStats(&st) }); n != 0 {
		t.Fatalf("telemetry-armed ReadStats allocates %.1f per call, want 0", n)
	}
	if st.LatencyP99 <= 0 {
		t.Fatalf("LatencyP99 = %v, want > 0", st.LatencyP99)
	}
}

// TestSoakTelemetry is the telemetry-enabled soak the nightly job runs
// (its -run regex 'TestSoak' matches): a long churn on a rebalancing
// sharded reallocator with telemetry armed, asserting at the end that
// the telemetry snapshot is consistent with the trace metrics and the
// structure's invariants still hold. REALLOC_SOAK_OPS scales the run.
func TestSoakTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	ops := 60000
	if v := os.Getenv("REALLOC_SOAK_OPS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad REALLOC_SOAK_OPS %q: %v", v, err)
		}
		ops = n
	}
	reg := telemetry.NewRegistry()
	s, err := NewSharded(WithShards(4), WithEpsilon(0.25), WithVariant(Deamortized),
		WithMetrics(), WithTelemetry(reg),
		WithRebalance(RebalancePolicy{
			Mode: RebalanceInline, Threshold: 1.3, CheckEvery: 64, BatchObjects: 128,
		}))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(2026, 7))
	var live []int64
	next := int64(1)
	var inserts, deletes int64
	for op := 0; op < ops; op++ {
		if len(live) == 0 || rng.Float64() < 0.55 {
			size := int64(1 + rng.Int64N(128))
			if rng.IntN(200) == 0 {
				size = 1 + rng.Int64N(8192)
			}
			if err := s.Insert(next, size); err != nil {
				t.Fatalf("op %d insert: %v", op, err)
			}
			live = append(live, next)
			next++
			inserts++
		} else {
			i := rng.IntN(len(live))
			if err := s.Delete(live[i]); err != nil {
				t.Fatalf("op %d delete: %v", op, err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			deletes++
		}
		if op%10000 == 9999 {
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	st, ok := s.Stats()
	if !ok {
		t.Fatal("stats missing")
	}
	var snap telemetry.Snapshot
	reg.ReadSnapshot(&snap)
	// Every op issued through the facade is one latency observation.
	if snap.InsertLatency.Count != inserts || snap.DeleteLatency.Count != deletes {
		t.Errorf("telemetry op counts (%d, %d) != issued (%d, %d)",
			snap.InsertLatency.Count, snap.DeleteLatency.Count, inserts, deletes)
	}
	// Every completed flush records exactly one duration and one moved-
	// volume observation, and the trace metrics count the same flushes.
	if snap.FlushDuration.Count != st.Flushes {
		t.Errorf("telemetry flush count %d != metrics %d", snap.FlushDuration.Count, st.Flushes)
	}
	if snap.FlushMoved.Count != st.Flushes {
		t.Errorf("flush-moved count %d != flushes %d", snap.FlushMoved.Count, st.Flushes)
	}
	// Flush-moved volume is the subset of all moved volume that flush
	// plans executed.
	if snap.FlushMoved.Sum <= 0 || snap.FlushMoved.Sum > st.MovedVolume {
		t.Errorf("flush moved sum %d outside (0, %d]", snap.FlushMoved.Sum, st.MovedVolume)
	}
	// One migration latency observation per migrated object.
	if snap.MigrateLatency.Count != st.Migrations {
		t.Errorf("migrate latency count %d != migrations %d", snap.MigrateLatency.Count, st.Migrations)
	}
	if st.Migrations == 0 {
		t.Log("no migrations triggered this run; migrate-latency assertions vacuous")
	}
	// Quantiles are ordered and the structure's checkpoint mirror agrees
	// with the metrics recorder's count.
	for name, h := range map[string]*telemetry.HistSnapshot{
		"insert": &snap.InsertLatency, "flush": &snap.FlushDuration,
	} {
		p50, p99 := h.Quantile(0.50), h.Quantile(0.99)
		if p50 > p99 || p99 > h.Max {
			t.Errorf("%s quantiles unordered: p50 %d p99 %d max %d", name, p50, p99, h.Max)
		}
	}
	if snap.Checkpoints != st.Checkpoints {
		t.Errorf("telemetry checkpoint mirror %d != metrics %d", snap.Checkpoints, st.Checkpoints)
	}
}
