package realloc_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"realloc"
)

// coresUnderTest enumerates every public core selection.
var coresUnderTest = []realloc.Core{realloc.CorePODS14, realloc.CoreFCS, realloc.CoreAutoSelect}

// TestCoreString: public names match the engine-layer names the CLI and
// REALLOC_CORE use.
func TestCoreString(t *testing.T) {
	want := map[realloc.Core]string{
		realloc.CorePODS14:     "pods14",
		realloc.CoreFCS:        "fcs",
		realloc.CoreAutoSelect: "auto",
	}
	for c, name := range want {
		if c.String() != name {
			t.Errorf("Core(%d).String() = %q, want %q", int(c), c.String(), name)
		}
	}
}

// TestWithCoreValidation: both constructors reject unknown cores and
// core/variant combinations the core cannot run, with identical
// messages (the validation is defined once, in internal/engine).
func TestWithCoreValidation(t *testing.T) {
	_, err := realloc.New(realloc.WithCore(realloc.Core(42)))
	if err == nil || !strings.Contains(err.Error(), "unknown core 42") {
		t.Errorf("New(core=42) error = %v, want unknown core message", err)
	}
	for _, v := range []realloc.Variant{realloc.Checkpointed, realloc.Deamortized} {
		for _, c := range []realloc.Core{realloc.CoreFCS, realloc.CoreAutoSelect} {
			want := fmt.Sprintf("core %s does not support the %s variant (supported: amortized)", c, v)
			errSingle := errOf(realloc.New(realloc.WithCore(c), realloc.WithVariant(v)))
			if errSingle == nil || !strings.Contains(errSingle.Error(), want) {
				t.Errorf("New(%v,%v) error = %v, want %q", c, v, errSingle, want)
			}
			errSharded := errOfSharded(realloc.NewSharded(realloc.WithShards(2), realloc.WithCore(c), realloc.WithVariant(v)))
			if errSharded == nil || !strings.Contains(errSharded.Error(), want) {
				t.Errorf("NewSharded(%v,%v) error = %v, want %q", c, v, errSharded, want)
			}
			// One shared definition: the two facades can never drift.
			if errSingle != nil && errSharded != nil && errSingle.Error() != errSharded.Error() {
				t.Errorf("facade messages drifted: %q vs %q", errSingle, errSharded)
			}
		}
	}
	// Every valid combination constructs.
	for _, c := range coresUnderTest {
		if _, err := realloc.New(realloc.WithCore(c)); err != nil {
			t.Errorf("New(%v) rejected: %v", c, err)
		}
	}
	for _, v := range []realloc.Variant{realloc.Amortized, realloc.Checkpointed, realloc.Deamortized} {
		if _, err := realloc.New(realloc.WithCore(realloc.CorePODS14), realloc.WithVariant(v)); err != nil {
			t.Errorf("New(pods14, %v) rejected: %v", v, err)
		}
	}
}

func errOf(_ *realloc.Reallocator, err error) error               { return err }
func errOfSharded(_ *realloc.ShardedReallocator, err error) error { return err }

// TestReallocCoreEnv: without WithCore, REALLOC_CORE picks the core;
// unknown names fail the constructor; a core that cannot run the
// requested variant silently falls back to the reference core; and an
// explicit WithCore always wins over the environment.
func TestReallocCoreEnv(t *testing.T) {
	t.Setenv("REALLOC_CORE", "fcs")
	r, err := realloc.New()
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Core(); got != realloc.CoreFCS {
		t.Errorf("REALLOC_CORE=fcs New().Core() = %v", got)
	}
	s, err := realloc.NewSharded(realloc.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Core(); got != realloc.CoreFCS {
		t.Errorf("REALLOC_CORE=fcs NewSharded().Core() = %v", got)
	}
	// Variant fallback: the env core has no deamortized path, so the
	// structure stays on the reference core rather than failing.
	r, err = realloc.New(realloc.WithVariant(realloc.Deamortized))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Core(); got != realloc.CorePODS14 {
		t.Errorf("REALLOC_CORE=fcs + Deamortized → Core() = %v, want fallback to pods14", got)
	}
	// Explicit option beats the environment.
	r, err = realloc.New(realloc.WithCore(realloc.CorePODS14))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Core(); got != realloc.CorePODS14 {
		t.Errorf("WithCore(pods14) under REALLOC_CORE=fcs → Core() = %v", got)
	}

	t.Setenv("REALLOC_CORE", "bogus")
	if _, err := realloc.New(); err == nil || !strings.Contains(err.Error(), `REALLOC_CORE: unknown core "bogus"`) {
		t.Errorf("REALLOC_CORE=bogus New() error = %v", err)
	}
	if _, err := realloc.NewSharded(realloc.WithShards(2)); err == nil || !strings.Contains(err.Error(), `REALLOC_CORE: unknown core "bogus"`) {
		t.Errorf("REALLOC_CORE=bogus NewSharded() error = %v", err)
	}
}

// TestShardedCrossCoreEquivalence drives the same concurrent workload
// into a sharded reallocator per core and checks, per core, that the
// final externally observable state matches the sequential reference
// model, that every shard obeys its own footprint bound, and that the
// full invariant sweep (including the lock-free mirror cross-check)
// passes. Run under -race this doubles as the per-core data-race check
// for the COW router and the seqlocked mirrors.
func TestShardedCrossCoreEquivalence(t *testing.T) {
	const (
		shards  = 4
		workers = 8
		perW    = 600
		eps     = 0.25
	)
	for _, core := range coresUnderTest {
		t.Run(core.String(), func(t *testing.T) {
			s, err := realloc.NewSharded(
				realloc.WithShards(shards),
				realloc.WithCore(core),
				realloc.WithEpsilon(eps),
				realloc.WithMetrics(),
			)
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					base := int64(w) * 10_000
					for i := int64(1); i <= perW; i++ {
						id := base + i
						size := (id*2654435761)%96 + 1
						if err := s.Insert(id, size); err != nil {
							t.Errorf("worker %d: insert(%d): %v", w, id, err)
							return
						}
						if i%3 == 0 {
							if err := s.Delete(id); err != nil {
								t.Errorf("worker %d: delete(%d): %v", w, id, err)
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()
			if err := s.Drain(); err != nil {
				t.Fatal(err)
			}

			// Sequential reference model of the same per-worker streams.
			wantLen, wantVol := 0, int64(0)
			for w := 0; w < workers; w++ {
				base := int64(w) * 10_000
				for i := int64(1); i <= perW; i++ {
					if i%3 == 0 {
						continue
					}
					id := base + i
					wantLen++
					wantVol += (id*2654435761)%96 + 1
				}
			}
			if s.Len() != wantLen || s.Volume() != wantVol {
				t.Fatalf("%v: len %d/%d, vol %d/%d", core, s.Len(), wantLen, s.Volume(), wantVol)
			}
			for i := 0; i < shards; i++ {
				v, f := s.ShardVolume(i), s.ShardFootprint(i)
				if v > 0 && float64(f) > (1+eps)*float64(v)+float64(s.Delta())+64 {
					t.Errorf("%v: shard %d footprint %d over budget for volume %d", core, i, f, v)
				}
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if st, ok := s.Stats(); !ok || st.Inserts == 0 {
				t.Fatalf("%v: stats missing (%v)", core, ok)
			}
		})
	}
}

// TestShardedAutoSelectConverges: under a compact concurrent workload
// every shard of an auto-selecting sharded reallocator commits to the
// same core.
func TestShardedAutoSelectConverges(t *testing.T) {
	s, err := realloc.NewSharded(
		realloc.WithShards(4),
		realloc.WithCore(realloc.CoreAutoSelect),
	)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w) * 100_000
			for i := int64(1); i <= 2000; i++ {
				if err := s.Insert(base+i, i%32+1); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// One more op per id range touches every shard after the decision.
	for w := 0; w < 4; w++ {
		base := int64(w) * 100_000
		if err := s.Delete(base + 1); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Core(); got != realloc.CoreFCS {
		t.Errorf("sharded auto Core() = %v, want fcs on compact sizes", got)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
