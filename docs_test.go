package realloc_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links and images: [text](target) or
// ![alt](target). Reference-style links are not used in this repo.
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)[^)]*\)`)

// TestDocLinks fails when a relative link in the top-level documents
// points at a file that does not exist. The CI docs job runs this so a
// refactor that renames a file cannot silently orphan the prose that
// references it. External URLs and bare anchors are out of scope; a
// relative target's own #fragment is stripped before the check.
func TestDocLinks(t *testing.T) {
	// README and ARCHITECTURE are the navigational documents — they must
	// exist and their links must hold. The rest are checked when present.
	required := []string{"README.md", "ARCHITECTURE.md"}
	optional := []string{"EXPERIMENTS.md", "ROADMAP.md", "PAPER.md", "CHANGES.md"}

	var docs []string
	for _, name := range required {
		if _, err := os.Stat(name); err != nil {
			t.Errorf("%s: required document missing: %v", name, err)
			continue
		}
		docs = append(docs, name)
	}
	for _, name := range optional {
		if _, err := os.Stat(name); err == nil {
			docs = append(docs, name)
		}
	}

	for _, doc := range docs {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("read %s: %v", doc, err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external
			}
			if strings.HasPrefix(target, "#") {
				continue // intra-document anchor
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			path := filepath.Join(filepath.Dir(doc), target)
			if _, err := os.Stat(path); err != nil {
				t.Errorf("%s: broken relative link %q: %v", doc, m[1], err)
			}
		}
	}
}
