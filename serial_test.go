package realloc_test

import (
	"math/rand/v2"
	"testing"

	"realloc"
)

// driveFrontEnd runs a deterministic churn through a reallocator built by
// mk, collecting the observer event stream and the final layout.
func driveFrontEnd(t *testing.T, mk func(obs func(realloc.Event)) interface {
	Insert(int64, int64) error
	Delete(int64) error
}) ([]realloc.Event, map[int64]realloc.Extent) {
	t.Helper()
	var events []realloc.Event
	target := mk(func(e realloc.Event) { events = append(events, e) })
	rng := rand.New(rand.NewPCG(11, 0x5e71a1))
	type live struct{ id, size int64 }
	var pop []live
	next := int64(1)
	for op := 0; op < 2500; op++ {
		if len(pop) == 0 || rng.IntN(5) < 3 {
			size := int64(1 + rng.IntN(200))
			if err := target.Insert(next, size); err != nil {
				t.Fatal(err)
			}
			pop = append(pop, live{next, size})
			next++
		} else {
			i := rng.IntN(len(pop))
			o := pop[i]
			pop[i] = pop[len(pop)-1]
			pop = pop[:len(pop)-1]
			if err := target.Delete(o.id); err != nil {
				t.Fatal(err)
			}
		}
	}
	layout := make(map[int64]realloc.Extent)
	type extenter interface {
		Extent(int64) (realloc.Extent, bool)
	}
	for _, o := range pop {
		ext, ok := target.(extenter).Extent(o.id)
		if !ok {
			t.Fatalf("live object %d has no extent", o.id)
		}
		layout[o.id] = ext
	}
	return events, layout
}

// TestSerialFlushFrontEndEquivalence drives identical workloads through
// the batched (default) and WithSerialFlush executors at the public layer
// — plain and sharded — and asserts observers see identical event streams
// and objects land at identical addresses.
func TestSerialFlushFrontEndEquivalence(t *testing.T) {
	for _, variant := range []realloc.Variant{realloc.Amortized, realloc.Checkpointed, realloc.Deamortized} {
		base := []realloc.Option{realloc.WithVariant(variant), realloc.WithEpsilon(0.25), realloc.WithInvariantChecks()}
		mk := func(extra ...realloc.Option) func(obs func(realloc.Event)) interface {
			Insert(int64, int64) error
			Delete(int64) error
		} {
			return func(obs func(realloc.Event)) interface {
				Insert(int64, int64) error
				Delete(int64) error
			} {
				opts := append(append([]realloc.Option{}, base...), extra...)
				opts = append(opts, realloc.WithObserver(obs))
				r, err := realloc.New(opts...)
				if err != nil {
					t.Fatal(err)
				}
				return r
			}
		}
		be, bl := driveFrontEnd(t, mk())
		se, sl := driveFrontEnd(t, mk(realloc.WithSerialFlush()))
		if len(be) != len(se) {
			t.Fatalf("%v: %d batched events vs %d serial", variant, len(be), len(se))
		}
		for i := range be {
			if be[i] != se[i] {
				t.Fatalf("%v: event %d differs:\n batched %+v\n serial  %+v", variant, i, be[i], se[i])
			}
		}
		if len(bl) != len(sl) {
			t.Fatalf("%v: layout sizes differ", variant)
		}
		for id, ext := range bl {
			if sl[id] != ext {
				t.Fatalf("%v: object %d at %+v batched, %+v serial", variant, id, ext, sl[id])
			}
		}
	}

	// Sharded front-end: a single-goroutine drive is deterministic, so the
	// shard-tagged streams must match event for event too.
	mkSharded := func(extra ...realloc.Option) func(obs func(realloc.Event)) interface {
		Insert(int64, int64) error
		Delete(int64) error
	} {
		return func(obs func(realloc.Event)) interface {
			Insert(int64, int64) error
			Delete(int64) error
		} {
			opts := []realloc.Option{
				realloc.WithShards(3), realloc.WithEpsilon(0.25),
				realloc.WithInvariantChecks(), realloc.WithObserver(obs),
			}
			opts = append(opts, extra...)
			s, err := realloc.NewSharded(opts...)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}
	}
	be, bl := driveFrontEnd(t, mkSharded())
	se, sl := driveFrontEnd(t, mkSharded(realloc.WithSerialFlush()))
	if len(be) != len(se) {
		t.Fatalf("sharded: %d batched events vs %d serial", len(be), len(se))
	}
	for i := range be {
		if be[i] != se[i] {
			t.Fatalf("sharded: event %d differs:\n batched %+v\n serial  %+v", i, be[i], se[i])
		}
	}
	for id, ext := range bl {
		if sl[id] != ext {
			t.Fatalf("sharded: object %d at %+v batched, %+v serial", id, ext, sl[id])
		}
	}
}
