package realloc_test

import (
	"strings"
	"sync"
	"testing"
	"time"

	"realloc"
	"realloc/internal/addrspace"
	"realloc/internal/workload"
)

// skewedSharded builds an n-shard reallocator (plus extra options) and
// drives a zipf-skewed churn aimed at its hash homes into it.
func skewedSharded(t *testing.T, n, ops int, extra ...realloc.Option) *realloc.ShardedReallocator {
	t.Helper()
	opts := append([]realloc.Option{
		realloc.WithShards(n), realloc.WithEpsilon(0.25), realloc.WithInvariantChecks(),
	}, extra...)
	s, err := realloc.NewSharded(opts...)
	if err != nil {
		t.Fatal(err)
	}
	gen := &workload.ZipfChurn{
		Seed: 11, Sizes: workload.Uniform{Min: 1, Max: 64},
		TargetVolume: 20000, Homes: n, S: 1.8,
	}
	for i := 0; i < ops; i++ {
		op, _ := gen.Next()
		var err error
		if op.Insert {
			err = s.Insert(int64(op.ID), op.Size)
		} else {
			err = s.Delete(int64(op.ID))
		}
		if err != nil {
			t.Fatalf("op %d (%+v): %v", i, op, err)
		}
	}
	return s
}

func spread(s *realloc.ShardedReallocator) float64 {
	vols := s.ShardVolumes()
	var total, max int64
	for _, v := range vols {
		total += v
		if v > max {
			max = v
		}
	}
	if total == 0 {
		return 0
	}
	return float64(max) / (float64(total) / float64(len(vols)))
}

// TestRebalanceLevelsSkew drives a skewed population, then runs one
// manual sweep: the spread must drop below the default threshold, the
// live set must be exactly preserved (ids, sizes, routability), every
// shard must keep its structural and footprint invariants, and deleting
// everything must empty the id→shard override table.
func TestRebalanceLevelsSkew(t *testing.T) {
	s := skewedSharded(t, 4, 4000)
	if sp := spread(s); sp < 2 {
		t.Fatalf("workload failed to skew: spread %.2f", sp)
	}
	want := map[int64]int64{}
	s.ForEach(func(id int64, ext realloc.Extent) { want[id] = ext.Size })

	moved, err := s.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("sweep migrated nothing")
	}
	if objs, vol := s.Migrations(); objs != int64(moved) || vol < objs {
		t.Fatalf("migration counters objs=%d vol=%d, want objs=%d", objs, vol, moved)
	}
	if sp := spread(s); sp > 1.5 {
		t.Fatalf("spread after sweep %.2f, want <= 1.5", sp)
	}
	if s.RouteOverrides() == 0 {
		t.Fatal("no route overrides after migration")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	got := map[int64]int64{}
	s.ForEach(func(id int64, ext realloc.Extent) { got[id] = ext.Size })
	if len(got) != len(want) {
		t.Fatalf("live set size changed: %d -> %d", len(want), len(got))
	}
	for id, sz := range want {
		if got[id] != sz {
			t.Fatalf("id %d size %d, want %d", id, got[id], sz)
		}
		if !s.Has(id) {
			t.Fatalf("id %d unroutable after migration", id)
		}
		if ext, ok := s.Extent(id); !ok || ext.Size != sz {
			t.Fatalf("id %d extent ok=%v size=%d, want %d", id, ok, ext.Size, sz)
		}
	}

	// A second sweep on a leveled structure is a no-op.
	if moved, err := s.Rebalance(); err != nil || moved != 0 {
		t.Fatalf("second sweep moved %d (err %v), want 0", moved, err)
	}

	// Deleting every object must drain the override table.
	for id := range want {
		if err := s.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.RouteOverrides(); n != 0 {
		t.Fatalf("%d route overrides survive full deletion", n)
	}
}

// TestMigrateShard checks the manual migration surface: batch bounds are
// respected and out-of-range shards are rejected.
func TestMigrateShard(t *testing.T) {
	s := skewedSharded(t, 4, 3000)
	vols := s.ShardVolumes()
	hot, cold := 0, 0
	for i, v := range vols {
		if v > vols[hot] {
			hot = i
		}
		if v < vols[cold] {
			cold = i
		}
	}
	moved, err := s.MigrateShard(hot, cold, 1<<40, 5)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 5 {
		t.Fatalf("object bound ignored: moved %d, want 5", moved)
	}
	moved, err = s.MigrateShard(hot, cold, 1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 1 {
		t.Fatalf("volume budget ignored: moved %d, want 1", moved)
	}
	if _, err := s.MigrateShard(0, 9, 1, 1); err == nil {
		t.Fatal("out-of-range target accepted")
	}
	if _, err := s.MigrateShard(-1, 0, 1, 1); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestInlineRebalanceKeepsSpreadBounded arms the inline (work-stealing)
// policy and checks the skewed workload's spread stays level without any
// explicit Rebalance call.
func TestInlineRebalanceKeepsSpreadBounded(t *testing.T) {
	s := skewedSharded(t, 4, 6000, realloc.WithRebalance(realloc.RebalancePolicy{
		Mode: realloc.RebalanceInline, Threshold: 1.25, CheckEvery: 32, BatchObjects: 256,
	}))
	if objs, _ := s.Migrations(); objs == 0 {
		t.Fatal("inline policy never migrated")
	}
	if sp := spread(s); sp > 2 {
		t.Fatalf("inline spread %.2f, want <= 2", sp)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // no-op for inline, still clean
		t.Fatal(err)
	}
}

// TestBackgroundRebalance arms the background sweeper and waits for it to
// level a skewed population on its own.
func TestBackgroundRebalance(t *testing.T) {
	s := skewedSharded(t, 4, 4000, realloc.WithRebalance(realloc.RebalancePolicy{
		Mode: realloc.RebalanceBackground, Threshold: 1.25, Interval: time.Millisecond,
	}))
	deadline := time.Now().Add(10 * time.Second)
	for spread(s) > 1.5 {
		if time.Now().After(deadline) {
			t.Fatalf("background sweeper never leveled: spread %.2f", spread(s))
		}
		time.Sleep(5 * time.Millisecond)
	}
	if objs, _ := s.Migrations(); objs == 0 {
		t.Fatal("background policy never migrated")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestShardedObserverMigrationReplay is the observer contract under
// migration, run with concurrent mutators (meaningful under -race): an
// observer that replays every event into an id -> (shard, extent) map
// must end up exactly matching ForEach and the routed ShardOf, migrations
// included.
func TestShardedObserverMigrationReplay(t *testing.T) {
	type loc struct {
		shard int
		ext   realloc.Extent
	}
	var mu sync.Mutex
	replay := map[int64]loc{}
	var migrations int
	s, err := realloc.NewSharded(
		realloc.WithShards(4),
		realloc.WithEpsilon(0.25),
		realloc.WithRebalance(realloc.RebalancePolicy{
			Mode: realloc.RebalanceInline, Threshold: 1.25, CheckEvery: 16, BatchObjects: 64,
		}),
		realloc.WithObserver(func(e realloc.Event) {
			mu.Lock()
			defer mu.Unlock()
			switch e.Kind {
			case realloc.EventInsert, realloc.EventMove:
				replay[e.ID] = loc{e.Shard, realloc.Extent{Start: e.To, Size: e.Size}}
			case realloc.EventMigrate:
				migrations++
				if e.FromShard == e.Shard {
					t.Errorf("migrate event with FromShard == Shard == %d", e.Shard)
				}
				replay[e.ID] = loc{e.Shard, realloc.Extent{Start: e.To, Size: e.Size}}
			case realloc.EventDelete:
				delete(replay, e.ID)
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 4
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// FirstID gives each worker a disjoint id range without
			// re-hashing ids, which would erase the zipf home skew.
			gen := &workload.ZipfChurn{
				Seed: uint64(100 + w), Sizes: workload.Uniform{Min: 1, Max: 64},
				TargetVolume: 5000, Homes: 4, S: 1.8,
				FirstID: addrspace.ID(1 + int64(w)<<40),
			}
			for i := 0; i < 4000; i++ {
				op, _ := gen.Next()
				var err error
				if op.Insert {
					err = s.Insert(int64(op.ID), op.Size)
				} else {
					err = s.Delete(int64(op.ID))
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}

	if migrations == 0 {
		t.Fatal("no migration events observed")
	}
	final := map[int64]realloc.Extent{}
	s.ForEach(func(id int64, ext realloc.Extent) { final[id] = ext })
	if len(final) != len(replay) {
		t.Fatalf("replay has %d objects, structure has %d", len(replay), len(final))
	}
	for id, ext := range final {
		l, ok := replay[id]
		if !ok {
			t.Fatalf("id %d missing from replay", id)
		}
		if l.ext != ext {
			t.Fatalf("id %d replayed extent %+v, actual %+v", id, l.ext, ext)
		}
		if want := s.ShardOf(id); l.shard != want {
			t.Fatalf("id %d replayed on shard %d, routed to %d", id, l.shard, want)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedSnapshotStats pins the documented snapshot semantics of
// aggregate reads under concurrent mutation (run it with -race): every
// per-shard triple is internally consistent and the totals are exactly
// the sums of the per-shard entries returned with them.
func TestShardedSnapshotStats(t *testing.T) {
	s, err := realloc.NewSharded(
		realloc.WithShards(4),
		realloc.WithRebalance(realloc.RebalancePolicy{Mode: realloc.RebalanceInline}),
	)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			gen := &workload.ZipfChurn{
				Seed: uint64(w + 1), Sizes: workload.Uniform{Min: 1, Max: 64},
				TargetVolume: 4000, Homes: 4, S: 1.8,
				FirstID: addrspace.ID(1 + int64(w)<<40),
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				op, _ := gen.Next()
				if op.Insert {
					_ = s.Insert(int64(op.ID), op.Size)
				} else {
					_ = s.Delete(int64(op.ID))
				}
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		snap := s.Snapshot()
		if len(snap.Shards) != 4 {
			t.Fatalf("snapshot has %d shards", len(snap.Shards))
		}
		var l int
		var v, f int64
		for i, ss := range snap.Shards {
			if ss.Len < 0 || ss.Volume < 0 || ss.Footprint < 0 {
				t.Fatalf("shard %d snapshot negative: %+v", i, ss)
			}
			if ss.Footprint < ss.Volume {
				t.Fatalf("shard %d footprint %d below volume %d", i, ss.Footprint, ss.Volume)
			}
			if (ss.Len == 0) != (ss.Volume == 0) {
				t.Fatalf("shard %d len %d inconsistent with volume %d", i, ss.Len, ss.Volume)
			}
			l += ss.Len
			v += ss.Volume
			f += ss.Footprint
		}
		if l != snap.Len || v != snap.Volume || f != snap.Footprint {
			t.Fatalf("totals (%d,%d,%d) are not the per-shard sums (%d,%d,%d)",
				snap.Len, snap.Volume, snap.Footprint, l, v, f)
		}
	}
	close(stop)
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWithRebalanceValidation covers the option's boundary errors.
func TestWithRebalanceValidation(t *testing.T) {
	if _, err := realloc.New(realloc.WithRebalance(realloc.RebalancePolicy{})); err == nil ||
		!strings.Contains(err.Error(), "NewSharded") {
		t.Fatalf("New accepted WithRebalance: %v", err)
	}
	if _, err := realloc.NewSharded(realloc.WithShards(2),
		realloc.WithRebalance(realloc.RebalancePolicy{Threshold: 0.9})); err == nil ||
		!strings.Contains(err.Error(), "threshold") {
		t.Fatalf("bad threshold accepted: %v", err)
	}
	s, err := realloc.NewSharded(realloc.WithShards(2),
		realloc.WithRebalance(realloc.RebalancePolicy{}))
	if err != nil {
		t.Fatalf("defaulted policy rejected: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
