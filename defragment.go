package realloc

import (
	"fmt"

	"realloc/internal/addrspace"
	"realloc/internal/defrag"
)

// Block describes one object for Defragment: its identity, size, and
// current offset in the volume being defragmented.
type Block struct {
	ID     int64
	Size   int64
	Offset int64
}

// DefragStats reports a Defragment run.
type DefragStats struct {
	Objects            int
	Volume             int64
	Delta              int64 // largest object
	PeakFootprint      int64 // never exceeds (1+eps)·V + Delta
	SpaceBudget        int64 // the theorem's (1+eps)·V + Delta budget
	TotalMoves         int64
	MaxMovesPerObject  int64
	MeanMovesPerObject float64
	// Layout is the final placement: blocks sorted by less, packed
	// contiguously.
	Layout []Block
}

// Defragment physically sorts the given blocks by less using at most
// (1+eps)·V + ∆ working space and O((1/eps)·log(1/eps)) amortized moves
// per block (Theorem 2.7). The blocks' offsets must be pairwise disjoint
// and fit in (1+eps)·V; the returned layout packs them contiguously in
// sorted order.
func Defragment(blocks []Block, less func(a, b int64) bool, eps float64) (DefragStats, error) {
	sp := addrspace.New(addrspace.RAM())
	for _, b := range blocks {
		if err := sp.Place(addrspace.ID(b.ID), addrspace.Extent{Start: b.Offset, Size: b.Size}); err != nil {
			return DefragStats{}, fmt.Errorf("realloc: invalid input layout: %w", err)
		}
	}
	st, err := defrag.Sort(sp, func(a, b addrspace.ID) bool { return less(int64(a), int64(b)) }, eps)
	if err != nil {
		return DefragStats{}, err
	}
	out := DefragStats{
		Objects:            st.Objects,
		Volume:             st.Volume,
		Delta:              st.Delta,
		PeakFootprint:      st.PeakFootprint,
		SpaceBudget:        st.SpaceBudget,
		TotalMoves:         st.TotalMoves,
		MaxMovesPerObject:  st.MaxMovesPerObject,
		MeanMovesPerObject: st.MeanMovesPerObject,
	}
	sp.ForEach(func(id addrspace.ID, ext addrspace.Extent) {
		out.Layout = append(out.Layout, Block{ID: int64(id), Size: ext.Size, Offset: ext.Start})
	})
	return out, nil
}
