package realloc_test

import (
	"fmt"
	"sync"
	"testing"

	"realloc"
	"realloc/internal/workload"
)

// driveBoth applies the same deterministic churn stream to a single-core
// and a sharded reallocator and returns both.
func driveBoth(t *testing.T, shards int, ops int) (*realloc.Reallocator, *realloc.ShardedReallocator) {
	t.Helper()
	single, err := realloc.New(realloc.WithEpsilon(0.25), realloc.WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := realloc.NewSharded(
		realloc.WithShards(shards), realloc.WithEpsilon(0.25), realloc.WithMetrics(),
	)
	if err != nil {
		t.Fatal(err)
	}
	gen := &workload.Churn{Seed: 42, Sizes: workload.Uniform{Min: 1, Max: 128}, TargetVolume: 40000}
	for i := 0; i < ops; i++ {
		op, ok := gen.Next()
		if !ok {
			break
		}
		var errS, errP error
		if op.Insert {
			errS = single.Insert(int64(op.ID), op.Size)
			errP = sharded.Insert(int64(op.ID), op.Size)
		} else {
			errS = single.Delete(int64(op.ID))
			errP = sharded.Delete(int64(op.ID))
		}
		if errS != nil || errP != nil {
			t.Fatalf("op %d (%+v): single=%v sharded=%v", i, op, errS, errP)
		}
	}
	if err := single.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := sharded.Drain(); err != nil {
		t.Fatal(err)
	}
	return single, sharded
}

// TestShardedEquivalence applies one operation stream to a single-core
// and a sharded reallocator: the live sets and volumes must match
// exactly, every shard must satisfy the full structural invariants, and
// the summed sharded footprint must honor the (1+eps) per-shard bound.
func TestShardedEquivalence(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			single, sharded := driveBoth(t, shards, 6000)

			if got, want := sharded.Len(), single.Len(); got != want {
				t.Fatalf("len: sharded=%d single=%d", got, want)
			}
			if got, want := sharded.Volume(), single.Volume(); got != want {
				t.Fatalf("volume: sharded=%d single=%d", got, want)
			}
			if got, want := sharded.Delta(), single.Delta(); got != want {
				t.Fatalf("delta: sharded=%d single=%d", got, want)
			}

			// Identical live sets with identical sizes.
			want := map[int64]int64{}
			single.ForEach(func(id int64, ext realloc.Extent) { want[id] = ext.Size })
			got := map[int64]int64{}
			sharded.ForEach(func(id int64, ext realloc.Extent) {
				if _, dup := got[id]; dup {
					t.Errorf("id %d visited twice", id)
				}
				got[id] = ext.Size
			})
			if len(got) != len(want) {
				t.Fatalf("live set size: sharded=%d single=%d", len(got), len(want))
			}
			for id, sz := range want {
				if got[id] != sz {
					t.Fatalf("id %d: sharded size %d, single size %d", id, got[id], sz)
				}
				if !sharded.Has(id) {
					t.Fatalf("id %d missing from sharded", id)
				}
				if ext, ok := sharded.Extent(id); !ok || ext.Size != sz {
					t.Fatalf("id %d extent: ok=%v size=%d want %d", id, ok, ext.Size, sz)
				}
			}

			// Per-shard structural invariants.
			if err := sharded.CheckInvariants(); err != nil {
				t.Fatal(err)
			}

			// Per-shard footprint bound, hence the summed bound. The
			// steady-state guarantee is per shard: footprint_i <=
			// (1+eps)*V_i (quiescent, after drain).
			const eps = 0.25
			var sum int64
			for i := 0; i < sharded.Shards(); i++ {
				f, v := sharded.ShardFootprint(i), sharded.ShardVolume(i)
				if float64(f) > (1+eps)*float64(v)+float64(sharded.Delta()) {
					t.Fatalf("shard %d footprint %d exceeds (1+eps)*%d + delta", i, f, v)
				}
				sum += f
			}
			if sum != sharded.Footprint() {
				t.Fatalf("footprint sum %d != Footprint() %d", sum, sharded.Footprint())
			}
			if maxF := (1 + eps) * float64(sharded.Volume()); float64(sum) > maxF+float64(sharded.Shards())*float64(sharded.Delta()) {
				t.Fatalf("summed footprint %d exceeds (1+eps)*V = %v plus slack", sum, maxF)
			}

			// Aggregated stats line up with the request stream.
			st, ok := sharded.Stats()
			if !ok {
				t.Fatal("stats not enabled")
			}
			ss, _ := single.Stats()
			if st.Inserts != ss.Inserts || st.Deletes != ss.Deletes {
				t.Fatalf("op counts: sharded %d/%d, single %d/%d",
					st.Inserts, st.Deletes, ss.Inserts, ss.Deletes)
			}
		})
	}
}

// TestShardedEvents verifies the observer pipeline: every event carries
// the emitting shard's index, consistent with ShardOf, and insert events
// cover exactly the inserted ids.
func TestShardedEvents(t *testing.T) {
	var mu sync.Mutex
	inserted := map[int64]int{}
	s, err := realloc.NewSharded(
		realloc.WithShards(4),
		realloc.WithObserver(func(e realloc.Event) {
			mu.Lock()
			defer mu.Unlock()
			if e.Kind == realloc.EventInsert {
				inserted[e.ID] = e.Shard
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for id := int64(1); id <= n; id++ {
		if err := s.Insert(id, 1+id%32); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if len(inserted) != n {
		t.Fatalf("observed %d insert events, want %d", len(inserted), n)
	}
	used := map[int]bool{}
	for id, shard := range inserted {
		if want := s.ShardOf(id); shard != want {
			t.Fatalf("id %d tagged shard %d, ShardOf says %d", id, shard, want)
		}
		used[shard] = true
	}
	// With 500 scrambled ids over 4 shards, every shard must see traffic.
	if len(used) != 4 {
		t.Fatalf("only %d of 4 shards received inserts", len(used))
	}
}

// TestShardedOptionValidation covers the constructor surface.
func TestShardedOptionValidation(t *testing.T) {
	if _, err := realloc.New(realloc.WithShards(4)); err == nil {
		t.Fatal("New should reject WithShards")
	}
	if _, err := realloc.New(realloc.WithShards(0)); err == nil {
		t.Fatal("New should reject WithShards even with 0 shards")
	}
	if _, err := realloc.NewSharded(realloc.WithShards(-1)); err == nil {
		t.Fatal("NewSharded should reject negative shard counts")
	}
	if _, err := realloc.NewSharded(realloc.WithShards(0)); err == nil {
		t.Fatal("NewSharded should reject an explicit zero shard count")
	}
	s, err := realloc.NewSharded() // default shard count
	if err != nil {
		t.Fatal(err)
	}
	if s.Shards() < 1 {
		t.Fatalf("default shards = %d", s.Shards())
	}
	if _, ok := s.Stats(); ok {
		t.Fatal("stats should be disabled without WithMetrics")
	}
	if _, ok := s.ShardStats(0); ok {
		t.Fatal("shard stats should be disabled without WithMetrics")
	}
}

// TestFailedOpsLeaveMirrorsUntouched: an Insert or Delete that errors
// must not republish the shard's read mirrors (the old code stored the
// volume mirror even when the inner delete failed).
func TestFailedOpsLeaveMirrorsUntouched(t *testing.T) {
	s, err := realloc.NewSharded(realloc.WithShards(2), realloc.WithEpsilon(0.25))
	if err != nil {
		t.Fatal(err)
	}
	for id := int64(1); id <= 64; id++ {
		if err := s.Insert(id, 7); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Snapshot()
	if err := s.Delete(9999); err == nil {
		t.Fatal("delete of unknown id should fail")
	}
	if err := s.Insert(5, 7); err == nil {
		t.Fatal("duplicate insert should fail")
	}
	if err := s.Insert(10000, 0); err == nil {
		t.Fatal("zero size insert should fail")
	}
	after := s.Snapshot()
	if before.Len != after.Len || before.Volume != after.Volume || before.Footprint != after.Footprint {
		t.Fatalf("failed ops moved the mirrors: before %+v, after %+v", before, after)
	}
	if err := s.CheckInvariants(); err != nil { // cross-checks mirror == core
		t.Fatal(err)
	}
}

// TestShardedErrors mirrors the single-core error surface.
func TestShardedErrors(t *testing.T) {
	s, err := realloc.NewSharded(realloc.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(7, 10); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(7, 10); err == nil {
		t.Fatal("duplicate insert should fail")
	}
	if err := s.Delete(8); err == nil {
		t.Fatal("delete of unknown id should fail")
	}
	if s.Has(8) {
		t.Fatal("Has(8) after failed insert")
	}
	if _, ok := s.Extent(8); ok {
		t.Fatal("Extent(8) should be absent")
	}
}
