package realloc

import (
	"errors"
	"fmt"
	"os"
	"sync"

	"realloc/internal/addrspace"
	"realloc/internal/arena"
	"realloc/internal/engine"
	"realloc/internal/telemetry"
	"realloc/internal/trace"
)

// Variant selects the algorithm; see the package documentation.
type Variant int

// Available variants.
const (
	Amortized Variant = iota
	Checkpointed
	Deamortized
)

func (v Variant) String() string { return engine.Variant(v).String() }

// Core selects the reallocation algorithm family; see the "Choosing a
// core" section of the package documentation.
type Core int

// Available cores.
const (
	// CorePODS14 is the reference core: the PODS'14 cost-oblivious
	// reallocator, supporting all three variants.
	CorePODS14 Core = iota
	// CoreFCS is the Farach-Colton–Sheffield 2024 successor core:
	// amortized O(w/ε) moved volume per size-w update, Amortized variant
	// only.
	CoreFCS
	// CoreAutoSelect probes the workload on the reference core and then
	// commits each structure to the core the observed size distribution
	// favors. Amortized variant only.
	CoreAutoSelect
)

func (c Core) String() string { return engine.Core(c).String() }

// Backend selects the payload data backend relocations execute against;
// see the "Backends" section of the package documentation.
type Backend int

// Available backends.
const (
	// Metered is the default: moved volume is counted exactly as a real
	// backend would pay it, but no bytes exist and no copies run. One
	// cell costs one byte, so metered counters and real-backend counters
	// are directly comparable.
	Metered Backend = iota
	// HeapArena stores payload bytes in a growable Go byte slice; every
	// relocation physically memmoves the object's extent.
	HeapArena
	// MmapArena stores payload bytes in an anonymous private memory
	// mapping (falling back to HeapArena semantics on platforms without
	// mmap); every relocation physically memmoves the object's extent.
	MmapArena
)

func (b Backend) String() string { return arena.Kind(b).String() }

// ParseBackend resolves a backend name (as printed by Backend.String).
func ParseBackend(s string) (Backend, error) {
	k, err := arena.ParseKind(s)
	return Backend(k), err
}

// Extent is a placement: the half-open cell interval
// [Start, Start+Size).
type Extent struct {
	Start int64
	Size  int64
}

// End returns the first address past the extent.
func (e Extent) End() int64 { return e.Start + e.Size }

// Option configures New.
type Option func(*config)

type config struct {
	epsilon     float64
	epsPrime    float64
	variant     Variant
	core        Core
	coreSet     bool
	observer    func(Event)
	metrics     bool
	paranoid    bool
	serialFlush bool
	locking     bool
	shards      int
	shardsSet   bool
	rebalance   *RebalancePolicy
	tel         *telemetry.Registry
	async       int
	backend     Backend
}

// validateEpsilon enforces the public contract at the constructor
// boundary. The message is engine.ValidateEpsilon's (which also rejects
// NaN) behind the package prefix, so the facade and the engine layer
// cannot drift.
func validateEpsilon(eps float64) error {
	if err := engine.ValidateEpsilon(eps); err != nil {
		return fmt.Errorf("realloc: %w", err)
	}
	return nil
}

// resolveCore picks the engine core a constructor builds: an explicit
// WithCore wins and is validated strictly; otherwise the REALLOC_CORE
// environment variable applies (unknown names are an error, but a core
// that cannot run the requested variant silently falls back to the
// reference core, so a test matrix exporting REALLOC_CORE=fcs leaves
// Checkpointed and Deamortized structures on the core that supports
// them); otherwise the reference core.
func (c *config) resolveCore() (engine.Core, error) {
	if c.coreSet {
		if err := engine.ValidateCombination(engine.Core(c.core), engine.Variant(c.variant)); err != nil {
			return 0, fmt.Errorf("realloc: %w", err)
		}
		return engine.Core(c.core), nil
	}
	if env := os.Getenv("REALLOC_CORE"); env != "" {
		ec, err := engine.ParseCore(env)
		if err != nil {
			return 0, fmt.Errorf("realloc: REALLOC_CORE: %w", err)
		}
		if !engine.Supports(ec, engine.Variant(c.variant)) {
			return engine.PODS14, nil
		}
		return ec, nil
	}
	return engine.PODS14, nil
}

// buildEngine constructs one engine from the resolved core and this
// config; coord shares an AutoSelect decision across shards (nil for the
// single-structure facade).
func (c *config) buildEngine(ec engine.Core, rec trace.Recorder, coord *engine.AutoCoordinator, tel *telemetry.Set) (engine.Engine, error) {
	// Each engine owns a private arena: shards never share payload
	// memory, so per-shard relocations memmove without cross-shard
	// coordination.
	data, err := arena.New(arena.Kind(c.backend))
	if err != nil {
		return nil, fmt.Errorf("realloc: %w", err)
	}
	e, err := engine.New(engine.Config{
		Core:        ec,
		Variant:     engine.Variant(c.variant),
		Epsilon:     c.epsilon,
		EpsPrime:    c.epsPrime,
		Recorder:    rec,
		Paranoid:    c.paranoid,
		SerialFlush: c.serialFlush,
		Coordinator: coord,
		Telemetry:   tel,
		Arena:       data,
	})
	if err != nil {
		return nil, fmt.Errorf("realloc: %w", err)
	}
	return e, nil
}

// validateSize is the one definition of the public size contract, shared
// by both front-ends so their messages cannot drift. core re-checks the
// same bound defensively, but callers of the public API always see this
// error.
func validateSize(size int64) error {
	if size < 1 {
		return fmt.Errorf("realloc: object size must be >= 1, got %d", size)
	}
	return nil
}

// WithEpsilon sets the footprint slack target ε in (0, 1]: the footprint
// stays within (1+ε)·V. Default 0.25.
func WithEpsilon(eps float64) Option { return func(c *config) { c.epsilon = eps } }

// WithVariant selects the algorithm variant. Default Amortized.
func WithVariant(v Variant) Option { return func(c *config) { c.variant = v } }

// WithCore selects the reallocation core. Default CorePODS14; when the
// option is absent, the REALLOC_CORE environment variable ("pods14",
// "fcs", "auto") picks the core instead wherever the requested variant
// allows it. An explicit core that cannot run the requested variant is a
// constructor error.
func WithCore(c Core) Option {
	return func(cfg *config) { cfg.core, cfg.coreSet = c, true }
}

// WithObserver registers a callback receiving every placement event —
// the hook a block translation layer uses to track physical addresses.
func WithObserver(fn func(Event)) Option { return func(c *config) { c.observer = fn } }

// WithMetrics enables the built-in metrics pipeline, which prices the
// reallocation trace under the standard subadditive cost family; read the
// results with Stats.
func WithMetrics() Option { return func(c *config) { c.metrics = true } }

// WithInvariantChecks re-validates all structural invariants after every
// request, turning violations into errors, and cross-checks every batched
// flush application against a full substrate verification. Intended for
// tests; it is O(n) per request.
func WithInvariantChecks() Option { return func(c *config) { c.paranoid = true } }

// WithSerialFlush executes flush move schedules through the per-move
// reference path instead of the batched executor. Both paths produce
// identical event streams, layouts, and stats — the differential tests
// assert it — so this option exists only for cross-validation and
// debugging; the batched executor is strictly faster.
func WithSerialFlush() Option { return func(c *config) { c.serialFlush = true } }

// WithLocking serializes all methods with a mutex, making the Reallocator
// safe for concurrent use. (The algorithm itself is inherently sequential
// — requests are an ordered stream — so a single lock is the honest
// concurrency model.) For parallel throughput beyond a single lock, see
// NewSharded.
func WithLocking() Option { return func(c *config) { c.locking = true } }

// WithShards sets the shard count for NewSharded. It only applies to
// NewSharded; passing it to New is an error. Default: runtime.GOMAXPROCS.
func WithShards(n int) Option {
	return func(c *config) { c.shards, c.shardsSet = n, true }
}

// WithTelemetry arms the runtime telemetry layer on the registry: the
// reallocator records wall-clock op-latency histograms per kind, flush
// duration/stall/chunk/moved-volume histograms, rebalancer migration
// latency, and checkpoint counts into reg. A sharded reallocator
// records into one Set per shard (reg.Shard(i)); reading the registry
// aggregates them. Recording costs two atomic adds plus two clock
// reads per op; without this option every telemetry site is a single
// nil check. The same registry may also be served live — see
// telemetry.Handler and telemetry.NewServeMux — and read at any
// frequency concurrently with operation (snapshot reads take no locks
// and allocate nothing).
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(c *config) { c.tel = reg }
}

// WithAsync arms the per-shard asynchronous submission pipeline on a
// sharded reallocator: Submit routes a batch once, pushes each op into
// its owning shard's bounded ring (depth slots per shard), and returns
// a Ticket immediately; one consumer goroutine per shard drains its
// ring into the batched execution path, so submitters never block on
// flush execution — only on a full ring (backpressure). depth must be
// >= 1. It only applies to NewSharded; passing it to New is an error.
// Call Close when done: it drains every accepted request and stops the
// consumers.
func WithAsync(depth int) Option { return func(c *config) { c.async = depth } }

// WithBackend selects the payload data backend. The default, Metered,
// counts moved volume without storing bytes — the cost-model view. A
// real backend (HeapArena, MmapArena) stores each object's payload at
// its physical extent and memmoves it on every relocation, and unlocks
// the payload API: Write, Read, and Bytes.
func WithBackend(b Backend) Option { return func(c *config) { c.backend = b } }

// WithRebalance arms dynamic cross-shard rebalancing on a sharded
// reallocator: per-shard live volume is watched, and once the imbalance
// ratio max/mean exceeds the policy threshold, bounded batches of objects
// are migrated from overloaded to underloaded shards (rerouting their
// ids) until the volumes level. It only applies to NewSharded; passing it
// to New is an error. See RebalancePolicy for the two trigger modes.
func WithRebalance(p RebalancePolicy) Option {
	return func(c *config) { c.rebalance = &p }
}

// Reallocator is the public handle for the cost-oblivious storage
// reallocator.
type Reallocator struct {
	inner   engine.Engine
	metrics *trace.Metrics
	mu      *sync.Mutex // non-nil iff WithLocking
	// tel is this structure's telemetry set (nil without WithTelemetry);
	// telReg is the whole registry, kept for Stats aggregation.
	tel    *telemetry.Set
	telReg *telemetry.Registry
	// bs is the batched-path scratch; Apply touches it only under the
	// facade lock (or the caller's external serialization, same as every
	// other mutation without WithLocking).
	bs batchScratch
}

// newRecorder builds the recorder chain one reallocator core emits into:
// metrics if enabled, plus the user observer tagged with the emitting
// shard (0 for a plain Reallocator).
func newRecorder(cfg *config, shard int) (trace.Recorder, *trace.Metrics) {
	var recs trace.Multi
	var m *trace.Metrics
	if cfg.metrics {
		m = trace.NewMetrics()
		recs = append(recs, m)
	}
	if cfg.observer != nil {
		recs = append(recs, observerAdapter{fn: cfg.observer, shard: shard})
	}
	switch len(recs) {
	case 0:
		return trace.Null{}, m
	case 1:
		return recs[0], m
	default:
		return recs, m
	}
}

// lock acquires the optional mutex and returns its release function.
func (r *Reallocator) lock() func() {
	if r.mu == nil {
		return func() {}
	}
	r.mu.Lock()
	return r.mu.Unlock
}

// New creates a Reallocator.
func New(opts ...Option) (*Reallocator, error) {
	cfg := config{epsilon: 0.25}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.shardsSet {
		return nil, errors.New("realloc: WithShards requires NewSharded")
	}
	if cfg.rebalance != nil {
		return nil, errors.New("realloc: WithRebalance requires NewSharded")
	}
	if cfg.async != 0 {
		return nil, errors.New("realloc: WithAsync requires NewSharded")
	}
	if err := validateEpsilon(cfg.epsilon); err != nil {
		return nil, err
	}
	ec, err := cfg.resolveCore()
	if err != nil {
		return nil, err
	}
	rec, m := newRecorder(&cfg, 0)
	var set *telemetry.Set
	if cfg.tel != nil {
		set = cfg.tel.Shard(0)
	}
	inner, err := cfg.buildEngine(ec, rec, nil, set)
	if err != nil {
		return nil, err
	}
	out := &Reallocator{inner: inner, metrics: m, tel: set, telReg: cfg.tel}
	if cfg.locking {
		out.mu = new(sync.Mutex)
	}
	return out, nil
}

// Insert services 〈InsertObject, id, size〉: it allocates a size-cell
// object under the caller's non-zero id.
func (r *Reallocator) Insert(id int64, size int64) error {
	if err := validateSize(size); err != nil {
		return err
	}
	if r.tel == nil {
		defer r.lock()()
		return r.inner.Insert(addrspace.ID(id), size)
	}
	// Op latency is wall-clock as the caller experiences it: lock wait
	// included, flush work the op performs included.
	start := telemetry.Now()
	defer r.lock()()
	err := r.inner.Insert(addrspace.ID(id), size)
	r.tel.InsertLatency.Record(telemetry.Now() - start)
	return err
}

// Delete services 〈DeleteObject, id〉.
func (r *Reallocator) Delete(id int64) error {
	if r.tel == nil {
		defer r.lock()()
		return r.inner.Delete(addrspace.ID(id))
	}
	start := telemetry.Now()
	defer r.lock()()
	err := r.inner.Delete(addrspace.ID(id))
	r.tel.DeleteLatency.Record(telemetry.Now() - start)
	return err
}

// Extent returns the object's current physical placement. Placements
// change as the reallocator moves objects; track them live with
// WithObserver.
func (r *Reallocator) Extent(id int64) (Extent, bool) {
	defer r.lock()()
	e, ok := r.inner.Extent(addrspace.ID(id))
	return Extent{Start: e.Start, Size: e.Size}, ok
}

// Has reports whether the object is live.
func (r *Reallocator) Has(id int64) bool {
	defer r.lock()()
	return r.inner.Has(addrspace.ID(id))
}

// Len returns the number of live objects.
func (r *Reallocator) Len() int {
	defer r.lock()()
	return r.inner.Len()
}

// Volume returns the total live volume V.
func (r *Reallocator) Volume() int64 {
	defer r.lock()()
	return r.inner.Volume()
}

// Footprint returns the largest allocated address — the quantity kept
// within (1+ε)·V.
func (r *Reallocator) Footprint() int64 {
	defer r.lock()()
	return r.inner.Footprint()
}

// Delta returns the largest object size seen (the paper's ∆).
func (r *Reallocator) Delta() int64 {
	defer r.lock()()
	return r.inner.Delta()
}

// Epsilon returns the configured footprint slack.
func (r *Reallocator) Epsilon() float64 {
	defer r.lock()()
	return r.inner.Epsilon()
}

// Core reports the core the reallocator is running. For CoreAutoSelect
// it reports the committed core — CorePODS14 while the probe is still
// observing the workload.
func (r *Reallocator) Core() Core {
	defer r.lock()()
	return Core(r.inner.Kind())
}

// Flushes returns how many buffer flushes have run.
func (r *Reallocator) Flushes() int64 {
	defer r.lock()()
	return r.inner.Flushes()
}

// FlushActive reports whether a deamortized flush is mid-execution.
func (r *Reallocator) FlushActive() bool {
	defer r.lock()()
	return r.inner.FlushActive()
}

// Drain completes any in-progress deamortized flush.
func (r *Reallocator) Drain() error {
	defer r.lock()()
	return r.inner.Drain()
}

// ForEach visits live objects in address order.
func (r *Reallocator) ForEach(fn func(id int64, ext Extent)) {
	defer r.lock()()
	r.inner.ForEach(func(id addrspace.ID, e addrspace.Extent) {
		fn(int64(id), Extent{Start: e.Start, Size: e.Size})
	})
}

// CheckInvariants validates the full structure; see WithInvariantChecks.
func (r *Reallocator) CheckInvariants() error {
	defer r.lock()()
	return r.inner.CheckInvariants()
}

// Backend reports the payload data backend the reallocator runs.
func (r *Reallocator) Backend() Backend {
	defer r.lock()()
	return Backend(r.inner.Data().Kind())
}

// BytesMoved returns the cumulative payload volume relocations have
// carried, in bytes. One cell is one byte, so on the same request
// stream a Metered and a HeapArena reallocator report the same number —
// the former counts it, the latter pays it.
func (r *Reallocator) BytesMoved() int64 {
	defer r.lock()()
	return r.inner.Data().Counters().BytesMoved
}

// Write copies p into object id's payload bytes, starting at the
// object's first cell. len(p) must not exceed the object's size. It
// requires a real backend (see WithBackend); under Metered it fails.
func (r *Reallocator) Write(id int64, p []byte) error {
	defer r.lock()()
	return r.inner.Write(addrspace.ID(id), p)
}

// Read copies object id's payload bytes into p, returning how many
// bytes were copied: min(len(p), size). It requires a real backend.
func (r *Reallocator) Read(id int64, p []byte) (int, error) {
	defer r.lock()()
	return r.inner.Read(addrspace.ID(id), p)
}

// Bytes returns object id's live payload slice, aliasing backend
// memory. The slice is valid only until the next mutating call — any
// insert or delete can move the object or grow the backend. It requires
// a real backend.
func (r *Reallocator) Bytes(id int64) ([]byte, bool) {
	defer r.lock()()
	return r.inner.Bytes(addrspace.ID(id))
}
