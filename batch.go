package realloc

import (
	"fmt"
	"sync"

	"realloc/internal/addrspace"
	"realloc/internal/telemetry"
)

// OpKind says what a batched Op does.
type OpKind uint8

const (
	// OpInsert services 〈InsertObject, ID, Size〉.
	OpInsert OpKind = iota
	// OpDelete services 〈DeleteObject, ID〉.
	OpDelete
)

// Op is one request of a Batch.
type Op struct {
	Kind OpKind
	ID   int64
	Size int64 // used by OpInsert only
}

// InsertOp builds the batched form of Insert(id, size).
func InsertOp(id, size int64) Op { return Op{Kind: OpInsert, ID: id, Size: size} }

// DeleteOp builds the batched form of Delete(id).
func DeleteOp(id int64) Op { return Op{Kind: OpDelete, ID: id} }

// Batch is an ordered group of requests submitted as one call. The
// paper's guarantees are amortized over request sequences, so a batch
// costs the core exactly what the same ops cost one by one — what
// batching buys is the front end: one lock acquisition, one mirror
// republish, and one telemetry stamp per touched shard instead of one
// per op.
type Batch []Op

// setBatchErr records err at submission index i, allocating the result
// slice only on the first error — a fully successful batch returns nil
// and allocates nothing.
func setBatchErr(result []error, n, i int, err error) []error {
	if result == nil {
		result = make([]error, n)
	}
	result[i] = err
	return result
}

func errUnknownOpKind(k OpKind) error {
	return fmt.Errorf("realloc: unknown op kind %d", k)
}

// toInternalOp converts a validated public op to the engine group form.
func toInternalOp(op Op) addrspace.Op {
	if op.Kind == OpDelete {
		return addrspace.Op{ID: addrspace.ID(op.ID), Del: true}
	}
	return addrspace.Op{ID: addrspace.ID(op.ID), Size: op.Size}
}

// growErrs hands out an n-slot error scratch, reusing capacity. Slots
// are not cleared: every consumer (ApplyGroup) writes all n of them.
func growErrs(p *[]error, n int) []error {
	if cap(*p) < n {
		*p = make([]error, n)
	}
	return (*p)[:n]
}

// resizeI32 hands out an n-slot int32 scratch, reusing capacity.
func resizeI32(p *[]int32, n int) []int32 {
	if cap(*p) < n {
		*p = make([]int32, n)
	}
	return (*p)[:n]
}

// batchPool recycles the Batch buffers the InsertBatch and DeleteBatch
// convenience forms build, keeping them allocation-free at steady state
// like Apply itself.
var batchPool = sync.Pool{New: func() any { b := make(Batch, 0, 64); return &b }}

// applier is the shared batched surface of both facades.
type applier interface{ Apply(Batch) []error }

func insertBatch(a applier, ids, sizes []int64) []error {
	if len(ids) != len(sizes) {
		return []error{fmt.Errorf("realloc: InsertBatch: %d ids but %d sizes", len(ids), len(sizes))}
	}
	bp := batchPool.Get().(*Batch)
	b := (*bp)[:0]
	for i, id := range ids {
		b = append(b, InsertOp(id, sizes[i]))
	}
	res := a.Apply(b)
	*bp = b[:0]
	batchPool.Put(bp)
	return res
}

func deleteBatch(a applier, ids []int64) []error {
	bp := batchPool.Get().(*Batch)
	b := (*bp)[:0]
	for _, id := range ids {
		b = append(b, DeleteOp(id))
	}
	res := a.Apply(b)
	*bp = b[:0]
	batchPool.Put(bp)
	return res
}

// batchScratch is the plain facade's per-structure batch scratch; it is
// only touched under the facade lock.
type batchScratch struct {
	ops  []addrspace.Op
	idx  []int32
	errs []error
}

// Apply services the batch in submission order through the engine's
// group entry point: one lock acquisition and one telemetry stamp for
// the whole batch. The returned slice is nil when every op succeeded;
// otherwise it has len(batch) slots with each failed op's error at its
// submission index. Op i's failure never prevents op j from running —
// the batch is a sequence, not a transaction, exactly like the
// equivalent loop of Insert and Delete calls.
func (r *Reallocator) Apply(batch Batch) []error {
	if len(batch) == 0 {
		return nil
	}
	var start int64
	if r.tel != nil {
		start = telemetry.Now()
	}
	defer r.lock()()
	sc := &r.bs
	ops, idx := sc.ops[:0], sc.idx[:0]
	var result []error
	for i, op := range batch {
		switch op.Kind {
		case OpInsert:
			if err := validateSize(op.Size); err != nil {
				result = setBatchErr(result, len(batch), i, err)
				continue
			}
		case OpDelete:
		default:
			result = setBatchErr(result, len(batch), i, errUnknownOpKind(op.Kind))
			continue
		}
		ops = append(ops, toInternalOp(op))
		idx = append(idx, int32(i))
	}
	if len(ops) > 0 {
		errs := growErrs(&sc.errs, len(ops))
		r.inner.ApplyGroup(ops, errs)
		for k, e := range errs {
			if e != nil {
				result = setBatchErr(result, len(batch), int(idx[k]), e)
				errs[k] = nil
			}
		}
		if r.tel != nil {
			// Per-op latency is stamped from batch submission to group
			// completion — the wall-clock each op's caller experienced —
			// with two clock reads for the whole group instead of two per
			// op. Every op in the group shares that one value, so the
			// records coalesce into one RecordN per histogram.
			end := telemetry.Now()
			r.tel.BatchSize.Record(int64(len(ops)))
			var nDel int64
			for k := range ops {
				if ops[k].Del {
					nDel++
				}
			}
			r.tel.DeleteLatency.RecordN(end-start, nDel)
			r.tel.InsertLatency.RecordN(end-start, int64(len(ops))-nDel)
		}
	}
	sc.ops, sc.idx = ops, idx
	return result
}

// InsertBatch inserts ids[i] with sizes[i] for every i, as one batch.
// Error semantics match Apply; a length mismatch is reported as a
// single-element error slice without running any op.
func (r *Reallocator) InsertBatch(ids, sizes []int64) []error {
	return insertBatch(r, ids, sizes)
}

// DeleteBatch deletes every id as one batch. Error semantics match
// Apply.
func (r *Reallocator) DeleteBatch(ids []int64) []error {
	return deleteBatch(r, ids)
}

// shardedApplyScratch carries every slice the sharded batch path needs,
// pooled so steady-state batches allocate nothing.
type shardedApplyScratch struct {
	homes  []int32 // batch index -> routed shard, -1 when pre-failed
	offs   []int32 // counting-sort offsets, len shards+1
	order  []int32 // batch indexes grouped by shard
	ops    []addrspace.Op
	idx    []int32 // group position -> batch index
	errs   []error
	clears []int64
	retry  []int32
}

// Apply services the batch with one route-table snapshot, grouping ops
// by owning shard and taking each touched shard's lock exactly once (in
// ascending shard order — the same deterministic order migrations use,
// so batches and sweeps cannot deadlock). Within a shard, ops run in
// submission order; ops on different shards run in shard order, which
// is indistinguishable from submission order unless two ops share an id
// — and same-id ops always route to the same shard, where their order
// is preserved. Error semantics match the plain facade's Apply: nil on
// full success, per-op errors at submission indexes otherwise.
func (s *ShardedReallocator) Apply(batch Batch) []error {
	if len(batch) == 0 {
		return nil
	}
	var start int64
	if s.telReg != nil {
		start = telemetry.Now()
	}
	sc := s.applyPool.Get().(*shardedApplyScratch)
	result, mutated := s.applyBatch(batch, sc, start)
	s.applyPool.Put(sc)
	if s.inline {
		s.maybeStealRebalanceN(mutated)
	}
	return result
}

// InsertBatch inserts ids[i] with sizes[i] for every i, as one batch.
// Error semantics match Apply; a length mismatch is reported as a
// single-element error slice without running any op.
func (s *ShardedReallocator) InsertBatch(ids, sizes []int64) []error {
	return insertBatch(s, ids, sizes)
}

// DeleteBatch deletes every id as one batch. Unlike a loop of Delete
// calls — which republishes the route table once per displaced id —
// the batch clears all its router overrides in one copy-on-write
// publish per touched shard.
func (s *ShardedReallocator) DeleteBatch(ids []int64) []error {
	return deleteBatch(s, ids)
}

// applyBatch is Apply minus the pooling and trigger bookkeeping; it
// reports the per-op errors and how many ops ran (the inline rebalance
// trigger counts them like any other mutations).
func (s *ShardedReallocator) applyBatch(batch Batch, sc *shardedApplyScratch, start int64) ([]error, int64) {
	n := len(s.shards)
	t := s.router.table.Load()
	homes := resizeI32(&sc.homes, len(batch))
	offs := resizeI32(&sc.offs, n+1)
	for i := range offs {
		offs[i] = 0
	}
	var result []error
	live := 0
	for i, op := range batch {
		switch op.Kind {
		case OpInsert:
			if err := validateSize(op.Size); err != nil {
				result = setBatchErr(result, len(batch), i, err)
				homes[i] = -1
				continue
			}
		case OpDelete:
		default:
			result = setBatchErr(result, len(batch), i, errUnknownOpKind(op.Kind))
			homes[i] = -1
			continue
		}
		h := int32(s.router.routeIn(t, op.ID))
		homes[i] = h
		offs[h+1]++
		live++
	}
	if live == 0 {
		return result, 0
	}
	for i := 1; i <= n; i++ {
		offs[i] += offs[i-1]
	}
	// Counting-sort pass: after it, offs[h] is the END of shard h's
	// group (the cursor walked it forward), so group h spans
	// [end(h-1), offs[h]) — no cursor copy needed.
	order := resizeI32(&sc.order, live)
	for i, h := range homes {
		if h >= 0 {
			order[offs[h]] = int32(i)
			offs[h]++
		}
	}
	retry := sc.retry[:0]
	lo := int32(0)
	for si := 0; si < n; si++ {
		hi := offs[si]
		if hi > lo {
			result = s.applyShardGroup(batch, order[lo:hi], si, t, sc, start, result, &retry)
		}
		lo = hi
	}
	// Ops whose owner changed between the snapshot and the group lock
	// (a concurrent migration won the race) fall back to the per-op
	// acquire path; migrations are rare and bounded, so this never
	// carries more than a handful of ops.
	for _, i := range retry {
		if err := s.applyOne(batch[i], start, false); err != nil {
			result = setBatchErr(result, len(batch), int(i), err)
		}
	}
	sc.retry = retry[:0]
	return result, int64(live)
}

// applyShardGroup executes one shard's share of a batch under a single
// lock acquisition: re-validate ownership like acquire does (against
// the table pointer — if no new table was published the routes cannot
// have moved), run the group through the engine's group entry, clear
// the overrides of deleted displaced ids in one route republish, and
// republish the read mirrors once.
func (s *ShardedReallocator) applyShardGroup(batch Batch, group []int32, si int, t *routeTable, sc *shardedApplyScratch, start int64, result []error, retry *[]int32) []error {
	sh := s.shards[si]
	sh.mu.Lock()
	cur := s.router.table.Load()
	ops, idx := sc.ops[:0], sc.idx[:0]
	if cur == t {
		for _, i := range group {
			ops = append(ops, toInternalOp(batch[i]))
			idx = append(idx, i)
		}
	} else {
		for _, i := range group {
			if s.router.routeIn(cur, batch[i].ID) != si {
				*retry = append(*retry, i)
				continue
			}
			ops = append(ops, toInternalOp(batch[i]))
			idx = append(idx, i)
		}
	}
	if len(ops) == 0 {
		sh.mu.Unlock()
		sc.ops, sc.idx = ops, idx
		return result
	}
	errs := growErrs(&sc.errs, len(ops))
	sh.inner.ApplyGroup(ops, errs)
	// One route republish for all of the group's displaced deletes. The
	// override set involving this shard is frozen while we hold its lock
	// (adding or dropping an override for an id owned here needs this
	// lock), so checking cur's override map is authoritative.
	if cur.overrides != nil {
		clears := sc.clears[:0]
		for k, i := range idx {
			if errs[k] == nil && batch[i].Kind == OpDelete {
				if _, ok := cur.overrides[int64(ops[k].ID)]; ok {
					clears = append(clears, int64(ops[k].ID))
				}
			}
		}
		s.router.clearAll(clears)
		sc.clears = clears[:0]
	}
	sh.publish()
	if sh.tel != nil {
		// One clock read closes the whole group; each op's latency is
		// submit-to-group-completion, the wall-clock its caller saw.
		// The group shares that single value, so its records coalesce
		// into one RecordN per histogram.
		end := telemetry.Now()
		sh.tel.BatchSize.Record(int64(len(ops)))
		var nDel int64
		for k := range ops {
			if ops[k].Del {
				nDel++
			}
		}
		sh.tel.DeleteLatency.RecordN(end-start, nDel)
		sh.tel.InsertLatency.RecordN(end-start, int64(len(ops))-nDel)
	}
	sh.mu.Unlock()
	for k, e := range errs {
		if e != nil {
			result = setBatchErr(result, len(batch), int(idx[k]), e)
			errs[k] = nil
		}
	}
	sc.ops, sc.idx = ops, idx
	return result
}

// applyOne is the batch path's per-op fallback (reroute races, async
// stragglers): the body of Insert/Delete with the latency stamped from
// the batch's submit time. asyncLat selects the submit-to-complete
// histogram the async pipeline reports instead of the sync op-latency
// ones.
func (s *ShardedReallocator) applyOne(op Op, start int64, asyncLat bool) error {
	sh, _ := s.acquire(op.ID)
	var err error
	if op.Kind == OpDelete {
		err = sh.inner.Delete(addrspace.ID(op.ID))
	} else {
		err = sh.inner.Insert(addrspace.ID(op.ID), op.Size)
	}
	if err == nil {
		sh.publish()
		if op.Kind == OpDelete {
			s.router.clear(op.ID)
		}
	}
	if sh.tel != nil {
		end := telemetry.Now()
		sh.tel.BatchSize.Record(1)
		switch {
		case asyncLat:
			sh.tel.SubmitLatency.Record(end - start)
		case op.Kind == OpDelete:
			sh.tel.DeleteLatency.Record(end - start)
		default:
			sh.tel.InsertLatency.Record(end - start)
		}
	}
	sh.mu.Unlock()
	return err
}

// maybeStealRebalanceN is maybeStealRebalance for a batch of n mutating
// ops: the counter advances by n and the skew check fires when the
// batch crossed a CheckEvery boundary, so batched and per-op traffic
// trigger at the same op cadence.
func (s *ShardedReallocator) maybeStealRebalanceN(n int64) {
	if n <= 0 {
		return
	}
	c := s.opCount.Add(n)
	every := int64(s.pol.CheckEvery)
	if (c-n)/every != c/every && s.skewedNow() {
		s.tryRebalance()
	}
}

// clearAll drops every listed id's override in one copy-on-write
// publish — the batched form of clear, with the same safety contract:
// the caller holds the owning shard's lock for every id, so a stale
// override can never outlive a live object it would misroute.
func (rt *router) clearAll(ids []int64) {
	if len(ids) == 0 {
		return
	}
	rt.update(func(m map[int64]int) bool {
		changed := false
		for _, id := range ids {
			if _, ok := m[id]; ok {
				delete(m, id)
				changed = true
			}
		}
		return changed
	})
}
