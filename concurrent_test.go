package realloc_test

import (
	"sync"
	"testing"

	"realloc"
)

// TestConcurrentAccess hammers a locked Reallocator from many goroutines.
// Run with -race to verify the mutex actually covers every method.
func TestConcurrentAccess(t *testing.T) {
	r, err := realloc.New(
		realloc.WithEpsilon(0.25),
		realloc.WithVariant(realloc.Deamortized),
		realloc.WithLocking(),
	)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const perWorker = 400
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			base := int64(w*perWorker + 1)
			for i := int64(0); i < perWorker; i++ {
				id := base + i
				if err := r.Insert(id, 1+id%64); err != nil {
					t.Errorf("insert %d: %v", id, err)
					return
				}
				if i%3 == 2 {
					if err := r.Delete(id - 1); err != nil {
						t.Errorf("delete %d: %v", id-1, err)
						return
					}
				}
				// Interleave reads, including the accessors that
				// historically bypassed the mutex.
				_, _ = r.Extent(id)
				_ = r.Volume()
				_ = r.Footprint()
				_ = r.Delta()
				_ = r.Epsilon()
				_ = r.Flushes()
				_ = r.FlushActive()
			}
		}()
	}
	wg.Wait()
	if err := r.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	want := workers * perWorker * 2 / 3
	if got := r.Len(); got < want-workers || got > want+workers {
		t.Fatalf("len = %d, want about %d", got, want)
	}
}

// TestShardedConcurrentAccess hammers a ShardedReallocator from many
// goroutines, mixing single-object traffic with cross-shard aggregate
// reads. Run with -race to verify per-shard locking covers everything.
func TestShardedConcurrentAccess(t *testing.T) {
	s, err := realloc.NewSharded(
		realloc.WithShards(4),
		realloc.WithEpsilon(0.25),
		realloc.WithVariant(realloc.Deamortized),
		realloc.WithMetrics(),
	)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const perWorker = 400
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			base := int64(w*perWorker + 1)
			for i := int64(0); i < perWorker; i++ {
				id := base + i
				if err := s.Insert(id, 1+id%64); err != nil {
					t.Errorf("insert %d: %v", id, err)
					return
				}
				if i%3 == 2 {
					if err := s.Delete(id - 1); err != nil {
						t.Errorf("delete %d: %v", id-1, err)
						return
					}
				}
				// Single-shard reads.
				_, _ = s.Extent(id)
				_ = s.Has(id)
				// Cross-shard aggregates.
				_ = s.Volume()
				_ = s.Footprint()
				_ = s.Delta()
				_ = s.Epsilon()
				_ = s.Flushes()
				_ = s.FlushActive()
				if i%50 == 0 {
					_, _ = s.Stats()
					_, _ = s.ShardStats(s.ShardOf(id))
				}
			}
		}()
	}
	wg.Wait()
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	want := workers * perWorker * 2 / 3
	if got := s.Len(); got < want-workers || got > want+workers {
		t.Fatalf("len = %d, want about %d", got, want)
	}
}
