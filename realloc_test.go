package realloc_test

import (
	"math/rand/v2"
	"testing"

	"realloc"
)

func TestPublicAPIBasics(t *testing.T) {
	for _, v := range []realloc.Variant{realloc.Amortized, realloc.Checkpointed, realloc.Deamortized} {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			r, err := realloc.New(
				realloc.WithEpsilon(0.25),
				realloc.WithVariant(v),
				realloc.WithMetrics(),
				realloc.WithInvariantChecks(),
			)
			if err != nil {
				t.Fatal(err)
			}
			for id := int64(1); id <= 300; id++ {
				if err := r.Insert(id, 1+(id%50)); err != nil {
					t.Fatal(err)
				}
			}
			for id := int64(2); id <= 300; id += 2 {
				if err := r.Delete(id); err != nil {
					t.Fatal(err)
				}
			}
			if err := r.Drain(); err != nil {
				t.Fatal(err)
			}
			if r.Len() != 150 {
				t.Fatalf("len = %d", r.Len())
			}
			if !r.Has(1) || r.Has(2) {
				t.Fatal("Has is wrong")
			}
			ext, ok := r.Extent(1)
			if !ok || ext.Size != 2 {
				t.Fatalf("extent of 1: %+v %v", ext, ok)
			}
			if ext.End() != ext.Start+ext.Size {
				t.Fatal("Extent.End arithmetic")
			}
			if got := float64(r.Footprint()) / float64(r.Volume()); got > 1.27 {
				t.Fatalf("footprint ratio %v", got)
			}
			if r.Epsilon() != 0.25 {
				t.Fatalf("epsilon = %v", r.Epsilon())
			}
			if r.Delta() != 50 {
				t.Fatalf("delta = %d", r.Delta())
			}
			st, ok := r.Stats()
			if !ok {
				t.Fatal("stats missing despite WithMetrics")
			}
			if st.Inserts != 300 || st.Deletes != 150 {
				t.Fatalf("stats counts: %+v", st)
			}
			if len(st.CostRatios) == 0 {
				t.Fatal("no cost ratios")
			}
			if err := r.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestPublicAPIValidation(t *testing.T) {
	if _, err := realloc.New(realloc.WithEpsilon(0)); err == nil {
		t.Fatal("eps 0 accepted")
	}
	if _, err := realloc.New(realloc.WithEpsilon(2)); err == nil {
		t.Fatal("eps 2 accepted")
	}
	r, _ := realloc.New()
	if r.Epsilon() != 0.25 {
		t.Fatalf("default epsilon = %v", r.Epsilon())
	}
	if _, ok := r.Stats(); ok {
		t.Fatal("stats present without WithMetrics")
	}
}

// TestObserverTracksExtents verifies the observer event contract: applying
// insert/move/delete events to a shadow map reproduces Extent exactly —
// this is what a block translation layer relies on.
func TestObserverTracksExtents(t *testing.T) {
	shadow := map[int64]realloc.Extent{}
	r, err := realloc.New(
		realloc.WithEpsilon(0.25),
		realloc.WithVariant(realloc.Checkpointed),
		realloc.WithObserver(func(e realloc.Event) {
			switch e.Kind {
			case realloc.EventInsert:
				shadow[e.ID] = realloc.Extent{Start: e.To, Size: e.Size}
			case realloc.EventMove:
				shadow[e.ID] = realloc.Extent{Start: e.To, Size: e.Size}
			case realloc.EventDelete:
				delete(shadow, e.ID)
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(8, 8))
	live := []int64{}
	next := int64(1)
	for op := 0; op < 2500; op++ {
		if len(live) == 0 || rng.IntN(5) < 3 {
			if err := r.Insert(next, 1+rng.Int64N(80)); err != nil {
				t.Fatal(err)
			}
			live = append(live, next)
			next++
		} else {
			i := rng.IntN(len(live))
			if err := r.Delete(live[i]); err != nil {
				t.Fatal(err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	if len(shadow) != r.Len() {
		t.Fatalf("shadow has %d entries, reallocator %d", len(shadow), r.Len())
	}
	r.ForEach(func(id int64, ext realloc.Extent) {
		if shadow[id] != ext {
			t.Fatalf("object %d: shadow %+v, actual %+v", id, shadow[id], ext)
		}
	})
}

func TestEventKindStrings(t *testing.T) {
	kinds := []realloc.EventKind{
		realloc.EventInsert, realloc.EventDelete, realloc.EventMove,
		realloc.EventCheckpoint, realloc.EventFlushStart, realloc.EventFlushEnd,
		realloc.EventKind(250),
	}
	want := []string{"insert", "delete", "move", "checkpoint", "flush-start", "flush-end", "unknown"}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Errorf("kind %d = %q", i, k.String())
		}
	}
}

func TestPublicBlockStore(t *testing.T) {
	s, err := realloc.NewBlockStore(realloc.BlockStoreEpsilon(0.25), realloc.BlockStoreDeamortized())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Reserve("root", 64); err != nil {
		t.Fatal(err)
	}
	if err := s.Update("root", 128); err != nil {
		t.Fatal(err)
	}
	ext, ok := s.Lookup("root")
	if !ok || ext.Size != 128 {
		t.Fatalf("lookup: %+v %v", ext, ok)
	}
	s.Checkpoint()
	s.Crash()
	n, err := s.Recover()
	if err != nil || n != 1 {
		t.Fatalf("recover: %d %v", n, err)
	}
	if err := s.Drop("root"); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.Checkpoints() == 0 {
		t.Fatal("checkpoint counter")
	}
	_ = s.Footprint()
	_ = s.Volume()
}

func TestPublicScheduler(t *testing.T) {
	s, err := realloc.NewScheduler(0.25)
	if err != nil {
		t.Fatal(err)
	}
	for id := int64(1); id <= 20; id++ {
		if err := s.AddJob(id, 10+id); err != nil {
			t.Fatal(err)
		}
	}
	if s.Jobs() != 20 {
		t.Fatalf("jobs = %d", s.Jobs())
	}
	if float64(s.Makespan()) > 1.27*float64(s.TotalWork()) {
		t.Fatalf("makespan %d vs work %d", s.Makespan(), s.TotalWork())
	}
	start, end, ok := s.Interval(5)
	if !ok || end-start != 15 {
		t.Fatalf("interval: %d %d %v", start, end, ok)
	}
	if err := s.RemoveJob(5); err != nil {
		t.Fatal(err)
	}
	if s.Gantt(50) == "" {
		t.Fatal("empty gantt")
	}
}

func TestPublicDefragment(t *testing.T) {
	blocks := []realloc.Block{
		{ID: 3, Size: 10, Offset: 0},
		{ID: 1, Size: 5, Offset: 12},
		{ID: 2, Size: 8, Offset: 20},
	}
	st, err := realloc.Defragment(blocks, func(a, b int64) bool { return a < b }, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if st.Objects != 3 || st.Volume != 23 {
		t.Fatalf("stats: %+v", st)
	}
	if len(st.Layout) != 3 {
		t.Fatalf("layout: %+v", st.Layout)
	}
	for i := 1; i < len(st.Layout); i++ {
		if st.Layout[i].ID < st.Layout[i-1].ID {
			t.Fatal("layout not sorted")
		}
		if st.Layout[i].Offset != st.Layout[i-1].Offset+st.Layout[i-1].Size {
			t.Fatal("layout not packed")
		}
	}
	if st.PeakFootprint > st.SpaceBudget {
		t.Fatalf("peak %d > budget %d", st.PeakFootprint, st.SpaceBudget)
	}
	// Overlapping input must be rejected.
	bad := []realloc.Block{{ID: 1, Size: 10, Offset: 0}, {ID: 2, Size: 10, Offset: 5}}
	if _, err := realloc.Defragment(bad, func(a, b int64) bool { return a < b }, 0.5); err == nil {
		t.Fatal("overlapping input accepted")
	}
}
