package realloc_test

// The benchmark suite regenerates every experiment of EXPERIMENTS.md
// (BenchmarkE1..BenchmarkE10 — one per table/figure reproduced from the
// paper) and measures raw request throughput for the three reallocator
// variants and every baseline allocator.
//
// Run with: go test -bench=. -benchmem

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"realloc"
	"realloc/internal/addrspace"
	"realloc/internal/baseline"
	"realloc/internal/core"
	"realloc/internal/engine"
	"realloc/internal/exp"
	"realloc/internal/telemetry"
	"realloc/internal/trace"
	"realloc/internal/workload"
)

// benchExperiment runs one harness experiment per iteration and reports a
// headline finding as a custom metric.
func benchExperiment(b *testing.B, id string, metricKey, metricName string) {
	e, ok := exp.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	var last float64
	for i := 0; i < b.N; i++ {
		res, err := e.Run(exp.Config{Seed: 1, Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if metricKey != "" {
			last = res.Findings[metricKey]
		}
	}
	if metricKey != "" {
		b.ReportMetric(last, metricName)
	}
}

func BenchmarkE1FootprintVsEpsilon(b *testing.B) {
	benchExperiment(b, "E1", "amortized/0.1/structRatio", "footprint-ratio@eps=0.1")
}

func BenchmarkE2CostObliviousness(b *testing.B) {
	benchExperiment(b, "E2", "0.1/unit/ratio", "unit-cost-ratio@eps=0.1")
}

func BenchmarkE3BaselineCrossover(b *testing.B) {
	benchExperiment(b, "E3", "unitkiller/1024/logcompact/perDeletion", "logcompact-cost/deletion@1024")
}

func BenchmarkE4NoMoveLowerBound(b *testing.B) {
	benchExperiment(b, "E4", "10/firstfit/finalRatio", "firstfit-footprint-ratio@maxExp=10")
}

func BenchmarkE5Defrag(b *testing.B) {
	benchExperiment(b, "E5", "0.25/meanMoves", "moves/object@eps=0.25")
}

func BenchmarkE6Checkpoints(b *testing.B) {
	benchExperiment(b, "E6", "0.1/maxCkptPerFlush", "max-ckpts/flush@eps=0.1")
}

func BenchmarkE7Deamortized(b *testing.B) {
	benchExperiment(b, "E7", "deamortized/maxOpVolume", "max-op-volume")
}

func BenchmarkE8LowerBound(b *testing.B) {
	benchExperiment(b, "E8", "1024/amortized/linear", "maxOp/f(delta)@1024")
}

func BenchmarkE9Figures(b *testing.B) {
	benchExperiment(b, "E9", "fig1/after", "fig1-footprint-after")
}

func BenchmarkE10Ablations(b *testing.B) {
	benchExperiment(b, "E10", "epsPrime/4/structRatio", "struct-ratio@eps'/4")
}

func BenchmarkE11DatabaseEndToEnd(b *testing.B) {
	benchExperiment(b, "E11", "deamortized/hdd/ratio", "hdd-cost-ratio")
}

func BenchmarkE12PriceOfObliviousness(b *testing.B) {
	benchExperiment(b, "E12", "premium/linear", "linear-premium")
}

func BenchmarkE13ShardScaling(b *testing.B) {
	benchExperiment(b, "E13", "shards/8/speedup", "8-shard-speedup")
}

// benchChurnTarget measures steady-state request throughput.
func benchChurnTarget(b *testing.B, t workload.Target) {
	benchChurnTargetVolume(b, t, 100000)
}

// benchChurnTargetVolume is benchChurnTarget with an explicit live-volume
// target: the structure is warmed to steady state at that volume outside
// the timer, so the timed region measures only steady churn.
func benchChurnTargetVolume(b *testing.B, t workload.Target, vol int64) {
	churn := &workload.Churn{
		Seed:         7,
		Sizes:        workload.Uniform{Min: 1, Max: 256},
		TargetVolume: vol,
	}
	// Warm up to steady state outside the timer: reach the target volume
	// (mean object size is ~128 cells) and then churn past a few flushes.
	warm := int(vol/128)*2 + 3000
	if _, err := workload.Drive(t, churn, warm); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op, _ := churn.Next()
		var err error
		if op.Insert {
			err = t.Insert(op.ID, op.Size)
		} else {
			err = t.Delete(op.ID)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func newVariant(b *testing.B, v core.Variant) *core.Reallocator {
	r, err := core.New(core.Config{Epsilon: 0.25, Variant: v, Recorder: trace.Null{}})
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// newFCS builds the successor core behind the engine boundary, so the
// churn benchmarks price both cores over identical streams.
func newFCS(b *testing.B) engine.Engine {
	e, err := engine.New(engine.Config{Core: engine.FCS, Epsilon: 0.25, Recorder: trace.Null{}})
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkChurnScaling sweeps steady-state churn across live volumes of
// 1e4, 1e5, and 1e6 cells for all three variants of the reference core
// plus the FCS successor, making per-op growth visible in one run. Per-op
// cost should stay near-flat across the sweep (the amortized flush bound
// is O(1/ε) volume per request; the successor's swap/rebuild bound is
// O(1/ε) too); superlinear growth here means a core's bookkeeping is
// outrunning its paper's bound. CI runs this with -benchmem and trips on
// a 1e5→1e6 blowup.
func BenchmarkChurnScaling(b *testing.B) {
	for _, v := range []core.Variant{core.Amortized, core.Checkpointed, core.Deamortized} {
		for _, vol := range []int64{10000, 100000, 1000000} {
			b.Run(fmt.Sprintf("%s/cells=%d", v, vol), func(b *testing.B) {
				benchChurnTargetVolume(b, newVariant(b, v), vol)
			})
		}
	}
	for _, vol := range []int64{10000, 100000, 1000000} {
		b.Run(fmt.Sprintf("fcs/cells=%d", vol), func(b *testing.B) {
			benchChurnTargetVolume(b, newFCS(b), vol)
		})
	}
}

func BenchmarkChurnAmortized(b *testing.B)    { benchChurnTarget(b, newVariant(b, core.Amortized)) }
func BenchmarkChurnCheckpointed(b *testing.B) { benchChurnTarget(b, newVariant(b, core.Checkpointed)) }
func BenchmarkChurnDeamortized(b *testing.B)  { benchChurnTarget(b, newVariant(b, core.Deamortized)) }
func BenchmarkChurnFirstFit(b *testing.B)     { benchChurnTarget(b, baseline.NewFirstFit(nil)) }
func BenchmarkChurnBestFit(b *testing.B)      { benchChurnTarget(b, baseline.NewBestFit(nil)) }
func BenchmarkChurnBuddy(b *testing.B)        { benchChurnTarget(b, baseline.NewBuddy(nil)) }
func BenchmarkChurnFCS(b *testing.B)          { benchChurnTarget(b, newFCS(b)) }
func BenchmarkChurnLogCompact(b *testing.B)   { benchChurnTarget(b, baseline.NewLogCompact(nil)) }
func BenchmarkChurnClassGap(b *testing.B)     { benchChurnTarget(b, baseline.NewClassGap(nil)) }

// BenchmarkChurnTelemetry prices the telemetry layer itself: the same
// steady-state churn through the public facade with telemetry off and
// on, for an amortized and a deamortized core. cmd/benchgate's
// -overhead lane compares each on/off pair and fails CI when arming
// telemetry costs more than 10% — the recording budget is two atomic
// adds plus two clock reads per op.
func BenchmarkChurnTelemetry(b *testing.B) {
	for _, v := range []realloc.Variant{realloc.Amortized, realloc.Deamortized} {
		for _, mode := range []string{"off", "on"} {
			b.Run(fmt.Sprintf("%s/%s", v, mode), func(b *testing.B) {
				opts := []realloc.Option{realloc.WithEpsilon(0.25), realloc.WithVariant(v)}
				if mode == "on" {
					opts = append(opts, realloc.WithTelemetry(telemetry.NewRegistry()))
				}
				r, err := realloc.New(opts...)
				if err != nil {
					b.Fatal(err)
				}
				benchChurnTargetVolume(b, publicAdapter{r}, 100000)
			})
		}
	}
}

// BenchmarkChurnBackend prices what paying real memmoves costs: the
// same steady-state churn through the public facade on the metered
// backend (moved volume is counted, no bytes exist) and on the heap
// arena (every relocation physically copies the object's extent), for
// the reference and the FCS core. cmd/benchgate's -bytes lane compares
// each heap/metered pair and fails CI when real copies inflate per-op
// cost beyond its bound — the honest price of the cost model's "moved
// volume" unit.
func BenchmarkChurnBackend(b *testing.B) {
	for _, c := range []realloc.Core{realloc.CorePODS14, realloc.CoreFCS} {
		for _, bk := range []realloc.Backend{realloc.Metered, realloc.HeapArena} {
			b.Run(fmt.Sprintf("%s/%s", c, bk), func(b *testing.B) {
				r, err := realloc.New(realloc.WithEpsilon(0.25), realloc.WithCore(c), realloc.WithBackend(bk))
				if err != nil {
					b.Fatal(err)
				}
				benchChurnTargetVolume(b, publicAdapter{r}, 100000)
			})
		}
	}
}

// concurrentTarget is the surface the parallel churn benchmarks drive;
// the locked single-core facade and the sharded facade both satisfy it.
type concurrentTarget interface {
	Insert(id int64, size int64) error
	Delete(id int64) error
}

// benchParallelChurn measures concurrent churn throughput with
// b.RunParallel: each goroutine works a private id space (goroutine index
// in the high bits) and holds its live volume near a per-goroutine
// target, so every timed iteration is exactly one Insert or Delete.
// Every worker's population is seeded to the steady-state volume outside
// the timer, so the timed region measures steady churn rather than
// initial growth no matter what b.N the harness picks.
func benchParallelChurn(b *testing.B, t concurrentTarget) {
	type obj struct{ id, size int64 }
	type state struct {
		rng  *rand.Rand
		next int64
		live []obj
		vol  int64
	}
	const targetVol = 1 << 17
	const maxSize = 16
	workers := runtime.GOMAXPROCS(0)
	states := make([]*state, workers)
	for w := range states {
		st := &state{rng: rand.New(rand.NewPCG(uint64(w+1), 0x5a4d)), next: 1}
		base := int64(w+1) << 40
		for st.vol < targetVol {
			id := base | st.next
			st.next++
			size := int64(1 + st.rng.IntN(maxSize))
			if err := t.Insert(id, size); err != nil {
				b.Fatal(err)
			}
			st.live = append(st.live, obj{id, size})
			st.vol += size
		}
		states[w] = st
	}
	b.ReportAllocs()
	b.ResetTimer()
	var worker atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		i := int(worker.Add(1)) - 1
		if i >= len(states) {
			b.Error("more parallel goroutines than GOMAXPROCS")
			return
		}
		st := states[i]
		base := int64(i+1) << 40
		for pb.Next() {
			if st.vol < targetVol || st.rng.IntN(2) == 0 {
				id := base | st.next
				st.next++
				size := int64(1 + st.rng.IntN(maxSize))
				if err := t.Insert(id, size); err != nil {
					b.Error(err)
					return
				}
				st.live = append(st.live, obj{id, size})
				st.vol += size
			} else {
				j := st.rng.IntN(len(st.live))
				o := st.live[j]
				st.live[j] = st.live[len(st.live)-1]
				st.live = st.live[:len(st.live)-1]
				if err := t.Delete(o.id); err != nil {
					b.Error(err)
					return
				}
				st.vol -= o.size
			}
		}
	})
}

// BenchmarkShardedChurnLocked1 is the single-lock baseline the sharded
// configurations are measured against; compare ns/op (one op each):
//
//	go test -bench Sharded -cpu 8
func BenchmarkShardedChurnLocked1(b *testing.B) {
	r, err := realloc.New(realloc.WithEpsilon(0.25), realloc.WithLocking())
	if err != nil {
		b.Fatal(err)
	}
	benchParallelChurn(b, r)
}

func benchShardedChurn(b *testing.B, shards int) {
	s, err := realloc.NewSharded(realloc.WithEpsilon(0.25), realloc.WithShards(shards))
	if err != nil {
		b.Fatal(err)
	}
	benchParallelChurn(b, s)
}

func BenchmarkShardedChurn2(b *testing.B) { benchShardedChurn(b, 2) }
func BenchmarkShardedChurn4(b *testing.B) { benchShardedChurn(b, 4) }
func BenchmarkShardedChurn8(b *testing.B) { benchShardedChurn(b, 8) }

// benchShardedSkew replays a zipf-skewed churn stream — most of the live
// volume aimed at one static hash home — across 8 workers, with the
// stream partitioned by id so per-id op order is preserved. The static
// build pays twice for the skew: workers serialize on the hot shard's
// lock, and that shard's per-op churn cost grows superlinearly with its
// live volume (see ROADMAP); the rebalancing build levels the volume and
// escapes both. Compare:
//
//	go test -bench ShardedSkew8 -cpu 8
func benchShardedSkew(b *testing.B, rebal bool) {
	const shards, workers = 8, 8
	gen := &workload.ZipfChurn{
		Seed:         99,
		Sizes:        workload.Uniform{Min: 1, Max: 128},
		TargetVolume: 3200000,
		Homes:        shards,
		S:            1.8,
	}
	seqs := make([][]workload.Op, workers)
	for _, op := range workload.Collect(gen, b.N) {
		w := int(op.ID) % workers
		seqs[w] = append(seqs[w], op)
	}
	opts := []realloc.Option{realloc.WithShards(shards), realloc.WithEpsilon(0.25)}
	if rebal {
		opts = append(opts, realloc.WithRebalance(realloc.RebalancePolicy{
			Mode:         realloc.RebalanceInline,
			Threshold:    1.25,
			CheckEvery:   32,
			BatchObjects: 512,
		}))
	}
	s, err := realloc.NewSharded(opts...)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seq []workload.Op) {
			defer wg.Done()
			for _, op := range seq {
				var err error
				if op.Insert {
					err = s.Insert(int64(op.ID), op.Size)
				} else {
					err = s.Delete(int64(op.ID))
				}
				if err != nil {
					b.Error(err)
					return
				}
			}
		}(seqs[w])
	}
	wg.Wait()
	b.StopTimer()
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkShardedSkew8(b *testing.B) {
	b.Run("static", func(b *testing.B) { benchShardedSkew(b, false) })
	b.Run("rebalance", func(b *testing.B) { benchShardedSkew(b, true) })
}

// benchShardedParallelMix drives a fixed-width sharded reallocator from
// GOMAXPROCS goroutines, each owning a disjoint exp.MixStream (the same
// driver experiment E15 runs, so the CI gate and the experiment harness
// measure one workload): readPct% of the timed iterations are reads
// (alternating Extent and Has on a random live id) and the rest churn
// steps that hold each worker's live volume near its target. The shard
// count is pinned at 8 so `-cpu 1,2,4,8` sweeps parallelism over an
// identical structure; the cores→throughput curve is the scaling result
// (see BENCH_ci_scaling).
func benchShardedParallelMix(b *testing.B, readPct int) {
	const shards = 8
	const targetVol = 1 << 15
	const maxSize = 16
	s, err := realloc.NewSharded(realloc.WithEpsilon(0.25), realloc.WithShards(shards))
	if err != nil {
		b.Fatal(err)
	}
	workers := runtime.GOMAXPROCS(0)
	streams := make([]*exp.MixStream, workers)
	for w := range streams {
		streams[w] = exp.NewMixStream(uint64(w+1), w, targetVol, maxSize)
		if err := streams[w].Seed(s); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var worker atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		i := int(worker.Add(1)) - 1
		if i >= len(streams) {
			b.Error("more parallel goroutines than GOMAXPROCS")
			return
		}
		m := streams[i]
		for pb.Next() {
			if err := m.Step(s, readPct); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// benchShardedParallelZipf is the zipf-skewed variant: each worker
// replays a private ZipfChurn stream (disjoint ids via FirstID, hash
// homes concentrated by the zipf law), so the hot shard's lock is the
// contended resource the scaling curve exposes.
func benchShardedParallelZipf(b *testing.B) {
	const shards = 8
	const targetVol = 1 << 15
	s, err := realloc.NewSharded(realloc.WithEpsilon(0.25), realloc.WithShards(shards))
	if err != nil {
		b.Fatal(err)
	}
	workers := runtime.GOMAXPROCS(0)
	gens := make([]*workload.ZipfChurn, workers)
	for w := range gens {
		gens[w] = &workload.ZipfChurn{
			Seed:         uint64(w + 1),
			Sizes:        workload.Uniform{Min: 1, Max: 16},
			TargetVolume: targetVol,
			Homes:        shards,
			S:            1.2,
			FirstID:      addrspace.ID(1 + int64(w+1)<<40),
		}
		// Warm each stream to its steady-state volume outside the timer.
		for i := 0; i < targetVol/8*2+3000; i++ {
			op, ok := gens[w].Next()
			if !ok {
				break
			}
			var err error
			if op.Insert {
				err = s.Insert(int64(op.ID), op.Size)
			} else {
				err = s.Delete(int64(op.ID))
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var worker atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		i := int(worker.Add(1)) - 1
		if i >= len(gens) {
			b.Error("more parallel goroutines than GOMAXPROCS")
			return
		}
		gen := gens[i]
		for pb.Next() {
			op, ok := gen.Next()
			if !ok {
				b.Error("zipf stream ended")
				return
			}
			var err error
			if op.Insert {
				err = s.Insert(int64(op.ID), op.Size)
			} else {
				err = s.Delete(int64(op.ID))
			}
			if err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// benchShardedParallelMixBatched is benchShardedParallelMix with churn
// submitted through Apply in groups of batch ops (reads stay inline):
// the same MixStream workload E15's batched scenarios replay, so the
// per-op and batched scaling curves stay comparable. Each timed
// iteration is still one logical op; up to batch-1 churn ops per worker
// remain pending when the timer stops, which is noise at benchmark op
// counts.
func benchShardedParallelMixBatched(b *testing.B, readPct, batch int) {
	const shards = 8
	const targetVol = 1 << 15
	const maxSize = 16
	s, err := realloc.NewSharded(realloc.WithEpsilon(0.25), realloc.WithShards(shards))
	if err != nil {
		b.Fatal(err)
	}
	workers := runtime.GOMAXPROCS(0)
	streams := make([]*exp.MixStream, workers)
	for w := range streams {
		streams[w] = exp.NewMixStream(uint64(w+1), w, targetVol, maxSize)
		if err := streams[w].Seed(s); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var worker atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		i := int(worker.Add(1)) - 1
		if i >= len(streams) {
			b.Error("more parallel goroutines than GOMAXPROCS")
			return
		}
		m := streams[i]
		for pb.Next() {
			if err := m.StepBatched(s, readPct, batch); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkShardedParallel is the parallel scaling suite: run with
//
//	go test -bench ShardedParallel -cpu 1,2,4,8
//
// and compare ns/op across the -cpu sweep. cmd/benchgate's scaling gate
// enforces the mixed curve in CI. The Batch64 lanes submit churn
// through Apply — the batched path amortizes the shard lock, mirror
// publish, and telemetry stamp across the group, so their curves bound
// what batching buys under parallel load.
func BenchmarkShardedParallel(b *testing.B) {
	b.Run("read", func(b *testing.B) { benchShardedParallelMix(b, 100) })
	b.Run("mixed", func(b *testing.B) { benchShardedParallelMix(b, 95) })
	b.Run("churnUniform", func(b *testing.B) { benchShardedParallelMix(b, 0) })
	b.Run("churnZipf", benchShardedParallelZipf)
	b.Run("mixedBatch64", func(b *testing.B) { benchShardedParallelMixBatched(b, 95, 64) })
	b.Run("churnBatch64", func(b *testing.B) { benchShardedParallelMixBatched(b, 0, 64) })
}

// benchBatchChurnSetup builds the batched-vs-per-op pricing workload
// the benchgate -batch lane compares: stack-order churn (delete the
// most recently inserted objects, then re-insert them) over a small
// resident set of size-1 objects, on the FCS core at ε=1 with
// telemetry armed. Stack-order deletes never trigger the core's
// hole-filling swap move and the tiny resident set keeps index and
// map costs minimal, so the request mix is dominated by front-end
// cost — route, shard lock, mirror publish, telemetry stamp — which
// is exactly what the group entry amortizes and the gate prices. The
// returned 64-op batch is what both lanes replay; one timed iteration
// is one logical op in either lane.
func benchBatchChurnSetup(b *testing.B) (*realloc.ShardedReallocator, realloc.Batch) {
	s, err := realloc.NewSharded(
		realloc.WithEpsilon(1), realloc.WithShards(1),
		realloc.WithCore(realloc.CoreFCS),
		realloc.WithTelemetry(telemetry.NewRegistry()),
	)
	if err != nil {
		b.Fatal(err)
	}
	ids := []int64{1, 2, 3, 4}
	for _, id := range ids {
		if err := s.Insert(id, 1); err != nil {
			b.Fatal(err)
		}
	}
	batch := make(realloc.Batch, 0, 64)
	for i := 0; i < 16; i++ {
		batch = append(batch,
			realloc.DeleteOp(4), realloc.DeleteOp(3),
			realloc.InsertOp(3, 1), realloc.InsertOp(4, 1),
		)
	}
	return s, batch
}

// BenchmarkBatchChurn pairs the lanes; cmd/benchgate's -batch mode
// fails CI when batch64 does not beat perOp by the gated factor.
func BenchmarkBatchChurn(b *testing.B) {
	b.Run("perOp", func(b *testing.B) {
		s, batch := benchBatchChurnSetup(b)
		b.ReportAllocs()
		b.ResetTimer()
		n := 0
		for n < b.N {
			for _, op := range batch {
				var err error
				if op.Kind == realloc.OpInsert {
					err = s.Insert(op.ID, op.Size)
				} else {
					err = s.Delete(op.ID)
				}
				if err != nil {
					b.Fatal(err)
				}
				if n++; n >= b.N {
					break
				}
			}
		}
	})
	b.Run("batch64", func(b *testing.B) {
		s, batch := benchBatchChurnSetup(b)
		b.ReportAllocs()
		b.ResetTimer()
		for n := 0; n < b.N; n += len(batch) {
			if res := s.Apply(batch); res != nil {
				b.Fatal(res)
			}
		}
	})
}

// BenchmarkBatchSize sweeps the batch width over the same churn
// workload, mapping the amortization curve from the degenerate
// single-op batch to well past the async ring depth.
func BenchmarkBatchSize(b *testing.B) {
	for _, size := range []int{1, 8, 64, 512} {
		b.Run(fmt.Sprintf("ops=%d", size), func(b *testing.B) {
			s, err := realloc.NewSharded(realloc.WithEpsilon(0.25), realloc.WithShards(8))
			if err != nil {
				b.Fatal(err)
			}
			m := exp.NewMixStream(11, 0, 1<<15, 16)
			if err := m.Seed(s); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.StepBatched(s, 0, size); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedAggregateReads measures the monitoring hot loop —
// the aggregate reads a metrics poller issues continuously against a
// live sharded reallocator. These are lock-free mirror reads, and the
// Append/Read forms must be allocation-free (b.ReportAllocs is the
// regression tripwire).
func BenchmarkShardedAggregateReads(b *testing.B) {
	s, err := realloc.NewSharded(
		realloc.WithEpsilon(0.25), realloc.WithShards(8), realloc.WithMetrics(),
	)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(11, 0x5eed))
	for id := int64(1); id <= 4000; id++ {
		if err := s.Insert(id, int64(1+rng.IntN(64))); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("Volume", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = s.Volume()
		}
	})
	b.Run("Footprint", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = s.Footprint()
		}
	})
	b.Run("Snapshot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = s.Snapshot()
		}
	})
	b.Run("ReadSnapshot", func(b *testing.B) {
		b.ReportAllocs()
		var snap realloc.Snapshot
		for i := 0; i < b.N; i++ {
			s.ReadSnapshot(&snap)
		}
	})
	b.Run("ShardVolumes", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = s.ShardVolumes()
		}
	})
	b.Run("AppendShardVolumes", func(b *testing.B) {
		b.ReportAllocs()
		vols := make([]int64, 0, s.Shards())
		for i := 0; i < b.N; i++ {
			vols = s.AppendShardVolumes(vols[:0])
		}
	})
	b.Run("Stats", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, _ = s.Stats()
		}
	})
	b.Run("ReadStats", func(b *testing.B) {
		b.ReportAllocs()
		var st realloc.Stats
		for i := 0; i < b.N; i++ {
			_ = s.ReadStats(&st)
		}
	})
}

// BenchmarkPublicAPI measures the public facade's overhead.
func BenchmarkPublicAPI(b *testing.B) {
	r, err := realloc.New(realloc.WithEpsilon(0.25))
	if err != nil {
		b.Fatal(err)
	}
	churn := &workload.Churn{Seed: 3, Sizes: workload.Uniform{Min: 1, Max: 128}, TargetVolume: 50000}
	if _, err := workload.Drive(publicAdapter{r}, churn, 2000); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op, _ := churn.Next()
		var err error
		if op.Insert {
			err = r.Insert(int64(op.ID), op.Size)
		} else {
			err = r.Delete(int64(op.ID))
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// publicAdapter lets workload.Drive feed the public API.
type publicAdapter struct{ r *realloc.Reallocator }

func (p publicAdapter) Insert(id addrspace.ID, size int64) error {
	return p.r.Insert(int64(id), size)
}

func (p publicAdapter) Delete(id addrspace.ID) error {
	return p.r.Delete(int64(id))
}
