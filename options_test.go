package realloc_test

import (
	"math"
	"strings"
	"testing"

	"realloc"
)

// TestEpsilonValidation: both constructors reject ε outside (0, 1] with
// the same clear message, and accept the boundary value 1.
func TestEpsilonValidation(t *testing.T) {
	for _, eps := range []float64{0, -0.1, 1.5, math.NaN()} {
		_, err := realloc.New(realloc.WithEpsilon(eps))
		if err == nil || !strings.Contains(err.Error(), "epsilon must be in (0, 1]") {
			t.Errorf("New(eps=%v) error = %v, want epsilon range message", eps, err)
		}
		_, err = realloc.NewSharded(realloc.WithShards(2), realloc.WithEpsilon(eps))
		if err == nil || !strings.Contains(err.Error(), "epsilon must be in (0, 1]") {
			t.Errorf("NewSharded(eps=%v) error = %v, want epsilon range message", eps, err)
		}
	}
	if _, err := realloc.New(realloc.WithEpsilon(1)); err != nil {
		t.Errorf("New(eps=1) rejected: %v", err)
	}
	if _, err := realloc.NewSharded(realloc.WithShards(2), realloc.WithEpsilon(1)); err != nil {
		t.Errorf("NewSharded(eps=1) rejected: %v", err)
	}
}

// TestShardCountValidation: NewSharded names the offending count.
func TestShardCountValidation(t *testing.T) {
	for _, n := range []int{0, -1, -8} {
		_, err := realloc.NewSharded(realloc.WithShards(n))
		if err == nil || !strings.Contains(err.Error(), "shard count must be >= 1") {
			t.Errorf("NewSharded(shards=%d) error = %v, want shard count message", n, err)
		}
	}
}

// TestInsertSizeValidation: non-positive sizes are rejected at the public
// boundary with a clear message, on both facades, before any lock or
// shard routing is touched.
func TestInsertSizeValidation(t *testing.T) {
	r, err := realloc.New()
	if err != nil {
		t.Fatal(err)
	}
	s, err := realloc.NewSharded(realloc.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int64{0, -1, -4096} {
		errSingle := r.Insert(1, size)
		if errSingle == nil || !strings.Contains(errSingle.Error(), "realloc: object size must be >= 1") {
			t.Errorf("New Insert(size=%d) error = %v, want size message", size, errSingle)
		}
		errSharded := s.Insert(1, size)
		if errSharded == nil || !strings.Contains(errSharded.Error(), "realloc: object size must be >= 1") {
			t.Errorf("Sharded Insert(size=%d) error = %v, want size message", size, errSharded)
		}
		// The validation is defined once (validateSize), so the two
		// facades' messages can never drift apart.
		if errSingle != nil && errSharded != nil && errSingle.Error() != errSharded.Error() {
			t.Errorf("facade messages drifted: %q vs %q", errSingle, errSharded)
		}
	}
	if r.Has(1) || s.Has(1) {
		t.Fatal("rejected insert left a live object")
	}
	if err := r.Insert(1, 1); err != nil {
		t.Errorf("minimal size rejected: %v", err)
	}
	if err := s.Insert(1, 1); err != nil {
		t.Errorf("sharded minimal size rejected: %v", err)
	}
}
