module realloc

go 1.22
