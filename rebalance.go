package realloc

import (
	"fmt"
	"time"

	"realloc/internal/addrspace"
	"realloc/internal/rebalance"
	"realloc/internal/telemetry"
)

// RebalanceMode selects when the rebalancer runs; see WithRebalance.
type RebalanceMode int

const (
	// RebalanceBackground sweeps on a ticker goroutine: skew is checked
	// every Interval and a migration batch runs when it trips. Call Close
	// to stop the goroutine.
	RebalanceBackground RebalanceMode = iota
	// RebalanceInline steals work on the request path: every CheckEvery
	// mutating requests the inserting (or deleting) goroutine checks skew
	// (lock-free, against cached per-shard volumes) and runs the
	// migration batch itself when the threshold trips. No goroutine is
	// involved, but still call Close when done: it reports the first
	// error any triggered sweep encountered (an erroring sweep also
	// disarms further automatic sweeps).
	RebalanceInline
)

// RebalancePolicy configures dynamic cross-shard rebalancing. Zero fields
// take defaults: Threshold 1.5, BatchObjects 256, CheckEvery 64,
// Interval 2ms.
type RebalancePolicy struct {
	Mode RebalanceMode
	// Threshold is the imbalance trigger θ: rebalancing starts when
	// max(shard volume)/mean(shard volume) exceeds it. Must be > 1.
	Threshold float64
	// BatchObjects bounds how many objects one planned move migrates, so
	// a single sweep's pause is bounded regardless of skew.
	BatchObjects int
	// CheckEvery is the inline mode's skew-check period in mutating
	// requests.
	CheckEvery int
	// Interval is the background mode's sweep period.
	Interval time.Duration
}

func toInternalPolicy(p RebalancePolicy) rebalance.Policy {
	mode := rebalance.Background
	if p.Mode == RebalanceInline {
		mode = rebalance.Inline
	}
	return rebalance.Policy{
		Mode:         mode,
		Threshold:    p.Threshold,
		BatchObjects: p.BatchObjects,
		CheckEvery:   p.CheckEvery,
		Interval:     p.Interval,
	}
}

// Rebalance runs one sweep now: it reads the per-shard volumes, plans the
// moves that level them (no-op while max/mean is within the policy
// threshold), and migrates the planned batches. It returns the number of
// objects migrated. Sweeps are serialized; concurrent Insert/Delete
// traffic proceeds except on the two shards a batch currently locks.
// Rebalance works with or without WithRebalance — the option only arms
// the automatic trigger.
func (s *ShardedReallocator) Rebalance() (int, error) {
	s.rebalanceMu.Lock()
	defer s.rebalanceMu.Unlock()
	return s.sweep()
}

// MigrateShard migrates up to maxObjects objects from shard `from` to
// shard `to`, regardless of skew — the manual form of what Rebalance
// does by policy. maxVolume is a target, not a hard cap: objects move
// until the migrated volume reaches it, so the batch can overshoot by up
// to one object (at most ∆ cells). Ids keep their public identity; only
// their owning shard (and hence address space) changes.
func (s *ShardedReallocator) MigrateShard(from, to int, maxVolume int64, maxObjects int) (int, error) {
	if from < 0 || from >= len(s.shards) || to < 0 || to >= len(s.shards) {
		return 0, fmt.Errorf("realloc: migrate %d->%d out of range [0,%d)", from, to, len(s.shards))
	}
	s.rebalanceMu.Lock()
	defer s.rebalanceMu.Unlock()
	return s.migrate(from, to, maxVolume, maxObjects)
}

// Migrations returns how many objects the rebalancer has moved across
// shards, and their total volume.
func (s *ShardedReallocator) Migrations() (objects int64, volume int64) {
	return s.migrations.Load(), s.migratedVolume.Load()
}

// RouteOverrides returns how many live ids are currently routed away from
// their hash home — the size of the id→shard override table.
func (s *ShardedReallocator) RouteOverrides() int { return s.router.overrideCount() }

// Close shuts down the reallocator's goroutines: it drains and stops
// the async submission pipeline, if WithAsync armed one (every accepted
// request executes before Close returns; later Submits settle with
// ErrClosed), then stops the background rebalancer goroutine, if any,
// and returns the first error any triggered sweep (background or
// inline) hit. It is idempotent; the synchronous methods remain usable
// after Close.
func (s *ShardedReallocator) Close() error {
	s.closeOnce.Do(func() {
		s.closeAsync()
		if s.stop != nil {
			close(s.stop)
			<-s.done
		}
	})
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.rebalErr
}

// skewedNow is the lock-free trigger check against the mirrored
// per-shard volumes; the scratch vector is pooled so hot-path inline
// triggers allocate nothing.
func (s *ShardedReallocator) skewedNow() bool {
	volsPtr := s.volScratch.Get().(*[]int64)
	vols := s.AppendShardVolumes((*volsPtr)[:0])
	skewed := rebalance.Skew(vols) > s.pol.Threshold
	*volsPtr = vols
	s.volScratch.Put(volsPtr)
	return skewed
}

// maybeStealRebalance is the inline-mode trigger, run by mutating
// goroutines after they release their shard lock: every CheckEvery
// requests, check skew and steal a sweep.
func (s *ShardedReallocator) maybeStealRebalance() {
	if s.opCount.Add(1)%int64(s.pol.CheckEvery) == 0 && s.skewedNow() {
		s.tryRebalance()
	}
}

// tryRebalance runs a sweep unless one is already running (triggered
// paths must not queue up behind each other). A sweep error sticks for
// Close and disarms further automatic sweeps — a migration that failed
// once must not be retried blindly on a structure in an unexpected
// state.
func (s *ShardedReallocator) tryRebalance() {
	s.errMu.Lock()
	disarmed := s.rebalErr != nil
	s.errMu.Unlock()
	if disarmed {
		return
	}
	if !s.rebalanceMu.TryLock() {
		return
	}
	defer s.rebalanceMu.Unlock()
	if _, err := s.sweep(); err != nil {
		s.errMu.Lock()
		if s.rebalErr == nil {
			s.rebalErr = err
		}
		s.errMu.Unlock()
	}
}

// sweep plans against the cached volumes and executes; rebalanceMu held.
func (s *ShardedReallocator) sweep() (int, error) {
	if len(s.shards) < 2 {
		return 0, nil
	}
	vols := s.AppendShardVolumes(nil)
	moved := 0
	for _, m := range rebalance.PlanMoves(vols, s.pol.Threshold) {
		n, err := s.migrate(m.From, m.To, m.Volume, s.pol.BatchObjects)
		moved += n
		if err != nil {
			return moved, err
		}
	}
	return moved, nil
}

// backgroundLoop is the RebalanceBackground goroutine.
func (s *ShardedReallocator) backgroundLoop() {
	defer close(s.done)
	t := time.NewTicker(s.pol.Interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			if s.skewedNow() {
				s.tryRebalance()
			}
		}
	}
}

// migrate moves up to maxObjects objects totalling ~volBudget cells from
// shard `from` to shard `to`. Both shard locks are taken in index order
// (the deterministic order that makes concurrent sweeps and operations
// deadlock-free), so the whole batch — delete from source, insert into
// target, reroute the id, emit the migration event — is atomic with
// respect to every other operation on either shard.
func (s *ShardedReallocator) migrate(from, to int, volBudget int64, maxObjects int) (int, error) {
	if from == to || volBudget < 1 || maxObjects < 1 {
		return 0, nil
	}
	a, b := from, to
	if b < a {
		a, b = b, a
	}
	s.shards[a].mu.Lock()
	defer s.shards[a].mu.Unlock()
	s.shards[b].mu.Lock()
	defer s.shards[b].mu.Unlock()
	return s.migrateLocked(from, to, volBudget, maxObjects)
}

func (s *ShardedReallocator) migrateLocked(from, to int, volBudget int64, maxObjects int) (moved int, err error) {
	src, dst := s.shards[from], s.shards[to]
	// Quiesce any deamortized flush tails on both sides so every delete
	// applies immediately and every insert is physically placed: the
	// batch must leave no object half-resident on two shards.
	if err := src.inner.Drain(); err != nil {
		return 0, fmt.Errorf("realloc: migrate drain shard %d: %w", from, err)
	}
	if err := dst.inner.Drain(); err != nil {
		return 0, fmt.Errorf("realloc: migrate drain shard %d: %w", to, err)
	}
	type victim struct {
		id  addrspace.ID
		ext addrspace.Extent
	}
	var all []victim
	src.inner.ForEach(func(id addrspace.ID, e addrspace.Extent) {
		all = append(all, victim{id, e})
	})
	var movedVol int64
	var rerouted []int64
	// Whatever path exits the batch, reroute the objects that did move,
	// account them, and republish both shards' read mirrors. The route
	// table is republished once for the whole batch — both shard locks
	// stay held until after this defer runs, so acquire's under-lock
	// re-check can never act on the not-yet-published reroutes.
	defer func() {
		s.router.setAll(rerouted, to)
		src.publish()
		dst.publish()
		s.migrations.Add(int64(moved))
		s.migratedVolume.Add(movedVol)
	}()
	// Take victims from the top of the source address space: freeing the
	// highest extents is what lets the source's next flush shrink its
	// footprint the most.
	var payload []byte // reused carry buffer; nil per object without a real backend
	for i := len(all) - 1; i >= 0 && moved < maxObjects && movedVol < volBudget; i-- {
		v := all[i]
		// Migration latency is charged to the source shard's set: it is the
		// shard whose traffic the batch displaces.
		var t0 int64
		if src.tel != nil {
			t0 = telemetry.Now()
		}
		// Re-read the extent at the last moment: an earlier delete in this
		// batch can trigger a compaction flush on the source that has
		// already relocated this victim, and the migrate event must name
		// the address the object actually vacates.
		ext, ok := src.inner.Extent(v.id)
		if !ok {
			return moved, fmt.Errorf("realloc: migrate %d->%d lost id %d on source", from, to, v.id)
		}
		// Shards own private arenas, so a cross-shard move is a real copy:
		// snapshot the payload before the delete (a delete-triggered
		// compaction may overwrite the vacated cells immediately).
		payload = payload[:0]
		if b, ok := src.inner.Bytes(v.id); ok {
			payload = append(payload, b...)
		}
		if err := src.inner.Delete(v.id); err != nil {
			return moved, fmt.Errorf("realloc: migrate %d->%d delete id %d: %w", from, to, v.id, err)
		}
		if err := dst.inner.Insert(v.id, ext.Size); err != nil {
			// Roll the object back onto the source (its space is still
			// free) so a failed migration never loses the object.
			if rerr := src.inner.Insert(v.id, ext.Size); rerr != nil {
				return moved, fmt.Errorf("realloc: migrate %d->%d insert id %d: %v (rollback failed: %w)",
					from, to, v.id, err, rerr)
			}
			if len(payload) > 0 {
				if werr := src.inner.Write(v.id, payload); werr != nil {
					return moved, fmt.Errorf("realloc: migrate %d->%d rollback payload of id %d: %w", from, to, v.id, werr)
				}
			}
			return moved, fmt.Errorf("realloc: migrate %d->%d insert id %d: %w", from, to, v.id, err)
		}
		if len(payload) > 0 {
			if err := dst.inner.Write(v.id, payload); err != nil {
				return moved, fmt.Errorf("realloc: migrate %d->%d payload of id %d: %w", from, to, v.id, err)
			}
		}
		rerouted = append(rerouted, int64(v.id))
		moved++
		movedVol += ext.Size
		if s.observer != nil {
			newExt, ok := dst.inner.Extent(v.id)
			if !ok {
				return moved, fmt.Errorf("realloc: migrate %d->%d lost id %d", from, to, v.id)
			}
			s.observer(Event{
				Kind:      EventMigrate,
				ID:        int64(v.id),
				Size:      ext.Size,
				From:      ext.Start,
				To:        newExt.Start,
				Footprint: dst.inner.Footprint(),
				Volume:    dst.inner.Volume(),
				Shard:     to,
				FromShard: from,
			})
		}
		if src.tel != nil {
			src.tel.MigrateLatency.Record(telemetry.Now() - t0)
		}
	}
	// Let the source compact the space the batch vacated before the locks
	// drop (deletes trigger shrink flushes; the drain completes any
	// deamortized tail so the footprint bound is restored immediately).
	if err := src.inner.Drain(); err != nil {
		return moved, fmt.Errorf("realloc: migrate drain shard %d: %w", from, err)
	}
	return moved, nil
}
