//go:build race

package realloc

// raceEnabled reports whether this test binary was built with the race
// detector, whose instrumentation (notably of sync.Pool) perturbs
// allocation counts; the AllocsPerRun pins skip themselves under it.
const raceEnabled = true
