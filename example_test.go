package realloc_test

import (
	"fmt"
	"sort"

	"realloc"
)

// The basic insert/delete/extent lifecycle. The footprint (largest
// allocated address) stays within (1+ε) of the live volume no matter how
// the delete pattern fragments the space.
func Example() {
	r, _ := realloc.New(realloc.WithEpsilon(0.25))
	for id := int64(1); id <= 100; id++ {
		_ = r.Insert(id, 10)
	}
	for id := int64(1); id <= 100; id += 2 {
		_ = r.Delete(id)
	}
	fmt.Println("live volume:", r.Volume())
	fmt.Println("bound ok:", float64(r.Footprint()) <= 1.25*float64(r.Volume())+1)
	// Output:
	// live volume: 500
	// bound ok: true
}

// Observers receive every placement decision — the hook a block
// translation layer uses to keep logical-to-physical maps current.
func ExampleWithObserver() {
	table := map[int64]realloc.Extent{}
	r, _ := realloc.New(
		realloc.WithEpsilon(0.5),
		realloc.WithVariant(realloc.Checkpointed),
		realloc.WithObserver(func(e realloc.Event) {
			switch e.Kind {
			case realloc.EventInsert, realloc.EventMove:
				table[e.ID] = realloc.Extent{Start: e.To, Size: e.Size}
			case realloc.EventDelete:
				delete(table, e.ID)
			}
		}),
	)
	_ = r.Insert(1, 64)
	_ = r.Insert(2, 32)
	_ = r.Delete(1)
	ext, _ := r.Extent(2)
	fmt.Println("table agrees:", table[2] == ext)
	fmt.Println("entries:", len(table))
	// Output:
	// table agrees: true
	// entries: 1
}

// Defragment physically sorts blocks by an arbitrary comparator using
// only (1+ε)V + ∆ working space (Theorem 2.7).
func ExampleDefragment() {
	blocks := []realloc.Block{
		{ID: 30, Size: 8, Offset: 0},
		{ID: 10, Size: 4, Offset: 10},
		{ID: 20, Size: 6, Offset: 16},
	}
	st, _ := realloc.Defragment(blocks, func(a, b int64) bool { return a < b }, 0.5)
	ids := make([]int64, 0, len(st.Layout))
	for _, b := range st.Layout {
		ids = append(ids, b.ID)
	}
	fmt.Println("sorted:", sort.SliceIsSorted(ids, func(i, j int) bool { return ids[i] < ids[j] }))
	fmt.Println("within budget:", st.PeakFootprint <= st.SpaceBudget)
	// Output:
	// sorted: true
	// within budget: true
}

// The scheduler keeps a uniprocessor plan whose makespan is within (1+ε)
// of the total work while jobs come and go.
func ExampleScheduler() {
	s, _ := realloc.NewScheduler(0.25)
	for id := int64(1); id <= 8; id++ {
		_ = s.AddJob(id, 25)
	}
	_ = s.RemoveJob(3)
	_ = s.RemoveJob(6)
	fmt.Println("work:", s.TotalWork())
	fmt.Println("bound ok:", float64(s.Makespan()) <= 1.25*float64(s.TotalWork())+1)
	// Output:
	// work: 150
	// bound ok: true
}

// A crash-consistent block store: checkpoints persist the translation
// map, and recovery always finds the mapped data intact because space
// freed since the last checkpoint is never rewritten.
func ExampleBlockStore() {
	s, _ := realloc.NewBlockStore(realloc.BlockStoreEpsilon(0.25))
	_ = s.Reserve("root", 128)
	_ = s.Reserve("leaf-0", 64)
	_ = s.Update("leaf-0", 96)
	s.Checkpoint()
	s.Crash()
	n, err := s.Recover()
	fmt.Println("recovered:", n, "err:", err)
	ext, ok := s.Lookup("leaf-0")
	fmt.Println("leaf-0 size:", ext.Size, "ok:", ok)
	// Output:
	// recovered: 2 err: <nil>
	// leaf-0 size: 96 ok: true
}

// A real payload backend turns metered cells into physical bytes: every
// relocation the flush schedules memmoves the object's extent, and the
// payload written before any number of moves reads back intact after
// all of them.
func ExampleWithBackend() {
	r, _ := realloc.New(
		realloc.WithEpsilon(0.25),
		realloc.WithBackend(realloc.HeapArena),
	)
	_ = r.Insert(1, 10)
	_ = r.Write(1, []byte("hello, 10b"))
	// Churn around object 1 so flushes relocate it.
	for id := int64(2); id < 300; id++ {
		_ = r.Insert(id, 16)
	}
	for id := int64(2); id < 300; id += 2 {
		_ = r.Delete(id)
	}
	_ = r.Drain()
	buf, _ := r.Bytes(1)
	fmt.Println(string(buf))
	fmt.Println("moved bytes:", r.BytesMoved() > 0)
	// Output:
	// hello, 10b
	// moved bytes: true
}

// On a real backend the block store holds actual payload bytes: Put
// records a checksum, Recover re-verifies every durable block's bytes at
// its checkpointed extent, and Get returns them intact after the crash.
func ExampleBlockStore_payload() {
	s, _ := realloc.NewBlockStore(
		realloc.BlockStoreEpsilon(0.25),
		realloc.BlockStoreBackend(realloc.HeapArena),
	)
	_ = s.Put("root", []byte("b+tree root page"))
	_ = s.Put("leaf-0", []byte("leaf payload"))
	s.Checkpoint()
	s.Crash()
	n, err := s.Recover()
	fmt.Println("recovered:", n, "err:", err)
	data, _ := s.Get("root")
	fmt.Println(string(data))
	// Output:
	// recovered: 2 err: <nil>
	// b+tree root page
}
