package realloc_test

// Durability benchmarks: what the WAL + file-backed arena cost over the
// in-memory heap backend for identical churn, and how fast WAL replay
// rebuilds a checkpointed block table. cmd/benchgate's -durable lane
// gates both and writes BENCH_ci_durable.json.

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"realloc"
	"realloc/internal/faultfs"
	"realloc/internal/wal"
)

// benchBlockChurn drives steady-state block churn — Drop+Put pairs with
// a periodic explicit checkpoint — against a block store. The durable
// lane pays a WAL append per placement and an arena sync + group-fsync
// per checkpoint; the heap lane pays only the memmoves.
func benchBlockChurn(b *testing.B, s *realloc.BlockStore) {
	const live = 256
	const ckptEvery = 128
	payload := make([]byte, 128)
	for i := range payload {
		payload[i] = byte(i * 17)
	}
	rng := rand.New(rand.NewPCG(7, 0xd07ab))
	names := make([]string, 0, live)
	next := 0
	put := func() error {
		name := fmt.Sprintf("blk%08d", next)
		next++
		if err := s.Put(name, payload[:32+rng.IntN(96)]); err != nil {
			return err
		}
		names = append(names, name)
		return nil
	}
	for len(names) < live {
		if err := put(); err != nil {
			b.Fatal(err)
		}
	}
	s.Checkpoint()
	if err := s.Err(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := rng.IntN(len(names))
		if err := s.Drop(names[j]); err != nil {
			b.Fatal(err)
		}
		names[j] = names[len(names)-1]
		names = names[:len(names)-1]
		if err := put(); err != nil {
			b.Fatal(err)
		}
		if i%ckptEvery == ckptEvery-1 {
			s.Checkpoint()
			if err := s.Err(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkDurableChurn prices durability: identical block churn on the
// in-memory heap arena (lane "heap") and in durable mode (lane "wal" —
// WAL appends per placement, file-backed arena synced plus WAL
// group-fsync per checkpoint). cmd/benchgate's -durable lane compares
// the pair and fails CI when the durable path's per-op cost drifts
// beyond its bound.
func BenchmarkDurableChurn(b *testing.B) {
	b.Run("heap", func(b *testing.B) {
		s, err := realloc.NewBlockStore(realloc.BlockStoreBackend(realloc.HeapArena))
		if err != nil {
			b.Fatal(err)
		}
		benchBlockChurn(b, s)
	})
	b.Run("wal", func(b *testing.B) {
		s, err := realloc.NewBlockStore(realloc.BlockStoreDir(b.TempDir()))
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		benchBlockChurn(b, s)
	})
}

// BenchmarkWALReplay measures cold-start recovery speed: one op is one
// full wal.Open replay of a log holding `ops` records (inserts, moves,
// checksums, and a checkpoint every 100 records). The log image is
// staged outside the timer; each iteration replays a fresh copy.
func BenchmarkWALReplay(b *testing.B) {
	for _, ops := range []int{100_000} {
		b.Run(fmt.Sprintf("ops=%d", ops), func(b *testing.B) {
			image := buildWALImage(b, ops)
			b.SetBytes(int64(len(image)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				fs := faultfs.NewMemFS(nil)
				f, err := fs.OpenFile("wal.log")
				if err != nil {
					b.Fatal(err)
				}
				if _, err := f.WriteAt(image, 0); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				rep, err := wal.Open(f)
				if err != nil {
					b.Fatal(err)
				}
				if rep.Frames != ops {
					b.Fatalf("replayed %d of %d frames", rep.Frames, ops)
				}
			}
		})
	}
}

// buildWALImage stages a clean ops-record log: 1000 live blocks churned
// by move/delete/insert records with a checkpoint every 100.
func buildWALImage(b *testing.B, ops int) []byte {
	b.Helper()
	fs := faultfs.NewMemFS(nil)
	f, err := fs.OpenFile("stage")
	if err != nil {
		b.Fatal(err)
	}
	w := wal.NewWriter(f, 0)
	rng := rand.New(rand.NewPCG(11, 0x5eed))
	const liveTarget = 1000
	var live []uint64
	nextID := uint64(1)
	seq := uint64(0)
	for n := 0; n < ops; n++ {
		var rec wal.Record
		switch {
		case n%100 == 99:
			seq++
			rec = wal.Record{Kind: wal.KCheckpoint, Seq: seq, ID: 1}
		case len(live) < liveTarget || rng.IntN(10) == 0:
			rec = wal.Record{Kind: wal.KInsert, ID: nextID,
				Start: int64(nextID) * 128, Size: 64 + int64(rng.IntN(64)),
				Name: fmt.Sprintf("blk%08d", nextID)}
			live = append(live, nextID)
			nextID++
		case rng.IntN(5) == 0:
			j := rng.IntN(len(live))
			rec = wal.Record{Kind: wal.KDelete, ID: live[j]}
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		default:
			rec = wal.Record{Kind: wal.KMove, ID: live[rng.IntN(len(live))],
				Start: rng.Int64N(1 << 30)}
		}
		if err := w.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		b.Fatal(err)
	}
	sz, err := f.Size()
	if err != nil {
		b.Fatal(err)
	}
	image := make([]byte, sz)
	if _, err := f.ReadAt(image, 0); err != nil {
		b.Fatal(err)
	}
	return image
}
