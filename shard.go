package realloc

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"realloc/internal/addrspace"
	"realloc/internal/cost"
	"realloc/internal/engine"
	"realloc/internal/rebalance"
	"realloc/internal/shardhash"
	"realloc/internal/telemetry"
	"realloc/internal/trace"
)

// ShardedReallocator scales the cost-oblivious reallocator across
// goroutines by partitioning object ids over n independent cores, each
// guarded by its own lock and owning a private address space.
//
// The paper's guarantees are per-allocator, so they survive partitioning
// shard by shard: shard i keeps its footprint within (1+ε)·V_i of its own
// live volume V_i, and therefore the summed footprint stays within (1+ε)
// of the total live volume (plus the per-shard additive terms, which now
// occur once per shard rather than once). The cost bound is likewise
// preserved: each shard's reallocation cost is O((1/ε)·log(1/ε)) times
// its own allocation cost for every subadditive cost function, and the
// bound is closed under summation. What sharding gives up is a single
// contiguous address space: an extent's address is relative to its
// shard's space, so callers mapping placements to physical storage must
// key by (shard, address) — every observer Event carries its Shard index
// for exactly this purpose.
//
// Ids are routed through a stable id→shard table: an id's default home is
// a hash of the id, and the rebalancer (see WithRebalance) may reassign
// individual ids to level live volume across shards. The table is an
// immutable snapshot published through an atomic pointer, so routing an
// uncontended operation is one or two plain loads — no lock, no shared
// mutable cache line. Route changes are only published while both
// affected shard locks are held, so every operation still sees exactly
// one owner per id.
//
// Operations on a single object run in parallel across shards: Insert
// and Delete take only the owning shard's write lock, and Extent and Has
// take only its read lock, so readers of one shard never block each
// other. Aggregate reads (Len, Volume, Footprint, Flushes, Delta,
// FlushActive, ShardVolume(s), ShardFootprint, Snapshot) take no shard
// locks at all: each shard maintains a block of lock-free mirrors of its
// own counters, updated under its lock after every mutation and read via
// atomics. Each per-shard term is therefore a consistent post-operation
// value, but shards already visited may mutate before the loop finishes,
// so under concurrent mutation the result is a per-shard-consistent, not
// globally-atomic, snapshot — the same semantics the locked
// implementation had. Use Snapshot to get the per-shard terms and their
// exact sums in one call.
type ShardedReallocator struct {
	shards  []*shard
	epsilon float64
	router  *router
	// observer is the user callback events are delivered to; migration
	// events are emitted here directly (per-shard events go through each
	// shard's recorder chain).
	observer func(Event)

	// Rebalancing state; pol is always valid (defaults), auto/inline say
	// whether a trigger is armed.
	pol     rebalance.Policy
	auto    bool
	inline  bool
	opCount atomic.Int64

	migrations     atomic.Int64
	migratedVolume atomic.Int64

	// telReg is the registry WithTelemetry armed (nil otherwise); each
	// shard records into its own Set, and stats reads aggregate them.
	telReg *telemetry.Registry

	// volScratch recycles the per-shard volume vectors the lock-free skew
	// checks read, so inline triggers allocate nothing on the hot path;
	// costScratch recycles ReadStats' per-function cost accumulator, and
	// telScratch its telemetry snapshot.
	volScratch  sync.Pool
	costScratch sync.Pool
	lineScratch sync.Pool
	telScratch  sync.Pool
	// applyPool recycles the batched path's grouping scratch, so
	// steady-state Apply calls allocate nothing.
	applyPool sync.Pool

	// Async submission pipeline state (nil/zero without WithAsync); see
	// async.go.
	rings     []chan asyncReq
	asyncCap  int
	asyncMu   sync.RWMutex
	asyncDown bool
	asyncWG   sync.WaitGroup

	// rebalanceMu serializes sweeps; errMu guards the sticky background
	// error returned by Close.
	rebalanceMu sync.Mutex
	errMu       sync.Mutex
	rebalErr    error

	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// shard pairs one sequential core with its own lock, recorders, and a
// block of lock-free read mirrors. The layout is cache-line-padded: the
// lock word (bounced between writers) and the mirror block (polled by
// lock-free readers) never share a line, so an uncontended operation
// touches no cache line that another shard's traffic also writes.
type shard struct {
	// mu serializes mutations. Extent/Has take only the read side, so
	// within a shard readers never block readers; migrations take the
	// write side of both affected shards.
	mu      sync.RWMutex
	inner   engine.Engine
	metrics *trace.Metrics
	// tel is this shard's telemetry set (nil without WithTelemetry).
	// Recording is two atomic adds; the set itself is lock-free, so the
	// aggregating readers never touch this shard's lock.
	tel *telemetry.Set

	_ [64]byte // keep the lock word off the mirror block's cache line

	// Lock-free mirrors of the core's counters, written by publish (under
	// mu) and read via atomics. seq is a seqlock over the block: publish
	// bumps it odd before the stores and even after, and multi-field
	// readers (Snapshot) retry until they straddle no publish. Single-
	// counter readers (Volume, Footprint, ...) load their field directly —
	// any published value is a valid post-operation value.
	seq     atomic.Uint64
	vol     atomic.Int64
	foot    atomic.Int64
	objects atomic.Int64
	flushes atomic.Int64
	delta   atomic.Int64
	active  atomic.Bool

	_ [64]byte // pad the tail against a neighboring allocation's traffic
}

// publish refreshes the lock-free mirrors from the core. It must be
// called with sh.mu write-held after every successful mutation; mu
// serializes publishers, so the seqlock has one writer at a time.
// Atomic stores are read-modify-write-priced on most hardware, so each
// mirror is re-stored only when its value actually moved — volume and
// len change on every operation, but footprint, flushes, delta, and the
// flush-active bit only move when a flush runs, which keeps the steady
// per-op publish cost at the seqlock bump plus two stores.
func (sh *shard) publish() {
	sh.seq.Add(1) // odd: a multi-field read straddling this retries
	sh.vol.Store(sh.inner.Volume())
	sh.objects.Store(int64(sh.inner.Len()))
	if v := sh.inner.Footprint(); v != sh.foot.Load() {
		sh.foot.Store(v)
	}
	if v := sh.inner.Flushes(); v != sh.flushes.Load() {
		sh.flushes.Store(v)
	}
	if v := sh.inner.Delta(); v != sh.delta.Load() {
		sh.delta.Store(v)
	}
	if v := sh.inner.FlushActive(); v != sh.active.Load() {
		sh.active.Store(v)
	}
	sh.seq.Add(1) // even: stable
}

// readSnapshot returns one internally consistent (len, volume,
// footprint) triple from the mirror block, retrying while a publish is
// in flight. The spin is bounded only by publish's six stores; Gosched
// covers the pathological case of a publisher preempted mid-block.
func (sh *shard) readSnapshot() ShardSnapshot {
	for spin := 0; ; spin++ {
		s1 := sh.seq.Load()
		if s1&1 == 0 {
			ss := ShardSnapshot{
				Len:       int(sh.objects.Load()),
				Volume:    sh.vol.Load(),
				Footprint: sh.foot.Load(),
			}
			if sh.seq.Load() == s1 {
				return ss
			}
		}
		if spin > 64 {
			runtime.Gosched()
		}
	}
}

// routeTable is the immutable id→shard override table the router
// publishes through an atomic pointer. A nil overrides map is the common
// "no overrides live" state: route() then decides on the pointer load
// and a nil check alone before falling through to the stable hash home.
// Published tables are never mutated — writers clone, edit the clone,
// and publish the result.
type routeTable struct {
	overrides map[int64]int
}

// router is the id→shard table: the default route is the stable hash
// home, overridden per id once the rebalancer migrates it. Reads are
// lock-free — route() performs no mutex operations, only the table-
// pointer load (plus a map lookup when overrides are live). Writers
// copy-on-write under writeMu and publish with one pointer store; route
// changes for a live id additionally happen only while both affected
// shard locks are held (see migrateLocked), which is what acquire's
// under-lock re-check relies on. Overrides are dropped when the object
// is deleted or migrated back home, so the table stays proportional to
// the number of displaced live objects.
type router struct {
	n       int
	table   atomic.Pointer[routeTable]
	writeMu sync.Mutex
	// publishes counts table publications; white-box tests pin the
	// one-republish-per-batch contract of the batched paths on it.
	publishes atomic.Int64
}

func newRouter(n int) *router {
	rt := &router{n: n}
	rt.table.Store(&routeTable{})
	return rt
}

// routeIn resolves id under a specific published table, letting callers
// pin one snapshot across a lookup-lock-recheck sequence.
func (rt *router) routeIn(t *routeTable, id int64) int {
	if t.overrides != nil {
		if s, ok := t.overrides[id]; ok {
			return s
		}
	}
	return shardhash.Home(id, rt.n)
}

func (rt *router) route(id int64) int {
	return rt.routeIn(rt.table.Load(), id)
}

// update clones the current table, applies edit to the clone, and
// publishes it — one clone and one pointer store no matter how many ids
// the edit touches, which is what keeps a whole migration batch at one
// republish. edit reports whether it changed anything; an unchanged
// clone is not published.
func (rt *router) update(edit func(m map[int64]int) bool) {
	rt.writeMu.Lock()
	defer rt.writeMu.Unlock()
	old := rt.table.Load()
	next := make(map[int64]int, len(old.overrides)+1)
	for id, s := range old.overrides {
		next[id] = s
	}
	if !edit(next) {
		return
	}
	t := &routeTable{}
	if len(next) > 0 {
		t.overrides = next
	}
	rt.table.Store(t)
	rt.publishes.Add(1)
}

// setAll records that every id in ids now lives on shard, in one
// copy-on-write publish for the whole batch. Routing an id back to its
// hash home removes its override instead of storing a redundant entry.
func (rt *router) setAll(ids []int64, shard int) {
	if len(ids) == 0 {
		return
	}
	rt.update(func(m map[int64]int) bool {
		for _, id := range ids {
			if shardhash.Home(id, rt.n) == shard {
				delete(m, id)
			} else {
				m[id] = shard
			}
		}
		return true
	})
}

// clear drops id's override. The common no-override case decides on the
// published table alone and skips the copy-on-write entirely — callers
// hold id's owning shard lock, which excludes the only writers (migrate)
// that could be adding an override for this id concurrently. Deleting a
// displaced id does pay a full table clone (the COW trade: reads are
// free, writes copy), so deleting all k displaced ids costs O(k²) map
// entries total; k is bounded by what the rebalancer has displaced, and
// the clone shrinks as overrides drain. If a workload ever deletes huge
// displaced populations, batch the tombstones into one update() — but
// only for ids that are not concurrently re-inserted, since a stale
// override must never outlive a live object it misroutes.
func (rt *router) clear(id int64) {
	t := rt.table.Load()
	if t.overrides == nil {
		return
	}
	if _, ok := t.overrides[id]; !ok {
		return
	}
	rt.update(func(m map[int64]int) bool {
		if _, ok := m[id]; !ok {
			return false
		}
		delete(m, id)
		return true
	})
}

func (rt *router) overrideCount() int {
	return len(rt.table.Load().overrides)
}

// NewSharded creates a ShardedReallocator. It accepts the same options as
// New — WithShards picks the shard count (default runtime.GOMAXPROCS),
// WithRebalance arms dynamic cross-shard rebalancing, WithLocking is
// implied, and a WithObserver callback must be safe for concurrent use
// because shards emit events in parallel. The callback runs while the
// emitting shard's write lock is held (both shard locks, for migration
// events): it must not call back into anything that takes a shard lock
// — the per-object methods (Insert, Delete, Extent, Has) and the
// metrics readers (Stats, ReadStats, ShardStats), which read each
// shard's recorder under its read lock, can all deadlock on the
// emitting shard. The mirror-only aggregate reads — Volume, Footprint,
// Len, Flushes, Delta, FlushActive, ShardVolume(s), ShardFootprint,
// AppendShardVolumes, Snapshot/ReadSnapshot, and ShardOf — take no
// locks and are safe to call from the callback; they observe the state
// as of the last completed operation.
//
// Call Close when done if the reallocator was built with a background
// rebalancing policy; it is a no-op otherwise.
func NewSharded(opts ...Option) (*ShardedReallocator, error) {
	cfg := config{epsilon: 0.25}
	for _, o := range opts {
		o(&cfg)
	}
	if err := validateEpsilon(cfg.epsilon); err != nil {
		return nil, err
	}
	n := cfg.shards
	if !cfg.shardsSet {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		return nil, fmt.Errorf("realloc: shard count must be >= 1, got %d", n)
	}
	s := &ShardedReallocator{
		shards:   make([]*shard, n),
		epsilon:  cfg.epsilon,
		router:   newRouter(n),
		observer: cfg.observer,
		pol:      rebalance.Policy{}.WithDefaults(),
		telReg:   cfg.tel,
	}
	s.volScratch.New = func() any {
		b := make([]int64, 0, n)
		return &b
	}
	s.costScratch.New = func() any { return map[string]float64{} }
	s.lineScratch.New = func() any {
		b := make([]cost.Line, 0, 8)
		return &b
	}
	s.telScratch.New = func() any { return new(telemetry.Snapshot) }
	s.applyPool.New = func() any { return new(shardedApplyScratch) }
	ec, err := cfg.resolveCore()
	if err != nil {
		return nil, err
	}
	// One coordinator serves every shard, so an AutoSelect fleet makes a
	// single core decision from the pooled size distribution; each shard
	// adopts it lazily at its next operation, under its own lock.
	var coord *engine.AutoCoordinator
	if ec == engine.AutoSelect {
		coord = engine.NewAutoCoordinator(0)
	}
	for i := range s.shards {
		rec, m := newRecorder(&cfg, i)
		var set *telemetry.Set
		if cfg.tel != nil {
			set = cfg.tel.Shard(i)
		}
		inner, err := cfg.buildEngine(ec, rec, coord, set)
		if err != nil {
			return nil, err
		}
		s.shards[i] = &shard{inner: inner, metrics: m, tel: set}
	}
	if cfg.async != 0 {
		if cfg.async < 1 {
			return nil, fmt.Errorf("realloc: WithAsync depth must be >= 1, got %d", cfg.async)
		}
		s.asyncCap = cfg.async
		s.rings = make([]chan asyncReq, n)
		for i := range s.rings {
			s.rings[i] = make(chan asyncReq, cfg.async)
		}
		s.asyncWG.Add(n)
		for i := 0; i < n; i++ {
			go s.consumeRing(i)
		}
	}
	if cfg.rebalance != nil {
		pol := toInternalPolicy(*cfg.rebalance).WithDefaults()
		if err := pol.Validate(); err != nil {
			return nil, fmt.Errorf("realloc: %w", err)
		}
		s.pol = pol
		s.auto = true
		s.inline = pol.Mode == rebalance.Inline
		if pol.Mode == rebalance.Background {
			s.stop = make(chan struct{})
			s.done = make(chan struct{})
			go s.backgroundLoop()
		}
	}
	return s, nil
}

// ShardOf returns the index of the shard that currently owns id: the
// stable hash home, unless the rebalancer has reassigned the id. Without
// WithRebalance the mapping never changes. The lookup is lock-free.
func (s *ShardedReallocator) ShardOf(id int64) int {
	return s.router.route(id)
}

// Shards returns the shard count.
func (s *ShardedReallocator) Shards() int { return len(s.shards) }

// acquire write-locks and returns the shard that owns id. A concurrent
// migration may reroute the id between the route lookup and the lock
// acquisition, so the route is re-validated under the lock — but against
// the published table pointer, not a second router lock: if no new table
// was published since the pre-lock read, the route cannot have changed;
// if one was, the current table is re-read, and it is authoritative
// because any migration that reroutes this id must hold the lock we now
// hold (an id only migrates off the shard it lives on).
func (s *ShardedReallocator) acquire(id int64) (*shard, int) {
	for {
		t := s.router.table.Load()
		i := s.router.routeIn(t, id)
		sh := s.shards[i]
		sh.mu.Lock()
		if cur := s.router.table.Load(); cur == t || s.router.routeIn(cur, id) == i {
			return sh, i
		}
		sh.mu.Unlock()
	}
}

// acquireRead is acquire for the read-locked fast path: same routing and
// generation re-check, but takes only the shard's read lock, so
// concurrent readers of one shard proceed together. The re-check remains
// authoritative — a migration publishing a reroute of this id needs the
// write side of the lock we hold read-locked.
func (s *ShardedReallocator) acquireRead(id int64) *shard {
	for {
		t := s.router.table.Load()
		i := s.router.routeIn(t, id)
		sh := s.shards[i]
		sh.mu.RLock()
		if cur := s.router.table.Load(); cur == t || s.router.routeIn(cur, id) == i {
			return sh
		}
		sh.mu.RUnlock()
	}
}

// Insert services 〈InsertObject, id, size〉 on the owning shard.
func (s *ShardedReallocator) Insert(id int64, size int64) error {
	if err := validateSize(size); err != nil {
		return err
	}
	// Op latency is stamped before the lock: the caller's wall-clock
	// includes lock wait, which is exactly the contention a per-shard
	// latency histogram exists to expose.
	var start int64
	if s.telReg != nil {
		start = telemetry.Now()
	}
	sh, _ := s.acquire(id)
	err := sh.inner.Insert(addrspace.ID(id), size)
	if err == nil {
		sh.publish()
	}
	if sh.tel != nil {
		sh.tel.InsertLatency.Record(telemetry.Now() - start)
	}
	sh.mu.Unlock()
	if err == nil && s.inline {
		s.maybeStealRebalance()
	}
	return err
}

// Delete services 〈DeleteObject, id〉 on the owning shard.
func (s *ShardedReallocator) Delete(id int64) error {
	var start int64
	if s.telReg != nil {
		start = telemetry.Now()
	}
	sh, _ := s.acquire(id)
	err := sh.inner.Delete(addrspace.ID(id))
	if err == nil {
		sh.publish()
		// The id is gone; future inserts of the same id hash fresh.
		s.router.clear(id)
	}
	if sh.tel != nil {
		sh.tel.DeleteLatency.Record(telemetry.Now() - start)
	}
	sh.mu.Unlock()
	if err == nil && s.inline {
		s.maybeStealRebalance()
	}
	return err
}

// Extent returns the object's current placement within its shard's
// private address space; combine with ShardOf(id) for a globally unique
// physical location. Only the owning shard's read lock is taken, so
// concurrent Extent/Has calls on one shard never serialize.
func (s *ShardedReallocator) Extent(id int64) (Extent, bool) {
	sh := s.acquireRead(id)
	defer sh.mu.RUnlock()
	e, ok := sh.inner.Extent(addrspace.ID(id))
	return Extent{Start: e.Start, Size: e.Size}, ok
}

// Has reports whether the object is live. Like Extent, it takes only the
// owning shard's read lock.
func (s *ShardedReallocator) Has(id int64) bool {
	sh := s.acquireRead(id)
	defer sh.mu.RUnlock()
	return sh.inner.Has(addrspace.ID(id))
}

// Len returns the number of live objects across all shards, lock-free
// from the per-shard mirrors.
func (s *ShardedReallocator) Len() int {
	n := int64(0)
	for _, sh := range s.shards {
		n += sh.objects.Load()
	}
	return int(n)
}

// Volume returns the total live volume V summed over shards, lock-free
// from the per-shard mirrors.
func (s *ShardedReallocator) Volume() int64 {
	var v int64
	for _, sh := range s.shards {
		v += sh.vol.Load()
	}
	return v
}

// Footprint returns the summed per-shard footprint: each shard keeps its
// own footprint within (1+ε)·V_shard, so the sum stays within (1+ε) of
// the total live volume. Lock-free from the per-shard mirrors.
func (s *ShardedReallocator) Footprint() int64 {
	var f int64
	for _, sh := range s.shards {
		f += sh.foot.Load()
	}
	return f
}

// ShardFootprint returns shard i's own footprint (lock-free).
func (s *ShardedReallocator) ShardFootprint(i int) int64 {
	return s.shards[i].foot.Load()
}

// ShardVolume returns shard i's live volume (lock-free).
func (s *ShardedReallocator) ShardVolume(i int) int64 {
	return s.shards[i].vol.Load()
}

// ShardVolumes returns every shard's live volume in one lock-free pass —
// the vector the rebalancer's skew detector runs on. It allocates the
// result; monitoring loops that poll it should use AppendShardVolumes.
func (s *ShardedReallocator) ShardVolumes() []int64 {
	return s.AppendShardVolumes(make([]int64, 0, len(s.shards)))
}

// AppendShardVolumes appends every shard's live volume to dst and
// returns the extended slice, allocating nothing when dst has capacity —
// the allocation-free form of ShardVolumes for monitoring loops.
func (s *ShardedReallocator) AppendShardVolumes(dst []int64) []int64 {
	for _, sh := range s.shards {
		dst = append(dst, sh.vol.Load())
	}
	return dst
}

// Delta returns the largest object size seen by any shard (the paper's
// ∆; per-shard additive terms use each shard's own ∆, which is at most
// this). Lock-free from the per-shard mirrors.
func (s *ShardedReallocator) Delta() int64 {
	var d int64
	for _, sh := range s.shards {
		if sd := sh.delta.Load(); sd > d {
			d = sd
		}
	}
	return d
}

// Epsilon returns the configured footprint slack (shared by all shards).
func (s *ShardedReallocator) Epsilon() float64 { return s.epsilon }

// Core reports the core the shards are running. With CoreAutoSelect the
// decision is shared — every shard commits to the same core — but each
// shard adopts it at its next operation, so shard 0's view (reported
// here) may briefly lead shards that have not operated since the
// decision.
func (s *ShardedReallocator) Core() Core {
	sh := s.shards[0]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return Core(sh.inner.Kind())
}

// Flushes returns the total buffer flushes summed over shards, lock-free
// from the per-shard mirrors.
func (s *ShardedReallocator) Flushes() int64 {
	var n int64
	for _, sh := range s.shards {
		n += sh.flushes.Load()
	}
	return n
}

// FlushActive reports whether any shard had a deamortized flush
// mid-execution as of its last completed operation (lock-free).
func (s *ShardedReallocator) FlushActive() bool {
	for _, sh := range s.shards {
		if sh.active.Load() {
			return true
		}
	}
	return false
}

// Drain completes any in-progress deamortized flush on every shard.
func (s *ShardedReallocator) Drain() error {
	for i, sh := range s.shards {
		sh.mu.Lock()
		err := sh.inner.Drain()
		sh.publish()
		sh.mu.Unlock()
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// ForEach visits live objects shard by shard in shard-index order, in
// address order within each shard. Each shard's read lock is held while
// its objects are visited: fn must not mutate the reallocator, but may
// call the lock-free aggregate reads. Under a concurrently running
// rebalancer an object migrating between an already-visited and a
// not-yet-visited shard can be missed or seen twice; quiesce the
// rebalancer (Close, or no concurrent Rebalance) for an exact iteration.
func (s *ShardedReallocator) ForEach(fn func(id int64, ext Extent)) {
	for _, sh := range s.shards {
		sh.mu.RLock()
		sh.inner.ForEach(func(id addrspace.ID, e addrspace.Extent) {
			fn(int64(id), Extent{Start: e.Start, Size: e.Size})
		})
		sh.mu.RUnlock()
	}
}

// CheckInvariants validates every shard's full structure; see
// WithInvariantChecks. It also cross-checks each shard's lock-free
// mirror block against the core's true counters — a mirror that drifted
// from the structure it shadows is an invariant violation of the sharded
// layer itself.
func (s *ShardedReallocator) CheckInvariants() error {
	for i, sh := range s.shards {
		sh.mu.Lock()
		err := sh.inner.CheckInvariants()
		if err == nil {
			err = sh.checkMirror()
		}
		sh.mu.Unlock()
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// checkMirror verifies the lock-free mirrors match the core; caller
// holds mu, so the core is quiescent and the mirrors must be exact.
func (sh *shard) checkMirror() error {
	if got, want := sh.vol.Load(), sh.inner.Volume(); got != want {
		return fmt.Errorf("volume mirror %d != core %d", got, want)
	}
	if got, want := sh.foot.Load(), sh.inner.Footprint(); got != want {
		return fmt.Errorf("footprint mirror %d != core %d", got, want)
	}
	if got, want := int(sh.objects.Load()), sh.inner.Len(); got != want {
		return fmt.Errorf("len mirror %d != core %d", got, want)
	}
	if got, want := sh.flushes.Load(), sh.inner.Flushes(); got != want {
		return fmt.Errorf("flushes mirror %d != core %d", got, want)
	}
	if got, want := sh.delta.Load(), sh.inner.Delta(); got != want {
		return fmt.Errorf("delta mirror %d != core %d", got, want)
	}
	if got, want := sh.active.Load(), sh.inner.FlushActive(); got != want {
		return fmt.Errorf("flush-active mirror %v != core %v", got, want)
	}
	if s := sh.seq.Load(); s&1 != 0 {
		return fmt.Errorf("mirror seqlock left odd (%d)", s)
	}
	return nil
}

// Backend reports the payload data backend the shards run (shared
// configuration; each shard owns a private arena of this kind).
func (s *ShardedReallocator) Backend() Backend {
	sh := s.shards[0]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return Backend(sh.inner.Data().Kind())
}

// BytesMoved returns the cumulative payload volume relocations have
// carried, summed over shards. Cross-shard migrations are not included:
// they are one delete plus one insert, not a relocation.
func (s *ShardedReallocator) BytesMoved() int64 {
	var n int64
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += sh.inner.Data().Counters().BytesMoved
		sh.mu.RUnlock()
	}
	return n
}

// Write copies p into object id's payload bytes on the owning shard.
// len(p) must not exceed the object's size. It requires a real backend
// (see WithBackend); under Metered it fails.
func (s *ShardedReallocator) Write(id int64, p []byte) error {
	sh, _ := s.acquire(id)
	defer sh.mu.Unlock()
	return sh.inner.Write(addrspace.ID(id), p)
}

// Read copies object id's payload bytes into p, returning how many
// bytes were copied: min(len(p), size). Like Extent, it takes only the
// owning shard's read lock, so concurrent reads of one shard never
// serialize — and a flush on another shard never blocks this one.
func (s *ShardedReallocator) Read(id int64, p []byte) (int, error) {
	sh := s.acquireRead(id)
	defer sh.mu.RUnlock()
	return sh.inner.Read(addrspace.ID(id), p)
}

// Bytes returns a copy of object id's payload. Unlike the single-
// structure facade it cannot return the live slice: another goroutine's
// insert may relocate the object the moment the shard lock drops.
func (s *ShardedReallocator) Bytes(id int64) ([]byte, bool) {
	sh := s.acquireRead(id)
	defer sh.mu.RUnlock()
	b, ok := sh.inner.Bytes(addrspace.ID(id))
	if !ok {
		return nil, false
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out, true
}

// ShardSnapshot is one shard's state captured from its mirror block.
type ShardSnapshot struct {
	Len       int
	Volume    int64
	Footprint int64
}

// Snapshot captures every shard's (len, volume, footprint) triple — each
// internally consistent, read from that shard's seqlocked mirror block —
// plus totals that are exactly the sums of the captured per-shard terms.
// Under concurrent mutation the totals may not correspond to any single
// global instant (shards are visited one at a time), but they are always
// consistent with the per-shard entries returned alongside them; this is
// the documented snapshot semantics of all aggregate reads, unchanged
// from the locked implementation — only the locks are gone.
type Snapshot struct {
	Shards    []ShardSnapshot
	Len       int
	Volume    int64
	Footprint int64
}

// Snapshot implements the aggregate-read contract above. It allocates
// the per-shard slice; monitoring loops should use ReadSnapshot.
func (s *ShardedReallocator) Snapshot() Snapshot {
	snap := Snapshot{Shards: make([]ShardSnapshot, 0, len(s.shards))}
	s.ReadSnapshot(&snap)
	return snap
}

// ReadSnapshot fills snap in place, reusing its Shards slice when it has
// capacity — the allocation-free form of Snapshot for monitoring loops.
func (s *ShardedReallocator) ReadSnapshot(snap *Snapshot) {
	snap.Shards = snap.Shards[:0]
	snap.Len, snap.Volume, snap.Footprint = 0, 0, 0
	for _, sh := range s.shards {
		ss := sh.readSnapshot()
		snap.Shards = append(snap.Shards, ss)
		snap.Len += ss.Len
		snap.Volume += ss.Volume
		snap.Footprint += ss.Footprint
	}
}

// ShardStats returns shard i's own accumulated metrics; ok=false unless
// the reallocator was built WithMetrics. The metrics recorder is written
// under the shard's write lock, so this takes the read side (readers
// don't block each other, only writers).
func (s *ShardedReallocator) ShardStats(i int) (Stats, bool) {
	sh := s.shards[i]
	if sh.metrics == nil {
		return Stats{}, false
	}
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	st := statsFromMetrics(sh.metrics)
	if sh.tel != nil {
		var snap telemetry.Snapshot
		s.telReg.ReadShardSnapshot(i, &snap)
		st.LatencyP99, st.FlushP99 = latencyP99s(&snap)
	}
	return st, true
}

// Stats returns metrics aggregated over all shards: counters are summed,
// MaxFootprintRatio is the worst per-shard ratio (the quantity each
// shard's (1+ε) bound actually constrains), and each cost ratio is the
// summed reallocation cost over the summed allocation cost. Migration
// counters and the per-shard volume spread are filled in whether or not a
// rebalancer is armed. It returns ok=false unless the reallocator was
// built WithMetrics.
//
// The per-shard volume vector comes from the lock-free mirrors; reading
// each shard's metrics recorder takes that shard's read lock (the
// recorder is plain memory written under the write lock). It allocates
// the result maps; monitoring loops should use ReadStats.
//
// A migration is accounted once in Migrations/MigratedVolume; the
// per-shard metrics it also touches see it as one delete on the source
// shard and one insert on the target shard, which is what each shard's
// cost meter honestly paid.
func (s *ShardedReallocator) Stats() (Stats, bool) {
	var st Stats
	if !s.ReadStats(&st) {
		return Stats{}, false
	}
	return st, true
}

// ReadStats fills st in place, reusing its maps when present — the
// allocation-free form of Stats for monitoring loops. It reports false
// (and leaves st untouched) unless the reallocator was built
// WithMetrics.
func (s *ShardedReallocator) ReadStats(st *Stats) bool {
	if s.shards[0].metrics == nil {
		return false
	}
	clearStats(st)
	volsPtr := s.volScratch.Get().(*[]int64)
	defer s.volScratch.Put(volsPtr)
	vols := (*volsPtr)[:0]
	// Per-function alloc sums accumulate in st.CostRatios (divided in
	// place below); realloc sums use a pooled scratch map, so a reused st
	// makes the whole read allocation-free.
	allocSums := st.CostRatios
	reallocSums := s.costScratch.Get().(map[string]float64)
	clear(reallocSums)
	defer s.costScratch.Put(reallocSums)
	linesPtr := s.lineScratch.Get().(*[]cost.Line)
	defer s.lineScratch.Put(linesPtr)
	for _, sh := range s.shards {
		sh.mu.RLock()
		// The mirror is exact here: publish runs under the write lock
		// after every mutation, and we hold the read side.
		vols = append(vols, sh.vol.Load())
		m := sh.metrics
		st.Inserts += m.Inserts
		st.Deletes += m.Deletes
		st.Moves += m.MovesTotal
		st.MovedVolume += m.MovedVolume
		if m.MaxRatioQuiescent > st.MaxFootprintRatio {
			st.MaxFootprintRatio = m.MaxRatioQuiescent
		}
		st.Flushes += m.Flushes
		st.Checkpoints += m.CheckpointsTotal
		if m.MaxCheckpointsFlush > st.MaxCheckpointsFlush {
			st.MaxCheckpointsFlush = m.MaxCheckpointsFlush
		}
		if m.MaxOpMovedVolume > st.MaxOpMovedVolume {
			st.MaxOpMovedVolume = m.MaxOpMovedVolume
		}
		*linesPtr = m.Meter.AppendLines((*linesPtr)[:0])
		for _, l := range *linesPtr {
			allocSums[l.Func] += l.AllocCost
			reallocSums[l.Func] += l.ReallocCost
			if l.MaxOpCost > st.MaxOpCost[l.Func] {
				st.MaxOpCost[l.Func] = l.MaxOpCost
			}
		}
		sh.mu.RUnlock()
	}
	for f, a := range allocSums {
		if a > 0 {
			st.CostRatios[f] = reallocSums[f] / a
		} else {
			st.CostRatios[f] = 0
		}
	}
	st.Migrations = s.migrations.Load()
	st.MigratedVolume = s.migratedVolume.Load()
	st.MaxShardVolume, st.MinShardVolume = vols[0], vols[0]
	for _, v := range vols[1:] {
		if v > st.MaxShardVolume {
			st.MaxShardVolume = v
		}
		if v < st.MinShardVolume {
			st.MinShardVolume = v
		}
	}
	st.VolumeSpread = rebalance.Skew(vols)
	*volsPtr = vols
	if s.telReg != nil {
		// The registry read is lock-free; the pooled snapshot keeps a
		// reused st at 0 allocs/op even with telemetry armed.
		snap := s.telScratch.Get().(*telemetry.Snapshot)
		s.telReg.ReadSnapshot(snap)
		st.LatencyP99, st.FlushP99 = latencyP99s(snap)
		s.telScratch.Put(snap)
	}
	return true
}

// clearStats resets st for reuse, keeping (and emptying) its maps.
func clearStats(st *Stats) {
	cr, moc := st.CostRatios, st.MaxOpCost
	if cr == nil {
		cr = map[string]float64{}
	} else {
		clear(cr)
	}
	if moc == nil {
		moc = map[string]float64{}
	} else {
		clear(moc)
	}
	*st = Stats{CostRatios: cr, MaxOpCost: moc}
}
