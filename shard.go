package realloc

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"realloc/internal/addrspace"
	"realloc/internal/core"
	"realloc/internal/trace"
)

// ShardedReallocator scales the cost-oblivious reallocator across
// goroutines by hash-partitioning object ids over n independent cores,
// each guarded by its own mutex and owning a private address space.
//
// The paper's guarantees are per-allocator, so they survive partitioning
// shard by shard: shard i keeps its footprint within (1+ε)·V_i of its own
// live volume V_i, and therefore the summed footprint stays within (1+ε)
// of the total live volume (plus the per-shard additive terms, which now
// occur once per shard rather than once). The cost bound is likewise
// preserved: each shard's reallocation cost is O((1/ε)·log(1/ε)) times
// its own allocation cost for every subadditive cost function, and the
// bound is closed under summation. What sharding gives up is a single
// contiguous address space: an extent's address is relative to its
// shard's space, so callers mapping placements to physical storage must
// key by (shard, address) — every observer Event carries its Shard index
// for exactly this purpose.
//
// Operations on a single object (Insert, Delete, Extent, Has) take only
// that object's shard lock and run in parallel across shards. Aggregate
// reads (Len, Volume, Footprint, ...) visit the shards one lock at a
// time; under concurrent mutation they return a consistent per-shard but
// not globally-atomic snapshot.
type ShardedReallocator struct {
	shards  []*shard
	epsilon float64
}

// shard pairs one sequential core with its own lock and recorders.
type shard struct {
	mu      sync.Mutex
	inner   *core.Reallocator
	metrics *trace.Metrics
}

// NewSharded creates a ShardedReallocator. It accepts the same options as
// New — WithShards picks the shard count (default runtime.GOMAXPROCS),
// WithLocking is implied, and a WithObserver callback must be safe for
// concurrent use because shards emit events in parallel. The callback
// runs while the emitting shard's lock is held: it must not call back
// into the reallocator, or it will deadlock.
func NewSharded(opts ...Option) (*ShardedReallocator, error) {
	cfg := config{epsilon: 0.25}
	for _, o := range opts {
		o(&cfg)
	}
	n := cfg.shards
	if !cfg.shardsSet {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		return nil, errors.New("realloc: shard count must be >= 1")
	}
	s := &ShardedReallocator{shards: make([]*shard, n), epsilon: cfg.epsilon}
	for i := range s.shards {
		rec, m := newRecorder(&cfg, i)
		inner, err := core.New(core.Config{
			Epsilon:  cfg.epsilon,
			EpsPrime: cfg.epsPrime,
			Variant:  core.Variant(cfg.variant),
			Recorder: rec,
			Paranoid: cfg.paranoid,
		})
		if err != nil {
			return nil, err
		}
		s.shards[i] = &shard{inner: inner, metrics: m}
	}
	return s, nil
}

// mix64 is the SplitMix64 finalizer: a cheap bijective scrambler that
// spreads sequential ids evenly across shards.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ShardOf returns the index of the shard that owns id. The mapping is
// stable for the lifetime of the reallocator.
func (s *ShardedReallocator) ShardOf(id int64) int {
	return int(mix64(uint64(id)) % uint64(len(s.shards)))
}

func (s *ShardedReallocator) shardFor(id int64) *shard {
	return s.shards[s.ShardOf(id)]
}

// Shards returns the shard count.
func (s *ShardedReallocator) Shards() int { return len(s.shards) }

// Insert services 〈InsertObject, id, size〉 on the owning shard.
func (s *ShardedReallocator) Insert(id int64, size int64) error {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.inner.Insert(addrspace.ID(id), size)
}

// Delete services 〈DeleteObject, id〉 on the owning shard.
func (s *ShardedReallocator) Delete(id int64) error {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.inner.Delete(addrspace.ID(id))
}

// Extent returns the object's current placement within its shard's
// private address space; combine with ShardOf(id) for a globally unique
// physical location.
func (s *ShardedReallocator) Extent(id int64) (Extent, bool) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.inner.Extent(addrspace.ID(id))
	return Extent{Start: e.Start, Size: e.Size}, ok
}

// Has reports whether the object is live.
func (s *ShardedReallocator) Has(id int64) bool {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.inner.Has(addrspace.ID(id))
}

// Len returns the number of live objects across all shards.
func (s *ShardedReallocator) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += sh.inner.Len()
		sh.mu.Unlock()
	}
	return n
}

// Volume returns the total live volume V summed over shards.
func (s *ShardedReallocator) Volume() int64 {
	var v int64
	for _, sh := range s.shards {
		sh.mu.Lock()
		v += sh.inner.Volume()
		sh.mu.Unlock()
	}
	return v
}

// Footprint returns the summed per-shard footprint: each shard keeps its
// own footprint within (1+ε)·V_shard, so the sum stays within (1+ε) of
// the total live volume.
func (s *ShardedReallocator) Footprint() int64 {
	var f int64
	for _, sh := range s.shards {
		sh.mu.Lock()
		f += sh.inner.Footprint()
		sh.mu.Unlock()
	}
	return f
}

// ShardFootprint returns shard i's own footprint.
func (s *ShardedReallocator) ShardFootprint(i int) int64 {
	sh := s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.inner.Footprint()
}

// ShardVolume returns shard i's live volume.
func (s *ShardedReallocator) ShardVolume(i int) int64 {
	sh := s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.inner.Volume()
}

// Delta returns the largest object size seen by any shard (the paper's
// ∆; per-shard additive terms use each shard's own ∆, which is at most
// this).
func (s *ShardedReallocator) Delta() int64 {
	var d int64
	for _, sh := range s.shards {
		sh.mu.Lock()
		if sd := sh.inner.Delta(); sd > d {
			d = sd
		}
		sh.mu.Unlock()
	}
	return d
}

// Epsilon returns the configured footprint slack (shared by all shards).
func (s *ShardedReallocator) Epsilon() float64 { return s.epsilon }

// Flushes returns the total buffer flushes summed over shards.
func (s *ShardedReallocator) Flushes() int64 {
	var n int64
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += sh.inner.Flushes()
		sh.mu.Unlock()
	}
	return n
}

// FlushActive reports whether any shard has a deamortized flush
// mid-execution.
func (s *ShardedReallocator) FlushActive() bool {
	for _, sh := range s.shards {
		sh.mu.Lock()
		active := sh.inner.FlushActive()
		sh.mu.Unlock()
		if active {
			return true
		}
	}
	return false
}

// Drain completes any in-progress deamortized flush on every shard.
func (s *ShardedReallocator) Drain() error {
	for i, sh := range s.shards {
		sh.mu.Lock()
		err := sh.inner.Drain()
		sh.mu.Unlock()
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// ForEach visits live objects shard by shard in shard-index order, in
// address order within each shard. Each shard's lock is held while its
// objects are visited: fn must not call back into the reallocator.
func (s *ShardedReallocator) ForEach(fn func(id int64, ext Extent)) {
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.inner.ForEach(func(id addrspace.ID, e addrspace.Extent) {
			fn(int64(id), Extent{Start: e.Start, Size: e.Size})
		})
		sh.mu.Unlock()
	}
}

// CheckInvariants validates every shard's full structure; see
// WithInvariantChecks.
func (s *ShardedReallocator) CheckInvariants() error {
	for i, sh := range s.shards {
		sh.mu.Lock()
		err := sh.inner.CheckInvariants()
		sh.mu.Unlock()
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// ShardStats returns shard i's own accumulated metrics; ok=false unless
// the reallocator was built WithMetrics.
func (s *ShardedReallocator) ShardStats(i int) (Stats, bool) {
	sh := s.shards[i]
	if sh.metrics == nil {
		return Stats{}, false
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return statsFromMetrics(sh.metrics), true
}

// Stats returns metrics aggregated over all shards: counters are summed,
// MaxFootprintRatio is the worst per-shard ratio (the quantity each
// shard's (1+ε) bound actually constrains), and each cost ratio is the
// summed reallocation cost over the summed allocation cost. It returns
// ok=false unless the reallocator was built WithMetrics.
func (s *ShardedReallocator) Stats() (Stats, bool) {
	if s.shards[0].metrics == nil {
		return Stats{}, false
	}
	agg := Stats{CostRatios: map[string]float64{}, MaxOpCost: map[string]float64{}}
	alloc := map[string]float64{}
	realloc := map[string]float64{}
	for _, sh := range s.shards {
		sh.mu.Lock()
		m := sh.metrics
		agg.Inserts += m.Inserts
		agg.Deletes += m.Deletes
		agg.Moves += m.MovesTotal
		agg.MovedVolume += m.MovedVolume
		if m.MaxRatioQuiescent > agg.MaxFootprintRatio {
			agg.MaxFootprintRatio = m.MaxRatioQuiescent
		}
		agg.Flushes += m.Flushes
		agg.Checkpoints += m.CheckpointsTotal
		if m.MaxCheckpointsFlush > agg.MaxCheckpointsFlush {
			agg.MaxCheckpointsFlush = m.MaxCheckpointsFlush
		}
		if m.MaxOpMovedVolume > agg.MaxOpMovedVolume {
			agg.MaxOpMovedVolume = m.MaxOpMovedVolume
		}
		for _, l := range m.Meter.Lines() {
			alloc[l.Func] += l.AllocCost
			realloc[l.Func] += l.ReallocCost
			if l.MaxOpCost > agg.MaxOpCost[l.Func] {
				agg.MaxOpCost[l.Func] = l.MaxOpCost
			}
		}
		sh.mu.Unlock()
	}
	for f, a := range alloc {
		if a > 0 {
			agg.CostRatios[f] = realloc[f] / a
		} else {
			agg.CostRatios[f] = 0
		}
	}
	return agg, true
}
