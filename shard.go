package realloc

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"realloc/internal/addrspace"
	"realloc/internal/core"
	"realloc/internal/rebalance"
	"realloc/internal/shardhash"
	"realloc/internal/trace"
)

// ShardedReallocator scales the cost-oblivious reallocator across
// goroutines by partitioning object ids over n independent cores, each
// guarded by its own mutex and owning a private address space.
//
// The paper's guarantees are per-allocator, so they survive partitioning
// shard by shard: shard i keeps its footprint within (1+ε)·V_i of its own
// live volume V_i, and therefore the summed footprint stays within (1+ε)
// of the total live volume (plus the per-shard additive terms, which now
// occur once per shard rather than once). The cost bound is likewise
// preserved: each shard's reallocation cost is O((1/ε)·log(1/ε)) times
// its own allocation cost for every subadditive cost function, and the
// bound is closed under summation. What sharding gives up is a single
// contiguous address space: an extent's address is relative to its
// shard's space, so callers mapping placements to physical storage must
// key by (shard, address) — every observer Event carries its Shard index
// for exactly this purpose.
//
// Ids are routed through a stable id→shard table: an id's default home is
// a hash of the id, and the rebalancer (see WithRebalance) may reassign
// individual ids to level live volume across shards. The route only
// changes under both affected shard locks, so every operation still sees
// exactly one owner per id.
//
// Operations on a single object (Insert, Delete, Extent, Has) take only
// that object's shard lock and run in parallel across shards. Aggregate
// reads (Len, Volume, Footprint, ...) visit the shards one lock at a
// time: each per-shard term is read under that shard's lock, but shards
// already visited may mutate before the loop finishes, so under
// concurrent mutation the result is a per-shard-consistent, not
// globally-atomic, snapshot. Use Snapshot to get the per-shard terms and
// their exact sums in one call.
type ShardedReallocator struct {
	shards  []*shard
	epsilon float64
	router  *router
	// observer is the user callback events are delivered to; migration
	// events are emitted here directly (per-shard events go through each
	// shard's recorder chain).
	observer func(Event)

	// Rebalancing state; pol is always valid (defaults), auto/inline say
	// whether a trigger is armed.
	pol     rebalance.Policy
	auto    bool
	inline  bool
	opCount atomic.Int64

	migrations     atomic.Int64
	migratedVolume atomic.Int64

	// rebalanceMu serializes sweeps; errMu guards the sticky background
	// error returned by Close.
	rebalanceMu sync.Mutex
	errMu       sync.Mutex
	rebalErr    error

	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// shard pairs one sequential core with its own lock and recorders. vol
// caches the shard's live volume (maintained under mu, read lock-free)
// so skew checks on the hot path never take locks.
type shard struct {
	mu      sync.Mutex
	inner   *core.Reallocator
	metrics *trace.Metrics
	vol     atomic.Int64
}

// router is the id→shard table: the default route is the stable hash
// home, overridden per id once the rebalancer migrates it. Overrides are
// only written while both affected shard locks are held, and dropped when
// the object is deleted or migrated back home, so the table stays
// proportional to the number of displaced live objects.
type router struct {
	mu        sync.RWMutex
	n         int
	overrides map[int64]int
}

func newRouter(n int) *router {
	return &router{n: n, overrides: make(map[int64]int)}
}

func (rt *router) route(id int64) int {
	rt.mu.RLock()
	s, ok := rt.overrides[id]
	rt.mu.RUnlock()
	if ok {
		return s
	}
	return shardhash.Home(id, rt.n)
}

// set records that id now lives on shard; routing an id back to its hash
// home removes the override instead of storing a redundant entry.
func (rt *router) set(id int64, shard int) {
	rt.mu.Lock()
	if shardhash.Home(id, rt.n) == shard {
		delete(rt.overrides, id)
	} else {
		rt.overrides[id] = shard
	}
	rt.mu.Unlock()
}

func (rt *router) clear(id int64) {
	rt.mu.Lock()
	delete(rt.overrides, id)
	rt.mu.Unlock()
}

func (rt *router) overrideCount() int {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return len(rt.overrides)
}

// NewSharded creates a ShardedReallocator. It accepts the same options as
// New — WithShards picks the shard count (default runtime.GOMAXPROCS),
// WithRebalance arms dynamic cross-shard rebalancing, WithLocking is
// implied, and a WithObserver callback must be safe for concurrent use
// because shards emit events in parallel. The callback runs while the
// emitting shard's lock is held (both shard locks, for migration events):
// it must not call back into the reallocator, or it will deadlock.
//
// Call Close when done if the reallocator was built with a background
// rebalancing policy; it is a no-op otherwise.
func NewSharded(opts ...Option) (*ShardedReallocator, error) {
	cfg := config{epsilon: 0.25}
	for _, o := range opts {
		o(&cfg)
	}
	if err := validateEpsilon(cfg.epsilon); err != nil {
		return nil, err
	}
	n := cfg.shards
	if !cfg.shardsSet {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		return nil, fmt.Errorf("realloc: shard count must be >= 1, got %d", n)
	}
	s := &ShardedReallocator{
		shards:   make([]*shard, n),
		epsilon:  cfg.epsilon,
		router:   newRouter(n),
		observer: cfg.observer,
		pol:      rebalance.Policy{}.WithDefaults(),
	}
	for i := range s.shards {
		rec, m := newRecorder(&cfg, i)
		inner, err := core.New(core.Config{
			Epsilon:     cfg.epsilon,
			EpsPrime:    cfg.epsPrime,
			Variant:     core.Variant(cfg.variant),
			Recorder:    rec,
			Paranoid:    cfg.paranoid,
			SerialFlush: cfg.serialFlush,
		})
		if err != nil {
			return nil, err
		}
		s.shards[i] = &shard{inner: inner, metrics: m}
	}
	if cfg.rebalance != nil {
		pol := toInternalPolicy(*cfg.rebalance).WithDefaults()
		if err := pol.Validate(); err != nil {
			return nil, fmt.Errorf("realloc: %w", err)
		}
		s.pol = pol
		s.auto = true
		s.inline = pol.Mode == rebalance.Inline
		if pol.Mode == rebalance.Background {
			s.stop = make(chan struct{})
			s.done = make(chan struct{})
			go s.backgroundLoop()
		}
	}
	return s, nil
}

// ShardOf returns the index of the shard that currently owns id: the
// stable hash home, unless the rebalancer has reassigned the id. Without
// WithRebalance the mapping never changes.
func (s *ShardedReallocator) ShardOf(id int64) int {
	return s.router.route(id)
}

// Shards returns the shard count.
func (s *ShardedReallocator) Shards() int { return len(s.shards) }

// acquire locks and returns the shard that owns id. Because a concurrent
// migration may reroute the id between the route lookup and the lock
// acquisition, the route is re-checked under the lock and the acquisition
// retried on a change (migrations hold both shard locks while they update
// the route, so the second check is authoritative).
func (s *ShardedReallocator) acquire(id int64) (*shard, int) {
	for {
		i := s.router.route(id)
		sh := s.shards[i]
		sh.mu.Lock()
		if s.router.route(id) == i {
			return sh, i
		}
		sh.mu.Unlock()
	}
}

// Insert services 〈InsertObject, id, size〉 on the owning shard.
func (s *ShardedReallocator) Insert(id int64, size int64) error {
	if size < 1 {
		return fmt.Errorf("realloc: object size must be >= 1, got %d", size)
	}
	sh, _ := s.acquire(id)
	err := sh.inner.Insert(addrspace.ID(id), size)
	sh.vol.Store(sh.inner.Volume())
	sh.mu.Unlock()
	if err == nil && s.inline {
		s.maybeStealRebalance()
	}
	return err
}

// Delete services 〈DeleteObject, id〉 on the owning shard.
func (s *ShardedReallocator) Delete(id int64) error {
	sh, _ := s.acquire(id)
	err := sh.inner.Delete(addrspace.ID(id))
	sh.vol.Store(sh.inner.Volume())
	if err == nil {
		// The id is gone; future inserts of the same id hash fresh.
		s.router.clear(id)
	}
	sh.mu.Unlock()
	if err == nil && s.inline {
		s.maybeStealRebalance()
	}
	return err
}

// Extent returns the object's current placement within its shard's
// private address space; combine with ShardOf(id) for a globally unique
// physical location.
func (s *ShardedReallocator) Extent(id int64) (Extent, bool) {
	sh, _ := s.acquire(id)
	defer sh.mu.Unlock()
	e, ok := sh.inner.Extent(addrspace.ID(id))
	return Extent{Start: e.Start, Size: e.Size}, ok
}

// Has reports whether the object is live.
func (s *ShardedReallocator) Has(id int64) bool {
	sh, _ := s.acquire(id)
	defer sh.mu.Unlock()
	return sh.inner.Has(addrspace.ID(id))
}

// Len returns the number of live objects across all shards.
func (s *ShardedReallocator) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += sh.inner.Len()
		sh.mu.Unlock()
	}
	return n
}

// Volume returns the total live volume V summed over shards.
func (s *ShardedReallocator) Volume() int64 {
	var v int64
	for _, sh := range s.shards {
		sh.mu.Lock()
		v += sh.inner.Volume()
		sh.mu.Unlock()
	}
	return v
}

// Footprint returns the summed per-shard footprint: each shard keeps its
// own footprint within (1+ε)·V_shard, so the sum stays within (1+ε) of
// the total live volume.
func (s *ShardedReallocator) Footprint() int64 {
	var f int64
	for _, sh := range s.shards {
		sh.mu.Lock()
		f += sh.inner.Footprint()
		sh.mu.Unlock()
	}
	return f
}

// ShardFootprint returns shard i's own footprint.
func (s *ShardedReallocator) ShardFootprint(i int) int64 {
	sh := s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.inner.Footprint()
}

// ShardVolume returns shard i's live volume.
func (s *ShardedReallocator) ShardVolume(i int) int64 {
	sh := s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.inner.Volume()
}

// ShardVolumes returns every shard's live volume in one pass, one shard
// lock at a time — the vector the rebalancer's skew detector runs on.
func (s *ShardedReallocator) ShardVolumes() []int64 {
	vols := make([]int64, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.Lock()
		vols[i] = sh.inner.Volume()
		sh.mu.Unlock()
	}
	return vols
}

// Delta returns the largest object size seen by any shard (the paper's
// ∆; per-shard additive terms use each shard's own ∆, which is at most
// this).
func (s *ShardedReallocator) Delta() int64 {
	var d int64
	for _, sh := range s.shards {
		sh.mu.Lock()
		if sd := sh.inner.Delta(); sd > d {
			d = sd
		}
		sh.mu.Unlock()
	}
	return d
}

// Epsilon returns the configured footprint slack (shared by all shards).
func (s *ShardedReallocator) Epsilon() float64 { return s.epsilon }

// Flushes returns the total buffer flushes summed over shards.
func (s *ShardedReallocator) Flushes() int64 {
	var n int64
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += sh.inner.Flushes()
		sh.mu.Unlock()
	}
	return n
}

// FlushActive reports whether any shard has a deamortized flush
// mid-execution.
func (s *ShardedReallocator) FlushActive() bool {
	for _, sh := range s.shards {
		sh.mu.Lock()
		active := sh.inner.FlushActive()
		sh.mu.Unlock()
		if active {
			return true
		}
	}
	return false
}

// Drain completes any in-progress deamortized flush on every shard.
func (s *ShardedReallocator) Drain() error {
	for i, sh := range s.shards {
		sh.mu.Lock()
		err := sh.inner.Drain()
		sh.vol.Store(sh.inner.Volume())
		sh.mu.Unlock()
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// ForEach visits live objects shard by shard in shard-index order, in
// address order within each shard. Each shard's lock is held while its
// objects are visited: fn must not call back into the reallocator. Under
// a concurrently running rebalancer an object migrating between an
// already-visited and a not-yet-visited shard can be missed or seen
// twice; quiesce the rebalancer (Close, or no concurrent Rebalance) for
// an exact iteration.
func (s *ShardedReallocator) ForEach(fn func(id int64, ext Extent)) {
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.inner.ForEach(func(id addrspace.ID, e addrspace.Extent) {
			fn(int64(id), Extent{Start: e.Start, Size: e.Size})
		})
		sh.mu.Unlock()
	}
}

// CheckInvariants validates every shard's full structure; see
// WithInvariantChecks.
func (s *ShardedReallocator) CheckInvariants() error {
	for i, sh := range s.shards {
		sh.mu.Lock()
		err := sh.inner.CheckInvariants()
		sh.mu.Unlock()
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// ShardSnapshot is one shard's state captured under its lock.
type ShardSnapshot struct {
	Len       int
	Volume    int64
	Footprint int64
}

// Snapshot captures every shard's (len, volume, footprint) triple — each
// internally consistent, read under that shard's lock — plus totals that
// are exactly the sums of the captured per-shard terms. Under concurrent
// mutation the totals may not correspond to any single global instant
// (shards are visited one at a time), but they are always consistent with
// the per-shard entries returned alongside them; this is the documented
// snapshot semantics of all aggregate reads.
type Snapshot struct {
	Shards    []ShardSnapshot
	Len       int
	Volume    int64
	Footprint int64
}

// Snapshot implements the aggregate-read contract above.
func (s *ShardedReallocator) Snapshot() Snapshot {
	snap := Snapshot{Shards: make([]ShardSnapshot, len(s.shards))}
	for i, sh := range s.shards {
		sh.mu.Lock()
		ss := ShardSnapshot{
			Len:       sh.inner.Len(),
			Volume:    sh.inner.Volume(),
			Footprint: sh.inner.Footprint(),
		}
		sh.mu.Unlock()
		snap.Shards[i] = ss
		snap.Len += ss.Len
		snap.Volume += ss.Volume
		snap.Footprint += ss.Footprint
	}
	return snap
}

// ShardStats returns shard i's own accumulated metrics; ok=false unless
// the reallocator was built WithMetrics.
func (s *ShardedReallocator) ShardStats(i int) (Stats, bool) {
	sh := s.shards[i]
	if sh.metrics == nil {
		return Stats{}, false
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return statsFromMetrics(sh.metrics), true
}

// Stats returns metrics aggregated over all shards: counters are summed,
// MaxFootprintRatio is the worst per-shard ratio (the quantity each
// shard's (1+ε) bound actually constrains), and each cost ratio is the
// summed reallocation cost over the summed allocation cost. Migration
// counters and the per-shard volume spread are filled in whether or not a
// rebalancer is armed. It returns ok=false unless the reallocator was
// built WithMetrics.
//
// A migration is accounted once in Migrations/MigratedVolume; the
// per-shard metrics it also touches see it as one delete on the source
// shard and one insert on the target shard, which is what each shard's
// cost meter honestly paid.
func (s *ShardedReallocator) Stats() (Stats, bool) {
	if s.shards[0].metrics == nil {
		return Stats{}, false
	}
	agg := Stats{CostRatios: map[string]float64{}, MaxOpCost: map[string]float64{}}
	alloc := map[string]float64{}
	realloc := map[string]float64{}
	vols := make([]int64, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.Lock()
		vols[i] = sh.inner.Volume()
		m := sh.metrics
		agg.Inserts += m.Inserts
		agg.Deletes += m.Deletes
		agg.Moves += m.MovesTotal
		agg.MovedVolume += m.MovedVolume
		if m.MaxRatioQuiescent > agg.MaxFootprintRatio {
			agg.MaxFootprintRatio = m.MaxRatioQuiescent
		}
		agg.Flushes += m.Flushes
		agg.Checkpoints += m.CheckpointsTotal
		if m.MaxCheckpointsFlush > agg.MaxCheckpointsFlush {
			agg.MaxCheckpointsFlush = m.MaxCheckpointsFlush
		}
		if m.MaxOpMovedVolume > agg.MaxOpMovedVolume {
			agg.MaxOpMovedVolume = m.MaxOpMovedVolume
		}
		for _, l := range m.Meter.Lines() {
			alloc[l.Func] += l.AllocCost
			realloc[l.Func] += l.ReallocCost
			if l.MaxOpCost > agg.MaxOpCost[l.Func] {
				agg.MaxOpCost[l.Func] = l.MaxOpCost
			}
		}
		sh.mu.Unlock()
	}
	for f, a := range alloc {
		if a > 0 {
			agg.CostRatios[f] = realloc[f] / a
		} else {
			agg.CostRatios[f] = 0
		}
	}
	agg.Migrations = s.migrations.Load()
	agg.MigratedVolume = s.migratedVolume.Load()
	agg.MaxShardVolume, agg.MinShardVolume = vols[0], vols[0]
	for _, v := range vols[1:] {
		if v > agg.MaxShardVolume {
			agg.MaxShardVolume = v
		}
		if v < agg.MinShardVolume {
			agg.MinShardVolume = v
		}
	}
	agg.VolumeSpread = rebalance.Skew(vols)
	return agg, true
}
