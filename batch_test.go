package realloc

import (
	"errors"
	"math/rand/v2"
	"runtime"
	"slices"
	"sync"
	"testing"
	"time"

	"realloc/internal/telemetry"
)

// batchCases is the equivalence matrix of the satellite contract:
// {amortized, deamortized} × {pods14, fcs}, minus the cell the FCS core
// does not implement (it is an amortized-only algorithm).
var batchCases = []struct {
	name    string
	variant Variant
	core    Core
}{
	{"amortized-pods14", Amortized, CorePODS14},
	{"deamortized-pods14", Deamortized, CorePODS14},
	{"amortized-fcs", Amortized, CoreFCS},
}

// batchScript builds a deterministic mixed op stream with deliberate
// mid-stream failures: bad sizes, duplicate inserts, deletes of missing
// ids — the error positions the batch path must reproduce exactly.
func batchScript(n int) Batch {
	rng := rand.New(rand.NewPCG(42, 7))
	var b Batch
	var live []int64
	next := int64(1)
	for i := 0; i < n; i++ {
		switch {
		case i%37 == 13:
			b = append(b, InsertOp(next, int64(-(i%3)))) // size <= 0
			next++
		case i%41 == 17 && len(live) > 0:
			b = append(b, InsertOp(live[rng.IntN(len(live))], 5)) // duplicate
		case i%43 == 19:
			b = append(b, DeleteOp(int64(1)<<50)) // missing
		case len(live) > 40 && rng.IntN(2) == 0:
			j := rng.IntN(len(live))
			id := live[j]
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			b = append(b, DeleteOp(id))
		default:
			b = append(b, InsertOp(next, int64(1+rng.IntN(32))))
			live = append(live, next)
			next++
		}
	}
	return b
}

// opTarget is the per-op surface both facades share.
type opTarget interface {
	Insert(id, size int64) error
	Delete(id int64) error
}

// runPerOp is the sequential reference: the loop of Insert/Delete calls
// a batch must be indistinguishable from.
func runPerOp(tgt opTarget, script Batch) []error {
	errs := make([]error, len(script))
	for i, op := range script {
		if op.Kind == OpInsert {
			errs[i] = tgt.Insert(op.ID, op.Size)
		} else {
			errs[i] = tgt.Delete(op.ID)
		}
	}
	return errs
}

// runBatched drives the script through Apply in chunk-sized batches,
// spreading each batch's errors back to script positions.
func runBatched(a applier, script Batch, chunk int) []error {
	errs := make([]error, len(script))
	for lo := 0; lo < len(script); lo += chunk {
		hi := lo + chunk
		if hi > len(script) {
			hi = len(script)
		}
		if res := a.Apply(script[lo:hi]); res != nil {
			copy(errs[lo:hi], res)
		}
	}
	return errs
}

func sameErrs(t *testing.T, label string, got, want []error) {
	t.Helper()
	for i := range want {
		g, w := got[i], want[i]
		switch {
		case (g == nil) != (w == nil):
			t.Fatalf("%s: op %d error = %v, want %v", label, i, g, w)
		case g != nil && g.Error() != w.Error():
			t.Fatalf("%s: op %d error = %q, want %q", label, i, g.Error(), w.Error())
		}
	}
}

type placement struct {
	id, start, size int64
}

type stateDumper interface {
	ForEach(fn func(id int64, ext Extent))
	Len() int
	Volume() int64
	Footprint() int64
}

func dumpState(d stateDumper) []placement {
	var out []placement
	d.ForEach(func(id int64, ext Extent) {
		out = append(out, placement{id, ext.Start, ext.Size})
	})
	return out
}

func sameState(t *testing.T, label string, got, want stateDumper) {
	t.Helper()
	if g, w := got.Len(), want.Len(); g != w {
		t.Fatalf("%s: len %d, want %d", label, g, w)
	}
	if g, w := got.Volume(), want.Volume(); g != w {
		t.Fatalf("%s: volume %d, want %d", label, g, w)
	}
	if g, w := got.Footprint(), want.Footprint(); g != w {
		t.Fatalf("%s: footprint %d, want %d", label, g, w)
	}
	if g, w := dumpState(got), dumpState(want); !slices.Equal(g, w) {
		t.Fatalf("%s: layouts differ (%d vs %d placements)", label, len(g), len(w))
	}
}

// eventLog collects observer events; safe for the sharded facades'
// concurrent emission.
type eventLog struct {
	mu     sync.Mutex
	events []Event
}

func (l *eventLog) add(e Event) {
	l.mu.Lock()
	l.events = append(l.events, e)
	l.mu.Unlock()
}

func (l *eventLog) perShard(n int) [][]Event {
	out := make([][]Event, n)
	for _, e := range l.events {
		out[e.Shard] = append(out[e.Shard], e)
	}
	return out
}

// TestBatchApplyEquivalencePlain pins the tentpole contract on the
// plain facade: Apply's results, observer event order, and final state
// are identical to the sequential loop, for every core/variant cell and
// across batch sizes.
func TestBatchApplyEquivalencePlain(t *testing.T) {
	script := batchScript(600)
	for _, c := range batchCases {
		for _, chunk := range []int{17, 64} {
			t.Run(c.name, func(t *testing.T) {
				var refLog, batLog eventLog
				ref, err := New(WithVariant(c.variant), WithCore(c.core), WithObserver(refLog.add))
				if err != nil {
					t.Fatal(err)
				}
				bat, err := New(WithVariant(c.variant), WithCore(c.core), WithObserver(batLog.add))
				if err != nil {
					t.Fatal(err)
				}
				refErrs := runPerOp(ref, script)
				batErrs := runBatched(bat, script, chunk)
				sameErrs(t, "batched", batErrs, refErrs)
				sameState(t, "batched", bat, ref)
				if !slices.Equal(batLog.events, refLog.events) {
					t.Fatalf("event streams differ: %d vs %d events", len(batLog.events), len(refLog.events))
				}
			})
		}
	}
}

// TestBatchApplyEquivalenceSharded pins the same contract on the
// sharded facade. The batch executes shard groups in shard order, so
// the global event interleaving legitimately differs from the
// sequential loop — but each shard receives exactly its submission-
// order subsequence, so the per-shard event streams and the final
// per-shard layouts must be identical.
func TestBatchApplyEquivalenceSharded(t *testing.T) {
	const shards = 4
	script := batchScript(600)
	for _, c := range batchCases {
		t.Run(c.name, func(t *testing.T) {
			var refLog, batLog eventLog
			ref, err := NewSharded(WithShards(shards), WithVariant(c.variant), WithCore(c.core), WithObserver(refLog.add))
			if err != nil {
				t.Fatal(err)
			}
			bat, err := NewSharded(WithShards(shards), WithVariant(c.variant), WithCore(c.core), WithObserver(batLog.add))
			if err != nil {
				t.Fatal(err)
			}
			refErrs := runPerOp(ref, script)
			batErrs := runBatched(bat, script, 64)
			sameErrs(t, "sharded", batErrs, refErrs)
			sameState(t, "sharded", bat, ref)
			refShards, batShards := refLog.perShard(shards), batLog.perShard(shards)
			for i := range refShards {
				if !slices.Equal(batShards[i], refShards[i]) {
					t.Fatalf("shard %d event streams differ: %d vs %d events",
						i, len(batShards[i]), len(refShards[i]))
				}
			}
			if err := bat.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// runSubmit pipelines the script through the async rings without
// waiting between batches — per-shard FIFO keeps every shard's
// subsequence in submission order regardless — then waits all tickets
// and spreads errors back to script positions.
func runSubmit(s *ShardedReallocator, script Batch, chunk int) []error {
	errs := make([]error, len(script))
	type pending struct {
		lo int
		tk *Ticket
	}
	var tks []pending
	for lo := 0; lo < len(script); lo += chunk {
		hi := lo + chunk
		if hi > len(script) {
			hi = len(script)
		}
		tks = append(tks, pending{lo, s.Submit(script[lo:hi])})
	}
	for _, p := range tks {
		if res := p.tk.Wait(); res != nil {
			copy(errs[p.lo:], res)
		}
	}
	return errs
}

// TestBatchApplyEquivalenceAsync pins the contract on the async
// pipeline: submitted batches complete with the sequential loop's
// errors, per-shard event order, and final state.
func TestBatchApplyEquivalenceAsync(t *testing.T) {
	const shards = 4
	script := batchScript(600)
	for _, c := range batchCases {
		t.Run(c.name, func(t *testing.T) {
			var refLog, asyncLog eventLog
			ref, err := NewSharded(WithShards(shards), WithVariant(c.variant), WithCore(c.core), WithObserver(refLog.add))
			if err != nil {
				t.Fatal(err)
			}
			as, err := NewSharded(WithShards(shards), WithVariant(c.variant), WithCore(c.core),
				WithObserver(asyncLog.add), WithAsync(32))
			if err != nil {
				t.Fatal(err)
			}
			refErrs := runPerOp(ref, script)
			asyncErrs := runSubmit(as, script, 17)
			if err := as.Close(); err != nil {
				t.Fatal(err)
			}
			sameErrs(t, "async", asyncErrs, refErrs)
			sameState(t, "async", as, ref)
			refShards, asShards := refLog.perShard(shards), asyncLog.perShard(shards)
			for i := range refShards {
				if !slices.Equal(asShards[i], refShards[i]) {
					t.Fatalf("shard %d event streams differ: %d vs %d events",
						i, len(asShards[i]), len(refShards[i]))
				}
			}
			if err := as.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBatchErrorSemantics pins the shape contract of the batched
// surface: nil on full success, positional errors otherwise, and the
// wrapper forms' edge cases.
func TestBatchErrorSemantics(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func(t *testing.T) applier
	}{
		{"plain", func(t *testing.T) applier {
			r, err := New()
			if err != nil {
				t.Fatal(err)
			}
			return r
		}},
		{"sharded", func(t *testing.T) applier {
			s, err := NewSharded(WithShards(3))
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := tc.build(t)
			if res := a.Apply(nil); res != nil {
				t.Fatalf("empty batch returned %v, want nil", res)
			}
			if res := a.Apply(Batch{InsertOp(1, 4), InsertOp(2, 4)}); res != nil {
				t.Fatalf("all-success batch returned %v, want nil", res)
			}
			res := a.Apply(Batch{
				InsertOp(3, 4),            // ok
				InsertOp(4, 0),            // bad size
				InsertOp(1, 4),            // duplicate
				DeleteOp(99),              // missing
				{Kind: 7, ID: 5, Size: 1}, // unknown kind
				DeleteOp(1),               // ok
			})
			if res == nil {
				t.Fatal("mixed batch returned nil")
			}
			if len(res) != 6 {
				t.Fatalf("mixed batch returned %d slots, want 6", len(res))
			}
			for i, wantErr := range []bool{false, true, true, true, true, false} {
				if (res[i] != nil) != wantErr {
					t.Fatalf("op %d error = %v, want error=%v", i, res[i], wantErr)
				}
			}
		})
	}
}

// TestBatchWrapperForms pins InsertBatch/DeleteBatch: they are exactly
// Apply over the synthesized batch, including the length-mismatch
// rejection that runs nothing.
func TestBatchWrapperForms(t *testing.T) {
	s, err := NewSharded(WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	if res := s.InsertBatch([]int64{1, 2, 3}, []int64{4, 4, 4}); res != nil {
		t.Fatalf("InsertBatch returned %v, want nil", res)
	}
	if res := s.InsertBatch([]int64{9}, []int64{1, 2}); len(res) != 1 || res[0] == nil {
		t.Fatalf("length mismatch returned %v, want one error", res)
	}
	if s.Has(9) {
		t.Fatal("mismatched InsertBatch ran an op")
	}
	if res := s.DeleteBatch([]int64{1, 2, 3}); res != nil {
		t.Fatalf("DeleteBatch returned %v, want nil", res)
	}
	if s.Len() != 0 {
		t.Fatalf("len = %d after DeleteBatch, want 0", s.Len())
	}
	res := s.DeleteBatch([]int64{1})
	if res == nil || res[0] == nil {
		t.Fatalf("DeleteBatch of missing id returned %v, want error", res)
	}
}

// TestBatchedDeleteOneRepublish is the white-box pin of the satellite
// fix: deleting a batch of displaced ids republishes the route table
// once per touched shard, not once per id (the per-op Delete path's
// cost).
func TestBatchedDeleteOneRepublish(t *testing.T) {
	s, err := NewSharded(WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	var onZero []int64
	for id := int64(1); len(onZero) < 24 || s.Len() < 96; id++ {
		if err := s.Insert(id, 2); err != nil {
			t.Fatal(err)
		}
		if s.ShardOf(id) == 0 {
			onZero = append(onZero, id)
		}
	}
	moved, err := s.MigrateShard(0, 1, 1<<30, 8)
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("migration moved nothing")
	}
	var displaced []int64
	for _, id := range onZero {
		if s.ShardOf(id) == 1 {
			displaced = append(displaced, id)
		}
	}
	if len(displaced) != moved {
		t.Fatalf("found %d displaced ids, want %d", len(displaced), moved)
	}
	pub0 := s.router.publishes.Load()
	if res := s.DeleteBatch(displaced); res != nil {
		t.Fatalf("DeleteBatch returned %v", res)
	}
	if d := s.router.publishes.Load() - pub0; d != 1 {
		t.Fatalf("batched delete of %d displaced ids republished %d times, want 1", len(displaced), d)
	}
	if n := s.RouteOverrides(); n != 0 {
		t.Fatalf("%d overrides survived the batched delete, want 0", n)
	}
}

// TestSubmitEdgeCases pins the async surface's boundary behavior:
// Submit without WithAsync, the empty batch, and Submit after Close.
func TestSubmitEdgeCases(t *testing.T) {
	plainSharded, err := NewSharded(WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	res := plainSharded.Submit(Batch{InsertOp(1, 4)}).Wait()
	if res == nil || !errors.Is(res[0], ErrAsyncDisabled) {
		t.Fatalf("Submit without WithAsync returned %v, want ErrAsyncDisabled", res)
	}

	s, err := NewSharded(WithShards(2), WithAsync(4))
	if err != nil {
		t.Fatal(err)
	}
	if res := s.Submit(nil).Wait(); res != nil {
		t.Fatalf("empty Submit returned %v, want nil", res)
	}
	if res := s.Submit(Batch{InsertOp(1, 4), InsertOp(2, 8)}).Wait(); res != nil {
		t.Fatalf("Submit returned %v, want nil", res)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if !s.Has(1) || !s.Has(2) {
		t.Fatal("Close dropped accepted async work")
	}
	res = s.Submit(Batch{InsertOp(3, 4)}).Wait()
	if res == nil || !errors.Is(res[0], ErrClosed) {
		t.Fatalf("Submit after Close returned %v, want ErrClosed", res)
	}
	// The synchronous surface stays usable after Close.
	if r2 := s.Apply(Batch{InsertOp(3, 4)}); r2 != nil {
		t.Fatalf("Apply after Close returned %v", r2)
	}
}

// TestBatchApplyAllocationFree pins the acceptance criterion that
// steady-state batched requests allocate nothing outside ring setup:
// a churn batch recycled through pooled scratch must be 0 allocs/op.
func TestBatchApplyAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	s, err := NewSharded(WithShards(4), WithEpsilon(1))
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int64, 256)
	for i := range ids {
		ids[i] = int64(i + 1)
		if err := s.Insert(ids[i], 4); err != nil {
			t.Fatal(err)
		}
	}
	batch := make(Batch, 0, 128)
	for i := 0; i < 64; i++ {
		batch = append(batch, DeleteOp(ids[i]), InsertOp(ids[i], 4))
	}
	for i := 0; i < 8; i++ { // warm the pools and the cores' free lists
		if res := s.Apply(batch); res != nil {
			t.Fatalf("warmup batch failed: %v", res)
		}
	}
	if a := testing.AllocsPerRun(100, func() {
		if res := s.Apply(batch); res != nil {
			t.Fatalf("batch failed: %v", res)
		}
	}); a != 0 {
		t.Fatalf("steady-state Apply allocates %.1f/op, want 0", a)
	}
}

// TestBatchStressConcurrent is the -race stress of the satellite
// contract: concurrent batch submitters (sync and async) against
// inline rebalancing, manual migrations, and a mid-flight Close.
func TestBatchStressConcurrent(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, err := NewSharded(WithShards(4), WithAsync(8), WithTelemetry(reg),
		WithRebalance(RebalancePolicy{Mode: RebalanceInline, CheckEvery: 32, Threshold: 1.2}))
	if err != nil {
		t.Fatal(err)
	}
	// One guaranteed round-trip before the race starts: the telemetry
	// assertions below must not depend on scheduler luck deciding whether
	// any worker's Submit beats the mid-flight Close (on a single-CPU
	// box the migrator loop can starve the workers long enough that none
	// does).
	if res := s.Submit(Batch{InsertOp(1, 2), DeleteOp(1)}).Wait(); res != nil {
		t.Fatalf("seed submit: %v", res)
	}
	const workers = 4
	var wg sync.WaitGroup
	stopMig := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w)+1, 99))
			base := int64(w+1) << 40
			var live []int64
			next := int64(1)
			for iter := 0; iter < 400; iter++ {
				var b Batch
				for k := 0; k < 16; k++ {
					if len(live) > 64 && rng.IntN(2) == 0 {
						j := rng.IntN(len(live))
						id := live[j]
						live[j] = live[len(live)-1]
						live = live[:len(live)-1]
						b = append(b, DeleteOp(id))
					} else {
						id := base | next
						next++
						b = append(b, InsertOp(id, int64(1+rng.IntN(8))))
						live = append(live, id)
					}
				}
				var res []error
				if iter%2 == 0 {
					res = s.Apply(b)
				} else {
					res = s.Submit(b).Wait()
				}
				for _, e := range res {
					if e == nil {
						continue
					}
					if errors.Is(e, ErrClosed) {
						return // Close won the race; done submitting
					}
					t.Errorf("worker %d: %v", w, e)
					return
				}
			}
		}(w)
	}
	var migWG sync.WaitGroup
	migWG.Add(1)
	go func() {
		defer migWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stopMig:
				return
			default:
			}
			from, to := i%4, (i+1)%4
			if _, err := s.MigrateShard(from, to, 64, 8); err != nil {
				t.Errorf("migrate: %v", err)
				return
			}
			// Yield so a hot migration loop cannot monopolize a
			// single-CPU scheduler and starve the submitters.
			runtime.Gosched()
		}
	}()
	time.Sleep(5 * time.Millisecond)
	if err := s.Close(); err != nil { // mid-flight: some submitters still active
		t.Errorf("close: %v", err)
	}
	wg.Wait()
	close(stopMig)
	migWG.Wait()
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The pipeline recorded into the new series.
	var snap telemetry.Snapshot
	reg.ReadSnapshot(&snap)
	if snap.BatchSize.Count == 0 {
		t.Error("no batch groups recorded")
	}
	if snap.SubmitLatency.Count == 0 {
		t.Error("no async submit latencies recorded")
	}
}
