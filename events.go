package realloc

import (
	"time"

	"realloc/internal/telemetry"
	"realloc/internal/trace"
)

// EventKind enumerates observer event types.
type EventKind uint8

// Observer event kinds.
const (
	// EventInsert fires when an object receives its initial placement.
	EventInsert EventKind = iota
	// EventDelete fires when a delete request completes.
	EventDelete
	// EventMove fires when a live object is reallocated; update any
	// logical-to-physical map on this event.
	EventMove
	// EventCheckpoint fires when the reallocator blocks on (and receives)
	// a checkpoint; a database persists its translation map here.
	EventCheckpoint
	// EventFlushStart and EventFlushEnd bracket buffer flushes.
	EventFlushStart
	EventFlushEnd
	// EventMigrate fires when the rebalancer moves an object between
	// shards: FromShard/From are the old shard and address, Shard/To the
	// new ones. The sharded layer also emits the underlying EventDelete
	// on the source shard and EventInsert on the target shard (in that
	// order, before the EventMigrate), so a translation layer keyed on
	// (shard, address) that replays inserts/deletes/moves alone already
	// stays exact; EventMigrate adds the cross-shard linkage for
	// observers that track object identity.
	EventMigrate
	// EventFlushSpan fires right after EventFlushEnd when the telemetry
	// layer is armed (WithTelemetry — the timings do not exist
	// otherwise), replaying the completed flush as a timing span: ID is
	// the chunk count, Size the moved volume, From the stall
	// nanoseconds, To the active-execution nanoseconds.
	EventFlushSpan
)

func (k EventKind) String() string {
	switch k {
	case EventInsert:
		return "insert"
	case EventDelete:
		return "delete"
	case EventMove:
		return "move"
	case EventCheckpoint:
		return "checkpoint"
	case EventFlushStart:
		return "flush-start"
	case EventFlushEnd:
		return "flush-end"
	case EventMigrate:
		return "migrate"
	case EventFlushSpan:
		return "flush-span"
	default:
		return "unknown"
	}
}

// Event is one observer notification.
type Event struct {
	Kind EventKind
	// ID and Size identify the object for insert/delete/move events.
	ID   int64
	Size int64
	// From and To are the old and new start addresses of a move; To is
	// also the placement address of an insert.
	From, To int64
	// Footprint and Volume snapshot the structure after the event. For a
	// sharded reallocator they are per-shard quantities.
	Footprint int64
	Volume    int64
	// Shard is the index of the shard that emitted the event; always 0
	// for a plain Reallocator. Addresses (From, To) are relative to that
	// shard's private address space.
	Shard int
	// FromShard is the source shard of an EventMigrate (whose From
	// address is relative to it); 0 for every other kind — use Shard
	// for the emitting shard.
	FromShard int
}

// observerAdapter converts internal trace events to the public type,
// tagging each with the emitting shard.
type observerAdapter struct {
	fn    func(Event)
	shard int
}

func (o observerAdapter) Record(e trace.Event) {
	var k EventKind
	switch e.Kind {
	case trace.KInsert:
		k = EventInsert
	case trace.KDelete:
		k = EventDelete
	case trace.KMove:
		k = EventMove
	case trace.KCheckpoint:
		k = EventCheckpoint
	case trace.KFlushStart:
		k = EventFlushStart
	case trace.KFlushEnd:
		k = EventFlushEnd
	case trace.KFlushSpan:
		k = EventFlushSpan
	default:
		return // internal bookkeeping events are not exposed
	}
	// FromShard stays zero here: it is documented as migrate-only, and
	// the rebalancer fills it when it emits EventMigrate directly.
	o.fn(Event{
		Kind: k, ID: e.ID, Size: e.Size, From: e.From, To: e.To,
		Footprint: e.Footprint, Volume: e.Volume, Shard: o.shard,
	})
}

// Stats summarizes a metrics-enabled run (see WithMetrics).
type Stats struct {
	Inserts, Deletes int64
	Moves            int64
	MovedVolume      int64
	// MaxFootprintRatio is the largest footprint/volume observed at
	// request boundaries with no flush in progress — the paper's
	// (1+ε)-competitive quantity.
	MaxFootprintRatio float64
	// CostRatios maps cost-function name to reallocCost/allocCost — the
	// paper's cost competitiveness, measured for every subadditive cost
	// function simultaneously.
	CostRatios map[string]float64
	// MaxOpCost maps cost-function name to the worst single-request
	// reallocation cost (the deamortized variant bounds it).
	MaxOpCost map[string]float64
	// Flushes and checkpoint accounting.
	Flushes             int64
	Checkpoints         int64
	MaxCheckpointsFlush int64
	MaxOpMovedVolume    int64
	// Migrations and MigratedVolume count the objects (and cells) the
	// rebalancer moved across shards; always 0 for a plain Reallocator.
	Migrations     int64
	MigratedVolume int64
	// MaxShardVolume, MinShardVolume and VolumeSpread (max/mean, the
	// rebalancer's trigger quantity) describe the per-shard live-volume
	// spread at the moment of the Stats call; zero for a plain
	// Reallocator.
	MaxShardVolume int64
	MinShardVolume int64
	VolumeSpread   float64
	// LatencyP99 and FlushP99 are telemetry summaries: the 99th
	// percentile of op latency (inserts and deletes combined) and of
	// per-flush active execution time. Both are zero unless the
	// reallocator was built WithTelemetry — Stats stays nil-safe when
	// the telemetry layer is off.
	LatencyP99 time.Duration
	FlushP99   time.Duration
}

// Stats returns the accumulated metrics; it returns ok=false unless the
// reallocator was built WithMetrics.
func (r *Reallocator) Stats() (Stats, bool) {
	if r.metrics == nil {
		return Stats{}, false
	}
	defer r.lock()()
	s := statsFromMetrics(r.metrics)
	if r.telReg != nil {
		var snap telemetry.Snapshot
		r.telReg.ReadSnapshot(&snap)
		s.LatencyP99, s.FlushP99 = latencyP99s(&snap)
	}
	return s, true
}

// latencyP99s extracts the Stats telemetry summaries from a registry
// snapshot: op latency merges the insert and delete histograms (the
// caller cares about request tails, not which verb they came from).
func latencyP99s(snap *telemetry.Snapshot) (op, flush time.Duration) {
	merged := snap.InsertLatency
	merged.Merge(&snap.DeleteLatency)
	return time.Duration(merged.Quantile(0.99)), time.Duration(snap.FlushDuration.Quantile(0.99))
}

// statsFromMetrics converts one recorder's accumulated metrics to the
// public Stats form; callers hold whatever lock guards m.
func statsFromMetrics(m *trace.Metrics) Stats {
	s := Stats{
		Inserts:             m.Inserts,
		Deletes:             m.Deletes,
		Moves:               m.MovesTotal,
		MovedVolume:         m.MovedVolume,
		MaxFootprintRatio:   m.MaxRatioQuiescent,
		CostRatios:          map[string]float64{},
		MaxOpCost:           map[string]float64{},
		Flushes:             m.Flushes,
		Checkpoints:         m.CheckpointsTotal,
		MaxCheckpointsFlush: m.MaxCheckpointsFlush,
		MaxOpMovedVolume:    m.MaxOpMovedVolume,
	}
	for _, l := range m.Meter.Lines() {
		s.CostRatios[l.Func] = l.Ratio
		s.MaxOpCost[l.Func] = l.MaxOpCost
	}
	return s
}
