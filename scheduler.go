package realloc

import "realloc/internal/sched"

// Scheduler maintains a dynamic uniprocessor schedule — the paper's
// 1|f(w) realloc|Cmax interpretation. Jobs own time intervals; the
// makespan stays within (1+ε) of the total work while the rescheduling
// cost stays within O((1/ε)log(1/ε)) of scheduling each job once, for
// every subadditive cost function.
type Scheduler struct {
	inner *sched.Planner
}

// NewScheduler creates a planner with makespan slack eps.
func NewScheduler(eps float64) (*Scheduler, error) {
	p, err := sched.New(eps, nil)
	if err != nil {
		return nil, err
	}
	return &Scheduler{inner: p}, nil
}

// AddJob schedules a job of the given length.
func (s *Scheduler) AddJob(id int64, length int64) error {
	return s.inner.AddJob(sched.JobID(id), length)
}

// RemoveJob unschedules a job.
func (s *Scheduler) RemoveJob(id int64) error { return s.inner.RemoveJob(sched.JobID(id)) }

// Interval returns the job's scheduled [start, end) time window.
func (s *Scheduler) Interval(id int64) (start, end int64, ok bool) {
	return s.inner.Interval(sched.JobID(id))
}

// Makespan returns the latest completion time of any job.
func (s *Scheduler) Makespan() int64 { return s.inner.Makespan() }

// TotalWork returns the sum of live job lengths.
func (s *Scheduler) TotalWork() int64 { return s.inner.TotalWork() }

// Jobs returns the number of scheduled jobs.
func (s *Scheduler) Jobs() int { return s.inner.Jobs() }

// Gantt renders the schedule as an ASCII chart.
func (s *Scheduler) Gantt(width int) string { return s.inner.Gantt(width) }
