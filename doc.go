// Package realloc is a cost-oblivious storage reallocator: an online
// allocator that may move previously allocated blocks to keep the storage
// footprint within (1+ε) of the live volume, while guaranteeing that the
// total cost of those moves stays within O((1/ε)·log(1/ε)) of the cost of
// allocating each block once — simultaneously for every monotonically
// increasing, subadditive cost function f(w) (unit, linear, seek+bandwidth,
// sqrt, ...). The algorithm never evaluates f: it is cost oblivious.
//
// It implements Bender, Farach-Colton, Fekete, Fineman, Gilbert:
// "Cost-Oblivious Storage Reallocation", PODS 2014.
//
// # Quick start
//
//	r, _ := realloc.New(realloc.WithEpsilon(0.25))
//	r.Insert(1, 4096)            // allocate block 1, 4096 cells
//	r.Insert(2, 512)
//	ext, _ := r.Extent(2)        // current physical placement
//	r.Delete(1)                  // free; holes are reclaimed by moves
//	fmt.Println(r.Footprint())   // largest allocated address <= (1+ε)·V
//
// # Variants
//
// Three variants trade generality for stronger operational guarantees:
//
//   - Amortized (default): the Section 2 algorithm; moves may overlap
//     their own source (RAM semantics) and a single request may trigger a
//     large flush.
//   - Checkpointed: the database model of Section 3. Every move's target
//     is disjoint from its source and from all live data, space freed
//     since the last checkpoint is never rewritten, and each flush blocks
//     on only O(1/ε) checkpoints.
//   - Deamortized: additionally caps the work any single request performs
//     at O((1/ε)·w·f(1) + f(∆)).
//
// # Choosing a core
//
// The reallocation algorithm itself is pluggable: the facade drives an
// engine boundary (internal/engine) with two cores behind it, selected
// per structure with WithCore on either constructor, or globally with
// the REALLOC_CORE environment variable ("pods14", "fcs", "auto") when
// no explicit WithCore is given. Core reports the selection; unknown
// names fail construction.
//
//   - CorePODS14 (default) is the reference implementation described
//     above: every variant, footprint ≤ (1+ε)·V after every request,
//     and reallocation cost O((1/ε)·log(1/ε))-competitive for every
//     subadditive cost function.
//   - CoreFCS is a successor algorithm in the style of Farach-Colton
//     and Sheffield: objects are rounded up into geometric slot classes
//     (factor g = 1+ε/4), each class's occupied slots form a packed
//     prefix, a delete backfills its hole by swapping in the class's
//     last occupant (one move of ≤ g·w volume), and a full repack runs
//     only when the allocation frontier exceeds (1+ε)·V. The amortized
//     moved volume is O(w/ε) per request — no log(1/ε) factor — but
//     the bound is per-volume rather than cost-oblivious, and the core
//     runs Amortized only: selecting Checkpointed or Deamortized with
//     it fails construction.
//   - CoreAutoSelect starts every structure on the reference core,
//     observes the size distribution of the first ~2k inserts, and
//     commits: a compact distribution (maximum within ~64× the median,
//     where fixed-width slots waste little) migrates all live objects
//     to CoreFCS in one flush-bracketed adoption pass; a heavy-tailed
//     one stays on CorePODS14. All shards of a sharded reallocator
//     share one decision, so the structure remains homogeneous.
//
// Whatever the core, the externally observable allocation semantics are
// identical — the live id set, sizes, extents, and aggregate state; an
// N-way differential oracle and a cross-core fuzz target
// (internal/engine) pin this, and experiment E16 sweeps every core's
// cost against ε on uniform, zipf, and adversarial workloads.
//
// # Backends
//
// By default the cells of the address space are metered, not
// materialized: every move is counted at exactly the cost a real
// backend would pay (one cell = one byte), but no bytes exist and no
// copies run. WithBackend swaps in a real payload backend, below the
// placement policy, on either facade:
//
//   - Metered (default): moved volume is counted, nothing is copied.
//   - HeapArena: payload lives in a growable Go byte slice; every
//     scheduled relocation physically memmoves the object's extent.
//   - MmapArena: payload lives in an anonymous private memory mapping
//     (heap fallback on platforms without mmap).
//
// With a real backend, the payload written before any number of
// relocations reads back intact after all of them:
//
//	r, _ := realloc.New(realloc.WithBackend(realloc.HeapArena))
//	r.Insert(1, 10)
//	r.Write(1, []byte("hello, 10b"))
//	buf, _ := r.Bytes(1)   // intact across any number of relocations
//
// The backend never changes a placement decision: on identical input,
// Metered and HeapArena produce identical event streams and extents (a
// differential test pins this), and their BytesMoved counters agree
// exactly with the trace's moved volume — the paper's cost unit — which
// is what makes the metered counters the real cost rather than an
// estimate. Experiment E17 validates the three-way match and prices the
// unit in wall-clock bytes/ns.
//
// With a real backend armed, Write, Read, and Bytes access an object's
// payload; Backend reports the selection and BytesMoved the bytes
// physically moved so far. On the sharded facade each shard owns a
// private arena: Write takes the owning shard's write lock, Read its
// read lock (reads of one shard proceed together), and Bytes returns a
// copy — a concurrent insert may relocate the object the moment the
// shard lock drops. Cross-shard migrations carry payload with the
// object; BytesMoved counts relocations within an address space, and a
// migration is a delete plus an insert, not a relocation. BlockStore
// (BlockStoreBackend) builds checksummed crash-consistent durability on
// the same surface: Put records a crc64 checksum and Recover re-verifies
// every durable block's bytes at its checkpointed extent.
//
// BlockStoreDir takes that contract to real media: the store keeps a
// file-backed (mmap where available) payload arena synced at every
// checkpoint plus a crc64-framed write-ahead log of every placement,
// and OpenBlockStore recovers a directory by replaying the log to the
// last durable checkpoint — truncating any torn tail — and verifying
// each surviving block's checksum against the arena image:
//
//	s, _ := realloc.NewBlockStore(realloc.BlockStoreDir(dir))
//	s.Put("root", pageBytes)
//	s.Checkpoint()                      // arena sync + WAL record + group-fsync
//	s.Close()
//
//	s, rep, _ := realloc.OpenBlockStore(realloc.BlockStoreDir(dir))
//	data, _ := s.Get("root")            // verified against the arena image
//	_ = rep.Recovered                   // blocks reloaded from the checkpoint
//
// The checkpoint rule is exactly what makes this sound: space freed
// since the last checkpoint is never rewritten before the next one
// completes, so the extents a durable checkpoint references stay
// byte-identical in the arena image until a newer checkpoint is itself
// durable. A crashmonkey-style harness (internal/btl) kills the store
// at every enumerated media write and fsync — plus randomized
// multi-fault schedules: torn writes, dropped fsyncs, transient EIO —
// and proves recovery lands on a durable checkpoint every time.
//
// # Concurrency and sharding
//
// A Reallocator is not safe for concurrent use unless built WithLocking,
// which serializes every method behind one mutex — honest, but a
// bottleneck under parallel load. NewSharded scales past it by hash
// partitioning object ids across N independent reallocators, each with
// its own mutex and its own private address space:
//
//	s, _ := realloc.NewSharded(realloc.WithShards(8), realloc.WithEpsilon(0.25))
//	s.Insert(1, 4096)            // locks only shard ShardOf(1)
//	ext, _ := s.Extent(1)        // address within that shard's space
//
// The paper's guarantees are per-allocator, so they partition cleanly:
// shard i keeps its footprint within (1+ε)·V_i of its own live volume,
// hence the summed footprint stays within (1+ε) of the total live volume
// (per-shard additive terms now occur once per shard), and each shard's
// reallocation cost remains O((1/ε)·log(1/ε))-competitive for every
// subadditive cost function — a bound closed under summation. The trade
// is that there is no single contiguous address space: a placement is
// identified by (shard, address), and observer Events carry their Shard
// index so a translation layer can key physical locations accordingly.
//
// # Parallel scaling
//
// The sharded front-end is built so an uncontended operation touches no
// shared mutable cache line except its own shard's:
//
//   - Routing is lock-free. The id→shard table is an immutable
//     copy-on-write structure published through an atomic pointer;
//     resolving a route is one pointer load (plus a map lookup only
//     while rebalancer-migrated ids exist), and the owning-shard
//     re-check after locking compares table pointers instead of taking
//     a router lock. Migrations publish route changes only while
//     holding both affected shard locks, so every operation still sees
//     exactly one owner per id.
//   - Per-object reads do not serialize. Extent and Has take only the
//     owning shard's read lock: concurrent readers of one shard
//     proceed together, and readers of different shards share nothing.
//     Insert and Delete take the owning shard's write lock.
//   - Aggregate reads take no shard locks. Each shard maintains a
//     cache-line-padded block of lock-free mirrors (volume, footprint,
//     len, flushes, ∆, flush activity), updated under its lock after
//     every mutation and read via atomics; a per-shard seqlock keeps
//     Snapshot's (len, volume, footprint) triples internally
//     consistent. Len, Volume, Footprint, Flushes, Delta, FlushActive,
//     ShardVolume(s), ShardFootprint, and Snapshot read only these
//     mirrors. The semantics are unchanged from the locked
//     implementation: each per-shard term is a consistent
//     post-operation value, but shards are visited one at a time, so
//     under concurrent mutation the result is a per-shard-consistent,
//     not globally atomic, snapshot.
//
// Monitoring loops should prefer the allocation-free forms
// AppendShardVolumes, ReadSnapshot, and ReadStats over their allocating
// counterparts. BenchmarkShardedParallel (run with -cpu 1,2,4,8) and
// experiment E15 measure the cores→throughput curves; CI enforces the
// mixed-workload scaling gate via cmd/benchgate -scaling and persists
// the curve in a BENCH_ci_scaling.json trajectory record per run.
//
// A WithObserver callback on a sharded reallocator runs while the
// emitting shard's write lock is held (both shard locks for migration
// events): it must not call back into anything that takes a shard lock
// — the per-object methods (Insert, Delete, Extent, Has) and the
// metrics readers (Stats, ReadStats, ShardStats, which read each
// shard's recorder under its read lock) can all deadlock on the
// emitting shard. The mirror-only aggregate reads above (Volume,
// Footprint, Len, Flushes, Delta, FlushActive, ShardVolume(s),
// ShardFootprint, AppendShardVolumes, Snapshot/ReadSnapshot, ShardOf)
// take no locks and are safe to call from the callback; they observe
// the state as of the last completed operation.
//
// # Batching and async submission
//
// Every per-op call repeats the same front-end work: route the id,
// take the shard lock, republish the read mirrors, stamp telemetry.
// The batched surface — Apply on both facades, with InsertBatch and
// DeleteBatch as wrappers — pays that once per group:
//
//	errs := s.Apply(realloc.Batch{
//	    realloc.InsertOp(1, 4096),
//	    realloc.DeleteOp(9),
//	})
//
// A batch is a sequence, not a transaction: ops run in submission
// order, op i's failure never prevents op j from running, and the
// returned slice is nil on full success or has one slot per op at its
// submission index. Final state, per-op errors, and observer event
// order are exactly those of the equivalent loop of Insert and Delete
// calls (the steady-state batched path allocates nothing). The sharded
// Apply routes the whole batch against one route-table snapshot,
// groups ops by owning shard, locks each touched shard exactly once in
// ascending order (re-validating ownership under the lock, falling
// back to the per-op path for ops a concurrent migration rerouted),
// and merges errors back in submission order; same-id ops route
// identically, so their relative order is preserved. Batched deletes
// of rebalancer-migrated ids clear their route-table overrides in one
// copy-on-write republish per shard group. The amortization is priced
// by BenchmarkBatchChurn and gated in CI (cmd/benchgate -batch,
// BENCH_ci_batch.json): 64-op batches must run front-end-bound churn
// at ≥2x the per-op lane's throughput.
//
// WithAsync(depth) arms a submission pipeline on the sharded facade.
// Submit(batch) validates and routes each op, pushes it into the
// owning shard's bounded ring (one consumer goroutine per shard drains
// rings into the batched path), and returns a Ticket immediately —
// producers never block on flush execution. A full ring blocks Submit
// until the consumer catches up: backpressure, not load shedding.
// Ticket.Wait returns the batch's per-op errors with Apply's
// semantics; Ticket.Done exposes a channel for select-based waiters.
// Ops submitted by one goroutine execute on each shard in submission
// order; ordering across goroutines is whatever the ring interleaving
// makes it, like any concurrent per-op callers. Close drains every
// accepted op before stopping the consumers; later submissions settle
// with ErrClosed, and a Submit racing Close completes or fails as a
// whole — never torn. With telemetry armed, group sizes land in the
// BatchSize histogram, async ops record submit-to-complete
// SubmitLatency, and sync batched ops stamp their insert/delete
// latencies from batch-submission time.
//
// # Rebalancing
//
// Hash partitioning is static, so a skewed id population can pile most
// of the live volume onto one shard. WithRebalance replaces the fixed
// mapping with a routed id→shard table and arms a rebalancer that
// watches per-shard live volume and, once max/mean exceeds the policy
// threshold, migrates bounded batches of objects from overloaded to
// underloaded shards, rerouting their ids:
//
//	s, _ := realloc.NewSharded(realloc.WithShards(8),
//	    realloc.WithRebalance(realloc.RebalancePolicy{Mode: realloc.RebalanceInline}))
//	defer s.Close()
//
// Why the bounds survive migration: every guarantee in the paper is
// stated for a single allocator against an arbitrary request stream.
// A migration is exactly one 〈DeleteObject〉 on the source shard and one
// 〈InsertObject〉 on the target shard, so each side is still just serving
// its own stream — the source's next flush reclaims the vacated space,
// keeping footprint_i ≤ (1+ε)·V_i, and the target's insert is a normal
// allocation covered by its own cost bound. Summing over shards, the
// global footprint stays within (1+ε) of the total live volume (plus
// the per-shard additive terms) and the reallocation cost stays
// O((1/ε)·log(1/ε))-competitive for every subadditive f, before, during,
// and after any sequence of migrations. What changes is only *which*
// shard pays, which is the point: volume moves off the overloaded lock.
// Observers see each migration as an EventDelete on the source, an
// EventInsert on the target, then an EventMigrate carrying both shard
// indices.
//
// # Observability
//
// WithTelemetry arms a runtime telemetry layer on either facade,
// recording into a caller-owned registry (internal/telemetry):
//
//	reg := telemetry.NewRegistry()
//	s, _ := realloc.NewSharded(realloc.WithShards(8), realloc.WithTelemetry(reg))
//	http.ListenAndServe(":6060", telemetry.NewServeMux(reg))
//
// The registry holds one metric set per shard: log-bucketed histograms
// (two buckets per octave, so any quantile is exact to within ~25%
// relative error) of insert/delete latency, per-flush active duration
// and moved volume, per-chunk size, per-stalled-op flush stall, and
// cross-shard migration latency, plus a checkpoint counter. Recording
// is lock-free and allocation-free — one atomic add into the owning
// shard's bucket plus a sum update — and snapshot reads take no locks
// and 0 allocs/op via ReadSnapshot/ReadShardSnapshot, so a monitoring
// loop never perturbs the structure it watches. Measured whole-facade
// churn overhead with telemetry armed is ~3–4% (BenchmarkChurnTelemetry;
// CI gates it at 10% via cmd/benchgate -overhead).
//
// The registry is served three ways: telemetry.Handler renders
// Prometheus text (per-shard histograms, labeled shard="i"),
// telemetry.Var plugs into expvar, and telemetry.NewServeMux bundles
// /metrics, /debug/vars, and /debug/pprof into one stdlib mux.
// telemetry.SnapshotWriter appends timestamped JSONL snapshots carrying
// the benchfmt manifest for offline trajectories.
//
// With telemetry armed, Stats additionally reports LatencyP99 and
// FlushP99 (zero, not an error, when telemetry is off), and observers
// receive an EventFlushSpan after each EventFlushEnd replaying the
// completed flush as a timing span: chunk count, moved volume, stall
// and active nanoseconds. cmd/reallocbench -telemetry embeds percentile
// summaries in BENCH_<id>.json and serves the live registry with -http;
// cmd/reallocviz telemetry renders the histograms and span stream as
// ASCII after a churn run.
//
// # Performance
//
// Atomic flushes — the hot path that relocates nearly every object of a
// suffix of the structure — execute as one batched move plan: the
// schedule is validated once, applied through dense per-object scratch,
// and the address-ordered index (a two-level blocked structure) rebuilds
// only its touched suffix in a single merge pass, O(n + m log m)
// bookkeeping for a flush of m objects instead of the O(m·n) a per-move
// sorted-index update pays. A deamortized flush spreads one schedule
// across many requests as quota-bounded chunks; it runs through a
// resumable executor session that validates the plan once and reconciles
// the index incrementally per chunk — a chunk of k moves pays
// O(k + B + log n) index work with no observer attached, and
// O(k·(log n + B)) when per-move footprints must be reported to one —
// in either case independent of how large the structure is. The
// freed-since-checkpoint interval set is blocked the same way, bounding
// the per-free cost under delete-heavy Durable churn. Steady-state
// requests and flushes are allocation-free: object records, regions, move
// plans, and executor scratch are pooled.
//
// Per-operation cost for n live objects and a flush suffix of m objects
// (B is the constant index block size): a buffered insert or delete is
// O(log n + B); a flush is O(n + m log m) bookkeeping amortized over the
// Θ(ε·V) volume of requests that filled the buffers; a deamortized
// request advances an active flush by a volume-bounded chunk at
// O(k + B + log n) for its k moves (O(k·(log n + B)) with an observer). On one core at 10^6 live cells the
// executors serve steady churn 3–5x faster than the per-move path for
// every variant — the deamortized variant is within 1.5x of the amortized
// one (see BenchmarkChurnScaling and the README table) — with 0 allocs/op
// across the sweep. CI gates the 1e5→1e6 per-op ratio via cmd/benchgate
// and persists a BENCH_ci_churn.json trajectory record per run.
//
// Observable behavior is unchanged: observers receive the identical
// per-move event sequence — footprints, checkpoints, counters — that
// per-move execution produces. WithSerialFlush forces that reference
// path, and differential tests drive both and assert equality of event
// streams, layouts, footprint series, and stats.
//
// The package also exposes the paper's corollaries: a crash-consistent
// database block store built on a translation layer (BlockStore), a
// defragmenter that sorts objects in (1+ε)V+∆ space (SortVolume), and a
// dynamic uniprocessor schedule planner (Scheduler).
package realloc
