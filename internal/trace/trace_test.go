package trace

import (
	"testing"

	"realloc/internal/cost"
)

func TestKindStrings(t *testing.T) {
	kinds := []Kind{KInsert, KDelete, KMove, KCheckpoint, KFlushStart, KFlushEnd, KOpEnd, Kind(99)}
	want := []string{"insert", "delete", "move", "checkpoint", "flush-start", "flush-end", "op-end", "unknown"}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Errorf("kind %d = %q, want %q", i, k.String(), want[i])
		}
	}
}

func TestLogRecorder(t *testing.T) {
	l := &Log{}
	l.Record(Event{Kind: KInsert, ID: 1, Size: 5})
	l.Record(Event{Kind: KMove, ID: 1, Size: 5, From: 0, To: 10})
	l.Record(Event{Kind: KMove, ID: 1, Size: 5, From: 10, To: 20})
	l.Record(Event{Kind: KMove, ID: 2, Size: 3, From: 5, To: 30})
	l.Record(Event{Kind: KDelete, ID: 2, Size: 3})
	if l.Count(KMove) != 3 || l.Count(KInsert) != 1 {
		t.Fatalf("counts: moves=%d inserts=%d", l.Count(KMove), l.Count(KInsert))
	}
	m := l.MovesByID()
	if m[1] != 2 || m[2] != 1 {
		t.Fatalf("MovesByID = %v", m)
	}
}

func TestMultiRecorder(t *testing.T) {
	a, b := &Log{}, &Log{}
	multi := Multi{a, b}
	multi.Record(Event{Kind: KInsert, ID: 7})
	if len(a.Events) != 1 || len(b.Events) != 1 {
		t.Fatal("multi did not fan out")
	}
	Null{}.Record(Event{Kind: KInsert}) // must not panic
}

func TestMetricsAggregation(t *testing.T) {
	m := NewMetrics(cost.Unit(), cost.Linear())
	// Op 1: insert size 10 at footprint 10, volume 10.
	m.Record(Event{Kind: KInsert, ID: 1, Size: 10, Footprint: 10, Volume: 10})
	m.Record(Event{Kind: KOpEnd, Footprint: 10, Volume: 10, From: 10})
	// Op 2: insert that triggers a flush with two moves and a checkpoint.
	m.Record(Event{Kind: KFlushStart, From: 0, Volume: 14})
	m.Record(Event{Kind: KMove, ID: 1, Size: 10, From: 0, To: 20, Footprint: 30, Volume: 14})
	m.Record(Event{Kind: KCheckpoint})
	m.Record(Event{Kind: KMove, ID: 1, Size: 10, From: 20, To: 4, Footprint: 14, Volume: 14})
	m.Record(Event{Kind: KFlushEnd, Size: 20})
	m.Record(Event{Kind: KInsert, ID: 2, Size: 4, Footprint: 14, Volume: 14})
	m.Record(Event{Kind: KOpEnd, Footprint: 14, Volume: 14, From: 14})
	// Op 3: delete.
	m.Record(Event{Kind: KDelete, ID: 1, Size: 10, Footprint: 14, Volume: 4})
	m.Record(Event{Kind: KOpEnd, Footprint: 14, Volume: 4, From: 14})

	if m.Inserts != 2 || m.Deletes != 1 || m.MovesTotal != 2 {
		t.Fatalf("counts: %d %d %d", m.Inserts, m.Deletes, m.MovesTotal)
	}
	if m.MovedVolume != 20 {
		t.Fatalf("moved volume = %d", m.MovedVolume)
	}
	if m.Flushes != 1 || m.CheckpointsTotal != 1 || m.MaxCheckpointsFlush != 1 {
		t.Fatalf("flush stats: %d %d %d", m.Flushes, m.CheckpointsTotal, m.MaxCheckpointsFlush)
	}
	if m.MaxFlushMovedVolume != 20 {
		t.Fatalf("max flush volume = %d", m.MaxFlushMovedVolume)
	}
	if m.MaxOpMovedVolume != 20 || m.MaxOpMoves != 2 {
		t.Fatalf("op stats: %d %d", m.MaxOpMovedVolume, m.MaxOpMoves)
	}
	// Transient ratio peaked at 30/14 during the flush.
	if want := 30.0 / 14; m.MaxRatioTransient < want-1e-9 {
		t.Fatalf("transient ratio = %v, want >= %v", m.MaxRatioTransient, want)
	}
	// Steady ratio: max(10/10, 14/14, 14/4) = 3.5.
	if m.MaxRatioSteady != 3.5 || m.MaxRatioQuiescent != 3.5 {
		t.Fatalf("steady=%v quiescent=%v", m.MaxRatioSteady, m.MaxRatioQuiescent)
	}
	if m.FinalFootprint != 14 || m.FinalVolume != 4 {
		t.Fatalf("final: %d %d", m.FinalFootprint, m.FinalVolume)
	}
	if m.OpsTotal != 3 {
		t.Fatalf("ops = %d", m.OpsTotal)
	}
	// Unit meter: 2 allocs, 2 moves -> ratio 1.
	if got := m.Meter.Ratio("unit"); got != 1 {
		t.Fatalf("unit ratio = %v", got)
	}
}

func TestMetricsQuiescentVsMidFlush(t *testing.T) {
	m := NewMetrics(cost.Unit())
	// Mid-flush op end: From == 0 marks it; quiescent ratio must ignore it.
	m.Record(Event{Kind: KOpEnd, Footprint: 100, Volume: 10, From: 0})
	if m.MaxRatioQuiescent != 0 {
		t.Fatalf("quiescent ratio should ignore mid-flush ops, got %v", m.MaxRatioQuiescent)
	}
	if m.MaxRatioSteady != 10 {
		t.Fatalf("steady ratio = %v", m.MaxRatioSteady)
	}
}

func TestMetricsAdditiveSlack(t *testing.T) {
	m := NewMetrics(cost.Unit())
	m.RatioBase = 1.5
	m.Record(Event{Kind: KMove, ID: 1, Size: 5, Footprint: 130, Volume: 80})
	// slack = 130 - 1.5*80 = 10.
	if m.MaxAdditiveSlack != 10 {
		t.Fatalf("slack = %d", m.MaxAdditiveSlack)
	}
}

func TestMetricsSeries(t *testing.T) {
	m := NewMetrics(cost.Unit())
	m.SampleEvery = 2
	for i := 1; i <= 10; i++ {
		m.Record(Event{Kind: KOpEnd, Footprint: int64(i * 2), Volume: int64(i), From: int64(i * 2)})
	}
	if len(m.Series) != 5 {
		t.Fatalf("series length = %d", len(m.Series))
	}
	if m.Series[0].Op != 2 || m.Series[4].Op != 10 {
		t.Fatalf("series ops: %+v", m.Series)
	}
}

func TestMetricsPerOpCheckpoints(t *testing.T) {
	m := NewMetrics(cost.Unit())
	m.Record(Event{Kind: KCheckpoint})
	m.Record(Event{Kind: KCheckpoint})
	m.Record(Event{Kind: KOpEnd, Footprint: 1, Volume: 1, From: 1})
	m.Record(Event{Kind: KCheckpoint})
	m.Record(Event{Kind: KOpEnd, Footprint: 1, Volume: 1, From: 1})
	if m.MaxCheckpointsPerOp != 2 {
		t.Fatalf("max per-op checkpoints = %d", m.MaxCheckpointsPerOp)
	}
	if m.CheckpointsTotal != 3 {
		t.Fatalf("total = %d", m.CheckpointsTotal)
	}
}
