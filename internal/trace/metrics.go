package trace

import "realloc/internal/cost"

// Metrics aggregates the event stream into the quantities the paper's
// theorems bound: footprint competitive ratio (steady-state and transient),
// reallocation-cost competitive ratio per cost function, worst-case per-op
// reallocation, and checkpoints per flush.
type Metrics struct {
	Meter *cost.Meter

	Inserts int64
	Deletes int64
	// MovesTotal and MovedVolume cover reallocations only (not initial
	// placements).
	MovesTotal  int64
	MovedVolume int64

	// MaxRatioSteady is max over completed ops of footprint/volume.
	// MaxRatioQuiescent restricts that to ops completing with no flush in
	// progress (the case Lemma 3.5 bounds by (1+O(ε'))·V with no additive
	// term). MaxRatioTransient also samples after every individual move,
	// catching mid-flush peaks (Lemma 3.1 territory).
	MaxRatioSteady    float64
	MaxRatioQuiescent float64
	MaxRatioTransient float64
	// MaxStructRatio is like MaxRatioSteady but uses the structure size
	// (payloads + buffers, including empty buffer space) rather than the
	// largest allocated address; it is the conservative bound Lemma 2.5
	// actually proves.
	MaxStructRatio float64
	// MaxAdditiveSlack is max over events of footprint - ratioBase*volume,
	// used to verify the "+Delta" additive terms of Section 3. Populated
	// only when RatioBase > 0.
	RatioBase        float64
	MaxAdditiveSlack int64

	// Flush statistics.
	Flushes             int64
	MaxCheckpointsPerOp int64
	MaxCheckpointsFlush int64
	CheckpointsTotal    int64
	MaxFlushMovedVolume int64
	// MaxFlushArrivalFrac is the largest (update volume arriving while a
	// flush was in progress) / (volume at flush start) — the quantity
	// Lemma 3.4 bounds by ε' for the deamortized variant.
	MaxFlushArrivalFrac  float64
	curFlushCheckpoints  int64
	curFlushStartVol     int64
	curFlushArrived      int64
	curOpCheckpoints     int64
	inFlush              bool
	MaxOpMovedVolume     int64
	curOpMovedVolume     int64
	MaxOpMoves           int64
	curOpMoves           int64
	OpsTotal             int64
	FinalFootprint       int64
	FinalVolume          int64
	MaxFootprintObserved int64

	// Series samples (volume, footprint) every SampleEvery completed ops
	// when SampleEvery > 0.
	SampleEvery int
	Series      []Sample
	opsSinceSmp int
}

// Sample is one footprint-series point.
type Sample struct {
	Op        int64
	Volume    int64
	Footprint int64
}

// NewMetrics creates a Metrics recorder pricing the given cost family
// (cost.StandardFamily when empty).
func NewMetrics(funcs ...cost.Func) *Metrics {
	return &Metrics{Meter: cost.NewMeter(funcs...)}
}

// Record implements Recorder.
func (m *Metrics) Record(e Event) {
	switch e.Kind {
	case KInsert:
		m.Inserts++
		m.Meter.Alloc(e.Size)
		if m.inFlush {
			m.curFlushArrived += e.Size
		}
		m.noteTransient(e.Footprint, e.Volume)
	case KDelete:
		m.Deletes++
		if m.inFlush {
			m.curFlushArrived += e.Size
		}
		m.noteTransient(e.Footprint, e.Volume)
	case KMove:
		m.MovesTotal++
		m.MovedVolume += e.Size
		m.curOpMovedVolume += e.Size
		m.curOpMoves++
		m.Meter.Move(e.Size)
		m.noteTransient(e.Footprint, e.Volume)
	case KCheckpoint:
		m.CheckpointsTotal++
		m.curOpCheckpoints++
		if m.inFlush {
			m.curFlushCheckpoints++
		}
	case KFlushStart:
		m.Flushes++
		m.inFlush = true
		m.curFlushCheckpoints = 0
		m.curFlushStartVol = e.Volume
		m.curFlushArrived = 0
	case KFlushEnd:
		m.inFlush = false
		if m.curFlushCheckpoints > m.MaxCheckpointsFlush {
			m.MaxCheckpointsFlush = m.curFlushCheckpoints
		}
		if e.Size > m.MaxFlushMovedVolume {
			m.MaxFlushMovedVolume = e.Size
		}
		if m.curFlushStartVol > 0 {
			if f := float64(m.curFlushArrived) / float64(m.curFlushStartVol); f > m.MaxFlushArrivalFrac {
				m.MaxFlushArrivalFrac = f
			}
		}
	case KOpEnd:
		m.OpsTotal++
		m.Meter.EndOp()
		if m.curOpMovedVolume > m.MaxOpMovedVolume {
			m.MaxOpMovedVolume = m.curOpMovedVolume
		}
		if m.curOpMoves > m.MaxOpMoves {
			m.MaxOpMoves = m.curOpMoves
		}
		if m.curOpCheckpoints > m.MaxCheckpointsPerOp {
			m.MaxCheckpointsPerOp = m.curOpCheckpoints
		}
		m.curOpMovedVolume = 0
		m.curOpMoves = 0
		m.curOpCheckpoints = 0
		m.FinalFootprint = e.Footprint
		m.FinalVolume = e.Volume
		if e.Volume > 0 {
			if r := float64(e.Footprint) / float64(e.Volume); r > m.MaxRatioSteady {
				m.MaxRatioSteady = r
			}
			if e.From > 0 {
				// From carries the structure size only for quiescent ops.
				if r := float64(e.From) / float64(e.Volume); r > m.MaxStructRatio {
					m.MaxStructRatio = r
				}
				if r := float64(e.Footprint) / float64(e.Volume); r > m.MaxRatioQuiescent {
					m.MaxRatioQuiescent = r
				}
			}
		}
		m.noteTransient(e.Footprint, e.Volume)
		if m.SampleEvery > 0 {
			m.opsSinceSmp++
			if m.opsSinceSmp >= m.SampleEvery {
				m.opsSinceSmp = 0
				m.Series = append(m.Series, Sample{Op: m.OpsTotal, Volume: e.Volume, Footprint: e.Footprint})
			}
		}
	}
}

func (m *Metrics) noteTransient(footprint, volume int64) {
	if footprint > m.MaxFootprintObserved {
		m.MaxFootprintObserved = footprint
	}
	if volume > 0 && footprint > 0 {
		if r := float64(footprint) / float64(volume); r > m.MaxRatioTransient {
			m.MaxRatioTransient = r
		}
		if m.RatioBase > 0 {
			if slack := footprint - int64(m.RatioBase*float64(volume)); slack > m.MaxAdditiveSlack {
				m.MaxAdditiveSlack = slack
			}
		}
	}
}
