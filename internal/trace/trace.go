// Package trace defines the event stream a reallocator emits and the
// recorders that consume it.
//
// The reallocation algorithms never compute costs themselves — they are
// cost oblivious. They emit placement events; recorders turn the stream
// into competitive-ratio measurements (via cost.Meter), footprint series,
// checkpoint counts, and full logs for visualization and tests.
package trace

// Kind enumerates event types.
type Kind uint8

// Event kinds.
const (
	// KInsert records the initial allocation of an object.
	KInsert Kind = iota
	// KDelete records the completion of a delete request.
	KDelete
	// KMove records a reallocation of a live object.
	KMove
	// KCheckpoint records the algorithm blocking on (and receiving) a
	// checkpoint.
	KCheckpoint
	// KFlushStart/KFlushEnd bracket a buffer flush.
	KFlushStart
	KFlushEnd
	// KOpEnd closes an insert/delete request; carries post-op footprint
	// and volume for steady-state bound checks.
	KOpEnd
	// KFlushSpan summarizes one completed flush as a timing span: chunk
	// count, moved volume, stall and active-execution nanoseconds. It is
	// emitted right after KFlushEnd, and only when the telemetry layer is
	// wired (the timings do not exist otherwise), so observers and Logs
	// replay flush timing without subscribing to a second stream.
	KFlushSpan
)

func (k Kind) String() string {
	switch k {
	case KInsert:
		return "insert"
	case KDelete:
		return "delete"
	case KMove:
		return "move"
	case KCheckpoint:
		return "checkpoint"
	case KFlushStart:
		return "flush-start"
	case KFlushEnd:
		return "flush-end"
	case KOpEnd:
		return "op-end"
	case KFlushSpan:
		return "flush-span"
	default:
		return "unknown"
	}
}

// Event is one element of the stream. Field use depends on Kind:
//
//	KInsert:     ID, Size, To (placement address), Footprint, Volume
//	KDelete:     ID, Size, Footprint, Volume
//	KMove:       ID, Size, From, To, Footprint, Volume (footprint after move)
//	KCheckpoint: Footprint, Volume
//	KFlushStart: From (boundary class), Volume
//	KFlushEnd:   Size (volume moved by the flush)
//	KOpEnd:      Footprint, Volume, From (structure size incl. empty buffers)
//	KFlushSpan:  ID (chunks), Size (volume moved), From (stall ns),
//	             To (active-execution ns), Footprint, Volume
type Event struct {
	Kind      Kind
	ID        int64
	Size      int64
	From, To  int64
	Footprint int64
	Volume    int64
}

// Recorder consumes the event stream.
type Recorder interface {
	Record(Event)
}

// Null discards all events; use it in throughput benchmarks.
type Null struct{}

// Record implements Recorder.
func (Null) Record(Event) {}

// Multi tees the stream to several recorders.
type Multi []Recorder

// Record implements Recorder.
func (m Multi) Record(e Event) {
	for _, r := range m {
		r.Record(e)
	}
}

// Log captures the full event stream (tests, visualization).
type Log struct {
	Events []Event
}

// Record implements Recorder.
func (l *Log) Record(e Event) { l.Events = append(l.Events, e) }

// MovesByID returns how many times each object moved.
func (l *Log) MovesByID() map[int64]int {
	out := make(map[int64]int)
	for _, e := range l.Events {
		if e.Kind == KMove {
			out[e.ID]++
		}
	}
	return out
}

// Count returns the number of events of kind k.
func (l *Log) Count(k Kind) int {
	n := 0
	for _, e := range l.Events {
		if e.Kind == k {
			n++
		}
	}
	return n
}
