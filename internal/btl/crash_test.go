package btl

import (
	"bytes"
	"fmt"
	"hash/crc64"
	"math/rand/v2"
	"os"
	"strconv"
	"testing"

	"realloc/internal/faultfs"
	"realloc/internal/trace"
)

// The crashmonkey-style harness: run a deterministic workload against a
// durable store over a fault-injecting MemFS, kill the machine at an
// enumerated (or randomized) fault point, reopen from the surviving
// media, and check the recovered state against a model of what each
// durable checkpoint contained.
//
// The model mirrors WAL replay, not the store's in-memory maps: a tap
// on the trace stream rebuilds the same id-keyed table replay builds
// (the KInsert event fires while Store.pendingName carries the block's
// logical name), snapshotting it at every checkpoint event. Recovery
// must land on a snapshot between the last checkpoint known durable
// (durableFloor) and the last one taken, with every checksummed block's
// payload intact byte for byte.

// mblock is one modeled block.
type mblock struct {
	size   int64
	sum    uint64
	hasSum bool
	data   []byte
}

// crashModel taps the trace stream and snapshots per checkpoint seq.
type crashModel struct {
	st    *Store
	cur   map[uint64]string // id → name, mirrors replay's table keys
	info  map[uint64]mblock // id → payload bookkeeping
	seq   uint64
	snaps map[uint64]map[string]mblock // seq → name-projected state
}

func newCrashModel(st *Store) *crashModel {
	return &crashModel{
		st:    st,
		cur:   map[uint64]string{},
		info:  map[uint64]mblock{},
		snaps: map[uint64]map[string]mblock{0: {}},
	}
}

func (m *crashModel) Record(e trace.Event) {
	switch e.Kind {
	case trace.KInsert:
		m.cur[uint64(e.ID)] = m.st.pendingName
		m.info[uint64(e.ID)] = mblock{size: e.Size}
	case trace.KDelete:
		delete(m.cur, uint64(e.ID))
		delete(m.info, uint64(e.ID))
	case trace.KCheckpoint:
		m.seq++
		m.snaps[m.seq] = m.project()
	}
}

// setSum mirrors the KSum record a successful Put appends.
func (m *crashModel) setSum(id uint64, sum uint64, data []byte) {
	b := m.info[id]
	b.sum, b.hasSum, b.data = sum, true, data
	m.info[id] = b
}

// project collapses the id table to names the way recovery does: the
// newest id per name wins (an in-flight update's two copies).
func (m *crashModel) project() map[string]mblock {
	winner := map[string]uint64{}
	for id, name := range m.cur {
		if id > winner[name] {
			winner[name] = id
		}
	}
	out := make(map[string]mblock, len(winner))
	for name, id := range winner {
		b := m.info[id]
		out[name] = mblock{size: b.size, sum: b.sum, hasSum: b.hasSum, data: b.data}
	}
	return out
}

// runWorkload drives a deterministic op mix against a store over fs,
// stopping at the first injected failure. It returns the model and the
// last checkpoint seq known durable when the workload ended.
func runWorkload(t *testing.T, fs *faultfs.MemFS, seed uint64, ops int) (m *crashModel, durableFloor, lastSeq uint64) {
	t.Helper()
	m = newCrashModel(nil)
	st, err := New(Config{FS: fs, Recorder: m})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	m.st = st // the tap reads pendingName off the store at event time

	rng := rand.New(rand.NewPCG(seed, 0xc4a54))
	var names []string
	nameN := 0
	inj := fs.Injector()
	for op := 0; op < ops; op++ {
		var err error
		switch k := rng.IntN(10); {
		case k < 5 || len(names) == 0:
			name := fmt.Sprintf("b%04d", nameN)
			nameN++
			data := make([]byte, 8+rng.IntN(113))
			for i := range data {
				data[i] = byte(rng.IntN(256))
			}
			if err = st.Put(name, data); err == nil {
				names = append(names, name)
				if id, ok := st.byName[name]; ok {
					m.setSum(uint64(id), crc64.Checksum(data, crcTable), data)
				}
			}
		case k < 7:
			err = st.Update(names[rng.IntN(len(names))], int64(8+rng.IntN(113)))
		case k < 8:
			i := rng.IntN(len(names))
			if err = st.Drop(names[i]); err == nil {
				names = append(names[:i], names[i+1:]...)
			}
		default:
			st.Checkpoint()
			// An explicit checkpoint does not flow through the trace
			// stream; bring the model up to the store's seq (no state
			// changed since the snapshot instant, so projecting now is
			// exact).
			for m.seq < st.seq {
				m.seq++
				m.snaps[m.seq] = m.project()
			}
			err = st.Err()
		}
		if err != nil || st.Err() != nil {
			break
		}
		if !inj.Dropping() {
			durableFloor = st.seq
		}
	}
	return m, durableFloor, m.seq
}

// verifyRecovery crashes the media, reopens (retrying through faults
// that fire during recovery itself), and checks the recovered state is
// exactly one of the model's durable snapshots.
func verifyRecovery(t *testing.T, fs *faultfs.MemFS, m *crashModel, durableFloor, lastSeq uint64, tag string) {
	t.Helper()
	fs.Crash()
	var st *Store
	var rep RecoveryReport
	var err error
	for attempt := 0; attempt < 8; attempt++ {
		st, rep, err = Open(Config{FS: fs})
		if err == nil {
			break
		}
		fs.Crash() // a fault fired mid-recovery: the machine dies again
	}
	if err != nil {
		t.Fatalf("%s: recovery never succeeded: %v", tag, err)
	}
	defer st.Close()
	if len(rep.Corrupt) != 0 {
		t.Fatalf("%s: corrupt blocks after successful recovery: %v", tag, rep.Corrupt)
	}
	if rep.Seq < durableFloor {
		t.Fatalf("%s: recovered to seq %d, below durable floor %d", tag, rep.Seq, durableFloor)
	}

	got := map[string]mblock{}
	for name, id := range st.byName {
		b := mblock{}
		if ext, ok := st.realloc.Extent(id); ok {
			b.size = ext.Size
		}
		if sum, ok := st.sums[id]; ok {
			b.sum, b.hasSum = sum, true
		}
		got[name] = b
	}

	// Recovery's own checkpoints can push rep.Seq past the workload's
	// last seq without changing the block set, so match the recovered
	// state against the whole durable window.
	matched := uint64(0)
	found := false
	for q := durableFloor; q <= lastSeq && !found; q++ {
		if snap, ok := m.snaps[q]; ok && stateEqual(snap, got) {
			matched, found = q, true
		}
	}
	if !found {
		t.Fatalf("%s: recovered state (%d blocks, seq %d) matches no durable snapshot in [%d,%d]",
			tag, len(got), rep.Seq, durableFloor, lastSeq)
	}

	// Byte-level payload verification against the matched snapshot.
	for name, want := range m.snaps[matched] {
		if !want.hasSum {
			continue
		}
		data, err := st.Get(name)
		if err != nil {
			t.Fatalf("%s: get %q after recovery: %v", tag, name, err)
		}
		if !bytes.Equal(data, want.data) {
			t.Fatalf("%s: payload %q diverged after recovery at seq %d", tag, name, matched)
		}
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatalf("%s: invariants after recovery: %v", tag, err)
	}
}

// stateEqual compares a model snapshot with a recovered state: same
// names, sizes, and checksum status.
func stateEqual(want, got map[string]mblock) bool {
	if len(want) != len(got) {
		return false
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok || g.size != w.size || g.hasSum != w.hasSum {
			return false
		}
		if w.hasSum && g.sum != w.sum {
			return false
		}
	}
	return true
}

// crashSchedule runs one workload under one fault plan end to end.
func crashSchedule(t *testing.T, plan []faultfs.Fault, seed uint64, ops int, tag string) {
	t.Helper()
	fs := faultfs.NewMemFS(faultfs.NewInjector(plan...))
	m, floor, last := runWorkload(t, fs, seed, ops)
	verifyRecovery(t, fs, m, floor, last, tag)
}

// TestCrashAtEveryFaultPoint enumerates the workload's entire fault
// space: a baseline run counts every media write and sync the store
// issues, then the same workload is killed at each one — crash-at-write
// and torn-write for every write ordinal, dropped-fsync for every sync
// ordinal — and must recover to a durable checkpoint every time.
func TestCrashAtEveryFaultPoint(t *testing.T) {
	const seed, ops = 42, 60
	baseline := faultfs.NewMemFS(nil)
	mb, floorB, lastB := runWorkload(t, baseline, seed, ops)
	verifyRecovery(t, baseline, mb, floorB, lastB, "baseline")
	writes := baseline.Injector().Writes()
	syncs := baseline.Injector().Syncs()
	if writes < 10 || syncs < 5 {
		t.Fatalf("workload too small to sweep: %d writes, %d syncs", writes, syncs)
	}

	schedules := 0
	for i := 1; i <= writes; i++ {
		crashSchedule(t, []faultfs.Fault{{Kind: faultfs.CrashAtWrite, N: i}}, seed, ops,
			fmt.Sprintf("crash@write%d", i))
		crashSchedule(t, []faultfs.Fault{{Kind: faultfs.TornWrite, N: i, TearBytes: int64(1 + i*7%61)}}, seed, ops,
			fmt.Sprintf("torn@write%d", i))
		schedules += 2
	}
	for j := 1; j <= syncs; j++ {
		crashSchedule(t, []faultfs.Fault{{Kind: faultfs.DropSync, N: j}}, seed, ops,
			fmt.Sprintf("dropsync@%d", j))
		schedules++
	}
	t.Logf("fault-point sweep: %d schedules over %d writes + %d syncs", schedules, writes, syncs)
}

// TestRandomCrashSchedules is the randomized side of the harness: fault
// plans drawn from seeds (multiple faults per run, random workloads).
// PR CI runs a bounded deterministic subset; the nightly soak scales it
// through REALLOC_SOAK_OPS (matched by its -run 'TestSoak' regex via
// TestSoakCrashSchedules below).
func TestRandomCrashSchedules(t *testing.T) {
	runRandomSchedules(t, 60)
}

// TestSoakCrashSchedules scales the randomized sweep for the nightly
// soak: REALLOC_SOAK_OPS/1000 schedules (min 200).
func TestSoakCrashSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	n := 200
	if v := os.Getenv("REALLOC_SOAK_OPS"); v != "" {
		ops, err := strconv.Atoi(v)
		if err != nil || ops < 1 {
			t.Fatalf("bad REALLOC_SOAK_OPS %q: %v", v, err)
		}
		if s := ops / 1000; s > n {
			n = s
		}
	}
	runRandomSchedules(t, n)
}

func runRandomSchedules(t *testing.T, n int) {
	t.Helper()
	// Budget faults against a typical run's fault space; plans that
	// address beyond it simply never fire (the workload then completes
	// and the final crash is a clean one).
	const maxWrites, maxSyncs = 160, 120
	for i := 0; i < n; i++ {
		seed := uint64(1000 + i)
		plan := faultfs.RandomPlan(seed, maxWrites, maxSyncs)
		crashSchedule(t, plan, seed, 40+int(seed%40),
			fmt.Sprintf("random#%d(%v)", i, plan))
	}
	t.Logf("randomized sweep: %d schedules", n)
}
