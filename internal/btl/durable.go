// Durable mode: the block store over real media. Two files live in the
// store's directory (or faultfs.FS):
//
//   - wal.log — the write-ahead log, a framed mirror of the substrate's
//     event stream (insert/move/delete), payload checksums, and
//     checkpoint markers (see internal/wal);
//   - arena.<gen>.img — the payload arena, synced to media at every
//     checkpoint. The generation counter exists so recovery never
//     writes the image a durable checkpoint still references: each
//     recovery rebuilds into arena.<gen+1>.img, and only after the new
//     image and the WAL checkpoint record naming it are durable is the
//     old generation removed. A crash at ANY point of recovery
//     therefore replays the old WAL against the old, untouched image.
//
// Checkpoint protocol (snapshot in btl.go): arena sync, then checkpoint
// record, then WAL group-fsync. Replay order is event order because the
// WAL hook logs the trace events themselves.
package btl

import (
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"sort"
	"time"

	"realloc/internal/addrspace"
	"realloc/internal/arena"
	"realloc/internal/wal"
)

// Media file names. The arena name carries the generation.
const walFileName = "wal.log"

func arenaFileName(gen uint64) string { return fmt.Sprintf("arena.%d.img", gen) }

// Open recovers a durable store from the media in cfg.Dir (or cfg.FS):
// the WAL is replayed to the last durable checkpoint, every surviving
// block's bytes are verified against the arena image, and the blocks
// are reloaded into a fresh reallocator. Opening a directory that never
// held a store yields an empty store.
func Open(cfg Config) (*Store, RecoveryReport, error) {
	if cfg.Dir == "" && cfg.FS == nil {
		return nil, RecoveryReport{}, errors.New("btl: Open needs Dir or FS")
	}
	s, err := newShell(cfg)
	if err != nil {
		return nil, RecoveryReport{}, err
	}
	s.crashed = true // recoverFromMedia is the shared recovery path
	rep, err := s.recoverFromMedia()
	if err != nil {
		return nil, rep, err
	}
	return s, rep, nil
}

// newArenaBackend opens the payload arena for the current generation:
// the mmap-backed file arena over a real directory, or the plain-I/O
// arena over the injectable FS.
func (s *Store) newArenaBackend(fresh bool) (arena.Backend, error) {
	name := arenaFileName(s.gen)
	if s.dir != "" {
		path := s.dir + "/" + name
		if fresh {
			return arena.Create(path)
		}
		return arena.Open(path)
	}
	f, err := s.fs.OpenFile(name)
	if err != nil {
		return nil, err
	}
	if fresh {
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, err
		}
	}
	return arena.FromFile(f)
}

// freshMedia truncates any existing store state and opens generation-1
// media: an empty WAL and an empty arena.
func (s *Store) freshMedia() (arena.Backend, error) {
	walF, err := s.fs.OpenFile(walFileName)
	if err != nil {
		return nil, err
	}
	if err := walF.Truncate(0); err != nil {
		walF.Close()
		return nil, err
	}
	s.gen = 1
	data, err := s.newArenaBackend(true)
	if err != nil {
		walF.Close()
		return nil, err
	}
	s.walF = walF
	s.w = s.newWriter(0)
	return data, nil
}

// newWriter builds the WAL writer with the telemetry hook attached.
func (s *Store) newWriter(off int64) *wal.Writer {
	w := wal.NewWriter(s.walF, off)
	if tel := s.tel; tel != nil {
		w.OnFsync = func(nanos int64) { tel.WALFsync.Record(nanos) }
	}
	return w
}

// recoverFromMedia is the durable recovery path, crash-safe at every
// step:
//
//  1. Replay the WAL (truncating any torn/corrupt tail) to the last
//     durable checkpoint: block table, sequence number, and the arena
//     generation that checkpoint's extents refer to.
//  2. Verify: every replayed block with a checksum must hash to it at
//     its extent of that arena image. Any mismatch aborts recovery —
//     while the checkpoint rule holds, there are none.
//  3. Cut the WAL back to the checkpoint marker (the tail records
//     describe volatile work the re-log below must not collide with).
//  4. Rebuild into the NEXT arena generation: fresh core, blocks
//     re-inserted in id order, payloads rewritten, every placement
//     re-logged through the normal WAL hook.
//  5. Checkpoint: the new arena image is synced, then a checkpoint
//     record naming the new generation is appended and fsynced. Only
//     now does the durable state reference the new image.
//  6. Old arena generations are removed.
//
// A crash before 5 completes leaves the old WAL prefix + old arena
// image fully intact, so the next recovery replays the same state.
func (s *Store) recoverFromMedia() (RecoveryReport, error) {
	t0 := time.Now()
	var rep RecoveryReport

	// Any handles from before the crash are stale; drop them.
	if s.data != nil {
		_ = s.data.Close()
		s.data = nil
	}
	if s.walF != nil {
		_ = s.walF.Close()
		s.walF = nil
		s.w = nil
	}

	walF, err := s.fs.OpenFile(walFileName)
	if err != nil {
		return rep, fmt.Errorf("btl: open wal: %w", err)
	}
	rp, err := wal.Open(walF)
	if err != nil {
		walF.Close()
		return rep, fmt.Errorf("btl: replay wal: %w", err)
	}
	rep.Seq = rp.Seq
	rep.WALTail = rp.Tail
	oldGen := rp.CkptID

	// Verify and load the surviving payloads from the checkpointed
	// arena image.
	type survivor struct {
		id   uint64
		b    wal.Block
		data []byte
	}
	survivors := make([]survivor, 0, len(rp.Blocks))
	if len(rp.Blocks) > 0 {
		arF, err := s.fs.OpenFile(arenaFileName(oldGen))
		if err != nil {
			walF.Close()
			return rep, fmt.Errorf("btl: open arena image: %w", err)
		}
		asz, err := arF.Size()
		if err != nil {
			arF.Close()
			walF.Close()
			return rep, fmt.Errorf("btl: arena image size: %w", err)
		}
		for id, b := range rp.Blocks {
			if b.Start < 0 || b.Size < 0 || b.Start+b.Size > asz {
				rep.Corrupt = append(rep.Corrupt, b.Name)
				continue
			}
			buf := make([]byte, b.Size)
			if b.Size > 0 {
				if n, err := arF.ReadAt(buf, b.Start); err != nil && !(errors.Is(err, io.EOF) && int64(n) == b.Size) {
					rep.Corrupt = append(rep.Corrupt, b.Name)
					continue
				}
			}
			if b.HasSum && crc64.Checksum(buf, crcTable) != b.Sum {
				rep.Corrupt = append(rep.Corrupt, b.Name)
				continue
			}
			survivors = append(survivors, survivor{id: id, b: b, data: buf})
		}
		arF.Close()
		if len(rep.Corrupt) > 0 {
			walF.Close()
			sort.Strings(rep.Corrupt)
			return rep, fmt.Errorf("btl: %d blocks corrupted after crash", len(rep.Corrupt))
		}
	}

	// Cut the WAL back to the last durable checkpoint and resume
	// appending there. (Still crash-safe: the records being discarded
	// are exactly the ones replay already ignores.)
	if err := walF.Truncate(rp.CkptEnd); err != nil {
		walF.Close()
		return rep, fmt.Errorf("btl: truncate wal tail: %w", err)
	}
	s.walF = walF
	s.w = s.newWriter(rp.CkptEnd)
	s.seq = rp.Seq
	s.gen = oldGen + 1
	s.ioErr = nil

	// Rebuild into the next generation; the old image stays untouched
	// until the checkpoint below makes the new one authoritative.
	data, err := s.newArenaBackend(true)
	if err != nil {
		return rep, fmt.Errorf("btl: create arena generation %d: %w", s.gen, err)
	}
	if err := s.attachCore(data); err != nil {
		return rep, err
	}
	s.byName = make(map[string]addrspace.ID, len(survivors))
	s.names = make(map[addrspace.ID]string, len(survivors))
	s.sums = make(map[addrspace.ID]uint64, len(survivors))
	s.nextID = 1
	s.crashed = false

	// Re-insert with the durable checkpoint protocol suppressed: forced
	// core checkpoints during the rebuild must not log a checkpoint
	// record, because it would stamp the new generation while survivors
	// not yet re-inserted still replay to old-generation extents. The
	// old image and WAL prefix stay authoritative until the single
	// recovery checkpoint below.
	s.rebuilding = true
	defer func() { s.rebuilding = false }()
	sort.Slice(survivors, func(i, j int) bool { return survivors[i].id < survivors[j].id })

	// A checkpoint forced mid-update snapshots both copies of a block —
	// the old id (delete not yet logged) and the new one. The newest id
	// per name wins; stale duplicates are re-logged as deletes, because
	// the WAL prefix still maps them to old-generation extents and a
	// silently skipped id would replay with a stale placement.
	winner := make(map[string]uint64, len(survivors))
	for _, sv := range survivors {
		if sv.id > winner[sv.b.Name] {
			winner[sv.b.Name] = sv.id
		}
	}
	for _, sv := range survivors {
		if winner[sv.b.Name] != sv.id {
			s.logWAL(wal.Record{Kind: wal.KDelete, ID: sv.id})
			continue
		}
		id := addrspace.ID(sv.id)
		s.pendingName = sv.b.Name
		err := s.realloc.Insert(id, sv.b.Size)
		s.pendingName = ""
		if err != nil {
			return rep, fmt.Errorf("btl: reinsert %q: %w", sv.b.Name, err)
		}
		if sv.b.HasSum {
			if err := s.realloc.Write(id, sv.data); err != nil {
				return rep, fmt.Errorf("btl: rewrite %q: %w", sv.b.Name, err)
			}
			s.sums[id] = sv.b.Sum
			s.logWAL(wal.Record{Kind: wal.KSum, ID: sv.id, Sum: sv.b.Sum})
		}
		s.byName[sv.b.Name] = id
		s.names[id] = sv.b.Name
		if id >= s.nextID {
			s.nextID = id + 1
		}
		rep.Recovered++
	}

	// The recovery checkpoint: makes the new generation authoritative.
	s.rebuilding = false
	s.Checkpoint()
	if s.ioErr != nil {
		return rep, fmt.Errorf("btl: recovery checkpoint: %w", s.ioErr)
	}

	// The durable state now references generation s.gen only; reap the
	// predecessors (a bounded sweep — crash-interrupted recoveries can
	// leave more than one behind).
	for g := s.gen; g > 0 && g+8 >= s.gen; g-- {
		if g != s.gen {
			_ = s.fs.Remove(arenaFileName(g))
		}
	}

	s.recoveries++
	if s.tel != nil {
		s.tel.Recovery.Record(time.Since(t0).Nanoseconds())
	}
	return rep, nil
}
