package btl

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"realloc/internal/arena"
)

func newStore(t *testing.T, deamortized bool) *Store {
	t.Helper()
	s, err := New(Config{Epsilon: 0.25, Deamortized: deamortized})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutLookupDrop(t *testing.T) {
	s := newStore(t, false)
	if err := s.Reserve("a", 10); err != nil {
		t.Fatal(err)
	}
	if err := s.Reserve("a", 10); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate put: %v", err)
	}
	ext, ok := s.Lookup("a")
	if !ok || ext.Size != 10 {
		t.Fatalf("lookup: %v %v", ext, ok)
	}
	if _, ok := s.Lookup("b"); ok {
		t.Fatal("phantom block")
	}
	if err := s.Drop("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Drop("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double drop: %v", err)
	}
	if s.Len() != 0 || s.Volume() != 0 {
		t.Fatalf("len=%d vol=%d", s.Len(), s.Volume())
	}
}

func TestUpdateChangesSizeKeepsName(t *testing.T) {
	s := newStore(t, false)
	if err := s.Reserve("blk", 10); err != nil {
		t.Fatal(err)
	}
	if err := s.Update("blk", 25); err != nil {
		t.Fatal(err)
	}
	ext, ok := s.Lookup("blk")
	if !ok || ext.Size != 25 {
		t.Fatalf("after update: %v %v", ext, ok)
	}
	if err := s.Update("nope", 5); !errors.Is(err, ErrNotFound) {
		t.Fatalf("update missing: %v", err)
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestCrashWithoutRecoverBlocksOps(t *testing.T) {
	s := newStore(t, false)
	_ = s.Reserve("a", 5)
	s.Crash()
	if err := s.Reserve("b", 5); !errors.Is(err, ErrCrashed) {
		t.Fatalf("put after crash: %v", err)
	}
	if err := s.Update("a", 5); !errors.Is(err, ErrCrashed) {
		t.Fatalf("update after crash: %v", err)
	}
	if err := s.Drop("a"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("drop after crash: %v", err)
	}
	if _, ok := s.Lookup("a"); ok {
		t.Fatal("lookup should fail after crash")
	}
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverWithoutCrashFails(t *testing.T) {
	s := newStore(t, false)
	if _, err := s.Recover(); err == nil {
		t.Fatal("recover without crash should error")
	}
}

func TestCheckpointedRecoveryKeepsAllBlocks(t *testing.T) {
	s := newStore(t, false)
	for i := 0; i < 100; i++ {
		if err := s.Reserve(fmt.Sprintf("b%03d", i), int64(5+i%40)); err != nil {
			t.Fatal(err)
		}
	}
	s.Checkpoint()
	s.Crash()
	rep, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recovered != 100 || len(rep.Corrupt) != 0 {
		t.Fatalf("recovery: %+v", rep)
	}
	for i := 0; i < 100; i++ {
		name := fmt.Sprintf("b%03d", i)
		ext, ok := s.Lookup(name)
		if !ok || ext.Size != int64(5+i%40) {
			t.Fatalf("%s lost or resized after recovery: %v %v", name, ext, ok)
		}
	}
}

func TestBlocksAfterCheckpointAreLost(t *testing.T) {
	s := newStore(t, false)
	_ = s.Reserve("durable", 10)
	s.Checkpoint()
	ckpts := s.Checkpoints()
	_ = s.Reserve("volatile", 10)
	s.Crash()
	rep, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	_ = ckpts
	if _, ok := s.Lookup("durable"); !ok {
		t.Fatal("durable block lost")
	}
	// "volatile" may or may not survive: a reallocator-forced checkpoint
	// inside its Put would have snapshotted it. Only assert consistency.
	if rep.Recovered < 1 {
		t.Fatalf("recovered %d", rep.Recovered)
	}
}

// TestCrashRecoveryQuick is the durability property test: random
// workloads, checkpoints, and crash points; recovery must always succeed
// with zero corrupt blocks and every recovered block must carry its
// checkpointed size.
func TestCrashRecoveryQuick(t *testing.T) {
	err := quick.Check(func(seed uint64, deamortized bool) bool {
		rng := rand.New(rand.NewPCG(seed, 0xb71))
		s, err := New(Config{Epsilon: 0.25, Deamortized: deamortized})
		if err != nil {
			t.Log(err)
			return false
		}
		sizesAtCkpt := map[string]int64{}
		liveSizes := map[string]int64{}
		names := []string{}
		ops := 150 + rng.IntN(250)
		for i := 0; i < ops; i++ {
			switch r := rng.Float64(); {
			case r < 0.35 || len(names) == 0:
				name := fmt.Sprintf("n%d", i)
				size := 1 + rng.Int64N(100)
				if err := s.Reserve(name, size); err != nil {
					t.Log(err)
					return false
				}
				names = append(names, name)
				liveSizes[name] = size
			case r < 0.75:
				name := names[rng.IntN(len(names))]
				size := 1 + rng.Int64N(100)
				if err := s.Update(name, size); err != nil {
					t.Log(err)
					return false
				}
				liveSizes[name] = size
			case r < 0.9:
				i := rng.IntN(len(names))
				name := names[i]
				if err := s.Drop(name); err != nil {
					t.Log(err)
					return false
				}
				names[i] = names[len(names)-1]
				names = names[:len(names)-1]
				delete(liveSizes, name)
			default:
				s.Checkpoint()
				sizesAtCkpt = map[string]int64{}
				for n, sz := range liveSizes {
					sizesAtCkpt[n] = sz
				}
			}
		}
		s.Crash()
		rep, err := s.Recover()
		if err != nil {
			t.Logf("recovery failed: %v (%+v)", err, rep)
			return false
		}
		if len(rep.Corrupt) != 0 {
			t.Logf("corrupt blocks: %v", rep.Corrupt)
			return false
		}
		// Every block alive at the last *explicit* checkpoint must be
		// recovered, unless dropped afterwards (then it may legitimately
		// be gone from a later forced snapshot) — so only check blocks
		// still live at crash time.
		for name, size := range sizesAtCkpt {
			if _, stillLive := liveSizes[name]; !stillLive {
				continue
			}
			ext, ok := s.Lookup(name)
			if !ok {
				t.Logf("block %q lost (checkpointed size %d)", name, size)
				return false
			}
			_ = ext
		}
		// Post-recovery, the store must be operational.
		if err := s.Reserve("post-recovery", 7); err != nil {
			t.Log(err)
			return false
		}
		return true
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFootprintStaysBoundedUnderUpdates(t *testing.T) {
	s := newStore(t, true)
	rng := rand.New(rand.NewPCG(4, 4))
	for i := 0; i < 200; i++ {
		if err := s.Reserve(fmt.Sprintf("b%d", i), 10+rng.Int64N(90)); err != nil {
			t.Fatal(err)
		}
	}
	worst := 0.0
	for i := 0; i < 3000; i++ {
		name := fmt.Sprintf("b%d", rng.IntN(200))
		if err := s.Update(name, 10+rng.Int64N(90)); err != nil {
			t.Fatal(err)
		}
		if i%100 == 0 {
			s.Checkpoint()
		}
		if v := s.Volume(); v > 0 {
			if r := float64(s.Footprint()) / float64(v); r > worst {
				worst = r
			}
		}
	}
	if err := s.Reallocator().Drain(); err != nil {
		t.Fatal(err)
	}
	// Updates transiently double-count one block (new copy before old is
	// freed) and deamortized op-ends may be mid-flush, so allow the
	// (1+eps) bound plus working-space slack.
	if worst > 1.6 {
		t.Fatalf("footprint ratio peaked at %v", worst)
	}
	if err := s.Reallocator().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPayloadSurvivesCrashRecovery is the acceptance test for the real
// backend: payload bytes written through the bytes-taking Put must
// survive churn-driven moves, a crash, and recovery — verified both by
// Recover's checksum audit (zero corrupt blocks) and by comparing Get's
// bytes to the originals afterwards.
func TestPayloadSurvivesCrashRecovery(t *testing.T) {
	for _, deam := range []bool{false, true} {
		label := "amortized"
		if deam {
			label = "deamortized"
		}
		t.Run(label, func(t *testing.T) {
			s, err := New(Config{Epsilon: 0.25, Deamortized: deam, Backend: arena.Heap})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewPCG(42, 0x9e3))
			want := map[string][]byte{}
			for i := 0; i < 40; i++ {
				name := fmt.Sprintf("p%02d", i)
				data := make([]byte, 1+rng.Int64N(96))
				for j := range data {
					data[j] = byte(rng.Uint32())
				}
				if err := s.Put(name, data); err != nil {
					t.Fatal(err)
				}
				want[name] = data
			}
			// Churn scratch blocks around the payload blocks so flushes
			// physically relocate the survivors.
			var scratch []string
			for i := 0; i < 600; i++ {
				if rng.Float64() < 0.5 || len(scratch) == 0 {
					name := fmt.Sprintf("s%d", i)
					if err := s.Reserve(name, 1+rng.Int64N(64)); err != nil {
						t.Fatal(err)
					}
					scratch = append(scratch, name)
				} else {
					j := rng.IntN(len(scratch))
					if err := s.Drop(scratch[j]); err != nil {
						t.Fatal(err)
					}
					scratch[j] = scratch[len(scratch)-1]
					scratch = scratch[:len(scratch)-1]
				}
			}
			if moved := s.Reallocator().Data().Counters().BytesMoved; moved == 0 {
				t.Fatal("churn produced no physical moves; the test is not exercising relocation")
			}
			// Payloads intact mid-churn, before any crash.
			for name, data := range want {
				got, err := s.Get(name)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if !bytes.Equal(got, data) {
					t.Fatalf("%s: payload diverged before crash", name)
				}
			}
			s.Checkpoint()
			s.Crash()
			rep, err := s.Recover()
			if err != nil {
				t.Fatalf("recovery: %v (%+v)", err, rep)
			}
			if len(rep.Corrupt) != 0 {
				t.Fatalf("corrupt blocks after recovery: %v", rep.Corrupt)
			}
			for name, data := range want {
				got, err := s.Get(name)
				if err != nil {
					t.Fatalf("%s after recovery: %v", name, err)
				}
				if !bytes.Equal(got, data) {
					t.Errorf("%s: payload corrupted across crash/recovery", name)
				}
			}
			// The recovered store keeps verifying: a second crash cycle
			// re-checksums the carried payloads against the fresh arena.
			s.Checkpoint()
			s.Crash()
			rep, err = s.Recover()
			if err != nil || len(rep.Corrupt) != 0 {
				t.Fatalf("second recovery: %v (%+v)", err, rep)
			}
			for name, data := range want {
				got, err := s.Get(name)
				if err != nil || !bytes.Equal(got, data) {
					t.Fatalf("%s: lost across second cycle (%v)", name, err)
				}
			}
		})
	}
}
