package btl

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func newStore(t *testing.T, deamortized bool) *Store {
	t.Helper()
	s, err := New(Config{Epsilon: 0.25, Deamortized: deamortized})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutLookupDrop(t *testing.T) {
	s := newStore(t, false)
	if err := s.Put("a", 10); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", 10); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate put: %v", err)
	}
	ext, ok := s.Lookup("a")
	if !ok || ext.Size != 10 {
		t.Fatalf("lookup: %v %v", ext, ok)
	}
	if _, ok := s.Lookup("b"); ok {
		t.Fatal("phantom block")
	}
	if err := s.Drop("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Drop("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double drop: %v", err)
	}
	if s.Len() != 0 || s.Volume() != 0 {
		t.Fatalf("len=%d vol=%d", s.Len(), s.Volume())
	}
}

func TestUpdateChangesSizeKeepsName(t *testing.T) {
	s := newStore(t, false)
	if err := s.Put("blk", 10); err != nil {
		t.Fatal(err)
	}
	if err := s.Update("blk", 25); err != nil {
		t.Fatal(err)
	}
	ext, ok := s.Lookup("blk")
	if !ok || ext.Size != 25 {
		t.Fatalf("after update: %v %v", ext, ok)
	}
	if err := s.Update("nope", 5); !errors.Is(err, ErrNotFound) {
		t.Fatalf("update missing: %v", err)
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestCrashWithoutRecoverBlocksOps(t *testing.T) {
	s := newStore(t, false)
	_ = s.Put("a", 5)
	s.Crash()
	if err := s.Put("b", 5); !errors.Is(err, ErrCrashed) {
		t.Fatalf("put after crash: %v", err)
	}
	if err := s.Update("a", 5); !errors.Is(err, ErrCrashed) {
		t.Fatalf("update after crash: %v", err)
	}
	if err := s.Drop("a"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("drop after crash: %v", err)
	}
	if _, ok := s.Lookup("a"); ok {
		t.Fatal("lookup should fail after crash")
	}
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverWithoutCrashFails(t *testing.T) {
	s := newStore(t, false)
	if _, err := s.Recover(); err == nil {
		t.Fatal("recover without crash should error")
	}
}

func TestCheckpointedRecoveryKeepsAllBlocks(t *testing.T) {
	s := newStore(t, false)
	for i := 0; i < 100; i++ {
		if err := s.Put(fmt.Sprintf("b%03d", i), int64(5+i%40)); err != nil {
			t.Fatal(err)
		}
	}
	s.Checkpoint()
	s.Crash()
	rep, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recovered != 100 || len(rep.Corrupt) != 0 {
		t.Fatalf("recovery: %+v", rep)
	}
	for i := 0; i < 100; i++ {
		name := fmt.Sprintf("b%03d", i)
		ext, ok := s.Lookup(name)
		if !ok || ext.Size != int64(5+i%40) {
			t.Fatalf("%s lost or resized after recovery: %v %v", name, ext, ok)
		}
	}
}

func TestBlocksAfterCheckpointAreLost(t *testing.T) {
	s := newStore(t, false)
	_ = s.Put("durable", 10)
	s.Checkpoint()
	ckpts := s.Checkpoints()
	_ = s.Put("volatile", 10)
	s.Crash()
	rep, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	_ = ckpts
	if _, ok := s.Lookup("durable"); !ok {
		t.Fatal("durable block lost")
	}
	// "volatile" may or may not survive: a reallocator-forced checkpoint
	// inside its Put would have snapshotted it. Only assert consistency.
	if rep.Recovered < 1 {
		t.Fatalf("recovered %d", rep.Recovered)
	}
}

// TestCrashRecoveryQuick is the durability property test: random
// workloads, checkpoints, and crash points; recovery must always succeed
// with zero corrupt blocks and every recovered block must carry its
// checkpointed size.
func TestCrashRecoveryQuick(t *testing.T) {
	err := quick.Check(func(seed uint64, deamortized bool) bool {
		rng := rand.New(rand.NewPCG(seed, 0xb71))
		s, err := New(Config{Epsilon: 0.25, Deamortized: deamortized})
		if err != nil {
			t.Log(err)
			return false
		}
		sizesAtCkpt := map[string]int64{}
		liveSizes := map[string]int64{}
		names := []string{}
		ops := 150 + rng.IntN(250)
		for i := 0; i < ops; i++ {
			switch r := rng.Float64(); {
			case r < 0.35 || len(names) == 0:
				name := fmt.Sprintf("n%d", i)
				size := 1 + rng.Int64N(100)
				if err := s.Put(name, size); err != nil {
					t.Log(err)
					return false
				}
				names = append(names, name)
				liveSizes[name] = size
			case r < 0.75:
				name := names[rng.IntN(len(names))]
				size := 1 + rng.Int64N(100)
				if err := s.Update(name, size); err != nil {
					t.Log(err)
					return false
				}
				liveSizes[name] = size
			case r < 0.9:
				i := rng.IntN(len(names))
				name := names[i]
				if err := s.Drop(name); err != nil {
					t.Log(err)
					return false
				}
				names[i] = names[len(names)-1]
				names = names[:len(names)-1]
				delete(liveSizes, name)
			default:
				s.Checkpoint()
				sizesAtCkpt = map[string]int64{}
				for n, sz := range liveSizes {
					sizesAtCkpt[n] = sz
				}
			}
		}
		s.Crash()
		rep, err := s.Recover()
		if err != nil {
			t.Logf("recovery failed: %v (%+v)", err, rep)
			return false
		}
		if len(rep.Corrupt) != 0 {
			t.Logf("corrupt blocks: %v", rep.Corrupt)
			return false
		}
		// Every block alive at the last *explicit* checkpoint must be
		// recovered, unless dropped afterwards (then it may legitimately
		// be gone from a later forced snapshot) — so only check blocks
		// still live at crash time.
		for name, size := range sizesAtCkpt {
			if _, stillLive := liveSizes[name]; !stillLive {
				continue
			}
			ext, ok := s.Lookup(name)
			if !ok {
				t.Logf("block %q lost (checkpointed size %d)", name, size)
				return false
			}
			_ = ext
		}
		// Post-recovery, the store must be operational.
		if err := s.Put("post-recovery", 7); err != nil {
			t.Log(err)
			return false
		}
		return true
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFootprintStaysBoundedUnderUpdates(t *testing.T) {
	s := newStore(t, true)
	rng := rand.New(rand.NewPCG(4, 4))
	for i := 0; i < 200; i++ {
		if err := s.Put(fmt.Sprintf("b%d", i), 10+rng.Int64N(90)); err != nil {
			t.Fatal(err)
		}
	}
	worst := 0.0
	for i := 0; i < 3000; i++ {
		name := fmt.Sprintf("b%d", rng.IntN(200))
		if err := s.Update(name, 10+rng.Int64N(90)); err != nil {
			t.Fatal(err)
		}
		if i%100 == 0 {
			s.Checkpoint()
		}
		if v := s.Volume(); v > 0 {
			if r := float64(s.Footprint()) / float64(v); r > worst {
				worst = r
			}
		}
	}
	if err := s.Reallocator().Drain(); err != nil {
		t.Fatal(err)
	}
	// Updates transiently double-count one block (new copy before old is
	// freed) and deamortized op-ends may be mid-flush, so allow the
	// (1+eps) bound plus working-space slack.
	if worst > 1.6 {
		t.Fatalf("footprint ratio peaked at %v", worst)
	}
	if err := s.Reallocator().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
