// Package btl implements the block translation layer of a write-optimized
// database (the TokuDB-style setting of Sections 1 and 3.1): logical block
// names map to physical extents managed by a checkpointed cost-oblivious
// reallocator.
//
// The layer demonstrates why the checkpoint rule exists. Moving a block
// updates the in-memory translation map, but the durable copy of the map
// is only written at checkpoints; until then the block's data must survive
// at its old address too. The substrate enforces exactly that (space freed
// since the last checkpoint cannot be rewritten), so recovering from a
// crash with the last durable map always finds intact data.
//
// The store runs in one of two modes. The default is in-memory: the
// durable map is a shadow snapshot and Crash/Recover simulate failure
// without touching media. Durable mode (Config.Dir or Config.FS, see
// durable.go) writes real media — a file-backed payload arena synced at
// checkpoints plus a write-ahead log of every placement — and Recover
// replays the log and verifies the surviving arena bytes instead of
// reading any in-memory state.
package btl

import (
	"errors"
	"fmt"
	"hash/crc64"

	"realloc/internal/addrspace"
	"realloc/internal/arena"
	"realloc/internal/core"
	"realloc/internal/faultfs"
	"realloc/internal/telemetry"
	"realloc/internal/trace"
	"realloc/internal/wal"
)

// crcTable is the checksum polynomial for block payload verification.
var crcTable = crc64.MakeTable(crc64.ECMA)

// Errors reported by the store.
var (
	ErrExists     = errors.New("btl: block already exists")
	ErrNotFound   = errors.New("btl: no such block")
	ErrCrashed    = errors.New("btl: store is crashed; call Recover")
	ErrNotCrashed = errors.New("btl: Recover without crash")
)

// Store is a crash-consistent block store.
type Store struct {
	realloc *core.Reallocator
	variant core.Variant
	epsilon float64
	tap     trace.Recorder // caller's recorder, preserved across recoveries

	byName map[string]addrspace.ID
	names  map[addrspace.ID]string
	nextID addrspace.ID
	// sums holds the payload checksum of every block written through the
	// bytes-taking Put, keyed by id; blocks a payload was never stored
	// for (Reserve, or a metered backend) have no entry. A block's bytes
	// never change after Put (Update allocates a fresh id), so one
	// checksum per id is exact.
	sums    map[addrspace.ID]uint64
	backend arena.Kind

	// durable is the translation map as of the last checkpoint: what a
	// recovery would read back from disk. In durable mode it is kept for
	// introspection, but Recover reads the real media instead.
	durable map[string]blockMeta

	crashed bool

	// Durable-mode machinery (see durable.go); all zero for in-memory
	// stores.
	fs    faultfs.FS
	dir   string // non-empty selects the mmap file arena over real files
	data  arena.Backend
	walF  faultfs.File
	w     *wal.Writer
	gen   uint64 // arena-file generation, stamped into checkpoint records
	seq   uint64 // checkpoint sequence
	ioErr error  // sticky durable-I/O failure; the store refuses ops until recovery
	tel   *telemetry.Set
	// pendingName hands a block's logical name from Reserve to the WAL
	// hook: the KInsert trace event fires inside realloc.Insert, which
	// is the only point that knows the placement.
	pendingName string
	// rebuilding suppresses the durable checkpoint protocol while
	// recovery re-inserts survivors: the core may force checkpoints
	// mid-rebuild, but logging one would stamp the new generation while
	// the replay table still holds old-generation extents for blocks not
	// yet re-inserted. Until the final recovery checkpoint, the previous
	// generation stays authoritative.
	rebuilding bool

	// Counters.
	checkpoints int64
	recoveries  int64
}

// blockMeta is one durable map entry.
type blockMeta struct {
	id  addrspace.ID
	ext addrspace.Extent
	// sum is the payload checksum recorded at Put; hasSum distinguishes
	// a real zero checksum from "no payload stored".
	sum    uint64
	hasSum bool
}

// Config parameterizes a Store.
type Config struct {
	// Epsilon is the reallocator's footprint slack (default 0.25).
	Epsilon float64
	// Deamortized selects the Section 3.3 reallocator so block writes
	// never block on long flushes; default is the Section 3.2 one.
	Deamortized bool
	// Recorder taps the reallocator's event stream (may be nil).
	Recorder trace.Recorder
	// Backend selects the payload arena. The zero value (Metered) counts
	// moved volume without storing bytes; a real backend stores every
	// block's payload at its physical extent and lets Recover verify
	// checksums against the raw surviving cells. Ignored in durable
	// mode, which always stores real bytes on media.
	Backend arena.Kind
	// Dir, when non-empty, selects durable mode over real files in that
	// directory: a file-backed (mmap where available) payload arena
	// synced at every checkpoint, plus a write-ahead log. New truncates
	// any existing state; Open recovers from it.
	Dir string
	// FS, when non-nil, selects durable mode over the given file system
	// instead of real files — the fault-injection seam (a faultfs.MemFS
	// with an Injector). Takes precedence over Dir for file access.
	FS faultfs.FS
	// Telemetry, when non-nil, receives WAL fsync latencies and
	// recovery durations.
	Telemetry *telemetry.Set
}

// ckptHook snapshots the durable map whenever the reallocator blocks on a
// checkpoint, mirroring the database writing its translation table.
type ckptHook struct {
	store *Store
	next  trace.Recorder
}

func (h *ckptHook) Record(e trace.Event) {
	// Durable mode logs the event stream itself: the WAL is a framed
	// mirror of exactly these events, so replay order equals event
	// order by construction.
	if s := h.store; s.w != nil && s.ioErr == nil {
		switch e.Kind {
		case trace.KInsert:
			s.logWAL(wal.Record{Kind: wal.KInsert, ID: uint64(e.ID), Start: e.To, Size: e.Size, Name: s.pendingName})
		case trace.KMove:
			s.logWAL(wal.Record{Kind: wal.KMove, ID: uint64(e.ID), Start: e.To})
		case trace.KDelete:
			s.logWAL(wal.Record{Kind: wal.KDelete, ID: uint64(e.ID)})
		}
	}
	if e.Kind == trace.KCheckpoint {
		h.store.snapshot()
	}
	if h.next != nil {
		h.next.Record(e)
	}
}

// New creates an empty store. In durable mode (cfg.Dir or cfg.FS) any
// existing media state is truncated — use Open to recover instead.
func New(cfg Config) (*Store, error) {
	s, err := newShell(cfg)
	if err != nil {
		return nil, err
	}
	var data arena.Backend
	if s.fs != nil {
		data, err = s.freshMedia()
	} else {
		data, err = arena.New(cfg.Backend)
	}
	if err != nil {
		return nil, err
	}
	if err := s.attachCore(data); err != nil {
		return nil, err
	}
	return s, nil
}

// newShell builds a Store with everything but the reallocator and the
// media handles: the shared prefix of New and Open.
func newShell(cfg Config) (*Store, error) {
	if cfg.Epsilon == 0 {
		cfg.Epsilon = 0.25
	}
	s := &Store{
		byName:  make(map[string]addrspace.ID),
		names:   make(map[addrspace.ID]string),
		durable: make(map[string]blockMeta),
		sums:    make(map[addrspace.ID]uint64),
		nextID:  1,
		backend: cfg.Backend,
		tel:     cfg.Telemetry,
	}
	variant := core.Checkpointed
	if cfg.Deamortized {
		variant = core.Deamortized
	}
	s.variant = variant
	s.tap = cfg.Recorder
	s.epsilon = cfg.Epsilon
	if cfg.FS != nil {
		s.fs = cfg.FS
		s.backend = arena.File
	} else if cfg.Dir != "" {
		s.fs = faultfs.OS{Dir: cfg.Dir}
		s.dir = cfg.Dir
		s.backend = arena.File
	}
	return s, nil
}

// attachCore wires a fresh reallocator over the given payload arena.
func (s *Store) attachCore(data arena.Backend) error {
	r, err := core.New(core.Config{
		Epsilon:    s.epsilon,
		Variant:    s.variant,
		Recorder:   &ckptHook{store: s, next: s.tap},
		TrackCells: true,
		Arena:      data,
	})
	if err != nil {
		return err
	}
	s.realloc = r
	s.data = data
	return nil
}

// Reallocator exposes the underlying reallocator (tests, metrics).
func (s *Store) Reallocator() *core.Reallocator { return s.realloc }

// Len returns the number of live blocks.
func (s *Store) Len() int { return len(s.byName) }

// Footprint returns the largest allocated disk address.
func (s *Store) Footprint() int64 { return s.realloc.Footprint() }

// Volume returns the total live block volume.
func (s *Store) Volume() int64 { return s.realloc.Volume() }

// Checkpoints returns how many checkpoints have been taken (both
// reallocator-forced and explicit).
func (s *Store) Checkpoints() int64 { return s.checkpoints }

// Reserve creates block name with the given size and no payload — the
// cost-model path, where only the extent bookkeeping matters.
func (s *Store) Reserve(name string, size int64) error {
	if err := s.opErr(); err != nil {
		return err
	}
	if _, dup := s.byName[name]; dup {
		return fmt.Errorf("%w: %q", ErrExists, name)
	}
	id := s.nextID
	s.nextID++
	s.pendingName = name
	err := s.realloc.Insert(id, size)
	s.pendingName = ""
	if err != nil {
		return err
	}
	s.byName[name] = id
	s.names[id] = name
	return s.opErr()
}

// opErr reports why the store cannot accept an operation: a simulated
// crash, or (durable mode) a sticky media failure — once a WAL append,
// arena sync, or log fsync has failed, every later op fails with the
// original cause until the store is recovered.
func (s *Store) opErr() error {
	if s.crashed {
		return ErrCrashed
	}
	if s.ioErr != nil {
		return fmt.Errorf("btl: durable store failed: %w", s.ioErr)
	}
	return nil
}

// Err exposes the sticky durable-I/O failure (nil while healthy).
func (s *Store) Err() error { return s.ioErr }

// Put creates block name holding data (size = len(data)). On a real
// backend the bytes are stored at the block's physical extent and a
// checksum is recorded, so Recover can verify the payload survived a
// crash byte for byte; under Metered the call degrades to Reserve.
func (s *Store) Put(name string, data []byte) error {
	if err := s.Reserve(name, int64(len(data))); err != nil {
		return err
	}
	id := s.byName[name]
	if !s.realloc.Space().HasData() {
		return nil
	}
	if err := s.realloc.Write(id, data); err != nil {
		return err
	}
	sum := crc64.Checksum(data, crcTable)
	s.sums[id] = sum
	// The checksum is logged only now, after the payload hit the arena:
	// a checkpoint forced during the insert above snapshots the block as
	// placed-but-unverified, which is exactly what the arena holds.
	if s.w != nil && s.ioErr == nil {
		s.logWAL(wal.Record{Kind: wal.KSum, ID: uint64(id), Sum: sum})
	}
	return s.opErr()
}

// Get returns a copy of block name's payload bytes. It fails unless the
// block was written through the bytes-taking Put on a real backend.
func (s *Store) Get(name string) ([]byte, error) {
	if err := s.opErr(); err != nil {
		return nil, err
	}
	id, ok := s.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	ext, _ := s.realloc.Extent(id)
	out := make([]byte, ext.Size)
	if _, err := s.realloc.Read(id, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Update rewrites block name at a new size, as a database does when a
// node changes after compression. The new copy is written and mapped
// before the old one is freed, so a checkpoint forced at any instant
// during the update still snapshots a live copy of the block.
func (s *Store) Update(name string, size int64) error {
	if err := s.opErr(); err != nil {
		return err
	}
	id, ok := s.byName[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	nid := s.nextID
	s.nextID++
	s.pendingName = name
	err := s.realloc.Insert(nid, size)
	s.pendingName = ""
	if err != nil {
		return err
	}
	s.byName[name] = nid
	s.names[nid] = name
	delete(s.names, id)
	delete(s.sums, id)
	if err := s.realloc.Delete(id); err != nil {
		return err
	}
	return s.opErr()
}

// Drop deletes block name.
func (s *Store) Drop(name string) error {
	if err := s.opErr(); err != nil {
		return err
	}
	id, ok := s.byName[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if err := s.realloc.Delete(id); err != nil {
		return err
	}
	delete(s.byName, name)
	delete(s.names, id)
	delete(s.sums, id)
	return s.opErr()
}

// Lookup translates a block name to its current physical extent.
func (s *Store) Lookup(name string) (addrspace.Extent, bool) {
	if s.crashed {
		return addrspace.Extent{}, false
	}
	id, ok := s.byName[name]
	if !ok {
		return addrspace.Extent{}, false
	}
	return s.realloc.Extent(id)
}

// Checkpoint writes the translation map durably and makes all freed space
// reusable (the system-initiated checkpoint of Section 3.1). In durable
// mode this is the fsync point: the arena is synced to media, then the
// checkpoint record is appended and the WAL group-fsynced.
func (s *Store) Checkpoint() {
	if s.crashed || s.ioErr != nil {
		return
	}
	s.realloc.Space().Checkpoint()
	s.snapshot()
}

// snapshot captures the durable translation map at a checkpoint instant.
// In durable mode it also runs the media protocol, in this exact order:
//
//  1. arena sync — every checkpointed extent's bytes become durable;
//  2. checkpoint record appended to the WAL;
//  3. WAL group-fsync — the buffered event records plus the marker
//     become durable together.
//
// If the crash falls between 1 and 3, replay lands on the previous
// checkpoint, whose extents are still intact in the newer arena image:
// the substrate's checkpoint rule kept every extent of checkpoint N
// byte-identical until the N+1 event, so an arena image taken at the
// N+1 instant (even a torn prefix of one) still verifies at N.
func (s *Store) snapshot() {
	s.checkpoints++
	durable := make(map[string]blockMeta, len(s.byName))
	for name, id := range s.byName {
		if ext, ok := s.realloc.Extent(id); ok {
			meta := blockMeta{id: id, ext: ext}
			if sum, ok := s.sums[id]; ok {
				meta.sum, meta.hasSum = sum, true
			}
			durable[name] = meta
		}
	}
	s.durable = durable
	if s.w == nil || s.ioErr != nil || s.rebuilding {
		return
	}
	if err := s.data.Sync(); err != nil {
		s.ioErr = err
		return
	}
	s.seq++
	s.logWAL(wal.Record{Kind: wal.KCheckpoint, Seq: s.seq, ID: s.gen})
	if s.ioErr != nil {
		return
	}
	if err := s.w.Sync(); err != nil {
		s.ioErr = err
	}
}

// logWAL appends one record to the group buffer, latching any failure
// as the sticky media error.
func (s *Store) logWAL(rec wal.Record) {
	if err := s.w.Append(rec); err != nil {
		s.ioErr = err
	}
}

// Crash simulates a failure: the in-memory translation map disappears;
// only the durable map (in-memory mode) or the media files (durable
// mode) survive. Crash is idempotent — a second crash changes nothing.
func (s *Store) Crash() {
	if s.crashed {
		return
	}
	s.crashed = true
	s.byName = nil
	s.names = nil
}

// RecoveryReport describes the outcome of Recover.
type RecoveryReport struct {
	Recovered int
	// Corrupt lists durable blocks whose data was overwritten — always
	// empty while the checkpoint rule holds; any entry is a durability
	// bug.
	Corrupt []string
	// Seq is the checkpoint sequence the store recovered to (durable
	// mode only: the last checkpoint whose WAL record survived).
	Seq uint64
	// WALTail counts valid WAL records after that checkpoint — work the
	// store did but never made durable (durable mode only).
	WALTail int
}

// Recover rebuilds the store after a crash. Without a crash it fails
// with ErrNotCrashed; a recovered store is immediately usable again.
//
// In durable mode it reads the real media: the WAL is replayed to the
// last durable checkpoint and every surviving block is verified against
// the arena file (see recoverFromMedia). In-memory mode verifies every
// durable block's data is intact at its mapped extent of the crashed
// arena (possible precisely because space freed since that checkpoint
// was never rewritten) — on a real backend by checksumming the raw
// surviving cells against the sum recorded at Put — then reloads the
// blocks, payloads included, into a fresh reallocator over a fresh
// arena.
func (s *Store) Recover() (RecoveryReport, error) {
	if !s.crashed {
		return RecoveryReport{}, ErrNotCrashed
	}
	if s.fs != nil {
		return s.recoverFromMedia()
	}
	var rep RecoveryReport
	old := s.realloc.Space()
	for name, meta := range s.durable {
		if !old.HoldsData(meta.id, meta.ext) {
			rep.Corrupt = append(rep.Corrupt, name)
			continue
		}
		// The physical check: the bytes at the durable extent of the
		// crashed arena must still hash to the checksum recorded when the
		// block was written — the checkpoint rule is what makes this hold.
		if meta.hasSum && old.HasData() {
			raw := old.Data().Bytes(meta.ext.Start, meta.ext.Size)
			if crc64.Checksum(raw, crcTable) != meta.sum {
				rep.Corrupt = append(rep.Corrupt, name)
			}
		}
	}
	if len(rep.Corrupt) > 0 {
		return rep, fmt.Errorf("btl: %d blocks corrupted after crash", len(rep.Corrupt))
	}
	// Reload the surviving blocks into a fresh reallocator (the database
	// rewrites them as it warms up). The fresh core gets its own arena —
	// re-inserting into the crashed one would overwrite durable data
	// before it is read back.
	oldArena := s.data
	data, err := arena.New(s.backend)
	if err != nil {
		return rep, err
	}
	fresh, err := core.New(core.Config{
		Epsilon:    s.realloc.Epsilon(),
		Variant:    s.variant,
		Recorder:   &ckptHook{store: s, next: s.tap},
		TrackCells: true,
		Arena:      data,
	})
	if err != nil {
		return rep, err
	}
	s.byName = make(map[string]addrspace.ID, len(s.durable))
	s.names = make(map[addrspace.ID]string, len(s.durable))
	sums := make(map[addrspace.ID]uint64, len(s.durable))
	for name, meta := range s.durable {
		if err := fresh.Insert(meta.id, meta.ext.Size); err != nil {
			return rep, err
		}
		if meta.hasSum && old.HasData() {
			// Carry the payload across: read from the crashed arena at the
			// durable address, write at wherever the fresh core placed the
			// block. Later flushes keep it attached to the block.
			raw := old.Data().Bytes(meta.ext.Start, meta.ext.Size)
			if err := fresh.Write(meta.id, raw); err != nil {
				return rep, err
			}
			sums[meta.id] = meta.sum
		}
		s.byName[name] = meta.id
		s.names[meta.id] = name
		rep.Recovered++
		if meta.id >= s.nextID {
			s.nextID = meta.id + 1
		}
	}
	s.realloc = fresh
	s.data = data
	s.sums = sums
	s.crashed = false
	s.recoveries++
	s.snapshot()
	if oldArena != nil {
		_ = oldArena.Close()
	}
	return rep, nil
}

// CheckInvariants validates the whole stack: the reallocator's
// structural invariants, the name maps' mutual consistency, and — on a
// real arena — every checksummed block's payload against the bytes at
// its current extent.
func (s *Store) CheckInvariants() error {
	if s.crashed {
		return ErrCrashed
	}
	if err := s.realloc.CheckInvariants(); err != nil {
		return err
	}
	if len(s.byName) != len(s.names) {
		return fmt.Errorf("btl: name maps diverged: %d names, %d ids", len(s.byName), len(s.names))
	}
	for name, id := range s.byName {
		if back, ok := s.names[id]; !ok || back != name {
			return fmt.Errorf("btl: id %d maps to %q, not %q", id, back, name)
		}
		ext, ok := s.realloc.Extent(id)
		if !ok {
			return fmt.Errorf("btl: block %q has no extent", name)
		}
		if sum, ok := s.sums[id]; ok && s.realloc.Space().HasData() {
			raw := s.realloc.Space().Data().Bytes(ext.Start, ext.Size)
			if crc64.Checksum(raw, crcTable) != sum {
				return fmt.Errorf("btl: block %q fails its checksum at %v", name, ext)
			}
		}
	}
	return nil
}

// Close releases the store's arena and (durable mode) WAL handles. A
// closed store must not be used further.
func (s *Store) Close() error {
	var first error
	if s.data != nil {
		if err := s.data.Close(); err != nil {
			first = err
		}
		s.data = nil
	}
	if s.walF != nil {
		if err := s.walF.Close(); err != nil && first == nil {
			first = err
		}
		s.walF = nil
		s.w = nil
	}
	return first
}
