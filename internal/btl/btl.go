// Package btl implements the block translation layer of a write-optimized
// database (the TokuDB-style setting of Sections 1 and 3.1): logical block
// names map to physical extents managed by a checkpointed cost-oblivious
// reallocator.
//
// The layer demonstrates why the checkpoint rule exists. Moving a block
// updates the in-memory translation map, but the durable copy of the map
// is only written at checkpoints; until then the block's data must survive
// at its old address too. The substrate enforces exactly that (space freed
// since the last checkpoint cannot be rewritten), so recovering from a
// crash with the last durable map always finds intact data.
package btl

import (
	"errors"
	"fmt"
	"hash/crc64"

	"realloc/internal/addrspace"
	"realloc/internal/arena"
	"realloc/internal/core"
	"realloc/internal/trace"
)

// crcTable is the checksum polynomial for block payload verification.
var crcTable = crc64.MakeTable(crc64.ECMA)

// Errors reported by the store.
var (
	ErrExists   = errors.New("btl: block already exists")
	ErrNotFound = errors.New("btl: no such block")
	ErrCrashed  = errors.New("btl: store is crashed; call Recover")
)

// Store is a crash-consistent block store.
type Store struct {
	realloc *core.Reallocator
	variant core.Variant
	tap     trace.Recorder // caller's recorder, preserved across recoveries

	byName map[string]addrspace.ID
	names  map[addrspace.ID]string
	nextID addrspace.ID
	// sums holds the payload checksum of every block written through the
	// bytes-taking Put, keyed by id; blocks a payload was never stored
	// for (Reserve, or a metered backend) have no entry. A block's bytes
	// never change after Put (Update allocates a fresh id), so one
	// checksum per id is exact.
	sums    map[addrspace.ID]uint64
	backend arena.Kind

	// durable is the translation map as of the last checkpoint: what a
	// recovery would read back from disk.
	durable map[string]blockMeta

	crashed bool

	// Counters.
	checkpoints int64
	recoveries  int64
}

// blockMeta is one durable map entry.
type blockMeta struct {
	id  addrspace.ID
	ext addrspace.Extent
	// sum is the payload checksum recorded at Put; hasSum distinguishes
	// a real zero checksum from "no payload stored".
	sum    uint64
	hasSum bool
}

// Config parameterizes a Store.
type Config struct {
	// Epsilon is the reallocator's footprint slack (default 0.25).
	Epsilon float64
	// Deamortized selects the Section 3.3 reallocator so block writes
	// never block on long flushes; default is the Section 3.2 one.
	Deamortized bool
	// Recorder taps the reallocator's event stream (may be nil).
	Recorder trace.Recorder
	// Backend selects the payload arena. The zero value (Metered) counts
	// moved volume without storing bytes; a real backend stores every
	// block's payload at its physical extent and lets Recover verify
	// checksums against the raw surviving cells.
	Backend arena.Kind
}

// ckptHook snapshots the durable map whenever the reallocator blocks on a
// checkpoint, mirroring the database writing its translation table.
type ckptHook struct {
	store *Store
	next  trace.Recorder
}

func (h *ckptHook) Record(e trace.Event) {
	if e.Kind == trace.KCheckpoint {
		h.store.snapshot()
	}
	if h.next != nil {
		h.next.Record(e)
	}
}

// New creates an empty store.
func New(cfg Config) (*Store, error) {
	if cfg.Epsilon == 0 {
		cfg.Epsilon = 0.25
	}
	s := &Store{
		byName:  make(map[string]addrspace.ID),
		names:   make(map[addrspace.ID]string),
		durable: make(map[string]blockMeta),
		sums:    make(map[addrspace.ID]uint64),
		nextID:  1,
		backend: cfg.Backend,
	}
	variant := core.Checkpointed
	if cfg.Deamortized {
		variant = core.Deamortized
	}
	s.variant = variant
	s.tap = cfg.Recorder
	data, err := arena.New(cfg.Backend)
	if err != nil {
		return nil, err
	}
	r, err := core.New(core.Config{
		Epsilon:    cfg.Epsilon,
		Variant:    variant,
		Recorder:   &ckptHook{store: s, next: cfg.Recorder},
		TrackCells: true,
		Arena:      data,
	})
	if err != nil {
		return nil, err
	}
	s.realloc = r
	return s, nil
}

// Reallocator exposes the underlying reallocator (tests, metrics).
func (s *Store) Reallocator() *core.Reallocator { return s.realloc }

// Len returns the number of live blocks.
func (s *Store) Len() int { return len(s.byName) }

// Footprint returns the largest allocated disk address.
func (s *Store) Footprint() int64 { return s.realloc.Footprint() }

// Volume returns the total live block volume.
func (s *Store) Volume() int64 { return s.realloc.Volume() }

// Checkpoints returns how many checkpoints have been taken (both
// reallocator-forced and explicit).
func (s *Store) Checkpoints() int64 { return s.checkpoints }

// Reserve creates block name with the given size and no payload — the
// cost-model path, where only the extent bookkeeping matters.
func (s *Store) Reserve(name string, size int64) error {
	if s.crashed {
		return ErrCrashed
	}
	if _, dup := s.byName[name]; dup {
		return fmt.Errorf("%w: %q", ErrExists, name)
	}
	id := s.nextID
	s.nextID++
	if err := s.realloc.Insert(id, size); err != nil {
		return err
	}
	s.byName[name] = id
	s.names[id] = name
	return nil
}

// Put creates block name holding data (size = len(data)). On a real
// backend the bytes are stored at the block's physical extent and a
// checksum is recorded, so Recover can verify the payload survived a
// crash byte for byte; under Metered the call degrades to Reserve.
func (s *Store) Put(name string, data []byte) error {
	if err := s.Reserve(name, int64(len(data))); err != nil {
		return err
	}
	id := s.byName[name]
	if !s.realloc.Space().HasData() {
		return nil
	}
	if err := s.realloc.Write(id, data); err != nil {
		return err
	}
	s.sums[id] = crc64.Checksum(data, crcTable)
	return nil
}

// Get returns a copy of block name's payload bytes. It fails unless the
// block was written through the bytes-taking Put on a real backend.
func (s *Store) Get(name string) ([]byte, error) {
	if s.crashed {
		return nil, ErrCrashed
	}
	id, ok := s.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	ext, _ := s.realloc.Extent(id)
	out := make([]byte, ext.Size)
	if _, err := s.realloc.Read(id, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Update rewrites block name at a new size, as a database does when a
// node changes after compression. The new copy is written and mapped
// before the old one is freed, so a checkpoint forced at any instant
// during the update still snapshots a live copy of the block.
func (s *Store) Update(name string, size int64) error {
	if s.crashed {
		return ErrCrashed
	}
	id, ok := s.byName[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	nid := s.nextID
	s.nextID++
	if err := s.realloc.Insert(nid, size); err != nil {
		return err
	}
	s.byName[name] = nid
	s.names[nid] = name
	delete(s.names, id)
	delete(s.sums, id)
	if err := s.realloc.Delete(id); err != nil {
		return err
	}
	return nil
}

// Drop deletes block name.
func (s *Store) Drop(name string) error {
	if s.crashed {
		return ErrCrashed
	}
	id, ok := s.byName[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if err := s.realloc.Delete(id); err != nil {
		return err
	}
	delete(s.byName, name)
	delete(s.names, id)
	delete(s.sums, id)
	return nil
}

// Lookup translates a block name to its current physical extent.
func (s *Store) Lookup(name string) (addrspace.Extent, bool) {
	if s.crashed {
		return addrspace.Extent{}, false
	}
	id, ok := s.byName[name]
	if !ok {
		return addrspace.Extent{}, false
	}
	return s.realloc.Extent(id)
}

// Checkpoint writes the translation map durably and makes all freed space
// reusable (the system-initiated checkpoint of Section 3.1).
func (s *Store) Checkpoint() {
	if s.crashed {
		return
	}
	s.realloc.Space().Checkpoint()
	s.snapshot()
}

// snapshot captures the durable translation map at a checkpoint instant.
func (s *Store) snapshot() {
	s.checkpoints++
	durable := make(map[string]blockMeta, len(s.byName))
	for name, id := range s.byName {
		if ext, ok := s.realloc.Extent(id); ok {
			meta := blockMeta{id: id, ext: ext}
			if sum, ok := s.sums[id]; ok {
				meta.sum, meta.hasSum = sum, true
			}
			durable[name] = meta
		}
	}
	s.durable = durable
}

// Crash simulates a failure: the in-memory translation map disappears;
// only the durable map and the raw cells survive.
func (s *Store) Crash() {
	s.crashed = true
	s.byName = nil
	s.names = nil
}

// RecoveryReport describes the outcome of Recover.
type RecoveryReport struct {
	Recovered int
	// Corrupt lists durable blocks whose data was overwritten — always
	// empty while the checkpoint rule holds; any entry is a durability
	// bug.
	Corrupt []string
}

// Recover rebuilds the store from the durable map after a crash. It
// verifies every durable block's data is intact at its mapped extent
// (possible precisely because space freed since that checkpoint was never
// rewritten) — on a real backend by checksumming the raw surviving cells
// against the sum recorded at Put — then reloads the blocks, payloads
// included, into a fresh reallocator over a fresh arena.
func (s *Store) Recover() (RecoveryReport, error) {
	if !s.crashed {
		return RecoveryReport{}, errors.New("btl: Recover without crash")
	}
	var rep RecoveryReport
	old := s.realloc.Space()
	for name, meta := range s.durable {
		if !old.HoldsData(meta.id, meta.ext) {
			rep.Corrupt = append(rep.Corrupt, name)
			continue
		}
		// The physical check: the bytes at the durable extent of the
		// crashed arena must still hash to the checksum recorded when the
		// block was written — the checkpoint rule is what makes this hold.
		if meta.hasSum && old.HasData() {
			raw := old.Data().Bytes(meta.ext.Start, meta.ext.Size)
			if crc64.Checksum(raw, crcTable) != meta.sum {
				rep.Corrupt = append(rep.Corrupt, name)
			}
		}
	}
	if len(rep.Corrupt) > 0 {
		return rep, fmt.Errorf("btl: %d blocks corrupted after crash", len(rep.Corrupt))
	}
	// Reload the surviving blocks into a fresh reallocator (the database
	// rewrites them as it warms up). The fresh core gets its own arena —
	// re-inserting into the crashed one would overwrite durable data
	// before it is read back.
	data, err := arena.New(s.backend)
	if err != nil {
		return rep, err
	}
	fresh, err := core.New(core.Config{
		Epsilon:    s.realloc.Epsilon(),
		Variant:    s.variant,
		Recorder:   &ckptHook{store: s, next: s.tap},
		TrackCells: true,
		Arena:      data,
	})
	if err != nil {
		return rep, err
	}
	s.byName = make(map[string]addrspace.ID, len(s.durable))
	s.names = make(map[addrspace.ID]string, len(s.durable))
	sums := make(map[addrspace.ID]uint64, len(s.durable))
	for name, meta := range s.durable {
		if err := fresh.Insert(meta.id, meta.ext.Size); err != nil {
			return rep, err
		}
		if meta.hasSum && old.HasData() {
			// Carry the payload across: read from the crashed arena at the
			// durable address, write at wherever the fresh core placed the
			// block. Later flushes keep it attached to the block.
			raw := old.Data().Bytes(meta.ext.Start, meta.ext.Size)
			if err := fresh.Write(meta.id, raw); err != nil {
				return rep, err
			}
			sums[meta.id] = meta.sum
		}
		s.byName[name] = meta.id
		s.names[meta.id] = name
		rep.Recovered++
		if meta.id >= s.nextID {
			s.nextID = meta.id + 1
		}
	}
	s.realloc = fresh
	s.sums = sums
	s.crashed = false
	s.recoveries++
	s.snapshot()
	return rep, nil
}
