package btl

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"realloc/internal/faultfs"
	"realloc/internal/telemetry"
)

// payload builds a distinctive byte pattern per name/size.
func payload(name string, size int) []byte {
	p := make([]byte, size)
	for i := range p {
		p[i] = byte(len(name)*31 + i*7)
	}
	return p
}

func TestOpenNeedsMedia(t *testing.T) {
	if _, _, err := Open(Config{}); err == nil {
		t.Fatal("Open without Dir or FS must fail")
	}
}

func TestDurableRoundTripDir(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]byte{}
	for i := 0; i < 20; i++ {
		name := fmt.Sprintf("blk%02d", i)
		want[name] = payload(name, 16+i*5)
		if err := s.Put(name, want[name]); err != nil {
			t.Fatal(err)
		}
	}
	s.Checkpoint()
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rep, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recovered != len(want) {
		t.Fatalf("recovered %d of %d", rep.Recovered, len(want))
	}
	for name, data := range want {
		got, err := s2.Get(name)
		if err != nil {
			t.Fatalf("get %q: %v", name, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("payload %q diverged after reopen", name)
		}
	}
	if err := s2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// The reopened store is a normal store: mutate, checkpoint, reopen
	// again.
	if err := s2.Put("extra", payload("extra", 33)); err != nil {
		t.Fatal(err)
	}
	if err := s2.Drop("blk00"); err != nil {
		t.Fatal(err)
	}
	s2.Checkpoint()
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, rep, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recovered != len(want) {
		t.Fatalf("second reopen recovered %d, want %d", rep.Recovered, len(want))
	}
	if _, err := s3.Get("blk00"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("dropped block resurrected: %v", err)
	}
	if got, err := s3.Get("extra"); err != nil || !bytes.Equal(got, payload("extra", 33)) {
		t.Fatalf("extra block: %v", err)
	}
	_ = s3.Close()
}

func TestOpenEmptyDirYieldsEmptyStore(t *testing.T) {
	s, rep, err := Open(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recovered != 0 {
		t.Fatalf("recovered %d from nothing", rep.Recovered)
	}
	if err := s.Put("a", payload("a", 8)); err != nil {
		t.Fatal(err)
	}
	_ = s.Close()
}

func TestDurableCrashLandsOnLastCheckpoint(t *testing.T) {
	fs := faultfs.NewMemFS(nil)
	s, err := New(Config{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("keep", payload("keep", 40)); err != nil {
		t.Fatal(err)
	}
	s.Checkpoint()
	// This Put's insert may force another checkpoint (durable), but the
	// payload write and its checksum record stay in the volatile tail.
	if err := s.Put("lost", payload("lost", 24)); err != nil {
		t.Fatal(err)
	}
	lastSeq := s.seq
	fs.Crash()

	s2, rep, err := Open(Config{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	// Every completed checkpoint group-fsyncs the WAL, so replay lands
	// exactly on the last one taken before the crash.
	if rep.Seq != lastSeq {
		t.Fatalf("recovered to seq %d, want %d", rep.Seq, lastSeq)
	}
	if got, err := s2.Get("keep"); err != nil || !bytes.Equal(got, payload("keep", 40)) {
		t.Fatalf("checkpointed block: %v", err)
	}
	// "lost" was placed before the last checkpoint but its payload never
	// became durable: if the placement survived, it must have been
	// recovered as unverified — never with the payload's checksum.
	if id, ok := s2.byName["lost"]; ok {
		if _, hasSum := s2.sums[id]; hasSum {
			t.Fatal("unsynced payload recovered with a checksum")
		}
	}
	if err := s2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	_ = s2.Close()
}

func TestDurableCrashRecoverInPlace(t *testing.T) {
	fs := faultfs.NewMemFS(nil)
	tel := &telemetry.Set{}
	s, err := New(Config{FS: fs, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", payload("a", 12)); err != nil {
		t.Fatal(err)
	}
	s.Checkpoint()

	// Same-store recovery: Crash marks the process dead, fs.Crash kills
	// the media's volatile state, Recover reads the media back.
	s.Crash()
	fs.Crash()
	rep, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recovered != 1 || rep.Seq == 0 {
		t.Fatalf("report: %+v", rep)
	}
	if got, err := s.Get("a"); err != nil || !bytes.Equal(got, payload("a", 12)) {
		t.Fatalf("after in-place recovery: %v", err)
	}
	// Recover-then-reuse: the recovered store keeps working.
	if err := s.Put("b", payload("b", 9)); err != nil {
		t.Fatal(err)
	}
	s.Checkpoint()
	s.Crash()
	fs.Crash()
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("len after second recovery: %d", s.Len())
	}
	var rec, fsync telemetry.HistSnapshot
	tel.Recovery.AddTo(&rec)
	tel.WALFsync.AddTo(&fsync)
	if rec.Count != 2 {
		t.Fatalf("recovery durations recorded %d times, want 2", rec.Count)
	}
	if fsync.Count == 0 {
		t.Fatal("WAL fsync latencies not recorded")
	}
	_ = s.Close()
}

func TestRecoverSentinelAndCrashIdempotence(t *testing.T) {
	for _, durable := range []bool{false, true} {
		cfg := Config{}
		if durable {
			cfg.FS = faultfs.NewMemFS(nil)
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Recover before any crash: the sentinel, not a panic or a
		// silent rebuild.
		if _, err := s.Recover(); !errors.Is(err, ErrNotCrashed) {
			t.Fatalf("durable=%v: Recover without crash: %v", durable, err)
		}
		_ = s.Reserve("a", 5)
		s.Crash()
		s.Crash() // double crash is a no-op
		if err := s.Reserve("b", 5); !errors.Is(err, ErrCrashed) {
			t.Fatalf("durable=%v: op after double crash: %v", durable, err)
		}
		if _, err := s.Recover(); err != nil {
			t.Fatalf("durable=%v: recover after double crash: %v", durable, err)
		}
		if _, err := s.Recover(); !errors.Is(err, ErrNotCrashed) {
			t.Fatalf("durable=%v: second Recover: %v", durable, err)
		}
		_ = s.Close()
	}
}

func TestRecoverEmptyDurableSet(t *testing.T) {
	// Crash before the first checkpoint: the durable set is empty, and
	// recovery must yield a working empty store rather than fail.
	fs := faultfs.NewMemFS(nil)
	s, err := New(Config{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("vanishes", payload("vanishes", 10)); err != nil {
		t.Fatal(err)
	}
	s.Crash()
	fs.Crash()
	rep, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recovered != 0 {
		t.Fatalf("recovered %d from an empty durable set", rep.Recovered)
	}
	if err := s.Put("fresh", payload("fresh", 10)); err != nil {
		t.Fatal(err)
	}
	if got, err := s.Get("fresh"); err != nil || !bytes.Equal(got, payload("fresh", 10)) {
		t.Fatalf("store unusable after empty recovery: %v", err)
	}
	_ = s.Close()
}

func TestDurableStickyIOError(t *testing.T) {
	// A dropped-then-wedged media: after the injected crash fires on a
	// WAL write, every subsequent op must refuse with the latched cause.
	fs := faultfs.NewMemFS(faultfs.NewInjector(faultfs.Fault{Kind: faultfs.CrashAtWrite, N: 1}))
	s, err := New(Config{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", payload("a", 8)); err != nil {
		t.Fatal(err) // Put only buffers WAL records; no write happens yet
	}
	s.Checkpoint() // arena sync persists nothing to fault (sync path), WAL flush hits the fault
	if s.Err() == nil {
		t.Fatal("checkpoint over wedged media must latch an error")
	}
	if err := s.Put("b", payload("b", 8)); !errors.Is(err, faultfs.ErrInjectedCrash) {
		t.Fatalf("op after latched failure: %v", err)
	}
	if _, err := s.Get("a"); err == nil {
		t.Fatal("reads must also refuse after a durable failure")
	}
	// The modeled machine reboots; the store recovers from media.
	s.Crash()
	fs.Crash()
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	if s.Err() != nil {
		t.Fatalf("sticky error survived recovery: %v", s.Err())
	}
	_ = s.Close()
}

func TestDurableDeamortizedVariant(t *testing.T) {
	// Durable mode composes with the Section 3.3 core.
	dir := t.TempDir()
	s, err := New(Config{Dir: dir, Deamortized: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := s.Put(fmt.Sprintf("d%02d", i), payload("d", 10+i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Checkpoint()
	_ = s.Close()
	s2, rep, err := Open(Config{Dir: dir, Deamortized: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recovered != 30 {
		t.Fatalf("recovered %d", rep.Recovered)
	}
	_ = s2.Close()
}
