package benchfmt

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: realloc
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkChurnScaling/amortized/cells=100000         	   20000	      1719 ns/op	      11 B/op	       0 allocs/op
BenchmarkChurnScaling/amortized/cells=1000000-8      	   20000	      2823 ns/op	       8 B/op	       0 allocs/op
BenchmarkChurnScaling/deamortized/cells=1000000-16   	   20000	      4158.5 ns/op
some unrelated line
BenchmarkNot-A-Result garbage
PASS
`

func TestParseBench(t *testing.T) {
	results, err := ParseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(results), results)
	}
	r := results[0]
	if r.Name != "BenchmarkChurnScaling/amortized/cells=100000" || r.Iters != 20000 ||
		r.NsPerOp != 1719 || r.BytesPerOp != 11 || r.AllocsPerOp != 0 {
		t.Fatalf("result 0: %+v", r)
	}
	// -8 / -16 GOMAXPROCS suffixes strip; dashes inside names survive.
	if results[1].Name != "BenchmarkChurnScaling/amortized/cells=1000000" {
		t.Fatalf("result 1 name: %q", results[1].Name)
	}
	if results[2].Name != "BenchmarkChurnScaling/deamortized/cells=1000000" {
		t.Fatalf("result 2 name: %q", results[2].Name)
	}
	if results[2].BytesPerOp != -1 || results[2].AllocsPerOp != -1 {
		t.Fatalf("result 2 should have no -benchmem columns: %+v", results[2])
	}
	if ns, err := NsPerOp(results, "BenchmarkChurnScaling/deamortized/cells=1000000"); err != nil || ns != 4158.5 {
		t.Fatalf("NsPerOp: %v %v", ns, err)
	}
	if _, err := NsPerOp(results, "BenchmarkMissing"); err == nil {
		t.Fatal("missing benchmark found")
	}
	// Proc counts: absent suffix means 1 proc; -8 and -16 parse out.
	if results[0].Procs != 1 || results[1].Procs != 8 || results[2].Procs != 16 {
		t.Fatalf("procs: got %d/%d/%d, want 1/8/16",
			results[0].Procs, results[1].Procs, results[2].Procs)
	}
}

func TestSplitProcs(t *testing.T) {
	cases := map[string]struct {
		name  string
		procs int
	}{
		"BenchmarkX-8":           {"BenchmarkX", 8},
		"BenchmarkX":             {"BenchmarkX", 1},
		"BenchmarkX-8a":          {"BenchmarkX-8a", 1},
		"BenchmarkA/b=1-128":     {"BenchmarkA/b=1", 128},
		"BenchmarkTrailingDash-": {"BenchmarkTrailingDash-", 1},
	}
	for in, want := range cases {
		if name, procs := splitProcs(in); name != want.name || procs != want.procs {
			t.Errorf("splitProcs(%q) = %q, %d, want %q, %d", in, name, procs, want.name, want.procs)
		}
	}
}

// TestNsPerOpAt covers the -cpu sweep lookup the scaling gate uses: the
// same stripped name resolved at distinct proc counts.
func TestNsPerOpAt(t *testing.T) {
	sweep := `BenchmarkShardedParallel/mixed       	  30000	       800.0 ns/op
BenchmarkShardedParallel/mixed-8     	  30000	       100.0 ns/op
`
	results, err := ParseBench(strings.NewReader(sweep))
	if err != nil {
		t.Fatal(err)
	}
	one, err := NsPerOpAt(results, "BenchmarkShardedParallel/mixed", 1)
	if err != nil || one != 800 {
		t.Fatalf("at 1 proc: %v %v", one, err)
	}
	eight, err := NsPerOpAt(results, "BenchmarkShardedParallel/mixed", 8)
	if err != nil || eight != 100 {
		t.Fatalf("at 8 procs: %v %v", eight, err)
	}
	if _, err := NsPerOpAt(results, "BenchmarkShardedParallel/mixed", 4); err == nil {
		t.Fatal("missing proc count found")
	}
}

// TestMinNsPerOp covers the -count repeat lookup the batch gate uses:
// the fastest of a name's samples wins, a single sample passes through,
// and a missing name errors.
func TestMinNsPerOp(t *testing.T) {
	repeats := `BenchmarkBatchChurn/perOp    	 9000000	       250.0 ns/op
BenchmarkBatchChurn/perOp    	 9000000	       240.0 ns/op
BenchmarkBatchChurn/perOp    	 9000000	       260.0 ns/op
BenchmarkBatchChurn/batch64  	25000000	       105.0 ns/op
`
	results, err := ParseBench(strings.NewReader(repeats))
	if err != nil {
		t.Fatal(err)
	}
	if ns, err := MinNsPerOp(results, "BenchmarkBatchChurn/perOp"); err != nil || ns != 240 {
		t.Fatalf("MinNsPerOp over repeats: %v %v", ns, err)
	}
	if ns, err := MinNsPerOp(results, "BenchmarkBatchChurn/batch64"); err != nil || ns != 105 {
		t.Fatalf("MinNsPerOp single sample: %v %v", ns, err)
	}
	if _, err := MinNsPerOp(results, "BenchmarkBatchChurn/missing"); err == nil {
		t.Fatal("missing benchmark found")
	}
}

func TestCurrentManifest(t *testing.T) {
	m := CurrentManifest()
	if m.GoVersion == "" || m.GOOS == "" || m.GOARCH == "" || m.GOMAXPROCS < 1 {
		t.Fatalf("incomplete manifest: %+v", m)
	}
}
