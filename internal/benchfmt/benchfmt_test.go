package benchfmt

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: realloc
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkChurnScaling/amortized/cells=100000         	   20000	      1719 ns/op	      11 B/op	       0 allocs/op
BenchmarkChurnScaling/amortized/cells=1000000-8      	   20000	      2823 ns/op	       8 B/op	       0 allocs/op
BenchmarkChurnScaling/deamortized/cells=1000000-16   	   20000	      4158.5 ns/op
some unrelated line
BenchmarkNot-A-Result garbage
PASS
`

func TestParseBench(t *testing.T) {
	results, err := ParseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(results), results)
	}
	r := results[0]
	if r.Name != "BenchmarkChurnScaling/amortized/cells=100000" || r.Iters != 20000 ||
		r.NsPerOp != 1719 || r.BytesPerOp != 11 || r.AllocsPerOp != 0 {
		t.Fatalf("result 0: %+v", r)
	}
	// -8 / -16 GOMAXPROCS suffixes strip; dashes inside names survive.
	if results[1].Name != "BenchmarkChurnScaling/amortized/cells=1000000" {
		t.Fatalf("result 1 name: %q", results[1].Name)
	}
	if results[2].Name != "BenchmarkChurnScaling/deamortized/cells=1000000" {
		t.Fatalf("result 2 name: %q", results[2].Name)
	}
	if results[2].BytesPerOp != -1 || results[2].AllocsPerOp != -1 {
		t.Fatalf("result 2 should have no -benchmem columns: %+v", results[2])
	}
	if ns, err := NsPerOp(results, "BenchmarkChurnScaling/deamortized/cells=1000000"); err != nil || ns != 4158.5 {
		t.Fatalf("NsPerOp: %v %v", ns, err)
	}
	if _, err := NsPerOp(results, "BenchmarkMissing"); err == nil {
		t.Fatal("missing benchmark found")
	}
}

func TestStripProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkX-8":           "BenchmarkX",
		"BenchmarkX":             "BenchmarkX",
		"BenchmarkX-8a":          "BenchmarkX-8a",
		"BenchmarkA/b=1-128":     "BenchmarkA/b=1",
		"BenchmarkTrailingDash-": "BenchmarkTrailingDash-",
	}
	for in, want := range cases {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCurrentManifest(t *testing.T) {
	m := CurrentManifest()
	if m.GoVersion == "" || m.GOOS == "" || m.GOARCH == "" || m.GOMAXPROCS < 1 {
		t.Fatalf("incomplete manifest: %+v", m)
	}
}
