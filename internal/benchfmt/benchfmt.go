// Package benchfmt defines the shared schema of BENCH_<id>.json
// performance-trajectory files and parses `go test -bench` output.
//
// Two producers write these files: cmd/reallocbench (one per experiment
// run) and cmd/benchgate (one per CI benchmark-gate run). Keeping the
// schema here, with a run-level manifest pinning the environment, makes
// records from different PRs comparable: tooling can diff findings across
// a directory of BENCH_*.json files knowing which commit, Go version, and
// parallelism produced each.
package benchfmt

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Record is the schema of a BENCH_<id>.json trajectory file.
type Record struct {
	ID        string             `json:"id"`
	Title     string             `json:"title"`
	Claim     string             `json:"claim"`
	Seed      uint64             `json:"seed"`
	Ops       int                `json:"ops,omitempty"`
	Core      string             `json:"core,omitempty"`
	Backend   string             `json:"backend,omitempty"`
	Quick     bool               `json:"quick"`
	Timestamp time.Time          `json:"timestamp"`
	GoVersion string             `json:"go_version"`
	Seconds   float64            `json:"seconds"`
	Findings  map[string]float64 `json:"findings"`
	Manifest  Manifest           `json:"manifest"`
}

// Manifest pins the environment of one benchmark run.
type Manifest struct {
	GitSHA     string `json:"git_sha,omitempty"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// CurrentManifest captures the running process's environment. The commit
// comes from GITHUB_SHA (set by CI) or, failing that, from git itself;
// records written outside a repository simply omit it.
func CurrentManifest() Manifest {
	m := Manifest{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		m.GitSHA = sha
		return m
	}
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		m.GitSHA = strings.TrimSpace(string(out))
	}
	return m
}

// Result is one parsed benchmark result line.
type Result struct {
	Name        string // full name, trailing -GOMAXPROCS suffix stripped
	Procs       int    // the stripped -GOMAXPROCS suffix; 1 when absent
	Iters       int64
	NsPerOp     float64
	BytesPerOp  float64 // -1 when the line carries no -benchmem columns
	AllocsPerOp float64 // -1 when the line carries no -benchmem columns
}

// ParseBench extracts benchmark result lines ("BenchmarkX-8 N ns/op ...")
// from go test -bench output, ignoring everything else.
func ParseBench(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		name, procs := splitProcs(fields[0])
		res := Result{Name: name, Procs: procs, Iters: iters, NsPerOp: ns, BytesPerOp: -1, AllocsPerOp: -1}
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			}
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

// splitProcs splits off the trailing -N GOMAXPROCS suffix of a benchmark
// name (the name itself may contain dashes, so only a trailing all-digit
// segment goes). Results without a suffix report 1 proc, matching go
// test's convention of omitting -1. A `-cpu 1,2,4,8` sweep produces one
// Result per proc count under the same stripped Name, which is what the
// scaling gate compares.
func splitProcs(name string) (string, int) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 || i == len(name)-1 {
		return name, 1
	}
	procs, err := strconv.Atoi(name[i+1:])
	if err != nil || procs < 1 {
		return name, 1
	}
	return name[:i], procs
}

// NsPerOp finds name among results, ignoring the proc count — use
// NsPerOpAt for results of a -cpu sweep, where one name has several
// entries.
func NsPerOp(results []Result, name string) (float64, error) {
	for _, r := range results {
		if r.Name == name {
			return r.NsPerOp, nil
		}
	}
	return 0, fmt.Errorf("benchfmt: no result named %q", name)
}

// MinNsPerOp finds the fastest result for name across a -count repeat
// run. Scheduler and cache noise on shared CI runners is strictly
// additive, so the per-lane minimum is the most stable estimator for
// ratio gates — it converges on the true cost as repeats grow instead
// of wandering with the noise the way a single sample does.
func MinNsPerOp(results []Result, name string) (float64, error) {
	best, found := 0.0, false
	for _, r := range results {
		if r.Name == name && (!found || r.NsPerOp < best) {
			best, found = r.NsPerOp, true
		}
	}
	if !found {
		return 0, fmt.Errorf("benchfmt: no result named %q", name)
	}
	return best, nil
}

// NsPerOpAt finds the result for name at an exact GOMAXPROCS count.
func NsPerOpAt(results []Result, name string, procs int) (float64, error) {
	for _, r := range results {
		if r.Name == name && r.Procs == procs {
			return r.NsPerOp, nil
		}
	}
	return 0, fmt.Errorf("benchfmt: no result named %q at %d procs", name, procs)
}
