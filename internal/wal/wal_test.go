package wal

import (
	"encoding/binary"
	"errors"
	"testing"

	"realloc/internal/faultfs"
)

// logFile builds a MemFS-backed log file for tests.
func logFile(t *testing.T, inj *faultfs.Injector) (*faultfs.MemFS, faultfs.File) {
	t.Helper()
	fs := faultfs.NewMemFS(inj)
	f, err := fs.OpenFile("wal.log")
	if err != nil {
		t.Fatal(err)
	}
	return fs, f
}

func TestRoundTripReplay(t *testing.T) {
	_, f := logFile(t, nil)
	w := NewWriter(f, 0)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(w.Append(Record{Kind: KInsert, ID: 1, Start: 0, Size: 10, Name: "a"}))
	must(w.Append(Record{Kind: KSum, ID: 1, Sum: 42}))
	must(w.Append(Record{Kind: KInsert, ID: 2, Start: 10, Size: 5, Name: "b"}))
	must(w.Append(Record{Kind: KMove, ID: 1, Start: 20}))
	must(w.Append(Record{Kind: KCheckpoint, Seq: 1, ID: 7}))
	ckptEnd := w.Offset()
	must(w.Sync())
	must(w.Append(Record{Kind: KDelete, ID: 2}))
	must(w.Append(Record{Kind: KInsert, ID: 3, Start: 10, Size: 7, Name: "c"}))
	must(w.Sync())

	rep, err := Open(f)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checkpoints != 1 || rep.Seq != 1 || rep.CkptID != 7 {
		t.Fatalf("checkpoints=%d seq=%d ckptID=%d", rep.Checkpoints, rep.Seq, rep.CkptID)
	}
	if rep.CkptEnd != ckptEnd {
		t.Fatalf("CkptEnd = %d, want %d", rep.CkptEnd, ckptEnd)
	}
	if rep.Frames != 7 || rep.Tail != 2 || rep.Truncated != 0 {
		t.Fatalf("frames=%d tail=%d truncated=%d", rep.Frames, rep.Tail, rep.Truncated)
	}
	if len(rep.Blocks) != 2 {
		t.Fatalf("blocks: %v", rep.Blocks)
	}
	a := rep.Blocks[1]
	if a.Name != "a" || a.Start != 20 || a.Size != 10 || !a.HasSum || a.Sum != 42 {
		t.Fatalf("block 1: %+v", a)
	}
	if b := rep.Blocks[2]; b.Name != "b" || b.Start != 10 || b.HasSum {
		t.Fatalf("block 2: %+v", b)
	}
}

func TestReplayStopsAtTornFrame(t *testing.T) {
	fs, f := logFile(t, nil)
	w := NewWriter(f, 0)
	_ = w.Append(Record{Kind: KInsert, ID: 1, Start: 0, Size: 4, Name: "keep"})
	_ = w.Append(Record{Kind: KCheckpoint, Seq: 1})
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	clean := w.Offset()
	// A frame whose write tears mid-payload: synced header+prefix, then
	// crash. Model it by appending and syncing, then truncating the
	// volatile image is not possible through the Writer — write the torn
	// bytes directly.
	_ = w.Append(Record{Kind: KInsert, ID: 2, Start: 4, Size: 4, Name: "torn-away"})
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	full, _ := f.Size()
	if err := f.Truncate(clean + (full-clean)/2); err != nil {
		t.Fatal(err)
	}
	rep, err := Open(f)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Truncated == 0 {
		t.Fatal("torn frame not truncated")
	}
	if rep.CleanLen != clean {
		t.Fatalf("clean length %d, want %d", rep.CleanLen, clean)
	}
	if len(rep.Blocks) != 1 || rep.Blocks[1].Name != "keep" {
		t.Fatalf("blocks: %v", rep.Blocks)
	}
	// The file itself was cut back to the clean prefix.
	if sz, _ := f.Size(); sz != clean {
		t.Fatalf("file size %d after truncation, want %d", sz, clean)
	}
	_ = fs
}

func TestReplayStopsAtBitFlip(t *testing.T) {
	_, f := logFile(t, nil)
	w := NewWriter(f, 0)
	_ = w.Append(Record{Kind: KInsert, ID: 1, Start: 0, Size: 4, Name: "good"})
	_ = w.Append(Record{Kind: KCheckpoint, Seq: 1})
	firstCkptEnd := w.Offset()
	_ = w.Append(Record{Kind: KInsert, ID: 2, Start: 4, Size: 4, Name: "flipped"})
	_ = w.Append(Record{Kind: KCheckpoint, Seq: 2})
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit of the third frame.
	var b [1]byte
	if _, err := f.ReadAt(b[:], firstCkptEnd+headerSize); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x40
	if _, err := f.WriteAt(b[:], firstCkptEnd+headerSize); err != nil {
		t.Fatal(err)
	}
	rep, err := Open(f)
	if err != nil {
		t.Fatal(err)
	}
	// Replay lands on checkpoint 1: the flip invalidated everything after.
	if rep.Seq != 1 || len(rep.Blocks) != 1 {
		t.Fatalf("seq=%d blocks=%v", rep.Seq, rep.Blocks)
	}
	if rep.Truncated == 0 {
		t.Fatal("corrupt tail not truncated")
	}
}

func TestReplayEmptyAndNoCheckpoint(t *testing.T) {
	_, f := logFile(t, nil)
	rep, err := Open(f)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Blocks != nil || rep.Frames != 0 || rep.Checkpoints != 0 {
		t.Fatalf("empty log: %+v", rep)
	}
	w := NewWriter(f, rep.CleanLen)
	_ = w.Append(Record{Kind: KInsert, ID: 1, Start: 0, Size: 1, Name: "x"})
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	rep, err = Open(f)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Blocks != nil || rep.Tail != 1 {
		t.Fatalf("no-checkpoint log: %+v", rep)
	}
}

func TestReplayStopsAtSemanticCorruption(t *testing.T) {
	_, f := logFile(t, nil)
	w := NewWriter(f, 0)
	_ = w.Append(Record{Kind: KCheckpoint, Seq: 1})
	_ = w.Append(Record{Kind: KSum, ID: 42, Sum: 1}) // unknown id
	_ = w.Append(Record{Kind: KMove, ID: 99, Start: 8})
	_ = w.Append(Record{Kind: KCheckpoint, Seq: 2})
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	rep, err := Open(f)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Seq != 1 || rep.Truncated == 0 {
		t.Fatalf("seq=%d truncated=%d: semantic corruption must stop replay", rep.Seq, rep.Truncated)
	}
}

func TestWriterRetriesTransientEIO(t *testing.T) {
	_, f := logFile(t, faultfs.NewInjector(faultfs.Fault{Kind: faultfs.TransientEIO, N: 1}))
	w := NewWriter(f, 0)
	w.RetryDelay = 0
	_ = w.Append(Record{Kind: KInsert, ID: 1, Start: 0, Size: 1, Name: "x"})
	if err := w.Sync(); err != nil {
		t.Fatalf("transient EIO must be retried away: %v", err)
	}
	rep, err := Open(f)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames != 1 {
		t.Fatalf("frames=%d", rep.Frames)
	}
}

func TestWriterDoesNotRetryInjectedCrash(t *testing.T) {
	_, f := logFile(t, faultfs.NewInjector(faultfs.Fault{Kind: faultfs.CrashAtWrite, N: 1}))
	w := NewWriter(f, 0)
	w.RetryDelay = 0
	_ = w.Append(Record{Kind: KInsert, ID: 1, Start: 0, Size: 1, Name: "x"})
	if err := w.Sync(); !errors.Is(err, faultfs.ErrInjectedCrash) {
		t.Fatalf("want injected crash, got %v", err)
	}
}

func TestGroupFsyncLatencyHook(t *testing.T) {
	_, f := logFile(t, nil)
	w := NewWriter(f, 0)
	var calls int
	w.OnFsync = func(nanos int64) {
		calls++
		if nanos < 0 {
			t.Fatalf("negative fsync latency %d", nanos)
		}
	}
	_ = w.Append(Record{Kind: KCheckpoint, Seq: 1})
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("OnFsync fired %d times", calls)
	}
}

func TestOversizeNameRejected(t *testing.T) {
	_, f := logFile(t, nil)
	w := NewWriter(f, 0)
	big := make([]byte, maxName+1)
	if err := w.Append(Record{Kind: KInsert, ID: 1, Name: string(big)}); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("oversize name: %v", err)
	}
}

func TestDecodeRejectsGarbageLengths(t *testing.T) {
	// A frame header claiming a giant payload must stop the scan, not
	// allocate or slice out of bounds.
	_, f := logFile(t, nil)
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[:], 1<<30)
	if _, err := f.WriteAt(hdr[:], 0); err != nil {
		t.Fatal(err)
	}
	rep, err := Open(f)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames != 0 || rep.Truncated != headerSize {
		t.Fatalf("garbage header: %+v", rep)
	}
}
