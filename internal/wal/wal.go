// Package wal is the block store's write-ahead event log: the durable
// record of every placement decision, from which a crashed store
// rebuilds its address space.
//
// The log is a sequence of self-validating frames. Each frame is
// length-prefixed and carries a crc64 of its payload, so replay can
// walk the file front to back and stop — and truncate — at the first
// frame that is torn (a crash mid-write left a prefix) or corrupt (a
// bit flipped under it). Everything before that point is trusted;
// everything after is discarded. Four record kinds mirror the
// substrate's event stream: insert (an object's first placement, with
// its logical name and optional payload checksum), move (a flush
// relocated it), delete, and checkpoint (the durability barrier of the
// paper's model — the instant the translation map is durable).
//
// Replay rebuilds the translation table by applying records in order
// and snapshotting it at each checkpoint marker; the result is the
// table at the LAST durable checkpoint. Records after that marker are
// the tail: work the store did but never made durable, reported for
// observability and otherwise ignored — exactly the blocks the paper
// says a crash loses.
//
// The Writer buffers appends and group-fsyncs: WriteAt batches land in
// the OS (or the fault model's volatile image) per Flush, and Sync is
// the only durability barrier. Transient write errors (syscall.EIO)
// are retried with a capped backoff, because a single spurious EIO
// from a loaded disk must not wedge the store; injected hard faults
// (faultfs.ErrInjectedCrash) are never retried.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"syscall"
	"time"

	"realloc/internal/faultfs"
)

// crcTable is the frame checksum polynomial — the same ECMA polynomial
// the block layer uses for payload checksums.
var crcTable = crc64.MakeTable(crc64.ECMA)

// Kind names a record type.
type Kind uint8

const (
	// KInsert is an object's first placement.
	KInsert Kind = 1
	// KDelete removes an object.
	KDelete Kind = 2
	// KMove relocates an object to a new start address.
	KMove Kind = 3
	// KCheckpoint marks a durability barrier; Seq numbers them.
	KCheckpoint Kind = 4
	// KSum attaches a payload checksum to a live object. It is a
	// separate record from KInsert because the payload is written after
	// the placement: a checkpoint forced mid-insert must snapshot the
	// block as placed-but-unverified, not claim a checksum the arena
	// bytes cannot satisfy yet.
	KSum Kind = 5
)

func (k Kind) String() string {
	switch k {
	case KInsert:
		return "insert"
	case KDelete:
		return "delete"
	case KMove:
		return "move"
	case KCheckpoint:
		return "checkpoint"
	case KSum:
		return "sum"
	default:
		return "unknown"
	}
}

// Record is one logged event. Field use by kind:
//
//	KInsert:     ID, Start, Size, Name, Sum/HasSum
//	KDelete:     ID
//	KMove:       ID, Start (the new address)
//	KCheckpoint: Seq, ID (opaque caller metadata — the block layer
//	             stores the arena-file generation here, so replay knows
//	             which arena image the checkpointed extents refer to)
//	KSum:        ID, Sum
type Record struct {
	Kind   Kind
	ID     uint64
	Start  int64
	Size   int64
	Seq    uint64
	Sum    uint64
	HasSum bool
	Name   string
}

// Frame layout: u32 payload length | u64 crc64(payload) | payload.
const (
	headerSize = 4 + 8
	// maxFrame bounds a frame so a corrupt length prefix cannot make
	// replay allocate gigabytes: the largest legal payload is an insert
	// record with a maxName-byte name.
	maxFrame = 1 << 16
	// maxName bounds an insert record's name.
	maxName = 1 << 12
)

// Errors reported by the package.
var (
	// ErrFrameTooBig is returned by Append for a record that cannot be
	// framed (name too long).
	ErrFrameTooBig = errors.New("wal: record exceeds frame limit")
)

// appendRecord encodes r into buf (a frame payload, no header).
func appendRecord(buf []byte, r Record) ([]byte, error) {
	buf = append(buf, byte(r.Kind))
	switch r.Kind {
	case KInsert:
		if len(r.Name) > maxName {
			return nil, fmt.Errorf("%w: name of %d bytes", ErrFrameTooBig, len(r.Name))
		}
		buf = binary.LittleEndian.AppendUint64(buf, r.ID)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Start))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Size))
		buf = binary.LittleEndian.AppendUint64(buf, r.Sum)
		if r.HasSum {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(r.Name)))
		buf = append(buf, r.Name...)
	case KDelete:
		buf = binary.LittleEndian.AppendUint64(buf, r.ID)
	case KMove:
		buf = binary.LittleEndian.AppendUint64(buf, r.ID)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Start))
	case KCheckpoint:
		buf = binary.LittleEndian.AppendUint64(buf, r.Seq)
		buf = binary.LittleEndian.AppendUint64(buf, r.ID)
	case KSum:
		buf = binary.LittleEndian.AppendUint64(buf, r.ID)
		buf = binary.LittleEndian.AppendUint64(buf, r.Sum)
	default:
		return nil, fmt.Errorf("wal: unknown record kind %d", r.Kind)
	}
	return buf, nil
}

// DecodeRecord decodes one frame payload. It never panics: any
// malformed payload returns an error (the fuzz target pins this).
func DecodeRecord(p []byte) (Record, error) {
	var r Record
	if len(p) < 1 {
		return r, errors.New("wal: empty payload")
	}
	r.Kind = Kind(p[0])
	p = p[1:]
	need := func(n int) bool { return len(p) >= n }
	switch r.Kind {
	case KInsert:
		if !need(8*4 + 1 + 2) {
			return r, errors.New("wal: short insert record")
		}
		r.ID = binary.LittleEndian.Uint64(p)
		r.Start = int64(binary.LittleEndian.Uint64(p[8:]))
		r.Size = int64(binary.LittleEndian.Uint64(p[16:]))
		r.Sum = binary.LittleEndian.Uint64(p[24:])
		r.HasSum = p[32] != 0
		nameLen := int(binary.LittleEndian.Uint16(p[33:]))
		p = p[35:]
		if nameLen > maxName || len(p) != nameLen {
			return r, fmt.Errorf("wal: insert name length %d does not match payload (%d left)", nameLen, len(p))
		}
		r.Name = string(p)
		if r.Size < 0 || r.Start < 0 {
			return r, fmt.Errorf("wal: negative extent %d+%d", r.Start, r.Size)
		}
	case KDelete:
		if len(p) != 8 {
			return r, errors.New("wal: bad delete record")
		}
		r.ID = binary.LittleEndian.Uint64(p)
	case KMove:
		if len(p) != 16 {
			return r, errors.New("wal: bad move record")
		}
		r.ID = binary.LittleEndian.Uint64(p)
		r.Start = int64(binary.LittleEndian.Uint64(p[8:]))
		if r.Start < 0 {
			return r, fmt.Errorf("wal: negative move target %d", r.Start)
		}
	case KCheckpoint:
		if len(p) != 16 {
			return r, errors.New("wal: bad checkpoint record")
		}
		r.Seq = binary.LittleEndian.Uint64(p)
		r.ID = binary.LittleEndian.Uint64(p[8:])
	case KSum:
		if len(p) != 16 {
			return r, errors.New("wal: bad sum record")
		}
		r.ID = binary.LittleEndian.Uint64(p)
		r.Sum = binary.LittleEndian.Uint64(p[8:])
	default:
		return r, fmt.Errorf("wal: unknown record kind %d", byte(r.Kind))
	}
	return r, nil
}

// ---------------------------------------------------------------------
// Writer.

// Writer appends frames to a log file with group-fsync semantics:
// Append buffers, Flush writes the buffered frames in one WriteAt, and
// Sync is Flush plus the durability barrier. A Writer is not safe for
// concurrent use (the block layer serializes all access).
type Writer struct {
	f   faultfs.File
	off int64 // next write offset
	buf []byte
	// Retries and RetryDelay govern the transient-EIO retry loop:
	// attempts beyond the first, and the base backoff (doubled per
	// attempt). Tests shrink the delay to keep fault sweeps fast.
	Retries    int
	RetryDelay time.Duration
	// OnFsync, when set, observes each successful Sync's wall-clock
	// nanoseconds (the telemetry hook).
	OnFsync func(nanos int64)
}

// NewWriter appends at offset off (the clean length Open reports, or 0
// for a fresh log).
func NewWriter(f faultfs.File, off int64) *Writer {
	return &Writer{f: f, off: off, Retries: 5, RetryDelay: time.Millisecond}
}

// Offset returns where the next frame will land.
func (w *Writer) Offset() int64 { return w.off + int64(len(w.buf)) }

// Append frames one record into the group buffer.
func (w *Writer) Append(r Record) error {
	payload, err := appendRecord(nil, r)
	if err != nil {
		return err
	}
	if len(payload)+headerSize > maxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooBig, len(payload))
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[4:], crc64.Checksum(payload, crcTable))
	w.buf = append(w.buf, hdr[:]...)
	w.buf = append(w.buf, payload...)
	return nil
}

// retryWrite performs one WriteAt with the transient-EIO retry loop: a
// syscall.EIO is retried with doubling backoff, any other error is
// final. The injected-crash sentinel is explicitly never retried — a
// wedged file stays wedged.
func (w *Writer) retryWrite(p []byte, off int64) error {
	delay := w.RetryDelay
	for attempt := 0; ; attempt++ {
		_, err := w.f.WriteAt(p, off)
		if err == nil {
			return nil
		}
		if !errors.Is(err, syscall.EIO) || errors.Is(err, faultfs.ErrInjectedCrash) || attempt >= w.Retries {
			return err
		}
		if delay > 0 {
			time.Sleep(delay)
			delay *= 2
		}
	}
}

// Flush writes the buffered frames at the current offset. The bytes
// land in the OS, not on the platter — Sync is the barrier.
func (w *Writer) Flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	if err := w.retryWrite(w.buf, w.off); err != nil {
		return err
	}
	w.off += int64(len(w.buf))
	w.buf = w.buf[:0]
	return nil
}

// Sync flushes buffered frames and issues the durability barrier,
// reporting the barrier's latency to OnFsync.
func (w *Writer) Sync() error {
	if err := w.Flush(); err != nil {
		return err
	}
	t0 := time.Now()
	if err := w.f.Sync(); err != nil {
		return err
	}
	if w.OnFsync != nil {
		w.OnFsync(int64(time.Since(t0)))
	}
	return nil
}

// ---------------------------------------------------------------------
// Replay.

// Block is one entry of the replayed translation table.
type Block struct {
	Name   string
	Start  int64
	Size   int64
	Sum    uint64
	HasSum bool
}

// Replay is the outcome of Open: the durable translation table plus
// the scan's forensics.
type Replay struct {
	// Blocks is the table at the last durable checkpoint (nil map when
	// the log holds no checkpoint).
	Blocks map[uint64]Block
	// Seq is the last durable checkpoint's sequence number (0 when no
	// checkpoint was found).
	Seq uint64
	// CkptID is the last durable checkpoint record's ID field — opaque
	// caller metadata (the block layer's arena-file generation).
	CkptID uint64
	// CkptEnd is the offset just past the last durable checkpoint frame
	// (0 when no checkpoint was found). Log compaction truncates here
	// before re-logging: the tail records beyond it describe state the
	// compacted log must not replay twice.
	CkptEnd int64
	// Checkpoints counts the markers replayed.
	Checkpoints int
	// Frames counts valid frames scanned (including the tail).
	Frames int
	// Tail counts valid records after the last checkpoint marker —
	// work the store did but never made durable.
	Tail int
	// Truncated is how many bytes were cut from the log's end because
	// the first invalid frame started there (0 for a clean log).
	Truncated int64
	// CleanLen is the log length after truncation: where a Writer
	// should resume appending.
	CleanLen int64
}

// Open scans the log front to back, validates every frame, truncates
// the file at the first torn or corrupt frame, and returns the
// translation table as of the last durable checkpoint.
func Open(f faultfs.File) (*Replay, error) {
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	data := make([]byte, size)
	if size > 0 {
		if n, err := f.ReadAt(data, 0); int64(n) != size {
			return nil, fmt.Errorf("wal: short read %d of %d: %v", n, size, err)
		}
	}

	rep := &Replay{}
	cur := map[uint64]Block{}
	var off int64
scan:
	for off < size {
		rest := data[off:]
		if len(rest) < headerSize {
			break // torn header
		}
		plen := int64(binary.LittleEndian.Uint32(rest))
		if plen == 0 || plen+headerSize > maxFrame || plen+headerSize > int64(len(rest)) {
			break // corrupt length or torn payload
		}
		payload := rest[headerSize : headerSize+plen]
		if crc64.Checksum(payload, crcTable) != binary.LittleEndian.Uint64(rest[4:]) {
			break // corrupt payload
		}
		r, err := DecodeRecord(payload)
		if err != nil {
			break // structurally invalid — treat as corruption, not fatal
		}
		switch r.Kind {
		case KInsert:
			cur[r.ID] = Block{Name: r.Name, Start: r.Start, Size: r.Size, Sum: r.Sum, HasSum: r.HasSum}
		case KDelete:
			if _, ok := cur[r.ID]; !ok {
				break scan // semantic corruption: delete of an unknown id
			}
			delete(cur, r.ID)
		case KMove:
			b, ok := cur[r.ID]
			if !ok {
				break scan // semantic corruption: move of an unknown id
			}
			b.Start = r.Start
			cur[r.ID] = b
		case KSum:
			b, ok := cur[r.ID]
			if !ok {
				break scan // semantic corruption: sum for an unknown id
			}
			b.Sum, b.HasSum = r.Sum, true
			cur[r.ID] = b
		case KCheckpoint:
			snap := make(map[uint64]Block, len(cur))
			for id, b := range cur {
				snap[id] = b
			}
			rep.Blocks = snap
			rep.Seq = r.Seq
			rep.CkptID = r.ID
			rep.CkptEnd = off + headerSize + plen
			rep.Checkpoints++
			rep.Tail = -1 // reset below the per-frame increment
		}
		rep.Frames++
		rep.Tail++
		off += headerSize + plen
	}
	rep.CleanLen = off
	rep.Truncated = size - off
	if rep.Truncated > 0 {
		if err := f.Truncate(off); err != nil {
			return nil, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
	}
	return rep, nil
}
