package wal

import (
	"bytes"
	"testing"

	"realloc/internal/faultfs"
)

// FuzzWALDecode throws arbitrary bytes at the frame scanner and the
// record decoder: truncated, bit-flipped, and adversarial inputs must
// never panic, never read out of bounds, and — when the input happens
// to start with valid frames — replay exactly the clean prefix.
func FuzzWALDecode(f *testing.F) {
	// Seed with a well-formed log so the fuzzer starts from structure.
	fs := faultfs.NewMemFS(nil)
	lf, _ := fs.OpenFile("seed")
	w := NewWriter(lf, 0)
	_ = w.Append(Record{Kind: KInsert, ID: 1, Start: 0, Size: 8, Name: "a"})
	_ = w.Append(Record{Kind: KSum, ID: 1, Sum: 7})
	_ = w.Append(Record{Kind: KMove, ID: 1, Start: 16})
	_ = w.Append(Record{Kind: KCheckpoint, Seq: 1, ID: 1})
	_ = w.Append(Record{Kind: KDelete, ID: 1})
	_ = w.Sync()
	sz, _ := lf.Size()
	seed := make([]byte, sz)
	_, _ = lf.ReadAt(seed, 0)
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add(bytes.Repeat([]byte{0}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		// DecodeRecord directly on the raw input: must error or return,
		// never panic.
		_, _ = DecodeRecord(data)

		// Full replay over the input as a log file image.
		mfs := faultfs.NewMemFS(nil)
		file, err := mfs.OpenFile("fuzz")
		if err != nil {
			t.Fatal(err)
		}
		if len(data) > 0 {
			if _, err := file.WriteAt(data, 0); err != nil {
				t.Fatal(err)
			}
		}
		rep, err := Open(file)
		if err != nil {
			t.Fatalf("Open must tolerate arbitrary bytes: %v", err)
		}
		if rep.CleanLen+rep.Truncated != int64(len(data)) {
			t.Fatalf("clean %d + truncated %d != input %d", rep.CleanLen, rep.Truncated, len(data))
		}
		if sz, _ := file.Size(); sz != rep.CleanLen {
			t.Fatalf("file not truncated to clean length: %d vs %d", sz, rep.CleanLen)
		}
		// Replay of the truncated file must reproduce the same state.
		rep2, err := Open(file)
		if err != nil {
			t.Fatal(err)
		}
		if rep2.Truncated != 0 || rep2.Frames != rep.Frames || rep2.Seq != rep.Seq {
			t.Fatalf("replay of clean prefix diverged: %+v vs %+v", rep2, rep)
		}
		if len(rep2.Blocks) != len(rep.Blocks) {
			t.Fatalf("block tables diverged: %d vs %d", len(rep2.Blocks), len(rep.Blocks))
		}
	})
}
