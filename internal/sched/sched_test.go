package sched

import (
	"math/rand/v2"
	"strings"
	"testing"
)

func TestAddRemoveAndIntervals(t *testing.T) {
	p, err := New(0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AddJob(1, 10); err != nil {
		t.Fatal(err)
	}
	if err := p.AddJob(2, 20); err != nil {
		t.Fatal(err)
	}
	s1, e1, ok := p.Interval(1)
	if !ok || e1-s1 != 10 {
		t.Fatalf("job 1 interval [%d,%d) ok=%v", s1, e1, ok)
	}
	if _, _, ok := p.Interval(99); ok {
		t.Fatal("phantom job")
	}
	if p.TotalWork() != 30 || p.Jobs() != 2 {
		t.Fatalf("work=%d jobs=%d", p.TotalWork(), p.Jobs())
	}
	if p.Makespan() < 30 {
		t.Fatalf("makespan %d below total work", p.Makespan())
	}
	if err := p.RemoveJob(1); err != nil {
		t.Fatal(err)
	}
	if err := p.RemoveJob(1); err == nil {
		t.Fatal("double remove accepted")
	}
}

// TestJobsNeverOverlap: a uniprocessor runs one job at a time.
func TestJobsNeverOverlap(t *testing.T) {
	p, err := New(0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 1))
	live := []JobID{}
	next := JobID(1)
	for op := 0; op < 2000; op++ {
		if len(live) == 0 || rng.IntN(2) == 0 {
			if err := p.AddJob(next, 1+rng.Int64N(50)); err != nil {
				t.Fatal(err)
			}
			live = append(live, next)
			next++
		} else {
			i := rng.IntN(len(live))
			if err := p.RemoveJob(live[i]); err != nil {
				t.Fatal(err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		// Disjointness is enforced by the substrate; re-verify the
		// makespan bound at request boundaries.
		if w := p.TotalWork(); w > 0 {
			if r := float64(p.Makespan()) / float64(w); r > 1.5+0.01 {
				t.Fatalf("op %d: makespan ratio %v", op, r)
			}
		}
	}
}

func TestMakespanBoundTight(t *testing.T) {
	for _, eps := range []float64{0.5, 0.25, 0.1} {
		p, err := New(eps, nil)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewPCG(2, uint64(eps*100)))
		next := JobID(1)
		live := []JobID{}
		worst := 0.0
		for op := 0; op < 3000; op++ {
			if len(live) < 50 || rng.IntN(2) == 0 {
				if err := p.AddJob(next, 1+rng.Int64N(30)); err != nil {
					t.Fatal(err)
				}
				live = append(live, next)
				next++
			} else {
				i := rng.IntN(len(live))
				if err := p.RemoveJob(live[i]); err != nil {
					t.Fatal(err)
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			if w := p.TotalWork(); w > 0 {
				if r := float64(p.Makespan()) / float64(w); r > worst {
					worst = r
				}
			}
		}
		if worst > 1+eps+0.02 {
			t.Errorf("eps=%v: worst makespan ratio %v", eps, worst)
		}
	}
}

func TestGantt(t *testing.T) {
	p, err := New(0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Gantt(40); !strings.Contains(got, "empty") {
		t.Fatalf("empty gantt: %q", got)
	}
	_ = p.AddJob(1, 10)
	_ = p.AddJob(2, 5)
	out := p.Gantt(40)
	if !strings.Contains(out, "job 1") || !strings.Contains(out, "job 2") {
		t.Fatalf("gantt missing jobs:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Fatalf("gantt missing bars:\n%s", out)
	}
	if !strings.Contains(out, "makespan=") {
		t.Fatalf("gantt missing header:\n%s", out)
	}
}
