// Package sched realizes the paper's scheduling interpretation of storage
// reallocation: the problem 1|f(w) realloc|Cmax. Jobs arrive and depart
// online; the planner maintains a uniprocessor schedule (each job owns a
// time interval) whose makespan stays within (1+ε) of the total work,
// while the cost of rescheduling jobs — f(w) to move a length-w job —
// remains within O((1/ε)log(1/ε)) of the cost of scheduling each job once,
// for every subadditive f simultaneously.
//
// Time intervals are the reallocator's address extents; the makespan is
// the footprint.
package sched

import (
	"fmt"
	"sort"
	"strings"

	"realloc/internal/addrspace"
	"realloc/internal/core"
	"realloc/internal/trace"
)

// JobID names a job.
type JobID = addrspace.ID

// Planner maintains the schedule.
type Planner struct {
	r *core.Reallocator
}

// New creates a planner with makespan slack eps.
func New(eps float64, rec trace.Recorder) (*Planner, error) {
	r, err := core.New(core.Config{Epsilon: eps, Variant: core.Amortized, Recorder: rec})
	if err != nil {
		return nil, err
	}
	return &Planner{r: r}, nil
}

// AddJob schedules a job of the given length.
func (p *Planner) AddJob(id JobID, length int64) error {
	return p.r.Insert(id, length)
}

// RemoveJob unschedules a job.
func (p *Planner) RemoveJob(id JobID) error {
	return p.r.Delete(id)
}

// Interval returns the job's scheduled [start, end) time interval.
func (p *Planner) Interval(id JobID) (start, end int64, ok bool) {
	ext, ok := p.r.Extent(id)
	if !ok {
		return 0, 0, false
	}
	return ext.Start, ext.End(), true
}

// Makespan returns the latest completion time of any job.
func (p *Planner) Makespan() int64 { return p.r.Footprint() }

// TotalWork returns the sum of live job lengths — the makespan lower
// bound.
func (p *Planner) TotalWork() int64 { return p.r.Volume() }

// Jobs returns the number of scheduled jobs.
func (p *Planner) Jobs() int { return p.r.Len() }

// Gantt renders the schedule as an ASCII chart, one row per job in start
// order, compressed to the given width.
func (p *Planner) Gantt(width int) string {
	type row struct {
		id  JobID
		ext addrspace.Extent
	}
	var rows []row
	p.r.ForEach(func(id addrspace.ID, ext addrspace.Extent) {
		rows = append(rows, row{id, ext})
	})
	sort.Slice(rows, func(i, j int) bool { return rows[i].ext.Start < rows[j].ext.Start })
	span := p.Makespan()
	if span == 0 || width <= 0 {
		return "(empty schedule)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "makespan=%d work=%d jobs=%d\n", span, p.TotalWork(), len(rows))
	for _, r := range rows {
		lo := int(r.ext.Start * int64(width) / span)
		hi := int(r.ext.End() * int64(width) / span)
		if hi <= lo {
			hi = lo + 1
		}
		fmt.Fprintf(&b, "job %-6d |%s%s%s| [%d,%d)\n",
			r.id,
			strings.Repeat(".", lo),
			strings.Repeat("#", hi-lo),
			strings.Repeat(".", max(0, width-hi)),
			r.ext.Start, r.ext.End())
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
