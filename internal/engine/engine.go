// Package engine defines the pluggable reallocation-engine boundary: the
// Engine interface every core implements, the shared Variant and Core
// enums consumed by the public facade, the experiment harness, and the
// benchmark tooling, and the one factory that builds a configured engine.
//
// An Engine is one sequential reallocator: it services the paper's
// request stream (InsertObject/DeleteObject), keeps every live object
// physically placed in a private address space, and emits the trace
// events recorders price. The PODS'14 cost-oblivious reallocator
// (internal/core) is the reference implementation; internal/engine/fcs
// implements the Farach-Colton–Sheffield 2024 successor algorithm behind
// the same interface. Core selection — including the AutoSelect mode that
// probes the observed size distribution before committing — lives here,
// so the facade, the sharded front-end, and the harness all pick engines
// through one seam.
package engine

import (
	"fmt"

	"realloc/internal/addrspace"
	"realloc/internal/arena"
	"realloc/internal/core"
	"realloc/internal/engine/fcs"
	"realloc/internal/telemetry"
	"realloc/internal/trace"
)

// ID identifies an object; it is the caller's handle (the paper's "name").
type ID = addrspace.ID

// Variant selects which of the PODS'14 paper's algorithms a core runs.
// It is the one shared enum: the public realloc.Variant, the experiment
// harness, and cmd/reallocbench all consume this type (internal/core
// keeps a structurally identical private copy; TestVariantEnumDrift pins
// the two together).
type Variant int

// Available variants.
const (
	// Amortized is the Section 2 algorithm: atomic flushes, memmove-style
	// moves, no checkpoint model.
	Amortized Variant = iota
	// Checkpointed is the Section 3.2 algorithm: strictly nonoverlapping
	// moves under the checkpoint rule.
	Checkpointed
	// Deamortized is the Section 3.3 algorithm: Checkpointed plus a tail
	// buffer and update log capping per-request reallocation.
	Deamortized
)

func (v Variant) String() string {
	switch v {
	case Amortized:
		return "amortized"
	case Checkpointed:
		return "checkpointed"
	case Deamortized:
		return "deamortized"
	default:
		return "unknown"
	}
}

// ParseVariant resolves a variant name (as printed by Variant.String).
func ParseVariant(s string) (Variant, error) {
	for _, v := range []Variant{Amortized, Checkpointed, Deamortized} {
		if s == v.String() {
			return v, nil
		}
	}
	return 0, fmt.Errorf("unknown variant %q (valid: amortized, checkpointed, deamortized)", s)
}

// Core selects the reallocation algorithm family.
type Core int

// Available cores.
const (
	// PODS14 is the reference core: the Bender et al. PODS'14
	// cost-oblivious reallocator (all three variants).
	PODS14 Core = iota
	// FCS is the Farach-Colton–Sheffield 2024 successor core: size-class
	// slots with swap-with-last compaction and whole-structure rebuilds,
	// amortized O(w/ε) moved volume per size-w update (amortized only).
	FCS
	// AutoSelect probes the observed size distribution on the reference
	// core, then commits the structure to the core the distribution
	// favors (amortized only).
	AutoSelect
)

func (c Core) String() string {
	switch c {
	case PODS14:
		return "pods14"
	case FCS:
		return "fcs"
	case AutoSelect:
		return "auto"
	default:
		return "unknown"
	}
}

// ParseCore resolves a core name (as printed by Core.String).
func ParseCore(s string) (Core, error) {
	for _, c := range []Core{PODS14, FCS, AutoSelect} {
		if s == c.String() {
			return c, nil
		}
	}
	return 0, fmt.Errorf("unknown core %q (valid: pods14, fcs, auto)", s)
}

// Engine is the reallocation-engine boundary: one sequential reallocator
// servicing the request stream against a private address space. Engines
// are not safe for concurrent use; the facade layers locking and
// sharding on top.
type Engine interface {
	// Insert services 〈InsertObject, id, size〉; the object is physically
	// placed before the call returns.
	Insert(id ID, size int64) error
	// Delete services 〈DeleteObject, id〉.
	Delete(id ID) error
	// ApplyGroup services a batched op group through the same per-op
	// machinery as Insert and Delete — no algorithmic change — filling
	// errs[i] with op i's result. errs must have at least len(ops)
	// slots. The group entry lets callers amortize their own per-op
	// overhead (locking, mirror republish, telemetry) across the group.
	ApplyGroup(ops []addrspace.Op, errs []error)
	// Extent returns the object's current physical placement.
	Extent(id ID) (addrspace.Extent, bool)
	// Has reports whether id is live.
	Has(id ID) bool
	// SizeOf returns the size of object id.
	SizeOf(id ID) (int64, bool)
	// Len returns the number of live objects.
	Len() int
	// Volume returns the total live volume V.
	Volume() int64
	// Footprint returns the largest allocated address — the quantity the
	// competitive ratio bounds.
	Footprint() int64
	// StructSize returns the end of the bookkeeping structure including
	// holes and empty buffer/slot space (the conservative bound).
	StructSize() int64
	// Delta returns the largest object size seen (the paper's ∆).
	Delta() int64
	// Epsilon returns the configured footprint slack target.
	Epsilon() float64
	// Flushes returns how many flushes (or rebuilds) have run.
	Flushes() int64
	// FlushActive reports whether an incremental flush session is
	// mid-execution (always false for atomic cores).
	FlushActive() bool
	// Drain completes any in-progress incremental flush session.
	Drain() error
	// ForEach visits live objects in address order.
	ForEach(fn func(id ID, ext addrspace.Extent))
	// CheckInvariants validates the full structure.
	CheckInvariants() error
	// Kind reports which core the engine currently runs (an AutoSelect
	// engine reports the core it has committed to, PODS14 while probing).
	Kind() Core
	// Data exposes the payload backend relocations execute against.
	Data() arena.Backend
	// Write copies p into object id's payload bytes; it fails with
	// addrspace.ErrNoData unless the engine runs a real backend.
	Write(id ID, p []byte) error
	// Read copies object id's payload bytes into p, returning how many
	// bytes were copied: min(len(p), size).
	Read(id ID, p []byte) (int, error)
	// Bytes returns object id's live payload slice, aliasing backend
	// memory; it is valid only until the next mutating call.
	Bytes(id ID) ([]byte, bool)
}

// Config parameterizes New.
type Config struct {
	// Core selects the algorithm family; the zero value is PODS14.
	Core Core
	// Variant selects the PODS'14 algorithm variant; non-amortized
	// variants are rejected for cores that have no such path.
	Variant Variant
	// Epsilon is the footprint slack target in (0, 1].
	Epsilon float64
	// EpsPrime overrides the PODS'14 internal buffer fraction ε'; cores
	// without a buffer fraction ignore it.
	EpsPrime float64
	// Recorder receives the event stream; nil means trace.Null.
	Recorder trace.Recorder
	// TrackCells enables per-cell data stamps in the substrate.
	TrackCells bool
	// Paranoid re-validates every structural invariant after each request.
	Paranoid bool
	// SerialFlush forces the PODS'14 per-move reference flush path; cores
	// whose flushes are not batched ignore it.
	SerialFlush bool
	// Coordinator shares one AutoSelect decision across several engines
	// (the sharded front-end passes the same coordinator to every shard,
	// keeping per-shard engines homogeneous). Nil gives an AutoSelect
	// engine a private coordinator; ignored by concrete cores.
	Coordinator *AutoCoordinator
	// Telemetry, when non-nil, receives the core's wall-clock flush
	// timings (duration, stall, chunk, moved volume) and checkpoint
	// counts; the facade layers its own op-latency recording on top.
	Telemetry *telemetry.Set
	// Arena is the payload backend relocations execute against. Nil
	// defaults to a core-private metered backend: moved volume is
	// counted, no bytes are copied.
	Arena arena.Backend
}

// ValidateEpsilon is the one definition of the epsilon contract; every
// consumer (the public facade included) derives its message from this
// error, so the texts cannot drift.
func ValidateEpsilon(eps float64) error {
	if !(eps > 0) || eps > 1 {
		return fmt.Errorf("epsilon must be in (0, 1], got %g", eps)
	}
	return nil
}

// ValidateCore rejects values outside the enum.
func ValidateCore(c Core) error {
	if c < PODS14 || c > AutoSelect {
		return fmt.Errorf("unknown core %d (valid: pods14, fcs, auto)", int(c))
	}
	return nil
}

// ValidateVariant rejects values outside the enum.
func ValidateVariant(v Variant) error {
	if v < Amortized || v > Deamortized {
		return fmt.Errorf("unknown variant %d (valid: amortized, checkpointed, deamortized)", int(v))
	}
	return nil
}

// Supports reports whether core c implements variant v. The FCS core is
// an amortized-only algorithm (it has no checkpointed or deamortized
// path), and AutoSelect may commit to it, so both are amortized-only.
func Supports(c Core, v Variant) bool {
	if ValidateCore(c) != nil || ValidateVariant(v) != nil {
		return false
	}
	return c == PODS14 || v == Amortized
}

// ValidateCombination rejects core/variant pairs the core cannot run,
// with the canonical message the public boundary surfaces.
func ValidateCombination(c Core, v Variant) error {
	if err := ValidateCore(c); err != nil {
		return err
	}
	if err := ValidateVariant(v); err != nil {
		return err
	}
	if !Supports(c, v) {
		return fmt.Errorf("core %s does not support the %s variant (supported: amortized)", c, v)
	}
	return nil
}

// New validates cfg and builds the configured engine.
func New(cfg Config) (Engine, error) {
	if err := ValidateEpsilon(cfg.Epsilon); err != nil {
		return nil, err
	}
	if err := ValidateCombination(cfg.Core, cfg.Variant); err != nil {
		return nil, err
	}
	switch cfg.Core {
	case FCS:
		return newFCSEngine(cfg)
	case AutoSelect:
		return newAutoEngine(cfg)
	default:
		return newPODSEngine(cfg)
	}
}

// MustNew is New for tests and examples with known-good configs.
func MustNew(cfg Config) Engine {
	e, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// podsEngine adapts the reference core to the Engine interface; every
// method is the core's own, only Kind is added.
type podsEngine struct {
	*core.Reallocator
}

func (podsEngine) Kind() Core { return PODS14 }

func newPODSEngine(cfg Config) (Engine, error) {
	inner, err := core.New(core.Config{
		Epsilon:     cfg.Epsilon,
		EpsPrime:    cfg.EpsPrime,
		Variant:     core.Variant(cfg.Variant),
		Recorder:    cfg.Recorder,
		TrackCells:  cfg.TrackCells,
		Paranoid:    cfg.Paranoid,
		SerialFlush: cfg.SerialFlush,
		Telemetry:   cfg.Telemetry,
		Arena:       cfg.Arena,
	})
	if err != nil {
		return nil, err
	}
	return podsEngine{inner}, nil
}

// fcsEngine adapts the successor core.
type fcsEngine struct {
	*fcs.Reallocator
}

func (fcsEngine) Kind() Core { return FCS }

func newFCSEngine(cfg Config) (Engine, error) {
	inner, err := fcs.New(fcs.Config{
		Epsilon:    cfg.Epsilon,
		Recorder:   cfg.Recorder,
		TrackCells: cfg.TrackCells,
		Paranoid:   cfg.Paranoid,
		Telemetry:  cfg.Telemetry,
		Arena:      cfg.Arena,
	})
	if err != nil {
		return nil, err
	}
	return fcsEngine{inner}, nil
}
