package engine

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"realloc/internal/addrspace"
	"realloc/internal/arena"
	"realloc/internal/engine/fcs"
	"realloc/internal/trace"
)

// DefaultProbeOps is how many inserts an AutoSelect structure observes
// before committing to a core.
const DefaultProbeOps = 2048

// autoPushEvery is how often (in ops) an auto engine folds its local size
// histogram into the shared coordinator.
const autoPushEvery = 32

// AutoCoordinator accumulates the observed insert-size distribution
// across one or more AutoSelect engines and makes a single core decision
// for all of them. The sharded front-end hands the same coordinator to
// every shard, so per-shard engines commit to the same core (each shard
// switches lazily at its next operation, under its own lock). All methods
// are safe for concurrent use.
type AutoCoordinator struct {
	probeOps int64

	mu      sync.Mutex
	buckets [64]int64 // log2 size histogram
	count   int64
	maxSize int64

	done   atomic.Bool
	choice atomic.Int32
}

// NewAutoCoordinator creates a coordinator that decides after probeOps
// observed inserts; probeOps <= 0 means DefaultProbeOps.
func NewAutoCoordinator(probeOps int64) *AutoCoordinator {
	if probeOps <= 0 {
		probeOps = DefaultProbeOps
	}
	return &AutoCoordinator{probeOps: probeOps}
}

// Decided returns the committed core, if the probe has concluded.
func (c *AutoCoordinator) Decided() (Core, bool) {
	if !c.done.Load() {
		return PODS14, false
	}
	return Core(c.choice.Load()), true
}

// observe folds a local histogram into the global one and decides once
// the probe threshold is crossed.
func (c *AutoCoordinator) observe(buckets *[64]int64, count, maxSize int64) {
	if count == 0 || c.done.Load() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done.Load() {
		return
	}
	for i, n := range buckets {
		c.buckets[i] += n
	}
	c.count += count
	if maxSize > c.maxSize {
		c.maxSize = maxSize
	}
	if c.count >= c.probeOps {
		c.choice.Store(int32(decideCore(&c.buckets, c.count, c.maxSize)))
		c.done.Store(true)
	}
}

// decideCore picks a core from the observed size distribution. The FCS
// core's slot rounding wastes at most a factor 1+ε/4 regardless of
// sizes, but its swap-with-last delete moves an arbitrary same-class
// object — on heavy-tailed distributions the largest class dominates
// moved volume, while the PODS'14 layout keeps per-class locality. A
// compact distribution (max within ~64× of the median) favors FCS's
// strictly better amortized bound; a heavy tail keeps the reference
// core.
func decideCore(buckets *[64]int64, count, maxSize int64) Core {
	if count == 0 {
		return PODS14
	}
	var cum int64
	half := (count + 1) / 2
	p50b := 0
	for i, n := range buckets {
		cum += n
		if cum >= half {
			p50b = i
			break
		}
	}
	if bits.Len64(uint64(maxSize))-p50b <= 6 {
		return FCS
	}
	return PODS14
}

// autoEngine probes the workload on the reference core, then commits the
// structure to the coordinator's choice, migrating the live set if the
// choice is FCS. Not safe for concurrent use (the coordinator is).
type autoEngine struct {
	inner     Engine
	coord     *AutoCoordinator
	cfg       Config
	rec       trace.Recorder
	nullRec   bool
	committed bool

	// local probe state, pushed to the coordinator every autoPushEvery ops
	buckets   [64]int64
	count     int64
	maxSize   int64
	sincePush int64
}

func newAutoEngine(cfg Config) (Engine, error) {
	coord := cfg.Coordinator
	if coord == nil {
		coord = NewAutoCoordinator(0)
	}
	probeCfg := cfg
	probeCfg.Core = PODS14
	inner, err := newPODSEngine(probeCfg)
	if err != nil {
		return nil, err
	}
	rec := cfg.Recorder
	if rec == nil {
		rec = trace.Null{}
	}
	_, nullRec := rec.(trace.Null)
	return &autoEngine{
		inner: inner, coord: coord, cfg: cfg, rec: rec, nullRec: nullRec,
	}, nil
}

// checkCommit switches to the coordinator's core once it has decided.
func (a *autoEngine) checkCommit() error {
	if a.committed {
		return nil
	}
	choice, ok := a.coord.Decided()
	if !ok {
		return nil
	}
	return a.commit(choice)
}

// commit migrates the live set to the chosen core. The migration appears
// on the trace as one flush: KFlushStart, a KMove per live object (old
// address to new), KFlushEnd — so observers tracking physical addresses
// see a continuous history, and the cost meter prices the switch as
// moved volume.
func (a *autoEngine) commit(choice Core) error {
	a.committed = true
	if choice != FCS {
		return nil
	}
	// The probe engine's arena moves to the new core. Adopt re-places
	// every object at its current address and placement never clears
	// cells, so payload bytes survive the migration without a copy.
	z, err := fcs.New(fcs.Config{
		Epsilon:    a.cfg.Epsilon,
		Recorder:   a.cfg.Recorder,
		TrackCells: a.cfg.TrackCells,
		Paranoid:   a.cfg.Paranoid,
		Telemetry:  a.cfg.Telemetry,
		Arena:      a.inner.Data(),
	})
	if err != nil {
		return err
	}
	type entry struct {
		id  ID
		ext addrspace.Extent
	}
	var live []entry
	a.inner.ForEach(func(id ID, ext addrspace.Extent) {
		live = append(live, entry{id, ext})
	})
	if !a.nullRec {
		a.rec.Record(trace.Event{
			Kind: trace.KFlushStart, From: -1, Volume: a.inner.Volume(),
		})
	}
	var moved int64
	for _, e := range live {
		if err := z.Adopt(e.id, e.ext.Size, e.ext.Start); err != nil {
			return fmt.Errorf("engine: auto-select migration of %d: %w", e.id, err)
		}
		moved += e.ext.Size
	}
	if err := z.FinishAdoption(); err != nil {
		return err
	}
	if !a.nullRec {
		a.rec.Record(trace.Event{Kind: trace.KFlushEnd, Size: moved})
	}
	a.inner = fcsEngine{z}
	return nil
}

// observe records one insert size and periodically pushes the local
// histogram to the coordinator.
func (a *autoEngine) observe(size int64) error {
	a.buckets[bits.Len64(uint64(size))&63]++
	a.count++
	if size > a.maxSize {
		a.maxSize = size
	}
	a.sincePush++
	if a.sincePush < autoPushEvery {
		return nil
	}
	a.push()
	return a.checkCommit()
}

// push folds local probe state into the coordinator.
func (a *autoEngine) push() {
	a.coord.observe(&a.buckets, a.count, a.maxSize)
	a.buckets = [64]int64{}
	a.count, a.sincePush = 0, 0
}

func (a *autoEngine) Insert(id ID, size int64) error {
	if err := a.checkCommit(); err != nil {
		return err
	}
	if !a.committed {
		if err := a.observe(size); err != nil {
			return err
		}
	}
	return a.inner.Insert(id, size)
}

func (a *autoEngine) Delete(id ID) error {
	if err := a.checkCommit(); err != nil {
		return err
	}
	return a.inner.Delete(id)
}

// ApplyGroup loops the auto engine's own Insert and Delete rather than
// delegating the group wholesale: the probe must observe every insert
// size, and a coordinator decision landing mid-group must be able to
// commit (and migrate the live set) between two ops of the group,
// exactly as it would between two sequential requests.
func (a *autoEngine) ApplyGroup(ops []addrspace.Op, errs []error) {
	for i, op := range ops {
		if op.Del {
			errs[i] = a.Delete(op.ID)
		} else {
			errs[i] = a.Insert(op.ID, op.Size)
		}
	}
}

func (a *autoEngine) Extent(id ID) (addrspace.Extent, bool) { return a.inner.Extent(id) }
func (a *autoEngine) Has(id ID) bool                        { return a.inner.Has(id) }
func (a *autoEngine) SizeOf(id ID) (int64, bool)            { return a.inner.SizeOf(id) }
func (a *autoEngine) Len() int                              { return a.inner.Len() }
func (a *autoEngine) Volume() int64                         { return a.inner.Volume() }
func (a *autoEngine) Footprint() int64                      { return a.inner.Footprint() }
func (a *autoEngine) StructSize() int64                     { return a.inner.StructSize() }
func (a *autoEngine) Delta() int64                          { return a.inner.Delta() }
func (a *autoEngine) Epsilon() float64                      { return a.inner.Epsilon() }
func (a *autoEngine) Flushes() int64                        { return a.inner.Flushes() }
func (a *autoEngine) FlushActive() bool                     { return a.inner.FlushActive() }
func (a *autoEngine) Drain() error                          { return a.inner.Drain() }
func (a *autoEngine) CheckInvariants() error                { return a.inner.CheckInvariants() }
func (a *autoEngine) Data() arena.Backend                   { return a.inner.Data() }
func (a *autoEngine) Write(id ID, p []byte) error           { return a.inner.Write(id, p) }
func (a *autoEngine) Read(id ID, p []byte) (int, error)     { return a.inner.Read(id, p) }
func (a *autoEngine) Bytes(id ID) ([]byte, bool)            { return a.inner.Bytes(id) }

func (a *autoEngine) ForEach(fn func(id ID, ext addrspace.Extent)) { a.inner.ForEach(fn) }

// Kind reports the committed core — PODS14 while still probing.
func (a *autoEngine) Kind() Core { return a.inner.Kind() }
