package engine

import (
	"testing"

	"realloc/internal/trace"
	"realloc/internal/workload"
)

// contender is one engine under cross-core test, with its own metrics.
type contender struct {
	name string
	eng  Engine
	met  *trace.Metrics
}

// newContenders builds the N-way panel the oracle compares: the PODS'14
// reference in its amortized and deamortized variants, the FCS successor
// core, and the auto-selecting engine (with a small probe so it commits
// mid-workload).
func newContenders(t *testing.T, eps float64) []*contender {
	t.Helper()
	mk := func(name string, cfg Config) *contender {
		m := trace.NewMetrics()
		cfg.Epsilon = eps
		cfg.Recorder = m
		cfg.Paranoid = true
		e, err := New(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return &contender{name: name, eng: e, met: m}
	}
	return []*contender{
		mk("pods14/amortized", Config{Core: PODS14, Variant: Amortized}),
		mk("pods14/deamortized", Config{Core: PODS14, Variant: Deamortized}),
		mk("fcs", Config{Core: FCS}),
		mk("auto", Config{Core: AutoSelect, Coordinator: NewAutoCoordinator(512)}),
	}
}

// compareQuiescent drains every engine and cross-checks all externally
// observable allocation state against the reference model: the live id
// set, each object's size, and the derived aggregates. Placement
// addresses are layout policy — each core's own invariant checker vouches
// for its layout — but what the caller can observe must agree exactly.
func compareQuiescent(t *testing.T, cs []*contender, ref map[ID]int64) {
	t.Helper()
	var vol, delta int64
	for _, size := range ref {
		vol += size
		if size > delta {
			delta = size
		}
	}
	for _, c := range cs {
		if err := c.eng.Drain(); err != nil {
			t.Fatalf("%s: drain: %v", c.name, err)
		}
		if err := c.eng.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got := c.eng.Len(); got != len(ref) {
			t.Fatalf("%s: Len = %d, reference %d", c.name, got, len(ref))
		}
		if got := c.eng.Volume(); got != vol {
			t.Fatalf("%s: Volume = %d, reference %d", c.name, got, vol)
		}
		if got := c.eng.Delta(); got < delta {
			t.Fatalf("%s: Delta = %d, reference at least %d", c.name, got, delta)
		}
		for id, size := range ref {
			if !c.eng.Has(id) {
				t.Fatalf("%s: object %d missing", c.name, id)
			}
			if got, ok := c.eng.SizeOf(id); !ok || got != size {
				t.Fatalf("%s: SizeOf(%d) = %d,%v, reference %d", c.name, id, got, ok, size)
			}
			if ext, ok := c.eng.Extent(id); !ok || ext.Size != size {
				t.Fatalf("%s: Extent(%d) = %v,%v, reference size %d", c.name, id, ext, ok, size)
			}
		}
	}
}

// driveAll replays one materialized op sequence into every engine,
// tracking the reference live set, and compares at quiescent checkpoints.
func driveAll(t *testing.T, cs []*contender, ops []workload.Op, checkpointEvery int) (reqVol int64) {
	t.Helper()
	ref := map[ID]int64{}
	for i, op := range ops {
		for _, c := range cs {
			var err error
			if op.Insert {
				err = c.eng.Insert(op.ID, op.Size)
			} else {
				err = c.eng.Delete(op.ID)
			}
			if err != nil {
				t.Fatalf("%s: op %d (%+v): %v", c.name, i, op, err)
			}
		}
		if op.Insert {
			ref[op.ID] = op.Size
			reqVol += op.Size
		} else {
			reqVol += ref[op.ID]
			delete(ref, op.ID)
		}
		if (i+1)%checkpointEvery == 0 {
			compareQuiescent(t, cs, ref)
		}
	}
	compareQuiescent(t, cs, ref)
	return reqVol
}

// checkFCSCostBound asserts the successor core's headline guarantee on
// the driven workload: total moved volume within O(1/ε) of the total
// requested volume. The constant folds the swap-with-last move (≤ g per
// deleted unit) and the rebuild amortization (≤ 8(1+ε)/(3ε) per deleted
// unit), with margin.
func checkFCSCostBound(t *testing.T, c *contender, eps float64, reqVol int64) {
	t.Helper()
	bound := (10/eps + 4) * float64(reqVol)
	if got := float64(c.met.MovedVolume); got > bound {
		t.Errorf("%s: moved volume %.0f exceeds O(w/ε) budget %.0f over request volume %d",
			c.name, got, bound, reqVol)
	}
}

// TestCrossCoreDifferential is the N-way oracle of the engine boundary:
// the same uniform, zipf, and adversarial request sequences drive the
// reference variants, the FCS successor, and the auto engine, and every
// quiescent point must agree on all externally observable state while
// each core's cost stays inside its proven bound.
func TestCrossCoreDifferential(t *testing.T) {
	const eps = 0.25
	streams := []struct {
		name string
		mk   func() workload.Stream
		n    int
	}{
		{"uniform", func() workload.Stream {
			return &workload.Churn{Seed: 41, Sizes: workload.Uniform{Min: 1, Max: 64}, TargetVolume: 1 << 14}
		}, 4000},
		{"zipf", func() workload.Stream {
			return &workload.ZipfChurn{Seed: 42, Sizes: workload.Pareto{Min: 1, Max: 512, Alpha: 1.2}, TargetVolume: 1 << 14, Homes: 8}
		}, 4000},
		{"lowerbound", func() workload.Stream {
			return &workload.LowerBound{Delta: 512}
		}, 0},
		{"compaction", func() workload.Stream {
			return &workload.CompactionAdversary{Delta: 128, Bigs: 8}
		}, 0},
		{"gap", func() workload.Stream {
			return &workload.GapAdversary{Volume: 1 << 12, MaxExp: 6}
		}, 0},
	}
	for _, sc := range streams {
		t.Run(sc.name, func(t *testing.T) {
			ops := workload.Collect(sc.mk(), sc.n)
			if len(ops) == 0 {
				t.Fatal("empty op stream")
			}
			cs := newContenders(t, eps)
			reqVol := driveAll(t, cs, ops, 512)
			for _, c := range cs {
				if c.eng.Kind() == FCS {
					checkFCSCostBound(t, c, eps, reqVol)
				}
				// The footprint budget is every core's shared contract;
				// at quiescence each holds (1+ε)·V plus its additive term.
				if v, f := c.eng.Volume(), c.eng.Footprint(); v > 0 && c.eng.Kind() == FCS {
					if float64(f) > (1+eps)*float64(v) {
						t.Errorf("%s: quiescent footprint %d over (1+ε)·%d", c.name, f, v)
					}
				}
			}
		})
	}
}

// TestCrossCoreMassDelete stresses the rebuild path: fill, then delete
// in bursts down to a sliver, comparing state the whole way.
func TestCrossCoreMassDelete(t *testing.T) {
	const eps = 0.5
	var ops []workload.Op
	n := 600
	for i := 1; i <= n; i++ {
		ops = append(ops, workload.Op{Insert: true, ID: ID(i), Size: int64(i%31 + 1)})
	}
	// Delete all but every 40th object, oldest first — the surviving set
	// is sparse, so the frontier must collapse.
	for i := 1; i <= n; i++ {
		if i%40 != 0 {
			ops = append(ops, workload.Op{ID: ID(i)})
		}
	}
	cs := newContenders(t, eps)
	driveAll(t, cs, ops, 256)
	for _, c := range cs {
		if c.eng.Kind() != FCS {
			continue
		}
		v, f := c.eng.Volume(), c.eng.Footprint()
		if float64(f) > (1+eps)*float64(v) {
			t.Errorf("%s: footprint %d after mass delete, volume %d", c.name, f, v)
		}
		if c.eng.Flushes() == 0 {
			t.Errorf("%s: mass delete triggered no rebuild", c.name)
		}
	}
}

// TestCrossCoreEmptyCycle: repeatedly filling and fully emptying the
// structure must return every core to a zero footprint.
func TestCrossCoreEmptyCycle(t *testing.T) {
	cs := newContenders(t, 0.25)
	for round := 0; round < 3; round++ {
		ref := map[ID]int64{}
		for i := 1; i <= 100; i++ {
			id := ID(round*1000 + i)
			size := int64((i*7)%23 + 1)
			for _, c := range cs {
				if err := c.eng.Insert(id, size); err != nil {
					t.Fatalf("%s: %v", c.name, err)
				}
			}
			ref[id] = size
		}
		compareQuiescent(t, cs, ref)
		for id := range ref {
			for _, c := range cs {
				if err := c.eng.Delete(id); err != nil {
					t.Fatalf("%s: delete %d: %v", c.name, id, err)
				}
			}
		}
		compareQuiescent(t, cs, map[ID]int64{})
		for _, c := range cs {
			if f := c.eng.Footprint(); f != 0 {
				t.Errorf("%s: footprint %d on empty structure (round %d)", c.name, f, round)
			}
		}
	}
}
