// Package fcs implements the Farach-Colton–Sheffield successor
// reallocator ("A Nearly Quadratic Improvement for Memory Reallocation",
// 2024) behind the same substrate as the PODS'14 reference core.
//
// The algorithm trades the paper's hole-free region layout for geometric
// size classes of fixed-width slots. Object sizes are rounded up to the
// nearest slot capacity from the table cap_0 = 1, cap_{i+1} =
// max(cap_i + 1, ⌊cap_i · g⌋) with g = 1 + ε/4, so slot waste is at most
// a factor g per object. Each class keeps its occupied slots as a prefix
// of its slot list:
//
//   - Insert places the object into the class's first free slot, or
//     appends a fresh slot at the allocation frontier. No live object
//     moves.
//   - Delete frees the slot and restores the prefix invariant by moving
//     the class's last occupied object into the hole — exactly one move
//     of volume at most g·w for a size-w delete.
//   - When the frontier drifts past (1+ε)·V, a rebuild repacks every
//     slot contiguously (classes ascending). Each live object moves at
//     most twice, so a rebuild costs at most 2V moved volume — and a
//     rebuild is only reachable after Ω(ε·V) volume of deletes, because
//     fresh-slot inserts grow the frontier by at most g·w < (1+ε)·w.
//
// Together these give amortized O(w/ε) moved volume per size-w update —
// the successor paper's linear-in-1/ε regime, dropping the reference
// algorithm's O((1/ε)·log(1/ε)) factor — while the footprint stays
// within (1+ε)·V at every quiescent point. The price is slot slack: the
// structure end is a g-factor rounding above the packed volume, where
// the PODS'14 core packs payload regions hole-free.
package fcs

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"realloc/internal/addrspace"
	"realloc/internal/arena"
	"realloc/internal/telemetry"
	"realloc/internal/trace"
)

// ID identifies an object; it is the caller's handle.
type ID = addrspace.ID

// Errors reported by the reallocator.
var (
	ErrBadSize   = errors.New("fcs: object size must be >= 1")
	ErrBadID     = errors.New("fcs: object id must be non-zero")
	ErrDuplicate = errors.New("fcs: object already exists")
	ErrNotFound  = errors.New("fcs: no such object")
	ErrEpsilon   = errors.New("fcs: epsilon must be in (0, 1]")
)

// Config parameterizes New.
type Config struct {
	// Epsilon is the footprint slack target in (0, 1].
	Epsilon float64
	// Recorder receives the event stream; nil means trace.Null.
	Recorder trace.Recorder
	// TrackCells enables per-cell data stamps in the substrate.
	TrackCells bool
	// Paranoid re-validates every invariant after each request.
	Paranoid bool
	// Telemetry, when non-nil, receives rebuild timings: each rebuild is
	// one atomic flush span (duration, moved volume, a single chunk).
	Telemetry *telemetry.Set
	// Arena is the payload backend relocations execute against. Nil
	// defaults to the metered backend. Passing the previous engine's
	// arena across an AutoSelect migration adopts its bytes in place.
	Arena arena.Backend
}

// object is the bookkeeping record for one live object.
type object struct {
	size  int64
	class int // size-class index
	idx   int // slot index within the class
}

// class is one geometric size class: a list of fixed-width slots whose
// occupied entries form a prefix.
type class struct {
	starts []int64 // slot start addresses
	ids    []ID    // ids[j] is the occupant of slot j, for j < occ
	occ    int     // occupied-slot count; slots occ..len-1 are free
}

// Reallocator is the FCS successor reallocator. It is not safe for
// concurrent use.
type Reallocator struct {
	cfg     Config
	g       float64 // slot-capacity growth factor, 1 + ε/4
	space   *addrspace.Space
	rec     trace.Recorder
	nullRec bool

	objs    map[ID]*object
	caps    []int64 // cap table, extended on demand
	classes []class

	allocEnd int64 // allocation frontier: end of the highest slot ever cut
	vol      int64 // total live volume V
	delta    int64 // largest size seen (the paper's ∆)
	rebuilds int64 // full repacks run (reported as Flushes)

	// rebuild scratch, reused across rebuilds.
	planBuf []planEntry
	objPool []*object
}

// planEntry is one object's rebuild assignment.
type planEntry struct {
	id     ID
	size   int64
	cur    int64 // current start
	target int64 // packed start
}

// New creates a Reallocator.
func New(cfg Config) (*Reallocator, error) {
	if !(cfg.Epsilon > 0) || cfg.Epsilon > 1 {
		return nil, fmt.Errorf("%w: got %v", ErrEpsilon, cfg.Epsilon)
	}
	opts := addrspace.RAM()
	opts.TrackCells = cfg.TrackCells
	if cfg.Arena == nil {
		cfg.Arena, _ = arena.New(arena.Metered)
	}
	if cfg.Telemetry != nil {
		cfg.Arena.SetTiming(true)
	}
	opts.Data = cfg.Arena
	rec := cfg.Recorder
	if rec == nil {
		rec = trace.Null{}
	}
	_, nullRec := rec.(trace.Null)
	return &Reallocator{
		cfg:     cfg,
		g:       1 + cfg.Epsilon/4,
		space:   addrspace.New(opts),
		rec:     rec,
		nullRec: nullRec,
		objs:    make(map[ID]*object),
		caps:    []int64{1},
	}, nil
}

// classFor returns the smallest class whose capacity fits size, growing
// the cap table as needed.
func (r *Reallocator) classFor(size int64) int {
	for r.caps[len(r.caps)-1] < size {
		last := r.caps[len(r.caps)-1]
		next := int64(math.Floor(float64(last) * r.g))
		if next <= last {
			next = last + 1
		}
		r.caps = append(r.caps, next)
	}
	return sort.Search(len(r.caps), func(i int) bool { return r.caps[i] >= size })
}

// Volume returns the total live volume V.
func (r *Reallocator) Volume() int64 { return r.vol }

// Footprint returns the largest allocated address.
func (r *Reallocator) Footprint() int64 { return r.space.MaxEnd() }

// StructSize returns the allocation frontier: the end of the slot
// structure including free slots and rounding slack.
func (r *Reallocator) StructSize() int64 { return r.allocEnd }

// Delta returns the largest object size seen.
func (r *Reallocator) Delta() int64 { return r.delta }

// Len returns the number of live objects.
func (r *Reallocator) Len() int { return len(r.objs) }

// Flushes returns how many full rebuilds have run; rebuilds are this
// core's flush analogue.
func (r *Reallocator) Flushes() int64 { return r.rebuilds }

// FlushActive reports whether an incremental flush is mid-execution;
// rebuilds are atomic, so it is always false.
func (r *Reallocator) FlushActive() bool { return false }

// Drain completes any in-progress flush; rebuilds are atomic, so it is a
// no-op.
func (r *Reallocator) Drain() error { return nil }

// Epsilon returns the configured footprint slack target.
func (r *Reallocator) Epsilon() float64 { return r.cfg.Epsilon }

// Space exposes the substrate for tests.
func (r *Reallocator) Space() *addrspace.Space { return r.space }

// Data exposes the payload backend relocations execute against.
func (r *Reallocator) Data() arena.Backend { return r.space.Data() }

// Write copies p into object id's payload bytes (real backends only).
func (r *Reallocator) Write(id ID, p []byte) error { return r.space.WriteData(id, p) }

// Read copies object id's payload bytes into p.
func (r *Reallocator) Read(id ID, p []byte) (int, error) { return r.space.ReadData(id, p) }

// Bytes returns object id's live payload slice (valid until the next
// mutating call).
func (r *Reallocator) Bytes(id ID) ([]byte, bool) { return r.space.DataBytes(id) }

// Extent returns the object's current physical placement.
func (r *Reallocator) Extent(id ID) (addrspace.Extent, bool) {
	return r.space.Extent(id)
}

// Has reports whether id is live.
func (r *Reallocator) Has(id ID) bool {
	_, ok := r.objs[id]
	return ok
}

// SizeOf returns the size of object id.
func (r *Reallocator) SizeOf(id ID) (int64, bool) {
	if o, ok := r.objs[id]; ok {
		return o.size, true
	}
	return 0, false
}

// ForEach visits live objects in address order.
func (r *Reallocator) ForEach(fn func(id ID, ext addrspace.Extent)) {
	r.space.ForEach(fn)
}

// emit sends an event to the recorder, filling in footprint and volume.
func (r *Reallocator) emit(kind trace.Kind, id ID, size, from, to int64) {
	if r.nullRec {
		return
	}
	r.rec.Record(trace.Event{
		Kind: kind, ID: int64(id), Size: size, From: from, To: to,
		Footprint: r.space.MaxEnd(), Volume: r.vol,
	})
}

// emitOpEnd closes a request.
func (r *Reallocator) emitOpEnd() {
	if r.nullRec {
		return
	}
	r.rec.Record(trace.Event{
		Kind: trace.KOpEnd, From: r.allocEnd,
		Footprint: r.space.MaxEnd(), Volume: r.vol,
	})
}

// Insert services 〈InsertObject, id, size〉. The object lands in its
// class's first free slot, or in a fresh slot cut at the frontier; no
// live object moves.
func (r *Reallocator) Insert(id ID, size int64) error {
	if size < 1 {
		return fmt.Errorf("%w: got %d", ErrBadSize, size)
	}
	if id == 0 {
		return ErrBadID
	}
	if _, ok := r.objs[id]; ok {
		return fmt.Errorf("%w: %d", ErrDuplicate, id)
	}
	c := r.classFor(size)
	for len(r.classes) <= c {
		r.classes = append(r.classes, class{})
	}
	cl := &r.classes[c]
	if cl.occ == len(cl.starts) {
		cl.starts = append(cl.starts, r.allocEnd)
		cl.ids = append(cl.ids, 0)
		r.allocEnd += r.caps[c]
	}
	start := cl.starts[cl.occ]
	if err := r.space.Place(id, addrspace.Extent{Start: start, Size: size}); err != nil {
		return err
	}
	obj := r.takeObject()
	obj.size, obj.class, obj.idx = size, c, cl.occ
	r.objs[id] = obj
	cl.ids[cl.occ] = id
	cl.occ++
	r.vol += size
	if size > r.delta {
		r.delta = size
	}
	r.emit(trace.KInsert, id, size, 0, start)
	if err := r.maybeRebuild(); err != nil {
		return err
	}
	r.emitOpEnd()
	return r.maybeCheck()
}

// Delete services 〈DeleteObject, id〉. The class's last occupied object
// swaps into the hole, restoring the prefix invariant with one move.
func (r *Reallocator) Delete(id ID) error {
	obj, ok := r.objs[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNotFound, id)
	}
	cl := &r.classes[obj.class]
	if err := r.space.Remove(id); err != nil {
		return err
	}
	r.vol -= obj.size
	delete(r.objs, id)
	r.emit(trace.KDelete, id, obj.size, 0, 0)
	last := cl.occ - 1
	if obj.idx != last {
		moverID := cl.ids[last]
		mover := r.objs[moverID]
		from, to := cl.starts[last], cl.starts[obj.idx]
		if err := r.space.Move(moverID, to); err != nil {
			return err
		}
		mover.idx = obj.idx
		cl.ids[obj.idx] = moverID
		r.emit(trace.KMove, moverID, mover.size, from, to)
	}
	cl.ids[last] = 0
	cl.occ = last
	r.putObject(obj)
	if err := r.maybeRebuild(); err != nil {
		return err
	}
	r.emitOpEnd()
	return r.maybeCheck()
}

// overLimit reports whether the frontier has drifted past (1+ε)·V.
func (r *Reallocator) overLimit() bool {
	if r.vol == 0 {
		return r.allocEnd > 0
	}
	return float64(r.allocEnd) > (1+r.cfg.Epsilon)*float64(r.vol)
}

// maybeRebuild repacks the whole structure when the frontier exceeds the
// footprint budget. The repacked frontier is at most g·V ≤ (1+ε)·V, so
// one rebuild always restores the invariant.
func (r *Reallocator) maybeRebuild() error {
	if !r.overLimit() {
		return nil
	}
	return r.rebuild()
}

// rebuild repacks every occupied slot contiguously from address 0,
// classes ascending. Every object is first parked in the staging area
// past the old frontier, then moved to its packed slot, so no move ever
// lands on a live extent; each object moves at most twice. Objects whose
// slot does not change address stay put.
func (r *Reallocator) rebuild() error {
	plan := r.planBuf[:0]
	var cursor int64
	for c := range r.classes {
		cl := &r.classes[c]
		for j := 0; j < cl.occ; j++ {
			id := cl.ids[j]
			plan = append(plan, planEntry{
				id:     id,
				size:   r.objs[id].size,
				cur:    cl.starts[j],
				target: cursor,
			})
			cl.starts[j] = cursor
			cursor += r.caps[c]
		}
		// Free slots are forgotten; their space is reclaimed wholesale.
		cl.starts = cl.starts[:cl.occ]
		cl.ids = cl.ids[:cl.occ]
	}
	r.planBuf = plan[:0]

	r.rebuilds++
	var moved, t0 int64
	var copyMark int64
	if r.cfg.Telemetry != nil {
		t0 = telemetry.Now()
		copyMark = r.space.Data().Counters().CopyNanos
	}
	if !r.nullRec {
		r.rec.Record(trace.Event{
			Kind: trace.KFlushStart, From: int64(len(r.classes)), Volume: r.vol,
		})
	}
	staging := r.allocEnd
	for i := range plan {
		e := &plan[i]
		if e.cur == e.target {
			continue
		}
		if err := r.space.Move(e.id, staging); err != nil {
			return fmt.Errorf("fcs: rebuild staging move of %d: %w", e.id, err)
		}
		r.emit(trace.KMove, e.id, e.size, e.cur, staging)
		e.cur = staging
		staging += e.size
		moved += e.size
	}
	for i := range plan {
		e := &plan[i]
		if e.cur == e.target {
			continue
		}
		if err := r.space.Move(e.id, e.target); err != nil {
			return fmt.Errorf("fcs: rebuild packing move of %d: %w", e.id, err)
		}
		r.emit(trace.KMove, e.id, e.size, e.cur, e.target)
		moved += e.size
	}
	r.allocEnd = cursor
	if !r.nullRec {
		r.rec.Record(trace.Event{Kind: trace.KFlushEnd, Size: moved})
	}
	if tel := r.cfg.Telemetry; tel != nil {
		// A rebuild is an atomic flush: one chunk, no stall.
		el := telemetry.Now() - t0
		tel.FlushDuration.Record(el)
		tel.FlushMoved.Record(moved)
		tel.FlushChunk.Record(moved)
		c := r.space.Data().Counters()
		tel.FlushCopy.Record(c.CopyNanos - copyMark)
		tel.BytesMoved.Store(c.BytesMoved)
		if !r.nullRec {
			r.rec.Record(trace.Event{
				Kind: trace.KFlushSpan, ID: 1, Size: moved, To: el,
				Footprint: r.space.MaxEnd(), Volume: r.vol,
			})
		}
	}
	return nil
}

// Adopt ingests one live object during an engine switch: the placement
// happens exactly like Insert, but the recorder sees a KMove from the
// object's address in the previous engine, preserving address-tracking
// continuity for observers. The caller brackets the adoption stream with
// flush events and runs the rebuild check once at the end.
func (r *Reallocator) Adopt(id ID, size int64, from int64) error {
	if size < 1 {
		return fmt.Errorf("%w: got %d", ErrBadSize, size)
	}
	if id == 0 {
		return ErrBadID
	}
	if _, ok := r.objs[id]; ok {
		return fmt.Errorf("%w: %d", ErrDuplicate, id)
	}
	c := r.classFor(size)
	for len(r.classes) <= c {
		r.classes = append(r.classes, class{})
	}
	cl := &r.classes[c]
	if cl.occ == len(cl.starts) {
		cl.starts = append(cl.starts, r.allocEnd)
		cl.ids = append(cl.ids, 0)
		r.allocEnd += r.caps[c]
	}
	start := cl.starts[cl.occ]
	if err := r.space.Place(id, addrspace.Extent{Start: start, Size: size}); err != nil {
		return err
	}
	obj := r.takeObject()
	obj.size, obj.class, obj.idx = size, c, cl.occ
	r.objs[id] = obj
	cl.ids[cl.occ] = id
	cl.occ++
	r.vol += size
	if size > r.delta {
		r.delta = size
	}
	r.emit(trace.KMove, id, size, from, start)
	return nil
}

// FinishAdoption runs the rebuild check after a batch of Adopt calls.
// Pure adoption cuts only fresh slots, so the frontier is at most g·V
// and no rebuild fires; the check is kept for safety.
func (r *Reallocator) FinishAdoption() error { return r.maybeRebuild() }

// takeObject returns a recycled object record, or a fresh one.
func (r *Reallocator) takeObject() *object {
	if n := len(r.objPool); n > 0 {
		o := r.objPool[n-1]
		r.objPool = r.objPool[:n-1]
		return o
	}
	return new(object)
}

// putObject recycles a fully removed object's record.
func (r *Reallocator) putObject(o *object) {
	*o = object{}
	r.objPool = append(r.objPool, o)
}

// maybeCheck runs CheckInvariants when Paranoid is set.
func (r *Reallocator) maybeCheck() error {
	if !r.cfg.Paranoid {
		return nil
	}
	return r.CheckInvariants()
}

// CheckInvariants validates the full structure: the substrate, the slot
// geometry, the prefix invariant, and the footprint budget.
func (r *Reallocator) CheckInvariants() error {
	if err := r.space.Verify(); err != nil {
		return err
	}
	if v := r.space.Volume(); v != r.vol {
		return fmt.Errorf("fcs: volume drift: bookkeeping %d, substrate %d", r.vol, v)
	}
	if n := r.space.Len(); n != len(r.objs) {
		return fmt.Errorf("fcs: object count drift: bookkeeping %d, substrate %d", len(r.objs), n)
	}
	live := 0
	type interval struct{ start, end int64 }
	var slots []interval
	for c := range r.classes {
		cl := &r.classes[c]
		cap := r.caps[c]
		if cl.occ > len(cl.starts) {
			return fmt.Errorf("fcs: class %d: occ %d exceeds %d slots", c, cl.occ, len(cl.starts))
		}
		for j, start := range cl.starts {
			if start < 0 || start+cap > r.allocEnd {
				return fmt.Errorf("fcs: class %d slot %d [%d,%d) outside frontier %d", c, j, start, start+cap, r.allocEnd)
			}
			slots = append(slots, interval{start, start + cap})
			if j >= cl.occ {
				continue
			}
			live++
			id := cl.ids[j]
			obj, ok := r.objs[id]
			if !ok {
				return fmt.Errorf("fcs: class %d slot %d holds unknown id %d", c, j, id)
			}
			if obj.class != c || obj.idx != j {
				return fmt.Errorf("fcs: object %d thinks it is at class %d slot %d, found at class %d slot %d", id, obj.class, obj.idx, c, j)
			}
			if obj.size > cap || (c > 0 && obj.size <= r.caps[c-1]) {
				return fmt.Errorf("fcs: object %d size %d misclassified into class %d (cap %d)", id, obj.size, c, cap)
			}
			ext, ok := r.space.Extent(id)
			if !ok || ext.Start != start || ext.Size != obj.size {
				return fmt.Errorf("fcs: object %d extent %v disagrees with slot start %d size %d", id, ext, start, obj.size)
			}
		}
	}
	if live != len(r.objs) {
		return fmt.Errorf("fcs: %d objects in slots, %d registered", live, len(r.objs))
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i].start < slots[j].start })
	for i := 1; i < len(slots); i++ {
		if slots[i].start < slots[i-1].end {
			return fmt.Errorf("fcs: slots overlap: [..,%d) and [%d,..)", slots[i-1].end, slots[i].start)
		}
	}
	if r.overLimit() {
		return fmt.Errorf("fcs: frontier %d exceeds (1+%v)·%d", r.allocEnd, r.cfg.Epsilon, r.vol)
	}
	if f := r.space.MaxEnd(); f > r.allocEnd {
		return fmt.Errorf("fcs: footprint %d beyond frontier %d", f, r.allocEnd)
	}
	return nil
}
