package fcs

import "realloc/internal/addrspace"

// ApplyGroup services a batched op group through the core's own Insert
// and Delete, one per op, filling errs[i] with each op's result. The
// amortized O(w/ε) bound is per update, so it holds verbatim over any
// grouping; the group entry exists so callers can amortize their own
// per-op overhead (locks, mirror republish, telemetry stamps) across
// the group. errs must have at least len(ops) slots.
func (r *Reallocator) ApplyGroup(ops []addrspace.Op, errs []error) {
	for i, op := range ops {
		if op.Del {
			errs[i] = r.Delete(op.ID)
		} else {
			errs[i] = r.Insert(op.ID, op.Size)
		}
	}
}
