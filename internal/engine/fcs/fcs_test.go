package fcs

import (
	"math/rand/v2"
	"testing"

	"realloc/internal/trace"
)

func mustNew(t *testing.T, cfg Config) *Reallocator {
	t.Helper()
	cfg.Paranoid = true
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestConfigValidation: epsilon outside (0, 1] is rejected.
func TestConfigValidation(t *testing.T) {
	for _, eps := range []float64{0, -1, 1.5} {
		if _, err := New(Config{Epsilon: eps}); err == nil {
			t.Errorf("New(eps=%v) accepted", eps)
		}
	}
	if _, err := New(Config{Epsilon: 1}); err != nil {
		t.Errorf("New(eps=1) rejected: %v", err)
	}
}

// TestRequestValidation: bad sizes, ids, duplicates, and missing objects
// produce the package's typed errors.
func TestRequestValidation(t *testing.T) {
	r := mustNew(t, Config{Epsilon: 0.25})
	if err := r.Insert(1, 0); err == nil {
		t.Error("size 0 accepted")
	}
	if err := r.Insert(0, 5); err == nil {
		t.Error("id 0 accepted")
	}
	if err := r.Insert(1, 5); err != nil {
		t.Fatal(err)
	}
	if err := r.Insert(1, 5); err == nil {
		t.Error("duplicate insert accepted")
	}
	if err := r.Delete(99); err == nil {
		t.Error("delete of unknown id accepted")
	}
}

// TestCapsTable: slot capacities grow by at least one and at most the
// configured geometric factor, so the per-object rounding waste is
// bounded by g = 1+ε/4.
func TestCapsTable(t *testing.T) {
	r := mustNew(t, Config{Epsilon: 1}) // g = 1.25, the coarsest table
	c := r.classFor(1 << 20)
	if r.caps[0] != 1 {
		t.Fatalf("cap_0 = %d", r.caps[0])
	}
	for i := 1; i <= c; i++ {
		prev, cur := r.caps[i-1], r.caps[i]
		if cur <= prev {
			t.Fatalf("caps not increasing at %d: %d -> %d", i, prev, cur)
		}
		if float64(cur) > float64(prev)*r.g && cur != prev+1 {
			t.Fatalf("cap jump at %d: %d -> %d exceeds factor %v", i, prev, cur, r.g)
		}
	}
	// Every size maps to the minimal fitting class.
	for _, size := range []int64{1, 2, 3, 7, 100, 12345} {
		c := r.classFor(size)
		if r.caps[c] < size || (c > 0 && r.caps[c-1] >= size) {
			t.Errorf("classFor(%d) = %d (cap %d)", size, c, r.caps[c])
		}
	}
}

// TestSwapWithLast: deleting from the middle of a class moves exactly the
// class's last occupant into the hole.
func TestSwapWithLast(t *testing.T) {
	m := trace.NewMetrics()
	r := mustNew(t, Config{Epsilon: 0.25, Recorder: m})
	for i := int64(1); i <= 4; i++ {
		if err := r.Insert(ID(i), 10); err != nil {
			t.Fatal(err)
		}
	}
	holeExt, _ := r.Extent(2)
	if err := r.Delete(2); err != nil {
		t.Fatal(err)
	}
	// Object 4 (the class's last occupant) must now sit in 2's old slot.
	got, ok := r.Extent(4)
	if !ok || got.Start != holeExt.Start {
		t.Fatalf("last occupant at %v, want start %d", got, holeExt.Start)
	}
	if m.MovesTotal != 1 || m.MovedVolume != 10 {
		t.Fatalf("delete moved %d objects / %d volume, want 1/10", m.MovesTotal, m.MovedVolume)
	}
	// Deleting the last occupant (3 kept the tail slot) moves nothing.
	if err := r.Delete(3); err != nil {
		t.Fatal(err)
	}
	if m.MovesTotal != 1 {
		t.Fatalf("tail delete moved an object (total %d)", m.MovesTotal)
	}
}

// TestSlotReuse: a freed slot is reused by the next same-class insert
// without growing the frontier.
func TestSlotReuse(t *testing.T) {
	r := mustNew(t, Config{Epsilon: 0.25})
	for i := int64(1); i <= 8; i++ {
		if err := r.Insert(ID(i), 16); err != nil {
			t.Fatal(err)
		}
	}
	end := r.StructSize()
	if err := r.Delete(3); err != nil {
		t.Fatal(err)
	}
	if err := r.Insert(100, 16); err != nil {
		t.Fatal(err)
	}
	if r.StructSize() != end {
		t.Fatalf("frontier grew from %d to %d despite a free slot", end, r.StructSize())
	}
}

// TestRebuildCollapsesFrontier: deleting most of the volume forces a
// rebuild that restores footprint ≤ (1+ε)·V, and emptying the structure
// returns the frontier to zero.
func TestRebuildCollapsesFrontier(t *testing.T) {
	const eps = 0.25
	m := trace.NewMetrics()
	r := mustNew(t, Config{Epsilon: eps, Recorder: m})
	for i := int64(1); i <= 500; i++ {
		if err := r.Insert(ID(i), i%37+1); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(1); i <= 500; i++ {
		if i%25 == 0 {
			continue
		}
		if err := r.Delete(ID(i)); err != nil {
			t.Fatal(err)
		}
		if v, f := r.Volume(), r.Footprint(); v > 0 && float64(f) > (1+eps)*float64(v) {
			t.Fatalf("after delete %d: footprint %d over (1+ε)·%d", i, f, v)
		}
	}
	if r.Flushes() == 0 {
		t.Fatal("no rebuild ran")
	}
	for i := int64(25); i <= 500; i += 25 {
		if err := r.Delete(ID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if r.Footprint() != 0 || r.StructSize() != 0 {
		t.Fatalf("empty structure: footprint %d, frontier %d", r.Footprint(), r.StructSize())
	}
}

// TestAdopt: adopted objects land like inserts but trace as moves, and
// pure adoption never triggers a rebuild.
func TestAdopt(t *testing.T) {
	m := trace.NewMetrics()
	r := mustNew(t, Config{Epsilon: 0.25, Recorder: m})
	var vol int64
	for i := int64(1); i <= 100; i++ {
		size := i%13 + 1
		if err := r.Adopt(ID(i), size, 1000+i); err != nil {
			t.Fatal(err)
		}
		vol += size
	}
	if err := r.FinishAdoption(); err != nil {
		t.Fatal(err)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if r.Volume() != vol || r.Len() != 100 {
		t.Fatalf("adopted state: vol %d len %d", r.Volume(), r.Len())
	}
	if m.Inserts != 0 {
		t.Errorf("adoption recorded %d inserts; must trace as moves", m.Inserts)
	}
	if m.MovesTotal != 100 || m.MovedVolume != vol {
		t.Errorf("adoption traced %d moves / %d volume, want 100/%d", m.MovesTotal, m.MovedVolume, vol)
	}
	if r.Flushes() != 0 {
		t.Errorf("pure adoption triggered %d rebuilds", r.Flushes())
	}
}

// TestRandomizedInvariants is the core property test: a seeded random
// churn with paranoid checking after every op, asserting the footprint
// budget at every quiescent point and full state fidelity at the end.
func TestRandomizedInvariants(t *testing.T) {
	for _, eps := range []float64{0.1, 0.25, 1} {
		rng := rand.New(rand.NewPCG(7, uint64(eps*1000)))
		r := mustNew(t, Config{Epsilon: eps, TrackCells: true})
		ref := map[ID]int64{}
		var ids []ID
		next := ID(1)
		for op := 0; op < 4000; op++ {
			if len(ids) == 0 || rng.IntN(100) < 55 {
				size := int64(rng.IntN(200) + 1)
				if rng.IntN(50) == 0 {
					size *= 101
				}
				if err := r.Insert(next, size); err != nil {
					t.Fatalf("eps=%v insert: %v", eps, err)
				}
				ref[next] = size
				ids = append(ids, next)
				next++
			} else {
				i := rng.IntN(len(ids))
				id := ids[i]
				if err := r.Delete(id); err != nil {
					t.Fatalf("eps=%v delete(%d): %v", eps, id, err)
				}
				delete(ref, id)
				ids[i] = ids[len(ids)-1]
				ids = ids[:len(ids)-1]
			}
			if v, f := r.Volume(), r.Footprint(); float64(f) > (1+eps)*float64(v) {
				t.Fatalf("eps=%v op %d: footprint %d over (1+ε)·%d", eps, op, f, v)
			}
		}
		for id, size := range ref {
			ext, ok := r.Extent(id)
			if !ok || ext.Size != size {
				t.Fatalf("eps=%v: object %d lost (%v, %v)", eps, id, ext, ok)
			}
			if !r.Space().HoldsData(id, ext) {
				t.Fatalf("eps=%v: object %d data corrupted", eps, id)
			}
		}
	}
}
