package engine

import (
	"testing"
)

// FuzzCrossCore drives byte-encoded request sequences through every core
// with paranoid invariant checking, cross-checking the externally
// observable state against a reference model after the run. The byte
// encoding and seed corpus are shared verbatim with the reference core's
// FuzzReallocator (internal/core), so corpus findings transfer between
// the two targets.
//
// Run continuously with: go test -fuzz FuzzCrossCore ./internal/engine
func FuzzCrossCore(f *testing.F) {
	f.Add([]byte{0x01, 0x00, 0x42, 0x01, 0x80, 0x00})
	f.Add([]byte{0xff, 0xff, 0x00, 0x00, 0x10, 0x20, 0x30, 0x40})
	f.Add([]byte{0x07, 0x01, 0x07, 0x02, 0x87, 0x00, 0x87, 0x01})
	seed := make([]byte, 160)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		cfgs := []struct {
			name string
			cfg  Config
		}{
			{"pods14", Config{Core: PODS14, Epsilon: 0.3, Paranoid: true, TrackCells: true}},
			{"fcs", Config{Core: FCS, Epsilon: 0.3, Paranoid: true, TrackCells: true}},
			// A tiny probe makes the auto engine commit (and migrate)
			// inside even short fuzz inputs.
			{"auto", Config{Core: AutoSelect, Epsilon: 0.3, Paranoid: true, TrackCells: true,
				Coordinator: NewAutoCoordinator(32)}},
		}
		engines := make([]Engine, len(cfgs))
		for i, c := range cfgs {
			e, err := New(c.cfg)
			if err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			engines[i] = e
		}
		ref := map[ID]int64{}
		var ids []ID
		next := ID(1)
		for i := 0; i+1 < len(data); i += 2 {
			a, b := data[i], data[i+1]
			if a&0x80 == 0 || len(ids) == 0 {
				// Insert with a size derived from the low bits,
				// occasionally exploded to exercise new classes.
				size := int64(a&0x7f) + 1
				if b&0x0f == 0x0f {
					size *= 97
				}
				for j, e := range engines {
					if err := e.Insert(next, size); err != nil {
						t.Fatalf("%s: insert(%d,%d): %v", cfgs[j].name, next, size, err)
					}
				}
				ref[next] = size
				ids = append(ids, next)
				next++
			} else {
				idx := int(b) % len(ids)
				id := ids[idx]
				for j, e := range engines {
					if err := e.Delete(id); err != nil {
						t.Fatalf("%s: delete(%d): %v", cfgs[j].name, id, err)
					}
				}
				delete(ref, id)
				ids[idx] = ids[len(ids)-1]
				ids = ids[:len(ids)-1]
			}
		}
		var vol int64
		for _, size := range ref {
			vol += size
		}
		for j, e := range engines {
			name := cfgs[j].name
			if err := e.Drain(); err != nil {
				t.Fatalf("%s: drain: %v", name, err)
			}
			if err := e.CheckInvariants(); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if e.Len() != len(ref) || e.Volume() != vol {
				t.Fatalf("%s: state drift: len %d/%d, vol %d/%d", name, e.Len(), len(ref), e.Volume(), vol)
			}
			for id, size := range ref {
				ext, ok := e.Extent(id)
				if !ok || ext.Size != size {
					t.Fatalf("%s: object %d lost or resized (%v, %v)", name, id, ext, ok)
				}
			}
		}
	})
}
