package engine

import (
	"strings"
	"testing"

	"realloc/internal/core"
	"realloc/internal/trace"
)

// TestVariantEnumDrift pins the shared engine.Variant enum to the
// reference core's private copy, value by value and name by name: the
// two types must stay structurally identical, because the factory casts
// between them.
func TestVariantEnumDrift(t *testing.T) {
	pairs := []struct {
		eng Variant
		ref core.Variant
	}{
		{Amortized, core.Amortized},
		{Checkpointed, core.Checkpointed},
		{Deamortized, core.Deamortized},
	}
	for _, p := range pairs {
		if int(p.eng) != int(p.ref) {
			t.Errorf("variant value drift: engine.%v = %d, core.%v = %d", p.eng, int(p.eng), p.ref, int(p.ref))
		}
		if p.eng.String() != p.ref.String() {
			t.Errorf("variant name drift: engine %q vs core %q", p.eng, p.ref)
		}
		if core.Variant(p.eng).String() != p.eng.String() {
			t.Errorf("casting engine.%v to core.Variant changes its name", p.eng)
		}
	}
}

// TestParseRoundTrip: every enum value parses back from its String.
func TestParseRoundTrip(t *testing.T) {
	for _, v := range []Variant{Amortized, Checkpointed, Deamortized} {
		got, err := ParseVariant(v.String())
		if err != nil || got != v {
			t.Errorf("ParseVariant(%q) = %v, %v", v.String(), got, err)
		}
	}
	for _, c := range []Core{PODS14, FCS, AutoSelect} {
		got, err := ParseCore(c.String())
		if err != nil || got != c {
			t.Errorf("ParseCore(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseVariant("nope"); err == nil || !strings.Contains(err.Error(), "unknown variant") {
		t.Errorf("ParseVariant(nope) error = %v", err)
	}
	if _, err := ParseCore("nope"); err == nil || !strings.Contains(err.Error(), "unknown core") {
		t.Errorf("ParseCore(nope) error = %v", err)
	}
}

// TestSupportsMatrix: the reference core runs every variant; the
// successor and auto cores are amortized-only, and New enforces it with
// the canonical message.
func TestSupportsMatrix(t *testing.T) {
	for _, v := range []Variant{Amortized, Checkpointed, Deamortized} {
		if !Supports(PODS14, v) {
			t.Errorf("Supports(pods14, %v) = false", v)
		}
	}
	for _, c := range []Core{FCS, AutoSelect} {
		if !Supports(c, Amortized) {
			t.Errorf("Supports(%v, amortized) = false", c)
		}
		for _, v := range []Variant{Checkpointed, Deamortized} {
			if Supports(c, v) {
				t.Errorf("Supports(%v, %v) = true", c, v)
			}
			_, err := New(Config{Core: c, Variant: v, Epsilon: 0.25})
			if err == nil || !strings.Contains(err.Error(), "does not support the "+v.String()+" variant") {
				t.Errorf("New(%v, %v) error = %v, want unsupported-variant message", c, v, err)
			}
		}
	}
	if Supports(Core(99), Amortized) || Supports(PODS14, Variant(99)) {
		t.Error("Supports accepted out-of-range enum values")
	}
}

// TestNewValidation: the factory rejects out-of-range enums and bad
// epsilon with messages naming the valid values.
func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Core: Core(7), Epsilon: 0.25}); err == nil || !strings.Contains(err.Error(), "unknown core 7") {
		t.Errorf("unknown core error = %v", err)
	}
	if _, err := New(Config{Variant: Variant(7), Epsilon: 0.25}); err == nil || !strings.Contains(err.Error(), "unknown variant 7") {
		t.Errorf("unknown variant error = %v", err)
	}
	if _, err := New(Config{Epsilon: 0}); err == nil || !strings.Contains(err.Error(), "epsilon must be in (0, 1]") {
		t.Errorf("epsilon error = %v", err)
	}
}

// TestKind: each concrete engine reports its core.
func TestKind(t *testing.T) {
	if got := MustNew(Config{Epsilon: 0.25}).Kind(); got != PODS14 {
		t.Errorf("default engine Kind = %v", got)
	}
	if got := MustNew(Config{Core: FCS, Epsilon: 0.25}).Kind(); got != FCS {
		t.Errorf("fcs engine Kind = %v", got)
	}
	if got := MustNew(Config{Core: AutoSelect, Epsilon: 0.25}).Kind(); got != PODS14 {
		t.Errorf("probing auto engine Kind = %v, want pods14 before commit", got)
	}
}

// TestAutoCommitsToFCS: a compact size distribution makes the auto
// engine commit to the successor core, migrating every live object with
// its size intact and the migration visible as flush-bracketed moves.
func TestAutoCommitsToFCS(t *testing.T) {
	coord := NewAutoCoordinator(256)
	m := trace.NewMetrics()
	e := MustNew(Config{Core: AutoSelect, Epsilon: 0.25, Recorder: m, Coordinator: coord, Paranoid: true})
	sizes := map[ID]int64{}
	for i := 1; i <= 400; i++ {
		size := int64(i%16 + 1)
		if err := e.Insert(ID(i), size); err != nil {
			t.Fatal(err)
		}
		sizes[ID(i)] = size
	}
	if got := e.Kind(); got != FCS {
		t.Fatalf("auto engine Kind = %v after compact probe, want fcs", got)
	}
	var vol int64
	for id, size := range sizes {
		got, ok := e.SizeOf(id)
		if !ok || got != size {
			t.Fatalf("object %d lost or resized across migration: %d, %v", id, got, ok)
		}
		vol += size
	}
	if e.Volume() != vol || e.Len() != len(sizes) {
		t.Fatalf("migrated state: vol %d len %d, want %d/%d", e.Volume(), e.Len(), vol, len(sizes))
	}
	if m.Flushes == 0 {
		t.Error("migration emitted no flush bracket")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestAutoStaysOnPODS: a heavy-tailed distribution keeps the reference
// core.
func TestAutoStaysOnPODS(t *testing.T) {
	coord := NewAutoCoordinator(256)
	e := MustNew(Config{Core: AutoSelect, Epsilon: 0.25, Coordinator: coord, Paranoid: true})
	for i := 1; i <= 400; i++ {
		size := int64(1)
		if i%50 == 0 {
			size = 1 << 20 // far beyond 64× the median of 1
		}
		if err := e.Insert(ID(i), size); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.Kind(); got != PODS14 {
		t.Errorf("auto engine Kind = %v on heavy tail, want pods14", got)
	}
	if c, ok := coord.Decided(); !ok || c != PODS14 {
		t.Errorf("coordinator decision = %v, %v", c, ok)
	}
}

// TestSharedCoordinatorHomogeneity: engines sharing one coordinator all
// commit to the same core, even those that contributed no observations.
func TestSharedCoordinatorHomogeneity(t *testing.T) {
	coord := NewAutoCoordinator(64)
	a := MustNew(Config{Core: AutoSelect, Epsilon: 0.25, Coordinator: coord})
	b := MustNew(Config{Core: AutoSelect, Epsilon: 0.25, Coordinator: coord})
	for i := 1; i <= 128; i++ {
		if err := a.Insert(ID(i), int64(i%8+1)); err != nil {
			t.Fatal(err)
		}
	}
	if a.Kind() != FCS {
		t.Fatalf("deciding engine Kind = %v, want fcs", a.Kind())
	}
	// b has never observed an insert; its first op adopts the decision.
	if err := b.Insert(1000, 3); err != nil {
		t.Fatal(err)
	}
	if b.Kind() != FCS {
		t.Errorf("follower engine Kind = %v, want fcs via shared coordinator", b.Kind())
	}
}
