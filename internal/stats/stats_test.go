package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestWelford(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.N() != 0 {
		t.Fatal("zero value not neutral")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("n = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v", w.Mean())
	}
	// Population variance of this classic set is 4; sample variance 32/7.
	if math.Abs(w.Var()-32.0/7) > 1e-12 {
		t.Fatalf("var = %v", w.Var())
	}
	if math.Abs(w.Std()-math.Sqrt(32.0/7)) > 1e-12 {
		t.Fatalf("std = %v", w.Std())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("min/max = %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordMatchesNaive(t *testing.T) {
	err := quick.Check(func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				xs = append(xs, x)
			}
		}
		if len(xs) < 2 {
			return true
		}
		var w Welford
		var sum float64
		for _, x := range xs {
			w.Add(x)
			sum += x
		}
		mean := sum / float64(len(xs))
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		naive := ss / float64(len(xs)-1)
		scale := math.Max(1, math.Abs(naive))
		return math.Abs(w.Var()-naive)/scale < 1e-6 && math.Abs(w.Mean()-mean) < 1e-6*math.Max(1, math.Abs(mean))
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 10}, {50, 5.5}, {25, 3.25}, {-5, 1}, {120, 10},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("p%v = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
	// Input must not be mutated.
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 4, 7, 8, 1024} {
		h.Add(v)
	}
	if h.Total() != 8 {
		t.Fatalf("total = %d", h.Total())
	}
	b := h.Buckets()
	// 0 and 1 -> bucket 0; 2,3 -> bucket 1; 4,7 -> bucket 2; 8 -> 3; 1024 -> 10.
	if b[0] != 2 || b[1] != 2 || b[2] != 2 || b[3] != 1 || b[10] != 1 {
		t.Fatalf("buckets = %v", b)
	}
	if !strings.Contains(h.String(), "#") {
		t.Fatal("histogram render missing bars")
	}
}

func TestTableRender(t *testing.T) {
	tbl := NewTable("name", "value", "note")
	tbl.Row("alpha", 3.14159, "first")
	tbl.Row("a-much-longer-name", 42.0, "second")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[1], "---") {
		t.Fatalf("header/rule malformed:\n%s", out)
	}
	if !strings.Contains(out, "3.142") {
		t.Fatalf("float formatting: %s", out)
	}
	if !strings.Contains(out, "42") || strings.Contains(out, "42.000") {
		t.Fatalf("integral float should drop decimals: %s", out)
	}
	// Columns align: every line has the same prefix width for column 2.
	idx0 := strings.Index(lines[2], "3.142")
	idx1 := strings.Index(lines[3], "42")
	if idx0 != idx1 {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{1, "1"}, {1.5, "1.500"}, {1234.5678, "1234.6"}, {0.001, "0.001"}, {-3, "-3"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.v); got != c.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil, 10) != "" {
		t.Fatal("empty input should render empty")
	}
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if len([]rune(s)) != 8 {
		t.Fatalf("width = %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] >= runes[7] {
		t.Fatalf("sparkline not increasing: %q", s)
	}
	// Downsampling long input.
	long := make([]float64, 1000)
	for i := range long {
		long[i] = float64(i)
	}
	if got := len([]rune(Sparkline(long, 20))); got != 20 {
		t.Fatalf("downsampled width = %d", got)
	}
	// Flat input renders the lowest level everywhere.
	flat := Sparkline([]float64{5, 5, 5}, 3)
	for _, r := range flat {
		if r != '▁' {
			t.Fatalf("flat sparkline = %q", flat)
		}
	}
}
