// Package stats provides the small statistics and rendering helpers the
// experiment harness uses: streaming moments, percentiles, histograms, and
// fixed-width tables.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Welford accumulates mean and variance in one pass.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest sample (0 when empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest sample (0 when empty).
func (w *Welford) Max() float64 { return w.max }

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation. It copies and sorts; use for result reporting, not
// hot paths.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Histogram counts values into log2 buckets; bucket i covers [2^i, 2^(i+1)).
type Histogram struct {
	counts []int64
	total  int64
}

// Add records a value (values < 1 land in bucket 0).
func (h *Histogram) Add(v int64) {
	b := 0
	for x := v; x > 1; x >>= 1 {
		b++
	}
	for len(h.counts) <= b {
		h.counts = append(h.counts, 0)
	}
	h.counts[b]++
	h.total++
}

// Buckets returns the per-bucket counts.
func (h *Histogram) Buckets() []int64 { return h.counts }

// Total returns the number of recorded values.
func (h *Histogram) Total() int64 { return h.total }

// String renders the histogram with proportional bars.
func (h *Histogram) String() string {
	var b strings.Builder
	var max int64
	for _, c := range h.counts {
		if c > max {
			max = c
		}
	}
	for i, c := range h.counts {
		bar := 0
		if max > 0 {
			bar = int(40 * c / max)
		}
		fmt.Fprintf(&b, "[2^%-2d,2^%-2d) %8d %s\n", i, i+1, c, strings.Repeat("#", bar))
	}
	return b.String()
}

// Table renders rows with aligned columns. Build it with a header, add
// rows of cells, and render with String.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Row appends a row; cells are formatted with %v.
func (t *Table) Row(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// FormatFloat renders floats compactly: integers without decimals, small
// magnitudes with 3 significant decimals.
func FormatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e12 {
		return fmt.Sprintf("%.0f", v)
	}
	if math.Abs(v) >= 1000 {
		return fmt.Sprintf("%.1f", v)
	}
	return fmt.Sprintf("%.3f", v)
}

// String renders the table.
func (t *Table) String() string {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	rule := make([]string, len(t.header))
	for i := range rule {
		rule[i] = strings.Repeat("-", width[i])
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Sparkline renders a series as a one-line bar chart.
func Sparkline(values []float64, width int) string {
	if len(values) == 0 || width <= 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	// Downsample to width points.
	pts := make([]float64, 0, width)
	if len(values) <= width {
		pts = values
	} else {
		for i := 0; i < width; i++ {
			pts = append(pts, values[i*len(values)/width])
		}
	}
	lo, hi := pts[0], pts[0]
	for _, v := range pts {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range pts {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(levels)-1))
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}
