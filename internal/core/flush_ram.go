package core

import (
	"realloc/internal/addrspace"
	"realloc/internal/telemetry"
	"realloc/internal/trace"
)

// flushRAM executes a Section 2 buffer flush atomically. trigger is the
// not-yet-placed object whose insert forced the flush (nil when a delete's
// dummy record overflowed the buffers). Moves have memmove semantics; the
// schedule still performs at most two moves per object:
//
//  1. evacuate buffered objects to the overflow segment past the array,
//  2. compact all flushed payload objects leftward (removing holes),
//  3. expand them rightward to their final, gap-accommodating positions,
//  4. pull the buffered objects down into their payload tails.
//
// The whole schedule is built as one move plan and applied in a single
// batch (see addrspace.ApplyMoves); the observable event stream is
// identical to executing it move by move.
func (r *Reallocator) flushRAM(trigClass int, trigger *object) error {
	var t0 int64
	if r.tel != nil {
		t0 = telemetry.Now()
	}
	r.markCopy()
	r.flushes++
	b := r.boundaryClass(trigClass)
	r.rec.Record(trace.Event{Kind: trace.KFlushStart, From: int64(b), Volume: r.vol})

	lp := r.computeLayout(b)
	payload, buffered := r.flushedObjects(b, lp.suffixStart)
	lp.assignSlots(payload, buffered, trigger)

	// Step 1 targets: the overflow segment, which starts after both the
	// current suffix (which may be longer when deletes shrank the volume)
	// and the new one.
	overflow := lp.newEnd
	if cur := r.structEndCurrent(); cur > overflow {
		overflow = cur
	}
	// Plan refs: payload[i] is ref i, buffered[i] is ref len(payload)+i.
	plan := r.planBuf[:0]
	bufRef := func(i int) int32 { return int32(len(payload) + i) }
	off := overflow
	for i, o := range buffered {
		plan = append(plan, addrspace.Relocation{ID: o.id, To: off, Ref: bufRef(i)})
		off += o.size
	}
	// Step 2 targets: packed with no gaps from the suffix start. Class
	// order is preserved because payload objects arrive address-sorted.
	pos := lp.suffixStart
	for i, o := range payload {
		plan = append(plan, addrspace.Relocation{ID: o.id, To: pos, Ref: int32(i)})
		pos += o.size
	}
	// Step 3: expand rightward to final positions, largest class first and
	// right-to-left within it, so no move lands on a not-yet-moved object.
	for i := len(payload) - 1; i >= 0; i-- {
		plan = append(plan, addrspace.Relocation{ID: payload[i].id, To: payload[i].slot, Ref: int32(i)})
	}
	// Step 4: buffered objects down into their payload tails.
	for i, o := range buffered {
		plan = append(plan, addrspace.Relocation{ID: o.id, To: o.slot, Ref: bufRef(i)})
	}
	r.planBuf = plan

	maxRef := len(payload) + len(buffered)
	finalOrder := r.buildFinalOrder(&lp, payload, buffered)
	_, flushedVol, err := r.applyPlan(plan, maxRef, finalOrder, quotaAll)
	if err != nil {
		return err
	}
	for _, o := range payload {
		o.place = inPayload
	}
	for _, o := range buffered {
		o.place = inPayload
	}

	r.install(lp)

	// Finally place the triggering insert at the reserved end of its class
	// payload; this is its initial allocation, not a reallocation.
	if trigger != nil {
		if err := r.placeCkpt(trigger.id, addrspace.Extent{Start: trigger.slot, Size: trigger.size}); err != nil {
			return err
		}
		trigger.place = inPayload
	}
	r.rec.Record(trace.Event{Kind: trace.KFlushEnd, Size: flushedVol})
	if r.tel != nil {
		// An atomic flush is a single chunk with no stall: the whole
		// schedule ran inside the triggering request.
		el := telemetry.Now() - t0
		r.tel.FlushDuration.Record(el)
		r.tel.FlushMoved.Record(flushedVol)
		r.tel.FlushChunk.Record(flushedVol)
		r.recordCopy()
		r.syncCheckpoints()
		r.rec.Record(trace.Event{
			Kind: trace.KFlushSpan, ID: 1, Size: flushedVol, To: el,
			Footprint: r.space.MaxEnd(), Volume: r.vol,
		})
	}
	return nil
}
