package core

import (
	"realloc/internal/addrspace"
	"realloc/internal/trace"
)

// flushRAM executes a Section 2 buffer flush atomically. trigger is the
// not-yet-placed object whose insert forced the flush (nil when a delete's
// dummy record overflowed the buffers). Moves have memmove semantics; the
// schedule still performs at most two moves per object:
//
//  1. evacuate buffered objects to the overflow segment past the array,
//  2. compact all flushed payload objects leftward (removing holes),
//  3. expand them rightward to their final, gap-accommodating positions,
//  4. pull the buffered objects down into their payload tails.
func (r *Reallocator) flushRAM(trigClass int, trigger *object) error {
	r.flushes++
	b := r.boundaryClass(trigClass)
	r.rec.Record(trace.Event{Kind: trace.KFlushStart, From: int64(b), Volume: r.vol})
	var flushedVol int64

	lp := r.computeLayout(b)
	payload, buffered := r.flushedObjects(b)
	slots := lp.finalSlots(payload, buffered, trigger)

	// Step 1: evacuate buffered objects to the overflow segment, which
	// starts after both the current suffix (which may be longer when
	// deletes shrank the volume) and the new one.
	overflow := lp.newEnd
	if cur := r.structEndCurrent(); cur > overflow {
		overflow = cur
	}
	off := overflow
	for _, o := range buffered {
		moved, err := r.moveObj(o, off)
		if err != nil {
			return err
		}
		if moved {
			flushedVol += o.size
		}
		o.place = inOverflow
		off += o.size
	}

	// Step 2: compact payload objects leftward, packing them with no gaps
	// from the suffix start. Class order is preserved because regions are
	// visited in ascending class order and payload lists are
	// address-sorted.
	pos := lp.suffixStart
	for _, o := range payload {
		moved, err := r.moveObj(o, pos)
		if err != nil {
			return err
		}
		if moved {
			flushedVol += o.size
		}
		pos += o.size
	}

	// Step 3: expand rightward to final positions, largest class first and
	// right-to-left within it, so no move lands on a not-yet-moved object.
	for i := len(payload) - 1; i >= 0; i-- {
		o := payload[i]
		moved, err := r.moveObj(o, slots[o.id])
		if err != nil {
			return err
		}
		if moved {
			flushedVol += o.size
		}
	}

	// Step 4: place buffered objects into their payload tails.
	for _, o := range buffered {
		moved, err := r.moveObj(o, slots[o.id])
		if err != nil {
			return err
		}
		if moved {
			flushedVol += o.size
		}
		o.place = inPayload
	}
	for _, o := range payload {
		o.place = inPayload
	}

	r.install(lp)

	// Finally place the triggering insert at the reserved end of its class
	// payload; this is its initial allocation, not a reallocation.
	if trigger != nil {
		if err := r.placeCkpt(trigger.id, addrspace.Extent{Start: slots[trigger.id], Size: trigger.size}); err != nil {
			return err
		}
		trigger.place = inPayload
	}
	r.rec.Record(trace.Event{Kind: trace.KFlushEnd, Size: flushedVol})
	return nil
}
