package core

import "math/bits"

// ClassOf returns the size class of a size-w object: the unique c with
// 2^c <= w < 2^(c+1). Sizes must be >= 1; ClassOf(0) returns -1 as a
// sentinel.
func ClassOf(w int64) int {
	if w <= 0 {
		return -1
	}
	return bits.Len64(uint64(w)) - 1
}

// ClassMin returns the smallest size in class c.
func ClassMin(c int) int64 { return int64(1) << uint(c) }

// ClassMax returns the largest size in class c.
func ClassMax(c int) int64 { return int64(1)<<uint(c+1) - 1 }
