package core

import (
	"sort"

	"realloc/internal/addrspace"
)

// boundaryClass computes the flush boundary b: the maximum class such that
// every item buffered in classes >= b (tail buffer included) and the
// triggering item belong to classes >= b. Scanning regions from largest to
// smallest and lowering b as smaller-class items appear reaches the
// maximum fixed point.
func (r *Reallocator) boundaryClass(trigClass int) int {
	b := trigClass
	if t := r.tailBuf; t != nil {
		// The tail buffer follows every region, so any flush flushes it;
		// all of its items constrain b.
		for _, it := range t.items {
			if it.class < b {
				b = it.class
			}
		}
	}
	for k := len(r.regions) - 1; k >= 0 && r.regions[k].class >= b; k-- {
		for _, it := range r.regions[k].items {
			if it.class < b {
				b = it.class
			}
		}
	}
	return b
}

// layoutPlan is the computed post-flush geometry of the flushed suffix.
type layoutPlan struct {
	boundary    int
	flushIdx    int   // regions[flushIdx:] are flushed
	suffixStart int64 // where the rebuilt suffix begins
	newRegions  []*region
	newEnd      int64 // absolute end of the rebuilt suffix (payloads+buffers)
	newTailCap  int64 // deamortized: capacity of the new tail buffer
}

// computeLayout determines the new suffix geometry for a flush with
// boundary b. Classes >= b with live volume get payload V(c) and buffer
// ⌊ε'·V(c)⌋; empty classes vanish.
func (r *Reallocator) computeLayout(b int) layoutPlan {
	idx, _ := r.regionIndex(b)
	start := int64(0)
	if idx > 0 {
		start = r.regions[idx-1].end()
	}
	var classes []int
	for c, v := range r.volByClass {
		if c >= b && v > 0 {
			classes = append(classes, c)
		}
	}
	sort.Ints(classes)
	lp := layoutPlan{boundary: b, flushIdx: idx, suffixStart: start}
	pos := start
	for _, c := range classes {
		v := r.volByClass[c]
		reg := &region{
			class:    c,
			payStart: pos,
			paySize:  v,
			payLive:  v,
			bufSize:  r.bufCap(v),
		}
		pos = reg.end()
		lp.newRegions = append(lp.newRegions, reg)
	}
	lp.newEnd = pos
	if r.tailBuf != nil {
		lp.newTailCap = r.bufCap(r.vol)
	}
	return lp
}

// flushedObjects gathers the live objects involved in flushing classes
// >= b, split into payload survivors and buffered objects, each sorted by
// current address (dummies are not objects and are simply dropped). The
// trigger object, if physically placed in a buffer already, is among the
// buffered ones.
func (r *Reallocator) flushedObjects(b int) (payload, buffered []*object) {
	type placed struct {
		o     *object
		start int64
	}
	var pay, buf []placed
	for c, set := range r.objByClass {
		if c < b {
			continue
		}
		for _, o := range set {
			switch o.place {
			case inPayload:
				pay = append(pay, placed{o, r.extentOf(o).Start})
			case inBuffer:
				buf = append(buf, placed{o, r.extentOf(o).Start})
			}
		}
	}
	byStart := func(s []placed) []*object {
		sort.Slice(s, func(i, j int) bool { return s[i].start < s[j].start })
		out := make([]*object, len(s))
		for i, p := range s {
			out[i] = p.o
		}
		return out
	}
	return byStart(pay), byStart(buf)
}

// finalSlots assigns every flushed object its post-flush position:
// per class, payload survivors first (in their current relative order),
// then buffered objects, then the pending Section 2 trigger object (which
// is not yet physically placed). It returns the target start per object id.
func (lp *layoutPlan) finalSlots(payload, buffered []*object, trigger *object) map[ID]int64 {
	slots := make(map[ID]int64, len(payload)+len(buffered)+1)
	cursor := make(map[int]int64, len(lp.newRegions))
	for _, reg := range lp.newRegions {
		cursor[reg.class] = reg.payStart
	}
	assign := func(o *object) {
		pos := cursor[o.class]
		slots[o.id] = pos
		cursor[o.class] = pos + o.size
	}
	for _, o := range payload {
		assign(o)
	}
	for _, o := range buffered {
		if trigger != nil && o.id == trigger.id {
			continue // placed last within its class below
		}
		assign(o)
	}
	if trigger != nil {
		// Reserve the very end of the trigger's class payload.
		reg := lp.regionOf(trigger.class)
		slots[trigger.id] = reg.payStart + reg.paySize - trigger.size
	}
	return slots
}

// regionOf returns the new region for class c (must exist).
func (lp *layoutPlan) regionOf(c int) *region {
	for _, reg := range lp.newRegions {
		if reg.class == c {
			return reg
		}
	}
	panic("core: layout missing region for flushed class")
}

// install replaces the flushed suffix bookkeeping with the new geometry
// and resets the tail buffer. Physical object positions are the flush
// executor's responsibility.
func (r *Reallocator) install(lp layoutPlan) {
	r.regions = append(r.regions[:lp.flushIdx], lp.newRegions...)
	if r.tailBuf != nil {
		r.tailBuf = &tail{start: lp.newEnd, cap: lp.newTailCap}
	}
	r.dirty = false
}

// flushedBufferSpace returns B: the total buffer capacity of the flushed
// suffix, tail included.
func (r *Reallocator) flushedBufferSpace(flushIdx int) int64 {
	var b int64
	for _, reg := range r.regions[flushIdx:] {
		b += reg.bufSize
	}
	if r.tailBuf != nil {
		b += r.tailBuf.cap
	}
	return b
}

// structEndCurrent returns the end of the current bookkeeping structure
// (regions plus tail capacity), ignoring transient working space.
func (r *Reallocator) structEndCurrent() int64 {
	end := int64(0)
	if n := len(r.regions); n > 0 {
		end = r.regions[n-1].end()
	}
	if r.tailBuf != nil && r.tailBuf.end() > end {
		end = r.tailBuf.end()
	}
	return end
}

// extentOf returns the object's current extent; it panics on bookkeeping
// desync (objects are always physically placed).
func (r *Reallocator) extentOf(o *object) addrspace.Extent {
	e, ok := r.space.Extent(o.id)
	if !ok {
		panic("core: object without physical placement")
	}
	return e
}
