package core

import (
	"sort"

	"realloc/internal/addrspace"
)

// boundaryClass computes the flush boundary b: the maximum class such that
// every item buffered in classes >= b (tail buffer included) and the
// triggering item belong to classes >= b. Scanning regions from largest to
// smallest and lowering b as smaller-class items appear reaches the
// maximum fixed point.
func (r *Reallocator) boundaryClass(trigClass int) int {
	b := trigClass
	if t := r.tailBuf; t != nil {
		// The tail buffer follows every region, so any flush flushes it;
		// all of its items constrain b.
		for _, it := range t.items {
			if it.class < b {
				b = it.class
			}
		}
	}
	for k := len(r.regions) - 1; k >= 0 && r.regions[k].class >= b; k-- {
		for _, it := range r.regions[k].items {
			if it.class < b {
				b = it.class
			}
		}
	}
	return b
}

// layoutPlan is the computed post-flush geometry of the flushed suffix.
// Its region slice is scratch owned by the Reallocator; install consumes
// it before the next flush rebuilds it.
type layoutPlan struct {
	boundary    int
	flushIdx    int   // regions[flushIdx:] are flushed
	suffixStart int64 // where the rebuilt suffix begins
	newRegions  []*region
	newEnd      int64 // absolute end of the rebuilt suffix (payloads+buffers)
	newTailCap  int64 // deamortized: capacity of the new tail buffer
}

// computeLayout determines the new suffix geometry for a flush with
// boundary b. Classes >= b with live volume get payload V(c) and buffer
// ⌊ε'·V(c)⌋; empty classes vanish. Region records come from the pool of
// previously flushed-away regions, so steady-state flushes allocate
// nothing here.
func (r *Reallocator) computeLayout(b int) layoutPlan {
	idx, _ := r.regionIndex(b)
	start := int64(0)
	if idx > 0 {
		start = r.regions[idx-1].end()
	}
	classes := r.classBuf[:0]
	for c, v := range r.volByClass {
		if c >= b && v > 0 {
			classes = append(classes, c)
		}
	}
	sort.Ints(classes)
	r.classBuf = classes
	lp := layoutPlan{boundary: b, flushIdx: idx, suffixStart: start, newRegions: r.regionBuf[:0]}
	pos := start
	for _, c := range classes {
		v := r.volByClass[c]
		reg := r.takeRegion()
		reg.class = c
		reg.payStart = pos
		reg.paySize = v
		reg.payLive = v
		reg.bufSize = r.bufCap(v)
		reg.cursor = pos
		pos = reg.end()
		lp.newRegions = append(lp.newRegions, reg)
	}
	r.regionBuf = lp.newRegions
	lp.newEnd = pos
	if r.tailBuf != nil {
		lp.newTailCap = r.bufCap(r.vol)
	}
	return lp
}

// takeRegion returns a recycled region record (buffer items cleared, fill
// zeroed) or a fresh one.
func (r *Reallocator) takeRegion() *region {
	if n := len(r.regionPool); n > 0 {
		reg := r.regionPool[n-1]
		r.regionPool = r.regionPool[:n-1]
		reg.items = reg.items[:0]
		reg.bufFill = 0
		return reg
	}
	return &region{}
}

// flushedObjects gathers the live objects involved in flushing classes
// >= b, split into payload survivors and buffered objects, each sorted by
// current address (dummies are not objects and are simply dropped). The
// flushed classes occupy the address suffix from suffixStart on (the
// boundary computation guarantees no smaller-class item is buffered
// there), and the substrate's index is address-sorted, so one ranged walk
// collects both lists in order — no per-flush sort, no full-index scan,
// and the returned slices are scratch reused across flushes. The trigger
// object, if physically placed in a buffer already, is among the buffered
// ones.
func (r *Reallocator) flushedObjects(b int, suffixStart int64) (payload, buffered []*object) {
	pay, buf := r.payBuf[:0], r.bufBuf[:0]
	r.space.ForEachFrom(suffixStart, func(id ID, _ addrspace.Extent) {
		o := r.objs[id]
		if o.class < b {
			return
		}
		switch o.place {
		case inPayload:
			pay = append(pay, o)
		case inBuffer:
			buf = append(buf, o)
		}
	})
	r.payBuf, r.bufBuf = pay, buf
	return pay, buf
}

// assignSlots writes every flushed object's post-flush position into its
// slot field: per class, payload survivors first (in their current
// relative order), then buffered objects, then the pending Section 2
// trigger object (which is not yet physically placed and gets the
// reserved end of its class payload).
func (lp *layoutPlan) assignSlots(payload, buffered []*object, trigger *object) {
	for _, o := range payload {
		reg := lp.regionOf(o.class)
		o.slot = reg.cursor
		reg.cursor += o.size
	}
	for _, o := range buffered {
		if trigger != nil && o.id == trigger.id {
			continue // placed last within its class below
		}
		reg := lp.regionOf(o.class)
		o.slot = reg.cursor
		reg.cursor += o.size
	}
	if trigger != nil {
		reg := lp.regionOf(trigger.class)
		trigger.slot = reg.payStart + reg.paySize - trigger.size
	}
}

// buildFinalOrder returns the plan refs (payload index i for payload[i],
// len(payload)+i for buffered[i]) ordered by final position: region by
// region ascending, payload survivors before buffered arrivals, each in
// their list order — exactly the order assignSlots advances its cursors.
// One counting pass per list keeps it O(m + log-many classes) and
// allocation-free in steady state.
func (r *Reallocator) buildFinalOrder(lp *layoutPlan, payload, buffered []*object) []int32 {
	k := len(lp.newRegions)
	counts := r.countBuf[:0]
	for i := 0; i < k; i++ {
		counts = append(counts, 0)
	}
	r.countBuf = counts
	for _, o := range payload {
		counts[lp.regionIdx(o.class)]++
	}
	for _, o := range buffered {
		counts[lp.regionIdx(o.class)]++
	}
	total := 0
	for i, c := range counts {
		counts[i] = total
		total += c
	}
	out := r.orderBuf[:0]
	if cap(out) < total {
		out = make([]int32, total)
	} else {
		out = out[:total]
	}
	for i, o := range payload {
		idx := lp.regionIdx(o.class)
		out[counts[idx]] = int32(i)
		counts[idx]++
	}
	for i, o := range buffered {
		idx := lp.regionIdx(o.class)
		out[counts[idx]] = int32(len(payload) + i)
		counts[idx]++
	}
	r.orderBuf = out
	return out
}

// regionIdx returns the newRegions index of the first region with class
// >= c.
func (lp *layoutPlan) regionIdx(c int) int {
	lo, hi := 0, len(lp.newRegions)
	for lo < hi {
		mid := (lo + hi) / 2
		if lp.newRegions[mid].class < c {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// regionOf returns the new region for class c (must exist).
func (lp *layoutPlan) regionOf(c int) *region {
	if i := lp.regionIdx(c); i < len(lp.newRegions) && lp.newRegions[i].class == c {
		return lp.newRegions[i]
	}
	panic("core: layout missing region for flushed class")
}

// install replaces the flushed suffix bookkeeping with the new geometry
// and resets the tail buffer. The replaced region records join the pool
// for the next computeLayout. Physical object positions are the flush
// executor's responsibility.
func (r *Reallocator) install(lp layoutPlan) {
	r.regionPool = append(r.regionPool, r.regions[lp.flushIdx:]...)
	r.regions = append(r.regions[:lp.flushIdx], lp.newRegions...)
	if t := r.tailBuf; t != nil {
		t.start = lp.newEnd
		t.cap = lp.newTailCap
		t.fill = 0
		t.items = t.items[:0]
	}
	r.dirty = false
}

// flushedBufferSpace returns B: the total buffer capacity of the flushed
// suffix, tail included.
func (r *Reallocator) flushedBufferSpace(flushIdx int) int64 {
	var b int64
	for _, reg := range r.regions[flushIdx:] {
		b += reg.bufSize
	}
	if r.tailBuf != nil {
		b += r.tailBuf.cap
	}
	return b
}

// structEndCurrent returns the end of the current bookkeeping structure
// (regions plus tail capacity), ignoring transient working space.
func (r *Reallocator) structEndCurrent() int64 {
	end := int64(0)
	if n := len(r.regions); n > 0 {
		end = r.regions[n-1].end()
	}
	if r.tailBuf != nil && r.tailBuf.end() > end {
		end = r.tailBuf.end()
	}
	return end
}

// extentOf returns the object's current extent; it panics on bookkeeping
// desync (objects are always physically placed).
func (r *Reallocator) extentOf(o *object) addrspace.Extent {
	e, ok := r.space.Extent(o.id)
	if !ok {
		panic("core: object without physical placement")
	}
	return e
}
