package core

import (
	"errors"
	"fmt"
	"math"

	"realloc/internal/addrspace"
	"realloc/internal/arena"
	"realloc/internal/telemetry"
	"realloc/internal/trace"
)

// ID identifies an object; it is the caller's handle (the paper's "name").
type ID = addrspace.ID

// Variant selects which of the paper's algorithms the reallocator runs.
type Variant int

const (
	// Amortized is the Section 2 algorithm: atomic flushes, memmove-style
	// moves, no checkpoint model.
	Amortized Variant = iota
	// Checkpointed is the Section 3.2 algorithm: strictly nonoverlapping
	// moves under the checkpoint rule, O(1/ε) checkpoints per flush.
	Checkpointed
	// Deamortized is the Section 3.3 algorithm: Checkpointed plus a tail
	// buffer and an update log that spread each flush across subsequent
	// requests, capping per-request reallocation at (4/ε')·w + ∆ volume.
	Deamortized
)

func (v Variant) String() string {
	switch v {
	case Amortized:
		return "amortized"
	case Checkpointed:
		return "checkpointed"
	case Deamortized:
		return "deamortized"
	default:
		return "unknown"
	}
}

// Config parameterizes a Reallocator.
type Config struct {
	// Epsilon is the footprint slack target: the structure occupies at
	// most (1+Epsilon)·V space after every completed request. Must be in
	// (0, 1]. The paper states results for (0, 1/2].
	Epsilon float64
	// EpsPrime overrides the internal buffer fraction ε'. Zero picks
	// Epsilon/4 (Amortized, Checkpointed) or Epsilon/6 (Deamortized, whose
	// tail buffer consumes a second ε' of slack), which keeps the
	// steady-state structure within (1+Epsilon)·V for all Epsilon <= 1.
	EpsPrime float64
	// Variant selects the algorithm; the zero value is Amortized.
	Variant Variant
	// Recorder receives the event stream; nil means trace.Null.
	Recorder trace.Recorder
	// TrackCells enables per-cell data stamps in the substrate (needed by
	// data-integrity and crash-recovery tests).
	TrackCells bool
	// Paranoid re-validates every structural invariant after each request
	// and makes violations return errors. Tests set it; benchmarks don't.
	Paranoid bool
	// SerialFlush executes flush move schedules through the per-move
	// reference path instead of the batched executor. Both produce
	// identical event streams, layouts, and stats (the differential tests
	// assert it); this exists for cross-checking and debugging.
	SerialFlush bool
	// Telemetry, when non-nil, receives wall-clock timing: flush
	// duration/stall/chunk/moved histograms and the checkpoint counter.
	// Nil (the default) keeps every timing site a single branch — the
	// core never reads a clock unless someone is listening.
	Telemetry *telemetry.Set
	// Arena is the payload backend relocations execute against. Nil
	// defaults to the metered backend: moves are counted, not paid.
	// Handing an engine another engine's arena adopts its bytes (the
	// AutoSelect migration relies on this).
	Arena arena.Backend
}

// Errors returned by Reallocator operations.
var (
	ErrBadSize   = errors.New("core: object size must be >= 1")
	ErrBadID     = errors.New("core: object id must be non-zero")
	ErrDuplicate = errors.New("core: object already exists")
	ErrNotFound  = errors.New("core: no such object")
	ErrEpsilon   = errors.New("core: epsilon must be in (0, 1]")
)

// placeKind says where an object currently lives in the structure.
type placeKind uint8

const (
	inLimbo    placeKind = iota // created but not yet physically placed
	inPayload                   // a payload segment
	inBuffer                    // a size-class buffer segment (or the tail buffer)
	inOverflow                  // parked in the overflow segment mid-flush
	inLog                       // inserted during an active flush, not yet drained
)

// object is the engine's record of a live object. Its physical position
// lives in the address space.
type object struct {
	id    ID
	size  int64
	class int
	place placeKind
	// For place == inBuffer: which buffer (bufClass, tailBuffer for the
	// tail) and the index of its item entry, so a delete can convert the
	// entry to a dummy in place.
	bufClass int
	bufIdx   int
	// For place == inLog: index of the log entry, so a delete during the
	// same flush can annihilate the pair.
	logIdx int
	// deletePending marks objects whose delete request is sitting in the
	// log (the object stays active until the drain applies it).
	deletePending bool
	// slot is the object's post-flush payload position, assigned by
	// layoutPlan.assignSlots while a flush schedule is being built.
	slot int64
}

// tailBuffer is the sentinel bufClass for objects parked in the tail
// buffer of the deamortized variant.
const tailBuffer = -2

// bufItem is one entry of a buffer segment: a buffered object (id != 0) or
// a dummy delete record (id == 0). Both consume size cells of the buffer's
// capacity; dummy cells are never written.
type bufItem struct {
	id    ID
	size  int64
	class int
}

// region is one size class's area: a payload segment then a buffer
// segment.
type region struct {
	class    int
	payStart int64
	paySize  int64 // class volume at this region's last flush (or creation)
	payLive  int64 // live volume currently in the payload (paySize - holes)
	bufSize  int64 // buffer capacity
	bufFill  int64 // consumed buffer capacity (objects + dummies)
	items    []bufItem
	// cursor is assignSlots' next free payload position while the region
	// is part of a layout plan under construction; meaningless after.
	cursor int64
}

func (r *region) bufStart() int64 { return r.payStart + r.paySize }
func (r *region) end() int64      { return r.payStart + r.paySize + r.bufSize }

// tail is the deamortized variant's tail buffer: a class-unrestricted
// buffer following all regions.
type tail struct {
	start int64
	cap   int64
	fill  int64
	items []bufItem
}

func (t *tail) end() int64 { return t.start + t.cap }

// Reallocator is the engine implementing all three variants.
type Reallocator struct {
	cfg Config
	eps float64 // ε'

	space *addrspace.Space
	rec   trace.Recorder
	// nullRec marks a discard-everything recorder: batch execution then
	// skips per-move footprint reconstruction entirely (the event stream
	// has no audience; state evolution is identical either way).
	nullRec bool

	objs    map[ID]*object
	regions []*region // ascending class order
	tailBuf *tail     // Deamortized only

	vol        int64 // total live volume V
	volByClass map[int]int64
	delta      int64 // largest object size ever inserted (the paper's ∆)

	flushes int64

	// tel mirrors cfg.Telemetry (kept as a field so hot paths pay one
	// pointer test); stalling marks that the current advanceQuota work is
	// being performed by an op that did not trigger the flush, so chunk
	// time is attributed to stall as well as to the flush's duration;
	// opStall accumulates the stalled op's timed slices across plans.
	tel      *telemetry.Set
	stalling bool
	opStall  int64
	// copyMark is the arena's cumulative memmove time at the start of
	// the flush in progress; the delta at flush end is that flush's
	// FlushCopy observation.
	copyMark int64

	// Deamortized state: the plan of an in-progress flush and the update
	// log absorbing requests that arrive while it runs.
	plan *flushPlan
	log  updateLog
	// dirty marks rare placements outside the canonical contiguous layout
	// (tail overflow, new max class mid-flush); cleared by the next flush.
	dirty bool

	// Flush scratch, reused so steady-state flushes allocate nothing: the
	// move plan under construction (handed to flushPlan, which retires
	// before the next flush starts), the address-ordered payload/buffered
	// collections, the flushed class list, the next layout's region slice,
	// and pools of retired region and object records.
	planBuf    []addrspace.Relocation
	orderBuf   []int32
	countBuf   []int
	payBuf     []*object
	bufBuf     []*object
	classBuf   []int
	regionBuf  []*region
	regionPool []*region
	objPool    []*object
}

// New creates a Reallocator. It validates Config and chooses the substrate
// rules the variant requires.
func New(cfg Config) (*Reallocator, error) {
	if cfg.Epsilon <= 0 || cfg.Epsilon > 1 {
		return nil, fmt.Errorf("%w: got %v", ErrEpsilon, cfg.Epsilon)
	}
	eps := cfg.EpsPrime
	if eps == 0 {
		if cfg.Variant == Deamortized {
			eps = cfg.Epsilon / 6
		} else {
			eps = cfg.Epsilon / 4
		}
	}
	if eps <= 0 || eps > 0.5 {
		return nil, fmt.Errorf("%w: eps' %v out of (0, 0.5]", ErrEpsilon, eps)
	}
	var opts addrspace.Options
	if cfg.Variant == Amortized {
		opts = addrspace.RAM()
	} else {
		opts = addrspace.Durable()
	}
	opts.TrackCells = cfg.TrackCells
	if cfg.Arena == nil {
		cfg.Arena, _ = arena.New(arena.Metered)
	}
	if cfg.Telemetry != nil {
		cfg.Arena.SetTiming(true)
	}
	opts.Data = cfg.Arena
	rec := cfg.Recorder
	if rec == nil {
		rec = trace.Null{}
	}
	_, nullRec := rec.(trace.Null)
	r := &Reallocator{
		cfg:        cfg,
		eps:        eps,
		space:      addrspace.New(opts),
		rec:        rec,
		nullRec:    nullRec,
		tel:        cfg.Telemetry,
		objs:       make(map[ID]*object),
		volByClass: make(map[int]int64),
	}
	if cfg.Variant == Deamortized {
		r.tailBuf = &tail{}
	}
	return r, nil
}

// MustNew is New for tests and examples with known-good configs.
func MustNew(cfg Config) *Reallocator {
	r, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// Volume returns the total size of live objects (deleted objects stop
// counting when their delete request completes; deletes logged during an
// active flush complete at drain time).
func (r *Reallocator) Volume() int64 { return r.vol }

// Footprint returns the largest allocated address: the quantity the
// paper's competitive ratio bounds.
func (r *Reallocator) Footprint() int64 { return r.space.MaxEnd() }

// StructSize returns the end of the bookkeeping structure: the last
// region's (or tail buffer's) end, counting holes and empty buffer space.
// This is the conservative quantity Lemma 2.5 bounds. Mid-flush it also
// covers the working space actually in use.
func (r *Reallocator) StructSize() int64 {
	end := int64(0)
	if n := len(r.regions); n > 0 {
		end = r.regions[n-1].end()
	}
	if r.tailBuf != nil && r.tailBuf.end() > end {
		end = r.tailBuf.end()
	}
	if m := r.space.MaxEnd(); m > end {
		end = m
	}
	return end
}

// Delta returns the largest object size seen so far (the paper's ∆).
func (r *Reallocator) Delta() int64 { return r.delta }

// Len returns the number of live objects.
func (r *Reallocator) Len() int { return len(r.objs) }

// Flushes returns how many buffer flushes have been triggered.
func (r *Reallocator) Flushes() int64 { return r.flushes }

// FlushActive reports whether a deamortized flush is in progress.
func (r *Reallocator) FlushActive() bool { return r.plan != nil }

// Epsilon returns the configured footprint slack target.
func (r *Reallocator) Epsilon() float64 { return r.cfg.Epsilon }

// EpsPrime returns the internal buffer fraction ε'.
func (r *Reallocator) EpsPrime() float64 { return r.eps }

// Space exposes the substrate for integration (BTL) and tests.
func (r *Reallocator) Space() *addrspace.Space { return r.space }

// Data exposes the payload backend relocations execute against.
func (r *Reallocator) Data() arena.Backend { return r.space.Data() }

// Write copies p into object id's payload bytes (real backends only).
func (r *Reallocator) Write(id ID, p []byte) error { return r.space.WriteData(id, p) }

// Read copies object id's payload bytes into p.
func (r *Reallocator) Read(id ID, p []byte) (int, error) { return r.space.ReadData(id, p) }

// Bytes returns object id's live payload slice (valid until the next
// mutating call).
func (r *Reallocator) Bytes(id ID) ([]byte, bool) { return r.space.DataBytes(id) }

// Extent returns the current physical extent of id. Objects are always
// physically placed, including mid-flush and while sitting in the log.
func (r *Reallocator) Extent(id ID) (addrspace.Extent, bool) {
	return r.space.Extent(id)
}

// Has reports whether id is live (a logged, not-yet-drained delete still
// counts as live, matching the paper's definition of active).
func (r *Reallocator) Has(id ID) bool {
	o, ok := r.objs[id]
	return ok && !o.deletePending
}

// SizeOf returns the size of object id.
func (r *Reallocator) SizeOf(id ID) (int64, bool) {
	o, ok := r.objs[id]
	if !ok {
		return 0, false
	}
	return o.size, true
}

// ForEach visits every live object in address order.
func (r *Reallocator) ForEach(fn func(id ID, ext addrspace.Extent)) {
	r.space.ForEach(fn)
}

// Drain completes any in-progress deamortized flush. Other variants are
// always drained.
func (r *Reallocator) Drain() error {
	for r.plan != nil {
		if err := r.advance(math.MaxInt64 / 4); err != nil {
			return err
		}
	}
	return nil
}

// workQuota is the flush work (by volume) a size-w request must perform in
// the deamortized variant: just over (4/ε')·w.
func (r *Reallocator) workQuota(w int64) int64 {
	q := math.Ceil(4 / r.eps * float64(w))
	if q > math.MaxInt64/4 {
		return math.MaxInt64 / 4
	}
	return int64(q)
}

// emit sends an event to the recorder, filling in footprint and volume.
func (r *Reallocator) emit(kind trace.Kind, id ID, size, from, to int64) {
	r.emitAt(kind, id, size, from, to, r.space.MaxEnd())
}

// emitAt is emit with an explicit footprint, for events observed mid-batch
// when the substrate's index has not been rebuilt yet.
func (r *Reallocator) emitAt(kind trace.Kind, id ID, size, from, to, footprint int64) {
	r.rec.Record(trace.Event{
		Kind: kind, ID: int64(id), Size: size, From: from, To: to,
		Footprint: footprint, Volume: r.vol,
	})
}

// emitPlanMove relays one batched relocation to the recorder with the same
// event sequence the per-move path produces: a checkpoint event if the
// move blocked, then the move itself.
func (r *Reallocator) emitPlanMove(m addrspace.MoveResult) {
	if m.Checkpointed {
		r.emitAt(trace.KCheckpoint, 0, 0, 0, 0, m.PreFootprint)
	}
	r.emitAt(trace.KMove, m.ID, m.Size, m.From, m.To, m.Footprint)
}

// applyPlan executes up to budget volume of an atomic flush move plan in
// one batch and returns the number of consumed plan entries and the
// volume they moved. Config.SerialFlush forces the per-move reference
// path; both produce identical event streams (the differential tests
// assert it). Quota-bounded Section 3 plans do not come here — they
// execute through the resumable session advanceQuota holds. Paranoid mode
// re-verifies the substrate after every batch, cross-checking the merge
// rebuild.
func (r *Reallocator) applyPlan(moves []addrspace.Relocation, maxRef int, finalOrder []int32, budget int64) (int, int64, error) {
	if r.cfg.SerialFlush {
		return r.applyPlanSerial(moves, budget)
	}
	n, vol, err := r.space.ApplyMoves(moves, maxRef, finalOrder, budget, r.planEmitter())
	if err == nil && r.cfg.Paranoid {
		err = r.space.Verify()
	}
	return n, vol, err
}

// planEmitter returns the batched-relocation observer relaying MoveResults
// to the recorder, or nil for a discard-everything recorder (executors
// then skip footprint reconstruction entirely).
func (r *Reallocator) planEmitter() func(addrspace.MoveResult) {
	if r.nullRec {
		return nil
	}
	return r.emitPlanMove
}

// applyPlanSerial is applyPlan through per-move Move calls: one entry at a
// time while the applied volume stays below budget, transparently blocking
// on checkpoints.
func (r *Reallocator) applyPlanSerial(moves []addrspace.Relocation, budget int64) (int, int64, error) {
	var vol int64
	for i, m := range moves {
		if vol >= budget {
			return i, vol, nil
		}
		moved, err := r.moveCkpt(m.ID, m.To)
		if err != nil {
			return i + 1, vol, err
		}
		if moved {
			vol += r.objs[m.ID].size
		}
	}
	return len(moves), vol, nil
}

// takeObject returns a recycled object record, or a fresh one.
func (r *Reallocator) takeObject() *object {
	if n := len(r.objPool); n > 0 {
		o := r.objPool[n-1]
		r.objPool = r.objPool[:n-1]
		return o
	}
	return new(object)
}

// putObject recycles a record whose object has been fully removed.
// Annihilated log entries may still point at it; they are dead and never
// dereferenced.
func (r *Reallocator) putObject(o *object) {
	*o = object{}
	r.objPool = append(r.objPool, o)
}

// emitOpEnd closes a request.
func (r *Reallocator) emitOpEnd() {
	structSize := int64(0)
	if r.plan == nil && !r.dirty {
		structSize = r.StructSize()
	}
	r.rec.Record(trace.Event{
		Kind: trace.KOpEnd, From: structSize,
		Footprint: r.space.MaxEnd(), Volume: r.vol,
	})
}

// maxRegionClass returns the largest class with a region, or -1.
func (r *Reallocator) maxRegionClass() int {
	if len(r.regions) == 0 {
		return -1
	}
	return r.regions[len(r.regions)-1].class
}

// regionIndex returns the index of class c's region.
func (r *Reallocator) regionIndex(c int) (int, bool) {
	lo, hi := 0, len(r.regions)
	for lo < hi {
		mid := (lo + hi) / 2
		if r.regions[mid].class < c {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(r.regions) && r.regions[lo].class == c {
		return lo, true
	}
	return lo, false
}

// bufCap returns ⌊ε'·v⌋, the buffer capacity for payload volume v.
func (r *Reallocator) bufCap(v int64) int64 {
	return int64(r.eps * float64(v))
}

// syncCheckpoints republishes the substrate's authoritative checkpoint
// count into the telemetry set. It runs where checkpoints can have
// advanced (blocked placements/moves, flush completion) rather than per
// move: the substrate already counts, telemetry only mirrors.
func (r *Reallocator) syncCheckpoints() {
	if r.tel != nil {
		r.tel.Checkpoints.Store(r.space.Checkpoints())
		r.tel.BytesMoved.Store(r.space.Data().Counters().BytesMoved)
	}
}

// markCopy snapshots the arena's cumulative memmove time at flush
// start; recordCopy turns the delta into the flush's FlushCopy
// observation. Both are single branches when telemetry is off.
func (r *Reallocator) markCopy() {
	if r.tel != nil {
		r.copyMark = r.space.Data().Counters().CopyNanos
	}
}

func (r *Reallocator) recordCopy() {
	if r.tel != nil {
		r.tel.FlushCopy.Record(r.space.Data().Counters().CopyNanos - r.copyMark)
	}
}

// moveCkpt relocates an object, transparently blocking on (triggering and
// counting) checkpoints when the target intersects freed-since-checkpoint
// space. A move to the current position is a no-op; the boolean reports
// whether the object actually moved.
func (r *Reallocator) moveCkpt(id ID, to int64) (bool, error) {
	old, ok := r.space.Extent(id)
	if !ok {
		return false, fmt.Errorf("%w: move of %d", ErrNotFound, id)
	}
	if old.Start == to {
		return false, nil
	}
	for {
		err := r.space.Move(id, to)
		if err == nil {
			r.emit(trace.KMove, id, old.Size, old.Start, to)
			return true, nil
		}
		if errors.Is(err, addrspace.ErrWouldBlock) {
			r.space.Checkpoint()
			r.syncCheckpoints()
			r.emit(trace.KCheckpoint, 0, 0, 0, 0)
			continue
		}
		return false, err
	}
}

// moveObj is moveCkpt for an object record.
func (r *Reallocator) moveObj(o *object, to int64) (bool, error) {
	return r.moveCkpt(o.id, to)
}

// placeCkpt writes a new object, blocking on checkpoints like moveCkpt.
// It emits the KInsert event (initial allocation).
func (r *Reallocator) placeCkpt(id ID, ext addrspace.Extent) error {
	for {
		err := r.space.Place(id, ext)
		if err == nil {
			r.emit(trace.KInsert, id, ext.Size, 0, ext.Start)
			return nil
		}
		if errors.Is(err, addrspace.ErrWouldBlock) {
			r.space.Checkpoint()
			r.syncCheckpoints()
			r.emit(trace.KCheckpoint, 0, 0, 0, 0)
			continue
		}
		return err
	}
}
