package core

import (
	"strings"
	"testing"
)

// These tests deliberately corrupt internal state and assert the checker
// catches it — guarding against a vacuously-green paranoid mode.

// corruptible builds a small structure with payloads and buffered items.
func corruptible(t *testing.T) *Reallocator {
	t.Helper()
	r := MustNew(Config{Epsilon: 0.5, Variant: Amortized, TrackCells: true})
	for i, size := range []int64{8, 8, 4, 2, 16} {
		if err := r.Insert(ID(i+1), size); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatalf("baseline structure unsound: %v", err)
	}
	return r
}

func expectViolation(t *testing.T, r *Reallocator, fragment string) {
	t.Helper()
	err := r.CheckInvariants()
	if err == nil {
		t.Fatalf("checker missed corruption (wanted %q)", fragment)
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Fatalf("checker reported %q, wanted mention of %q", err, fragment)
	}
}

func TestCheckerCatchesVolumeDrift(t *testing.T) {
	r := corruptible(t)
	r.vol += 3
	expectViolation(t, r, "volume accounting")
}

func TestCheckerCatchesClassVolumeDrift(t *testing.T) {
	r := corruptible(t)
	r.volByClass[3] -= 2
	expectViolation(t, r, "class 3 volume")
}

func TestCheckerCatchesBufferFillDrift(t *testing.T) {
	r := corruptible(t)
	// Find a region with buffered items and desync its fill counter.
	for _, reg := range r.regions {
		if len(reg.items) > 0 {
			reg.bufFill++
			expectViolation(t, r, "buffer fill")
			return
		}
	}
	t.Skip("no buffered items in this construction")
}

func TestCheckerCatchesRegionOrder(t *testing.T) {
	r := corruptible(t)
	if len(r.regions) < 2 {
		t.Skip("need two regions")
	}
	r.regions[0], r.regions[1] = r.regions[1], r.regions[0]
	if err := r.CheckInvariants(); err == nil {
		t.Fatal("checker missed region disorder")
	}
}

func TestCheckerCatchesPayLiveDrift(t *testing.T) {
	r := corruptible(t)
	r.regions[0].payLive--
	if err := r.CheckInvariants(); err == nil {
		t.Fatal("checker missed payLive drift")
	}
}

func TestCheckerCatchesForeignBufferItem(t *testing.T) {
	r := corruptible(t)
	// Plant a dummy of a class larger than its buffer's class — an
	// Invariant 2.2.4 violation.
	reg := r.regions[0]
	reg.items = append(reg.items, bufItem{size: 1, class: reg.class + 5})
	reg.bufFill++
	expectViolation(t, r, "Invariant 2.2.4")
}

func TestCheckerCatchesObjectKeyDesync(t *testing.T) {
	r := corruptible(t)
	// Rebind an object record under a foreign map key.
	for id, o := range r.objs {
		delete(r.objs, id)
		r.objs[id+1000] = o
		expectViolation(t, r, "map key")
		return
	}
}

func TestCheckerCatchesSubstrateDesync(t *testing.T) {
	r := corruptible(t)
	// Remove the physical placement behind the bookkeeping's back.
	for id := range r.objs {
		if err := r.space.Remove(id); err != nil {
			t.Fatal(err)
		}
		break
	}
	if err := r.CheckInvariants(); err == nil {
		t.Fatal("checker missed a missing physical placement")
	}
}

func TestCheckerCatchesFootprintBlowup(t *testing.T) {
	r := corruptible(t)
	// Fake a bloated structure: stretch the last region's buffer.
	r.regions[len(r.regions)-1].bufSize += 10 * r.vol
	expectViolation(t, r, "Lemma 2.5")
}
