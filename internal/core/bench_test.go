package core

import (
	"fmt"
	"testing"

	"realloc/internal/trace"
)

// benchFill pre-populates a reallocator with n uniform objects.
func benchFill(b *testing.B, variant Variant, n int) *Reallocator {
	b.Helper()
	r, err := New(Config{Epsilon: 0.25, Variant: variant, Recorder: trace.Null{}})
	if err != nil {
		b.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		if err := r.Insert(ID(i), int64(1+i%128)); err != nil {
			b.Fatal(err)
		}
	}
	return r
}

// BenchmarkInsertBuffered measures the insert fast path (buffer append, no
// flush) by giving every insert a fresh, huge structure to land in.
func BenchmarkInsertBuffered(b *testing.B) {
	r := benchFill(b, Amortized, 10000)
	id := ID(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Insert(id, 1); err != nil {
			b.Fatal(err)
		}
		id++
		if i%64 == 63 {
			// Keep the structure from growing unboundedly: delete the
			// batch (also exercising the dummy-record path).
			b.StopTimer()
			for d := id - 64; d < id; d++ {
				if err := r.Delete(d); err != nil {
					b.Fatal(err)
				}
			}
			b.StartTimer()
		}
	}
}

// BenchmarkFlush measures a full Section 2 flush of a structure with n
// objects: the cost of the four-step move schedule end to end.
func BenchmarkFlush(b *testing.B) {
	for _, n := range []int{1000, 10000, 50000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			r := benchFill(b, Amortized, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Force a flush by triggering the no-room path: a delete
				// whose dummy cannot fit anywhere is the cheapest trigger,
				// so alternate insert+delete of a fresh large object and
				// rely on periodic organic flushes instead. Simpler and
				// honest: run one sweep of inserts sized to fill buffers.
				before := r.Flushes()
				id := ID(1 << 30)
				for r.Flushes() == before {
					if err := r.Insert(id, 64); err != nil {
						b.Fatal(err)
					}
					id++
				}
				b.StopTimer()
				for d := ID(1 << 30); d < id; d++ {
					if err := r.Delete(d); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
			}
		})
	}
}

// BenchmarkBoundaryClass isolates the boundary-class scan.
func BenchmarkBoundaryClass(b *testing.B) {
	r := benchFill(b, Amortized, 20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.boundaryClass(0)
	}
}

// BenchmarkLayoutCompute isolates the suffix-geometry computation.
func BenchmarkLayoutCompute(b *testing.B) {
	r := benchFill(b, Amortized, 20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.computeLayout(0)
	}
}

// BenchmarkCheckInvariants measures the paranoid checker's cost (it runs
// after every request in tests).
func BenchmarkCheckInvariants(b *testing.B) {
	r := benchFill(b, Amortized, 20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.CheckInvariants(); err != nil {
			b.Fatal(err)
		}
	}
}
