package core

import (
	"math/rand/v2"
	"testing"

	"realloc/internal/addrspace"
	"realloc/internal/trace"
)

// diffOp is one request of a generated differential workload.
type diffOp struct {
	insert bool
	id     ID
	size   int64
}

// diffWorkload generates a random insert/delete churn: grow to roughly
// vol, then churn with uniform victims, with occasional mass-delete bursts
// so flushes trigger from both the insert and the delete path.
func diffWorkload(seed uint64, vol int64, n int) []diffOp {
	rng := rand.New(rand.NewPCG(seed, 0xd1ff))
	var ops []diffOp
	type live struct {
		id   ID
		size int64
	}
	var pop []live
	var cur int64
	next := ID(1)
	for len(ops) < n {
		burst := len(pop) > 8 && rng.IntN(40) == 0
		if burst {
			for k := 0; k < len(pop)/4; k++ {
				i := rng.IntN(len(pop))
				o := pop[i]
				pop[i] = pop[len(pop)-1]
				pop = pop[:len(pop)-1]
				cur -= o.size
				ops = append(ops, diffOp{id: o.id, size: o.size})
			}
			continue
		}
		if cur < vol || len(pop) == 0 || rng.IntN(2) == 0 {
			size := int64(1 + rng.IntN(300))
			ops = append(ops, diffOp{insert: true, id: next, size: size})
			pop = append(pop, live{next, size})
			cur += size
			next++
		} else {
			i := rng.IntN(len(pop))
			o := pop[i]
			pop[i] = pop[len(pop)-1]
			pop = pop[:len(pop)-1]
			cur -= o.size
			ops = append(ops, diffOp{id: o.id, size: o.size})
		}
	}
	return ops
}

// driveDiff runs ops through a fresh reallocator and returns its event log
// and the reallocator itself.
func driveDiff(t *testing.T, variant Variant, serial bool, ops []diffOp) (*Reallocator, *trace.Log) {
	t.Helper()
	log := &trace.Log{}
	r := MustNew(Config{
		Epsilon:     0.25,
		Variant:     variant,
		Recorder:    log,
		TrackCells:  true,
		Paranoid:    true,
		SerialFlush: serial,
	})
	for _, op := range ops {
		var err error
		if op.insert {
			err = r.Insert(op.id, op.size)
		} else {
			err = r.Delete(op.id)
		}
		if err != nil {
			t.Fatalf("%s serial=%v: op %+v: %v", variant, serial, op, err)
		}
	}
	return r, log
}

// TestBatchedSerialEquivalence is the differential property test of the
// batched flush executor: identical random workloads driven through the
// batched path and the per-move reference path must produce identical
// event streams (and therefore identical footprint series), final
// layouts, and stats, for every variant and both substrate rule sets.
func TestBatchedSerialEquivalence(t *testing.T) {
	for _, variant := range []Variant{Amortized, Checkpointed, Deamortized} {
		for seed := uint64(1); seed <= 4; seed++ {
			ops := diffWorkload(seed, 4000, 3000)
			batched, blog := driveDiff(t, variant, false, ops)
			serial, slog := driveDiff(t, variant, true, ops)

			if len(blog.Events) != len(slog.Events) {
				t.Fatalf("%s seed %d: %d batched events vs %d serial", variant, seed, len(blog.Events), len(slog.Events))
			}
			for i := range blog.Events {
				if blog.Events[i] != slog.Events[i] {
					t.Fatalf("%s seed %d: event %d differs:\n batched %+v\n serial  %+v",
						variant, seed, i, blog.Events[i], slog.Events[i])
				}
			}
			compareDiffState(t, variant, seed, batched, serial)

			// Complete any in-progress deamortized flush on both sides and
			// compare the fully drained states too.
			if err := batched.Drain(); err != nil {
				t.Fatalf("%s seed %d: batched drain: %v", variant, seed, err)
			}
			if err := serial.Drain(); err != nil {
				t.Fatalf("%s seed %d: serial drain: %v", variant, seed, err)
			}
			compareDiffState(t, variant, seed, batched, serial)
		}
	}
}

// compareDiffState asserts two reallocators are observably identical:
// layouts, volumes, footprints, and substrate stats.
func compareDiffState(t *testing.T, variant Variant, seed uint64, a, b *Reallocator) {
	t.Helper()
	type placed struct {
		id  ID
		ext addrspace.Extent
	}
	collect := func(r *Reallocator) []placed {
		var out []placed
		r.ForEach(func(id ID, ext addrspace.Extent) { out = append(out, placed{id, ext}) })
		return out
	}
	la, lb := collect(a), collect(b)
	if len(la) != len(lb) {
		t.Fatalf("%s seed %d: layout sizes differ: %d vs %d", variant, seed, len(la), len(lb))
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("%s seed %d: layout entry %d differs: %+v vs %+v", variant, seed, i, la[i], lb[i])
		}
	}
	sa, sb := a.Space(), b.Space()
	stats := [][2]int64{
		{a.Volume(), b.Volume()},
		{a.Footprint(), b.Footprint()},
		{a.StructSize(), b.StructSize()},
		{a.Delta(), b.Delta()},
		{a.Flushes(), b.Flushes()},
		{int64(a.Len()), int64(b.Len())},
		{sa.Moves(), sb.Moves()},
		{sa.Places(), sb.Places()},
		{sa.Checkpoints(), sb.Checkpoints()},
		{sa.BlockedWrites(), sb.BlockedWrites()},
		{sa.FreedVolume(), sb.FreedVolume()},
	}
	names := []string{"volume", "footprint", "structsize", "delta", "flushes", "len",
		"moves", "places", "checkpoints", "blockedwrites", "freedvolume"}
	for i, s := range stats {
		if s[0] != s[1] {
			t.Fatalf("%s seed %d: %s differs: batched %d vs serial %d", variant, seed, names[i], s[0], s[1])
		}
	}
}
