package core

import "realloc/internal/addrspace"

// ApplyGroup services a batched op group through the same per-op entry
// points the sequential stream uses: ops[i] runs as one Insert or
// Delete, and its error lands in errs[i]. The algorithm is unchanged —
// flush triggers, quotas, and checkpoints fire exactly as they would
// op by op, so every paper bound holds verbatim over the group. What a
// group entry buys the caller is the right to amortize everything
// *outside* the core across the group: the facade locks once,
// republishes its read mirrors once, and stamps telemetry once per
// group instead of once per op. errs must have at least len(ops)
// slots; slots for successful ops are set to nil.
func (r *Reallocator) ApplyGroup(ops []addrspace.Op, errs []error) {
	for i, op := range ops {
		if op.Del {
			errs[i] = r.Delete(op.ID)
		} else {
			errs[i] = r.Insert(op.ID, op.Size)
		}
	}
}
