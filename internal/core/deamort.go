package core

import (
	"fmt"

	"realloc/internal/addrspace"
	"realloc/internal/trace"
)

// updateLog records requests that arrive while a flush plan is executing
// (Section 3.3). Logged inserts are physically placed in the log region;
// logged deletes keep their object active until the drain applies them.
type updateLog struct {
	entries []logEntry
	head    int
	base    int64 // first cell of the log region
	end     int64 // next free cell
}

// logEntry is one logged request.
type logEntry struct {
	obj    *object
	size   int64
	insert bool
	dead   bool // annihilated insert+delete pair
}

// reset clears the log and rebases its region.
func (l *updateLog) reset(base int64) {
	l.entries = l.entries[:0]
	l.head = 0
	l.base, l.end = base, base
}

// pop removes and returns the oldest entry.
func (l *updateLog) pop() (logEntry, bool) {
	if l.head >= len(l.entries) {
		return logEntry{}, false
	}
	e := l.entries[l.head]
	l.head++
	return e, true
}

// pending returns the number of undrained entries.
func (l *updateLog) pending() int { return len(l.entries) - l.head }

// LogDepth reports how many mid-flush requests are waiting in the log
// (always 0 outside a flush and for non-deamortized variants).
func (r *Reallocator) LogDepth() int { return r.log.pending() }

// logInsert places a mid-flush insert at the end of the log region.
func (r *Reallocator) logInsert(id ID, size int64) error {
	pos := r.log.end
	obj := r.takeObject()
	obj.id, obj.size, obj.class, obj.place, obj.logIdx = id, size, ClassOf(size), inLog, len(r.log.entries)
	if err := r.placeCkpt(id, addrspace.Extent{Start: pos, Size: size}); err != nil {
		return err
	}
	r.objs[id] = obj
	r.vol += size
	r.volByClass[obj.class] += size
	if size > r.delta {
		r.delta = size
	}
	r.log.entries = append(r.log.entries, logEntry{obj: obj, size: size, insert: true})
	r.log.end += size
	return nil
}

// logDelete records a mid-flush delete. Deleting an object that was itself
// inserted during this flush annihilates the pair immediately; otherwise
// the object stays active until the drain re-applies the delete.
func (r *Reallocator) logDelete(obj *object) error {
	if obj.place == inLog {
		r.log.entries[obj.logIdx].dead = true
		if err := r.space.Remove(obj.id); err != nil {
			return err
		}
		r.vol -= obj.size
		r.volByClass[obj.class] -= obj.size
		delete(r.objs, obj.id)
		r.emit(trace.KDelete, obj.id, obj.size, 0, 0)
		r.putObject(obj)
		return nil
	}
	obj.deletePending = true
	r.log.entries = append(r.log.entries, logEntry{obj: obj, size: obj.size, insert: false})
	return nil
}

// drainInsert re-inserts a logged object into the (freshly flushed)
// structure, moving it out of the log region. This is the one extra
// reallocation Lemma 3.6 charges to logged objects.
func (r *Reallocator) drainInsert(obj *object) error {
	if obj.place != inLog {
		return fmt.Errorf("core: drain of object %d not in log", obj.id)
	}
	// A brand-new largest class appends its region beyond everything
	// placed so far; the layout becomes non-contiguous until the next
	// flush rebuilds it.
	if obj.class > r.maxRegionClass() {
		start := r.space.MaxEnd()
		if s := r.structEndCurrent(); s > start {
			start = s
		}
		reg := &region{
			class:    obj.class,
			payStart: start,
			paySize:  obj.size,
			payLive:  obj.size,
			bufSize:  r.bufCap(obj.size),
		}
		if _, err := r.moveObj(obj, reg.payStart); err != nil {
			return err
		}
		obj.place = inPayload
		r.regions = append(r.regions, reg)
		r.dirty = true
		return nil
	}
	if idx, ok := r.findBuffer(obj.class, obj.size); ok {
		reg := r.regions[idx]
		if _, err := r.moveObj(obj, reg.bufStart()+reg.bufFill); err != nil {
			return err
		}
		obj.place = inBuffer
		obj.bufClass = reg.class
		obj.bufIdx = len(reg.items)
		reg.items = append(reg.items, bufItem{id: obj.id, size: obj.size, class: obj.class})
		reg.bufFill += obj.size
		return nil
	}
	t := r.tailBuf
	pos := t.start + t.fill
	if t.fill+obj.size > t.cap {
		// Tail overflow: park the object past everything; finishFlush will
		// trigger the next flush, which rebuilds the canonical layout.
		pos = r.space.MaxEnd()
		if s := r.structEndCurrent(); s > pos {
			pos = s
		}
		r.dirty = true
	}
	if _, err := r.moveObj(obj, pos); err != nil {
		return err
	}
	obj.place = inBuffer
	obj.bufClass = tailBuffer
	obj.bufIdx = len(t.items)
	t.items = append(t.items, bufItem{id: obj.id, size: obj.size, class: obj.class})
	t.fill += obj.size
	return nil
}

// drainDelete applies a logged delete. The object has been kept active
// (and possibly reallocated by the flush) in the meantime.
func (r *Reallocator) drainDelete(obj *object) error {
	if !obj.deletePending {
		return fmt.Errorf("core: drain of delete for %d without pending mark", obj.id)
	}
	obj.deletePending = false
	r.vol -= obj.size
	r.volByClass[obj.class] -= obj.size
	delete(r.objs, obj.id)

	switch obj.place {
	case inBuffer:
		r.bufferEntry(obj).id = 0
		if err := r.space.Remove(obj.id); err != nil {
			return err
		}
	case inPayload:
		if idx, ok := r.regionIndex(obj.class); ok {
			r.regions[idx].payLive -= obj.size
		}
		if err := r.space.Remove(obj.id); err != nil {
			return err
		}
		dummy := bufItem{size: obj.size, class: obj.class}
		if idx, ok := r.findBuffer(obj.class, obj.size); ok {
			reg := r.regions[idx]
			reg.items = append(reg.items, dummy)
			reg.bufFill += obj.size
		} else {
			// Over-capacity tail dummies trigger the deferred flush in
			// finishFlush, mirroring "delete would overflow the last
			// buffer => flush".
			t := r.tailBuf
			t.items = append(t.items, dummy)
			t.fill += obj.size
		}
	default:
		return fmt.Errorf("core: drained delete of %d in unexpected state %d", obj.id, obj.place)
	}
	r.emit(trace.KDelete, obj.id, obj.size, 0, 0)
	r.putObject(obj)
	return nil
}
