// Package core implements the cost-oblivious storage reallocation
// algorithms of Bender, Farach-Colton, Fekete, Fineman, and Gilbert,
// "Cost-Oblivious Storage Reallocation" (PODS 2014).
//
// The package provides one engine with three variants:
//
//   - Amortized (Section 2): footprint at most (1+ε)·V after every
//     request; amortized reallocation cost O(f(w)·(1/ε)·log(1/ε)) for every
//     monotonically increasing subadditive cost function f simultaneously.
//     Flushes run atomically inside the triggering request and moves have
//     memmove semantics (a move may overlap its own source).
//   - Checkpointed (Section 3.2): same bounds in the database model:
//     every move's target is disjoint from its source and from all live
//     data, space freed since the last checkpoint is never rewritten, and
//     each flush blocks on O(1/ε) checkpoints. Footprint grows by an
//     additive O(∆) term while a flush is in progress.
//   - Deamortized (Section 3.3): additionally bounds the worst-case work
//     per request: inserting or deleting a size-w object reallocates at
//     most (4/ε')·w + ∆ volume, hence costs O((1/ε)·w·f(1) + f(∆)) under
//     any subadditive f. A tail buffer delays the next flush and a log
//     absorbs updates that arrive while a flush is in progress.
//
// # Data structure
//
// Objects are grouped into size classes: class c holds sizes in
// [2^c, 2^(c+1)). The address space is a concatenation, in increasing
// class order, of regions; region c is a payload segment (exactly the
// class-c volume at its last flush) followed by a buffer segment of
// ⌊ε'·V(c)⌋ cells. Inserts append to the earliest buffer of class ≥ c with
// room; deletes leave a payload hole and append a size-w dummy record to a
// buffer. When nothing has room, a buffer flush rebuilds a suffix of the
// regions: the boundary class b is the largest class such that everything
// buffered in classes ≥ b belongs to classes ≥ b, so a flush only ever
// moves objects at least as large (hence, by subadditivity, at least as
// cheap per unit) as the buffered objects that pay for it.
//
// The algorithm never evaluates a cost function — it is cost oblivious.
// It emits trace events; recorders price them after the fact.
//
// # Deviations from the paper
//
// The working-space offset for checkpointed flushes is
// max{L,L'} + B + ∆ + w (the paper uses max{L,L'} + B + ∆, without the
// size w of the flush-triggering insert). With the paper's offset there
// are small configurations in which the unpacking step would slide an
// object left by less than its own length, overlapping its old copy and
// violating the nonoverlap constraint the model demands (take one size-∆
// payload object, all buffer capacities rounded down to zero, and a
// size-1 trigger; packing ends at L+∆ and the lone object must slide ∆-1
// < ∆). The extra +w term restores a minimum slide of B+∆ ≥ any object
// size at the cost of at most one extra ∆ in the transient (mid-flush)
// footprint, leaving every asymptotic bound intact. EXPERIMENTS.md
// reports the measured additive slack.
package core
