package core

import (
	"fmt"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"realloc/internal/trace"
)

// refModel is the trivial reference: a map of live objects.
type refModel map[ID]int64

func (m refModel) volume() int64 {
	var v int64
	for _, s := range m {
		v += s
	}
	return v
}

// TestDifferentialAllVariants drives random request sequences through all
// three variants with paranoid checking and compares the live set, sizes,
// and volume against the reference model after every request.
func TestDifferentialAllVariants(t *testing.T) {
	for _, variant := range variants {
		variant := variant
		t.Run(variant.String(), func(t *testing.T) {
			err := quick.Check(func(seed uint64) bool {
				rng := rand.New(rand.NewPCG(seed, uint64(variant)))
				eps := []float64{0.5, 0.25, 0.1}[rng.IntN(3)]
				r := MustNew(Config{Epsilon: eps, Variant: variant, Paranoid: true, TrackCells: true})
				ref := refModel{}
				var ids []ID
				next := ID(1)
				for op := 0; op < 400; op++ {
					if len(ids) == 0 || rng.Float64() < 0.6 {
						size := int64(1 + rng.Int64N(96))
						if rng.IntN(12) == 0 {
							size = 1 + rng.Int64N(2000) // occasional giant
						}
						if err := r.Insert(next, size); err != nil {
							t.Logf("insert: %v", err)
							return false
						}
						ref[next] = size
						ids = append(ids, next)
						next++
					} else {
						i := rng.IntN(len(ids))
						id := ids[i]
						if err := r.Delete(id); err != nil {
							t.Logf("delete: %v", err)
							return false
						}
						delete(ref, id)
						ids[i] = ids[len(ids)-1]
						ids = ids[:len(ids)-1]
					}
					// Deletes logged during an active flush keep their
					// object active until the drain (the paper's
					// semantics); add the pending volume back in.
					var pendingVol int64
					pendingCnt := 0
					for _, o := range r.objs {
						if o.deletePending {
							pendingVol += o.size
							pendingCnt++
						}
					}
					if r.Volume() != ref.volume()+pendingVol {
						t.Logf("volume %d != ref %d + pending %d", r.Volume(), ref.volume(), pendingVol)
						return false
					}
					if r.Len() != len(ref)+pendingCnt {
						t.Logf("len %d != ref %d + pending %d", r.Len(), len(ref), pendingCnt)
						return false
					}
				}
				// Full state agreement at the end.
				if err := r.Drain(); err != nil {
					t.Log(err)
					return false
				}
				for id, size := range ref {
					ext, ok := r.Extent(id)
					if !ok || ext.Size != size {
						t.Logf("object %d: ext=%v ok=%v want size %d", id, ext, ok, size)
						return false
					}
					if !r.Space().HoldsData(id, ext) {
						t.Logf("object %d: data corrupted", id)
						return false
					}
				}
				return true
			}, &quick.Config{MaxCount: 12})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDeamortizedPerOpVolumeCap is the Lemma 3.6 property: every request
// reallocates at most (4/eps')*w + 2*Delta volume (one Delta for the
// indivisible last move, one for the flush-trigger evacuation).
func TestDeamortizedPerOpVolumeCap(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 31337))
		m := trace.NewMetrics()
		r := MustNew(Config{Epsilon: 0.4, Variant: Deamortized, Recorder: m})
		var ids []ID
		next := ID(1)
		prevMoved := int64(0)
		for op := 0; op < 600; op++ {
			var w int64
			var err error
			if len(ids) == 0 || rng.Float64() < 0.55 {
				w = 1 + rng.Int64N(128)
				err = r.Insert(next, w)
				ids = append(ids, next)
				next++
			} else {
				i := rng.IntN(len(ids))
				id := ids[i]
				if sz, ok := r.SizeOf(id); ok {
					w = sz
				}
				err = r.Delete(id)
				ids[i] = ids[len(ids)-1]
				ids = ids[:len(ids)-1]
			}
			if err != nil {
				t.Log(err)
				return false
			}
			moved := m.MovedVolume - prevMoved
			prevMoved = m.MovedVolume
			bound := int64(4/r.EpsPrime()*float64(w)) + 2*r.Delta() + 1
			if moved > bound {
				t.Logf("op %d (w=%d): moved %d > bound %d", op, w, moved, bound)
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 15})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFlushCompletesWithinEpsVolume is Lemma 3.4: a deamortized flush
// finishes before eps'*V_f additional update volume arrives.
func TestFlushCompletesWithinEpsVolume(t *testing.T) {
	m := trace.NewMetrics()
	r := MustNew(Config{Epsilon: 0.3, Variant: Deamortized, Recorder: m})
	rng := rand.New(rand.NewPCG(5, 5))
	var ids []ID
	next := ID(1)
	var flushStartVol int64
	var arrived int64
	worstFrac := 0.0
	for op := 0; op < 20000; op++ {
		wasActive := r.FlushActive()
		var w int64
		var err error
		if len(ids) == 0 || rng.Float64() < 0.52 {
			w = 1 + rng.Int64N(48)
			err = r.Insert(next, w)
			ids = append(ids, next)
			next++
		} else {
			i := rng.IntN(len(ids))
			id := ids[i]
			w, _ = r.SizeOf(id)
			err = r.Delete(id)
			ids[i] = ids[len(ids)-1]
			ids = ids[:len(ids)-1]
		}
		if err != nil {
			t.Fatal(err)
		}
		if wasActive {
			arrived += w
			if !r.FlushActive() && flushStartVol > 0 {
				if frac := float64(arrived) / float64(flushStartVol); frac > worstFrac {
					worstFrac = frac
				}
			}
		}
		if !wasActive && r.FlushActive() {
			flushStartVol = r.Volume()
			arrived = w // the triggering op's volume counts
		}
	}
	// Lemma 3.4 bound is eps'*V_f; allow the indivisible-object slack.
	limit := r.EpsPrime() + 0.05
	if worstFrac > limit {
		t.Fatalf("a flush absorbed %.4f of V_f in updates, bound %.4f", worstFrac, limit)
	}
	if m.Flushes == 0 {
		t.Fatal("no flushes")
	}
}

// TestMassDeleteThenReinsert exercises structure shrinkage: delete
// everything, reinsert a different mix, repeat.
func TestMassDeleteThenReinsert(t *testing.T) {
	for _, variant := range variants {
		variant := variant
		t.Run(variant.String(), func(t *testing.T) {
			r := MustNew(Config{Epsilon: 0.25, Variant: variant, Paranoid: true})
			next := ID(1)
			for round := 0; round < 5; round++ {
				var batch []ID
				for i := 0; i < 150; i++ {
					size := int64(1 + (int(next)*(round+3))%200)
					if err := r.Insert(next, size); err != nil {
						t.Fatalf("round %d insert: %v", round, err)
					}
					batch = append(batch, next)
					next++
				}
				for _, id := range batch {
					if err := r.Delete(id); err != nil {
						t.Fatalf("round %d delete: %v", round, err)
					}
				}
				if err := r.Drain(); err != nil {
					t.Fatal(err)
				}
				if r.Volume() != 0 {
					t.Fatalf("round %d: volume %d after deleting all", round, r.Volume())
				}
			}
		})
	}
}

// TestMonotoneGrowthThenShrink drives a sawtooth through each variant and
// verifies the footprint bound saw both extremes.
func TestMonotoneGrowthThenShrink(t *testing.T) {
	for _, variant := range variants {
		variant := variant
		t.Run(variant.String(), func(t *testing.T) {
			m := trace.NewMetrics()
			r := MustNew(Config{Epsilon: 0.25, Variant: variant, Recorder: m})
			next := ID(1)
			var live []ID
			// Grow.
			for i := 0; i < 2000; i++ {
				if err := r.Insert(next, int64(1+i%64)); err != nil {
					t.Fatal(err)
				}
				live = append(live, next)
				next++
			}
			peak := r.Volume()
			// Shrink to 10%.
			for len(live) > 200 {
				id := live[0]
				live = live[1:]
				if err := r.Delete(id); err != nil {
					t.Fatal(err)
				}
			}
			if err := r.Drain(); err != nil {
				t.Fatal(err)
			}
			if r.Volume() >= peak/5 {
				t.Fatalf("volume %d did not shrink (peak %d)", r.Volume(), peak)
			}
			// The footprint must have come down with it.
			if got := float64(r.StructSize()); got > 1.3*float64(r.Volume())+2 {
				t.Fatalf("structure %v did not shrink with volume %d", got, r.Volume())
			}
			if m.MaxRatioQuiescent > 1.27 {
				t.Fatalf("quiescent ratio %v exceeded bound", m.MaxRatioQuiescent)
			}
		})
	}
}

// TestIDReuseAfterDrainedDelete: an ID can be reused once its delete has
// fully completed.
func TestIDReuseAfterDrainedDelete(t *testing.T) {
	for _, variant := range variants {
		r := MustNew(Config{Epsilon: 0.5, Variant: variant, Paranoid: true})
		if err := r.Insert(1, 10); err != nil {
			t.Fatal(err)
		}
		if err := r.Delete(1); err != nil {
			t.Fatal(err)
		}
		if err := r.Drain(); err != nil {
			t.Fatal(err)
		}
		if err := r.Insert(1, 20); err != nil {
			t.Fatalf("%v: reuse after delete: %v", variant, err)
		}
		if sz, _ := r.SizeOf(1); sz != 20 {
			t.Fatalf("%v: reused object size %d", variant, sz)
		}
	}
}

// TestManyClassesSimultaneously spans 20 size classes at once.
func TestManyClassesSimultaneously(t *testing.T) {
	for _, variant := range variants {
		variant := variant
		t.Run(variant.String(), func(t *testing.T) {
			r := MustNew(Config{Epsilon: 0.5, Variant: variant, Paranoid: true})
			id := ID(1)
			for c := 0; c < 20; c++ {
				for k := 0; k < 3; k++ {
					if err := r.Insert(id, int64(1)<<uint(c)); err != nil {
						t.Fatalf("class %d: %v", c, err)
					}
					id++
				}
			}
			// Delete the middle copy of each class.
			for c := 0; c < 20; c++ {
				if err := r.Delete(ID(c*3 + 2)); err != nil {
					t.Fatal(err)
				}
			}
			if err := r.Drain(); err != nil {
				t.Fatal(err)
			}
			if err := r.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if got, want := r.Len(), 40; got != want {
				t.Fatalf("len = %d, want %d", got, want)
			}
		})
	}
}

// TestErrorMessagesCarryContext spot-checks error wrapping.
func TestErrorMessagesCarryContext(t *testing.T) {
	r := MustNew(Config{Epsilon: 0.5})
	err := r.Insert(1, -5)
	if err == nil || fmt.Sprintf("%v", err) == "" {
		t.Fatal("missing error")
	}
}
