package core

import (
	"math/rand/v2"
	"os"
	"strconv"
	"testing"

	"realloc/internal/trace"
)

// soakOps returns the per-variant request count: the default keeps the
// per-PR run fast; the nightly CI job raises it through REALLOC_SOAK_OPS
// (any positive integer) together with a longer -timeout.
func soakOps(t *testing.T) int {
	const def = 120000
	v := os.Getenv("REALLOC_SOAK_OPS")
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		t.Fatalf("bad REALLOC_SOAK_OPS %q: %v", v, err)
	}
	return n
}

// TestSoak runs a long, heavy-tailed churn through every variant with
// periodic full invariant checks and a final bound audit. Skipped under
// -short.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	for _, variant := range variants {
		variant := variant
		t.Run(variant.String(), func(t *testing.T) {
			m := trace.NewMetrics()
			r := MustNew(Config{Epsilon: 0.25, Variant: variant, Recorder: m, TrackCells: true})
			rng := rand.New(rand.NewPCG(2026, uint64(variant)))
			var live []ID
			next := ID(1)
			ops := soakOps(t)
			for op := 0; op < ops; op++ {
				grow := len(live) == 0 || rng.Float64() < 0.52
				// Periodic regime shifts: bursts of deletes, bursts of
				// giants.
				switch (op / 10000) % 3 {
				case 1:
					grow = len(live) == 0 || rng.Float64() < 0.35
				case 2:
					grow = rng.Float64() < 0.65
				}
				if len(live) == 0 {
					grow = true
				}
				if grow {
					size := int64(1 + rng.Int64N(128))
					if rng.IntN(200) == 0 {
						size = 1 + rng.Int64N(16384)
					}
					if err := r.Insert(next, size); err != nil {
						t.Fatalf("op %d insert: %v", op, err)
					}
					live = append(live, next)
					next++
				} else {
					i := rng.IntN(len(live))
					if err := r.Delete(live[i]); err != nil {
						t.Fatalf("op %d delete: %v", op, err)
					}
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
				}
				if op%5000 == 4999 {
					if err := r.CheckInvariants(); err != nil {
						t.Fatalf("op %d: %v", op, err)
					}
				}
			}
			if err := r.Drain(); err != nil {
				t.Fatal(err)
			}
			if err := r.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if m.MaxRatioQuiescent > 1.27 {
				t.Errorf("quiescent footprint ratio peaked at %v", m.MaxRatioQuiescent)
			}
			if m.Meter.Ratio("unit") > 60 {
				t.Errorf("unit cost ratio %v suspiciously high", m.Meter.Ratio("unit"))
			}
			t.Logf("%s soak: %d ops, %d flushes, peak quiescent ratio %.4f, unit ratio %.2f",
				variant, ops, m.Flushes, m.MaxRatioQuiescent, m.Meter.Ratio("unit"))
		})
	}
}
