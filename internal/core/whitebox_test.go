package core

import (
	"testing"

	"realloc/internal/trace"
)

// TestBoundaryClass exercises the boundary computation on constructed
// buffer contents.
func TestBoundaryClass(t *testing.T) {
	r := MustNew(Config{Epsilon: 1, EpsPrime: 0.5, Variant: Amortized})
	// Build regions for classes 0..3 via inserts.
	for i, size := range []int64{1, 2, 4, 8} {
		if err := r.Insert(ID(i+1), size); err != nil {
			t.Fatal(err)
		}
	}
	// With empty buffers, the boundary is the trigger class itself.
	for c := 0; c <= 3; c++ {
		if b := r.boundaryClass(c); b != c {
			t.Fatalf("empty buffers: boundary(%d) = %d", c, b)
		}
	}
	// Put a class-0 item into the class-3 buffer (by hand, mirroring a
	// buffered insert) and the boundary must drop to 0 for any trigger.
	idx, ok := r.regionIndex(3)
	if !ok {
		t.Fatal("no class-3 region")
	}
	reg := r.regions[idx]
	reg.items = append(reg.items, bufItem{id: 0, size: 1, class: 0})
	reg.bufFill++
	if b := r.boundaryClass(3); b != 0 {
		t.Fatalf("boundary with class-0 item in class-3 buffer = %d", b)
	}
	reg.items = reg.items[:0]
	reg.bufFill = 0
	// A class-2 item sitting in the class-2 buffer does NOT constrain a
	// boundary above it: buffers below b are simply not flushed.
	idx2, _ := r.regionIndex(2)
	reg2 := r.regions[idx2]
	reg2.items = append(reg2.items, bufItem{id: 0, size: 4, class: 2})
	reg2.bufFill += 4
	if b := r.boundaryClass(3); b != 3 {
		t.Fatalf("boundary = %d, want 3 (class-2 buffer is below it)", b)
	}
	// A class-2 item in the class-3 buffer pulls the boundary down to 2.
	reg.items = append(reg.items, bufItem{id: 0, size: 4, class: 2})
	reg.bufFill += 4
	if b := r.boundaryClass(3); b != 2 {
		t.Fatalf("boundary = %d, want 2", b)
	}
	// The trigger class caps the boundary from above.
	if b := r.boundaryClass(1); b != 1 {
		t.Fatalf("boundary = %d, want 1", b)
	}
}

// TestComputeLayout verifies the rebuilt suffix geometry.
func TestComputeLayout(t *testing.T) {
	r := MustNew(Config{Epsilon: 1, EpsPrime: 0.5, Variant: Amortized})
	sizes := map[int]int64{0: 3, 2: 10, 4: 20} // per-class volumes
	for c, v := range sizes {
		r.volByClass[c] = v
	}
	r.vol = 33
	lp := r.computeLayout(0)
	if lp.suffixStart != 0 {
		t.Fatalf("suffix start = %d", lp.suffixStart)
	}
	if len(lp.newRegions) != 3 {
		t.Fatalf("regions = %d", len(lp.newRegions))
	}
	classes := []int{0, 2, 4}
	pos := int64(0)
	for i, reg := range lp.newRegions {
		if reg.class != classes[i] {
			t.Fatalf("region %d class %d", i, reg.class)
		}
		if reg.payStart != pos {
			t.Fatalf("region %d starts at %d, want %d", i, reg.payStart, pos)
		}
		if reg.paySize != sizes[reg.class] {
			t.Fatalf("region %d payload %d", i, reg.paySize)
		}
		if reg.bufSize != sizes[reg.class]/2 { // eps' = 1/2
			t.Fatalf("region %d buffer %d", i, reg.bufSize)
		}
		pos = reg.end()
	}
	if lp.newEnd != pos {
		t.Fatalf("newEnd = %d, want %d", lp.newEnd, pos)
	}
	// Boundary above some classes: suffix starts after the untouched
	// prefix.
	r.regions = []*region{{class: 0, payStart: 0, paySize: 3, bufSize: 1}}
	lp = r.computeLayout(2)
	if lp.flushIdx != 1 || lp.suffixStart != 4 {
		t.Fatalf("flushIdx=%d suffixStart=%d", lp.flushIdx, lp.suffixStart)
	}
}

// TestFlushMovesObjectsAtMostTwice checks the schedule bound: within one
// flush no object moves more than twice.
func TestFlushMovesObjectsAtMostTwice(t *testing.T) {
	for _, v := range []Variant{Amortized, Checkpointed} {
		t.Run(v.String(), func(t *testing.T) {
			log := &trace.Log{}
			r := MustNew(Config{Epsilon: 0.5, Variant: v, Recorder: log, Paranoid: true})
			// Dense mixed workload to force several flushes.
			id := ID(1)
			for i := 0; i < 400; i++ {
				size := int64(1 + i%40)
				if err := r.Insert(id, size); err != nil {
					t.Fatal(err)
				}
				id++
				if i%3 == 2 {
					if err := r.Delete(id - 2); err != nil {
						t.Fatal(err)
					}
				}
			}
			// Group move events per flush window.
			perFlush := map[int64]int{}
			inFlush := false
			for _, e := range log.Events {
				switch e.Kind {
				case trace.KFlushStart:
					inFlush = true
					perFlush = map[int64]int{}
				case trace.KMove:
					if inFlush {
						perFlush[e.ID]++
						if perFlush[e.ID] > 2 {
							t.Fatalf("object %d moved %d times in one flush", e.ID, perFlush[e.ID])
						}
					}
				case trace.KFlushEnd:
					inFlush = false
				}
			}
		})
	}
}

// TestCheckpointedStrictness: the checkpointed variant runs on a strict
// substrate; reaching the end of a heavy workload without errors proves
// every move target was disjoint from its source and from freed space
// (Lemma 3.2 operationally).
func TestCheckpointedStrictness(t *testing.T) {
	r := MustNew(Config{Epsilon: 0.25, Variant: Checkpointed, Paranoid: true, TrackCells: true})
	if !r.Space().Options().StrictNonOverlap {
		t.Fatal("checkpointed variant must use a strict substrate")
	}
	if !r.Space().Options().CheckpointRule {
		t.Fatal("checkpointed variant must enforce the checkpoint rule")
	}
	id := ID(1)
	for i := 0; i < 600; i++ {
		if err := r.Insert(id, int64(1+(i*7)%100)); err != nil {
			t.Fatal(err)
		}
		id++
		if i%2 == 1 {
			if err := r.Delete(id - 2); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestCheckpointsPerFlushBound asserts Lemma 3.3's shape with explicit
// constants: checkpoints per flush stay within O(1/eps').
func TestCheckpointsPerFlushBound(t *testing.T) {
	for _, eps := range []float64{0.5, 0.2} {
		m := trace.NewMetrics()
		r := MustNew(Config{Epsilon: eps, Variant: Checkpointed, Recorder: m})
		id := ID(1)
		for i := 0; i < 3000; i++ {
			if err := r.Insert(id, int64(1+(i*13)%64)); err != nil {
				t.Fatal(err)
			}
			id++
			if i%2 == 1 {
				if err := r.Delete(id - 2); err != nil {
					t.Fatal(err)
				}
			}
		}
		if m.Flushes == 0 {
			t.Fatal("no flushes happened")
		}
		bound := 6/r.EpsPrime() + 8
		if float64(m.MaxCheckpointsFlush) > bound {
			t.Fatalf("eps=%v: %d checkpoints in one flush, bound %v", eps, m.MaxCheckpointsFlush, bound)
		}
	}
}

// TestDeamortizedCheckpointsPerOp: deamortization also bounds the
// checkpoints any single request blocks on at O(1/eps') (Section 3.3's
// "worst-case O(1/ε) checkpoints per operation").
func TestDeamortizedCheckpointsPerOp(t *testing.T) {
	m := trace.NewMetrics()
	r := MustNew(Config{Epsilon: 0.25, Variant: Deamortized, Recorder: m})
	id := ID(1)
	for i := 0; i < 4000; i++ {
		if err := r.Insert(id, int64(1+(i*11)%64)); err != nil {
			t.Fatal(err)
		}
		id++
		if i%2 == 1 {
			if err := r.Delete(id - 2); err != nil {
				t.Fatal(err)
			}
		}
	}
	if m.CheckpointsTotal == 0 {
		t.Fatal("no checkpoints at all")
	}
	bound := int64(3/r.EpsPrime()) + 8
	if m.MaxCheckpointsPerOp > bound {
		t.Fatalf("one request blocked on %d checkpoints, bound %d", m.MaxCheckpointsPerOp, bound)
	}
}

// TestAmortizedNeverCheckpoints: the Section 2 variant runs on RAM rules
// and must never emit checkpoint events.
func TestAmortizedNeverCheckpoints(t *testing.T) {
	m := trace.NewMetrics()
	r := MustNew(Config{Epsilon: 0.25, Variant: Amortized, Recorder: m})
	for i := 1; i <= 500; i++ {
		if err := r.Insert(ID(i), int64(1+i%30)); err != nil {
			t.Fatal(err)
		}
	}
	if m.CheckpointsTotal != 0 {
		t.Fatalf("amortized variant checkpointed %d times", m.CheckpointsTotal)
	}
}

// TestLayoutAccessor checks the SegmentInfo view against inserted state.
func TestLayoutAccessor(t *testing.T) {
	r := MustNew(Config{Epsilon: 1, EpsPrime: 0.5, Variant: Deamortized})
	if err := r.Insert(1, 4); err != nil { // class 2
		t.Fatal(err)
	}
	if err := r.Insert(2, 16); err != nil { // class 4
		t.Fatal(err)
	}
	segs := r.Layout()
	if len(segs) != 3 { // two classes + tail
		t.Fatalf("segments = %d", len(segs))
	}
	if segs[0].Class != 2 || segs[1].Class != 4 {
		t.Fatalf("classes: %+v", segs)
	}
	if !segs[2].Tail {
		t.Fatal("missing tail segment")
	}
	if segs[0].PaySize != 4 || segs[1].PaySize != 16 {
		t.Fatalf("payload sizes: %+v", segs)
	}
	if segs[1].PayStart != segs[0].BufStart+segs[0].BufSize {
		t.Fatal("regions not contiguous in layout view")
	}
}

// TestTriggerExtraRealloc (Section 3.2): a flush-triggering insert is
// placed once and then reallocated by its own flush — exactly the "+1
// reallocation for the flush-triggering item" of the analysis.
func TestTriggerExtraRealloc(t *testing.T) {
	log := &trace.Log{}
	r := MustNew(Config{Epsilon: 0.5, Variant: Checkpointed, Recorder: log, Paranoid: true})
	// Fill buffers until an insert triggers a flush.
	id := ID(1)
	var trigger ID
	for i := 0; i < 1000 && trigger == 0; i++ {
		before := r.Flushes()
		if err := r.Insert(id, 8); err != nil {
			t.Fatal(err)
		}
		if r.Flushes() > before {
			trigger = id
		}
		id++
	}
	if trigger == 0 {
		t.Fatal("no flush was triggered")
	}
	moves := log.MovesByID()[int64(trigger)]
	if moves < 1 {
		t.Fatalf("trigger object moved %d times, want >= 1 (evacuation)", moves)
	}
	if moves > 2 {
		t.Fatalf("trigger object moved %d times, want <= 2", moves)
	}
}

// TestDeleteOfBufferedObject: deleting a buffered object converts its
// entry to a dummy in place, consuming no extra buffer space.
func TestDeleteOfBufferedObject(t *testing.T) {
	r := MustNew(Config{Epsilon: 1, EpsPrime: 0.5, Variant: Amortized, Paranoid: true})
	// Class-3 region with a buffer big enough for a small object.
	if err := r.Insert(1, 8); err != nil {
		t.Fatal(err)
	}
	// This insert lands in the class-3 buffer (no class-0 region exists).
	if err := r.Insert(2, 2); err != nil {
		t.Fatal(err)
	}
	obj := r.objs[2]
	if obj.place != inBuffer {
		t.Fatalf("object 2 not buffered: %v", obj.place)
	}
	idx, _ := r.regionIndex(obj.bufClass)
	fillBefore := r.regions[idx].bufFill
	if err := r.Delete(2); err != nil {
		t.Fatal(err)
	}
	if got := r.regions[idx].bufFill; got != fillBefore {
		t.Fatalf("buffer fill changed %d -> %d on in-place dummy conversion", fillBefore, got)
	}
	if r.regions[idx].items[0].id != 1 && r.regions[idx].items[0].id != 0 {
		t.Fatal("buffer entry not dummied")
	}
}

// TestWorkQuota sanity-checks the deamortized work budget arithmetic.
func TestWorkQuota(t *testing.T) {
	r := MustNew(Config{Epsilon: 0.6, EpsPrime: 0.1, Variant: Deamortized})
	if q := r.workQuota(10); q != 400 { // 4/0.1 * 10
		t.Fatalf("quota = %d", q)
	}
	if q := r.workQuota(1 << 62); q <= 0 {
		t.Fatalf("quota overflowed: %d", q)
	}
}

// TestDeamortizedLogAnnihilation: insert+delete of the same object during
// one flush must cancel without ever entering the structure.
func TestDeamortizedLogAnnihilation(t *testing.T) {
	r, trigger := deamortizedMidFlush(t)
	_ = trigger
	if r.plan == nil {
		t.Fatal("expected an active flush")
	}
	// Insert and immediately delete while the flush is active. Use tiny
	// sizes so their work quota cannot finish the flush.
	if err := r.Insert(9001, 1); err != nil {
		t.Fatal(err)
	}
	if r.plan != nil {
		if r.objs[9001] == nil || r.objs[9001].place != inLog {
			t.Fatal("mid-flush insert should be logged")
		}
		if err := r.Delete(9001); err != nil {
			t.Fatal(err)
		}
		if r.objs[9001] != nil {
			t.Fatal("annihilated object still present")
		}
		if r.Has(9001) {
			t.Fatal("Has(annihilated)")
		}
	}
	if err := r.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDeamortizedDeferredDelete: deleting a pre-flush object mid-flush
// keeps it active (the paper's definition) until the drain applies it.
func TestDeamortizedDeferredDelete(t *testing.T) {
	r, _ := deamortizedMidFlush(t)
	if r.plan == nil {
		t.Skip("flush completed too quickly for this construction")
	}
	// Find some object that predates the flush.
	var victim ID
	for id, o := range r.objs {
		if o.place == inPayload && !o.deletePending {
			victim = id
			break
		}
	}
	if victim == 0 {
		t.Fatal("no payload object found")
	}
	volBefore := r.Volume()
	if err := r.Delete(victim); err != nil {
		t.Fatal(err)
	}
	if r.plan != nil {
		if r.Volume() != volBefore {
			t.Fatal("volume dropped before the delete completed")
		}
		if r.Has(victim) {
			t.Fatal("deletePending object should not report as live")
		}
		if err := r.Delete(victim); err == nil {
			t.Fatal("double delete of pending object accepted")
		}
	}
	if err := r.Drain(); err != nil {
		t.Fatal(err)
	}
	if r.Volume() != volBefore-r.objsSizeOfDeleted(victim) {
		// After drain the volume reflects the delete; objsSizeOfDeleted
		// returns the recorded size (helper below).
		t.Fatalf("volume %d after drain", r.Volume())
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// objsSizeOfDeleted is a test helper: size of a deleted object is no
// longer recorded, so remember it via the trace-free path. It returns the
// size the test expects (deduced from construction: all inserts below use
// size 6 for payload objects).
func (r *Reallocator) objsSizeOfDeleted(ID) int64 { return 6 }

// deamortizedMidFlush builds a deamortized reallocator paused in the
// middle of a flush.
func deamortizedMidFlush(t *testing.T) (*Reallocator, ID) {
	t.Helper()
	r := MustNew(Config{Epsilon: 0.3, EpsPrime: 0.05, Variant: Deamortized, Paranoid: true, TrackCells: true})
	id := ID(1)
	// Insert uniform objects until a flush starts and stays active.
	for i := 0; i < 20000; i++ {
		if err := r.Insert(id, 6); err != nil {
			t.Fatal(err)
		}
		id++
		if r.plan != nil {
			return r, id - 1
		}
	}
	t.Fatal("could not construct an active flush")
	return nil, 0
}

// TestDeamortizedNewMaxClassMidFlush: a record-breaking object arriving
// during a flush goes through the log and opens its region at drain time.
func TestDeamortizedNewMaxClassMidFlush(t *testing.T) {
	r, _ := deamortizedMidFlush(t)
	if r.plan == nil {
		t.Skip("flush completed too quickly")
	}
	huge := int64(100000)
	if err := r.Insert(777777, huge); err != nil {
		t.Fatal(err)
	}
	ext, ok := r.Extent(777777)
	if !ok || ext.Size != huge {
		t.Fatalf("huge object extent: %v %v", ext, ok)
	}
	if err := r.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if r.Delta() != huge {
		t.Fatalf("delta = %d", r.Delta())
	}
	// The object survives the next full flush cycle too.
	for i := 0; i < 500; i++ {
		if err := r.Insert(ID(800000+i), 3); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Drain(); err != nil {
		t.Fatal(err)
	}
	if !r.Has(777777) {
		t.Fatal("huge object lost")
	}
}

// TestLogDepth: mid-flush requests queue in the log and drain to zero.
func TestLogDepth(t *testing.T) {
	r, _ := deamortizedMidFlush(t)
	if r.plan == nil {
		t.Skip("flush completed too quickly")
	}
	if err := r.Insert(50001, 1); err != nil {
		t.Fatal(err)
	}
	if r.plan != nil && r.LogDepth() == 0 {
		t.Fatal("mid-flush insert not logged")
	}
	if err := r.Drain(); err != nil {
		t.Fatal(err)
	}
	if r.LogDepth() != 0 {
		t.Fatalf("log depth %d after drain", r.LogDepth())
	}
}

// TestDirtyPathsEventuallyClean: stress the deamortized variant with a
// volatile workload and verify the structure returns to a canonical state
// after draining.
func TestDirtyPathsEventuallyClean(t *testing.T) {
	r := MustNew(Config{Epsilon: 0.5, EpsPrime: 0.05, Variant: Deamortized, Paranoid: true})
	id := ID(1)
	for round := 0; round < 30; round++ {
		for i := 0; i < 100; i++ {
			if err := r.Insert(id, int64(1+int(id)%120)); err != nil {
				t.Fatal(err)
			}
			id++
		}
		for del := id - 100; del < id-50; del++ {
			if err := r.Delete(del); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := r.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
