package core

import "realloc/internal/trace"

// flushPlan is the fully computed move schedule of a Section 3 flush. The
// atomic Checkpointed variant executes it in one request; the Deamortized
// variant executes (4/ε')·w volume of it per subsequent request.
type flushPlan struct {
	moves       []planMove
	next        int
	movedVolume int64
}

// planMove relocates one object to a precomputed target.
type planMove struct {
	id   ID
	to   int64
	size int64
}

// startFlush builds and installs a Section 3.2 flush plan. For an
// insert-triggered flush the trigger object has already been placed at L
// (the endpoint of the last object) and appended, over capacity, to the
// last buffer; wtrig is its size (0 for delete-triggered flushes).
//
// The schedule is:
//
//  1. evacuate every buffered object (trigger included) to the overflow
//     segment starting at W = max{L,L'} + B + ∆ + wtrig,
//  2. pack all flushed payload objects rightward, ending at W,
//  3. unpack them leftward to their final positions,
//  4. pull the buffered objects down from the overflow segment into their
//     payload tails.
//
// Every move's target is provably disjoint from its source (see package
// documentation for why the +wtrig term is needed), and any move landing
// on space freed since the last checkpoint blocks on — triggers and
// counts — a checkpoint.
func (r *Reallocator) startFlush(trigClass int, wtrig int64) error {
	r.flushes++
	b := r.boundaryClass(trigClass)
	r.rec.Record(trace.Event{Kind: trace.KFlushStart, From: int64(b), Volume: r.vol})

	L := r.space.MaxEnd() - wtrig
	lp := r.computeLayout(b)
	payload, buffered := r.flushedObjects(b)
	slots := lp.finalSlots(payload, buffered, nil)
	B := r.flushedBufferSpace(lp.flushIdx)
	LPrime := lp.newEnd - wtrig
	W := L
	if LPrime > W {
		W = LPrime
	}
	W += B + r.delta + wtrig

	var U int64
	for _, o := range buffered {
		U += o.size
	}

	moves := make([]planMove, 0, 2*len(payload)+2*len(buffered))
	// Step 1: evacuate buffered objects to [W, W+U).
	off := W
	for _, o := range buffered {
		moves = append(moves, planMove{id: o.id, to: off, size: o.size})
		off += o.size
	}
	// Step 2: pack payload objects rightward ending at W (largest class
	// first; right-to-left within a class — i.e., reverse address order).
	cursor := W
	for i := len(payload) - 1; i >= 0; i-- {
		o := payload[i]
		cursor -= o.size
		moves = append(moves, planMove{id: o.id, to: cursor, size: o.size})
	}
	// Step 3: unpack leftward to final positions (smallest class first).
	for _, o := range payload {
		moves = append(moves, planMove{id: o.id, to: slots[o.id], size: o.size})
	}
	// Step 4: buffered objects down into their payload tails.
	for _, o := range buffered {
		moves = append(moves, planMove{id: o.id, to: slots[o.id], size: o.size})
	}

	// Bookkeeping switches to the post-flush geometry now; physical
	// positions catch up as the plan executes. Every flushed object ends
	// in its payload.
	for _, o := range payload {
		o.place = inPayload
	}
	for _, o := range buffered {
		o.place = inPayload
	}
	r.install(lp)
	r.plan = &flushPlan{moves: moves}

	// Updates arriving while the plan runs are placed in the log region,
	// which begins past both the overflow segment and the new tail buffer.
	logBase := W + U
	if r.tailBuf != nil && r.tailBuf.end() > logBase {
		logBase = r.tailBuf.end()
	}
	r.log.reset(logBase)
	return nil
}

// advance executes up to q volume of the active flush plan, then drains
// the log; it completes the flush when it reaches the end. A deferred
// flush (tail buffer overflowed during the drain) restarts the cycle.
func (r *Reallocator) advance(q int64) error {
	_, err := r.advanceQuota(q)
	return err
}

// advanceQuota is advance returning the unused quota.
func (r *Reallocator) advanceQuota(q int64) (int64, error) {
	for q > 0 && r.plan != nil {
		p := r.plan
		if p.next < len(p.moves) {
			m := p.moves[p.next]
			p.next++
			moved, err := r.moveCkpt(m.id, m.to)
			if err != nil {
				return q, err
			}
			if moved {
				q -= m.size
				p.movedVolume += m.size
			}
			continue
		}
		if e, ok := r.log.pop(); ok {
			if e.dead {
				continue
			}
			q -= e.size
			var err error
			if e.insert {
				err = r.drainInsert(e.obj)
			} else {
				err = r.drainDelete(e.obj)
			}
			if err != nil {
				return q, err
			}
			continue
		}
		if err := r.finishFlush(); err != nil {
			return q, err
		}
	}
	if q < 0 {
		q = 0
	}
	return q, nil
}

// finishFlush retires the completed plan and, if the tail buffer
// overflowed while the log drained, immediately triggers the next flush.
func (r *Reallocator) finishFlush() error {
	p := r.plan
	r.plan = nil
	r.rec.Record(trace.Event{Kind: trace.KFlushEnd, Size: p.movedVolume})
	r.log.reset(0)
	if t := r.tailBuf; t != nil && t.fill > t.cap {
		return r.startFlush(maxClassSentinel, 0)
	}
	return nil
}

// maxClassSentinel is an effectively unbounded trigger class for flushes
// not triggered by a specific request (deferred tail-overflow flushes);
// the boundary computation lowers it to the smallest buffered class.
const maxClassSentinel = 1 << 20
