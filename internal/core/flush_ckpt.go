package core

import (
	"realloc/internal/addrspace"
	"realloc/internal/telemetry"
	"realloc/internal/trace"
)

// flushPlan is the fully computed move schedule of a Section 3 flush. The
// atomic Checkpointed variant executes it in one request; the Deamortized
// variant executes (4/ε')·w volume of it per subsequent request, each
// request's share consumed as one volume-bounded chunk. The schedule is
// handed to a resumable substrate session (addrspace.BeginMoves) that
// validated it in full at startFlush and advances it chunk by chunk with
// incremental index splices; sess is nil only under Config.SerialFlush,
// which drives the per-move reference path instead, and for empty
// schedules.
type flushPlan struct {
	moves       []addrspace.Relocation
	maxRef      int
	sess        *addrspace.MoveSession
	next        int
	movedVolume int64
	// Telemetry accounting (maintained only when Config.Telemetry is
	// set): activeNanos sums the wall-clock of plan construction plus
	// every executed chunk and log-drain slice — the flush's actual
	// execution time, excluding the caller think-time between the ops
	// that carry a deamortized flush; stallNanos is the part performed
	// by ops that did not trigger the flush; chunks counts quota slices.
	activeNanos int64
	stallNanos  int64
	chunks      int64
}

// startFlush builds and installs a Section 3.2 flush plan. For an
// insert-triggered flush the trigger object has already been placed at L
// (the endpoint of the last object) and appended, over capacity, to the
// last buffer; wtrig is its size (0 for delete-triggered flushes).
//
// The schedule is:
//
//  1. evacuate every buffered object (trigger included) to the overflow
//     segment starting at W = max{L,L'} + B + ∆ + wtrig,
//  2. pack all flushed payload objects rightward, ending at W,
//  3. unpack them leftward to their final positions,
//  4. pull the buffered objects down from the overflow segment into their
//     payload tails.
//
// Every move's target is provably disjoint from its source (see package
// documentation for why the +wtrig term is needed), and any move landing
// on space freed since the last checkpoint blocks on — triggers and
// counts — a checkpoint.
func (r *Reallocator) startFlush(trigClass int, wtrig int64) error {
	var t0 int64
	if r.tel != nil {
		t0 = telemetry.Now()
	}
	r.markCopy()
	r.flushes++
	b := r.boundaryClass(trigClass)
	r.rec.Record(trace.Event{Kind: trace.KFlushStart, From: int64(b), Volume: r.vol})

	L := r.space.MaxEnd() - wtrig
	lp := r.computeLayout(b)
	// Every flushed object sits at or beyond the suffix start — except a
	// flush-triggering insert, which placeTrigger put at L, the pre-flush
	// endpoint of the last object; deletes can have emptied the suffix's
	// tail so that L lies below it. Widen the walk to cover the trigger.
	walkStart := lp.suffixStart
	if wtrig > 0 && L < walkStart {
		walkStart = L
	}
	payload, buffered := r.flushedObjects(b, walkStart)
	lp.assignSlots(payload, buffered, nil)
	B := r.flushedBufferSpace(lp.flushIdx)
	LPrime := lp.newEnd - wtrig
	W := L
	if LPrime > W {
		W = LPrime
	}
	W += B + r.delta + wtrig

	var U int64
	for _, o := range buffered {
		U += o.size
	}

	// Plan refs: payload[i] is ref i, buffered[i] is ref len(payload)+i.
	moves := r.planBuf[:0]
	push := func(id ID, to int64, ref int32) {
		moves = append(moves, addrspace.Relocation{ID: id, To: to, Ref: ref})
	}
	bufRef := func(i int) int32 { return int32(len(payload) + i) }
	// Step 1: evacuate buffered objects to [W, W+U).
	off := W
	for i, o := range buffered {
		push(o.id, off, bufRef(i))
		off += o.size
	}
	// Step 2: pack payload objects rightward ending at W (largest class
	// first; right-to-left within a class — i.e., reverse address order).
	cursor := W
	for i := len(payload) - 1; i >= 0; i-- {
		o := payload[i]
		cursor -= o.size
		push(o.id, cursor, int32(i))
	}
	// Step 3: unpack leftward to final positions (smallest class first).
	for i, o := range payload {
		push(o.id, o.slot, int32(i))
	}
	// Step 4: buffered objects down into their payload tails.
	for i, o := range buffered {
		push(o.id, o.slot, bufRef(i))
	}
	r.planBuf = moves

	maxRef := len(payload) + len(buffered)
	// The whole schedule is validated against the pre-flush layout here;
	// the session then advances it in quota-bounded chunks that splice the
	// index incrementally, so no chunk pays a suffix rebuild. SerialFlush
	// keeps the per-move reference path for cross-checking.
	var sess *addrspace.MoveSession
	if !r.cfg.SerialFlush && len(moves) > 0 {
		var err error
		sess, err = r.space.BeginMoves(moves, maxRef, r.buildFinalOrder(&lp, payload, buffered))
		if err != nil {
			return err
		}
	}

	// Bookkeeping switches to the post-flush geometry now; physical
	// positions catch up as the plan executes. Every flushed object ends
	// in its payload.
	for _, o := range payload {
		o.place = inPayload
	}
	for _, o := range buffered {
		o.place = inPayload
	}
	r.install(lp)
	r.plan = &flushPlan{
		moves:  moves,
		maxRef: maxRef,
		sess:   sess,
	}

	// Updates arriving while the plan runs are placed in the log region,
	// which begins past both the overflow segment and the new tail buffer.
	logBase := W + U
	if r.tailBuf != nil && r.tailBuf.end() > logBase {
		logBase = r.tailBuf.end()
	}
	r.log.reset(logBase)
	if r.tel != nil {
		// Plan construction (layout compute + schedule validation) is
		// flush work: it counts toward the flush's duration, and toward
		// stall when a deferred flush starts under another op's advance.
		r.plan.addSlice(r, telemetry.Now()-t0)
	}
	return nil
}

// advance executes up to q volume of the active flush plan, then drains
// the log; it completes the flush when it reaches the end. A deferred
// flush (tail buffer overflowed during the drain) restarts the cycle.
func (r *Reallocator) advance(q int64) error {
	_, err := r.advanceQuota(q)
	return err
}

// advanceQuota is advance returning the unused quota. The remaining plan
// is consumed in volume-bounded chunks: each call applies one chunk of at
// most q volume (overshooting by at most one move, exactly like the
// per-move quota loop it replaces) through the plan's resumable session —
// a chunk costs O(log n + B) index work per move regardless of how much
// of the plan remains. An atomic drain (the Checkpointed variant, or a
// Drain call before any chunk ran) takes the session's bulk merge path.
func (r *Reallocator) advanceQuota(q int64) (int64, error) {
	for q > 0 && r.plan != nil {
		p := r.plan
		if p.next < len(p.moves) {
			var (
				n   int
				vol int64
				err error
				t0  int64
			)
			if r.tel != nil {
				t0 = telemetry.Now()
			}
			if p.sess != nil {
				n, vol, err = p.sess.Advance(q, r.planEmitter())
				if err == nil && p.sess.Done() {
					err = p.sess.Commit()
				}
				if err == nil && r.cfg.Paranoid {
					err = r.space.Verify()
				}
			} else {
				n, vol, err = r.applyPlanSerial(p.moves[p.next:], q)
			}
			p.next += n
			p.movedVolume += vol
			q -= vol
			if r.tel != nil {
				p.addSlice(r, telemetry.Now()-t0)
				p.chunks++
				r.tel.FlushChunk.Record(vol)
			}
			if err != nil {
				return q, err
			}
			continue
		}
		if r.log.pending() > 0 {
			// One timing slice covers the whole contiguous drain run —
			// per-entry clock reads would double the cost of draining
			// small objects for no extra information.
			var t0 int64
			if r.tel != nil {
				t0 = telemetry.Now()
			}
			var err error
			for q > 0 && err == nil {
				e, ok := r.log.pop()
				if !ok {
					break
				}
				if e.dead {
					continue
				}
				q -= e.size
				if e.insert {
					err = r.drainInsert(e.obj)
				} else {
					err = r.drainDelete(e.obj)
				}
			}
			if r.tel != nil {
				p.addSlice(r, telemetry.Now()-t0)
			}
			if err != nil {
				return q, err
			}
			continue
		}
		if err := r.finishFlush(); err != nil {
			return q, err
		}
	}
	if q < 0 {
		q = 0
	}
	return q, nil
}

// addSlice folds one timed slice of flush work into the plan's
// telemetry accounting; under a stalled op it doubles as that op's
// stall accounting, so the stall metric reuses the slice clock reads
// instead of paying for its own.
func (p *flushPlan) addSlice(r *Reallocator, elapsed int64) {
	p.activeNanos += elapsed
	if r.stalling {
		p.stallNanos += elapsed
		r.opStall += elapsed
	}
}

// advanceStalled is advanceQuota for an op paying its quota into a
// flush it did not trigger: the timed flush-work slices executed on its
// behalf are that op's flush-stall time, recorded per op (opStall
// survives the plan's retirement, which a per-plan delta would not).
func (r *Reallocator) advanceStalled(q int64) (int64, error) {
	if r.tel == nil {
		return r.advanceQuota(q)
	}
	r.opStall = 0
	r.stalling = true
	rem, err := r.advanceQuota(q)
	r.stalling = false
	r.tel.FlushStall.Record(r.opStall)
	return rem, err
}

// finishFlush retires the completed plan and, if the tail buffer
// overflowed while the log drained, immediately triggers the next flush.
func (r *Reallocator) finishFlush() error {
	p := r.plan
	r.plan = nil
	r.rec.Record(trace.Event{Kind: trace.KFlushEnd, Size: p.movedVolume})
	if r.tel != nil {
		r.tel.FlushDuration.Record(p.activeNanos)
		r.tel.FlushMoved.Record(p.movedVolume)
		r.recordCopy()
		r.syncCheckpoints()
		// The span replays the flush's whole timing story through the
		// ordinary event stream, right after its KFlushEnd.
		r.rec.Record(trace.Event{
			Kind: trace.KFlushSpan, ID: p.chunks, Size: p.movedVolume,
			From: p.stallNanos, To: p.activeNanos,
			Footprint: r.space.MaxEnd(), Volume: r.vol,
		})
	}
	r.log.reset(0)
	if t := r.tailBuf; t != nil && t.fill > t.cap {
		return r.startFlush(maxClassSentinel, 0)
	}
	return nil
}

// maxClassSentinel is an effectively unbounded trigger class for flushes
// not triggered by a specific request (deferred tail-overflow flushes);
// the boundary computation lowers it to the smallest buffered class.
const maxClassSentinel = 1 << 20
