package core

import "fmt"

// CheckInvariants validates the full data-structure state: the substrate's
// disjointness, Invariants 2.2-2.4 (region composition, payload class
// purity, buffer class bounds, empty overflow outside flushes), volume
// accounting, and the steady-state footprint bound of Lemma 2.5. It is
// O(n) and meant for tests (Config.Paranoid runs it after every request).
func (r *Reallocator) CheckInvariants() error {
	if err := r.space.Verify(); err != nil {
		return err
	}
	if err := r.checkRegions(); err != nil {
		return err
	}
	if err := r.checkObjects(); err != nil {
		return err
	}
	if err := r.checkVolumes(); err != nil {
		return err
	}
	return r.checkFootprint()
}

// checkRegions validates region geometry and buffer accounting.
func (r *Reallocator) checkRegions() error {
	prevClass := -1
	var prevEnd int64
	contiguous := r.cfg.Variant != Deamortized
	for i, reg := range r.regions {
		if reg.class <= prevClass {
			return fmt.Errorf("core: region classes out of order at index %d (%d after %d)", i, reg.class, prevClass)
		}
		if reg.payStart < prevEnd {
			return fmt.Errorf("core: region %d overlaps predecessor (%d < %d)", reg.class, reg.payStart, prevEnd)
		}
		if contiguous && reg.payStart != prevEnd {
			return fmt.Errorf("core: region %d not contiguous (starts %d, prev ends %d)", reg.class, reg.payStart, prevEnd)
		}
		if reg.paySize < 0 || reg.bufSize < 0 || reg.payLive < 0 {
			return fmt.Errorf("core: region %d has negative geometry %+v", reg.class, *reg)
		}
		if reg.payLive > reg.paySize {
			return fmt.Errorf("core: region %d live volume %d exceeds payload %d", reg.class, reg.payLive, reg.paySize)
		}
		var fill int64
		for _, it := range reg.items {
			if it.size < 1 {
				return fmt.Errorf("core: region %d has empty buffer item", reg.class)
			}
			if it.class > reg.class {
				return fmt.Errorf("core: region %d buffers class-%d item (Invariant 2.2.4)", reg.class, it.class)
			}
			fill += it.size
		}
		if fill != reg.bufFill {
			return fmt.Errorf("core: region %d buffer fill %d != items total %d", reg.class, reg.bufFill, fill)
		}
		if reg.bufFill > reg.bufSize {
			return fmt.Errorf("core: region %d buffer overfilled (%d > %d)", reg.class, reg.bufFill, reg.bufSize)
		}
		prevClass = reg.class
		prevEnd = reg.end()
	}
	if t := r.tailBuf; t != nil {
		var fill int64
		for _, it := range t.items {
			if it.size < 1 {
				return fmt.Errorf("core: tail buffer has empty item")
			}
			fill += it.size
		}
		if fill != t.fill {
			return fmt.Errorf("core: tail fill %d != items total %d", t.fill, fill)
		}
		if t.fill > t.cap && r.plan == nil && !r.dirty {
			return fmt.Errorf("core: tail buffer overfilled (%d > %d) outside a flush", t.fill, t.cap)
		}
	}
	return nil
}

// checkObjects validates each object's placement record against the
// physical substrate. Positional checks are skipped mid-flush and under
// the dirty flag, when bookkeeping intentionally runs ahead of physics.
func (r *Reallocator) checkObjects() error {
	quiescent := r.plan == nil && !r.dirty
	var payLive = map[int]int64{}
	for id, o := range r.objs {
		if o.id != id {
			return fmt.Errorf("core: object map key %d holds object %d", id, o.id)
		}
		if o.size < 1 || ClassOf(o.size) != o.class {
			return fmt.Errorf("core: object %d size/class mismatch (%d, %d)", id, o.size, o.class)
		}
		ext, ok := r.space.Extent(id)
		if !ok {
			return fmt.Errorf("core: object %d has no physical placement", id)
		}
		if ext.Size != o.size {
			return fmt.Errorf("core: object %d physical size %d != logical %d", id, ext.Size, o.size)
		}
		switch o.place {
		case inPayload:
			payLive[o.class] += o.size
			if !quiescent {
				continue
			}
			idx, ok := r.regionIndex(o.class)
			if !ok {
				return fmt.Errorf("core: payload object %d of class %d has no region", id, o.class)
			}
			reg := r.regions[idx]
			if ext.Start < reg.payStart || ext.End() > reg.payStart+reg.paySize {
				return fmt.Errorf("core: object %d at %v outside class-%d payload [%d,%d) (Invariant 2.2.3)",
					id, ext, o.class, reg.payStart, reg.payStart+reg.paySize)
			}
		case inBuffer:
			if !quiescent {
				continue
			}
			var start, fill int64
			var regClass int
			if o.bufClass == tailBuffer {
				if r.tailBuf == nil {
					return fmt.Errorf("core: object %d claims tail buffer in non-deamortized variant", id)
				}
				start, fill = r.tailBuf.start, r.tailBuf.fill
				regClass = maxClassSentinel
				if o.bufIdx >= len(r.tailBuf.items) || r.tailBuf.items[o.bufIdx].id != id {
					return fmt.Errorf("core: object %d tail item entry mismatch", id)
				}
			} else {
				idx, ok := r.regionIndex(o.bufClass)
				if !ok {
					return fmt.Errorf("core: buffered object %d references missing region %d", id, o.bufClass)
				}
				reg := r.regions[idx]
				start, fill = reg.bufStart(), reg.bufFill
				regClass = reg.class
				if o.bufIdx >= len(reg.items) || reg.items[o.bufIdx].id != id {
					return fmt.Errorf("core: object %d buffer item entry mismatch", id)
				}
			}
			if o.class > regClass {
				return fmt.Errorf("core: class-%d object %d buffered in class-%d buffer (Invariant 2.2.4)", o.class, id, regClass)
			}
			if ext.Start < start || ext.End() > start+fill {
				return fmt.Errorf("core: buffered object %d at %v outside buffer fill [%d,%d)", id, ext, start, start+fill)
			}
		case inLog:
			if r.plan == nil {
				return fmt.Errorf("core: object %d in log with no flush active (Invariant 2.3)", id)
			}
			if ext.Start < r.log.base || ext.End() > r.log.end {
				return fmt.Errorf("core: logged object %d at %v outside log [%d,%d)", id, ext, r.log.base, r.log.end)
			}
		case inOverflow:
			return fmt.Errorf("core: object %d in overflow segment outside a flush (Invariant 2.3)", id)
		default:
			return fmt.Errorf("core: object %d in limbo", id)
		}
	}
	if quiescent {
		for _, reg := range r.regions {
			if payLive[reg.class] != reg.payLive {
				return fmt.Errorf("core: region %d payLive %d != actual %d", reg.class, reg.payLive, payLive[reg.class])
			}
		}
	}
	return nil
}

// checkVolumes validates V and per-class volume accounting.
func (r *Reallocator) checkVolumes() error {
	byClass := map[int]int64{}
	var total int64
	for _, o := range r.objs {
		byClass[o.class] += o.size
		total += o.size
	}
	if total != r.vol {
		return fmt.Errorf("core: volume accounting: tracked %d, actual %d", r.vol, total)
	}
	for c, v := range r.volByClass {
		if v < 0 {
			return fmt.Errorf("core: class %d has negative volume %d", c, v)
		}
		if byClass[c] != v {
			return fmt.Errorf("core: class %d volume: tracked %d, actual %d", c, v, byClass[c])
		}
	}
	for c, v := range byClass {
		if r.volByClass[c] != v {
			return fmt.Errorf("core: class %d volume missing from tracking", c)
		}
	}
	return nil
}

// checkFootprint enforces the steady-state Lemma 2.5 bound between
// flushes: struct <= (1+kε')/(1-kε')·V (+2 cells of rounding slack), with
// k=1 normally and k=2 for the deamortized variant, whose tail buffer both
// consumes a second ε' of structure and admits a second ε' of volume
// drift (Lemma 3.5).
func (r *Reallocator) checkFootprint() error {
	if r.plan != nil || r.dirty || r.vol == 0 {
		return nil
	}
	k := 1.0
	if r.cfg.Variant == Deamortized {
		k = 2.0
	}
	bound := (1+k*r.eps)/(1-k*r.eps)*float64(r.vol) + 2
	if s := float64(r.structEndCurrent()); s > bound {
		return fmt.Errorf("core: structure size %.0f exceeds Lemma 2.5 bound %.1f (V=%d, eps'=%v)", s, bound, r.vol, r.eps)
	}
	return nil
}
