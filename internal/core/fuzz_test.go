package core

import (
	"testing"
)

// FuzzReallocator drives byte-encoded request sequences through all three
// variants with paranoid invariant checking and data-stamp verification.
// Each pair of bytes encodes one op: the first selects insert/delete and
// the variant-independent size; the second selects the delete victim.
//
// Run continuously with: go test -fuzz FuzzReallocator ./internal/core
// The seed corpus below also executes on every plain `go test` run.
func FuzzReallocator(f *testing.F) {
	f.Add([]byte{0x01, 0x00, 0x42, 0x01, 0x80, 0x00})
	f.Add([]byte{0xff, 0xff, 0x00, 0x00, 0x10, 0x20, 0x30, 0x40})
	f.Add([]byte{0x07, 0x01, 0x07, 0x02, 0x87, 0x00, 0x87, 0x01})
	seed := make([]byte, 160)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, variant := range variants {
			r, err := New(Config{Epsilon: 0.3, Variant: variant, Paranoid: true, TrackCells: true})
			if err != nil {
				t.Fatal(err)
			}
			ref := map[ID]int64{}
			var ids []ID
			next := ID(1)
			for i := 0; i+1 < len(data); i += 2 {
				a, b := data[i], data[i+1]
				if a&0x80 == 0 || len(ids) == 0 {
					// Insert with a size derived from the low bits,
					// occasionally exploded to exercise new classes.
					size := int64(a&0x7f) + 1
					if b&0x0f == 0x0f {
						size *= 97
					}
					if err := r.Insert(next, size); err != nil {
						t.Fatalf("%v: insert(%d,%d): %v", variant, next, size, err)
					}
					ref[next] = size
					ids = append(ids, next)
					next++
				} else {
					idx := int(b) % len(ids)
					id := ids[idx]
					if err := r.Delete(id); err != nil {
						t.Fatalf("%v: delete(%d): %v", variant, id, err)
					}
					delete(ref, id)
					ids[idx] = ids[len(ids)-1]
					ids = ids[:len(ids)-1]
				}
			}
			if err := r.Drain(); err != nil {
				t.Fatalf("%v: drain: %v", variant, err)
			}
			if err := r.CheckInvariants(); err != nil {
				t.Fatalf("%v: %v", variant, err)
			}
			for id, size := range ref {
				ext, ok := r.Extent(id)
				if !ok || ext.Size != size {
					t.Fatalf("%v: object %d lost or resized (%v, %v)", variant, id, ext, ok)
				}
				if !r.Space().HoldsData(id, ext) {
					t.Fatalf("%v: object %d data corrupted", variant, id)
				}
			}
		}
	})
}
