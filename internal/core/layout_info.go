package core

// SegmentInfo describes one region's geometry for visualization and
// white-box tests.
type SegmentInfo struct {
	Class    int
	PayStart int64
	PaySize  int64
	PayLive  int64
	BufStart int64
	BufSize  int64
	BufFill  int64
	// Tail marks the deamortized tail buffer pseudo-region.
	Tail bool
}

// Layout returns the current region geometry in address order.
func (r *Reallocator) Layout() []SegmentInfo {
	out := make([]SegmentInfo, 0, len(r.regions)+1)
	for _, reg := range r.regions {
		out = append(out, SegmentInfo{
			Class:    reg.class,
			PayStart: reg.payStart,
			PaySize:  reg.paySize,
			PayLive:  reg.payLive,
			BufStart: reg.bufStart(),
			BufSize:  reg.bufSize,
			BufFill:  reg.bufFill,
		})
	}
	if t := r.tailBuf; t != nil {
		out = append(out, SegmentInfo{
			Class:    -1,
			BufStart: t.start,
			BufSize:  t.cap,
			BufFill:  t.fill,
			Tail:     true,
		})
	}
	return out
}
