package core

import (
	"fmt"

	"realloc/internal/addrspace"
	"realloc/internal/trace"
)

// Insert services an 〈InsertObject, id, size〉 request. The object is
// physically placed before the request returns (mid-flush arrivals land in
// the log region).
func (r *Reallocator) Insert(id ID, size int64) error {
	if size < 1 {
		return fmt.Errorf("%w: got %d", ErrBadSize, size)
	}
	if id == 0 {
		return ErrBadID
	}
	if _, dup := r.objs[id]; dup {
		return fmt.Errorf("%w: %d", ErrDuplicate, id)
	}

	// Deamortized: pay this request's share of any in-progress flush
	// first; whatever remains of the quota rolls into a flush this request
	// itself may trigger.
	quota := int64(0)
	if r.cfg.Variant == Deamortized {
		quota = r.workQuota(size)
		if r.plan != nil {
			var err error
			quota, err = r.advanceStalled(quota)
			if err != nil {
				return err
			}
		}
	}
	if r.plan != nil {
		// Flush still running: record the insert in the log.
		err := r.logInsert(id, size)
		r.emitOpEnd()
		if err != nil {
			return err
		}
		return r.maybeCheck()
	}

	if size > r.delta {
		r.delta = size
	}
	c := ClassOf(size)
	r.vol += size
	r.volByClass[c] += size
	obj := r.takeObject()
	obj.id, obj.size, obj.class, obj.place = id, size, c, inLimbo
	r.objs[id] = obj

	if err := r.insertPlaced(obj, quota); err != nil {
		return err
	}
	r.emitOpEnd()
	return r.maybeCheck()
}

// insertPlaced physically places obj per the variant's rules. quota is
// leftover deamortized work budget for a flush triggered here.
func (r *Reallocator) insertPlaced(obj *object, quota int64) error {
	// A new largest size class gets a fresh region appended after
	// everything, costing at most w + ε'w additional space; no flush.
	if obj.class > r.maxRegionClass() {
		return r.insertNewClass(obj)
	}
	if idx, ok := r.findBuffer(obj.class, obj.size); ok {
		return r.insertIntoBuffer(obj, idx)
	}
	if r.tailBuf != nil && r.tailBuf.fill+obj.size <= r.tailBuf.cap {
		return r.insertIntoTail(obj)
	}
	// No buffer has room: flush.
	switch r.cfg.Variant {
	case Amortized:
		// Section 2: flush first, then place the object at the end of its
		// class's payload (its volume was already counted).
		if err := r.flushRAM(obj.class, obj); err != nil {
			return err
		}
		return nil
	default:
		// Section 3: place the object at the end of the last buffer
		// (exceeding its capacity), then flush; the flush moves it to its
		// payload, which is the flush-triggering item's one extra
		// reallocation.
		if err := r.placeTrigger(obj); err != nil {
			return err
		}
		if err := r.startFlush(obj.class, obj.size); err != nil {
			return err
		}
		if r.cfg.Variant == Checkpointed {
			return r.advance(quotaAll)
		}
		return r.advance(quota)
	}
}

// quotaAll runs a flush to completion (atomic variants).
const quotaAll = int64(1) << 60

// insertNewClass appends a region for a brand-new largest class and places
// obj in its payload. StructSize covers the tail buffer, so in the
// deamortized variant the new region lands after the tail — legal but
// non-contiguous until the next flush rebuilds the canonical order.
func (r *Reallocator) insertNewClass(obj *object) error {
	reg := &region{
		class:    obj.class,
		payStart: r.StructSize(),
		paySize:  obj.size,
		payLive:  obj.size,
		bufSize:  r.bufCap(obj.size),
	}
	if err := r.placeCkpt(obj.id, addrspace.Extent{Start: reg.payStart, Size: obj.size}); err != nil {
		return err
	}
	obj.place = inPayload
	r.regions = append(r.regions, reg)
	return nil
}

// findBuffer returns the index of the earliest region with class >= c
// whose buffer has size free cells.
func (r *Reallocator) findBuffer(c int, size int64) (int, bool) {
	idx, _ := r.regionIndex(c)
	for ; idx < len(r.regions); idx++ {
		reg := r.regions[idx]
		if reg.bufSize-reg.bufFill >= size {
			return idx, true
		}
	}
	return 0, false
}

// insertIntoBuffer appends obj to region idx's buffer.
func (r *Reallocator) insertIntoBuffer(obj *object, idx int) error {
	reg := r.regions[idx]
	pos := reg.bufStart() + reg.bufFill
	if err := r.placeCkpt(obj.id, addrspace.Extent{Start: pos, Size: obj.size}); err != nil {
		return err
	}
	obj.place = inBuffer
	obj.bufClass = reg.class
	obj.bufIdx = len(reg.items)
	reg.items = append(reg.items, bufItem{id: obj.id, size: obj.size, class: obj.class})
	reg.bufFill += obj.size
	return nil
}

// insertIntoTail appends obj to the deamortized tail buffer.
func (r *Reallocator) insertIntoTail(obj *object) error {
	t := r.tailBuf
	pos := t.start + t.fill
	if err := r.placeCkpt(obj.id, addrspace.Extent{Start: pos, Size: obj.size}); err != nil {
		return err
	}
	obj.place = inBuffer
	obj.bufClass = tailBuffer
	obj.bufIdx = len(t.items)
	t.items = append(t.items, bufItem{id: obj.id, size: obj.size, class: obj.class})
	t.fill += obj.size
	return nil
}

// placeTrigger physically places a flush-triggering insert at L, the
// endpoint of the last object, appending it (over capacity) to the last
// buffer segment per Section 3.2.
func (r *Reallocator) placeTrigger(obj *object) error {
	pos := r.space.MaxEnd()
	if err := r.placeCkpt(obj.id, addrspace.Extent{Start: pos, Size: obj.size}); err != nil {
		return err
	}
	obj.place = inBuffer
	if r.tailBuf != nil {
		t := r.tailBuf
		obj.bufClass = tailBuffer
		obj.bufIdx = len(t.items)
		t.items = append(t.items, bufItem{id: obj.id, size: obj.size, class: obj.class})
		t.fill += obj.size
		return nil
	}
	reg := r.regions[len(r.regions)-1]
	obj.bufClass = reg.class
	obj.bufIdx = len(reg.items)
	reg.items = append(reg.items, bufItem{id: obj.id, size: obj.size, class: obj.class})
	reg.bufFill += obj.size
	return nil
}

// Delete services a 〈DeleteObject, id〉 request.
func (r *Reallocator) Delete(id ID) error {
	obj, ok := r.objs[id]
	if !ok || obj.deletePending {
		return fmt.Errorf("%w: %d", ErrNotFound, id)
	}

	quota := int64(0)
	if r.cfg.Variant == Deamortized {
		quota = r.workQuota(obj.size)
		if r.plan != nil {
			var err error
			quota, err = r.advanceStalled(quota)
			if err != nil {
				return err
			}
		}
	}
	if r.plan != nil {
		err := r.logDelete(obj)
		r.emitOpEnd()
		if err != nil {
			return err
		}
		return r.maybeCheck()
	}

	if err := r.deleteNow(obj, quota); err != nil {
		return err
	}
	r.emitOpEnd()
	return r.maybeCheck()
}

// deleteNow applies a delete outside any active flush.
func (r *Reallocator) deleteNow(obj *object, quota int64) error {
	r.vol -= obj.size
	r.volByClass[obj.class] -= obj.size
	delete(r.objs, obj.id)

	switch obj.place {
	case inBuffer:
		// Convert the buffer entry to a dummy record in place: the entry
		// keeps consuming its space until the next flush, which is what
		// charges the flush's reallocations to this delete.
		r.bufferEntry(obj).id = 0
		if err := r.space.Remove(obj.id); err != nil {
			return err
		}
		r.emit(trace.KDelete, obj.id, obj.size, 0, 0)
		r.putObject(obj)
		return nil
	case inPayload:
		size, class := obj.size, obj.class
		if idx, ok := r.regionIndex(class); ok {
			r.regions[idx].payLive -= size
		}
		if err := r.space.Remove(obj.id); err != nil {
			return err
		}
		r.emit(trace.KDelete, obj.id, size, 0, 0)
		r.putObject(obj)
		// The hole persists; a dummy record must consume buffer space so
		// that enough deletes eventually force a flush.
		dummy := bufItem{size: size, class: class}
		if idx, ok := r.findBuffer(class, size); ok {
			reg := r.regions[idx]
			reg.items = append(reg.items, dummy)
			reg.bufFill += size
			return nil
		}
		if t := r.tailBuf; t != nil && t.fill+size <= t.cap {
			t.items = append(t.items, dummy)
			t.fill += size
			return nil
		}
		// The dummy would overflow the last buffer: trigger the flush
		// without consuming space for it (Section 3.2).
		switch r.cfg.Variant {
		case Amortized:
			return r.flushRAM(class, nil)
		default:
			if err := r.startFlush(class, 0); err != nil {
				return err
			}
			if r.cfg.Variant == Checkpointed {
				return r.advance(quotaAll)
			}
			return r.advance(quota)
		}
	default:
		return fmt.Errorf("core: delete of %d in unexpected state %d", obj.id, obj.place)
	}
}

// bufferEntry returns the buffer item slot backing a buffered object.
func (r *Reallocator) bufferEntry(obj *object) *bufItem {
	if obj.bufClass == tailBuffer {
		return &r.tailBuf.items[obj.bufIdx]
	}
	idx, ok := r.regionIndex(obj.bufClass)
	if !ok {
		panic(fmt.Sprintf("core: buffered object %d references missing region class %d", obj.id, obj.bufClass))
	}
	return &r.regions[idx].items[obj.bufIdx]
}

// maybeCheck runs the paranoid invariant checker when configured.
func (r *Reallocator) maybeCheck() error {
	if !r.cfg.Paranoid {
		return nil
	}
	return r.CheckInvariants()
}
