package core

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"realloc/internal/trace"
)

// variants lists all three algorithms for table-driven tests.
var variants = []Variant{Amortized, Checkpointed, Deamortized}

// newTest builds a paranoid reallocator with full tracing.
func newTest(t *testing.T, v Variant, eps float64) (*Reallocator, *trace.Metrics) {
	t.Helper()
	m := trace.NewMetrics()
	r, err := New(Config{Epsilon: eps, Variant: v, Recorder: m, Paranoid: true, TrackCells: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r, m
}

func TestClassOf(t *testing.T) {
	cases := []struct {
		w int64
		c int
	}{
		{1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3}, {1023, 9}, {1024, 10},
	}
	for _, tc := range cases {
		if got := ClassOf(tc.w); got != tc.c {
			t.Errorf("ClassOf(%d) = %d, want %d", tc.w, got, tc.c)
		}
	}
	if ClassOf(0) != -1 || ClassOf(-5) != -1 {
		t.Error("ClassOf of non-positive sizes should be -1")
	}
	for c := 0; c < 40; c++ {
		if ClassOf(ClassMin(c)) != c || ClassOf(ClassMax(c)) != c {
			t.Errorf("class %d boundaries misclassified", c)
		}
	}
}

func TestNewValidation(t *testing.T) {
	for _, eps := range []float64{0, -1, 1.5} {
		if _, err := New(Config{Epsilon: eps}); err == nil {
			t.Errorf("New accepted epsilon %v", eps)
		}
	}
	if _, err := New(Config{Epsilon: 0.5}); err != nil {
		t.Errorf("New rejected epsilon 0.5: %v", err)
	}
	if _, err := New(Config{Epsilon: 0.5, EpsPrime: 0.9}); err == nil {
		t.Error("New accepted eps' > 0.5")
	}
}

func TestInsertDeleteBasics(t *testing.T) {
	for _, v := range variants {
		t.Run(v.String(), func(t *testing.T) {
			r, _ := newTest(t, v, 0.5)
			if err := r.Insert(1, 10); err != nil {
				t.Fatalf("insert: %v", err)
			}
			if err := r.Insert(1, 10); err == nil {
				t.Fatal("duplicate insert accepted")
			}
			if err := r.Insert(2, 0); err == nil {
				t.Fatal("zero-size insert accepted")
			}
			if err := r.Insert(0, 5); err == nil {
				t.Fatal("zero id accepted")
			}
			if got := r.Volume(); got != 10 {
				t.Fatalf("volume = %d, want 10", got)
			}
			if !r.Has(1) {
				t.Fatal("Has(1) = false")
			}
			if sz, ok := r.SizeOf(1); !ok || sz != 10 {
				t.Fatalf("SizeOf(1) = %d,%v", sz, ok)
			}
			if err := r.Delete(1); err != nil {
				t.Fatalf("delete: %v", err)
			}
			if err := r.Delete(1); err == nil {
				t.Fatal("double delete accepted")
			}
			if err := r.Drain(); err != nil {
				t.Fatalf("drain: %v", err)
			}
			if got := r.Volume(); got != 0 {
				t.Fatalf("volume after delete = %d, want 0", got)
			}
		})
	}
}

func TestFootprintNeverExceedsBound(t *testing.T) {
	for _, v := range variants {
		for _, eps := range []float64{0.5, 0.25, 0.1} {
			t.Run(fmt.Sprintf("%v/eps=%v", v, eps), func(t *testing.T) {
				r, m := newTest(t, v, eps)
				m.RatioBase = 1 + eps
				rng := rand.New(rand.NewPCG(42, uint64(eps*1000)))
				live := []ID{}
				next := ID(1)
				for op := 0; op < 3000; op++ {
					if len(live) == 0 || rng.Float64() < 0.55 {
						size := int64(1 + rng.IntN(200))
						if err := r.Insert(next, size); err != nil {
							t.Fatalf("op %d insert: %v", op, err)
						}
						live = append(live, next)
						next++
					} else {
						i := rng.IntN(len(live))
						if err := r.Delete(live[i]); err != nil {
							t.Fatalf("op %d delete: %v", op, err)
						}
						live[i] = live[len(live)-1]
						live = live[:len(live)-1]
					}
				}
				if err := r.Drain(); err != nil {
					t.Fatalf("drain: %v", err)
				}
				if err := r.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
				// The steady-state structure bound is checked after every
				// op by Paranoid; confirm the end-to-end competitive ratio
				// the paper promises.
				if m.MaxStructRatio > 1+eps+0.02 {
					t.Errorf("max structure/volume ratio %.4f exceeds 1+eps=%.2f", m.MaxStructRatio, 1+eps)
				}
				if m.MaxRatioQuiescent > 1+eps+0.02 {
					t.Errorf("max quiescent footprint/volume ratio %.4f exceeds 1+eps=%.2f", m.MaxRatioQuiescent, 1+eps)
				}
				if v == Amortized || v == Checkpointed {
					// Flushes complete within the triggering request, so
					// every op end is quiescent.
					if m.MaxRatioSteady > 1+eps+0.02 {
						t.Errorf("max footprint/volume ratio %.4f exceeds 1+eps=%.2f", m.MaxRatioSteady, 1+eps)
					}
				} else {
					// Mid-flush op ends may carry the working space: the
					// additive slack beyond (1+eps)V must stay O(Delta)
					// (Lemma 3.5; our schedule's constant is <= 3 plus
					// log volume).
					if m.MaxAdditiveSlack > 4*r.Delta() {
						t.Errorf("additive slack %d exceeds 4*Delta=%d", m.MaxAdditiveSlack, 4*r.Delta())
					}
				}
			})
		}
	}
}

func TestDataIntegrityUnderChurn(t *testing.T) {
	for _, v := range variants {
		t.Run(v.String(), func(t *testing.T) {
			r, _ := newTest(t, v, 0.25)
			rng := rand.New(rand.NewPCG(7, 9))
			live := map[ID]int64{}
			next := ID(1)
			for op := 0; op < 2000; op++ {
				if len(live) == 0 || rng.Float64() < 0.6 {
					size := int64(1 + rng.IntN(64))
					if err := r.Insert(next, size); err != nil {
						t.Fatalf("insert: %v", err)
					}
					live[next] = size
					next++
				} else {
					for id := range live {
						if err := r.Delete(id); err != nil {
							t.Fatalf("delete: %v", err)
						}
						delete(live, id)
						break
					}
				}
				// Every live object must hold its own data at its extent.
				for id, size := range live {
					ext, ok := r.Extent(id)
					if !ok {
						t.Fatalf("op %d: object %d lost its extent", op, id)
					}
					if ext.Size != size {
						t.Fatalf("op %d: object %d size %d, want %d", op, id, ext.Size, size)
					}
					if !r.Space().HoldsData(id, ext) {
						t.Fatalf("op %d: object %d data corrupted at %v", op, id, ext)
					}
				}
			}
		})
	}
}

func TestDeltaTracksLargest(t *testing.T) {
	r, _ := newTest(t, Amortized, 0.5)
	sizes := []int64{3, 100, 7, 100, 2}
	for i, s := range sizes {
		if err := r.Insert(ID(i+1), s); err != nil {
			t.Fatal(err)
		}
	}
	if r.Delta() != 100 {
		t.Fatalf("Delta = %d, want 100", r.Delta())
	}
}

func TestNewLargestClassCreatesRegion(t *testing.T) {
	for _, v := range variants {
		t.Run(v.String(), func(t *testing.T) {
			r, m := newTest(t, v, 0.5)
			// Strictly growing sizes: every insert opens a new class and
			// must not trigger any flush or reallocation.
			for i := 0; i < 20; i++ {
				if err := r.Insert(ID(i+1), int64(1)<<uint(i)); err != nil {
					t.Fatal(err)
				}
			}
			if m.MovesTotal != 0 {
				t.Errorf("new-class inserts caused %d moves, want 0", m.MovesTotal)
			}
			if r.Flushes() != 0 {
				t.Errorf("new-class inserts caused %d flushes, want 0", r.Flushes())
			}
		})
	}
}

func TestEmptyAfterAllDeleted(t *testing.T) {
	for _, v := range variants {
		t.Run(v.String(), func(t *testing.T) {
			r, _ := newTest(t, v, 0.5)
			for i := 1; i <= 50; i++ {
				if err := r.Insert(ID(i), int64(i%7+1)); err != nil {
					t.Fatal(err)
				}
			}
			for i := 1; i <= 50; i++ {
				if err := r.Delete(ID(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := r.Drain(); err != nil {
				t.Fatal(err)
			}
			if r.Volume() != 0 || r.Len() != 0 {
				t.Fatalf("volume=%d len=%d after deleting everything", r.Volume(), r.Len())
			}
			// The structure may retain dead regions until a flush reclaims
			// them, but a fresh insert cycle must still work.
			for i := 51; i <= 60; i++ {
				if err := r.Insert(ID(i), 5); err != nil {
					t.Fatal(err)
				}
			}
			if r.Volume() != 50 {
				t.Fatalf("volume=%d after reinserts", r.Volume())
			}
		})
	}
}

func TestSequentialFill(t *testing.T) {
	for _, v := range variants {
		t.Run(v.String(), func(t *testing.T) {
			r, _ := newTest(t, v, 0.25)
			for i := 1; i <= 500; i++ {
				if err := r.Insert(ID(i), 8); err != nil {
					t.Fatalf("insert %d: %v", i, err)
				}
			}
			if err := r.Drain(); err != nil {
				t.Fatal(err)
			}
			if got, want := r.Volume(), int64(500*8); got != want {
				t.Fatalf("volume = %d, want %d", got, want)
			}
		})
	}
}
