// Package faultfs is the injectable file layer under the durability
// stack: the WAL and the file-backed arena write through its File
// interface, so a test can put a deterministic fault plan between the
// store and its "disk" and then crash the disk at any byte.
//
// Two implementations exist. OS passes straight through to real files
// (production). MemFS models a machine with a volatile page cache over
// a durable platter: WriteAt lands in the volatile image, Sync copies
// the volatile image to the durable one, and Crash discards everything
// volatile — exactly the state a reboot would find. An Injector shared
// by all of a MemFS's files perturbs that model with the crashmonkey
// fault catalog:
//
//   - crash at the Nth write: the write never happens, the fs wedges,
//     and every later operation fails (the process is about to die);
//   - torn write: the Nth write persists only its first K bytes into
//     the durable image (the platter was mid-sector at power loss),
//     then the fs wedges;
//   - dropped fsync: the Nth sync returns success without persisting
//     anything, and — because a disk whose cache stopped draining
//     never drains again — every later sync on every file is silently
//     dropped too. This global semantics is what makes the fault
//     survivable: the durable image can never run ahead of the lie.
//   - transient EIO: the Nth write fails once with syscall.EIO and
//     succeeds when retried (the writer above owns retry/backoff).
//
// Write and sync counters are global across a MemFS's files, so a plan
// addresses the interleaved stream the store actually emits, and plans
// derived from a seed (RandomPlan) are reproducible byte for byte.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"path/filepath"
	"sync"
	"syscall"
)

// Errors reported by the layer.
var (
	// ErrInjectedCrash is returned by the operation a fault plan chose
	// as the crash point; the file system is wedged afterwards.
	ErrInjectedCrash = errors.New("faultfs: injected crash")
	// ErrCrashed is returned by every operation on a handle that
	// predates a crash (injected or explicit): the process holding it
	// is, as far as the model is concerned, dead.
	ErrCrashed = errors.New("faultfs: file system crashed")
)

// File is the byte-addressed file surface the durability stack writes
// through — deliberately the subset of *os.File the WAL and arena need,
// so a fault-injecting implementation can sit in for the real thing.
type File interface {
	io.ReaderAt
	io.WriterAt
	// Sync flushes everything written so far to durable storage.
	Sync() error
	// Truncate resizes the file; replay uses it to cut a torn tail.
	Truncate(size int64) error
	// Size reports the current file length.
	Size() (int64, error)
	Close() error
}

// FS opens named files, creating them when absent.
type FS interface {
	OpenFile(name string) (File, error)
	Remove(name string) error
}

// ---------------------------------------------------------------------
// OS: the pass-through implementation.

// OS is the real file system rooted at Dir ("" = process cwd).
type OS struct{ Dir string }

func (o OS) path(name string) string {
	if o.Dir == "" {
		return name
	}
	return filepath.Join(o.Dir, name)
}

// OpenFile opens (or creates) the named file read-write.
func (o OS) OpenFile(name string) (File, error) {
	f, err := os.OpenFile(o.path(name), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// Remove deletes the named file.
func (o OS) Remove(name string) error { return os.Remove(o.path(name)) }

// osFile adapts *os.File, mapping short reads at EOF to the full-buffer
// contract replay relies on (ReadAt already does; Size via Stat).
type osFile struct{ f *os.File }

func (o osFile) ReadAt(p []byte, off int64) (int, error)  { return o.f.ReadAt(p, off) }
func (o osFile) WriteAt(p []byte, off int64) (int, error) { return o.f.WriteAt(p, off) }
func (o osFile) Sync() error                              { return o.f.Sync() }
func (o osFile) Truncate(size int64) error                { return o.f.Truncate(size) }
func (o osFile) Close() error                             { return o.f.Close() }
func (o osFile) Size() (int64, error) {
	st, err := o.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// ---------------------------------------------------------------------
// Fault plans.

// FaultKind names one entry of the catalog.
type FaultKind int

const (
	// CrashAtWrite wedges the fs at the Nth global write; the write
	// does not happen.
	CrashAtWrite FaultKind = iota
	// TornWrite persists only the first TearBytes of the Nth global
	// write into the durable image, then wedges the fs. Once a DropSync
	// has fired the durable image is frozen, so a later torn write
	// degenerates to CrashAtWrite: a fragment that persisted while
	// every sync since the drop did not would model a lying drive
	// flushing its cache out of order, which no log protocol recovers
	// from.
	TornWrite
	// DropSync makes the Nth global sync (and, silently, every sync
	// after it) a successful no-op.
	DropSync
	// TransientEIO fails the Nth global write once with syscall.EIO;
	// the retried write proceeds normally.
	TransientEIO
)

func (k FaultKind) String() string {
	switch k {
	case CrashAtWrite:
		return "crashAtWrite"
	case TornWrite:
		return "tornWrite"
	case DropSync:
		return "dropSync"
	case TransientEIO:
		return "transientEIO"
	default:
		return "unknown"
	}
}

// Fault is one planned perturbation, addressed by the global write or
// sync ordinal (1-based) it fires at.
type Fault struct {
	Kind FaultKind
	// N is the 1-based global ordinal (write ordinal for CrashAtWrite,
	// TornWrite, TransientEIO; sync ordinal for DropSync).
	N int
	// TearBytes is how many leading bytes of the faulted write persist
	// (TornWrite only); clamped to the write's length.
	TearBytes int64
}

func (f Fault) String() string { return fmt.Sprintf("%s@%d(tear=%d)", f.Kind, f.N, f.TearBytes) }

// Injector applies a fault plan to the global write/sync stream of a
// MemFS. The zero value injects nothing and only counts, which is how
// a harness measures a workload's fault-point space before enumerating
// it.
type Injector struct {
	mu     sync.Mutex
	plan   []Fault
	writes int
	syncs  int
	// wedged: a crash fault fired; every later op fails.
	wedged bool
	// dropping: a DropSync fired; every later sync is a silent no-op.
	dropping bool
	// fired counts faults that actually triggered.
	fired int
}

// NewInjector builds an injector over a plan. Faults sharing an ordinal
// fire in plan order (in practice plans use distinct ordinals).
func NewInjector(plan ...Fault) *Injector { return &Injector{plan: plan} }

// Writes returns how many global writes have been attempted.
func (in *Injector) Writes() int { in.mu.Lock(); defer in.mu.Unlock(); return in.writes }

// Syncs returns how many global syncs have been attempted.
func (in *Injector) Syncs() int { in.mu.Lock(); defer in.mu.Unlock(); return in.syncs }

// Fired returns how many planned faults have triggered.
func (in *Injector) Fired() int { in.mu.Lock(); defer in.mu.Unlock(); return in.fired }

// Wedged reports whether a crash fault has fired.
func (in *Injector) Wedged() bool { in.mu.Lock(); defer in.mu.Unlock(); return in.wedged }

// Dropping reports whether syncs are currently being dropped.
func (in *Injector) Dropping() bool { in.mu.Lock(); defer in.mu.Unlock(); return in.dropping }

// writeDecision is what the write path must do.
type writeDecision int

const (
	writeOK writeDecision = iota
	writeCrash
	writeTorn
	writeEIO
	writeWedged
)

// onWrite advances the write counter and reports the decision plus the
// tear length when the decision is writeTorn.
func (in *Injector) onWrite() (writeDecision, int64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.wedged {
		return writeWedged, 0
	}
	in.writes++
	for i := range in.plan {
		f := &in.plan[i]
		if f.N != in.writes {
			continue
		}
		switch f.Kind {
		case CrashAtWrite:
			in.wedged = true
			in.fired++
			return writeCrash, 0
		case TornWrite:
			in.wedged = true
			in.fired++
			if in.dropping {
				// The platter is frozen: the tear dies in cache with
				// everything else since the dropped sync.
				return writeCrash, 0
			}
			return writeTorn, f.TearBytes
		case TransientEIO:
			// Consume the fault so the retried write (the next global
			// ordinal) proceeds.
			f.N = -1
			in.fired++
			return writeEIO, 0
		}
	}
	return writeOK, 0
}

// onSync advances the sync counter and reports whether the sync should
// actually persist.
func (in *Injector) onSync() (persist bool, err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.wedged {
		return false, ErrCrashed
	}
	in.syncs++
	if in.dropping {
		return false, nil
	}
	for i := range in.plan {
		f := &in.plan[i]
		if f.Kind == DropSync && f.N == in.syncs {
			in.dropping = true
			in.fired++
			return false, nil
		}
	}
	return true, nil
}

// RandomPlan derives a reproducible fault plan from a seed: one to
// three faults addressed inside the given write/sync budget. Torn
// writes tear at a random byte of a nominal frame; the tear clamps to
// the faulted write's length when it fires.
func RandomPlan(seed uint64, maxWrites, maxSyncs int) []Fault {
	rng := rand.New(rand.NewPCG(seed, 0xfa017))
	if maxWrites < 1 {
		maxWrites = 1
	}
	if maxSyncs < 1 {
		maxSyncs = 1
	}
	n := 1 + rng.IntN(3)
	plan := make([]Fault, 0, n)
	for i := 0; i < n; i++ {
		switch rng.IntN(4) {
		case 0:
			plan = append(plan, Fault{Kind: CrashAtWrite, N: 1 + rng.IntN(maxWrites)})
		case 1:
			plan = append(plan, Fault{Kind: TornWrite, N: 1 + rng.IntN(maxWrites), TearBytes: rng.Int64N(64)})
		case 2:
			plan = append(plan, Fault{Kind: DropSync, N: 1 + rng.IntN(maxSyncs)})
		default:
			plan = append(plan, Fault{Kind: TransientEIO, N: 1 + rng.IntN(maxWrites)})
		}
	}
	return plan
}

// ---------------------------------------------------------------------
// MemFS: the crashable in-memory implementation.

// MemFS is a crashable in-memory file system. Files persist across
// Crash (their durable images do); handles do not. The zero value is
// not usable — construct with NewMemFS.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memData
	inj   *Injector
	gen   int
}

// memData is one file's two images.
type memData struct {
	durable  []byte
	volatile []byte
}

// NewMemFS builds an empty crashable fs. inj may be nil (no faults).
func NewMemFS(inj *Injector) *MemFS {
	if inj == nil {
		inj = &Injector{}
	}
	return &MemFS{files: map[string]*memData{}, inj: inj}
}

// Injector returns the shared injector (never nil).
func (fs *MemFS) Injector() *Injector { return fs.inj }

// Crash discards every file's volatile image — unsynced writes are
// gone, torn fragments stay — and invalidates all open handles. The
// injector's wedge is cleared so the "rebooted machine" can run again;
// its dropped-sync state clears too (a reboot resets the disk cache).
func (fs *MemFS) Crash() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, d := range fs.files {
		d.volatile = append([]byte(nil), d.durable...)
	}
	fs.gen++
	fs.inj.mu.Lock()
	fs.inj.wedged = false
	fs.inj.dropping = false
	fs.inj.mu.Unlock()
}

// OpenFile opens (or creates) the named file. The handle is bound to
// the current crash generation: a later Crash invalidates it.
func (fs *MemFS) OpenFile(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d, ok := fs.files[name]
	if !ok {
		d = &memData{}
		fs.files[name] = d
	}
	return &memFile{fs: fs, data: d, gen: fs.gen}, nil
}

// Remove deletes the named file outright (both images).
func (fs *MemFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; !ok {
		return os.ErrNotExist
	}
	delete(fs.files, name)
	return nil
}

// DurableLen reports the named file's durable image length (tests).
func (fs *MemFS) DurableLen(name string) int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if d, ok := fs.files[name]; ok {
		return int64(len(d.durable))
	}
	return 0
}

// memFile is one handle over a MemFS file.
type memFile struct {
	fs   *MemFS
	data *memData
	gen  int
}

// stale reports whether the handle predates a crash.
func (f *memFile) stale() bool { return f.gen != f.fs.gen }

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.stale() {
		return 0, ErrCrashed
	}
	if off >= int64(len(f.data.volatile)) {
		return 0, io.EOF
	}
	n := copy(p, f.data.volatile[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// grow extends b with zeros to length n (sparse-file semantics).
func grow(b []byte, n int64) []byte {
	for int64(len(b)) < n {
		b = append(b, make([]byte, n-int64(len(b)))...)
	}
	return b
}

func (f *memFile) WriteAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	if f.stale() {
		f.fs.mu.Unlock()
		return 0, ErrCrashed
	}
	dec, tear := f.fs.inj.onWrite()
	switch dec {
	case writeCrash:
		f.fs.mu.Unlock()
		return 0, ErrInjectedCrash
	case writeWedged:
		f.fs.mu.Unlock()
		return 0, ErrCrashed
	case writeEIO:
		f.fs.mu.Unlock()
		return 0, syscall.EIO
	case writeTorn:
		if tear > int64(len(p)) {
			tear = int64(len(p))
		}
		f.data.durable = grow(f.data.durable, off+tear)
		copy(f.data.durable[off:off+tear], p[:tear])
		f.fs.mu.Unlock()
		return 0, ErrInjectedCrash
	}
	f.data.volatile = grow(f.data.volatile, off+int64(len(p)))
	copy(f.data.volatile[off:], p)
	f.fs.mu.Unlock()
	return len(p), nil
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.stale() {
		return ErrCrashed
	}
	persist, err := f.fs.inj.onSync()
	if err != nil {
		return err
	}
	if persist {
		f.data.durable = append(f.data.durable[:0], f.data.volatile...)
	}
	return nil
}

func (f *memFile) Truncate(size int64) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.stale() {
		return ErrCrashed
	}
	if size < 0 {
		return fmt.Errorf("faultfs: truncate to %d", size)
	}
	if size <= int64(len(f.data.volatile)) {
		f.data.volatile = f.data.volatile[:size]
	} else {
		f.data.volatile = grow(f.data.volatile, size)
	}
	return nil
}

func (f *memFile) Size() (int64, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.stale() {
		return 0, ErrCrashed
	}
	return int64(len(f.data.volatile)), nil
}

func (f *memFile) Close() error { return nil }
