package faultfs

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func TestMemFSDurabilityModel(t *testing.T) {
	fs := NewMemFS(nil)
	f, err := fs.OpenFile("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("hello"), 0); err != nil {
		t.Fatal(err)
	}
	// Unsynced writes are volatile: a crash discards them.
	fs.Crash()
	g, _ := fs.OpenFile("a")
	if sz, _ := g.Size(); sz != 0 {
		t.Fatalf("unsynced write survived crash: size %d", sz)
	}
	// Synced writes are durable.
	if _, err := g.WriteAt([]byte("world"), 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.WriteAt([]byte("XYZ"), 5); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	h, _ := fs.OpenFile("a")
	buf := make([]byte, 8)
	n, err := h.ReadAt(buf, 0)
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf[:n]) != "world" {
		t.Fatalf("durable image %q, want %q", buf[:n], "world")
	}
	// Stale handles fail after the crash.
	if _, err := g.WriteAt([]byte("x"), 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("stale handle write: %v", err)
	}
	if err := g.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("stale handle sync: %v", err)
	}
}

func TestInjectorCrashAtWrite(t *testing.T) {
	fs := NewMemFS(NewInjector(Fault{Kind: CrashAtWrite, N: 2}))
	f, _ := fs.OpenFile("a")
	if _, err := f.WriteAt([]byte("one"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("two"), 3); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("write 2: %v", err)
	}
	// Wedged: everything after fails.
	if _, err := f.WriteAt([]byte("three"), 6); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write after wedge: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("sync after wedge: %v", err)
	}
	if !fs.Injector().Wedged() {
		t.Fatal("injector not wedged")
	}
	// The faulted write never reached even the volatile image.
	fs.Crash()
	g, _ := fs.OpenFile("a")
	if sz, _ := g.Size(); sz != 0 {
		t.Fatalf("size after crash: %d", sz)
	}
}

func TestInjectorTornWrite(t *testing.T) {
	fs := NewMemFS(NewInjector(Fault{Kind: TornWrite, N: 2, TearBytes: 3}))
	f, _ := fs.OpenFile("a")
	if _, err := f.WriteAt([]byte("base"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("ABCDEF"), 4); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("torn write: %v", err)
	}
	fs.Crash()
	g, _ := fs.OpenFile("a")
	buf := make([]byte, 16)
	n, _ := g.ReadAt(buf, 0)
	if !bytes.Equal(buf[:n], []byte("baseABC")) {
		t.Fatalf("durable image %q, want %q", buf[:n], "baseABC")
	}
}

func TestTornWriteAfterDropPersistsNothing(t *testing.T) {
	// Once a sync has been dropped the platter is frozen: a later torn
	// write must degenerate to a plain crash, not smuggle a fragment
	// into the durable image past the dropped syncs.
	fs := NewMemFS(NewInjector(
		Fault{Kind: DropSync, N: 1},
		Fault{Kind: TornWrite, N: 2, TearBytes: 3},
	))
	f, _ := fs.OpenFile("a")
	if _, err := f.WriteAt([]byte("base"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil { // dropped
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("ABCDEF"), 4); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("torn write after drop: %v", err)
	}
	fs.Crash()
	g, _ := fs.OpenFile("a")
	if sz, _ := g.Size(); sz != 0 {
		t.Fatalf("durable size %d, want 0 (nothing since the drop persists)", sz)
	}
}

func TestInjectorDropSyncIsGlobal(t *testing.T) {
	fs := NewMemFS(NewInjector(Fault{Kind: DropSync, N: 2}))
	a, _ := fs.OpenFile("a")
	b, _ := fs.OpenFile("b")
	if _, err := a.WriteAt([]byte("aa"), 0); err != nil {
		t.Fatal(err)
	}
	if err := a.Sync(); err != nil { // sync 1: effective
		t.Fatal(err)
	}
	if _, err := a.WriteAt([]byte("AA"), 2); err != nil {
		t.Fatal(err)
	}
	if err := a.Sync(); err != nil { // sync 2: dropped, silently
		t.Fatal(err)
	}
	if _, err := b.WriteAt([]byte("bb"), 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Sync(); err != nil { // sync 3: dropped too — global
		t.Fatal(err)
	}
	if !fs.Injector().Dropping() {
		t.Fatal("injector not dropping")
	}
	fs.Crash()
	ra, _ := fs.OpenFile("a")
	rb, _ := fs.OpenFile("b")
	if sz, _ := ra.Size(); sz != 2 {
		t.Fatalf("a durable size %d, want 2 (post-drop sync must not persist)", sz)
	}
	if sz, _ := rb.Size(); sz != 0 {
		t.Fatalf("b durable size %d, want 0 (drop is global)", sz)
	}
}

func TestInjectorTransientEIO(t *testing.T) {
	fs := NewMemFS(NewInjector(Fault{Kind: TransientEIO, N: 1}))
	f, _ := fs.OpenFile("a")
	if _, err := f.WriteAt([]byte("x"), 0); !errors.Is(err, syscall.EIO) {
		t.Fatalf("first write: %v", err)
	}
	// The retry succeeds and the fault does not re-fire.
	if _, err := f.WriteAt([]byte("x"), 0); err != nil {
		t.Fatalf("retried write: %v", err)
	}
	if got := fs.Injector().Fired(); got != 1 {
		t.Fatalf("fired %d faults, want 1", got)
	}
}

func TestRandomPlanDeterministic(t *testing.T) {
	a := RandomPlan(7, 100, 10)
	b := RandomPlan(7, 100, 10)
	if len(a) != len(b) {
		t.Fatalf("plan lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plan[%d]: %v vs %v", i, a[i], b[i])
		}
	}
	if c := RandomPlan(8, 100, 10); len(c) == len(a) {
		same := true
		for i := range c {
			if c[i] != a[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical plans")
		}
	}
}

func TestOSRoundTrip(t *testing.T) {
	fs := OS{Dir: t.TempDir()}
	f, err := fs.OpenFile("data")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("persist"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if sz, err := f.Size(); err != nil || sz != 7 {
		t.Fatalf("size %d %v", sz, err)
	}
	if err := f.Truncate(4); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "pers" {
		t.Fatalf("read %q", buf)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("data"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(fs.Dir, "data")); !os.IsNotExist(err) {
		t.Fatalf("file not removed: %v", err)
	}
}
