package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	orig := Collect(&Churn{Seed: 9, Sizes: Uniform{Min: 1, Max: 64}, TargetVolume: 1000}, 500)
	var buf bytes.Buffer
	if err := WriteOps(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadOps(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("round trip length %d != %d", len(got), len(orig))
	}
	for i := range got {
		if got[i] != orig[i] {
			t.Fatalf("op %d: %+v != %+v", i, got[i], orig[i])
		}
	}
}

func TestReadOpsFormat(t *testing.T) {
	in := `# a comment

+ 1 10
+ 2 5
- 1 10
- 2
`
	ops, err := ReadOps(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 4 {
		t.Fatalf("ops = %d", len(ops))
	}
	if !ops[0].Insert || ops[0].ID != 1 || ops[0].Size != 10 {
		t.Fatalf("op 0: %+v", ops[0])
	}
	if ops[3].Insert || ops[3].ID != 2 || ops[3].Size != 0 {
		t.Fatalf("op 3 (size optional): %+v", ops[3])
	}
}

func TestReadOpsErrors(t *testing.T) {
	cases := []string{
		"+ 1",         // insert missing size
		"+ 1 0",       // zero size
		"+ 0 5",       // zero id
		"* 1 5",       // unknown op
		"+ x 5",       // bad id
		"- 1 garbage", // bad size
		"junk",
	}
	for _, c := range cases {
		if _, err := ReadOps(strings.NewReader(c)); err == nil {
			t.Errorf("accepted malformed line %q", c)
		}
	}
}

func TestValidate(t *testing.T) {
	good := []Op{
		{Insert: true, ID: 1, Size: 10},
		{Insert: true, ID: 2, Size: 5},
		{ID: 1},
	}
	vol, err := Validate(good)
	if err != nil || vol != 5 {
		t.Fatalf("validate: vol=%d err=%v", vol, err)
	}
	if _, err := Validate([]Op{{Insert: true, ID: 1, Size: 1}, {Insert: true, ID: 1, Size: 1}}); err == nil {
		t.Fatal("duplicate insert accepted")
	}
	if _, err := Validate([]Op{{ID: 7}}); err == nil {
		t.Fatal("delete of dead id accepted")
	}
}
