package workload

import (
	"slices"
	"testing"
)

// TestBatchedPreservesOpSequence pins the wrapper's contract: the
// concatenation of the batches is exactly the underlying stream, with
// a short final batch and a degenerate size-1 form.
func TestBatchedPreservesOpSequence(t *testing.T) {
	mk := func() Stream {
		return &Churn{Seed: 9, Sizes: Uniform{Min: 1, Max: 8}, TargetVolume: 256}
	}
	want := Collect(mk(), 1000)
	for _, size := range []int{1, 7, 64, 1000, 4096} {
		bs := Batched(Replay("r", want), size)
		var got []Op
		batches := 0
		for {
			b, ok := bs.NextBatch()
			if !ok {
				break
			}
			if len(b) > size {
				t.Fatalf("size %d: batch of %d ops", size, len(b))
			}
			if len(b) < size && len(got)+len(b) != len(want) {
				t.Fatalf("size %d: short batch (%d ops) before the stream end", size, len(b))
			}
			got = append(got, b...)
			batches++
		}
		if !slices.Equal(got, want) {
			t.Fatalf("size %d: batched sequence diverged (%d vs %d ops)", size, len(got), len(want))
		}
		wantBatches := (len(want) + size - 1) / size
		if batches != wantBatches {
			t.Fatalf("size %d: %d batches, want %d", size, batches, wantBatches)
		}
	}
	if got := Batched(Replay("r", nil), 0).size; got != 1 {
		t.Fatalf("size 0 clamped to %d, want 1", got)
	}
	if _, ok := Batched(Replay("r", nil), 8).NextBatch(); ok {
		t.Fatal("empty stream produced a batch")
	}
}
