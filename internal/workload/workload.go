// Package workload generates the deterministic request sequences the
// experiment suite replays against reallocators and baseline allocators:
// steady churn with several size distributions, sawtooth growth, the
// paper's explicit adversaries, and a database block-store trace.
//
// All generators are seeded and reproducible: the same configuration
// yields the same op sequence on every run.
package workload

import (
	"fmt"
	"math"
	"math/rand/v2"

	"realloc/internal/addrspace"
)

// Op is one request: an insert of Size cells under a fresh ID, or a delete
// of a previously inserted ID.
type Op struct {
	Insert bool
	ID     addrspace.ID
	Size   int64
}

// Target is anything that services the storage reallocation interface;
// the core reallocators and every baseline satisfy it.
type Target interface {
	Insert(id addrspace.ID, size int64) error
	Delete(id addrspace.ID) error
}

// Stream produces ops one at a time. Streams are single-use.
type Stream interface {
	Name() string
	// Next returns the next op; ok=false ends the stream.
	Next() (op Op, ok bool)
}

// Drive replays up to n ops from s into t (all ops when n <= 0). It
// returns the number of ops applied and the first error.
func Drive(t Target, s Stream, n int) (int, error) {
	applied := 0
	for n <= 0 || applied < n {
		op, ok := s.Next()
		if !ok {
			break
		}
		var err error
		if op.Insert {
			err = t.Insert(op.ID, op.Size)
		} else {
			err = t.Delete(op.ID)
		}
		if err != nil {
			return applied, fmt.Errorf("workload %s op %d (%+v): %w", s.Name(), applied, op, err)
		}
		applied++
	}
	return applied, nil
}

// Collect materializes up to n ops (all when n <= 0).
func Collect(s Stream, n int) []Op {
	var ops []Op
	for n <= 0 || len(ops) < n {
		op, ok := s.Next()
		if !ok {
			break
		}
		ops = append(ops, op)
	}
	return ops
}

// Replay turns a materialized op list back into a Stream.
func Replay(name string, ops []Op) Stream {
	return &replayStream{name: name, ops: ops}
}

type replayStream struct {
	name string
	ops  []Op
	i    int
}

func (r *replayStream) Name() string { return r.name }

func (r *replayStream) Next() (Op, bool) {
	if r.i >= len(r.ops) {
		return Op{}, false
	}
	op := r.ops[r.i]
	r.i++
	return op, true
}

// SizeDist draws object sizes.
type SizeDist interface {
	Name() string
	Draw(rng *rand.Rand) int64
}

// Uniform draws sizes uniformly from [Min, Max].
type Uniform struct{ Min, Max int64 }

// Name implements SizeDist.
func (u Uniform) Name() string { return fmt.Sprintf("uniform[%d,%d]", u.Min, u.Max) }

// Draw implements SizeDist.
func (u Uniform) Draw(rng *rand.Rand) int64 {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + rng.Int64N(u.Max-u.Min+1)
}

// Pareto draws sizes from a bounded Pareto distribution on [Min, Max] with
// shape Alpha — the heavy-tailed block-size mix (mostly small objects, a
// few huge ones) that stresses size-class machinery.
type Pareto struct {
	Min, Max int64
	Alpha    float64
}

// Name implements SizeDist.
func (p Pareto) Name() string { return fmt.Sprintf("pareto[%d,%d;a=%g]", p.Min, p.Max, p.Alpha) }

// Draw implements SizeDist.
func (p Pareto) Draw(rng *rand.Rand) int64 {
	a := p.Alpha
	if a <= 0 {
		a = 1.2
	}
	lo, hi := float64(p.Min), float64(p.Max)
	u := rng.Float64()
	la, ha := math.Pow(lo, -a), math.Pow(hi, -a)
	x := math.Pow(la-u*(la-ha), -1/a)
	s := int64(x)
	if s < p.Min {
		s = p.Min
	}
	if s > p.Max {
		s = p.Max
	}
	return s
}

// PowersOfTwo draws sizes 2^k for k uniform in [MinExp, MaxExp]: the
// workload that lands exactly on class boundaries.
type PowersOfTwo struct{ MinExp, MaxExp int }

// Name implements SizeDist.
func (p PowersOfTwo) Name() string { return fmt.Sprintf("pow2[%d,%d]", p.MinExp, p.MaxExp) }

// Draw implements SizeDist.
func (p PowersOfTwo) Draw(rng *rand.Rand) int64 {
	k := p.MinExp
	if p.MaxExp > p.MinExp {
		k += rng.IntN(p.MaxExp - p.MinExp + 1)
	}
	return int64(1) << uint(k)
}
