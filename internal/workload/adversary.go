package workload

import (
	"fmt"

	"realloc/internal/addrspace"
)

// LowerBound is the explicit Lemma 3.7 adversary: insert one size-Delta
// object, then Delta size-1 objects, then delete the large one. Any
// algorithm maintaining a (3/2)·V footprint pays Ω(f(Delta)) on some
// single request of this sequence.
type LowerBound struct {
	Delta int64

	phase  int
	i      int64
	nextID addrspace.ID
}

// Name implements Stream.
func (l *LowerBound) Name() string { return fmt.Sprintf("lowerbound(delta=%d)", l.Delta) }

// Next implements Stream.
func (l *LowerBound) Next() (Op, bool) {
	switch l.phase {
	case 0:
		l.phase = 1
		l.nextID = 2
		return Op{Insert: true, ID: 1, Size: l.Delta}, true
	case 1:
		if l.i < l.Delta {
			l.i++
			id := l.nextID
			l.nextID++
			return Op{Insert: true, ID: id, Size: 1}, true
		}
		l.phase = 2
		return Op{ID: 1, Size: l.Delta}, true
	default:
		return Op{}, false
	}
}

// CompactionAdversary realizes the paper's Section 2 intuition that
// logging-and-compacting pays amortized Θ(∆) reallocation cost per
// deletion under unit cost: insert Bigs size-Delta objects, then
// Bigs·Delta size-1 objects (which land after the big ones in any
// log-structured layout), then delete the big objects. Restoring the
// footprint requires relocating Θ(Bigs·Delta) small objects — Θ(∆) unit
// cost per deletion — whereas a size-classed reallocator only ever moves
// objects at least as large as the deleted ones.
type CompactionAdversary struct {
	Delta int64
	Bigs  int

	phase  int
	i      int64
	nextID addrspace.ID
}

// Name implements Stream.
func (c *CompactionAdversary) Name() string {
	return fmt.Sprintf("compaction-adversary(delta=%d,bigs=%d)", c.Delta, c.Bigs)
}

// Deletes returns how many delete requests the stream issues.
func (c *CompactionAdversary) Deletes() int { return c.Bigs }

// Next implements Stream.
func (c *CompactionAdversary) Next() (Op, bool) {
	if c.nextID == 0 {
		c.nextID = 1
	}
	switch c.phase {
	case 0: // the big objects
		if c.i < int64(c.Bigs) {
			c.i++
			id := c.nextID
			c.nextID++
			return Op{Insert: true, ID: id, Size: c.Delta}, true
		}
		c.phase, c.i = 1, 0
		fallthrough
	case 1: // the small objects, placed after every big one
		if c.i < int64(c.Bigs)*c.Delta {
			c.i++
			id := c.nextID
			c.nextID++
			return Op{Insert: true, ID: id, Size: 1}, true
		}
		c.phase, c.i = 2, 0
		fallthrough
	case 2: // delete the big objects
		if c.i < int64(c.Bigs) {
			c.i++
			return Op{ID: addrspace.ID(c.i), Size: c.Delta}, true
		}
		return Op{}, false
	default:
		return Op{}, false
	}
}

// GapAdversary realizes the Ω(log ∆) footprint lower bound against
// allocators that never move objects (Robson 1971 / Luby et al. 1996
// style). Phase i first thins every earlier phase's survivors so that
// phase-j survivors sit at every 2^(i-j)-th slot of their original run —
// leaving holes of exactly 2^i − 2^j cells, one cell too small for a
// size-2^i block — and then inserts Volume/2 worth of size-2^i blocks,
// which a no-move allocator can only append at the frontier. The live
// volume stays below Volume (survivor volumes form a geometric series)
// while the footprint grows by Volume/2 per phase, so the final
// footprint/volume ratio is Θ(MaxExp) = Θ(log ∆). A moving reallocator
// holds (1+ε)·V throughout the same sequence.
type GapAdversary struct {
	Volume int64 // live-volume budget (phase volume is Volume/2)
	MaxExp int   // final phase inserts size-2^MaxExp blocks

	ops []Op
	i   int
}

// Name implements Stream.
func (g *GapAdversary) Name() string {
	return fmt.Sprintf("gap-adversary(V=%d,maxExp=%d)", g.Volume, g.MaxExp)
}

// build materializes the deterministic op sequence.
func (g *GapAdversary) build() {
	if g.ops != nil {
		return
	}
	next := addrspace.ID(1)
	// survivors[j] holds phase j's live block IDs, in placement order.
	var survivors [][]addrspace.ID
	for exp := 0; exp <= g.MaxExp; exp++ {
		size := int64(1) << uint(exp)
		// Thin earlier phases: keep every other current survivor, so
		// phase-j spacing becomes 2^(exp-j) slots and every hole is
		// 2^exp - 2^j < 2^exp.
		for j := range survivors {
			kept := survivors[j][:0]
			for idx, id := range survivors[j] {
				if idx%2 == 0 {
					kept = append(kept, id)
				} else {
					g.ops = append(g.ops, Op{ID: id, Size: int64(1) << uint(j)})
				}
			}
			survivors[j] = kept
		}
		// Insert Volume/2 worth of size-2^exp blocks at the frontier.
		count := g.Volume / 2 / size
		if count == 0 {
			count = 1
		}
		var ids []addrspace.ID
		for k := int64(0); k < count; k++ {
			g.ops = append(g.ops, Op{Insert: true, ID: next, Size: size})
			ids = append(ids, next)
			next++
		}
		survivors = append(survivors, ids)
	}
}

// Next implements Stream.
func (g *GapAdversary) Next() (Op, bool) {
	g.build()
	if g.i >= len(g.ops) {
		return Op{}, false
	}
	op := g.ops[g.i]
	g.i++
	return op, true
}
