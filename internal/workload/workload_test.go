package workload

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"realloc/internal/addrspace"
)

// checker validates op-stream contracts: inserts carry fresh IDs and
// positive sizes; deletes reference live objects and carry their size.
type checker struct {
	live map[addrspace.ID]int64
	vol  int64
	t    *testing.T
}

func newChecker(t *testing.T) *checker {
	return &checker{live: map[addrspace.ID]int64{}, t: t}
}

func (c *checker) Insert(id addrspace.ID, size int64) error {
	if id == 0 {
		c.t.Fatal("insert with zero id")
	}
	if size < 1 {
		c.t.Fatalf("insert %d with size %d", id, size)
	}
	if _, dup := c.live[id]; dup {
		c.t.Fatalf("duplicate insert %d", id)
	}
	c.live[id] = size
	c.vol += size
	return nil
}

func (c *checker) Delete(id addrspace.ID) error {
	size, ok := c.live[id]
	if !ok {
		c.t.Fatalf("delete of dead object %d", id)
	}
	delete(c.live, id)
	c.vol -= size
	return nil
}

func TestChurnContractAndVolume(t *testing.T) {
	c := newChecker(t)
	churn := &Churn{Seed: 1, Sizes: Uniform{Min: 1, Max: 100}, TargetVolume: 5000}
	if _, err := Drive(c, churn, 5000); err != nil {
		t.Fatal(err)
	}
	if c.vol != churn.LiveVolume() {
		t.Fatalf("generator volume %d != applied %d", churn.LiveVolume(), c.vol)
	}
	// Steady state hovers near the target.
	if c.vol < 4000 || c.vol > 7000 {
		t.Fatalf("steady volume %d far from target 5000", c.vol)
	}
}

func TestChurnDeleteOpsCarrySize(t *testing.T) {
	churn := &Churn{Seed: 2, Sizes: Uniform{Min: 5, Max: 9}, TargetVolume: 100}
	sizes := map[addrspace.ID]int64{}
	for i := 0; i < 500; i++ {
		op, _ := churn.Next()
		if op.Insert {
			sizes[op.ID] = op.Size
			continue
		}
		if op.Size != sizes[op.ID] {
			t.Fatalf("delete op size %d, inserted %d", op.Size, sizes[op.ID])
		}
	}
}

func TestDeterminism(t *testing.T) {
	streams := func() []Stream {
		return []Stream{
			&Churn{Seed: 7, Sizes: Pareto{Min: 1, Max: 512, Alpha: 1.2}, TargetVolume: 3000},
			&Sawtooth{Seed: 7, Sizes: Uniform{Min: 1, Max: 50}, Low: 500, High: 2000},
			&DBTrace{Seed: 7, Blocks: 50, MinBlock: 4, MaxBlock: 256},
			&GapAdversary{Volume: 512, MaxExp: 4},
			&LowerBound{Delta: 32},
			&CompactionAdversary{Delta: 32, Bigs: 3},
		}
	}
	a, b := streams(), streams()
	for i := range a {
		opsA := Collect(a[i], 2000)
		opsB := Collect(b[i], 2000)
		if len(opsA) != len(opsB) {
			t.Fatalf("%s: lengths differ", a[i].Name())
		}
		for j := range opsA {
			if opsA[j] != opsB[j] {
				t.Fatalf("%s: op %d differs: %+v vs %+v", a[i].Name(), j, opsA[j], opsB[j])
			}
		}
	}
}

func TestSawtoothOscillates(t *testing.T) {
	c := newChecker(t)
	saw := &Sawtooth{Seed: 3, Sizes: Uniform{Min: 1, Max: 20}, Low: 200, High: 1000}
	var sawHigh, sawLow bool
	for i := 0; i < 5000; i++ {
		op, _ := saw.Next()
		if op.Insert {
			_ = c.Insert(op.ID, op.Size)
		} else {
			_ = c.Delete(op.ID)
		}
		if c.vol >= 1000 {
			sawHigh = true
		}
		if sawHigh && c.vol <= 220 {
			sawLow = true
		}
	}
	if !sawHigh || !sawLow {
		t.Fatalf("sawtooth did not oscillate (high=%v low=%v, vol=%d)", sawHigh, sawLow, c.vol)
	}
}

func TestSizeDistributions(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	t.Run("uniform", func(t *testing.T) {
		d := Uniform{Min: 5, Max: 10}
		for i := 0; i < 1000; i++ {
			s := d.Draw(rng)
			if s < 5 || s > 10 {
				t.Fatalf("uniform out of range: %d", s)
			}
		}
		if (Uniform{Min: 7, Max: 7}).Draw(rng) != 7 {
			t.Fatal("degenerate uniform")
		}
	})
	t.Run("pareto", func(t *testing.T) {
		d := Pareto{Min: 2, Max: 1024, Alpha: 1.2}
		small, large := 0, 0
		for i := 0; i < 5000; i++ {
			s := d.Draw(rng)
			if s < 2 || s > 1024 {
				t.Fatalf("pareto out of range: %d", s)
			}
			if s < 8 {
				small++
			}
			if s > 256 {
				large++
			}
		}
		// Heavy tail: mostly small values but some large ones.
		if small < 2500 {
			t.Fatalf("pareto not head-heavy: %d small of 5000", small)
		}
		if large == 0 {
			t.Fatal("pareto tail never sampled")
		}
	})
	t.Run("pow2", func(t *testing.T) {
		d := PowersOfTwo{MinExp: 2, MaxExp: 6}
		for i := 0; i < 1000; i++ {
			s := d.Draw(rng)
			if s&(s-1) != 0 || s < 4 || s > 64 {
				t.Fatalf("pow2 drew %d", s)
			}
		}
	})
}

func TestDBTraceContract(t *testing.T) {
	c := newChecker(t)
	d := &DBTrace{Seed: 4, Blocks: 100, MinBlock: 4, MaxBlock: 512}
	if _, err := Drive(c, d, 8000); err != nil {
		t.Fatal(err)
	}
	// Block count hovers near the steady count.
	if n := len(c.live); n < 50 || n > 200 {
		t.Fatalf("block count drifted to %d", n)
	}
	for _, size := range c.live {
		if size < 4 || size > 512 {
			t.Fatalf("block size %d out of bounds", size)
		}
	}
}

func TestLowerBoundSequence(t *testing.T) {
	ops := Collect(&LowerBound{Delta: 16}, 0)
	if len(ops) != 18 { // 1 big + 16 small + 1 delete
		t.Fatalf("ops = %d", len(ops))
	}
	if !ops[0].Insert || ops[0].Size != 16 {
		t.Fatalf("first op: %+v", ops[0])
	}
	for i := 1; i <= 16; i++ {
		if !ops[i].Insert || ops[i].Size != 1 {
			t.Fatalf("op %d: %+v", i, ops[i])
		}
	}
	last := ops[17]
	if last.Insert || last.ID != ops[0].ID || last.Size != 16 {
		t.Fatalf("last op: %+v", last)
	}
}

func TestCompactionAdversaryShape(t *testing.T) {
	adv := &CompactionAdversary{Delta: 8, Bigs: 3}
	c := newChecker(t)
	if _, err := Drive(c, adv, 0); err != nil {
		t.Fatal(err)
	}
	// After the run: bigs deleted, smalls remain.
	if c.vol != 3*8 {
		t.Fatalf("remaining volume = %d, want 24 smalls", c.vol)
	}
	if adv.Deletes() != 3 {
		t.Fatalf("deletes = %d", adv.Deletes())
	}
}

// TestGapAdversaryLiveVolume asserts the thinning construction's key
// properties: live volume never exceeds the budget, and every hole left
// for phase i is strictly smaller than 2^i.
func TestGapAdversaryLiveVolume(t *testing.T) {
	err := quick.Check(func(seedRaw uint8) bool {
		maxExp := int(seedRaw%5) + 3
		vol := int64(1024)
		adv := &GapAdversary{Volume: vol, MaxExp: maxExp}
		c := newChecker(t)
		for {
			op, ok := adv.Next()
			if !ok {
				break
			}
			if op.Insert {
				_ = c.Insert(op.ID, op.Size)
			} else {
				_ = c.Delete(op.ID)
			}
			if c.vol > vol {
				t.Logf("live volume %d exceeded budget %d", c.vol, vol)
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 10})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReplayAndCollect(t *testing.T) {
	orig := Collect(&LowerBound{Delta: 4}, 0)
	re := Replay("again", orig)
	if re.Name() != "again" {
		t.Fatal("name")
	}
	got := Collect(re, 0)
	if len(got) != len(orig) {
		t.Fatalf("replay length %d != %d", len(got), len(orig))
	}
	for i := range got {
		if got[i] != orig[i] {
			t.Fatalf("replay op %d differs", i)
		}
	}
	// Collect with a cap.
	capped := Collect(Replay("c", orig), 3)
	if len(capped) != 3 {
		t.Fatalf("capped collect = %d", len(capped))
	}
}

func TestDriveStopsOnError(t *testing.T) {
	bad := &failingTarget{failAt: 5}
	n, err := Drive(bad, &Churn{Seed: 1, Sizes: Uniform{Min: 1, Max: 2}, TargetVolume: 100}, 100)
	if err == nil {
		t.Fatal("expected error")
	}
	if n != 4 {
		t.Fatalf("applied %d ops before failure, want 4", n)
	}
}

type failingTarget struct {
	n, failAt int
}

func (f *failingTarget) Insert(addrspace.ID, int64) error { return f.tick() }
func (f *failingTarget) Delete(addrspace.ID) error        { return f.tick() }

func (f *failingTarget) tick() error {
	f.n++
	if f.n >= f.failAt {
		return errFail
	}
	return nil
}

var errFail = &failErr{}

type failErr struct{}

func (*failErr) Error() string { return "synthetic failure" }
