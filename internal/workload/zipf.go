package workload

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"realloc/internal/addrspace"
	"realloc/internal/shardhash"
)

// ZipfChurn is churn whose id selection is Zipf-skewed across hash homes:
// each insert first draws a home h from a Zipf distribution over the
// Homes static shard slots (weight (h+1)^-S), then takes the next fresh
// id whose hash home is h. Deletes pick victims uniformly among live
// objects, which preserves the skew of the live population. Against a
// statically hash-partitioned reallocator with Homes shards this
// concentrates most of the live volume on shard 0 — the workload that
// collapses parallel throughput to a single lock and that rebalancing is
// built to level.
type ZipfChurn struct {
	Seed         uint64
	Sizes        SizeDist
	TargetVolume int64
	// Homes is the number of static shard slots the skew is aimed at;
	// values < 2 degenerate to uniform churn.
	Homes int
	// S is the Zipf exponent; larger is more skewed. Default 1.6.
	S float64
	// InsertBias in [0,1] skews the steady phase; 0.5 holds volume level.
	InsertBias float64
	// FirstID offsets the id space (default 1), letting concurrent
	// streams draw disjoint ids that still follow the Zipf home law —
	// remapping ids after the fact would re-hash them and erase the skew.
	FirstID addrspace.ID

	rng    *rand.Rand
	cdf    []float64
	live   []addrspace.ID
	sizes  map[addrspace.ID]int64
	vol    int64
	nextID addrspace.ID
}

// Name implements Stream.
func (z *ZipfChurn) Name() string {
	return fmt.Sprintf("zipf-churn(%s,V=%d,homes=%d,s=%g)", z.Sizes.Name(), z.TargetVolume, z.Homes, z.S)
}

func (z *ZipfChurn) init() {
	if z.rng != nil {
		return
	}
	z.rng = rand.New(rand.NewPCG(z.Seed, 0x21f0c4e1))
	z.sizes = make(map[addrspace.ID]int64)
	z.nextID = 1
	if z.FirstID > 0 {
		z.nextID = z.FirstID
	}
	if z.InsertBias == 0 {
		z.InsertBias = 0.5
	}
	if z.S == 0 {
		z.S = 1.6
	}
	if z.Homes >= 2 {
		z.cdf = make([]float64, z.Homes)
		total := 0.0
		for h := 0; h < z.Homes; h++ {
			total += math.Pow(float64(h+1), -z.S)
			z.cdf[h] = total
		}
		for h := range z.cdf {
			z.cdf[h] /= total
		}
	}
}

// drawID returns a fresh id; with Homes >= 2 its hash home follows the
// Zipf law. Ids that hash elsewhere are skipped permanently, which keeps
// ids unique at an expected cost of Homes candidates per draw.
func (z *ZipfChurn) drawID() addrspace.ID {
	if z.cdf == nil {
		id := z.nextID
		z.nextID++
		return id
	}
	home := sort.SearchFloat64s(z.cdf, z.rng.Float64())
	if home >= z.Homes {
		home = z.Homes - 1
	}
	for {
		id := z.nextID
		z.nextID++
		if shardhash.Home(int64(id), z.Homes) == home {
			return id
		}
	}
}

// Next implements Stream. ZipfChurn never ends; bound it with Drive's n.
func (z *ZipfChurn) Next() (Op, bool) {
	z.init()
	insert := z.vol < z.TargetVolume || len(z.live) == 0 || z.rng.Float64() < z.InsertBias
	if insert {
		id := z.drawID()
		size := z.Sizes.Draw(z.rng)
		z.live = append(z.live, id)
		z.sizes[id] = size
		z.vol += size
		return Op{Insert: true, ID: id, Size: size}, true
	}
	i := z.rng.IntN(len(z.live))
	id := z.live[i]
	z.live[i] = z.live[len(z.live)-1]
	z.live = z.live[:len(z.live)-1]
	size := z.sizes[id]
	z.vol -= size
	delete(z.sizes, id)
	return Op{ID: id, Size: size}, true
}

// LiveVolume returns the generator's view of the live volume.
func (z *ZipfChurn) LiveVolume() int64 { return z.vol }
