package workload

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Trace text format: one op per line.
//
//	+ <id> <size>   insert
//	- <id> [size]   delete (size optional; informational)
//	# ...           comment
//
// The format round-trips through WriteOps/ReadOps and is stable, so
// captured production traces can be replayed against any allocator and
// compared across versions.

// WriteOps writes ops in the trace text format.
func WriteOps(w io.Writer, ops []Op) error {
	bw := bufio.NewWriter(w)
	for _, op := range ops {
		var err error
		if op.Insert {
			_, err = fmt.Fprintf(bw, "+ %d %d\n", op.ID, op.Size)
		} else {
			_, err = fmt.Fprintf(bw, "- %d %d\n", op.ID, op.Size)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadOps parses the trace text format. Malformed lines abort with an
// error naming the line number.
func ReadOps(r io.Reader) ([]Op, error) {
	var ops []Op
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("workload: line %d: malformed %q", lineNo, line)
		}
		var op Op
		switch fields[0] {
		case "+":
			if len(fields) != 3 {
				return nil, fmt.Errorf("workload: line %d: insert needs id and size", lineNo)
			}
			op.Insert = true
			if _, err := fmt.Sscanf(fields[1]+" "+fields[2], "%d %d", &op.ID, &op.Size); err != nil {
				return nil, fmt.Errorf("workload: line %d: %v", lineNo, err)
			}
			if op.Size < 1 {
				return nil, fmt.Errorf("workload: line %d: size %d < 1", lineNo, op.Size)
			}
		case "-":
			if _, err := fmt.Sscanf(fields[1], "%d", &op.ID); err != nil {
				return nil, fmt.Errorf("workload: line %d: %v", lineNo, err)
			}
			if len(fields) >= 3 {
				if _, err := fmt.Sscanf(fields[2], "%d", &op.Size); err != nil {
					return nil, fmt.Errorf("workload: line %d: %v", lineNo, err)
				}
			}
		default:
			return nil, fmt.Errorf("workload: line %d: unknown op %q", lineNo, fields[0])
		}
		if op.ID == 0 {
			return nil, fmt.Errorf("workload: line %d: zero id", lineNo)
		}
		ops = append(ops, op)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ops, nil
}

// Validate simulates the op sequence against a live-set model, reporting
// the first contract violation (duplicate insert, delete of a dead id)
// and the final live volume.
func Validate(ops []Op) (liveVolume int64, err error) {
	live := map[int64]int64{}
	for i, op := range ops {
		id := int64(op.ID)
		if op.Insert {
			if _, dup := live[id]; dup {
				return 0, fmt.Errorf("workload: op %d: duplicate insert of %d", i, id)
			}
			live[id] = op.Size
			liveVolume += op.Size
		} else {
			size, ok := live[id]
			if !ok {
				return 0, fmt.Errorf("workload: op %d: delete of dead id %d", i, id)
			}
			delete(live, id)
			liveVolume -= size
		}
	}
	return liveVolume, nil
}
