package workload

import (
	"fmt"
	"math/rand/v2"

	"realloc/internal/addrspace"
)

// DBTrace simulates the block workload of a write-optimized database
// (the TokuDB-style setting that motivated the paper): a set of logical
// blocks whose sizes follow a heavy-tailed distribution; updates rewrite a
// block at a new size (delete + insert), occasionally creating or dropping
// blocks. Block sizes model compressed B-tree nodes: mostly around the
// node target size with occasional much larger blobs.
type DBTrace struct {
	Seed   uint64
	Blocks int // steady-state block count
	// MinBlock/MaxBlock bound block sizes in cells (think 4KiB units).
	MinBlock, MaxBlock int64
	// Resize factor bounds per-update size drift, e.g. 0.3 lets a block
	// shrink/grow by up to 30% per rewrite.
	Resize float64

	rng    *rand.Rand
	ids    []addrspace.ID
	sizes  map[addrspace.ID]int64
	nextID addrspace.ID
	// pending holds the second half of an update (the re-insert after the
	// delete).
	pending *Op
}

// Name implements Stream.
func (d *DBTrace) Name() string {
	return fmt.Sprintf("dbtrace(blocks=%d,[%d,%d])", d.Blocks, d.MinBlock, d.MaxBlock)
}

func (d *DBTrace) init() {
	if d.rng != nil {
		return
	}
	d.rng = rand.New(rand.NewPCG(d.Seed, 0xdb7ace))
	d.sizes = make(map[addrspace.ID]int64)
	d.nextID = 1
	if d.Resize == 0 {
		d.Resize = 0.3
	}
}

// blockSize draws a fresh block size: log-uniform-ish with a heavy tail.
func (d *DBTrace) blockSize() int64 {
	p := Pareto{Min: d.MinBlock, Max: d.MaxBlock, Alpha: 1.5}
	return p.Draw(d.rng)
}

// resize drifts an existing size by up to ±Resize.
func (d *DBTrace) resize(s int64) int64 {
	f := 1 + (d.rng.Float64()*2-1)*d.Resize
	ns := int64(float64(s) * f)
	if ns < d.MinBlock {
		ns = d.MinBlock
	}
	if ns > d.MaxBlock {
		ns = d.MaxBlock
	}
	return ns
}

// Next implements Stream; the stream never ends.
func (d *DBTrace) Next() (Op, bool) {
	d.init()
	if d.pending != nil {
		op := *d.pending
		d.pending = nil
		return op, true
	}
	// Warm-up: create blocks until the steady count.
	if len(d.ids) < d.Blocks {
		id := d.nextID
		d.nextID++
		size := d.blockSize()
		d.ids = append(d.ids, id)
		d.sizes[id] = size
		return Op{Insert: true, ID: id, Size: size}, true
	}
	r := d.rng.Float64()
	switch {
	case r < 0.80: // update: rewrite a block at a drifted size
		i := d.rng.IntN(len(d.ids))
		old := d.ids[i]
		oldSize := d.sizes[old]
		size := d.resize(oldSize)
		id := d.nextID
		d.nextID++
		d.ids[i] = id
		delete(d.sizes, old)
		d.sizes[id] = size
		d.pending = &Op{Insert: true, ID: id, Size: size}
		return Op{ID: old, Size: oldSize}, true
	case r < 0.90: // create
		id := d.nextID
		d.nextID++
		size := d.blockSize()
		d.ids = append(d.ids, id)
		d.sizes[id] = size
		return Op{Insert: true, ID: id, Size: size}, true
	default: // drop
		i := d.rng.IntN(len(d.ids))
		id := d.ids[i]
		d.ids[i] = d.ids[len(d.ids)-1]
		d.ids = d.ids[:len(d.ids)-1]
		size := d.sizes[id]
		delete(d.sizes, id)
		return Op{ID: id, Size: size}, true
	}
}
