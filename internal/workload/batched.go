package workload

// BatchStream regroups a Stream's ops into fixed-size batches for the
// batched facade surfaces (Apply/Submit). The op sequence is exactly
// the underlying stream's — batching changes submission granularity,
// never content — so per-op and batched replays of the same seed stay
// comparable.
type BatchStream struct {
	s    Stream
	size int
	buf  []Op
}

// Batched wraps s so ops arrive in groups of size (the final group may
// be shorter). Sizes below 1 are clamped to 1, which degenerates to
// the per-op stream.
func Batched(s Stream, size int) *BatchStream {
	if size < 1 {
		size = 1
	}
	return &BatchStream{s: s, size: size, buf: make([]Op, 0, size)}
}

// Name implements the Stream naming convention.
func (b *BatchStream) Name() string { return b.s.Name() }

// NextBatch returns the next group of ops; ok=false ends the stream.
// The returned slice is reused by the next call — consumers that keep
// batches must copy them.
func (b *BatchStream) NextBatch() ([]Op, bool) {
	b.buf = b.buf[:0]
	for len(b.buf) < b.size {
		op, ok := b.s.Next()
		if !ok {
			break
		}
		b.buf = append(b.buf, op)
	}
	if len(b.buf) == 0 {
		return nil, false
	}
	return b.buf, true
}
