package workload

import (
	"testing"

	"realloc/internal/addrspace"
	"realloc/internal/shardhash"
)

// TestZipfChurnDeterministic: same configuration, same op sequence.
func TestZipfChurnDeterministic(t *testing.T) {
	mk := func() *ZipfChurn {
		return &ZipfChurn{Seed: 7, Sizes: Uniform{Min: 1, Max: 64}, TargetVolume: 5000, Homes: 8}
	}
	a := Collect(mk(), 3000)
	b := Collect(mk(), 3000)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestZipfChurnSkew verifies the construction actually skews the live
// volume: home 0 must carry the plurality of it, strictly more than an
// even split, and the stream must stay a valid request sequence (no
// duplicate live ids, deletes only of live ids).
func TestZipfChurnSkew(t *testing.T) {
	const homes = 8
	z := &ZipfChurn{Seed: 3, Sizes: Uniform{Min: 1, Max: 64}, TargetVolume: 20000, Homes: homes, S: 1.8}
	live := map[addrspace.ID]int64{}
	for i := 0; i < 30000; i++ {
		op, ok := z.Next()
		if !ok {
			t.Fatal("stream ended")
		}
		if op.Insert {
			if _, dup := live[op.ID]; dup {
				t.Fatalf("op %d re-inserts live id %d", i, op.ID)
			}
			live[op.ID] = op.Size
		} else {
			if _, ok := live[op.ID]; !ok {
				t.Fatalf("op %d deletes dead id %d", i, op.ID)
			}
			delete(live, op.ID)
		}
	}
	vols := make([]int64, homes)
	var total int64
	for id, sz := range live {
		vols[shardhash.Home(int64(id), homes)] += sz
		total += sz
	}
	if total != z.LiveVolume() {
		t.Fatalf("live volume mismatch: replay %d, generator %d", total, z.LiveVolume())
	}
	max := vols[0]
	for h, v := range vols {
		if v > max {
			t.Fatalf("home %d (%d) outweighs home 0 (%d): %v", h, v, vols[0], vols)
		}
	}
	// Zipf with s=1.8 over 8 homes puts ~60% of the weight on home 0;
	// require at least 3x an even split to prove real skew.
	if float64(max) < 3*float64(total)/float64(homes) {
		t.Fatalf("home 0 volume %d is not skewed (total %d): %v", max, total, vols)
	}
}

// TestZipfChurnUniformFallback: Homes < 2 degenerates to plain churn.
func TestZipfChurnUniformFallback(t *testing.T) {
	z := &ZipfChurn{Seed: 5, Sizes: Uniform{Min: 1, Max: 8}, TargetVolume: 500, Homes: 1}
	ops := Collect(z, 400)
	if len(ops) != 400 {
		t.Fatalf("collected %d ops", len(ops))
	}
	next := addrspace.ID(1)
	for _, op := range ops {
		if op.Insert {
			if op.ID != next {
				t.Fatalf("uniform fallback skipped ids: got %d want %d", op.ID, next)
			}
			next++
		}
	}
}
