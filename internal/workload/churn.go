package workload

import (
	"fmt"
	"math/rand/v2"

	"realloc/internal/addrspace"
)

// Churn warms the structure up to TargetVolume and then alternates inserts
// and deletes (victims chosen uniformly at random) keeping the live volume
// near the target. It is the steady-state workload of most experiments.
type Churn struct {
	Seed         uint64
	Sizes        SizeDist
	TargetVolume int64
	// InsertBias in [0,1] skews the steady phase; 0.5 holds volume level.
	InsertBias float64

	rng    *rand.Rand
	live   []addrspace.ID
	sizes  map[addrspace.ID]int64
	vol    int64
	nextID addrspace.ID
}

// Name implements Stream.
func (c *Churn) Name() string {
	return fmt.Sprintf("churn(%s,V=%d)", c.Sizes.Name(), c.TargetVolume)
}

func (c *Churn) init() {
	if c.rng != nil {
		return
	}
	c.rng = rand.New(rand.NewPCG(c.Seed, 0xc0ffee))
	c.sizes = make(map[addrspace.ID]int64)
	c.nextID = 1
	if c.InsertBias == 0 {
		c.InsertBias = 0.5
	}
}

// Next implements Stream. Churn never ends; bound it with Drive's n.
func (c *Churn) Next() (Op, bool) {
	c.init()
	insert := c.vol < c.TargetVolume || len(c.live) == 0 || c.rng.Float64() < c.InsertBias
	if insert {
		id := c.nextID
		c.nextID++
		size := c.Sizes.Draw(c.rng)
		c.live = append(c.live, id)
		c.sizes[id] = size
		c.vol += size
		return Op{Insert: true, ID: id, Size: size}, true
	}
	i := c.rng.IntN(len(c.live))
	id := c.live[i]
	c.live[i] = c.live[len(c.live)-1]
	c.live = c.live[:len(c.live)-1]
	size := c.sizes[id]
	c.vol -= size
	delete(c.sizes, id)
	return Op{ID: id, Size: size}, true
}

// LiveVolume returns the generator's view of the live volume.
func (c *Churn) LiveVolume() int64 { return c.vol }

// Sawtooth grows the live volume to High, shrinks it to Low (deleting
// oldest-first), and repeats, exercising mass deletions and structure
// shrinkage.
type Sawtooth struct {
	Seed      uint64
	Sizes     SizeDist
	Low, High int64

	rng     *rand.Rand
	live    []addrspace.ID
	sizes   map[addrspace.ID]int64
	vol     int64
	nextID  addrspace.ID
	growing bool
	started bool
}

// Name implements Stream.
func (s *Sawtooth) Name() string {
	return fmt.Sprintf("sawtooth(%s,%d..%d)", s.Sizes.Name(), s.Low, s.High)
}

// Next implements Stream; the stream never ends.
func (s *Sawtooth) Next() (Op, bool) {
	if !s.started {
		s.rng = rand.New(rand.NewPCG(s.Seed, 0x5a77007))
		s.sizes = make(map[addrspace.ID]int64)
		s.nextID = 1
		s.growing = true
		s.started = true
	}
	if s.growing && s.vol >= s.High {
		s.growing = false
	}
	if !s.growing && (s.vol <= s.Low || len(s.live) == 0) {
		s.growing = true
	}
	if s.growing {
		id := s.nextID
		s.nextID++
		size := s.Sizes.Draw(s.rng)
		s.live = append(s.live, id)
		s.sizes[id] = size
		s.vol += size
		return Op{Insert: true, ID: id, Size: size}, true
	}
	id := s.live[0]
	s.live = s.live[1:]
	size := s.sizes[id]
	s.vol -= size
	delete(s.sizes, id)
	return Op{ID: id, Size: size}, true
}
