// Package rebalance implements the decision half of cross-shard
// rebalancing for the sharded reallocator: skew detection over per-shard
// live volumes and the planning of bounded migration batches that level
// them. The package is pure — it never touches locks or reallocator
// state — so the policies are unit-testable in isolation; the execution
// half (deterministic lock order, delete-from-source + insert-into-target,
// event emission) lives in the realloc package.
//
// Why migration is safe: the paper's guarantees are per-allocator. Each
// shard keeps its footprint within (1+ε) of its own live volume and its
// reallocation cost O((1/ε)·log(1/ε))-competitive for every subadditive
// cost function, no matter which request stream it sees. A migration is
// just one more delete on the source shard and one more insert on the
// target shard, so both bounds keep holding on both sides, and both are
// closed under summation — moving volume between shards changes which
// shard pays, never the global bound.
package rebalance

import (
	"fmt"
	"time"
)

// Mode selects when the rebalancer runs.
type Mode int

const (
	// Background runs a threshold-triggered sweep on a ticker goroutine.
	Background Mode = iota
	// Inline checks skew every CheckEvery mutating requests, on the
	// request path, and steals a migration batch when the threshold
	// trips.
	Inline
)

func (m Mode) String() string {
	switch m {
	case Background:
		return "background"
	case Inline:
		return "inline"
	default:
		return "unknown"
	}
}

// settleRatio is the post-sweep target: once triggered, a sweep levels
// shards until max/mean falls to this, giving hysteresis below the
// trigger threshold so sweeps don't oscillate.
const settleRatio = 1.05

// Policy configures a rebalancer.
type Policy struct {
	// Mode selects background sweeps or inline work-stealing.
	Mode Mode
	// Threshold is the imbalance trigger θ: a sweep starts when
	// max(shard volume)/mean(shard volume) exceeds it. Must be > 1.
	Threshold float64
	// BatchObjects bounds how many objects one planned move migrates.
	BatchObjects int
	// CheckEvery is the inline mode's skew-check period in mutating
	// requests.
	CheckEvery int
	// Interval is the background mode's sweep period.
	Interval time.Duration
}

// WithDefaults fills zero fields with the defaults.
func (p Policy) WithDefaults() Policy {
	if p.Threshold == 0 {
		p.Threshold = 1.5
	}
	if p.BatchObjects == 0 {
		p.BatchObjects = 256
	}
	if p.CheckEvery == 0 {
		p.CheckEvery = 64
	}
	if p.Interval == 0 {
		p.Interval = 2 * time.Millisecond
	}
	return p
}

// Validate rejects unusable policies (after WithDefaults).
func (p Policy) Validate() error {
	if !(p.Threshold > 1) {
		return fmt.Errorf("rebalance: threshold must be > 1, got %g", p.Threshold)
	}
	if p.BatchObjects < 1 {
		return fmt.Errorf("rebalance: batch size must be >= 1, got %d", p.BatchObjects)
	}
	if p.CheckEvery < 1 {
		return fmt.Errorf("rebalance: check period must be >= 1, got %d", p.CheckEvery)
	}
	if p.Interval <= 0 {
		return fmt.Errorf("rebalance: interval must be > 0, got %v", p.Interval)
	}
	return nil
}

// Skew returns the imbalance ratio max/mean of the per-shard volumes; it
// is 0 when there is no volume and 1 when perfectly level.
func Skew(vols []int64) float64 {
	if len(vols) == 0 {
		return 0
	}
	var total, max int64
	for _, v := range vols {
		total += v
		if v > max {
			max = v
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(vols))
	return float64(max) / mean
}

// Move is one planned migration: shift up to Volume cells of live objects
// from shard From to shard To.
type Move struct {
	From, To int
	Volume   int64
}

// PlanMoves returns the migration batch that levels vols once the
// imbalance ratio exceeds threshold; it returns nil while the ratio is in
// bounds. Planning is greedy — repeatedly shift the overfull shard's
// excess toward the emptiest shard — and stops at settleRatio, so a
// triggered sweep lands well below the trigger and does not oscillate.
// Volumes are advisory budgets: the executor also bounds each move by
// Policy.BatchObjects.
func PlanMoves(vols []int64, threshold float64) []Move {
	n := len(vols)
	if n < 2 {
		return nil
	}
	var total int64
	for _, v := range vols {
		total += v
	}
	if total == 0 {
		return nil
	}
	mean := float64(total) / float64(n)
	if Skew(vols) <= threshold {
		return nil
	}
	// A threshold tighter than the usual settle target must still level
	// below itself, or every triggered sweep would plan nothing and the
	// trigger would fire forever.
	settle := settleRatio
	if threshold < settle {
		settle = threshold
	}
	w := make([]int64, n)
	copy(w, vols)
	var moves []Move
	for iter := 0; iter < 2*n; iter++ {
		hi, lo := 0, 0
		for i, v := range w {
			if v > w[hi] {
				hi = i
			}
			if v < w[lo] {
				lo = i
			}
		}
		if float64(w[hi]) <= settle*mean {
			break
		}
		excess := float64(w[hi]) - mean
		deficit := mean - float64(w[lo])
		amt := int64(excess)
		if deficit < excess {
			amt = int64(deficit)
		}
		if amt < 1 {
			break
		}
		moves = append(moves, Move{From: hi, To: lo, Volume: amt})
		w[hi] -= amt
		w[lo] += amt
	}
	return moves
}
