package rebalance

import (
	"testing"
	"time"
)

func TestSkew(t *testing.T) {
	cases := []struct {
		name string
		vols []int64
		want float64
	}{
		{"empty", nil, 0},
		{"all zero", []int64{0, 0, 0}, 0},
		{"level", []int64{100, 100, 100, 100}, 1},
		{"one hot", []int64{300, 100, 100, 100}, 2},
		{"single shard", []int64{42}, 1},
	}
	for _, c := range cases {
		if got := Skew(c.vols); got != c.want {
			t.Errorf("%s: Skew(%v) = %g, want %g", c.name, c.vols, got, c.want)
		}
	}
}

func TestPlanMovesBelowThresholdIsNil(t *testing.T) {
	if m := PlanMoves([]int64{120, 100, 100, 80}, 1.5); m != nil {
		t.Fatalf("in-bounds volumes planned moves: %v", m)
	}
	if m := PlanMoves([]int64{1000}, 1.5); m != nil {
		t.Fatalf("single shard planned moves: %v", m)
	}
	if m := PlanMoves([]int64{0, 0, 0}, 1.5); m != nil {
		t.Fatalf("zero volume planned moves: %v", m)
	}
}

// TestPlanMovesLevels applies the planned moves and checks the result
// settles below the trigger threshold without inventing or losing volume.
func TestPlanMovesLevels(t *testing.T) {
	cases := [][]int64{
		{8000, 100, 100, 100, 100, 100, 100, 100},
		{100, 0},
		{500, 500, 500, 5000},
		{9, 1, 1, 1, 1, 1, 1, 1},
	}
	for _, vols := range cases {
		var before int64
		for _, v := range vols {
			before += v
		}
		moves := PlanMoves(vols, 1.5)
		if len(moves) == 0 {
			t.Fatalf("skewed volumes %v planned no moves", vols)
		}
		w := append([]int64(nil), vols...)
		for _, m := range moves {
			if m.From == m.To {
				t.Fatalf("self-move in plan for %v: %+v", vols, m)
			}
			if m.Volume < 1 {
				t.Fatalf("empty move in plan for %v: %+v", vols, m)
			}
			w[m.From] -= m.Volume
			w[m.To] += m.Volume
		}
		var after int64
		for i, v := range w {
			if v < 0 {
				t.Fatalf("plan for %v drives shard %d negative: %v", vols, i, w)
			}
			after += v
		}
		if after != before {
			t.Fatalf("plan for %v changed total volume %d -> %d", vols, before, after)
		}
		// settleRatio + 1 cell of integer rounding slack per move.
		if s := Skew(w); s > settleRatio+0.1 {
			t.Fatalf("plan for %v settles at skew %g: %v", vols, s, w)
		}
	}
}

// TestPlanMovesTightThreshold: a threshold below the usual settle target
// must still produce a plan that settles below itself — otherwise every
// triggered sweep would plan nothing and the trigger would fire forever.
func TestPlanMovesTightThreshold(t *testing.T) {
	vols := []int64{1040, 1000, 1000, 960}
	const threshold = 1.02 // skew is 1.04: triggered
	moves := PlanMoves(vols, threshold)
	if len(moves) == 0 {
		t.Fatalf("tight threshold planned no moves for %v", vols)
	}
	w := append([]int64(nil), vols...)
	for _, m := range moves {
		w[m.From] -= m.Volume
		w[m.To] += m.Volume
	}
	if s := Skew(w); s > threshold {
		t.Fatalf("plan settles at %g, above its own threshold %g: %v", s, threshold, w)
	}
}

func TestPolicyDefaultsAndValidate(t *testing.T) {
	p := Policy{}.WithDefaults()
	if err := p.Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	if p.Threshold <= 1 || p.BatchObjects < 1 || p.CheckEvery < 1 || p.Interval <= 0 {
		t.Fatalf("defaults incomplete: %+v", p)
	}
	bad := []Policy{
		{Threshold: 1, BatchObjects: 1, CheckEvery: 1, Interval: time.Millisecond},
		{Threshold: 0.5, BatchObjects: 1, CheckEvery: 1, Interval: time.Millisecond},
		{Threshold: 2, BatchObjects: 0, CheckEvery: 1, Interval: time.Millisecond},
		{Threshold: 2, BatchObjects: 1, CheckEvery: 0, Interval: time.Millisecond},
		{Threshold: 2, BatchObjects: 1, CheckEvery: 1, Interval: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: policy %+v validated", i, p)
		}
	}
	if Background.String() != "background" || Inline.String() != "inline" {
		t.Fatal("mode names changed")
	}
}
