package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

func populatedRegistry(t *testing.T) *Registry {
	t.Helper()
	reg := NewRegistry()
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 2; i++ {
		set := reg.Shard(i)
		for n := 0; n < 500; n++ {
			set.InsertLatency.Record(r.Int63n(1 << 20))
			set.DeleteLatency.Record(r.Int63n(1 << 18))
			set.FlushDuration.Record(r.Int63n(1 << 24))
			set.FlushMoved.Record(r.Int63n(4096))
			set.BatchSize.Record(1 + r.Int63n(512))
			set.SubmitLatency.Record(r.Int63n(1 << 22))
			set.WALFsync.Record(r.Int63n(1 << 21))
		}
		set.Recovery.Record(r.Int63n(1 << 26))
		set.Checkpoints.Add(int64(10 * (i + 1)))
	}
	return reg
}

// TestPrometheusHandler validates the /metrics output structurally:
// every histogram series has monotone cumulative buckets ending in a
// +Inf bucket that equals _count, and per-shard labels appear for each
// populated shard.
func TestPrometheusHandler(t *testing.T) {
	reg := populatedRegistry(t)
	rec := httptest.NewRecorder()
	Handler(reg).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q, want Prometheus text 0.0.4", ct)
	}
	body := rec.Body.String()

	for _, want := range []string{
		`realloc_insert_latency_seconds_bucket{shard="0",`,
		`realloc_insert_latency_seconds_bucket{shard="1",`,
		`realloc_flush_duration_seconds_count{shard="0"}`,
		`realloc_checkpoints_total{shard="1"} 20`,
		`realloc_batch_size_ops_bucket{shard="0",`,
		`realloc_batch_size_ops_count{shard="1"}`,
		`realloc_submit_latency_seconds_bucket{shard="1",`,
		`realloc_wal_fsync_seconds_bucket{shard="0",`,
		`realloc_recovery_seconds_count{shard="1"}`,
		"# TYPE realloc_insert_latency_seconds histogram",
		"# TYPE realloc_wal_fsync_seconds histogram",
		"# TYPE realloc_recovery_seconds histogram",
		"# TYPE realloc_batch_size_ops histogram",
		"# TYPE realloc_submit_latency_seconds histogram",
		"# TYPE realloc_checkpoints_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}

	// Parse every series: cumulative buckets must be monotone and the
	// +Inf bucket must equal the series' _count.
	cum := map[string]int64{} // series+labels -> last cumulative value
	inf := map[string]int64{} // series+labels -> +Inf bucket
	cnt := map[string]int64{} // series+labels -> _count
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		series, valStr := line[:sp], line[sp+1:]
		switch {
		case strings.Contains(series, "_bucket{"):
			v, err := strconv.ParseInt(valStr, 10, 64)
			if err != nil {
				t.Fatalf("bucket value %q: %v", valStr, err)
			}
			key := series[:strings.Index(series, "le=")]
			if v < cum[key] {
				t.Fatalf("cumulative bucket decreased on %s: %d -> %d", key, cum[key], v)
			}
			cum[key] = v
			if strings.Contains(series, `le="+Inf"`) {
				inf[key] = v
			}
		case strings.Contains(series, "_count{"):
			v, _ := strconv.ParseInt(valStr, 10, 64)
			key := strings.Replace(series, "_count{", "_bucket{", 1)
			key = key[:len(key)-1] + ","
			cnt[key] = v
		}
	}
	if len(inf) == 0 {
		t.Fatal("no +Inf buckets found")
	}
	for key, v := range inf {
		if c, ok := cnt[key]; !ok || c != v {
			t.Errorf("series %s: +Inf bucket %d != _count %d (ok=%v)", key, v, c, ok)
		}
	}

	// The aggregate count across shards must match what was recorded.
	var total int64
	for key, v := range inf {
		if strings.HasPrefix(key, "realloc_insert_latency_seconds_bucket") {
			total += v
		}
	}
	if total != 1000 {
		t.Fatalf("insert latency +Inf total = %d, want 1000", total)
	}
}

// TestExpvarVar checks the expvar string is valid JSON carrying the
// summaries.
func TestExpvarVar(t *testing.T) {
	reg := populatedRegistry(t)
	var got Summaries
	if err := json.Unmarshal([]byte(Var(reg).String()), &got); err != nil {
		t.Fatalf("expvar output not valid JSON: %v", err)
	}
	if got.Shards != 2 || got.InsertLatencyNs.Count != 1000 || got.Checkpoints != 30 {
		t.Fatalf("expvar summaries wrong: %+v", got)
	}
	if got.InsertLatencyNs.P50 > got.InsertLatencyNs.P99 ||
		got.InsertLatencyNs.P99 > got.InsertLatencyNs.Max {
		t.Fatalf("percentiles not ordered: %+v", got.InsertLatencyNs)
	}
}

// TestSnapshotWriter checks the JSONL stream: sequential seq numbers,
// a manifest on every line, and metrics that track the registry.
func TestSnapshotWriter(t *testing.T) {
	reg := populatedRegistry(t)
	var buf bytes.Buffer
	sw := NewSnapshotWriter(&buf)
	if err := sw.Write(reg); err != nil {
		t.Fatal(err)
	}
	reg.Shard(0).InsertLatency.Record(1)
	if err := sw.Write(reg); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var first, second snapshotLine
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	if first.Seq != 0 || second.Seq != 1 {
		t.Fatalf("seq = %d,%d want 0,1", first.Seq, second.Seq)
	}
	if second.UptimeNs < first.UptimeNs {
		t.Fatalf("uptime went backwards: %d -> %d", first.UptimeNs, second.UptimeNs)
	}
	if first.Manifest.GoVersion == "" {
		t.Fatal("manifest missing Go version")
	}
	if second.Metrics.InsertLatencyNs.Count != first.Metrics.InsertLatencyNs.Count+1 {
		t.Fatalf("metrics did not advance: %d -> %d",
			first.Metrics.InsertLatencyNs.Count, second.Metrics.InsertLatencyNs.Count)
	}
}

// TestAppendFindings checks the findings flattening: populated metrics
// appear under the prefix, empty ones are skipped.
func TestAppendFindings(t *testing.T) {
	reg := NewRegistry()
	reg.Shard(0).InsertLatency.Record(100)
	reg.Shard(0).Checkpoints.Add(3)
	m := map[string]float64{}
	reg.Snapshot().AppendFindings(m, "telemetry/")
	if m["telemetry/insert_latency/count"] != 1 {
		t.Fatalf("missing insert latency count: %v", m)
	}
	if m["telemetry/checkpoints"] != 3 {
		t.Fatalf("missing checkpoints: %v", m)
	}
	for k := range m {
		if strings.Contains(k, "migrate_latency") {
			t.Fatalf("empty histogram emitted finding %q", k)
		}
	}
}

// TestServeMux checks the debug mux wires all three surfaces.
func TestServeMux(t *testing.T) {
	mux := NewServeMux(populatedRegistry(t))
	for _, path := range []string{"/metrics", "/debug/vars", "/debug/pprof/"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Errorf("GET %s = %d, want 200", path, rec.Code)
		}
	}
}
