// Exporters: the same registry surfaces three ways, all stdlib-only —
// Prometheus text on /metrics (per-shard histograms, so a scrape sees
// skew between shards, not just the blended tail), an expvar Var for
// /debug/vars, and a JSONL snapshot writer that stamps each line with
// the benchfmt manifest so offline tooling can line snapshots up with
// BENCH_*.json trajectory records from the same commit.
package telemetry

import (
	"bufio"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"

	"realloc/internal/benchfmt"
)

// Summary is the percentile digest of one histogram, the shape
// embedded in BENCH_<id>.json findings and /debug/vars.
type Summary struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P95   int64   `json:"p95"`
	P99   int64   `json:"p99"`
	Max   int64   `json:"max"`
}

// Summary digests the snapshot into count/mean/p50/p95/p99/max.
func (s *HistSnapshot) Summary() Summary {
	return Summary{
		Count: s.Count,
		Sum:   s.Sum,
		Mean:  s.Mean(),
		P50:   s.Quantile(0.50),
		P95:   s.Quantile(0.95),
		P99:   s.Quantile(0.99),
		Max:   s.Max,
	}
}

// Summaries is the JSON shape of a whole Snapshot: one Summary per
// metric, nanosecond and cell units spelled out in the keys.
type Summaries struct {
	Shards           int     `json:"shards"`
	InsertLatencyNs  Summary `json:"insert_latency_ns"`
	DeleteLatencyNs  Summary `json:"delete_latency_ns"`
	FlushDurationNs  Summary `json:"flush_duration_ns"`
	FlushStallNs     Summary `json:"flush_stall_ns"`
	FlushMovedCells  Summary `json:"flush_moved_cells"`
	FlushChunkCells  Summary `json:"flush_chunk_cells"`
	FlushCopyNs      Summary `json:"flush_copy_ns"`
	MigrateLatencyNs Summary `json:"migrate_latency_ns"`
	BatchSizeOps     Summary `json:"batch_size_ops"`
	SubmitLatencyNs  Summary `json:"submit_latency_ns"`
	WALFsyncNs       Summary `json:"wal_fsync_ns"`
	RecoveryNs       Summary `json:"recovery_ns"`
	Checkpoints      int64   `json:"checkpoints"`
	BytesMoved       int64   `json:"bytes_moved"`
}

// Summaries digests every metric of the snapshot.
func (s *Snapshot) Summaries() Summaries {
	return Summaries{
		Shards:           s.Shards,
		InsertLatencyNs:  s.InsertLatency.Summary(),
		DeleteLatencyNs:  s.DeleteLatency.Summary(),
		FlushDurationNs:  s.FlushDuration.Summary(),
		FlushStallNs:     s.FlushStall.Summary(),
		FlushMovedCells:  s.FlushMoved.Summary(),
		FlushChunkCells:  s.FlushChunk.Summary(),
		FlushCopyNs:      s.FlushCopy.Summary(),
		MigrateLatencyNs: s.MigrateLatency.Summary(),
		BatchSizeOps:     s.BatchSize.Summary(),
		SubmitLatencyNs:  s.SubmitLatency.Summary(),
		WALFsyncNs:       s.WALFsync.Summary(),
		RecoveryNs:       s.Recovery.Summary(),
		Checkpoints:      s.Checkpoints,
		BytesMoved:       s.BytesMoved,
	}
}

// AppendFindings merges the snapshot's non-empty metrics into a
// findings map (the benchfmt.Record schema) under prefix, e.g.
// "telemetry/insert_latency/p99_ns". Empty histograms are skipped so
// core-level experiment records don't carry dead zero rows.
func (s *Snapshot) AppendFindings(m map[string]float64, prefix string) {
	add := func(name, unit string, h *HistSnapshot) {
		if h.Count == 0 {
			return
		}
		m[prefix+name+"/count"] = float64(h.Count)
		m[prefix+name+"/mean_"+unit] = h.Mean()
		m[prefix+name+"/p50_"+unit] = float64(h.Quantile(0.50))
		m[prefix+name+"/p95_"+unit] = float64(h.Quantile(0.95))
		m[prefix+name+"/p99_"+unit] = float64(h.Quantile(0.99))
		m[prefix+name+"/max_"+unit] = float64(h.Max)
	}
	add("insert_latency", "ns", &s.InsertLatency)
	add("delete_latency", "ns", &s.DeleteLatency)
	add("flush_duration", "ns", &s.FlushDuration)
	add("flush_stall", "ns", &s.FlushStall)
	add("flush_moved", "cells", &s.FlushMoved)
	add("flush_chunk", "cells", &s.FlushChunk)
	add("flush_copy", "ns", &s.FlushCopy)
	add("migrate_latency", "ns", &s.MigrateLatency)
	add("batch_size", "ops", &s.BatchSize)
	add("submit_latency", "ns", &s.SubmitLatency)
	add("wal_fsync", "ns", &s.WALFsync)
	add("recovery", "ns", &s.Recovery)
	if s.Checkpoints != 0 {
		m[prefix+"checkpoints"] = float64(s.Checkpoints)
	}
	if s.BytesMoved != 0 {
		m[prefix+"bytes_moved"] = float64(s.BytesMoved)
	}
}

// Var wraps the registry as an expvar.Var whose String() is the JSON
// Summaries of a fresh aggregate snapshot. Publish it under any name:
//
//	expvar.Publish("realloc", telemetry.Var(reg))
func Var(reg *Registry) expvar.Var { return exportVar{reg} }

type exportVar struct{ reg *Registry }

func (v exportVar) String() string {
	var snap Snapshot
	v.reg.ReadSnapshot(&snap)
	b, err := json.Marshal(snap.Summaries())
	if err != nil {
		return "{}"
	}
	return string(b)
}

// Handler serves the registry in Prometheus text exposition format
// (version 0.0.4): per-shard op-latency, flush, and migration
// histograms with cumulative le buckets, duration metrics in seconds,
// volume metrics in cells. Stdlib only — no client library.
func Handler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		bw := bufio.NewWriter(w)
		writePrometheus(bw, reg)
		bw.Flush()
	})
}

// NewServeMux returns a mux with the full debug surface: /metrics
// (Prometheus text), /debug/vars (expvar), and /debug/pprof. The pprof
// routes are wired explicitly rather than via the package's init side
// effect on http.DefaultServeMux, so embedding this mux never leaks
// handlers onto a default mux the host process may expose elsewhere.
func NewServeMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(reg))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writePrometheus(w io.Writer, reg *Registry) {
	shards := reg.NumShards()
	var snap Snapshot
	type hist struct {
		name, help string
		scale      float64 // multiplier into the exported unit
		get        func(*Snapshot) *HistSnapshot
	}
	hists := []hist{
		{"realloc_insert_latency_seconds", "Wall-clock Insert latency.", 1e-9,
			func(s *Snapshot) *HistSnapshot { return &s.InsertLatency }},
		{"realloc_delete_latency_seconds", "Wall-clock Delete latency.", 1e-9,
			func(s *Snapshot) *HistSnapshot { return &s.DeleteLatency }},
		{"realloc_flush_duration_seconds", "Active execution time per flush.", 1e-9,
			func(s *Snapshot) *HistSnapshot { return &s.FlushDuration }},
		{"realloc_flush_stall_seconds", "Per-op time blocked behind another op's flush.", 1e-9,
			func(s *Snapshot) *HistSnapshot { return &s.FlushStall }},
		{"realloc_flush_moved_cells", "Cells moved per completed flush.", 1,
			func(s *Snapshot) *HistSnapshot { return &s.FlushMoved }},
		{"realloc_flush_chunk_cells", "Cells moved per deamortized session chunk.", 1,
			func(s *Snapshot) *HistSnapshot { return &s.FlushChunk }},
		{"realloc_flush_copy_seconds", "Time inside payload memmoves per completed flush.", 1e-9,
			func(s *Snapshot) *HistSnapshot { return &s.FlushCopy }},
		{"realloc_migrate_latency_seconds", "Per-object rebalancer migration latency.", 1e-9,
			func(s *Snapshot) *HistSnapshot { return &s.MigrateLatency }},
		{"realloc_batch_size_ops", "Ops per executed batch group.", 1,
			func(s *Snapshot) *HistSnapshot { return &s.BatchSize }},
		{"realloc_submit_latency_seconds", "Async submit-to-complete latency per op.", 1e-9,
			func(s *Snapshot) *HistSnapshot { return &s.SubmitLatency }},
		{"realloc_wal_fsync_seconds", "WAL group-fsync latency.", 1e-9,
			func(s *Snapshot) *HistSnapshot { return &s.WALFsync }},
		{"realloc_recovery_seconds", "Crash-recovery duration per replay.", 1e-9,
			func(s *Snapshot) *HistSnapshot { return &s.Recovery }},
	}
	for _, h := range hists {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help, h.name)
		for i := 0; i < shards; i++ {
			reg.ReadShardSnapshot(i, &snap)
			writeHistogram(w, h.name, `shard="`+strconv.Itoa(i)+`"`, h.get(&snap), h.scale)
		}
	}
	fmt.Fprintf(w, "# HELP realloc_checkpoints_total Checkpointed placements.\n# TYPE realloc_checkpoints_total counter\n")
	for i := 0; i < shards; i++ {
		reg.ReadShardSnapshot(i, &snap)
		fmt.Fprintf(w, "realloc_checkpoints_total{shard=%q} %d\n", strconv.Itoa(i), snap.Checkpoints)
	}
	fmt.Fprintf(w, "# HELP realloc_bytes_moved_total Payload bytes moved by relocations.\n# TYPE realloc_bytes_moved_total counter\n")
	for i := 0; i < shards; i++ {
		reg.ReadShardSnapshot(i, &snap)
		fmt.Fprintf(w, "realloc_bytes_moved_total{shard=%q} %d\n", strconv.Itoa(i), snap.BytesMoved)
	}
}

// writeHistogram emits one labeled histogram series: cumulative
// buckets up to the last occupied one, then +Inf, _sum, _count. The le
// bound of bucket i is its highest contained raw value scaled into the
// exported unit (histogram buckets hold integers, so hi-1 is exact).
func writeHistogram(w io.Writer, name, labels string, s *HistSnapshot, scale float64) {
	var cum int64
	last := -1
	for i := range s.Buckets {
		if s.Buckets[i] != 0 {
			last = i
		}
	}
	for i := 0; i <= last; i++ {
		cum += s.Buckets[i]
		le := strconv.FormatFloat(float64(bucketHi(i)-1)*scale, 'g', -1, 64)
		fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", name, labels, le, cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, labels, s.Count)
	fmt.Fprintf(w, "%s_sum{%s} %s\n", name, labels, strconv.FormatFloat(float64(s.Sum)*scale, 'g', -1, 64))
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, s.Count)
}

// SnapshotWriter emits one JSONL line per Write: sequence number,
// process uptime, the benchfmt manifest (commit, Go version, procs),
// and the full Summaries digest. Lines are self-describing so a file
// concatenated across runs still attributes every sample.
type SnapshotWriter struct {
	enc      *json.Encoder
	manifest benchfmt.Manifest
	seq      int64
}

// snapshotLine is the schema of one JSONL line.
type snapshotLine struct {
	Seq      int64             `json:"seq"`
	UptimeNs int64             `json:"uptime_ns"`
	Manifest benchfmt.Manifest `json:"manifest"`
	Metrics  Summaries         `json:"metrics"`
}

// NewSnapshotWriter captures the manifest once and streams lines to w.
func NewSnapshotWriter(w io.Writer) *SnapshotWriter {
	return &SnapshotWriter{enc: json.NewEncoder(w), manifest: benchfmt.CurrentManifest()}
}

// Write appends one snapshot line for the registry's current state.
func (sw *SnapshotWriter) Write(reg *Registry) error {
	var snap Snapshot
	reg.ReadSnapshot(&snap)
	line := snapshotLine{Seq: sw.seq, UptimeNs: Now(), Manifest: sw.manifest, Metrics: snap.Summaries()}
	sw.seq++
	return sw.enc.Encode(line)
}
