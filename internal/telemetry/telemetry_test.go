package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// TestBucketMath checks the bucket index/bound functions agree: every
// value lands in a bucket whose [lo, hi) range contains it, indices are
// monotone in the value, and the top of int64 stays inside the array.
func TestBucketMath(t *testing.T) {
	samples := []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 11, 12, 15, 16, 23, 24,
		1 << 10, 3 << 9, (3 << 9) - 1, 1<<62 - 1, 1 << 62, math.MaxInt64}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 10_000; i++ {
		samples = append(samples, r.Int63())
	}
	prevIdx, prevV := 0, int64(0)
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, v := range samples {
		i := bucketOf(v)
		if i < 0 || i >= NumBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range", v, i)
		}
		if i > 124 {
			t.Fatalf("bucketOf(%d) = %d beyond top occupied index 124", v, i)
		}
		if lo, hi := bucketLo(i), bucketHi(i); v < lo || (v >= hi && hi != math.MaxInt64) || v > hi {
			t.Fatalf("value %d not in bucket %d range [%d, %d)", v, i, lo, hi)
		}
		if v >= prevV && i < prevIdx {
			t.Fatalf("bucket index not monotone: %d->%d for %d->%d", prevIdx, i, prevV, v)
		}
		prevIdx, prevV = i, v
	}
	// Bucket ranges tile the line: each bucket starts where the previous
	// one ends.
	for i := 0; i < 124; i++ {
		if bucketHi(i) != bucketLo(i+1) {
			t.Fatalf("gap between bucket %d (hi %d) and %d (lo %d)",
				i, bucketHi(i), i+1, bucketLo(i+1))
		}
	}
	if bucketOf(math.MaxInt64) != 124 {
		t.Fatalf("bucketOf(MaxInt64) = %d, want 124", bucketOf(math.MaxInt64))
	}
}

// TestHistogramRecord checks sum/count/max bookkeeping and the negative
// clamp.
func TestHistogramRecord(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 5, 100, 7, -3} {
		h.Record(v)
	}
	var s HistSnapshot
	h.AddTo(&s)
	if s.Count != 6 {
		t.Fatalf("Count = %d, want 6", s.Count)
	}
	if s.Sum != 113 { // -3 clamps to 0
		t.Fatalf("Sum = %d, want 113", s.Sum)
	}
	if s.Max != 100 {
		t.Fatalf("Max = %d, want 100", s.Max)
	}
	if got := s.Quantile(1); got != 100 {
		t.Fatalf("Quantile(1) = %d, want clamp to max 100", got)
	}
}

// TestHistogramRecordN pins RecordN(v, n) as exactly n Record(v) calls,
// including the negative clamp and the no-op on n <= 0.
func TestHistogramRecordN(t *testing.T) {
	var coalesced, looped Histogram
	for _, c := range []struct{ v, n int64 }{{0, 3}, {5, 64}, {100, 1}, {-3, 2}, {7, 0}, {9, -1}} {
		coalesced.RecordN(c.v, c.n)
		for i := int64(0); i < c.n; i++ {
			looped.Record(c.v)
		}
	}
	var a, b HistSnapshot
	coalesced.AddTo(&a)
	looped.AddTo(&b)
	if a != b {
		t.Fatalf("RecordN diverged from looped Record:\n got %+v\nwant %+v", a, b)
	}
	if a.Count != 70 || a.Max != 100 {
		t.Fatalf("Count/Max = %d/%d, want 70/100", a.Count, a.Max)
	}
}

// quantileOracle is the exact empirical quantile the histogram
// approximates: the rank-⌈q·n⌉ element of the sorted sample.
func quantileOracle(sorted []int64, q float64) int64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// TestQuantileAccuracy bounds the histogram's quantile error against a
// sorted-slice oracle on uniform and lognormal samples. The estimator
// returns the midpoint of the oracle's bucket, so the relative error is
// bounded by half a bucket width (≤ 25%); the assertion allows 30% plus
// small absolute slack for the integer buckets at the bottom.
func TestQuantileAccuracy(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	dists := map[string]func() int64{
		"uniform":   func() int64 { return r.Int63n(1_000_000) },
		"lognormal": func() int64 { return int64(math.Exp(r.NormFloat64()*2 + 10)) },
	}
	for name, draw := range dists {
		t.Run(name, func(t *testing.T) {
			var h Histogram
			xs := make([]int64, 0, 50_000)
			for i := 0; i < 50_000; i++ {
				v := draw()
				xs = append(xs, v)
				h.Record(v)
			}
			sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
			var s HistSnapshot
			h.AddTo(&s)
			for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1} {
				want := quantileOracle(xs, q)
				got := s.Quantile(q)
				diff := math.Abs(float64(got - want))
				if diff > 0.30*float64(want)+4 {
					t.Errorf("q=%v: got %d, oracle %d (err %.1f%%)",
						q, got, want, 100*diff/float64(want))
				}
			}
			// Quantiles are monotone in q.
			prev := int64(-1)
			for q := 0.0; q <= 1.0; q += 0.05 {
				v := s.Quantile(q)
				if v < prev {
					t.Fatalf("Quantile not monotone at q=%v: %d < %d", q, v, prev)
				}
				prev = v
			}
		})
	}
}

// TestSnapshotMerge checks Merge against recording everything into one
// histogram.
func TestSnapshotMerge(t *testing.T) {
	var a, b, all Histogram
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		v := r.Int63n(1 << 20)
		all.Record(v)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	var sa, sall HistSnapshot
	a.AddTo(&sa)
	b.AddTo(&sa) // AddTo accumulates, same as Merge of b's snapshot
	all.AddTo(&sall)
	if sa != sall {
		t.Fatalf("merged snapshot differs from single-histogram snapshot")
	}
	var sb HistSnapshot
	b.AddTo(&sb)
	var sm HistSnapshot
	a.AddTo(&sm)
	sm.Merge(&sb)
	if sm != sall {
		t.Fatalf("Merge differs from single-histogram snapshot")
	}
}

// TestRegistryShardGrowth checks lazy growth keeps earlier sets stable
// and concurrent Shard calls race-safely agree on the same pointers.
func TestRegistryShardGrowth(t *testing.T) {
	reg := NewRegistry()
	s0 := reg.Shard(0)
	s0.InsertLatency.Record(5)
	s3 := reg.Shard(3)
	if reg.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", reg.NumShards())
	}
	if reg.Shard(0) != s0 || reg.Shard(3) != s3 {
		t.Fatalf("Shard not stable across growth")
	}
	var snap Snapshot
	reg.ReadSnapshot(&snap)
	if snap.InsertLatency.Count != 1 || snap.Shards != 4 {
		t.Fatalf("snapshot lost data across growth: %+v", snap.InsertLatency)
	}
	reg.ReadShardSnapshot(1, &snap)
	if snap.InsertLatency.Count != 0 || snap.Shards != 1 {
		t.Fatalf("ReadShardSnapshot(1) = count %d shards %d, want 0/1",
			snap.InsertLatency.Count, snap.Shards)
	}
	reg.ReadShardSnapshot(99, &snap)
	if snap.Shards != 0 {
		t.Fatalf("ReadShardSnapshot out of range reported %d shards", snap.Shards)
	}

	var wg sync.WaitGroup
	sets := make([]*Set, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < 64; i += 8 {
				sets[i] = reg.Shard(i)
			}
		}(g)
	}
	wg.Wait()
	for i, s := range sets {
		if s == nil || reg.Shard(i) != s {
			t.Fatalf("concurrent Shard(%d) disagreed", i)
		}
	}
}

// TestConcurrentRecordSnapshot hammers one registry with writers on
// every metric while readers snapshot continuously; run under -race
// this is the data-race proof, and in any mode the final aggregate must
// account for every recorded observation.
func TestConcurrentRecordSnapshot(t *testing.T) {
	reg := NewRegistry()
	const shards, perG = 4, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			set := reg.Shard(i)
			r := rand.New(rand.NewSource(int64(i)))
			for n := 0; n < perG; n++ {
				v := r.Int63n(1 << 30)
				set.InsertLatency.Record(v)
				set.DeleteLatency.Record(v / 2)
				set.FlushDuration.Record(v / 3)
				set.FlushMoved.Record(v % 1000)
				set.Checkpoints.Add(1)
			}
		}(i)
	}
	var readers sync.WaitGroup
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var snap Snapshot
			for {
				select {
				case <-stop:
					return
				default:
				}
				reg.ReadSnapshot(&snap)
				// Torn-free invariant: derived count can never exceed what
				// writers have finished recording.
				if snap.InsertLatency.Count > shards*perG {
					t.Errorf("snapshot over-counts: %d", snap.InsertLatency.Count)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	var snap Snapshot
	reg.ReadSnapshot(&snap)
	for name, got := range map[string]int64{
		"insert": snap.InsertLatency.Count,
		"delete": snap.DeleteLatency.Count,
		"flush":  snap.FlushDuration.Count,
		"moved":  snap.FlushMoved.Count,
		"ckpt":   snap.Checkpoints,
	} {
		if got != shards*perG {
			t.Errorf("final %s count = %d, want %d", name, got, shards*perG)
		}
	}
}

// TestTelemetryReadsAllocationFree pins the no-allocation contract of
// the pooled read paths: aggregating a populated multi-shard registry
// into a reused snapshot must not touch the heap.
func TestTelemetryReadsAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	reg := NewRegistry()
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 4; i++ {
		set := reg.Shard(i)
		for n := 0; n < 1000; n++ {
			set.InsertLatency.Record(r.Int63n(1 << 40))
			set.FlushDuration.Record(r.Int63n(1 << 25))
			set.BatchSize.Record(1 + r.Int63n(512))
			set.SubmitLatency.Record(r.Int63n(1 << 22))
		}
	}
	var snap Snapshot
	if a := testing.AllocsPerRun(100, func() { reg.ReadSnapshot(&snap) }); a != 0 {
		t.Fatalf("ReadSnapshot allocates %.1f/op, want 0", a)
	}
	if a := testing.AllocsPerRun(100, func() { reg.ReadShardSnapshot(2, &snap) }); a != 0 {
		t.Fatalf("ReadShardSnapshot allocates %.1f/op, want 0", a)
	}
	if a := testing.AllocsPerRun(100, func() {
		reg.ReadSnapshot(&snap)
		_ = snap.InsertLatency.Quantile(0.99)
		_ = snap.FlushDuration.Quantile(0.99)
		_ = snap.BatchSize.Quantile(0.99)
		_ = snap.SubmitLatency.Quantile(0.99)
	}); a != 0 {
		t.Fatalf("snapshot + quantiles allocates %.1f/op, want 0", a)
	}
	if a := testing.AllocsPerRun(100, func() { reg.Shard(2).InsertLatency.Record(17) }); a != 0 {
		t.Fatalf("Record allocates %.1f/op, want 0", a)
	}
}
