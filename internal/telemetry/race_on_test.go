//go:build race

package telemetry

// raceEnabled reports whether this test binary was built with the race
// detector, whose instrumentation perturbs allocation counts; the
// AllocsPerRun pins skip themselves under it.
const raceEnabled = true
