// Package telemetry is the runtime observability layer: lock-free,
// allocation-free log-bucketed histograms and monotonic counters for
// wall-clock op latency, flush duration and stall, per-flush moved
// volume, session chunk sizes, and rebalancer migration latency.
//
// The competitive-ratio metrics in internal/trace answer "does the
// structure meet the paper's bounds"; this package answers "what does
// it feel like to run" — latency distributions with tails, not
// counters. Everything here follows the same publication idiom as the
// sharded front-end's seqlock'd stats mirror: writers touch only
// atomics, readers take no locks, and the pooled snapshot forms
// allocate nothing per read. Where the shard mirror uses a sequence
// counter because its fields must be mutually consistent, a histogram
// needs no seqlock at all: every bucket is an independent monotonic
// counter, so plain per-bucket atomics give multi-writer recording and
// torn-free reads — the skew between buckets read early and late is
// bounded by the handful of ops in flight during the read.
//
// Recording is two uncontended atomic adds (sum and one bucket) plus a
// load of the running max; the max CAS loop runs only on a new record
// high, which is vanishingly rare in steady state. A Histogram has ~2
// buckets per octave (HDR-style): values v share a bucket when they
// agree on floor(log2 v) and the bit below it, giving ≤ 25% relative
// quantile error across the full int64 range with a fixed 128-slot
// array and no allocation ever.
package telemetry

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// NumBuckets is the fixed bucket count of every Histogram. Two buckets
// per octave over int64 needs 125 slots; 128 keeps the array
// power-of-two sized.
const NumBuckets = 128

// processEpoch anchors Now. Subtracting a process-local epoch keeps
// the monotonic reading small enough that nanosecond arithmetic never
// overflows and bucket indices stay low.
var processEpoch = time.Now()

// Now returns monotonic nanoseconds since process start. time.Since
// reads the runtime's monotonic clock, so Now is immune to wall-clock
// steps; one call costs a few tens of nanoseconds, which is why every
// recording site pairs exactly two of them.
func Now() int64 { return int64(time.Since(processEpoch)) }

// bucketOf maps a non-negative value to its bucket: index 0 holds
// {0,1}; above that, octave o = floor(log2 v) and the bit below the
// leading bit split each octave in two: index = 2o-1 + halfbit.
func bucketOf(v int64) int {
	if v < 2 {
		return 0
	}
	o := bits.Len64(uint64(v)) - 1 // floor(log2 v), >= 1
	return 2*o - 1 + int((uint64(v)>>(o-1))&1)
}

// bucketLo returns the smallest value of bucket i (inclusive).
func bucketLo(i int) int64 {
	if i <= 0 {
		return 0
	}
	o := (i + 1) / 2
	h := int64(i+1) - 2*int64(o)
	return (2 + h) << (o - 1)
}

// bucketHi returns the exclusive upper bound of bucket i. The top
// occupied bucket (124) is clamped: its true bound would overflow.
func bucketHi(i int) int64 {
	if i >= 124 {
		return math.MaxInt64
	}
	return bucketLo(i + 1)
}

// BucketBounds reports the value range of bucket i: lo inclusive, hi
// exclusive (the top bucket's hi is clamped to MaxInt64). Renderers
// outside the package use it to label histogram rows exactly as
// Quantile and the exporters interpret them.
func BucketBounds(i int) (lo, hi int64) { return bucketLo(i), bucketHi(i) }

// Counter is a monotonic counter sharing the histograms' publication
// contract: Add from any goroutine, Load without locks.
type Counter struct{ v atomic.Int64 }

// Add increments the counter.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Store republishes an externally maintained count (the mirror form:
// when an authoritative counter already exists — e.g. the substrate's
// checkpoint count — telemetry mirrors it instead of double-counting).
func (c *Counter) Store(n int64) { c.v.Store(n) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Histogram is a fixed-size log-bucketed histogram. The zero value is
// ready to use. Record may be called from any number of goroutines
// concurrently with reads; no method allocates.
type Histogram struct {
	sum     atomic.Int64
	max     atomic.Int64
	buckets [NumBuckets]atomic.Int64
}

// Record adds one observation. Negative values (possible only from a
// clock misuse upstream) clamp to zero rather than corrupting a bucket
// index.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
	for {
		m := h.max.Load()
		if v <= m {
			return
		}
		if h.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// RecordN adds n observations of the same value — exactly equivalent
// to n Record(v) calls but with one sum add, one bucket add, and one
// max update. The batched facades use it to stamp a group's identical
// per-op latencies without paying per-op atomic traffic.
func (h *Histogram) RecordN(v, n int64) {
	if n <= 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	h.sum.Add(v * n)
	h.buckets[bucketOf(v)].Add(n)
	for {
		m := h.max.Load()
		if v <= m {
			return
		}
		if h.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// AddTo accumulates the histogram's current contents into snap.
// Callers reuse one HistSnapshot across many histograms to aggregate
// (per-shard sets summing into one registry view) without allocating.
func (h *Histogram) AddTo(snap *HistSnapshot) {
	for i := range h.buckets {
		if c := h.buckets[i].Load(); c != 0 {
			snap.Buckets[i] += c
			snap.Count += c
		}
	}
	snap.Sum += h.sum.Load()
	if m := h.max.Load(); m > snap.Max {
		snap.Max = m
	}
}

// HistSnapshot is a value-type copy of a Histogram (or a sum of
// several), safe to keep, merge, and query with no further
// synchronization. Count is derived from the buckets at read time —
// the writer never maintains it, which is what keeps Record at two
// atomic adds.
type HistSnapshot struct {
	Buckets [NumBuckets]int64
	Count   int64
	Sum     int64
	Max     int64
}

// Merge adds o's observations into s.
func (s *HistSnapshot) Merge(o *HistSnapshot) {
	for i := range o.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
}

// Mean returns the arithmetic mean, exact up to the atomicity skew of
// the snapshot (sum and buckets are read separately).
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an estimate of the q-quantile (q in [0,1]). The
// estimate is the midpoint of the bucket holding the rank-⌈q·count⌉
// observation, clamped to the recorded max, so its relative error is
// bounded by the bucket width (≤ 25%). An empty snapshot reports 0.
func (s *HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range s.Buckets {
		cum += s.Buckets[i]
		if cum >= rank {
			lo, hi := bucketLo(i), bucketHi(i)
			est := lo + (hi-lo)/2
			if est > s.Max {
				est = s.Max
			}
			if est < lo {
				est = lo
			}
			return est
		}
	}
	return s.Max
}

// Set is the fixed family of metrics one writer domain (a shard, or a
// whole unsharded reallocator) records into. A flat struct rather than
// a name→histogram map keeps the hot path free of lookups and hashing;
// the schema is part of the API on purpose.
//
// Latencies are nanoseconds, volumes are cells.
type Set struct {
	InsertLatency  Histogram // wall-clock Insert latency, incl. lock wait and flush work
	DeleteLatency  Histogram // wall-clock Delete latency, likewise
	FlushDuration  Histogram // active execution time per flush (chunk slices summed)
	FlushStall     Histogram // per-op time blocked advancing a flush the op did not trigger
	FlushMoved     Histogram // cells moved per completed flush
	FlushChunk     Histogram // cells moved per deamortized session chunk
	FlushCopy      Histogram // time inside payload memmoves per completed flush (real backends)
	MigrateLatency Histogram // per-object rebalancer migration latency
	BatchSize      Histogram // ops per executed batch group (Apply / async drains)
	SubmitLatency  Histogram // async submit-to-complete latency per op
	WALFsync       Histogram // WAL group-fsync latency (durable stores)
	Recovery       Histogram // crash-recovery duration per Recover/Open replay
	Checkpoints    Counter   // checkpointed placements (checkpointed/deamortized variants)
	BytesMoved     Counter   // payload bytes relocations moved (mirror of the arena counter)
}

// AddTo accumulates the set into an aggregate snapshot.
func (s *Set) AddTo(snap *Snapshot) {
	s.InsertLatency.AddTo(&snap.InsertLatency)
	s.DeleteLatency.AddTo(&snap.DeleteLatency)
	s.FlushDuration.AddTo(&snap.FlushDuration)
	s.FlushStall.AddTo(&snap.FlushStall)
	s.FlushMoved.AddTo(&snap.FlushMoved)
	s.FlushChunk.AddTo(&snap.FlushChunk)
	s.FlushCopy.AddTo(&snap.FlushCopy)
	s.MigrateLatency.AddTo(&snap.MigrateLatency)
	s.BatchSize.AddTo(&snap.BatchSize)
	s.SubmitLatency.AddTo(&snap.SubmitLatency)
	s.WALFsync.AddTo(&snap.WALFsync)
	s.Recovery.AddTo(&snap.Recovery)
	snap.Checkpoints += s.Checkpoints.Load()
	snap.BytesMoved += s.BytesMoved.Load()
}

// Snapshot is a point-in-time aggregate view of a Registry: plain
// values, no atomics, zero heap pointers — reusing one via ReadSnapshot
// is 0 allocs/op.
type Snapshot struct {
	InsertLatency  HistSnapshot
	DeleteLatency  HistSnapshot
	FlushDuration  HistSnapshot
	FlushStall     HistSnapshot
	FlushMoved     HistSnapshot
	FlushChunk     HistSnapshot
	FlushCopy      HistSnapshot
	MigrateLatency HistSnapshot
	BatchSize      HistSnapshot
	SubmitLatency  HistSnapshot
	WALFsync       HistSnapshot
	Recovery       HistSnapshot
	Checkpoints    int64
	BytesMoved     int64
	Shards         int
}

// Reset clears the snapshot for reuse (a memclr, no allocation).
func (s *Snapshot) Reset() { *s = Snapshot{} }

// Registry hands out per-shard Sets and aggregates them on read. The
// shard slice is copy-on-write behind an atomic pointer — the same
// route-table idiom as the sharded front-end — so Shard and the read
// paths never contend: growth copies, publication is one store.
type Registry struct {
	mu   sync.Mutex
	sets atomic.Pointer[[]*Set]
}

// NewRegistry returns an empty registry. Sets appear lazily as Shard
// is called; a registry wired to an unsharded Reallocator simply holds
// one set at index 0.
func NewRegistry() *Registry { return &Registry{} }

// Shard returns the Set for shard i, growing the registry if needed.
// The fast path is one atomic load; growth (rare: once per shard per
// process) copies the slice under the mutex and republishes.
func (r *Registry) Shard(i int) *Set {
	if i < 0 {
		i = 0
	}
	if p := r.sets.Load(); p != nil && i < len(*p) {
		return (*p)[i]
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var cur []*Set
	if p := r.sets.Load(); p != nil {
		cur = *p
	}
	if i < len(cur) {
		return cur[i]
	}
	grown := make([]*Set, i+1)
	copy(grown, cur)
	for j := len(cur); j <= i; j++ {
		grown[j] = new(Set)
	}
	r.sets.Store(&grown)
	return grown[i]
}

// NumShards reports how many per-shard sets exist.
func (r *Registry) NumShards() int {
	if p := r.sets.Load(); p != nil {
		return len(*p)
	}
	return 0
}

// ReadSnapshot aggregates every shard's set into snap, resetting it
// first. It takes no locks and performs no allocations, so it is safe
// to call at any frequency concurrently with recording.
func (r *Registry) ReadSnapshot(snap *Snapshot) {
	snap.Reset()
	p := r.sets.Load()
	if p == nil {
		return
	}
	for _, s := range *p {
		s.AddTo(snap)
	}
	snap.Shards = len(*p)
}

// ReadShardSnapshot fills snap from shard i's set alone (Shards
// reports 1, or 0 when the shard does not exist). Like ReadSnapshot it
// is lock- and allocation-free.
func (r *Registry) ReadShardSnapshot(i int, snap *Snapshot) {
	snap.Reset()
	p := r.sets.Load()
	if p == nil || i < 0 || i >= len(*p) {
		return
	}
	(*p)[i].AddTo(snap)
	snap.Shards = 1
}

// Snapshot is the allocating convenience form for tests and tools.
func (r *Registry) Snapshot() *Snapshot {
	snap := new(Snapshot)
	r.ReadSnapshot(snap)
	return snap
}
