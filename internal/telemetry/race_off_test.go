//go:build !race

package telemetry

// raceEnabled reports whether this test binary was built with the race
// detector; see race_on_test.go.
const raceEnabled = false
