// Package exp is the experiment harness: one function per experiment in
// EXPERIMENTS.md (E1–E17), each regenerating the table or figure that
// validates a claim of the paper. The harness is shared by
// cmd/reallocbench, the root benchmark suite, and the integration tests
// that assert the *shape* of each result (who wins, by what order, where
// bounds hold).
package exp

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"realloc"
	"realloc/internal/arena"
	"realloc/internal/core"
	"realloc/internal/engine"
	"realloc/internal/telemetry"
	"realloc/internal/trace"
	"realloc/internal/workload"
)

// Config scales and seeds an experiment run.
type Config struct {
	Seed uint64
	// Ops is the per-run request budget; experiments choose sensible
	// defaults when 0.
	Ops int
	// Quick shrinks workloads for smoke tests and -short mode.
	Quick bool
	// Core optionally restricts cross-core experiments (E16, E17) to a
	// single core, named as engine.ParseCore understands ("pods14",
	// "fcs", "auto"). Empty means every core.
	Core string
	// Backend optionally restricts cross-backend experiments (E17) to a
	// single payload backend, named as arena.ParseKind understands
	// ("metered", "heap", "mmap"). Empty means metered and heap.
	Backend string
	// Telemetry optionally arms the runtime telemetry layer on every
	// public-facade structure an experiment builds (E13–E15). The caller
	// owns the registry: it can serve it live while the experiment runs
	// and digest it into findings afterwards.
	Telemetry *telemetry.Registry
}

// telOpts appends WithTelemetry to a facade option list when the run is
// telemetry-armed.
func (c Config) telOpts(opts ...realloc.Option) []realloc.Option {
	if c.Telemetry != nil {
		opts = append(opts, realloc.WithTelemetry(c.Telemetry))
	}
	return opts
}

// cores resolves the Core filter against the full panel.
func (c Config) cores() ([]engine.Core, error) {
	all := []engine.Core{engine.PODS14, engine.FCS, engine.AutoSelect}
	if c.Core == "" {
		return all, nil
	}
	ec, err := engine.ParseCore(c.Core)
	if err != nil {
		return nil, err
	}
	return []engine.Core{ec}, nil
}

// backends resolves the Backend filter; the default panel is the metered
// cost model plus the heap arena (mmap only runs when asked for, since
// it measures the same copies through a different allocation path).
func (c Config) backends() ([]arena.Kind, error) {
	if c.Backend == "" {
		return []arena.Kind{arena.Metered, arena.Heap}, nil
	}
	k, err := arena.ParseKind(c.Backend)
	if err != nil {
		return nil, err
	}
	return []arena.Kind{k}, nil
}

func (c Config) ops(def int) int {
	if c.Ops > 0 {
		return c.Ops
	}
	if c.Quick {
		return def / 10
	}
	return def
}

// Result is a rendered experiment report plus machine-checkable findings.
type Result struct {
	ID    string
	Title string
	// Text is the rendered report (tables/figures).
	Text string
	// Findings maps named quantities to values for shape assertions in
	// tests (e.g. "amortized/unit/ratio" -> 3.1).
	Findings map[string]float64
}

// Experiment couples an ID with its runner.
type Experiment struct {
	ID    string
	Title string
	Claim string
	Run   func(Config) (*Result, error)
}

// All returns the experiment suite in order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Footprint competitiveness vs epsilon",
			"Thm 2.1/Lemma 2.5: footprint <= (1+eps)*V after every request", E1},
		{"E2", "Cost obliviousness across the subadditive family",
			"Thm 2.1/Lemma 2.6: realloc cost <= O((1/eps)log(1/eps)) * alloc cost for every subadditive f", E2},
		{"E3", "Baseline crossover: log+compact vs class-gap vs cost-oblivious",
			"Sec 2 intuition: each specialized strategy fails off its home cost function; ours is good everywhere", E3},
		{"E4", "No-move allocators hit the log lower bound",
			"Sec 1: allocation without moves forces footprint blowup; reallocation escapes it", E4},
		{"E5", "Cost-oblivious defragmentation",
			"Thm 2.7: sort in (1+eps)V+Delta space with O((1/eps)log(1/eps)) moves/object; naive needs 2V", E5},
		{"E6", "Checkpointed flushes",
			"Lemmas 3.1-3.3: O(1/eps) checkpoints per flush; space (1+O(eps'))V+O(Delta); nonoverlapping moves", E6},
		{"E7", "Deamortization caps per-request work",
			"Lemmas 3.4-3.6: per-request reallocated volume <= (4/eps')w + Delta; amortized cost unchanged", E7},
		{"E8", "Worst-case lower bound is realized",
			"Lemma 3.7: any (3/2)V-footprint algorithm pays Omega(f(Delta)) on some request", E8},
		{"E9", "Figures 1-3 as ASCII renderings",
			"Figure 1: moving blocks shrinks the footprint; Figure 2: region layout; Figure 3: flush walkthrough", E9},
		{"E10", "Ablations: buffer fraction and size distributions",
			"Design choices: eps' trades footprint for moves; heavy tails and class boundaries do not break bounds", E10},
		{"E11", "Database end-to-end",
			"Secs 1/3.1: block store with translation layer: tight disk footprint, media-oblivious cost, crash-safe recovery", E11},
		{"E12", "The price of obliviousness",
			"What the O((1/eps)log(1/eps)) guarantee costs versus each cost-aware specialist on its home function", E12},
		{"E13", "Sharded concurrency scaling",
			"Per-allocator guarantees survive hash partitioning: sharding multiplies throughput while each shard keeps footprint <= (1+eps)*V_shard", E13},
		{"E14", "Cross-shard rebalancing under zipf skew",
			"Per-allocator guarantees survive migration: rebalancing levels a zipf-skewed volume (spread <= 2x vs > 4x static) and recovers parallel throughput, keeping footprint <= (1+eps)*V", E14},
		{"E15", "Lock-free front-end parallel scaling",
			"Uncontended operations touch no shared mutable cache line except their own shard: routing is one atomic load, per-object reads take only a shard read lock, aggregate reads take none", E15},
		{"E16", "Cost vs epsilon across reallocation cores",
			"Engine boundary: the PODS'14 reference, the FCS successor, and the auto-selecting engine all hold footprint <= (1+eps)*V at quiescence on uniform, zipf, and adversarial workloads, each inside its own per-core cost bound", E16},
		{"E17", "Metered cost model vs real memmove backends",
			"Backend boundary: replaying identical streams, the metered counter, the trace's moved volume, and the bytes a real arena physically memmoves agree exactly (one cell = one byte); the measured copy throughput prices the moved-volume unit in wall-clock", E17},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment, writing reports to w.
func RunAll(cfg Config, w io.Writer) error {
	for _, e := range All() {
		res, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintf(w, "== %s: %s ==\nClaim: %s\n\n%s\n", e.ID, e.Title, e.Claim, res.Text)
	}
	return nil
}

// newCore builds a reference-core reallocator wired to fresh metrics.
// Variants are named by the shared engine enum; the cast to the core's
// private copy is pinned by internal/engine's drift test.
func newCore(variant engine.Variant, eps float64) (*core.Reallocator, *trace.Metrics, error) {
	m := trace.NewMetrics()
	r, err := core.New(core.Config{Epsilon: eps, Variant: core.Variant(variant), Recorder: m})
	return r, m, err
}

// newEngine builds any core behind the engine boundary, wired to fresh
// metrics. Cross-core experiments (E16) go through here so they exercise
// exactly the dispatch the public facade uses.
func newEngine(c engine.Core, eps float64) (engine.Engine, *trace.Metrics, error) {
	m := trace.NewMetrics()
	e, err := engine.New(engine.Config{Core: c, Epsilon: eps, Recorder: m})
	return e, m, err
}

// drive replays n churn ops and drains.
func drive(r *core.Reallocator, s workload.Stream, n int) error {
	if _, err := workload.Drive(r, s, n); err != nil {
		return err
	}
	return r.Drain()
}

// driveEngine replays n churn ops into any engine and drains.
func driveEngine(e engine.Engine, s workload.Stream, n int) error {
	if _, err := workload.Drive(e, s, n); err != nil {
		return err
	}
	return e.Drain()
}

// findingsKeys returns sorted keys (stable rendering helpers).
func findingsKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
