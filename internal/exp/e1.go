package exp

import (
	"fmt"
	"strings"

	"realloc/internal/engine"
	"realloc/internal/stats"
	"realloc/internal/workload"
)

// E1 measures footprint competitiveness: for every variant and a sweep of
// epsilon, the maximum footprint/volume and structure/volume ratios over a
// churn workload must stay below 1+epsilon (Theorem 2.1 / Lemma 2.5).
func E1(cfg Config) (*Result, error) {
	res := &Result{ID: "E1", Title: "Footprint competitiveness vs epsilon", Findings: map[string]float64{}}
	ops := cfg.ops(20000)
	table := stats.NewTable("variant", "eps", "bound 1+eps", "max struct/V", "max footprint/V", "moves/op", "flushes")
	var series []string
	for _, variant := range []engine.Variant{engine.Amortized, engine.Checkpointed, engine.Deamortized} {
		for _, eps := range []float64{0.5, 0.25, 0.1, 0.05} {
			r, m, err := newCore(variant, eps)
			if err != nil {
				return nil, err
			}
			m.SampleEvery = ops / 64
			churn := &workload.Churn{
				Seed:         cfg.Seed + 1,
				Sizes:        workload.Uniform{Min: 1, Max: 256},
				TargetVolume: 50000,
			}
			if err := drive(r, churn, ops); err != nil {
				return nil, err
			}
			if variant == engine.Amortized {
				ratios := make([]float64, 0, len(m.Series))
				for _, s := range m.Series {
					if s.Volume > 0 {
						ratios = append(ratios, float64(s.Footprint)/float64(s.Volume))
					}
				}
				series = append(series, fmt.Sprintf("  eps=%-5g footprint/V over time: %s", eps, stats.Sparkline(ratios, 64)))
			}
			movesPerOp := float64(m.MovesTotal) / float64(m.OpsTotal)
			table.Row(variant.String(), eps, 1+eps, m.MaxStructRatio, m.MaxRatioQuiescent, movesPerOp, r.Flushes())
			key := fmt.Sprintf("%s/%g", variant, eps)
			res.Findings[key+"/structRatio"] = m.MaxStructRatio
			res.Findings[key+"/quiescentRatio"] = m.MaxRatioQuiescent
			res.Findings[key+"/movesPerOp"] = movesPerOp
		}
	}
	res.Text = table.String() + "\n" + strings.Join(series, "\n") +
		"\n\nShape check: every ratio column stays below its 1+eps bound; smaller eps\ncosts more moves per op (the (1/eps)log(1/eps) trade).\n"
	return res, nil
}
