package exp

import (
	"fmt"

	"realloc/internal/engine"
	"realloc/internal/stats"
	"realloc/internal/workload"
)

// E6 validates the checkpointed variant (Section 3.2): flushes block on
// O(1/eps') checkpoints (Lemma 3.3), the mid-flush footprint stays within
// (1+O(eps'))·V + O(∆) (Lemma 3.1), and the substrate's strict
// nonoverlap + freed-space rules were never violated (Lemma 3.2 — any
// violation would have errored the run).
func E6(cfg Config) (*Result, error) {
	res := &Result{ID: "E6", Title: "Checkpointed flushes", Findings: map[string]float64{}}
	ops := cfg.ops(20000)
	table := stats.NewTable("eps", "1/eps'", "flushes", "ckpts total", "ckpts/flush (mean)", "ckpts/flush (max)", "transient slack / delta")
	for _, eps := range []float64{0.5, 0.25, 0.1, 0.05} {
		r, m, err := newCore(engine.Checkpointed, eps)
		if err != nil {
			return nil, err
		}
		m.RatioBase = 1 + eps
		churn := &workload.Churn{
			Seed:         cfg.Seed + 6,
			Sizes:        workload.Pareto{Min: 1, Max: 512, Alpha: 1.3},
			TargetVolume: 40000,
		}
		if err := drive(r, churn, ops); err != nil {
			return nil, err
		}
		mean := 0.0
		if m.Flushes > 0 {
			mean = float64(m.CheckpointsTotal) / float64(m.Flushes)
		}
		slackOverDelta := float64(m.MaxAdditiveSlack) / float64(r.Delta())
		invEps := 1 / r.EpsPrime()
		table.Row(eps, invEps, m.Flushes, m.CheckpointsTotal, mean, m.MaxCheckpointsFlush, slackOverDelta)
		res.Findings[fmt.Sprintf("%g/maxCkptPerFlush", eps)] = float64(m.MaxCheckpointsFlush)
		res.Findings[fmt.Sprintf("%g/meanCkptPerFlush", eps)] = mean
		res.Findings[fmt.Sprintf("%g/invEpsPrime", eps)] = invEps
		res.Findings[fmt.Sprintf("%g/slackOverDelta", eps)] = slackOverDelta
	}
	res.Text = table.String() +
		"\nShape check: max checkpoints per flush scales like 1/eps' (Lemma 3.3) and\nthe transient footprint beyond (1+eps)V stays a small constant times delta\n(Lemma 3.1). Every move executed under strict nonoverlap + the freed-space\nrule; a violation would have failed the run.\n"
	return res, nil
}
