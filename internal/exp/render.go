package exp

import (
	"fmt"
	"sort"
	"strings"

	"realloc/internal/addrspace"
	"realloc/internal/core"
)

// RenderSpace draws the objects of a space as labelled ASCII blocks on one
// line, compressing addresses to width columns. Free cells render as '.'.
func RenderSpace(sp *addrspace.Space, width int) string {
	span := sp.MaxEnd()
	if span == 0 {
		return "(empty)\n"
	}
	if width <= 0 {
		width = 72
	}
	row := []byte(strings.Repeat(".", width))
	type seg struct {
		id  addrspace.ID
		ext addrspace.Extent
	}
	var segs []seg
	sp.ForEach(func(id addrspace.ID, ext addrspace.Extent) {
		segs = append(segs, seg{id, ext})
	})
	sort.Slice(segs, func(i, j int) bool { return segs[i].ext.Start < segs[j].ext.Start })
	letters := "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
	for n, s := range segs {
		lo := int(s.ext.Start * int64(width) / span)
		hi := int(s.ext.End() * int64(width) / span)
		if hi <= lo {
			hi = lo + 1
		}
		ch := letters[n%len(letters)]
		for i := lo; i < hi && i < width; i++ {
			row[i] = ch
		}
	}
	return fmt.Sprintf("|%s| footprint=%d\n", string(row), span)
}

// RenderLayout draws a reallocator's region structure: payload segments as
// 'P', buffered cells as 'b', empty buffer capacity as '_'.
func RenderLayout(r *core.Reallocator, width int) string {
	segs := r.Layout()
	if len(segs) == 0 {
		return "(empty)\n"
	}
	span := r.StructSize()
	if span == 0 {
		return "(empty)\n"
	}
	if width <= 0 {
		width = 72
	}
	row := []byte(strings.Repeat(" ", width))
	mark := func(lo64, hi64 int64, ch byte) {
		lo := int(lo64 * int64(width) / span)
		hi := int(hi64 * int64(width) / span)
		if hi <= lo && hi64 > lo64 {
			hi = lo + 1
		}
		for i := lo; i < hi && i < width; i++ {
			row[i] = ch
		}
	}
	var legend strings.Builder
	for _, s := range segs {
		if s.Tail {
			mark(s.BufStart, s.BufStart+s.BufFill, 't')
			mark(s.BufStart+s.BufFill, s.BufStart+s.BufSize, '_')
			fmt.Fprintf(&legend, "  tail buffer: [%d,%d) fill=%d\n", s.BufStart, s.BufStart+s.BufSize, s.BufFill)
			continue
		}
		mark(s.PayStart, s.PayStart+s.PaySize, 'P')
		mark(s.BufStart, s.BufStart+s.BufFill, 'b')
		mark(s.BufStart+s.BufFill, s.BufStart+s.BufSize, '_')
		fmt.Fprintf(&legend, "  class %d (sizes %d..%d): payload [%d,%d) live=%d, buffer [%d,%d) fill=%d\n",
			s.Class, core.ClassMin(s.Class), core.ClassMax(s.Class),
			s.PayStart, s.PayStart+s.PaySize, s.PayLive,
			s.BufStart, s.BufStart+s.BufSize, s.BufFill)
	}
	return fmt.Sprintf("|%s| struct=%d\n%s", string(row), span, legend.String())
}
