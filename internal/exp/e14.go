package exp

import (
	"fmt"
	"sync"
	"time"

	"realloc"
	"realloc/internal/stats"
	"realloc/internal/workload"
)

// E14 measures dynamic cross-shard rebalancing under skew. A Zipf id
// population aims most of the live volume at one static hash home, which
// collapses the static partition onto one shard: its volume (and its
// superlinear per-op flush cost, and every contended lock acquisition)
// concentrates where the skew points. The rebalancer detects the
// imbalance and migrates bounded batches to level it. Because each shard
// keeps the paper's per-allocator guarantees under any request stream —
// migrations are just deletes on the source and inserts on the target —
// the global (1+eps) footprint bound holds throughout, which the run
// verifies with invariant checking enabled on every shard.
func E14(cfg Config) (*Result, error) {
	res := &Result{ID: "E14", Title: "Cross-shard rebalancing under zipf skew", Findings: map[string]float64{}}
	const (
		shards  = 8
		workers = 8
		eps     = 0.25
	)
	nops := cfg.ops(80000)
	gen := &workload.ZipfChurn{
		Seed:         cfg.Seed + 14,
		Sizes:        workload.Uniform{Min: 1, Max: 128},
		TargetVolume: 40000,
		Homes:        shards,
		S:            1.8,
	}
	ops := workload.Collect(gen, nops)

	pol := realloc.RebalancePolicy{
		Mode:         realloc.RebalanceInline,
		Threshold:    1.25,
		CheckEvery:   32,
		BatchObjects: 512,
	}
	build := func(rebal bool) (*realloc.ShardedReallocator, error) {
		opts := []realloc.Option{
			realloc.WithShards(shards),
			realloc.WithEpsilon(eps),
			realloc.WithInvariantChecks(),
		}
		if rebal {
			opts = append(opts, realloc.WithRebalance(pol))
		}
		return realloc.NewSharded(cfg.telOpts(opts...)...)
	}

	// Phase 1 (deterministic, single goroutine): replay the stream and
	// sample the live-volume spread and the aggregate footprint ratio in
	// the steady second half.
	measure := func(rebal bool) (maxSpread, maxRatio float64, s *realloc.ShardedReallocator, err error) {
		s, err = build(rebal)
		if err != nil {
			return 0, 0, nil, err
		}
		for i, op := range ops {
			if op.Insert {
				err = s.Insert(int64(op.ID), op.Size)
			} else {
				err = s.Delete(int64(op.ID))
			}
			if err != nil {
				return 0, 0, nil, fmt.Errorf("op %d (%+v): %w", i, op, err)
			}
			if i > len(ops)/2 && i%250 == 0 {
				snap := s.Snapshot()
				var max int64
				for _, ss := range snap.Shards {
					if ss.Volume > max {
						max = ss.Volume
					}
				}
				mean := float64(snap.Volume) / float64(shards)
				if mean > 0 {
					if sp := float64(max) / mean; sp > maxSpread {
						maxSpread = sp
					}
				}
				if snap.Volume > 0 {
					if r := float64(snap.Footprint) / float64(snap.Volume); r > maxRatio {
						maxRatio = r
					}
				}
			}
		}
		if err := s.Drain(); err != nil {
			return 0, 0, nil, err
		}
		if err := s.CheckInvariants(); err != nil {
			return 0, 0, nil, err
		}
		// Close surfaces any sticky error a triggered sweep hit (an
		// erroring sweep disarms itself, which would otherwise silently
		// degrade this arm to the static behavior).
		if err := s.Close(); err != nil {
			return 0, 0, nil, fmt.Errorf("rebalancer: %w", err)
		}
		return maxSpread, maxRatio, s, nil
	}

	staticSpread, staticRatio, staticS, err := measure(false)
	if err != nil {
		return nil, fmt.Errorf("static: %w", err)
	}
	rebalSpread, rebalRatio, rebalS, err := measure(true)
	if err != nil {
		return nil, fmt.Errorf("rebalanced: %w", err)
	}
	if got, want := rebalS.Len(), staticS.Len(); got != want {
		return nil, fmt.Errorf("end state diverged: rebalanced len %d, static len %d", got, want)
	}
	if got, want := rebalS.Volume(), staticS.Volume(); got != want {
		return nil, fmt.Errorf("end state diverged: rebalanced vol %d, static vol %d", got, want)
	}
	migObjs, migVol := rebalS.Migrations()

	// Phase 2 (parallel): wall-clock throughput with the stream
	// partitioned by id across workers (per-id op order is preserved, so
	// every delete still follows its insert).
	seqs := make([][]workload.Op, workers)
	for _, op := range ops {
		w := int(op.ID) % workers
		seqs[w] = append(seqs[w], op)
	}
	run := func(rebal bool) (float64, error) {
		s, err := build(rebal)
		if err != nil {
			return 0, err
		}
		var wg sync.WaitGroup
		errs := make(chan error, workers)
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seq []workload.Op) {
				defer wg.Done()
				for _, op := range seq {
					var err error
					if op.Insert {
						err = s.Insert(int64(op.ID), op.Size)
					} else {
						err = s.Delete(int64(op.ID))
					}
					if err != nil {
						errs <- err
						return
					}
				}
			}(seqs[w])
		}
		wg.Wait()
		elapsed := time.Since(start)
		close(errs)
		if err := <-errs; err != nil {
			return 0, err
		}
		if err := s.Drain(); err != nil {
			return 0, err
		}
		if err := s.CheckInvariants(); err != nil {
			return 0, err
		}
		if err := s.Close(); err != nil {
			return 0, fmt.Errorf("rebalancer: %w", err)
		}
		return float64(len(ops)) / elapsed.Seconds(), nil
	}
	staticRate, err := run(false)
	if err != nil {
		return nil, fmt.Errorf("static parallel: %w", err)
	}
	rebalRate, err := run(true)
	if err != nil {
		return nil, fmt.Errorf("rebalanced parallel: %w", err)
	}

	table := stats.NewTable("configuration", "max spread", "max footprint/V", "migrated objs", "migrated vol", "ops/sec")
	table.Row("static hash partition", fmt.Sprintf("%.2fx", staticSpread), fmt.Sprintf("%.3f", staticRatio), 0, 0, fmt.Sprintf("%.0f", staticRate))
	table.Row(fmt.Sprintf("rebalanced (inline, theta=%g)", pol.Threshold), fmt.Sprintf("%.2fx", rebalSpread), fmt.Sprintf("%.3f", rebalRatio), migObjs, migVol, fmt.Sprintf("%.0f", rebalRate))

	res.Findings["static/maxSpread"] = staticSpread
	res.Findings["rebalanced/maxSpread"] = rebalSpread
	res.Findings["static/maxFootprintRatio"] = staticRatio
	res.Findings["rebalanced/maxFootprintRatio"] = rebalRatio
	res.Findings["rebalanced/migratedObjects"] = float64(migObjs)
	res.Findings["static/opsPerSec"] = staticRate
	res.Findings["rebalanced/opsPerSec"] = rebalRate
	if staticRate > 0 {
		res.Findings["rebalanced/speedup"] = rebalRate / staticRate
	}

	res.Text = fmt.Sprintf(
		"%d zipf-skewed churn ops (s=%g over %d hash homes), %d shards, eps=%g,\n"+
			"invariant checks on. Spread is max/mean per-shard live volume sampled in\n"+
			"the steady half; the footprint ratio must stay near 1+eps despite the\n"+
			"migrations (per-shard bounds are preserved under any request stream and\n"+
			"sum across shards). Throughput is %d workers replaying the stream\n"+
			"partitioned by id.\n\n%s",
		len(ops), gen.S, shards, shards, eps, workers, table)
	return res, nil
}
