package exp

import (
	"fmt"

	"realloc/internal/baseline"
	"realloc/internal/core"
	"realloc/internal/stats"
	"realloc/internal/trace"
	"realloc/internal/workload"
)

// E4 shows why moving matters: against the gap adversary, allocators that
// cannot relocate objects (First Fit, Best Fit, Buddy) end with footprints
// that grow with the number of size classes — the Ω(log) lower-bound
// regime of the memory allocation literature — while the reallocator holds
// (1+eps)·V.
func E4(cfg Config) (*Result, error) {
	res := &Result{ID: "E4", Title: "No-move allocators hit the log lower bound", Findings: map[string]float64{}}
	table := stats.NewTable("maxExp (log delta)", "allocator", "final V", "final footprint", "final ratio", "max ratio")
	type cand struct {
		name string
		make func(rec trace.Recorder) workload.Target
	}
	cands := []cand{
		{"firstfit", func(rec trace.Recorder) workload.Target { return baseline.NewFirstFit(rec) }},
		{"bestfit", func(rec trace.Recorder) workload.Target { return baseline.NewBestFit(rec) }},
		{"buddy", func(rec trace.Recorder) workload.Target { return baseline.NewBuddy(rec) }},
		{"cost-oblivious", func(rec trace.Recorder) workload.Target {
			r, _ := core.New(core.Config{Epsilon: 0.25, Variant: core.Amortized, Recorder: rec})
			return r
		}},
	}
	vol := int64(cfg.ops(16384))
	for _, maxExp := range []int{4, 6, 8, 10} {
		for _, c := range cands {
			m := trace.NewMetrics()
			t := c.make(m)
			adv := &workload.GapAdversary{Volume: vol, MaxExp: maxExp}
			if _, err := workload.Drive(t, adv, 0); err != nil {
				return nil, fmt.Errorf("gap adversary on %s: %w", c.name, err)
			}
			if r, ok := t.(*core.Reallocator); ok {
				if err := r.Drain(); err != nil {
					return nil, err
				}
			}
			finalRatio := 0.0
			if m.FinalVolume > 0 {
				finalRatio = float64(m.FinalFootprint) / float64(m.FinalVolume)
			}
			table.Row(maxExp, c.name, m.FinalVolume, m.FinalFootprint, finalRatio, m.MaxRatioSteady)
			res.Findings[fmt.Sprintf("%d/%s/finalRatio", maxExp, c.name)] = finalRatio
		}
	}
	res.Text = table.String() +
		"\nShape check: the no-move final ratios climb as maxExp (i.e. log delta)\ngrows; the cost-oblivious reallocator stays flat at <= 1+eps.\n"
	return res, nil
}
