package exp

import (
	"fmt"
	"math/rand/v2"

	"realloc"
)

// MixTarget is the front-end surface a mixed read/churn stream drives;
// ShardedReallocator satisfies it.
type MixTarget interface {
	Insert(id int64, size int64) error
	Delete(id int64) error
	Extent(id int64) (realloc.Extent, bool)
	Has(id int64) bool
}

type mixObj struct{ id, size int64 }

// MixStream is one worker's deterministic read/churn step generator,
// shared by experiment E15 and the root BenchmarkShardedParallel suite
// so the benchmark CI gates and the experiment harness can never drift
// apart. Each stream owns a disjoint id range (worker index in the high
// bits) and holds its private live volume near a target, so every Step
// is exactly one front-end operation.
type MixStream struct {
	rng       *rand.Rand
	base      int64
	next      int64
	live      []mixObj
	vol       int64
	flip      bool
	targetVol int64
	maxSize   int

	// Batched-mode state: churn ops waiting for the next Apply, and the
	// objects those pending inserts will add to live once it lands.
	pend    realloc.Batch
	pendIns []mixObj
}

// NewMixStream creates worker w's stream. Distinct (seed, worker) pairs
// produce disjoint id populations.
func NewMixStream(seed uint64, worker int, targetVol int64, maxSize int) *MixStream {
	return &MixStream{
		rng:       rand.New(rand.NewPCG(seed, 0xe150^uint64(worker))),
		base:      int64(worker+1) << 40,
		next:      1,
		targetVol: targetVol,
		maxSize:   maxSize,
	}
}

// Seed grows the stream's live population to its target volume; run it
// outside any timed region.
func (m *MixStream) Seed(t MixTarget) error {
	for m.vol < m.targetVol {
		if err := m.insert(t); err != nil {
			return err
		}
	}
	return nil
}

func (m *MixStream) insert(t MixTarget) error {
	id := m.base | m.next
	m.next++
	size := int64(1 + m.rng.IntN(m.maxSize))
	if err := t.Insert(id, size); err != nil {
		return err
	}
	m.live = append(m.live, mixObj{id, size})
	m.vol += size
	return nil
}

// Step performs one operation: with probability readPct% a read
// (alternating Extent and Has on a random live object, erroring if the
// target has lost it), otherwise a churn step that holds the live
// volume near its target.
func (m *MixStream) Step(t MixTarget, readPct int) error {
	if m.rng.IntN(100) < readPct {
		o := m.live[m.rng.IntN(len(m.live))]
		if m.flip = !m.flip; m.flip {
			if _, ok := t.Extent(o.id); !ok {
				return fmt.Errorf("lost id %d", o.id)
			}
		} else if !t.Has(o.id) {
			return fmt.Errorf("lost id %d", o.id)
		}
		return nil
	}
	if m.vol < m.targetVol || m.rng.IntN(2) == 0 {
		return m.insert(t)
	}
	j := m.rng.IntN(len(m.live))
	o := m.live[j]
	m.live[j] = m.live[len(m.live)-1]
	m.live = m.live[:len(m.live)-1]
	if err := t.Delete(o.id); err != nil {
		return err
	}
	m.vol -= o.size
	return nil
}

// Live returns how many objects the stream currently keeps live.
// Pending batched inserts count only after the Flush that applies them.
func (m *MixStream) Live() int { return len(m.live) }

// MixBatchTarget is a MixTarget that also offers the batched
// submission surface; ShardedReallocator and Reallocator satisfy it.
type MixBatchTarget interface {
	MixTarget
	Apply(realloc.Batch) []error
}

// StepBatched is Step with churn submitted through Apply: reads still
// execute inline (they are synchronous questions, not mutations), while
// insert/delete ops accumulate into a pending batch that flushes at
// size ops. Delete victims leave the live set at enqueue time and
// pending inserts join it only after their batch applies, so reads and
// victim selection only ever touch objects the target has committed —
// the stream stays valid no matter how submission and execution
// interleave. Call Flush when the driving loop ends; up to size-1 ops
// stay pending otherwise.
func (m *MixStream) StepBatched(t MixBatchTarget, readPct, size int) error {
	if m.rng.IntN(100) < readPct {
		if len(m.live) == 0 {
			if err := m.Flush(t); err != nil {
				return err
			}
		}
		o := m.live[m.rng.IntN(len(m.live))]
		if m.flip = !m.flip; m.flip {
			if _, ok := t.Extent(o.id); !ok {
				return fmt.Errorf("lost id %d", o.id)
			}
		} else if !t.Has(o.id) {
			return fmt.Errorf("lost id %d", o.id)
		}
		return nil
	}
	if m.vol < m.targetVol || len(m.live) == 0 || m.rng.IntN(2) == 0 {
		id := m.base | m.next
		m.next++
		sz := int64(1 + m.rng.IntN(m.maxSize))
		m.pend = append(m.pend, realloc.InsertOp(id, sz))
		m.pendIns = append(m.pendIns, mixObj{id, sz})
		m.vol += sz
	} else {
		j := m.rng.IntN(len(m.live))
		o := m.live[j]
		m.live[j] = m.live[len(m.live)-1]
		m.live = m.live[:len(m.live)-1]
		m.pend = append(m.pend, realloc.DeleteOp(o.id))
		m.vol -= o.size
	}
	if len(m.pend) >= size {
		return m.Flush(t)
	}
	return nil
}

// Flush applies the pending batch and commits its inserts to the live
// set. A no-op when nothing is pending.
func (m *MixStream) Flush(t MixBatchTarget) error {
	if len(m.pend) == 0 {
		return nil
	}
	if res := t.Apply(m.pend); res != nil {
		for i, e := range res {
			if e != nil {
				return fmt.Errorf("batched op %d (%+v): %w", i, m.pend[i], e)
			}
		}
	}
	m.live = append(m.live, m.pendIns...)
	m.pend = m.pend[:0]
	m.pendIns = m.pendIns[:0]
	return nil
}
