package exp

import (
	"fmt"

	"realloc/internal/engine"
	"realloc/internal/stats"
	"realloc/internal/workload"
)

// E16 sweeps cost against epsilon for every reallocation core behind the
// engine boundary: the PODS'14 reference, the FCS successor, and the
// auto-selecting engine, each replaying identical uniform, zipf, and
// adversarial request sequences. Every core must keep the quiescent
// footprint within (1+eps)·V, while the cost column shows each core's own
// trade: the reference pays O((1/eps)log(1/eps)) per unit, the successor
// O(1/eps) per unit plus geometric slot slack.
func E16(cfg Config) (*Result, error) {
	res := &Result{ID: "E16", Title: "Cost vs epsilon across reallocation cores", Findings: map[string]float64{}}
	cores, err := cfg.cores()
	if err != nil {
		return nil, err
	}
	ops := cfg.ops(8000)
	workloads := []struct {
		name string
		mk   func() workload.Stream
		n    int
	}{
		{"uniform", func() workload.Stream {
			return &workload.Churn{Seed: cfg.Seed + 16, Sizes: workload.Uniform{Min: 1, Max: 64}, TargetVolume: 1 << 14}
		}, ops},
		{"zipf", func() workload.Stream {
			return &workload.ZipfChurn{Seed: cfg.Seed + 17, Sizes: workload.Pareto{Min: 1, Max: 512, Alpha: 1.2}, TargetVolume: 1 << 14, Homes: 8}
		}, ops},
		{"adversarial", func() workload.Stream {
			return &workload.CompactionAdversary{Delta: 128, Bigs: 8}
		}, 0},
	}
	table := stats.NewTable("workload", "core", "eps", "bound 1+eps", "max footprint/V", "moved/requested", "moves/op", "flushes")
	for _, wl := range workloads {
		seq := workload.Collect(wl.mk(), wl.n)
		if len(seq) == 0 {
			return nil, fmt.Errorf("E16: empty %s stream", wl.name)
		}
		// Request volume prices the workload itself: the denominator of
		// the per-core cost column.
		var reqVol int64
		live := map[engine.ID]int64{}
		for _, op := range seq {
			if op.Insert {
				reqVol += op.Size
				live[op.ID] = op.Size
			} else {
				reqVol += live[op.ID]
				delete(live, op.ID)
			}
		}
		for _, c := range cores {
			for _, eps := range []float64{0.5, 0.25, 0.1} {
				e, m, err := newEngine(c, eps)
				if err != nil {
					return nil, fmt.Errorf("E16 %s/%s: %w", wl.name, c, err)
				}
				for i, op := range seq {
					if op.Insert {
						err = e.Insert(op.ID, op.Size)
					} else {
						err = e.Delete(op.ID)
					}
					if err != nil {
						return nil, fmt.Errorf("E16 %s/%s op %d: %w", wl.name, c, i, err)
					}
				}
				if err := e.Drain(); err != nil {
					return nil, err
				}
				costRatio := float64(m.MovedVolume) / float64(reqVol)
				movesPerOp := float64(m.MovesTotal) / float64(len(seq))
				table.Row(wl.name, c.String(), eps, 1+eps, m.MaxRatioQuiescent, costRatio, movesPerOp, e.Flushes())
				key := fmt.Sprintf("%s/%s/%g", wl.name, c, eps)
				res.Findings[key+"/quiescentRatio"] = m.MaxRatioQuiescent
				res.Findings[key+"/costRatio"] = costRatio
			}
		}
	}
	res.Text = table.String() +
		"\n\nShape check: every core's max footprint/V column stays below its 1+eps\nbound on every workload; the fcs rows' moved/requested stays within\nO(1/eps); the auto rows converge to whichever core fits the observed\nsize distribution and inherit its columns.\n"
	return res, nil
}
