package exp

import (
	"fmt"
	"strings"

	"realloc/internal/addrspace"
	"realloc/internal/core"
	"realloc/internal/trace"
)

// E9 reproduces the paper's three figures as ASCII renderings.
func E9(cfg Config) (*Result, error) {
	res := &Result{ID: "E9", Title: "Figures 1-3 as ASCII renderings", Findings: map[string]float64{}}
	var b strings.Builder

	f1, before, after, err := Figure1()
	if err != nil {
		return nil, err
	}
	b.WriteString(f1)
	res.Findings["fig1/before"] = float64(before)
	res.Findings["fig1/after"] = float64(after)

	f2, err := Figure2()
	if err != nil {
		return nil, err
	}
	b.WriteString(f2)

	f3, err := Figure3()
	if err != nil {
		return nil, err
	}
	b.WriteString(f3)

	res.Text = b.String()
	return res, nil
}

// Figure1 recreates the paper's Figure 1: deletions leave holes; moving
// two blocks into the holes shrinks the footprint. It returns the
// rendering plus the before/after footprints.
func Figure1() (string, int64, int64, error) {
	var b strings.Builder
	b.WriteString("Figure 1: moving previously allocated blocks into holes left by\ndeallocations reduces the storage footprint.\n\n")
	sp := addrspace.New(addrspace.RAM())
	sizes := []int64{10, 8, 6, 8, 6, 4}
	pos := int64(0)
	for i, s := range sizes {
		if err := sp.Place(addrspace.ID(i+1), addrspace.Extent{Start: pos, Size: s}); err != nil {
			return "", 0, 0, err
		}
		pos += s
	}
	// Delete two middle blocks, leaving holes (the figure's top row).
	_ = sp.Remove(2)
	_ = sp.Remove(4)
	before := sp.MaxEnd()
	b.WriteString("  before: ")
	b.WriteString(RenderSpace(sp, 63))
	// Move the trailing blocks (the figure's A and B) into the holes.
	if err := sp.Move(5, 10); err != nil { // size-6 block into the first hole
		return "", 0, 0, err
	}
	if err := sp.Move(6, 24); err != nil { // size-4 block into the second hole
		return "", 0, 0, err
	}
	after := sp.MaxEnd()
	b.WriteString("  after:  ")
	b.WriteString(RenderSpace(sp, 63))
	fmt.Fprintf(&b, "  footprint: %d -> %d\n\n", before, after)
	return b.String(), before, after, nil
}

// Figure2 recreates Figure 2: the region layout — payload segments (P)
// with their buffer segments (b = buffered objects, _ = free buffer
// capacity) in increasing size-class order.
func Figure2() (string, error) {
	var b strings.Builder
	b.WriteString("Figure 2: the data structure layout: per size class a payload segment\n(P) followed by a buffer segment (b=filled, _=free), eps'=1/2.\n\n")
	r, err := core.New(core.Config{Epsilon: 1, EpsPrime: 0.5, Variant: core.Amortized})
	if err != nil {
		return "", err
	}
	id := addrspace.ID(1)
	add := func(size int64, n int) {
		for i := 0; i < n; i++ {
			if e := r.Insert(id, size); e != nil {
				err = e
			}
			id++
		}
	}
	add(2, 4)  // class 1
	add(5, 3)  // class 2
	add(12, 2) // class 3
	add(25, 2) // class 4
	if err != nil {
		return "", err
	}
	// A few buffered inserts so the buffers show fill.
	add(2, 1)
	add(6, 1)
	if err != nil {
		return "", err
	}
	b.WriteString(RenderLayout(r, 72))
	b.WriteString("\n")
	return b.String(), nil
}

// Figure3 recreates Figure 3: a step-by-step buffer flush triggered by an
// insert, showing the event sequence and the layout before and after.
func Figure3() (string, error) {
	var b strings.Builder
	b.WriteString("Figure 3: a buffer flush, triggered when an insert finds no buffer\nspace: buffered objects evacuate to the overflow segment, payloads\ncompact, boundaries move, everything returns to its payload.\n\n")
	log := &trace.Log{}
	r, err := core.New(core.Config{Epsilon: 1, EpsPrime: 0.5, Variant: core.Amortized, Recorder: log})
	if err != nil {
		return "", err
	}
	// Small structure with nearly full buffers.
	seq := []int64{4, 4, 9, 9, 4, 5}
	for i, s := range seq {
		if err := r.Insert(addrspace.ID(i+1), s); err != nil {
			return "", err
		}
	}
	if err := r.Delete(2); err != nil {
		return "", err
	}
	b.WriteString("  before the triggering insert:\n")
	b.WriteString(indent(RenderLayout(r, 72), "  "))
	mark := len(log.Events)
	if err := r.Insert(99, 5); err != nil {
		return "", err
	}
	b.WriteString("\n  insert of a size-5 object triggers the flush; moves executed:\n")
	step := 1
	for _, e := range log.Events[mark:] {
		switch e.Kind {
		case trace.KFlushStart:
			fmt.Fprintf(&b, "   flush begins (boundary class %d)\n", e.From)
		case trace.KMove:
			fmt.Fprintf(&b, "   %2d. move object %d (size %d): %d -> %d\n", step, e.ID, e.Size, e.From, e.To)
			step++
		case trace.KInsert:
			fmt.Fprintf(&b, "   %2d. place new object %d (size %d) at %d\n", step, e.ID, e.Size, e.To)
			step++
		case trace.KFlushEnd:
			fmt.Fprintf(&b, "   flush ends (moved volume %d)\n", e.Size)
		}
	}
	b.WriteString("\n  after:\n")
	b.WriteString(indent(RenderLayout(r, 72), "  "))
	b.WriteString("\n")
	return b.String(), nil
}

func indent(s, pre string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = pre + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
