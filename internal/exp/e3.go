package exp

import (
	"fmt"

	"realloc/internal/addrspace"
	"realloc/internal/baseline"
	"realloc/internal/core"
	"realloc/internal/cost"
	"realloc/internal/stats"
	"realloc/internal/trace"
	"realloc/internal/workload"
)

// chainStream seeds one object in each class 1..maxExp and then hammers
// size-1 inserts: every insert into the full class 0 displaces a chain of
// larger objects — the workload on which the class-gap strategy pays
// Θ(log ∆) per unit volume under linear cost.
type chainStream struct {
	maxExp int
	small  int
	i      int
	phase  int
	nextID addrspace.ID
}

func (c *chainStream) Name() string {
	return fmt.Sprintf("chain(maxExp=%d,small=%d)", c.maxExp, c.small)
}

func (c *chainStream) Next() (workload.Op, bool) {
	if c.nextID == 0 {
		c.nextID = 1
	}
	if c.phase == 0 {
		if c.i < c.maxExp {
			c.i++
			id := c.nextID
			c.nextID++
			return workload.Op{Insert: true, ID: id, Size: int64(1) << uint(c.i)}, true
		}
		c.phase, c.i = 1, 0
	}
	if c.i < c.small {
		c.i++
		id := c.nextID
		c.nextID++
		return workload.Op{Insert: true, ID: id, Size: 1}, true
	}
	return workload.Op{}, false
}

// contender pairs an allocator constructor with a name.
type contender struct {
	name string
	make func(rec trace.Recorder) workload.Target
}

func contenders() []contender {
	return []contender{
		{"logcompact", func(rec trace.Recorder) workload.Target { return baseline.NewLogCompact(rec) }},
		{"classgap", func(rec trace.Recorder) workload.Target { return baseline.NewClassGap(rec) }},
		{"cost-oblivious", func(rec trace.Recorder) workload.Target {
			r, _ := core.New(core.Config{Epsilon: 0.5, Variant: core.Amortized, Recorder: rec})
			return r
		}},
	}
}

// E3 reproduces the Section 2 intuition. Two adversaries:
//
//   - unit-killer: delete size-∆ objects buried under size-1 objects.
//     Logging-and-compacting must relocate Θ(∆) small objects per
//     deletion (unit cost Θ(∆) per delete); size-classed strategies only
//     move larger-or-equal objects and pay O(1)-ish.
//   - linear-killer: size-1 inserts that displace a chain of one object
//     per larger class. The class-gap strategy pays Θ(log ∆) per unit
//     volume under linear cost; the cost-oblivious algorithm stays at its
//     (1/eps)log(1/eps) constant under both cost functions.
func E3(cfg Config) (*Result, error) {
	res := &Result{ID: "E3", Title: "Baseline crossover", Findings: map[string]float64{}}
	deltas := []int64{64, 256, 1024}

	unitKiller := stats.NewTable("workload", "delta", "allocator", "unit cost / deletion", "overall unit ratio", "overall linear ratio")
	for _, delta := range deltas {
		for _, c := range contenders() {
			m := trace.NewMetrics(cost.Unit(), cost.Linear())
			t := c.make(m)
			adv := &workload.CompactionAdversary{Delta: delta, Bigs: 4}
			// Drive op by op, attributing moves to the requests that
			// performed them: the paper's claim is about reallocation
			// cost charged to deletions.
			var movesAtDeletes, deletes int64
			for {
				op, ok := adv.Next()
				if !ok {
					break
				}
				before := m.MovesTotal
				var err error
				if op.Insert {
					err = t.Insert(op.ID, op.Size)
				} else {
					err = t.Delete(op.ID)
				}
				if err != nil {
					return nil, fmt.Errorf("compaction adversary on %s: %w", c.name, err)
				}
				if !op.Insert {
					deletes++
					movesAtDeletes += m.MovesTotal - before
				}
			}
			if r, ok := t.(*core.Reallocator); ok {
				if err := r.Drain(); err != nil {
					return nil, err
				}
			}
			perDel := float64(movesAtDeletes) / float64(deletes)
			unit, linear := m.Meter.Ratio("unit"), m.Meter.Ratio("linear")
			unitKiller.Row("unit-killer", delta, c.name, perDel, unit, linear)
			res.Findings[fmt.Sprintf("unitkiller/%d/%s/perDeletion", delta, c.name)] = perDel
			res.Findings[fmt.Sprintf("unitkiller/%d/%s/unit", delta, c.name)] = unit
			res.Findings[fmt.Sprintf("unitkiller/%d/%s/linear", delta, c.name)] = linear
		}
	}

	linearKiller := stats.NewTable("workload", "delta", "allocator", "unit ratio", "linear ratio")
	for _, delta := range deltas {
		maxExp := 0
		for d := delta; d > 1; d >>= 1 {
			maxExp++
		}
		for _, c := range contenders() {
			m := trace.NewMetrics(cost.Unit(), cost.Linear())
			t := c.make(m)
			// Scale the number of size-1 inserts with delta so the seeded
			// large objects never dominate the allocation-cost
			// denominator.
			chain := &chainStream{maxExp: maxExp, small: cfg.ops(int(40 * delta))}
			if _, err := workload.Drive(t, chain, 0); err != nil {
				return nil, fmt.Errorf("chain workload on %s: %w", c.name, err)
			}
			if r, ok := t.(*core.Reallocator); ok {
				if err := r.Drain(); err != nil {
					return nil, err
				}
			}
			unit, linear := m.Meter.Ratio("unit"), m.Meter.Ratio("linear")
			linearKiller.Row("linear-killer", delta, c.name, unit, linear)
			res.Findings[fmt.Sprintf("linearkiller/%d/%s/unit", delta, c.name)] = unit
			res.Findings[fmt.Sprintf("linearkiller/%d/%s/linear", delta, c.name)] = linear
		}
	}

	res.Text = unitKiller.String() + "\n" + linearKiller.String() +
		"\nShape check: logcompact's unit cost per deletion grows ~linearly with\ndelta (it relocates every small object behind the holes); classgap's\nlinear ratio grows with log(delta) on the displacement chain; the\ncost-oblivious allocator's amortized ratios stay bounded in every cell.\n(Its per-deletion column may spike when a deletion triggers a flush that\nbuffered inserts paid for — Section 2 is amortized; the deamortized\nvariant of E7 is the per-request remedy.)\n"
	return res, nil
}
