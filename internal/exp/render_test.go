package exp

import (
	"strings"
	"testing"

	"realloc/internal/addrspace"
	"realloc/internal/core"
)

func TestRenderSpace(t *testing.T) {
	sp := addrspace.New(addrspace.RAM())
	if got := RenderSpace(sp, 40); !strings.Contains(got, "empty") {
		t.Fatalf("empty render: %q", got)
	}
	_ = sp.Place(1, addrspace.Extent{Start: 0, Size: 10})
	_ = sp.Place(2, addrspace.Extent{Start: 20, Size: 20})
	out := RenderSpace(sp, 40)
	if !strings.Contains(out, "A") || !strings.Contains(out, "B") {
		t.Fatalf("missing blocks: %q", out)
	}
	if !strings.Contains(out, ".") {
		t.Fatalf("missing free space: %q", out)
	}
	if !strings.Contains(out, "footprint=40") {
		t.Fatalf("missing footprint: %q", out)
	}
	// A appears before B and the hole sits between them.
	ai, bi := strings.Index(out, "A"), strings.Index(out, "B")
	if ai >= bi {
		t.Fatalf("block order wrong: %q", out)
	}
}

func TestRenderLayout(t *testing.T) {
	r := core.MustNew(core.Config{Epsilon: 1, EpsPrime: 0.5, Variant: core.Amortized})
	if got := RenderLayout(r, 40); !strings.Contains(got, "empty") {
		t.Fatalf("empty render: %q", got)
	}
	_ = r.Insert(1, 8)
	_ = r.Insert(2, 2) // lands in the class-3 buffer
	out := RenderLayout(r, 60)
	for _, want := range []string{"P", "b", "_", "class 3", "payload", "buffer"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// TestFiguresAreDeterministic: figure reproductions must render the exact
// same text on every run (they seed nothing and iterate nothing
// map-ordered).
func TestFiguresAreDeterministic(t *testing.T) {
	f1a, b1, a1, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	f1b, b2, a2, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if f1a != f1b || b1 != b2 || a1 != a2 {
		t.Fatal("Figure1 not deterministic")
	}
	f2a, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	f2b, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if f2a != f2b {
		t.Fatal("Figure2 not deterministic")
	}
	f3a, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	f3b, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if f3a != f3b {
		t.Fatal("Figure3 not deterministic")
	}
}

// TestFigure3ShowsFullFlushCycle pins the structural content of the flush
// walkthrough: a boundary, at least four moves, a placement, and empty
// buffers afterwards.
func TestFigure3ShowsFullFlushCycle(t *testing.T) {
	out, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"flush begins (boundary class",
		"move object",
		"place new object 99",
		"flush ends",
		"fill=0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure 3 missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "move object") < 4 {
		t.Fatalf("figure 3 shows too few moves:\n%s", out)
	}
}
