package exp

import (
	"fmt"

	"realloc/internal/baseline"
	"realloc/internal/core"
	"realloc/internal/cost"
	"realloc/internal/stats"
	"realloc/internal/trace"
	"realloc/internal/workload"
)

// E8 runs the explicit Lemma 3.7 adversary — insert one size-∆ object,
// then ∆ size-1 objects, then delete the big one — against every
// footprint-maintaining algorithm. The lemma proves some single request
// must cost Ω(f(∆)); the table reports the worst single-request cost
// normalized by f(∆) and confirms it stays bounded away from zero as ∆
// grows, for every cost function.
func E8(cfg Config) (*Result, error) {
	res := &Result{ID: "E8", Title: "Worst-case lower bound is realized", Findings: map[string]float64{}}
	family := []cost.Func{cost.Unit(), cost.Linear(), cost.Sqrt()}
	table := stats.NewTable("delta", "algorithm", "final footprint/V", "maxOp/f(delta) unit", "maxOp/f(delta) linear", "maxOp/f(delta) sqrt")
	type cand struct {
		name string
		make func(rec trace.Recorder) workload.Target
	}
	cands := []cand{
		{"amortized", func(rec trace.Recorder) workload.Target {
			r, _ := core.New(core.Config{Epsilon: 0.5, Variant: core.Amortized, Recorder: rec})
			return r
		}},
		{"deamortized", func(rec trace.Recorder) workload.Target {
			r, _ := core.New(core.Config{Epsilon: 0.5, Variant: core.Deamortized, Recorder: rec})
			return r
		}},
		{"logcompact", func(rec trace.Recorder) workload.Target { return baseline.NewLogCompact(rec) }},
		{"classgap", func(rec trace.Recorder) workload.Target { return baseline.NewClassGap(rec) }},
	}
	for _, delta := range []int64{64, 256, 1024, 4096} {
		for _, c := range cands {
			m := trace.NewMetrics(family...)
			t := c.make(m)
			adv := &workload.LowerBound{Delta: delta}
			if _, err := workload.Drive(t, adv, 0); err != nil {
				return nil, fmt.Errorf("lower bound on %s: %w", c.name, err)
			}
			if r, ok := t.(*core.Reallocator); ok {
				if err := r.Drain(); err != nil {
					return nil, err
				}
			}
			finalRatio := 0.0
			if m.FinalVolume > 0 {
				finalRatio = float64(m.FinalFootprint) / float64(m.FinalVolume)
			}
			norm := map[string]float64{}
			for _, l := range m.Meter.Lines() {
				for _, f := range family {
					if f.Name() == l.Func {
						norm[l.Func] = l.MaxOpCost / f.Cost(delta)
					}
				}
			}
			table.Row(delta, c.name, finalRatio, norm["unit"], norm["linear"], norm["sqrt"])
			for fn, v := range norm {
				res.Findings[fmt.Sprintf("%d/%s/%s", delta, c.name, fn)] = v
			}
			res.Findings[fmt.Sprintf("%d/%s/finalRatio", delta, c.name)] = finalRatio
		}
	}
	res.Text = table.String() +
		"\nShape check: every algorithm that restores the footprint after deleting\nthe size-delta object pays a single-request cost Omega(f(delta)) — the\nlinear column stays bounded away from 0 as delta quadruples. (Unit-cost\nmaxOp/f(delta) reflects moving Theta(delta) small objects: Case 2 of the\nlemma's proof.)\n"
	return res, nil
}
