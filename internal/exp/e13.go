package exp

import (
	"fmt"
	"sync"
	"time"

	"realloc"
	"realloc/internal/addrspace"
	"realloc/internal/stats"
	"realloc/internal/workload"
)

// concurrentTarget is the surface E13 drives from many goroutines; both
// the locked single-core facade and the sharded facade satisfy it.
type concurrentTarget interface {
	Insert(id int64, size int64) error
	Delete(id int64) error
	Drain() error
	CheckInvariants() error
	Len() int
	Volume() int64
}

// E13 measures concurrency scaling of the sharded front-end: W workers
// replay disjoint-id churn streams against (a) one mutex-serialized
// reallocator and (b) hash-sharded reallocators of increasing width.
// Each shard preserves the paper's per-allocator guarantees — footprint
// within (1+eps) of its own live volume and cost competitiveness for
// every subadditive f — so the only thing sharding changes is the lock
// granularity. Throughput numbers are wall-clock and machine-dependent;
// the structural checks (live set, invariants) are exact.
func E13(cfg Config) (*Result, error) {
	res := &Result{ID: "E13", Title: "Sharded concurrency scaling", Findings: map[string]float64{}}
	ops := cfg.ops(160000)
	const workers = 8
	perWorker := ops / workers
	if perWorker < 1 {
		perWorker = 1
	}

	// Pre-generate each worker's op stream outside the timed region,
	// remapping ids into disjoint residue classes mod W.
	seqs := make([][]workload.Op, workers)
	wantLen := 0
	wantVol := int64(0)
	for w := range seqs {
		churn := &workload.Churn{
			Seed:         cfg.Seed + uint64(w)*1699,
			Sizes:        workload.Uniform{Min: 1, Max: 128},
			TargetVolume: 20000,
		}
		live := map[addrspace.ID]int64{}
		seq := make([]workload.Op, 0, perWorker)
		for i := 0; i < perWorker; i++ {
			op, ok := churn.Next()
			if !ok {
				break
			}
			op.ID = op.ID*workers + addrspace.ID(w)
			if op.Insert {
				live[op.ID] = op.Size
			} else {
				delete(live, op.ID)
			}
			seq = append(seq, op)
		}
		seqs[w] = seq
		wantLen += len(live)
		for _, sz := range live {
			wantVol += sz
		}
	}

	run := func(t concurrentTarget) (float64, error) {
		var wg sync.WaitGroup
		errs := make(chan error, workers)
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seq []workload.Op) {
				defer wg.Done()
				for _, op := range seq {
					var err error
					if op.Insert {
						err = t.Insert(int64(op.ID), op.Size)
					} else {
						err = t.Delete(int64(op.ID))
					}
					if err != nil {
						errs <- err
						return
					}
				}
			}(seqs[w])
		}
		wg.Wait()
		elapsed := time.Since(start)
		close(errs)
		if err := <-errs; err != nil {
			return 0, err
		}
		if err := t.Drain(); err != nil {
			return 0, err
		}
		if err := t.CheckInvariants(); err != nil {
			return 0, err
		}
		if t.Len() != wantLen || t.Volume() != wantVol {
			return 0, fmt.Errorf("end state len=%d vol=%d, want len=%d vol=%d",
				t.Len(), t.Volume(), wantLen, wantVol)
		}
		total := 0
		for _, s := range seqs {
			total += len(s)
		}
		return float64(total) / elapsed.Seconds(), nil
	}

	table := stats.NewTable("configuration", "shards", "ops/sec", "speedup")
	single, err := realloc.New(cfg.telOpts(realloc.WithEpsilon(0.25), realloc.WithLocking())...)
	if err != nil {
		return nil, err
	}
	base, err := run(single)
	if err != nil {
		return nil, fmt.Errorf("locked single: %w", err)
	}
	table.Row("single lock (WithLocking)", 1, fmt.Sprintf("%.0f", base), "1.00x")
	res.Findings["shards/1/opsPerSec"] = base
	res.Findings["shards/1/speedup"] = 1

	for _, n := range []int{2, 4, 8} {
		s, err := realloc.NewSharded(cfg.telOpts(realloc.WithEpsilon(0.25), realloc.WithShards(n))...)
		if err != nil {
			return nil, err
		}
		rate, err := run(s)
		if err != nil {
			return nil, fmt.Errorf("%d shards: %w", n, err)
		}
		speedup := rate / base
		table.Row("hash-sharded", n, fmt.Sprintf("%.0f", rate), fmt.Sprintf("%.2fx", speedup))
		res.Findings[fmt.Sprintf("shards/%d/opsPerSec", n)] = rate
		res.Findings[fmt.Sprintf("shards/%d/speedup", n)] = speedup
	}

	res.Text = fmt.Sprintf(
		"%d workers replaying %d disjoint-id churn ops concurrently.\n"+
			"Each shard independently maintains footprint <= (1+eps)*V_shard,\n"+
			"so the summed footprint keeps the (1+eps) bound; end states are\n"+
			"verified identical across configurations.\n\n%s",
		workers, ops, table)
	return res, nil
}
