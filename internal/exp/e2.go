package exp

import (
	"fmt"
	"math"

	"realloc/internal/engine"
	"realloc/internal/stats"
	"realloc/internal/workload"
)

// E2 measures cost obliviousness: one run of the (cost-blind) algorithm is
// priced under the whole subadditive family; every ratio must stay within
// O((1/eps)·log(1/eps)) of the allocation cost (Lemma 2.6). The
// "normalized" column divides the measured ratio by (1/eps)·(1+ln(1/eps)):
// a bounded column across the sweep is the theorem's shape.
func E2(cfg Config) (*Result, error) {
	res := &Result{ID: "E2", Title: "Cost obliviousness across the subadditive family", Findings: map[string]float64{}}
	ops := cfg.ops(20000)
	table := stats.NewTable("eps", "cost f", "alloc cost", "realloc cost", "ratio", "normalized")
	for _, eps := range []float64{0.5, 0.25, 0.1, 0.05} {
		r, m, err := newCore(engine.Amortized, eps)
		if err != nil {
			return nil, err
		}
		churn := &workload.Churn{
			Seed:         cfg.Seed + 2,
			Sizes:        workload.Pareto{Min: 1, Max: 1024, Alpha: 1.2},
			TargetVolume: 60000,
		}
		if err := drive(r, churn, ops); err != nil {
			return nil, err
		}
		norm := (1 / eps) * (1 + math.Log(1/eps))
		for _, l := range m.Meter.Lines() {
			table.Row(eps, l.Func, l.AllocCost, l.ReallocCost, l.Ratio, l.Ratio/norm)
			res.Findings[fmt.Sprintf("%g/%s/ratio", eps, l.Func)] = l.Ratio
			res.Findings[fmt.Sprintf("%g/%s/normalized", eps, l.Func)] = l.Ratio / norm
		}
	}
	res.Text = table.String() +
		"\nShape check: the algorithm never saw any of these cost functions, yet each\nratio is bounded, and the normalized column stays O(1) as eps shrinks —\nthe (1/eps)log(1/eps) law of Lemma 2.6.\n"
	return res, nil
}
