package exp

import (
	"strings"
	"testing"
)

func quickCfg() Config { return Config{Seed: 1, Quick: true} }

// TestAllExperimentsRun executes the full suite at reduced scale; every
// experiment must complete and render a non-empty report.
func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res, err := e.Run(quickCfg())
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if len(res.Text) == 0 {
				t.Fatalf("%s produced no report", e.ID)
			}
		})
	}
}

// TestRunAll exercises the all-experiments driver used by the CLI.
func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll repeats every experiment; skipped in -short mode")
	}
	var sb strings.Builder
	if err := RunAll(quickCfg(), &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, e := range All() {
		if !strings.Contains(out, "== "+e.ID+":") {
			t.Errorf("RunAll output missing %s", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E1"); !ok {
		t.Fatal("E1 not found")
	}
	if _, ok := ByID("e5"); !ok {
		t.Fatal("lookup should be case-insensitive")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("bogus experiment found")
	}
}

// TestE1Shape asserts the footprint bound findings.
func TestE1Shape(t *testing.T) {
	res, err := E1(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, variant := range []string{"amortized", "checkpointed", "deamortized"} {
		for _, eps := range []string{"0.5", "0.25", "0.1", "0.05"} {
			key := variant + "/" + eps + "/structRatio"
			ratio, ok := res.Findings[key]
			if !ok {
				t.Fatalf("missing finding %s", key)
			}
			var bound float64
			switch eps {
			case "0.5":
				bound = 1.5
			case "0.25":
				bound = 1.25
			case "0.1":
				bound = 1.1
			case "0.05":
				bound = 1.05
			}
			if ratio > bound+0.02 {
				t.Errorf("%s: ratio %.4f exceeds %v", key, ratio, bound)
			}
		}
	}
}

// TestE3Shape asserts the crossover: logcompact's unit cost per deletion
// grows ~linearly with delta; classgap's linear ratio grows with
// log(delta); the cost-oblivious allocator stays bounded everywhere.
func TestE3Shape(t *testing.T) {
	res, err := E3(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	lcSmall := res.Findings["unitkiller/64/logcompact/perDeletion"]
	lcBig := res.Findings["unitkiller/1024/logcompact/perDeletion"]
	if lcBig < 4*lcSmall {
		t.Errorf("logcompact unit cost/deletion should grow ~linearly with delta: %v -> %v", lcSmall, lcBig)
	}
	if cg := res.Findings["unitkiller/1024/classgap/perDeletion"]; cg > 4 {
		t.Errorf("classgap unit cost/deletion should be O(1), got %v", cg)
	}
	// The cost-oblivious guarantee is the *amortized* competitive ratio:
	// it must stay bounded as delta grows (individual deletions may still
	// trigger large flushes — deamortization, E7, is the per-request fix).
	coSmall := res.Findings["unitkiller/64/cost-oblivious/unit"]
	coBig := res.Findings["unitkiller/1024/cost-oblivious/unit"]
	if coBig > 2*coSmall+10 {
		t.Errorf("cost-oblivious unit ratio should not grow with delta: %v -> %v", coSmall, coBig)
	}
	for _, delta := range []string{"64", "256", "1024"} {
		col := res.Findings["linearkiller/"+delta+"/cost-oblivious/linear"]
		if col > 40 {
			t.Errorf("cost-oblivious linear ratio too large on linear-killer(%s): %v", delta, col)
		}
	}
	// The crossovers themselves.
	if res.Findings["unitkiller/1024/logcompact/perDeletion"] <
		4*res.Findings["unitkiller/1024/classgap/perDeletion"] {
		t.Error("expected logcompact to lose badly per deletion at delta=1024")
	}
	cgSmall := res.Findings["linearkiller/64/classgap/linear"]
	cgBig := res.Findings["linearkiller/1024/classgap/linear"]
	if cgBig <= cgSmall {
		t.Errorf("classgap linear ratio should grow with log(delta): %v -> %v", cgSmall, cgBig)
	}
}

// TestE4Shape asserts no-move footprint growth vs the reallocator.
func TestE4Shape(t *testing.T) {
	res, err := E4(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	ffSmall := res.Findings["4/firstfit/finalRatio"]
	ffBig := res.Findings["10/firstfit/finalRatio"]
	if ffBig <= ffSmall {
		t.Errorf("firstfit footprint ratio should grow with maxExp: %v -> %v", ffSmall, ffBig)
	}
	for _, exp := range []string{"4", "6", "8", "10"} {
		co := res.Findings[exp+"/cost-oblivious/finalRatio"]
		if co > 1.27 {
			t.Errorf("cost-oblivious final ratio at maxExp=%s: %v > 1+eps", exp, co)
		}
		if ff := res.Findings[exp+"/firstfit/finalRatio"]; ff < co {
			t.Errorf("firstfit should not beat the reallocator at maxExp=%s (%v < %v)", exp, ff, co)
		}
	}
}

// TestE5Shape asserts the defragmentation space bounds.
func TestE5Shape(t *testing.T) {
	res, err := E5(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []string{"0.5", "0.25", "0.1"} {
		if res.Findings[eps+"/budgetOK"] != 1 {
			t.Errorf("eps=%s: peak exceeded the (1+eps)V+Delta budget", eps)
		}
	}
	if naive := res.Findings["0.1/naivePeakOverV"]; naive < 1.8 {
		t.Errorf("naive defrag should need ~2V, got %vV", naive)
	}
	if ours := res.Findings["0.1/peakOverV"]; ours > 1.25 {
		t.Errorf("cost-oblivious defrag peak %vV too large for eps=0.1", ours)
	}
}

// TestE6Shape asserts checkpoints per flush scale with 1/eps'.
func TestE6Shape(t *testing.T) {
	res, err := E6(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []string{"0.5", "0.25", "0.1", "0.05"} {
		maxC := res.Findings[eps+"/maxCkptPerFlush"]
		inv := res.Findings[eps+"/invEpsPrime"]
		if maxC > 6*inv+8 {
			t.Errorf("eps=%s: max checkpoints per flush %v exceeds O(1/eps')=%v", eps, maxC, inv)
		}
	}
}

// TestE7Shape asserts the deamortized worst-case cap.
func TestE7Shape(t *testing.T) {
	res, err := E7(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Findings["deamortized/violations"]; v != 0 {
		t.Errorf("deamortized per-op bound violated %v times", v)
	}
	de := res.Findings["deamortized/maxOpVolume"]
	ck := res.Findings["checkpointed/maxOpVolume"]
	if de >= ck {
		t.Errorf("deamortization should shrink the worst op (deamortized %v vs checkpointed %v)", de, ck)
	}
	// Lemma 3.4: arrivals during a flush bounded by ~eps' of V_f.
	frac := res.Findings["deamortized/flushArrivalFrac"]
	epsP := res.Findings["deamortized/epsPrime"]
	if frac > epsP+0.05 {
		t.Errorf("mid-flush arrival fraction %v exceeds eps'=%v", frac, epsP)
	}
}

// TestE8Shape asserts the lower bound is realized under linear cost.
func TestE8Shape(t *testing.T) {
	res, err := E8(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []string{"amortized", "deamortized", "logcompact", "classgap"} {
		for _, delta := range []string{"256", "1024", "4096"} {
			if r := res.Findings[delta+"/"+alg+"/finalRatio"]; r > 4.2 {
				t.Errorf("%s did not maintain a small footprint on the adversary (ratio %v)", alg, r)
				continue
			}
			norm := res.Findings[delta+"/"+alg+"/linear"]
			if norm < 0.2 {
				t.Errorf("%s at delta=%s: max single-op linear cost %v*f(delta), expected Omega(f(delta))", alg, delta, norm)
			}
		}
	}
}

// TestE11Shape asserts the end-to-end database scenario: bounded
// footprint, media-oblivious competitive cost, and intact recovery.
func TestE11Shape(t *testing.T) {
	res, err := E11(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"checkpointed", "deamortized"} {
		if res.Findings[v+"/recoveredOK"] != 1 {
			t.Errorf("%s: recovery failed", v)
		}
		if r := res.Findings[v+"/footprintRatio"]; r > 1.30 {
			t.Errorf("%s: footprint ratio %v", v, r)
		}
		// One run, four media: every ratio bounded.
		for _, medium := range []string{"ram", "ssd", "hdd", "tape"} {
			if ratio := res.Findings[v+"/"+medium+"/ratio"]; ratio > 200 {
				t.Errorf("%s under %s: ratio %v unbounded", v, medium, ratio)
			}
		}
	}
}

// TestE12Shape asserts the premium is a modest constant on both axes.
func TestE12Shape(t *testing.T) {
	res, err := E12(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if p := res.Findings["premium/linear"]; p <= 0 || p > 100 {
		t.Errorf("linear premium %v out of plausible range", p)
	}
	if p := res.Findings["premium/unit"]; p <= 0 || p > 100 {
		t.Errorf("unit premium %v out of plausible range", p)
	}
	// The oblivious allocator must be bounded on both axes.
	for _, eps := range []string{"0.5", "0.25"} {
		if u := res.Findings["cost-oblivious/"+eps+"/unit"]; u > 100 {
			t.Errorf("unit ratio %v at eps=%s", u, eps)
		}
		if l := res.Findings["cost-oblivious/"+eps+"/linear"]; l > 100 {
			t.Errorf("linear ratio %v at eps=%s", l, eps)
		}
	}
}

// TestE9Renders sanity-checks the figure outputs.
func TestE9Renders(t *testing.T) {
	res, err := E9(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Findings["fig1/after"] >= res.Findings["fig1/before"] {
		t.Errorf("figure 1 must show the footprint shrinking: %v -> %v",
			res.Findings["fig1/before"], res.Findings["fig1/after"])
	}
	for _, want := range []string{"Figure 1", "Figure 2", "Figure 3", "flush begins"} {
		if !strings.Contains(res.Text, want) {
			t.Errorf("E9 output missing %q", want)
		}
	}
}

// TestE13Shape asserts the concurrency experiment produces throughput
// for every configuration and that its structural checks held (E13
// errors out on any end-state divergence). Speedup magnitudes are
// machine-dependent and not asserted.
func TestE13Shape(t *testing.T) {
	res, err := E13(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"shards/1/opsPerSec", "shards/2/opsPerSec",
		"shards/4/opsPerSec", "shards/8/opsPerSec",
	} {
		if res.Findings[key] <= 0 {
			t.Errorf("%s = %v, want > 0", key, res.Findings[key])
		}
	}
	for _, n := range []string{"2", "4", "8"} {
		if s := res.Findings["shards/"+n+"/speedup"]; s <= 0 {
			t.Errorf("speedup at %s shards = %v, want > 0", n, s)
		}
	}
}

// TestE14Shape asserts the rebalancing experiment's headline claims: the
// static partition's live volume concentrates past 4x the mean while
// rebalancing holds the spread within 2x, the footprint bound survives
// the migrations, and objects actually moved. Throughput magnitudes are
// machine-dependent and only checked for presence.
func TestE14Shape(t *testing.T) {
	res, err := E14(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if s := res.Findings["static/maxSpread"]; s <= 4 {
		t.Errorf("static spread = %.2fx, want > 4x", s)
	}
	if s := res.Findings["rebalanced/maxSpread"]; s > 2 {
		t.Errorf("rebalanced spread = %.2fx, want <= 2x", s)
	}
	// eps=0.25 plus the per-shard additive terms (8 shards, Delta <= 128,
	// V ~= 40000 in the sampled steady half).
	const bound = 1.25 + 8*128.0/40000 + 0.02
	for _, cfg := range []string{"static", "rebalanced"} {
		if r := res.Findings[cfg+"/maxFootprintRatio"]; r <= 0 || r > bound {
			t.Errorf("%s footprint ratio = %v, want in (0, %v]", cfg, r, bound)
		}
	}
	if m := res.Findings["rebalanced/migratedObjects"]; m < 1 {
		t.Errorf("no objects migrated (%v)", m)
	}
	for _, key := range []string{"static/opsPerSec", "rebalanced/opsPerSec"} {
		if res.Findings[key] <= 0 {
			t.Errorf("%s = %v, want > 0", key, res.Findings[key])
		}
	}
}

// TestE15Shape asserts the lock-free scaling experiment produces a
// throughput figure for every workload×workers cell and that its
// structural checks held (E15 errors out on lost objects, live-set
// divergence, or invariant violations). Speedup magnitudes are
// machine-dependent and only checked for presence.
func TestE15Shape(t *testing.T) {
	res, err := E15(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range []string{"read", "mixed", "churn"} {
		for _, w := range []string{"1", "2", "4", "8"} {
			if v := res.Findings[sc+"/"+w+"/opsPerSec"]; v <= 0 {
				t.Errorf("%s/%s/opsPerSec = %v, want > 0", sc, w, v)
			}
			if v := res.Findings[sc+"/"+w+"/speedup"]; v <= 0 {
				t.Errorf("%s/%s/speedup = %v, want > 0", sc, w, v)
			}
		}
	}
}

// TestE16Shape asserts the cross-core sweep's bounds: every core keeps
// the quiescent footprint ratio within 1+eps on every workload, and the
// successor core's cost column stays within its O(1/eps) budget. The
// Core filter must restrict the panel and reject unknown names.
func TestE16Shape(t *testing.T) {
	res, err := E16(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, wl := range []string{"uniform", "zipf", "adversarial"} {
		for _, c := range []string{"pods14", "fcs", "auto"} {
			for _, eps := range []string{"0.5", "0.25", "0.1"} {
				key := wl + "/" + c + "/" + eps
				ratio, ok := res.Findings[key+"/quiescentRatio"]
				if !ok {
					t.Fatalf("missing finding %s/quiescentRatio", key)
				}
				var bound float64
				switch eps {
				case "0.5":
					bound = 1.5
				case "0.25":
					bound = 1.25
				case "0.1":
					bound = 1.1
				}
				if ratio > bound {
					t.Errorf("%s: quiescent ratio %v over %v", key, ratio, bound)
				}
				if c == "fcs" {
					var e float64
					switch eps {
					case "0.5":
						e = 0.5
					case "0.25":
						e = 0.25
					case "0.1":
						e = 0.1
					}
					if cost := res.Findings[key+"/costRatio"]; cost > 10/e+4 {
						t.Errorf("%s: cost ratio %v over O(1/eps) budget %v", key, cost, 10/e+4)
					}
				}
			}
		}
	}

	cfg := quickCfg()
	cfg.Core = "fcs"
	only, err := E16(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for key := range only.Findings {
		if strings.Contains(key, "/pods14/") || strings.Contains(key, "/auto/") {
			t.Errorf("Core=fcs run still produced %s", key)
		}
	}
	cfg.Core = "bogus"
	if _, err := E16(cfg); err == nil || !strings.Contains(err.Error(), "unknown core") {
		t.Errorf("Core=bogus error = %v, want unknown core", err)
	}
}
