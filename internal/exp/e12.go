package exp

import (
	"fmt"

	"realloc/internal/baseline"
	"realloc/internal/core"
	"realloc/internal/cost"
	"realloc/internal/stats"
	"realloc/internal/trace"
	"realloc/internal/workload"
)

// E12 quantifies the price of obliviousness: on a neutral churn workload,
// how much more does the cost-oblivious allocator pay than each
// cost-aware specialist *on the specialist's home cost function*?
// Logging-and-compacting is the natural linear-cost strategy ((2,2) per
// the paper); the class-gap structure is the natural unit-cost strategy
// (O(1) amortized). The paper's theory prices obliviousness at
// O((1/eps)·log(1/eps)) versus those constants; this experiment measures
// the realized premium, and what the specialists pay off their home turf
// in exchange.
func E12(cfg Config) (*Result, error) {
	res := &Result{ID: "E12", Title: "The price of obliviousness", Findings: map[string]float64{}}
	ops := cfg.ops(20000)

	run := func(mk func(rec trace.Recorder) workload.Target) (*trace.Metrics, error) {
		m := trace.NewMetrics(cost.Unit(), cost.Linear())
		t := mk(m)
		// A sawtooth (grow to 3x, shrink to 1x, repeat) drives every
		// contender through real compaction cycles; steady flat churn can
		// idle below logcompact's 2V trigger indefinitely, which would
		// flatter it with a zero reallocation cost.
		saw := &workload.Sawtooth{
			Seed:  cfg.Seed + 12,
			Sizes: workload.Pareto{Min: 1, Max: 512, Alpha: 1.3},
			Low:   int64(ops) / 2, High: int64(ops),
		}
		if _, err := workload.Drive(t, saw, ops); err != nil {
			return nil, err
		}
		if r, ok := t.(*core.Reallocator); ok {
			if err := r.Drain(); err != nil {
				return nil, err
			}
		}
		return m, nil
	}

	table := stats.NewTable("allocator", "eps", "unit ratio", "linear ratio", "max footprint/V")
	type row struct {
		name string
		eps  float64
		mk   func(rec trace.Recorder) workload.Target
	}
	rows := []row{
		{"logcompact (linear specialist)", 0, func(rec trace.Recorder) workload.Target { return baseline.NewLogCompact(rec) }},
		{"classgap (unit specialist)", 0, func(rec trace.Recorder) workload.Target { return baseline.NewClassGap(rec) }},
	}
	for _, eps := range []float64{0.5, 0.25} {
		eps := eps
		rows = append(rows, row{"cost-oblivious", eps, func(rec trace.Recorder) workload.Target {
			r, _ := core.New(core.Config{Epsilon: eps, Variant: core.Amortized, Recorder: rec})
			return r
		}})
	}
	ratios := map[string][2]float64{}
	for _, rw := range rows {
		m, err := run(rw.mk)
		if err != nil {
			return nil, fmt.Errorf("E12 %s: %w", rw.name, err)
		}
		unit, linear := m.Meter.Ratio("unit"), m.Meter.Ratio("linear")
		epsCell := "n/a"
		if rw.eps > 0 {
			epsCell = stats.FormatFloat(rw.eps)
		}
		table.Row(rw.name, epsCell, unit, linear, m.MaxRatioSteady)
		key := rw.name
		if rw.eps > 0 {
			key = fmt.Sprintf("cost-oblivious/%g", rw.eps)
		}
		ratios[key] = [2]float64{unit, linear}
		res.Findings[key+"/unit"] = unit
		res.Findings[key+"/linear"] = linear
		res.Findings[key+"/footprint"] = m.MaxRatioSteady
	}

	// Premiums at eps=0.5 versus each specialist's home function.
	linPremium := 0.0
	if lc := ratios["logcompact (linear specialist)"][1]; lc > 0 {
		linPremium = ratios["cost-oblivious/0.5"][1] / lc
	}
	unitPremium := 0.0
	if cg := ratios["classgap (unit specialist)"][0]; cg > 0 {
		unitPremium = ratios["cost-oblivious/0.5"][0] / cg
	}
	res.Findings["premium/linear"] = linPremium
	res.Findings["premium/unit"] = unitPremium

	res.Text = table.String() + fmt.Sprintf(
		"\nPremium of obliviousness at eps=0.5: %.1fx vs the linear specialist on\nlinear cost, %.1fx vs the unit specialist on unit cost — the measured\nconstant behind O((1/eps)log(1/eps)). In exchange the oblivious allocator\nis the only one that is simultaneously bounded on BOTH columns with a\nguaranteed (1+eps) footprint (E3 shows each specialist failing off its\nhome function by factors that grow with delta).\n",
		linPremium, unitPremium)
	return res, nil
}
