package exp

import (
	"fmt"

	"realloc/internal/engine"
	"realloc/internal/stats"
	"realloc/internal/workload"
)

// E7 validates deamortization (Section 3.3): the volume reallocated within
// any single request is at most (4/eps')·w + ∆ (Lemma 3.6's worst case),
// while the checkpointed variant — same bounds on average — occasionally
// reallocates nearly the whole structure inside one request.
func E7(cfg Config) (*Result, error) {
	res := &Result{ID: "E7", Title: "Deamortization caps per-request work", Findings: map[string]float64{}}
	ops := cfg.ops(15000)
	table := stats.NewTable("variant", "eps", "p50 op volume", "p99 op volume", "max op volume", "bound (4/eps')w+delta", "violations", "cost ratio (unit)")
	for _, variant := range []engine.Variant{engine.Checkpointed, engine.Deamortized} {
		eps := 0.25
		r, m, err := newCore(variant, eps)
		if err != nil {
			return nil, err
		}
		// Bounded sizes keep the per-request cap (4/eps')w + Delta well
		// below the structure volume, so the deamortization is visible.
		churn := &workload.Churn{
			Seed:         cfg.Seed + 7,
			Sizes:        workload.Uniform{Min: 1, Max: 64},
			TargetVolume: int64(ops) * 8,
		}
		// Drive op by op so each request's moved volume can be checked
		// against the bound for *its own* size w.
		var perOp []float64
		violations := 0
		var worstBound float64
		prevMoved := int64(0)
		for i := 0; i < ops; i++ {
			op, ok := churn.Next()
			if !ok {
				break
			}
			if op.Insert {
				err = r.Insert(op.ID, op.Size)
			} else {
				err = r.Delete(op.ID)
			}
			if err != nil {
				return nil, fmt.Errorf("E7 %s op %d: %w", variant, i, err)
			}
			moved := m.MovedVolume - prevMoved
			prevMoved = m.MovedVolume
			perOp = append(perOp, float64(moved))
			if variant == engine.Deamortized {
				// Ops carry w for inserts and deletes alike. The bound has
				// an extra +Delta of slack: moving one indivisible object
				// can overshoot the quota, and the flush-triggering insert
				// itself is evacuated once outside the quota.
				w := op.Size
				bound := 4/r.EpsPrime()*float64(w) + float64(r.Delta()) + float64(r.Delta())
				if float64(moved) > bound {
					violations++
				}
				if bound > worstBound {
					worstBound = bound
				}
			}
		}
		if err := r.Drain(); err != nil {
			return nil, err
		}
		p50 := stats.Percentile(perOp, 50)
		p99 := stats.Percentile(perOp, 99)
		pmax := stats.Percentile(perOp, 100)
		unitRatio := m.Meter.Ratio("unit")
		boundCell := "n/a"
		violCell := "n/a"
		if variant == engine.Deamortized {
			boundCell = stats.FormatFloat(worstBound)
			violCell = fmt.Sprintf("%d", violations)
			res.Findings["deamortized/maxOpVolume"] = pmax
			res.Findings["deamortized/violations"] = float64(violations)
			// Lemma 3.4: update volume arriving during any flush stays
			// below eps'*V_f (plus indivisible-object slack).
			res.Findings["deamortized/flushArrivalFrac"] = m.MaxFlushArrivalFrac
			res.Findings["deamortized/epsPrime"] = r.EpsPrime()
		} else {
			res.Findings["checkpointed/maxOpVolume"] = pmax
		}
		table.Row(variant.String(), eps, p50, p99, pmax, boundCell, violCell, unitRatio)
		res.Findings[variant.String()+"/p99OpVolume"] = p99
	}
	res.Text = table.String() +
		fmt.Sprintf("\nLemma 3.4: worst mid-flush arrival fraction %.4f of V_f (bound eps' = %.4f\nplus indivisible-object slack).\n",
			res.Findings["deamortized/flushArrivalFrac"], res.Findings["deamortized/epsPrime"]) +
		"\nShape check: the checkpointed variant's max single-request volume is the\nwhole structure (a full flush); the deamortized variant caps every request\nat (4/eps')w + O(delta) with zero violations, at an unchanged amortized\ncost ratio.\n"
	return res, nil
}
