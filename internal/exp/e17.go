package exp

import (
	"fmt"

	"realloc/internal/arena"
	"realloc/internal/engine"
	"realloc/internal/stats"
	"realloc/internal/trace"
	"realloc/internal/workload"
)

// E17 validates the cost model against real memmoves: every core replays
// identical uniform and zipf churn streams once on the metered backend
// (moved cells are counted, no bytes exist) and once on the heap arena
// (every relocation physically copies the object's extent). One cell is
// one byte, so three columns must agree exactly — the trace's moved
// volume, the metered counter, and the real backend's bytes actually
// copied — and the measured copy throughput (bytes/ns) prices what the
// abstract "moved volume" unit costs on this machine.
func E17(cfg Config) (*Result, error) {
	res := &Result{ID: "E17", Title: "Metered cost model vs real memmove backends", Findings: map[string]float64{}}
	cores, err := cfg.cores()
	if err != nil {
		return nil, err
	}
	backends, err := cfg.backends()
	if err != nil {
		return nil, err
	}
	ops := cfg.ops(8000)
	workloads := []struct {
		name string
		mk   func() workload.Stream
	}{
		{"uniform", func() workload.Stream {
			return &workload.Churn{Seed: cfg.Seed + 18, Sizes: workload.Uniform{Min: 1, Max: 64}, TargetVolume: 1 << 14}
		}},
		{"zipf", func() workload.Stream {
			return &workload.ZipfChurn{Seed: cfg.Seed + 19, Sizes: workload.Pareto{Min: 1, Max: 512, Alpha: 1.2}, TargetVolume: 1 << 14, Homes: 8}
		}},
	}
	table := stats.NewTable("workload", "core", "backend", "trace moved", "backend bytes", "match", "copies", "ns copying", "bytes/ns")
	for _, wl := range workloads {
		seq := workload.Collect(wl.mk(), ops)
		if len(seq) == 0 {
			return nil, fmt.Errorf("E17: empty %s stream", wl.name)
		}
		for _, c := range cores {
			if c == engine.AutoSelect {
				// Auto commits to one of the concrete cores; the two
				// concrete rows already cover both outcomes.
				continue
			}
			for _, bk := range backends {
				m := trace.NewMetrics()
				data, err := arena.New(bk)
				if err != nil {
					return nil, fmt.Errorf("E17 %s/%s/%s: %w", wl.name, c, bk, err)
				}
				data.SetTiming(true)
				e, err := engine.New(engine.Config{Core: c, Epsilon: 0.25, Recorder: m, Arena: data})
				if err != nil {
					return nil, fmt.Errorf("E17 %s/%s/%s: %w", wl.name, c, bk, err)
				}
				for i, op := range seq {
					if op.Insert {
						err = e.Insert(op.ID, op.Size)
					} else {
						err = e.Delete(op.ID)
					}
					if err != nil {
						return nil, fmt.Errorf("E17 %s/%s/%s op %d: %w", wl.name, c, bk, i, err)
					}
				}
				if err := e.Drain(); err != nil {
					return nil, err
				}
				cnt := data.Counters()
				match := cnt.BytesMoved == m.MovedVolume
				var rate float64
				if cnt.CopyNanos > 0 {
					rate = float64(cnt.BytesMoved) / float64(cnt.CopyNanos)
				}
				table.Row(wl.name, c.String(), bk.String(), m.MovedVolume, cnt.BytesMoved, match, cnt.Copies, cnt.CopyNanos, rate)
				key := fmt.Sprintf("%s/%s/%s", wl.name, c, bk)
				res.Findings[key+"/traceMoved"] = float64(m.MovedVolume)
				res.Findings[key+"/bytesMoved"] = float64(cnt.BytesMoved)
				if match {
					res.Findings[key+"/match"] = 1
				}
				if bk != arena.Metered {
					res.Findings[key+"/bytesPerNs"] = rate
				}
			}
		}
	}
	res.Text = table.String() +
		"\n\nShape check: on every row the backend's bytes-moved counter equals the\ntrace's moved volume exactly (one cell = one byte), whichever backend\nruns — the metered counters are the real cost, not an estimate. The\nbytes/ns column on real-backend rows converts the paper's moved-volume\nunit into wall-clock on this machine.\n"
	return res, nil
}
