package exp

import (
	"fmt"
	"sync"
	"time"

	"realloc"
	"realloc/internal/stats"
)

// E15 measures parallel scaling of the lock-free sharded front-end:
// W workers (1, 2, 4, 8) drive a fixed 8-shard reallocator with
// read-heavy (100% Extent/Has), mixed (95% read / 5% churn), and pure
// churn workloads over disjoint id streams (MixStream — the same
// driver the root BenchmarkShardedParallel suite uses). Since PR 5 an
// uncontended operation touches no shared mutable cache line except
// its own shard — routing is an atomic table load, per-object reads
// take only a shard read lock, and aggregate reads take no locks at
// all — so added workers must not slow each other down beyond hardware
// limits. Throughput is wall-clock and machine-dependent (a
// single-core host shows time-slicing overhead, not parallel speedup);
// the structural checks (live set survives, invariants hold, mirrors
// exact) are exact everywhere.
func E15(cfg Config) (*Result, error) {
	res := &Result{ID: "E15", Title: "Lock-free front-end parallel scaling", Findings: map[string]float64{}}
	ops := cfg.ops(120000)
	const shards = 8
	const targetVol = 1 << 14
	const maxSize = 16

	// batch == 0 drives per-op Insert/Delete; batch > 0 submits churn
	// through Apply in groups of that size (reads stay inline). The
	// batched lanes measure what the batched front-end amortizes — one
	// shard lock, one mirror publish, one telemetry stamp per group.
	scenarios := []struct {
		name    string
		readPct int
		batch   int
	}{
		{"read", 100, 0}, {"mixed", 95, 0}, {"churn", 0, 0},
		{"mixedBatch64", 95, 64}, {"churnBatch64", 0, 64},
	}

	table := stats.NewTable("workload", "workers", "ops/sec", "speedup")
	for _, sc := range scenarios {
		var base float64
		for _, workers := range []int{1, 2, 4, 8} {
			s, err := realloc.NewSharded(cfg.telOpts(realloc.WithEpsilon(0.25), realloc.WithShards(shards))...)
			if err != nil {
				return nil, err
			}
			// Seed every worker's population outside the timed region.
			streams := make([]*MixStream, workers)
			for w := range streams {
				streams[w] = NewMixStream(cfg.Seed+uint64(w)*977, w, targetVol, maxSize)
				if err := streams[w].Seed(s); err != nil {
					return nil, err
				}
			}
			perWorker := ops / workers
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			start := time.Now()
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(m *MixStream) {
					defer wg.Done()
					if sc.batch > 0 {
						for i := 0; i < perWorker; i++ {
							if err := m.StepBatched(s, sc.readPct, sc.batch); err != nil {
								errs <- err
								return
							}
						}
						if err := m.Flush(s); err != nil {
							errs <- err
						}
						return
					}
					for i := 0; i < perWorker; i++ {
						if err := m.Step(s, sc.readPct); err != nil {
							errs <- err
							return
						}
					}
				}(streams[w])
			}
			wg.Wait()
			elapsed := time.Since(start)
			close(errs)
			if err := <-errs; err != nil {
				return nil, fmt.Errorf("%s/%d workers: %w", sc.name, workers, err)
			}
			if err := s.Drain(); err != nil {
				return nil, err
			}
			if err := s.CheckInvariants(); err != nil {
				return nil, fmt.Errorf("%s/%d workers: %w", sc.name, workers, err)
			}
			wantLen := 0
			for _, m := range streams {
				wantLen += m.Live()
			}
			if got := s.Len(); got != wantLen {
				return nil, fmt.Errorf("%s/%d workers: len %d, want %d", sc.name, workers, got, wantLen)
			}
			rate := float64(perWorker*workers) / elapsed.Seconds()
			if workers == 1 {
				base = rate
			}
			speedup := rate / base
			table.Row(sc.name, workers, fmt.Sprintf("%.0f", rate), fmt.Sprintf("%.2fx", speedup))
			res.Findings[fmt.Sprintf("%s/%d/opsPerSec", sc.name, workers)] = rate
			res.Findings[fmt.Sprintf("%s/%d/speedup", sc.name, workers)] = speedup
		}
	}

	res.Text = fmt.Sprintf(
		"Workers replay %d total ops against one 8-shard reallocator;\n"+
			"uncontended routing is an atomic table load, per-object reads\n"+
			"take only the owning shard's read lock, and end states are\n"+
			"structurally verified after every run.\n\n%s",
		ops, table)
	return res, nil
}
