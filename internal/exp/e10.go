package exp

import (
	"fmt"

	"realloc/internal/core"
	"realloc/internal/stats"
	"realloc/internal/trace"
	"realloc/internal/workload"
)

// E10 runs the design-choice ablations DESIGN.md calls out: the internal
// buffer fraction eps' trades footprint slack against move volume, and the
// bounds must hold across qualitatively different size distributions
// (uniform, heavy-tailed, exact powers of two).
func E10(cfg Config) (*Result, error) {
	res := &Result{ID: "E10", Title: "Ablations", Findings: map[string]float64{}}
	ops := cfg.ops(15000)

	// Ablation 1: eps' under fixed eps=0.25.
	t1 := stats.NewTable("eps' (eps=0.25)", "max struct/V", "moves/op", "moved vol/op", "flushes")
	for _, div := range []float64{2, 4, 8, 16} {
		eps := 0.25
		m := trace.NewMetrics()
		r, err := core.New(core.Config{Epsilon: eps, EpsPrime: eps / div, Variant: core.Amortized, Recorder: m})
		if err != nil {
			return nil, err
		}
		churn := &workload.Churn{Seed: cfg.Seed + 10, Sizes: workload.Uniform{Min: 1, Max: 128}, TargetVolume: 30000}
		if err := drive(r, churn, ops); err != nil {
			return nil, err
		}
		movesPerOp := float64(m.MovesTotal) / float64(m.OpsTotal)
		volPerOp := float64(m.MovedVolume) / float64(m.OpsTotal)
		t1.Row(fmt.Sprintf("eps/%g", div), m.MaxStructRatio, movesPerOp, volPerOp, r.Flushes())
		res.Findings[fmt.Sprintf("epsPrime/%g/structRatio", div)] = m.MaxStructRatio
		res.Findings[fmt.Sprintf("epsPrime/%g/movedVolPerOp", div)] = volPerOp
	}

	// Ablation 2: size distributions under the default configuration.
	t2 := stats.NewTable("distribution", "max struct/V", "ratio unit", "ratio linear", "flushes")
	dists := []workload.SizeDist{
		workload.Uniform{Min: 1, Max: 256},
		workload.Pareto{Min: 1, Max: 4096, Alpha: 1.1},
		workload.PowersOfTwo{MinExp: 0, MaxExp: 10},
	}
	for _, d := range dists {
		m := trace.NewMetrics()
		r, err := core.New(core.Config{Epsilon: 0.25, Variant: core.Amortized, Recorder: m})
		if err != nil {
			return nil, err
		}
		churn := &workload.Churn{Seed: cfg.Seed + 11, Sizes: d, TargetVolume: 40000}
		if err := drive(r, churn, ops); err != nil {
			return nil, err
		}
		t2.Row(d.Name(), m.MaxStructRatio, m.Meter.Ratio("unit"), m.Meter.Ratio("linear"), r.Flushes())
		res.Findings["dist/"+d.Name()+"/structRatio"] = m.MaxStructRatio
		res.Findings["dist/"+d.Name()+"/unit"] = m.Meter.Ratio("unit")
	}

	res.Text = t1.String() + "\n" + t2.String() +
		"\nShape check: shrinking eps' tightens the footprint and raises moved\nvolume per op (the 1/eps' law); the footprint bound is insensitive to the\nsize distribution, including exact class boundaries.\n"
	return res, nil
}
