package exp

import (
	"fmt"

	"realloc/internal/btl"
	"realloc/internal/cost"
	"realloc/internal/stats"
	"realloc/internal/trace"
	"realloc/internal/workload"
)

// E11 is the end-to-end database scenario that motivated the paper (§1,
// §3.1): a block store runs a realistic block-update trace through the
// checkpointed translation layer, with periodic system checkpoints and a
// crash + verified recovery at the end. The trace is priced under the
// storage-media presets: one cost-blind run serves RAM, SSD, HDD, and
// tape models simultaneously.
func E11(cfg Config) (*Result, error) {
	res := &Result{ID: "E11", Title: "Database end-to-end", Findings: map[string]float64{}}
	ops := cfg.ops(12000)

	table := stats.NewTable("variant", "blocks", "updates", "footprint/V", "checkpoints", "ckpt/update", "recovery")
	media := stats.NewTable("variant", "medium", "alloc cost", "realloc cost", "ratio")
	for _, deam := range []bool{false, true} {
		name := "checkpointed"
		if deam {
			name = "deamortized"
		}
		m := trace.NewMetrics(cost.MediaFamily()...)
		store, err := btl.New(btl.Config{Epsilon: 0.25, Deamortized: deam, Recorder: m})
		if err != nil {
			return nil, err
		}
		gen := &workload.DBTrace{Seed: cfg.Seed + 11, Blocks: 400, MinBlock: 4, MaxBlock: 512}
		// DBTrace emits delete+insert pairs for updates; route them through
		// the store's named API to exercise the translation layer.
		names := map[int64]string{}
		updates := 0
		for i := 0; i < ops; i++ {
			op, ok := gen.Next()
			if !ok {
				break
			}
			if op.Insert {
				n := fmt.Sprintf("blk-%d", op.ID)
				names[int64(op.ID)] = n
				if err := store.Reserve(n, op.Size); err != nil {
					return nil, fmt.Errorf("%s put: %w", name, err)
				}
			} else {
				n := names[int64(op.ID)]
				if err := store.Drop(n); err != nil {
					return nil, fmt.Errorf("%s drop: %w", name, err)
				}
				delete(names, int64(op.ID))
			}
			updates++
			if i%500 == 499 {
				store.Checkpoint()
			}
		}
		ratio := 0.0
		if v := store.Volume(); v > 0 {
			ratio = float64(store.Footprint()) / float64(v)
		}
		store.Checkpoint()
		store.Crash()
		rep, err := store.Recover()
		recovery := "ok"
		if err != nil {
			recovery = err.Error()
		}
		ckptPerUpdate := float64(store.Checkpoints()) / float64(updates)
		table.Row(name, store.Len(), updates, ratio, store.Checkpoints(), ckptPerUpdate, recovery)
		for _, l := range m.Meter.Lines() {
			media.Row(name, l.Func, l.AllocCost, l.ReallocCost, l.Ratio)
			res.Findings[name+"/"+l.Func+"/ratio"] = l.Ratio
		}
		res.Findings[name+"/footprintRatio"] = ratio
		res.Findings[name+"/ckptPerUpdate"] = ckptPerUpdate
		res.Findings[name+"/recoveredOK"] = boolTo01(err == nil && len(rep.Corrupt) == 0)
		res.Findings[name+"/recovered"] = float64(rep.Recovered)
	}
	res.Text = table.String() + "\n" + media.String() +
		"\nShape check: the disk footprint stays within (1+eps) of the live block\nvolume through heavy update churn; the same cost-blind run is\nsimultaneously competitive under RAM, SSD, HDD, and tape cost models; and\nafter a crash, recovery from the durable translation map finds every\nmapped block's data intact (the checkpoint rule at work).\n"
	return res, nil
}
