package exp

import (
	"fmt"
	"math/rand/v2"

	"realloc/internal/addrspace"
	"realloc/internal/defrag"
	"realloc/internal/stats"
)

// fragmentedSpace builds a deterministic fragmented allocation: n objects
// with heavy-tailed sizes, placed in random order with ⌊epsSlack·V⌋ total
// hole volume scattered between them, so the footprint is (1+epsSlack)·V.
func fragmentedSpace(seed uint64, n int, epsSlack float64) (*addrspace.Space, int64) {
	rng := rand.New(rand.NewPCG(seed, 0xf4a6))
	sizes := make([]int64, n)
	var vol int64
	for i := range sizes {
		sizes[i] = 1 + rng.Int64N(64)
		if rng.IntN(20) == 0 {
			sizes[i] = 64 + rng.Int64N(192)
		}
		vol += sizes[i]
	}
	gapBudget := int64(epsSlack * float64(vol))
	sp := addrspace.New(addrspace.RAM())
	pos := int64(0)
	for i, s := range sizes {
		if gapBudget > 0 && rng.IntN(3) == 0 {
			g := 1 + rng.Int64N(gapBudget/4+1)
			if g > gapBudget {
				g = gapBudget
			}
			pos += g
			gapBudget -= g
		}
		if err := sp.Place(addrspace.ID(i+1), addrspace.Extent{Start: pos, Size: s}); err != nil {
			panic(err) // deterministic construction cannot collide
		}
		pos += s
	}
	return sp, vol
}

// E5 exercises the Theorem 2.7 defragmenter: sorting a fragmented volume
// by object ID within (1+eps)·V + ∆ space, against the naïve 2·V-space
// defragmenter.
func E5(cfg Config) (*Result, error) {
	res := &Result{ID: "E5", Title: "Cost-oblivious defragmentation", Findings: map[string]float64{}}
	n := cfg.ops(4000) / 2
	less := func(a, b addrspace.ID) bool { return a < b }
	table := stats.NewTable("eps", "defragmenter", "V", "space budget", "peak footprint", "peak/V", "moves/object (mean)", "moves/object (max)")
	for _, eps := range []float64{0.5, 0.25, 0.1} {
		sp, vol := fragmentedSpace(cfg.Seed+5, n, eps*0.9)
		st, err := defrag.Sort(sp, less, eps)
		if err != nil {
			return nil, fmt.Errorf("defrag.Sort(eps=%g): %w", eps, err)
		}
		if err := verifySorted(sp, less); err != nil {
			return nil, err
		}
		table.Row(eps, "cost-oblivious", st.Volume, st.SpaceBudget, st.PeakFootprint,
			float64(st.PeakFootprint)/float64(vol), st.MeanMovesPerObject, st.MaxMovesPerObject)
		res.Findings[fmt.Sprintf("%g/peakOverV", eps)] = float64(st.PeakFootprint) / float64(vol)
		res.Findings[fmt.Sprintf("%g/meanMoves", eps)] = st.MeanMovesPerObject
		res.Findings[fmt.Sprintf("%g/budgetOK", eps)] = boolTo01(st.PeakFootprint <= st.SpaceBudget)

		nsp, nvol := fragmentedSpace(cfg.Seed+5, n, eps*0.9)
		nst, err := defrag.NaiveSort(nsp, less)
		if err != nil {
			return nil, fmt.Errorf("defrag.NaiveSort: %w", err)
		}
		if err := verifySorted(nsp, less); err != nil {
			return nil, err
		}
		table.Row(eps, "naive-2V", nst.Volume, nst.SpaceBudget, nst.PeakFootprint,
			float64(nst.PeakFootprint)/float64(nvol), nst.MeanMovesPerObject, nst.MaxMovesPerObject)
		res.Findings[fmt.Sprintf("%g/naivePeakOverV", eps)] = float64(nst.PeakFootprint) / float64(nvol)
	}
	res.Text = table.String() +
		"\nShape check: the cost-oblivious defragmenter's peak stays within\n(1+eps)V+Delta (ratio ~1+eps) while the naive defragmenter needs ~2V; its\nprice is O((1/eps)log(1/eps)) moves per object instead of 2.\n"
	return res, nil
}

// verifySorted checks that the space's objects are contiguously packed in
// ascending less-order.
func verifySorted(sp *addrspace.Space, less func(a, b addrspace.ID) bool) error {
	var prev addrspace.ID
	first := true
	var err error
	sp.ForEach(func(id addrspace.ID, ext addrspace.Extent) {
		if err != nil {
			return
		}
		if !first && less(id, prev) {
			err = fmt.Errorf("defrag result out of order: %d before %d", prev, id)
		}
		prev = id
		first = false
	})
	return err
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
