package cost

// Storage-medium presets. Cells are 4KiB units and costs are microseconds
// of device time — the absolute scale is irrelevant to competitive ratios,
// but the *shapes* match the media the paper discusses:
//
//   - RAM: pure bandwidth, linear in the object size.
//   - HDD: a multi-millisecond positioning cost dominates small transfers;
//     bandwidth dominates large ones (affine).
//   - SSD: no seek arm, but a fixed per-command overhead and a high
//     transfer rate (affine with a much smaller constant).
//   - ArchivalTape: positioning so dominant that transfer time is nearly
//     irrelevant below huge sizes (max of a large constant and a slow
//     stream rate).
//
// All presets are monotonically increasing and subadditive, hence inside
// the class Fsa the reallocator is competitive against.

// RAM prices a move at ~0.01us per 4KiB cell (10 GB/s memcpy).
func RAM() Func {
	return New("ram", func(w int64) float64 { return 0.01 * float64(w) })
}

// HDD prices a move at 8ms positioning + ~25us per cell (160 MB/s).
func HDD() Func {
	return New("hdd", func(w int64) float64 { return 8000 + 25*float64(w) })
}

// SSD prices a move at 80us command overhead + ~2us per cell (2 GB/s).
func SSD() Func {
	return New("ssd", func(w int64) float64 { return 80 + 2*float64(w) })
}

// ArchivalTape prices a move at max(40s positioning, 10us/cell stream).
func ArchivalTape() Func {
	return New("tape", func(w int64) float64 {
		if stream := 10 * float64(w); stream > 4e7 {
			return stream
		}
		return 4e7
	})
}

// MediaFamily returns the four medium presets; price any run under all of
// them to see the same algorithm serve RAM and tape alike.
func MediaFamily() []Func {
	return []Func{RAM(), HDD(), SSD(), ArchivalTape()}
}
