package cost

import "testing"

func TestMediaPresetsAreSubadditive(t *testing.T) {
	for _, f := range MediaFamily() {
		res := Check(f, 1<<22)
		if !res.Ok() {
			t.Errorf("%s failed subadditivity/monotonicity: %+v", f.Name(), res)
		}
	}
}

func TestMediaPresetShapes(t *testing.T) {
	// HDD: positioning dominates a one-cell move; bandwidth dominates a
	// million-cell move.
	hdd := HDD()
	if hdd.Cost(1) < 8000 || hdd.Cost(1) > 8100 {
		t.Errorf("hdd small move = %v", hdd.Cost(1))
	}
	if hdd.Cost(1<<20)/hdd.Cost(1) < 1000 {
		t.Error("hdd large move should be bandwidth-dominated")
	}
	// SSD beats HDD on small I/O by orders of magnitude.
	if SSD().Cost(1) > hdd.Cost(1)/10 {
		t.Error("ssd should be much cheaper than hdd for small moves")
	}
	// RAM is linear.
	ram := RAM()
	if ram.Cost(200) != 2*ram.Cost(100) {
		t.Error("ram not linear")
	}
	// Tape: positioning dominates until very large sizes.
	tape := ArchivalTape()
	if tape.Cost(1) != tape.Cost(1000) {
		t.Error("tape small moves should be positioning-only")
	}
	if tape.Cost(1<<40) <= tape.Cost(1) {
		t.Error("tape must eventually stream")
	}
	// Names are distinct (they key metrics tables).
	seen := map[string]bool{}
	for _, f := range MediaFamily() {
		if seen[f.Name()] {
			t.Errorf("duplicate preset name %q", f.Name())
		}
		seen[f.Name()] = true
	}
}
