package cost

import (
	"fmt"
	"slices"
	"strings"
)

// Meter prices an allocation/reallocation event stream under a family of
// cost functions simultaneously. The algorithm under test drives the meter
// through Alloc and Move calls but can never read the accumulated costs,
// which preserves cost obliviousness by construction.
type Meter struct {
	funcs []Func
	// alloc[i], realloc[i] accumulate the cost under funcs[i].
	alloc   []float64
	realloc []float64
	// maxOp[i] is the largest single-operation reallocation cost observed
	// under funcs[i]; opCur accumulates within the current operation.
	maxOp []float64
	opCur []float64

	allocVolume   int64
	reallocVolume int64
	allocOps      int64
	moveOps       int64
	maxOpVolume   int64
	opCurVolume   int64
}

// NewMeter creates a meter over the given cost family. With no arguments it
// uses StandardFamily.
func NewMeter(funcs ...Func) *Meter {
	if len(funcs) == 0 {
		funcs = StandardFamily()
	}
	n := len(funcs)
	return &Meter{
		funcs:   funcs,
		alloc:   make([]float64, n),
		realloc: make([]float64, n),
		maxOp:   make([]float64, n),
		opCur:   make([]float64, n),
	}
}

// Alloc records the initial allocation of a size-w object. Allocation cost
// is the denominator of the paper's competitive ratio: a reallocator is
// b-cost-competitive when realloc cost <= b * alloc cost.
func (m *Meter) Alloc(w int64) {
	for i, f := range m.funcs {
		m.alloc[i] += f.Cost(w)
	}
	m.allocVolume += w
	m.allocOps++
}

// Move records the reallocation of a size-w object.
func (m *Meter) Move(w int64) {
	for i, f := range m.funcs {
		c := f.Cost(w)
		m.realloc[i] += c
		m.opCur[i] += c
	}
	m.reallocVolume += w
	m.opCurVolume += w
	m.moveOps++
}

// EndOp closes the current insert/delete request for worst-case-per-op
// accounting (Lemma 3.6 measures the maximum reallocation cost charged to
// a single request).
func (m *Meter) EndOp() {
	for i := range m.funcs {
		if m.opCur[i] > m.maxOp[i] {
			m.maxOp[i] = m.opCur[i]
		}
		m.opCur[i] = 0
	}
	if m.opCurVolume > m.maxOpVolume {
		m.maxOpVolume = m.opCurVolume
	}
	m.opCurVolume = 0
}

// Ratio returns realloc/alloc cost under cost function name. It returns 0
// when no allocations have been recorded.
func (m *Meter) Ratio(name string) float64 {
	for i, f := range m.funcs {
		if f.Name() == name {
			if m.alloc[i] == 0 {
				return 0
			}
			return m.realloc[i] / m.alloc[i]
		}
	}
	return 0
}

// Funcs returns the cost family the meter prices.
func (m *Meter) Funcs() []Func { return m.funcs }

// Line summarizes one cost function's accounting.
type Line struct {
	Func         string
	AllocCost    float64
	ReallocCost  float64
	Ratio        float64 // ReallocCost / AllocCost
	MaxOpCost    float64 // worst single-request reallocation cost
	MaxOpOverF1  float64 // MaxOpCost normalized by f(1), for Lemma 3.6 shape checks
	ReallocMoves int64
}

// Lines returns one summary per cost function, sorted by function name for
// stable output.
func (m *Meter) Lines() []Line {
	return m.AppendLines(make([]Line, 0, len(m.funcs)))
}

// AppendLines appends one summary per cost function to dst and returns
// the extended slice, allocating nothing when dst has capacity — the
// allocation-free form of Lines for monitoring loops. The appended run
// is sorted by function name; dst's existing contents are untouched.
func (m *Meter) AppendLines(dst []Line) []Line {
	base := len(dst)
	out := dst
	for i, f := range m.funcs {
		l := Line{
			Func:         f.Name(),
			AllocCost:    m.alloc[i],
			ReallocCost:  m.realloc[i],
			MaxOpCost:    m.maxOp[i],
			ReallocMoves: m.moveOps,
		}
		if m.alloc[i] > 0 {
			l.Ratio = m.realloc[i] / m.alloc[i]
		}
		if f1 := f.Cost(1); f1 > 0 {
			l.MaxOpOverF1 = m.maxOp[i] / f1
		}
		out = append(out, l)
	}
	run := out[base:]
	slices.SortFunc(run, func(a, b Line) int { return strings.Compare(a.Func, b.Func) })
	return out
}

// AllocVolume returns the total volume allocated.
func (m *Meter) AllocVolume() int64 { return m.allocVolume }

// ReallocVolume returns the total volume moved.
func (m *Meter) ReallocVolume() int64 { return m.reallocVolume }

// MaxOpVolume returns the largest volume moved within one request.
func (m *Meter) MaxOpVolume() int64 { return m.maxOpVolume }

// Moves returns the total number of object moves recorded.
func (m *Meter) Moves() int64 { return m.moveOps }

// Allocs returns the total number of allocations recorded.
func (m *Meter) Allocs() int64 { return m.allocOps }

// String renders a compact multi-line summary.
func (m *Meter) String() string {
	s := ""
	for _, l := range m.Lines() {
		s += fmt.Sprintf("%-16s alloc=%12.1f realloc=%12.1f ratio=%6.3f maxOp=%10.1f\n",
			l.Func, l.AllocCost, l.ReallocCost, l.Ratio, l.MaxOpCost)
	}
	return s
}
