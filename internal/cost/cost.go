// Package cost models allocation/reallocation cost functions and provides
// machinery to price a reallocation trace under many cost functions at once.
//
// The paper's central premise is that the reallocator must be competitive
// for every monotonically increasing, subadditive cost function f: moving
// (or initially allocating) a size-w object costs f(w). Because faithful
// storage cost models are hard to come by (seek-dominated small transfers,
// bandwidth-dominated large transfers, cache effects), the algorithm never
// sees f. This package therefore lives entirely on the measurement side:
// algorithms emit move events, and a Meter prices the same event stream
// under a whole family of cost functions simultaneously.
package cost

import (
	"fmt"
	"math"
	"sort"
)

// Func is a cost function on object sizes. Implementations must be
// monotonically increasing and subadditive (f(x+y) <= f(x)+f(y)) on the
// positive integers for the paper's guarantees to apply; Check verifies
// both properties empirically.
type Func interface {
	// Cost returns the cost of allocating or moving an object of size w.
	// Cost must be positive for all w >= 1.
	Cost(w int64) float64
	// Name returns a short identifier used in tables and benchmarks.
	Name() string
}

// funcImpl is the standard Func implementation backed by a closure.
type funcImpl struct {
	name string
	fn   func(int64) float64
}

func (f funcImpl) Cost(w int64) float64 { return f.fn(w) }
func (f funcImpl) Name() string         { return f.name }

// New builds a Func from a name and a closure.
func New(name string, fn func(int64) float64) Func {
	return funcImpl{name: name, fn: fn}
}

// Unit is the constant cost function f(w) = 1: moving any object costs one
// seek. This models small random I/O on rotating disks where seek time
// dominates transfer time.
func Unit() Func { return funcImpl{"unit", func(int64) float64 { return 1 }} }

// Linear is f(w) = w: cost proportional to object size. This models RAM
// copies and bandwidth-dominated transfers.
func Linear() Func { return funcImpl{"linear", func(w int64) float64 { return float64(w) }} }

// Affine is f(w) = seek + bw*w: a fixed positioning cost plus a transfer
// cost. This is the classic disk model (seek + size/bandwidth) and is
// subadditive for any seek, bw >= 0.
func Affine(seek, bw float64) Func {
	name := fmt.Sprintf("affine(%g+%gw)", seek, bw)
	return funcImpl{name, func(w int64) float64 { return seek + bw*float64(w) }}
}

// Sqrt is f(w) = sqrt(w), a concave (hence subadditive) cost capturing
// strongly sublinear transfer economics.
func Sqrt() Func { return funcImpl{"sqrt", func(w int64) float64 { return math.Sqrt(float64(w)) }} }

// Log is f(w) = 1 + log2(1+w), concave and subadditive; an extreme model
// where large transfers are almost free per byte.
func Log() Func {
	return funcImpl{"log", func(w int64) float64 { return 1 + math.Log2(1+float64(w)) }}
}

// MaxSeekBandwidth is f(w) = max(seek, w/bandwidthCells): the transfer is
// either dominated by positioning or by streaming, whichever is larger.
// The max of subadditive functions that each pass through the origin region
// this way is subadditive.
func MaxSeekBandwidth(seek float64, bandwidthCells float64) Func {
	name := fmt.Sprintf("max(%g,w/%g)", seek, bandwidthCells)
	return funcImpl{name, func(w int64) float64 {
		return math.Max(seek, float64(w)/bandwidthCells)
	}}
}

// Capped is f(w) = min(w, cap): linear up to a ceiling. Monotone and
// subadditive; models transfers that saturate (e.g., a fixed-size DMA
// window).
func Capped(capAt float64) Func {
	name := fmt.Sprintf("capped(%g)", capAt)
	return funcImpl{name, func(w int64) float64 { return math.Min(float64(w), capAt) }}
}

// Quadratic is f(w) = w^2. It is superadditive, NOT subadditive; it exists
// so tests can demonstrate that Check rejects it and that the paper's
// guarantees are allowed to fail outside the class Fsa.
func Quadratic() Func {
	return funcImpl{"quadratic", func(w int64) float64 { f := float64(w); return f * f }}
}

// StandardFamily returns the set of subadditive cost functions used across
// the experiment suite. The family deliberately spans the extremes the
// paper discusses: unit (seek-bound), linear (bandwidth-bound), and several
// intermediate shapes.
func StandardFamily() []Func {
	return []Func{
		Unit(),
		Linear(),
		Affine(64, 1),
		Sqrt(),
		Log(),
		MaxSeekBandwidth(32, 4),
	}
}

// CheckResult reports the outcome of a subadditivity/monotonicity check.
type CheckResult struct {
	Monotone    bool
	Subadditive bool
	// Witness holds (x, y) violating subadditivity or (x) violating
	// monotonicity when the corresponding flag is false.
	WitnessX, WitnessY int64
}

// Ok reports whether the function passed both checks.
func (r CheckResult) Ok() bool { return r.Monotone && r.Subadditive }

// Check empirically verifies that f is monotonically increasing (weakly)
// and subadditive on [1, maxW]. It is exhaustive over a deterministic grid
// plus all pairs of a logarithmic ladder, which catches every practical
// violation without an O(maxW^2) scan.
func Check(f Func, maxW int64) CheckResult {
	res := CheckResult{Monotone: true, Subadditive: true}
	if maxW < 2 {
		maxW = 2
	}
	// Monotonicity on a dense prefix and a logarithmic ladder.
	prev := f.Cost(1)
	if prev <= 0 {
		res.Monotone = false
		res.WitnessX = 1
		return res
	}
	limit := int64(4096)
	if maxW < limit {
		limit = maxW
	}
	for w := int64(2); w <= limit; w++ {
		c := f.Cost(w)
		if c < prev-1e-12 {
			res.Monotone = false
			res.WitnessX = w
			return res
		}
		prev = c
	}
	ladder := ladderTo(maxW)
	for i := 1; i < len(ladder); i++ {
		if f.Cost(ladder[i]) < f.Cost(ladder[i-1])-1e-12 {
			res.Monotone = false
			res.WitnessX = ladder[i]
			return res
		}
	}
	// Subadditivity on all ladder pairs and a dense small grid.
	checkPair := func(x, y int64) bool {
		if x+y > maxW {
			return true
		}
		return f.Cost(x+y) <= f.Cost(x)+f.Cost(y)+1e-9
	}
	for _, x := range ladder {
		for _, y := range ladder {
			if !checkPair(x, y) {
				res.Subadditive = false
				res.WitnessX, res.WitnessY = x, y
				return res
			}
		}
	}
	small := limit
	if small > 128 {
		small = 128
	}
	for x := int64(1); x <= small; x++ {
		for y := x; y <= small; y++ {
			if !checkPair(x, y) {
				res.Subadditive = false
				res.WitnessX, res.WitnessY = x, y
				return res
			}
		}
	}
	return res
}

// ladderTo returns 1, 2, 3, 4, 6, 8, 12, 16, ... up to maxW: powers of two
// and their midpoints, which probe the class boundaries used by the
// reallocator.
func ladderTo(maxW int64) []int64 {
	var out []int64
	seen := map[int64]bool{}
	add := func(v int64) {
		if v >= 1 && v <= maxW && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for p := int64(1); p > 0 && p <= maxW; p *= 2 {
		add(p)
		add(p + p/2)
		add(p - 1)
		add(p + 1)
	}
	add(maxW)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
