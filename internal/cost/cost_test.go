package cost

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestFunctionValues(t *testing.T) {
	cases := []struct {
		f    Func
		w    int64
		want float64
	}{
		{Unit(), 1, 1},
		{Unit(), 1 << 20, 1},
		{Linear(), 7, 7},
		{Affine(10, 2), 5, 20},
		{Sqrt(), 16, 4},
		{Capped(100), 50, 50},
		{Capped(100), 500, 100},
		{MaxSeekBandwidth(32, 4), 4, 32},
		{MaxSeekBandwidth(32, 4), 400, 100},
		{Quadratic(), 3, 9},
	}
	for _, c := range cases {
		if got := c.f.Cost(c.w); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s(%d) = %v, want %v", c.f.Name(), c.w, got, c.want)
		}
	}
	if Log().Cost(1) <= 1 {
		t.Error("log cost at 1 should exceed 1")
	}
}

func TestStandardFamilyIsSubadditive(t *testing.T) {
	for _, f := range StandardFamily() {
		res := Check(f, 1<<16)
		if !res.Ok() {
			t.Errorf("%s failed check: %+v", f.Name(), res)
		}
	}
}

func TestCheckRejectsQuadratic(t *testing.T) {
	res := Check(Quadratic(), 1<<10)
	if res.Subadditive {
		t.Fatal("quadratic should fail subadditivity")
	}
	if res.Monotone == false {
		t.Fatal("quadratic is monotone; only subadditivity should fail")
	}
	if res.WitnessX <= 0 || res.WitnessY <= 0 {
		t.Fatalf("missing witness: %+v", res)
	}
	// The witness must actually violate subadditivity.
	q := Quadratic()
	if q.Cost(res.WitnessX+res.WitnessY) <= q.Cost(res.WitnessX)+q.Cost(res.WitnessY) {
		t.Fatalf("witness (%d,%d) does not violate", res.WitnessX, res.WitnessY)
	}
}

func TestCheckRejectsNonMonotone(t *testing.T) {
	f := New("sawtooth", func(w int64) float64 {
		if w%2 == 0 {
			return float64(w) / 2
		}
		return float64(w)
	})
	res := Check(f, 1<<10)
	if res.Monotone {
		t.Fatal("sawtooth should fail monotonicity")
	}
}

func TestCheckRejectsNonPositive(t *testing.T) {
	f := New("zero", func(int64) float64 { return 0 })
	if res := Check(f, 100); res.Monotone {
		t.Fatal("zero-cost function must be rejected")
	}
}

// TestSubadditivityProperty verifies every standard function on random
// pairs, independent of Check's grid.
func TestSubadditivityProperty(t *testing.T) {
	for _, f := range StandardFamily() {
		f := f
		err := quick.Check(func(a, b uint32) bool {
			x := int64(a%100000) + 1
			y := int64(b%100000) + 1
			return f.Cost(x+y) <= f.Cost(x)+f.Cost(y)+1e-9
		}, &quick.Config{MaxCount: 500})
		if err != nil {
			t.Errorf("%s: %v", f.Name(), err)
		}
	}
}

// TestSubadditiveImpliesLinearBound checks f(w) <= w*f(1), the inequality
// the deamortized worst-case bound relies on.
func TestSubadditiveImpliesLinearBound(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, f := range StandardFamily() {
		f1 := f.Cost(1)
		for i := 0; i < 200; i++ {
			w := 1 + rng.Int64N(1<<20)
			if f.Cost(w) > float64(w)*f1+1e-6 {
				t.Errorf("%s: f(%d)=%v > w*f(1)=%v", f.Name(), w, f.Cost(w), float64(w)*f1)
				break
			}
		}
	}
}

func TestMeterAccounting(t *testing.T) {
	m := NewMeter(Unit(), Linear())
	m.Alloc(10)
	m.Alloc(20)
	m.Move(10)
	m.Move(10)
	m.EndOp()
	m.Move(20)
	m.EndOp()

	if m.AllocVolume() != 30 || m.ReallocVolume() != 40 {
		t.Fatalf("volumes: alloc=%d realloc=%d", m.AllocVolume(), m.ReallocVolume())
	}
	if m.Allocs() != 2 || m.Moves() != 3 {
		t.Fatalf("counts: allocs=%d moves=%d", m.Allocs(), m.Moves())
	}
	// unit: alloc 2, realloc 3 -> 1.5; linear: alloc 30, realloc 40 -> 4/3.
	if got := m.Ratio("unit"); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("unit ratio = %v", got)
	}
	if got := m.Ratio("linear"); math.Abs(got-40.0/30) > 1e-9 {
		t.Fatalf("linear ratio = %v", got)
	}
	if got := m.Ratio("nope"); got != 0 {
		t.Fatalf("unknown function ratio = %v", got)
	}
	// Worst op under linear: first op moved 20, second 20 -> max 20.
	for _, l := range m.Lines() {
		switch l.Func {
		case "linear":
			if l.MaxOpCost != 20 {
				t.Fatalf("linear maxOp = %v", l.MaxOpCost)
			}
		case "unit":
			if l.MaxOpCost != 2 {
				t.Fatalf("unit maxOp = %v", l.MaxOpCost)
			}
		}
	}
	if m.MaxOpVolume() != 20 {
		t.Fatalf("maxOpVolume = %d", m.MaxOpVolume())
	}
	if m.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestMeterDefaultsToStandardFamily(t *testing.T) {
	m := NewMeter()
	if len(m.Funcs()) != len(StandardFamily()) {
		t.Fatalf("default family size %d", len(m.Funcs()))
	}
	m.Alloc(5)
	if m.Ratio("unit") != 0 {
		t.Fatal("no moves yet, ratio should be 0")
	}
	lines := m.Lines()
	if len(lines) != len(StandardFamily()) {
		t.Fatalf("lines = %d", len(lines))
	}
	for i := 1; i < len(lines); i++ {
		if lines[i-1].Func > lines[i].Func {
			t.Fatal("lines not sorted by function name")
		}
	}
}

func TestLadder(t *testing.T) {
	l := ladderTo(100)
	seen := map[int64]bool{}
	for _, v := range l {
		if v < 1 || v > 100 {
			t.Fatalf("ladder value %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("duplicate ladder value %d", v)
		}
		seen[v] = true
	}
	for _, want := range []int64{1, 2, 4, 64, 96, 100} {
		if !seen[want] {
			t.Fatalf("ladder missing %d: %v", want, l)
		}
	}
}
