package addrspace

import (
	"fmt"
	"slices"
)

// This file implements batched move-plan execution: the flush hot path.
//
// A buffer flush relocates nearly every object of the flushed suffix, and
// executing it through Move would pay a sorted-slice rotation per object —
// O(m·n) bookkeeping for an O(m)-volume flush. ApplyMoves instead validates
// the whole plan once, tracks the footprint trajectory with lazy max-heaps,
// and rebuilds the touched slice of the byStart index in a single merge
// pass: O(n + m log m) total, while producing byte-for-byte the same
// observable sequence (per-move footprints, checkpoints, blocked-write and
// move counters, cell stamps) as the per-move path. The per-move path
// remains the reference semantics; the differential tests in core and the
// cross-check tests here drive both and assert equality.
//
// All per-object working state is held in dense slices indexed by the
// caller-assigned Relocation.Ref — flush schedules know every object's
// position in their payload/buffered lists, so the executor runs without
// hashing, and its scratch is reused across calls: steady-state flushes
// allocate nothing.

// Relocation is one step of a move plan: relocate ID so that it starts at
// To. A plan may relocate the same object several times (flush schedules
// park objects in the overflow segment before placing them); every step of
// the same object must carry the same Ref, a caller-assigned dense handle
// in [0, maxRef) unique to that object within the plan.
type Relocation struct {
	ID  ID
	To  int64
	Ref int32
}

// MoveResult describes one applied relocation, in plan order. Footprint is
// MaxEnd after the relocation and PreFootprint before it; Checkpointed
// reports that the relocation blocked on freed-since-checkpoint space and
// a checkpoint was taken (and counted) immediately before it.
type MoveResult struct {
	ID           ID
	Size         int64
	From, To     int64
	Footprint    int64
	PreFootprint int64
	Checkpointed bool
}

// batchState holds the dense scratch ApplyMoves reuses across calls.
// Slices indexed by Ref are cleared lazily via the touched list.
type batchState struct {
	ids       []ID // 0 = ref unbound
	initStart []int64
	curStart  []int64
	size      []int64
	seen      []bool
	everMoved []bool
	touched   []int32
	oldSteps  []int64 // pre-step start per consumed plan entry
	finals    []placement
	oldStarts []int64     // pre-batch starts of net-moved objects, sorted
	newEnds   []endEntry  // max-heap: current ends of moved objects (lazy)
	goneTops  []int64     // max-heap: pre-batch starts of moved objects
	suffix    []placement // flattened index suffix from the cut point
	merged    []placement

	// Session chunk scratch (see MoveSession.Advance): per-ref chunk
	// epochs and entry positions at chunk start, plus the deletion and
	// insertion lists of the chunk-end index reconciliation.
	chunkEpoch []int32
	chunkFrom  []int64
	chunkRefs  []int32
	chunkDels  []int64
	chunkIns   []placement
}

// endEntry is one newEnds element: a (possibly stale) object end.
type endEntry struct {
	ref int32
	end int64
}

func (s *Space) batchState(maxRef int) *batchState {
	if s.batch == nil {
		s.batch = &batchState{}
	}
	b := s.batch
	for _, ref := range b.touched {
		b.ids[ref] = 0
		b.seen[ref] = false
		b.everMoved[ref] = false
		b.chunkEpoch[ref] = 0
	}
	b.touched = b.touched[:0]
	if len(b.ids) < maxRef {
		b.ids = slices.Grow(b.ids[:0], maxRef)[:maxRef]
		b.initStart = slices.Grow(b.initStart[:0], maxRef)[:maxRef]
		b.curStart = slices.Grow(b.curStart[:0], maxRef)[:maxRef]
		b.size = slices.Grow(b.size[:0], maxRef)[:maxRef]
		b.seen = slices.Grow(b.seen[:0], maxRef)[:maxRef]
		b.everMoved = slices.Grow(b.everMoved[:0], maxRef)[:maxRef]
		b.chunkEpoch = slices.Grow(b.chunkEpoch[:0], maxRef)[:maxRef]
		b.chunkFrom = slices.Grow(b.chunkFrom[:0], maxRef)[:maxRef]
	}
	b.oldSteps = b.oldSteps[:0]
	b.finals = b.finals[:0]
	b.oldStarts = b.oldStarts[:0]
	b.newEnds = b.newEnds[:0]
	b.goneTops = b.goneTops[:0]
	return b
}

// ApplyMoves executes plan in order, stopping early once the applied
// (non-no-op) volume reaches budget: entries keep being consumed while the
// volume applied so far is below budget, exactly mirroring a quota-driven
// loop over Move. maxRef bounds the plan's Ref handles. It returns how
// many plan entries were consumed and the volume they moved.
//
// finalOrder, if non-nil, lists refs in ascending order of their final
// position, letting the index rebuild skip its sort; refs that never
// appear in the consumed prefix are ignored, so a plan resumed mid-way can
// keep passing the full plan's ordering as long as it runs to the end.
// Pass nil when a budget may cut the plan short of its final layout.
//
// The whole consumed prefix is validated before anything mutates: unknown
// objects, ref misuse, bad targets, strict-rule self-overlaps, and any
// overlap in the resulting layout (moved targets against each other and
// against unmoved objects) fail the call with the Space untouched.
// Intermediate layouts are the caller's responsibility — flush schedules
// guarantee them by construction, and WithInvariantChecks cross-checks
// every batch against a full substrate Verify.
//
// Under the checkpoint rule, a relocation whose target intersects space
// freed since the last checkpoint counts a blocked write, takes (and
// counts) a checkpoint, and proceeds — the same transparent blocking the
// per-move path implements by retrying Move.
//
// emit, if non-nil, observes every applied relocation in order with exact
// per-move footprints. Object positions (Extent) are visible to it exactly
// as the per-move path would show them — in particular the checkpoint
// hooks of a block translation layer snapshot correct addresses — but
// index-derived queries (MaxEnd, ForEach, further mutations) are off
// limits inside the callback: the index is rebuilt after the walk.
//
// Quota-bounded flush plans that span many requests should use BeginMoves
// instead: a session validates once and advances chunk by chunk without
// re-flattening the index suffix per chunk.
func (s *Space) ApplyMoves(plan []Relocation, maxRef int, finalOrder []int32, budget int64, emit func(MoveResult)) (consumed int, volume int64, err error) {
	if len(plan) == 0 || budget <= 0 {
		return 0, 0, nil
	}
	if s.session != nil {
		return 0, 0, fmt.Errorf("addrspace: ApplyMoves while a move session is active")
	}
	b, consumed, cutPos, _, err := s.simulatePlan(plan, maxRef, finalOrder, budget)
	if err != nil {
		return 0, 0, err
	}
	volume = s.executeBulk(plan, b, consumed, cutPos, emit)
	return consumed, volume, nil
}

// simulatePlan is the validation pass shared by ApplyMoves and BeginMoves:
// it simulates the prefix of plan that a quota of budget volume consumes,
// builds the net final layout (b.finals) and the merged index suffix
// (b.merged) from the cut position on, and validates the whole result —
// ref misuse, bad targets, strict-rule self-overlaps, and any overlap in
// the final layout fail the call with the Space untouched. It returns the
// populated scratch, the number of consumed plan entries, the index cut
// position, and the volume the consumed prefix applies.
func (s *Space) simulatePlan(plan []Relocation, maxRef int, finalOrder []int32, budget int64) (b *batchState, consumed int, cutPos pos, volume int64, err error) {
	b = s.batchState(maxRef)

	// Pass 1: simulate and validate the consumed prefix.
	var vol int64
	for _, mv := range plan {
		if vol >= budget {
			break
		}
		if mv.Ref < 0 || int(mv.Ref) >= maxRef {
			return nil, 0, pos{}, 0, fmt.Errorf("addrspace: relocation ref %d out of range [0,%d)", mv.Ref, maxRef)
		}
		if b.ids[mv.Ref] == 0 {
			ext, ok := s.objects[mv.ID]
			if !ok {
				return nil, 0, pos{}, 0, fmt.Errorf("%w: %d", ErrUnknownObject, mv.ID)
			}
			b.ids[mv.Ref] = mv.ID
			b.initStart[mv.Ref] = ext.Start
			b.curStart[mv.Ref] = ext.Start
			b.size[mv.Ref] = ext.Size
			b.touched = append(b.touched, mv.Ref)
		} else if b.ids[mv.Ref] != mv.ID {
			return nil, 0, pos{}, 0, fmt.Errorf("addrspace: ref %d bound to object %d, reused for %d", mv.Ref, b.ids[mv.Ref], mv.ID)
		}
		old := Extent{Start: b.curStart[mv.Ref], Size: b.size[mv.Ref]}
		b.oldSteps = append(b.oldSteps, old.Start)
		if mv.To == old.Start {
			continue
		}
		target := Extent{Start: mv.To, Size: old.Size}
		if target.Start < 0 {
			return nil, 0, pos{}, 0, fmt.Errorf("%w: %v", ErrBadExtent, target)
		}
		if s.opts.StrictNonOverlap && target.Overlaps(old) {
			return nil, 0, pos{}, 0, fmt.Errorf("%w: %v vs %v", ErrSelfOverlap, target, old)
		}
		b.curStart[mv.Ref] = target.Start
		vol += target.Size
	}
	consumed = len(b.oldSteps)

	// The net result of the consumed prefix: objects whose final start
	// differs from their current one. Objects a plan moves and later moves
	// back keep their index entry.
	if finalOrder != nil {
		prevStart := int64(-1)
		matched := 0
		for _, ref := range finalOrder {
			if int(ref) >= maxRef || b.ids[ref] == 0 {
				continue // not part of the consumed prefix
			}
			if b.seen[ref] {
				return nil, 0, pos{}, 0, fmt.Errorf("addrspace: ref %d listed twice in final order", ref)
			}
			b.seen[ref] = true
			matched++
			if b.curStart[ref] == b.initStart[ref] {
				continue
			}
			if b.curStart[ref] < prevStart {
				return nil, 0, pos{}, 0, fmt.Errorf("addrspace: final order not sorted at ref %d", ref)
			}
			prevStart = b.curStart[ref]
			b.finals = append(b.finals, placement{id: b.ids[ref], ext: Extent{Start: b.curStart[ref], Size: b.size[ref]}})
			b.oldStarts = append(b.oldStarts, b.initStart[ref])
		}
		if matched != len(b.touched) {
			return nil, 0, pos{}, 0, fmt.Errorf("addrspace: final order covers %d of %d plan objects", matched, len(b.touched))
		}
	} else {
		for _, ref := range b.touched {
			if b.curStart[ref] == b.initStart[ref] {
				continue
			}
			b.finals = append(b.finals, placement{id: b.ids[ref], ext: Extent{Start: b.curStart[ref], Size: b.size[ref]}})
			b.oldStarts = append(b.oldStarts, b.initStart[ref])
		}
		slices.SortFunc(b.finals, func(a, c placement) int {
			switch {
			case a.ext.Start < c.ext.Start:
				return -1
			case a.ext.Start > c.ext.Start:
				return 1
			default:
				return 0
			}
		})
	}
	if !slices.IsSorted(b.oldStarts) {
		slices.Sort(b.oldStarts)
	}

	// Validate the resulting layout and build the merged index suffix in
	// one pass. Flush plans only relocate within the flushed suffix (plus
	// the overflow segment past it), so every index entry strictly left of
	// the lowest touched address survives untouched: the index suffix from
	// the cut point is flattened once, and its entries either keep their
	// place (skipped via the sorted pre-batch starts — live starts are
	// unique) or come from the sorted finals. A class-local flush therefore
	// rebuilds only its own region's slice of the index.
	cutPos = s.byStart.end()
	if len(b.finals) > 0 {
		minAffected := b.finals[0].ext.Start
		if b.oldStarts[0] < minAffected {
			minAffected = b.oldStarts[0]
		}
		cutPos = s.byStart.lowerBound(minAffected)
	}
	b.suffix = s.byStart.flattenFrom(cutPos, b.suffix[:0])
	var prev placement
	havePrev := false
	if pp, ok := s.byStart.prev(cutPos); ok {
		prev, havePrev = s.byStart.at(pp), true
	}
	b.merged = b.merged[:0]
	i, j, p := 0, 0, 0
	for i < len(b.suffix) || j < len(b.finals) {
		var next placement
		if i < len(b.suffix) {
			if p < len(b.oldStarts) && b.suffix[i].ext.Start == b.oldStarts[p] {
				i++
				p++
				continue
			}
		}
		switch {
		case i >= len(b.suffix):
			next = b.finals[j]
			j++
		case j >= len(b.finals) || b.suffix[i].ext.Start <= b.finals[j].ext.Start:
			next = b.suffix[i]
			i++
		default:
			next = b.finals[j]
			j++
		}
		if havePrev && prev.ext.End() > next.ext.Start {
			return nil, 0, pos{}, 0, fmt.Errorf("%w: plan lands %d at %v over %d at %v",
				ErrOverlap, next.id, next.ext, prev.id, prev.ext)
		}
		b.merged = append(b.merged, next)
		prev, havePrev = next, true
	}
	return b, consumed, cutPos, vol, nil
}

// executeBulk is pass 2 of a bulk batch: it applies plan[:consumed] using
// the scratch simulatePlan populated, then commits the object map and
// splices the pre-merged suffix into the index. Nothing in it can fail, so
// counters, cell stamps, the object map, and the freed set evolve exactly
// as the per-move path would evolve them. The footprint after each
// relocation is the largest of three sources: the rightmost index entry
// whose object has not moved yet (index ends are sorted, so a
// right-to-left cursor suffices, stepped past moved entries via a heap of
// their pre-batch starts), and the max valid entry of a heap fed by every
// applied move. The object map is synced lazily: eagerly only when a
// checkpoint exposes positions to observers, in bulk otherwise.
func (s *Space) executeBulk(plan []Relocation, b *batchState, consumed int, cutPos pos, emit func(MoveResult)) (volume int64) {
	// The last untouched entry has the largest end among them; only it can
	// reach into the merged zone, and it is the footprint floor once every
	// suffix entry has moved.
	belowEnd := int64(0)
	if pp, ok := s.byStart.prev(cutPos); ok {
		belowEnd = s.byStart.at(pp).ext.End()
	}
	for _, ref := range b.touched {
		b.curStart[ref] = b.initStart[ref]
	}
	top := len(b.suffix) - 1
	foot := s.MaxEnd()
	synced := 0
	volume = 0
	midSync := false
	for k, mv := range plan[:consumed] {
		oldStart := b.oldSteps[k]
		if mv.To == oldStart {
			continue
		}
		size := b.size[mv.Ref]
		target := Extent{Start: mv.To, Size: size}
		checkpointed := false
		if s.opts.CheckpointRule && s.freed.intersects(target) {
			s.blockedWrites++
			// Observers snapshot object positions on checkpoint events:
			// bring the map up to date with every move applied so far.
			b.syncObjects(s, plan, synced, k)
			synced, midSync = k, true
			s.Checkpoint()
			checkpointed = true
		}
		if s.opts.CheckpointRule {
			old := Extent{Start: oldStart, Size: size}
			var pieces [2]Extent
			for _, piece := range pieces[:subtract(old, target, &pieces)] {
				s.freed.add(piece)
			}
		}
		s.stampCells(target, mv.ID)
		s.moves++
		volume += size
		b.curStart[mv.Ref] = target.Start

		if emit != nil {
			// Trajectory bookkeeping only matters to an observer; without
			// one counters, cells, the freed set, and the final layout are
			// unaffected. The emit happens BEFORE the physical copy below:
			// a blocking move's checkpoint event must reach observers while
			// the data layer still holds the pre-move image, or a
			// durability hook snapshotting on checkpoints would capture
			// this move's bytes — the first write AFTER the checkpoint —
			// clobbering space the previous checkpoint still references.
			pre := foot
			if !b.everMoved[mv.Ref] {
				// First applied move of this object: its index entry goes
				// stale, so its pre-batch end leaves the cursor's world.
				b.everMoved[mv.Ref] = true
				pushMax(&b.goneTops, b.initStart[mv.Ref])
				for top >= 0 && len(b.goneTops) > 0 && b.goneTops[0] == b.suffix[top].ext.Start {
					popMax(&b.goneTops)
					top--
				}
			}
			pushEnd(&b.newEnds, endEntry{ref: mv.Ref, end: target.End()})
			foot = b.topEnd()
			if top >= 0 {
				if e := b.suffix[top].ext.End(); e > foot {
					foot = e
				}
			} else if belowEnd > foot {
				foot = belowEnd
			}
			emit(MoveResult{
				ID: mv.ID, Size: size, From: oldStart, To: target.Start,
				Footprint: foot, PreFootprint: pre, Checkpointed: checkpointed,
			})
		}
		if s.data != nil {
			// Plan order is overlap-safe: each step's target is disjoint
			// from every other live object at that instant (flush
			// schedules guarantee intermediate layouts), and a step that
			// overlaps its own source is a single memmove.
			s.data.Copy(target.Start, oldStart, size)
		}
	}

	// Commit. After a mid-batch sync every touched object must be
	// re-synced (an intermediate position may already be in the map);
	// otherwise only the net-moved ones need their final extents written.
	if midSync {
		for _, ref := range b.touched {
			s.objects[b.ids[ref]] = Extent{Start: b.curStart[ref], Size: b.size[ref]}
		}
	} else {
		for _, f := range b.finals {
			s.objects[f.id] = f.ext
		}
	}
	s.byStart.replaceSuffix(cutPos, b.merged)
	return volume
}

// syncObjects writes the positions of plan steps [from, upto) into the
// object map, in order, so superseded intermediate positions resolve to
// the latest applied one.
func (b *batchState) syncObjects(s *Space, plan []Relocation, from, upto int) {
	for i := from; i < upto; i++ {
		mv := plan[i]
		if mv.To == b.oldSteps[i] {
			continue
		}
		s.objects[mv.ID] = Extent{Start: mv.To, Size: b.size[mv.Ref]}
	}
}

// topEnd returns the largest current end among moved objects, discarding
// entries made stale by later relocations of the same object (a stale
// entry can never tie its object's live end: same object and size but a
// different start).
func (b *batchState) topEnd() int64 {
	for len(b.newEnds) > 0 {
		t := b.newEnds[0]
		if b.curStart[t.ref]+b.size[t.ref] == t.end {
			return t.end
		}
		n := len(b.newEnds) - 1
		b.newEnds[0] = b.newEnds[n]
		b.newEnds = b.newEnds[:n]
		siftDownEnd(b.newEnds)
	}
	return 0
}

// pushEnd appends e and restores the max-heap property.
func pushEnd(h *[]endEntry, e endEntry) {
	hh := append(*h, e)
	i := len(hh) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if hh[parent].end >= hh[i].end {
			break
		}
		hh[parent], hh[i] = hh[i], hh[parent]
		i = parent
	}
	*h = hh
}

// siftDownEnd restores the max-heap property from the root.
func siftDownEnd(h []endEntry) {
	n := len(h)
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && h[l].end > h[big].end {
			big = l
		}
		if r < n && h[r].end > h[big].end {
			big = r
		}
		if big == i {
			return
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
}

// pushMax pushes v onto a max-heap of int64s.
func pushMax(h *[]int64, v int64) {
	hh := append(*h, v)
	i := len(hh) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if hh[parent] >= hh[i] {
			break
		}
		hh[parent], hh[i] = hh[i], hh[parent]
		i = parent
	}
	*h = hh
}

// popMax removes the maximum of a max-heap of int64s.
func popMax(h *[]int64) {
	hh := *h
	n := len(hh) - 1
	hh[0] = hh[n]
	hh = hh[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && hh[l] > hh[big] {
			big = l
		}
		if r < n && hh[r] > hh[big] {
			big = r
		}
		if big == i {
			break
		}
		hh[i], hh[big] = hh[big], hh[i]
		i = big
	}
	*h = hh
}
