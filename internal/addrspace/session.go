package addrspace

import (
	"fmt"
	"math"
	"slices"
)

// This file implements the resumable flush executor: the deamortized hot
// path.
//
// A Section 3.3 flush plan executes as volume-bounded chunks spread over
// many subsequent requests. Running each chunk through ApplyMoves pays the
// suffix flatten-and-merge rebuild per chunk — O(n) bookkeeping for an
// O(chunk) quota, which turns one flush into O(n²/chunk) index work — and
// running it through per-move Move re-validates every relocation against
// the live layout. A MoveSession splits the difference: BeginMoves
// validates the entire plan once (simulation, ref discipline, strict-rule
// self-overlaps, and the final layout's disjointness — the same checks
// ApplyMoves performs), then Advance applies each quota chunk with an
// incremental suffix rebuild: every applied relocation splices its own
// index entry (one O(log n) probe plus an O(B) block edit, B the constant
// block size), so a chunk of volume q costs O(q/w·(log n + B)) for moves
// of size w — independent of the structure size — while the index, the
// object map, counters, cell stamps, and the freed set stay exactly as
// per-move execution would leave them after every chunk. A first Advance
// whose budget covers the whole remaining plan takes the bulk
// flatten-merge path instead, which is strictly cheaper for atomic
// flushes.
//
// Observable equivalence with the per-move reference path (and therefore
// with ApplyMoves) is asserted by the cross-check tests here and the
// differential tests in core.

// MoveSession is an in-progress resumable move plan, created by
// BeginMoves. At most one session can be active per Space; Advance
// consumes the plan in volume-bounded chunks and Commit releases the
// session once the plan is fully consumed.
//
// Between Advance calls the Space is fully consistent and usable: queries
// (MaxEnd, Extent, ForEach, Verify) see every applied relocation, and
// mutations outside the plan's address range — the update log placing and
// removing objects past the overflow segment — are legal. Mutating plan
// objects themselves mid-session is not.
type MoveSession struct {
	s      *Space
	plan   []Relocation
	b      *batchState
	next   int   // next plan entry to execute
	total  int64 // volume the whole plan applies
	cut    pos   // bulk-commit cut position (valid while gen matches)
	gen    uint64
	epoch  int32 // chunk counter for the per-ref chunk scratch
	done   bool
	closed bool
}

// BeginMoves validates plan in its entirety — the same checks ApplyMoves
// performs on its consumed prefix, against the current layout — and
// returns a session that executes it incrementally. The plan must be
// non-empty, and only one session may be active at a time. No Space state
// changes until Advance.
func (s *Space) BeginMoves(plan []Relocation, maxRef int, finalOrder []int32) (*MoveSession, error) {
	if len(plan) == 0 {
		return nil, fmt.Errorf("addrspace: BeginMoves with an empty plan")
	}
	if s.session != nil {
		return nil, fmt.Errorf("addrspace: a move session is already active")
	}
	b, _, cutPos, vol, err := s.simulatePlan(plan, maxRef, finalOrder, math.MaxInt64)
	if err != nil {
		return nil, err
	}
	ms := &MoveSession{s: s, plan: plan, b: b, total: vol, cut: cutPos, gen: s.byStart.gen}
	s.session = ms
	return ms, nil
}

// Done reports whether every plan entry has been consumed.
func (ms *MoveSession) Done() bool { return ms.done }

// Remaining returns the number of unconsumed plan entries.
func (ms *MoveSession) Remaining() int { return len(ms.plan) - ms.next }

// Advance executes the next chunk of the plan: entries keep being
// consumed while the volume applied in this call is below budget,
// overshooting by at most one move, exactly mirroring a quota-driven loop
// over Move (no-op entries consume no budget). It returns how many plan
// entries were consumed and the volume they moved.
//
// emit, if non-nil, observes every applied relocation with exact per-move
// footprints, checkpoint blocking included, just as ApplyMoves reports
// them; unlike ApplyMoves, index-derived queries are valid immediately
// after each Advance returns (the index is updated as the chunk applies).
//
// The final layout was validated by BeginMoves; intermediate layouts are
// the caller's responsibility (flush schedules guarantee them by
// construction), but violations do not go unnoticed: with an emitter,
// each relocation is checked against its index neighbors and a violation
// fails the call with the offending move unapplied and the index still
// consistent; without one, the chunk-end reconciliation detects the
// overlap after per-move state (counters, freed set, object map) has
// already advanced and panics rather than leave a silently corrupt index
// behind — the same philosophy as the exact-search desync panic in find.
func (ms *MoveSession) Advance(budget int64, emit func(MoveResult)) (consumed int, volume int64, err error) {
	if ms.closed || ms.done || budget <= 0 {
		return 0, 0, nil
	}
	s := ms.s
	b := ms.b
	// A first chunk that provably consumes the whole plan commits through
	// the bulk flatten-merge path prepared at BeginMoves — cheaper than
	// per-entry splices for atomic flushes. The index generation guard
	// proves the pre-merged suffix is still current.
	if ms.next == 0 && budget >= ms.total && s.byStart.gen == ms.gen {
		volume = s.executeBulk(ms.plan, b, len(ms.plan), ms.cut, emit)
		ms.next = len(ms.plan)
		ms.done = true
		return len(ms.plan), volume, nil
	}
	if ms.next == 0 {
		// Entering incremental execution: rewind the simulation cursors
		// (simulatePlan left them at the plan's final positions).
		for _, ref := range b.touched {
			b.curStart[ref] = b.initStart[ref]
		}
	}
	if emit == nil {
		// No per-move observer: the chunk's index reconciliation batches
		// into sorted range edits at the end.
		return ms.advanceBatched(budget)
	}
	for ms.next < len(ms.plan) && volume < budget {
		mv := ms.plan[ms.next]
		oldStart := b.oldSteps[ms.next]
		if mv.To == oldStart {
			ms.next++
			consumed++
			continue
		}
		size := b.size[mv.Ref]
		if err := s.applyOne(mv, oldStart, size, emit); err != nil {
			return consumed, volume, err
		}
		b.curStart[mv.Ref] = mv.To
		ms.next++
		consumed++
		volume += size
	}
	if ms.next == len(ms.plan) {
		ms.done = true
	}
	return consumed, volume, nil
}

// advanceBatched is Advance's unobserved fast path. Per relocation it
// evolves everything except the index — checkpoint blocking, the freed
// set, cell stamps, counters, and the eagerly synced object map, in plan
// order, exactly as the per-move path does — then reconciles the index
// once: each object's entry moves from its position at chunk start to its
// position at chunk end (intermediate hops within the chunk are
// unobservable without an emitter), applied as sorted range edits. Flush
// chunks relocate address-contiguous runs, so the edits collapse into a
// handful of block splices: O(moves + B + log n) per chunk instead of a
// tail memmove and three searches per move.
func (ms *MoveSession) advanceBatched(budget int64) (consumed int, volume int64, err error) {
	s := ms.s
	b := ms.b
	ms.epoch++
	refs := b.chunkRefs[:0]
	for ms.next < len(ms.plan) && volume < budget {
		mv := ms.plan[ms.next]
		oldStart := b.oldSteps[ms.next]
		if mv.To == oldStart {
			ms.next++
			consumed++
			continue
		}
		size := b.size[mv.Ref]
		old := Extent{Start: oldStart, Size: size}
		target := Extent{Start: mv.To, Size: size}
		if s.opts.CheckpointRule && s.freed.intersects(target) {
			s.blockedWrites++
			s.Checkpoint()
		}
		if b.chunkEpoch[mv.Ref] != ms.epoch {
			b.chunkEpoch[mv.Ref] = ms.epoch
			b.chunkFrom[mv.Ref] = oldStart
			refs = append(refs, mv.Ref)
		}
		s.objects[mv.ID] = target
		s.stampCells(target, mv.ID)
		if s.data != nil {
			s.data.Copy(target.Start, oldStart, size)
		}
		if s.opts.CheckpointRule {
			var pieces [2]Extent
			for _, piece := range pieces[:subtract(old, target, &pieces)] {
				s.freed.add(piece)
			}
		}
		s.moves++
		b.curStart[mv.Ref] = mv.To
		ms.next++
		consumed++
		volume += size
	}
	b.chunkRefs = refs
	dels := b.chunkDels[:0]
	ins := b.chunkIns[:0]
	for _, ref := range refs {
		from, to := b.chunkFrom[ref], b.curStart[ref]
		if from == to {
			continue // net no-op within the chunk: the entry is current
		}
		dels = append(dels, from)
		ins = append(ins, placement{id: b.ids[ref], ext: Extent{Start: to, Size: b.size[ref]}})
	}
	b.chunkDels, b.chunkIns = dels, ins
	slices.Sort(dels)
	slices.SortFunc(ins, func(a, c placement) int {
		switch {
		case a.ext.Start < c.ext.Start:
			return -1
		case a.ext.Start > c.ext.Start:
			return 1
		default:
			return 0
		}
	})
	s.byStart.removeStarts(dels)
	if err := s.byStart.insertRuns(ins); err != nil {
		// Counters, the freed set, and the object map already advanced and
		// part of the reconciliation may have landed: there is no
		// consistent state to report an error from. A schedule with an
		// overlapping intermediate layout is a bug in its builder; fail
		// loudly instead of leaving a corrupt index for a later find to
		// trip over.
		panic(fmt.Sprintf("addrspace: flush chunk produced an overlapping intermediate layout: %v", err))
	}
	if ms.next == len(ms.plan) {
		ms.done = true
	}
	return consumed, volume, nil
}

// applyOne executes a single validated relocation with an incremental
// index splice, evolving the Space exactly as Move would: transparent
// checkpoint blocking, freed-set growth, cell stamps, counters, and an
// eagerly synced object map.
func (s *Space) applyOne(mv Relocation, oldStart, size int64, emit func(MoveResult)) error {
	old := Extent{Start: oldStart, Size: size}
	target := Extent{Start: mv.To, Size: size}
	var pre int64
	if emit != nil {
		pre = s.MaxEnd()
	}
	checkpointed := false
	if s.opts.CheckpointRule && s.freed.intersects(target) {
		s.blockedWrites++
		s.Checkpoint()
		checkpointed = true
	}
	at := s.byStart.find(mv.ID, old)
	s.byStart.removeAt(at)
	// Intermediate-layout guard: with the old entry gone, the target must
	// fall strictly between its prospective index neighbors.
	ins := s.byStart.lowerBound(target.Start)
	if pp, ok := s.byStart.prev(ins); ok {
		if n := s.byStart.at(pp); n.ext.End() > target.Start {
			s.byStart.insert(placement{id: mv.ID, ext: old})
			return fmt.Errorf("%w: move of %d to %v over %d at %v", ErrOverlap, mv.ID, target, n.id, n.ext)
		}
	}
	if s.byStart.valid(ins) {
		if n := s.byStart.at(ins); target.End() > n.ext.Start {
			s.byStart.insert(placement{id: mv.ID, ext: old})
			return fmt.Errorf("%w: move of %d to %v over %d at %v", ErrOverlap, mv.ID, target, n.id, n.ext)
		}
	}
	s.byStart.insert(placement{id: mv.ID, ext: target})
	s.objects[mv.ID] = target
	s.stampCells(target, mv.ID)
	if s.opts.CheckpointRule {
		var pieces [2]Extent
		for _, piece := range pieces[:subtract(old, target, &pieces)] {
			s.freed.add(piece)
		}
	}
	s.moves++
	if emit != nil {
		// Emit BEFORE the physical copy. A blocking move's checkpoint
		// event must reach observers while the data layer still holds the
		// pre-move image: a durability hook that snapshots the data on
		// checkpoints would otherwise capture this move's bytes — the
		// first write AFTER the checkpoint — inside it, clobbering space
		// the previous checkpoint still references.
		emit(MoveResult{
			ID: mv.ID, Size: size, From: oldStart, To: target.Start,
			Footprint: s.MaxEnd(), PreFootprint: pre, Checkpointed: checkpointed,
		})
	}
	if s.data != nil {
		s.data.Copy(target.Start, oldStart, size)
	}
	return nil
}

// Commit releases a fully consumed session, making the Space (and the
// shared plan scratch) available for the next plan. It fails if entries
// remain or the session was already committed.
func (ms *MoveSession) Commit() error {
	if ms.closed {
		return fmt.Errorf("addrspace: session already committed")
	}
	if !ms.done {
		return fmt.Errorf("addrspace: commit of a session with %d entries remaining", ms.Remaining())
	}
	ms.closed = true
	ms.s.session = nil
	return nil
}
