// Package addrspace simulates the flat storage address space that a
// reallocator manages: an arbitrarily large array of cells in which objects
// occupy disjoint extents.
//
// The substrate enforces the physical rules the paper builds on:
//
//   - Objects never overlap one another.
//   - In strict mode (databases, SSDs, FPGAs — Section 1), a moved object's
//     new location must additionally be disjoint from its old location,
//     because object writes are not atomic and the old copy must survive
//     until the new one is complete.
//   - Under the checkpoint rule (Section 3.1), space freed since the last
//     checkpoint may not be rewritten: the durable logical-to-physical map
//     still references it. A write into such space reports ErrWouldBlock and
//     the caller must wait for (trigger and count) a checkpoint.
//
// With cell tracking enabled the substrate also simulates data placement:
// each cell remembers which object's bytes it holds, including ghost copies
// left behind by moves, which is what makes crash-recovery verification in
// the btl package meaningful.
package addrspace

import (
	"errors"
	"fmt"

	"realloc/internal/arena"
)

// ID identifies an object. IDs are assigned by the caller and must be
// non-zero (zero marks free cells in cell-tracking mode).
type ID int64

// Extent is a half-open interval [Start, Start+Size) of cells.
type Extent struct {
	Start int64
	Size  int64
}

// End returns the first address past the extent.
func (e Extent) End() int64 { return e.Start + e.Size }

// Overlaps reports whether two extents intersect.
func (e Extent) Overlaps(o Extent) bool {
	return e.Start < o.End() && o.Start < e.End()
}

func (e Extent) String() string { return fmt.Sprintf("[%d,%d)", e.Start, e.End()) }

// Errors reported by Space operations.
var (
	ErrOverlap       = errors.New("addrspace: extent overlaps a live object")
	ErrSelfOverlap   = errors.New("addrspace: move target overlaps the object's current location (strict mode)")
	ErrWouldBlock    = errors.New("addrspace: target intersects space freed since the last checkpoint")
	ErrUnknownObject = errors.New("addrspace: unknown object")
	ErrDuplicate     = errors.New("addrspace: object already placed")
	ErrBadExtent     = errors.New("addrspace: extent must have Start >= 0 and Size >= 1")
	ErrNoData        = errors.New("addrspace: no real payload backend (see arena.Backend)")
)

// Options configures the physical rules a Space enforces.
type Options struct {
	// StrictNonOverlap forbids a move whose target intersects the object's
	// own current extent. Off, moves have memmove semantics (allowed by
	// Section 2; required off for in-RAM compaction by one cell).
	StrictNonOverlap bool
	// CheckpointRule forbids writing into space freed since the last
	// checkpoint (Section 3.1). Such writes fail with ErrWouldBlock.
	CheckpointRule bool
	// TrackCells maintains a per-cell record of which object's data each
	// cell holds, including stale copies left by moves. Needed only by
	// data-integrity and crash-recovery tests; costs O(max address) memory.
	TrackCells bool
	// Data is the payload backend relocations write through: every
	// applied move memmoves the object's bytes (or, for the metered
	// backend, counts them). Nil means no backend at all — moves touch
	// only the index, and payload access reports ErrNoData.
	Data arena.Backend
}

// RAM returns the permissive configuration used by the Section 2
// reallocator: moves may overlap their own source and freed space is
// immediately reusable.
func RAM() Options { return Options{} }

// Durable returns the database configuration of Section 3: strict
// nonoverlapping moves plus the checkpoint rule.
func Durable() Options { return Options{StrictNonOverlap: true, CheckpointRule: true} }

// placement pairs an object with its extent, kept sorted by Start.
type placement struct {
	id  ID
	ext Extent
}

// Space is a simulated address space. The zero value is not usable; call
// New.
type Space struct {
	opts Options

	objects map[ID]Extent
	byStart pindex // sorted by ext.Start; extents pairwise disjoint

	data arena.Backend // payload backend, nil for index-only spaces

	freed intervalSet // space freed since last checkpoint (CheckpointRule)

	cells []ID // cell-level data residue, if TrackCells

	batch   *batchState  // reusable move-plan scratch, allocated on first use
	session *MoveSession // active resumable move session, if any

	volume        int64 // total live volume
	checkpoints   int64 // checkpoints taken
	blockedWrites int64 // writes that observed ErrWouldBlock
	moves         int64
	places        int64
}

// New creates an empty Space with the given rules.
func New(opts Options) *Space {
	return &Space{opts: opts, data: opts.Data, objects: make(map[ID]Extent)}
}

// Options returns the rules this space enforces.
func (s *Space) Options() Options { return s.opts }

// Len returns the number of live objects.
func (s *Space) Len() int { return len(s.objects) }

// Volume returns the total size of live objects.
func (s *Space) Volume() int64 { return s.volume }

// MaxEnd returns the footprint: the smallest address such that no live
// object occupies any cell at or beyond it. (Disjointness makes the
// placement with the largest start also the one with the largest end.)
func (s *Space) MaxEnd() int64 {
	if s.byStart.len() == 0 {
		return 0
	}
	return s.byStart.last().ext.End()
}

// Checkpoints returns how many checkpoints have been taken.
func (s *Space) Checkpoints() int64 { return s.checkpoints }

// BlockedWrites returns how many writes found their target in
// freed-since-checkpoint space.
func (s *Space) BlockedWrites() int64 { return s.blockedWrites }

// Moves returns the number of successful Move calls.
func (s *Space) Moves() int64 { return s.moves }

// Places returns the number of successful Place calls.
func (s *Space) Places() int64 { return s.places }

// Extent returns the current extent of id.
func (s *Space) Extent(id ID) (Extent, bool) {
	e, ok := s.objects[id]
	return e, ok
}

// ForEach calls fn for every live object in address order.
func (s *Space) ForEach(fn func(id ID, ext Extent)) {
	s.byStart.forEach(fn)
}

// ForEachFrom calls fn for every live object whose start is >= start, in
// address order. Flush planning uses it to walk only the flushed suffix.
func (s *Space) ForEachFrom(start int64, fn func(id ID, ext Extent)) {
	s.byStart.forEachFrom(s.byStart.lowerBound(start), fn)
}

// overlapAny reports whether ext overlaps any live object other than skip
// (skip == 0 means none).
func (s *Space) overlapAny(ext Extent, skip ID) (ID, bool) {
	// Any overlapping placement must start before ext.End(); because
	// placements are disjoint, only the one immediately before the lower
	// bound can extend into ext... except for skip, whose exclusion can
	// expose at most one more predecessor. Scan left while candidates can
	// still reach into ext.
	at, ok := s.byStart.prev(s.byStart.lowerBound(ext.End()))
	for ; ok; at, ok = s.byStart.prev(at) {
		p := s.byStart.at(at)
		if p.ext.End() <= ext.Start && p.id != skip {
			// Disjoint placements to the left of this one end even
			// earlier, except skip itself which we may still need to step
			// over; since p != skip and p is clear, everything before is
			// clear too.
			break
		}
		if p.id == skip {
			continue
		}
		if p.ext.Overlaps(ext) {
			return p.id, true
		}
	}
	return 0, false
}

// checkTarget validates a prospective write of ext on behalf of id
// (id == 0 for a fresh placement). selfExt is the object's current extent
// when moving.
func (s *Space) checkTarget(ext Extent, id ID, moving bool, selfExt Extent) error {
	if ext.Start < 0 || ext.Size < 1 {
		return fmt.Errorf("%w: %v", ErrBadExtent, ext)
	}
	if other, ok := s.overlapAny(ext, id); ok {
		return fmt.Errorf("%w: %v hits object %d", ErrOverlap, ext, other)
	}
	if moving && s.opts.StrictNonOverlap && ext.Overlaps(selfExt) {
		return fmt.Errorf("%w: %v vs %v", ErrSelfOverlap, ext, selfExt)
	}
	if s.opts.CheckpointRule {
		// Space the object itself vacates in this very move is freed *by*
		// the move, so only pre-existing freed space blocks. The freed set
		// never contains live extents, so no need to exclude selfExt.
		if s.freed.intersects(ext) {
			s.blockedWrites++
			return fmt.Errorf("%w: %v", ErrWouldBlock, ext)
		}
	}
	return nil
}

// insertPlacement adds (id, ext) into the sorted index.
func (s *Space) insertPlacement(id ID, ext Extent) {
	s.byStart.insert(placement{id: id, ext: ext})
}

// removePlacement deletes the placement for id at extent ext. The exact
// lookup panics on index/map desync (see pindex.find).
func (s *Space) removePlacement(id ID, ext Extent) {
	s.byStart.removeAt(s.byStart.find(id, ext))
}

// relocatePlacement moves id from extent old to extent ext. Single moves
// outside flush plans (log drains, defragmentation) take this path;
// flushes go through ApplyMoves.
func (s *Space) relocatePlacement(id ID, old, ext Extent) {
	s.byStart.removeAt(s.byStart.find(id, old))
	s.byStart.insert(placement{id: id, ext: ext})
}

// stampCells writes id into every cell of ext (cell-tracking mode).
func (s *Space) stampCells(ext Extent, id ID) {
	if !s.opts.TrackCells {
		return
	}
	if need := ext.End(); int64(len(s.cells)) < need {
		grown := make([]ID, need+need/2)
		copy(grown, s.cells)
		s.cells = grown
	}
	for i := ext.Start; i < ext.End(); i++ {
		s.cells[i] = id
	}
}

// Place writes a new object at ext. It is the initial allocation; the
// checkpoint rule applies to it exactly as to moves.
func (s *Space) Place(id ID, ext Extent) error {
	if id == 0 {
		return fmt.Errorf("addrspace: id must be non-zero")
	}
	if _, dup := s.objects[id]; dup {
		return fmt.Errorf("%w: %d", ErrDuplicate, id)
	}
	if err := s.checkTarget(ext, id, false, Extent{}); err != nil {
		return err
	}
	s.objects[id] = ext
	s.insertPlacement(id, ext)
	s.stampCells(ext, id)
	if s.data != nil {
		// Make the extent addressable; the payload content is whatever
		// the cells held (callers write it via WriteData). Adoption
		// handoffs between engines rely on placement NOT clearing cells:
		// an object adopted at its old address keeps its bytes.
		s.data.Ensure(ext.End())
	}
	s.volume += ext.Size
	s.places++
	return nil
}

// Move relocates id so that it starts at newStart. The old extent becomes
// freed-since-checkpoint space under the checkpoint rule; its cells keep
// the object's data (a ghost copy) until something overwrites them.
func (s *Space) Move(id ID, newStart int64) error {
	old, ok := s.objects[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownObject, id)
	}
	if newStart == old.Start {
		return nil
	}
	ext := Extent{Start: newStart, Size: old.Size}
	if err := s.checkTarget(ext, id, true, old); err != nil {
		return err
	}
	s.relocatePlacement(id, old, ext)
	s.objects[id] = ext
	s.stampCells(ext, id)
	if s.data != nil {
		s.data.Copy(ext.Start, old.Start, old.Size)
	}
	if s.opts.CheckpointRule {
		// The part of the old extent not covered by the new one is freed.
		// With strict nonoverlap that is all of it; with memmove semantics
		// only the uncovered remainder is.
		var pieces [2]Extent
		for _, piece := range pieces[:subtract(old, ext, &pieces)] {
			s.freed.add(piece)
		}
	}
	s.moves++
	return nil
}

// Remove frees the object's space. Under the checkpoint rule the extent
// joins the freed-since-checkpoint set; its cells keep the ghost data.
func (s *Space) Remove(id ID) error {
	old, ok := s.objects[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownObject, id)
	}
	delete(s.objects, id)
	s.removePlacement(id, old)
	s.volume -= old.Size
	if s.opts.CheckpointRule {
		s.freed.add(old)
	}
	return nil
}

// WouldBlock reports whether writing ext would hit freed-since-checkpoint
// space (without counting it as a blocked write).
func (s *Space) WouldBlock(ext Extent) bool {
	return s.opts.CheckpointRule && s.freed.intersects(ext)
}

// Checkpoint makes all freed space reusable again, modeling the system
// writing the translation map durably (Section 3.1).
func (s *Space) Checkpoint() {
	s.freed.reset()
	s.checkpoints++
}

// FreedVolume returns the volume of space freed since the last checkpoint.
func (s *Space) FreedVolume() int64 { return s.freed.volume() }

// CellOwner returns which object's data cell addr currently holds (ghost
// copies included), or 0 for never-written cells. Requires TrackCells.
func (s *Space) CellOwner(addr int64) ID {
	if addr < 0 || addr >= int64(len(s.cells)) {
		return 0
	}
	return s.cells[addr]
}

// HoldsData reports whether every cell of ext holds id's data (live or
// ghost). Requires TrackCells.
func (s *Space) HoldsData(id ID, ext Extent) bool {
	if !s.opts.TrackCells {
		return false
	}
	if ext.End() > int64(len(s.cells)) {
		return false
	}
	for i := ext.Start; i < ext.End(); i++ {
		if s.cells[i] != id {
			return false
		}
	}
	return true
}

// Verify exhaustively re-checks structural invariants: sortedness,
// pairwise disjointness, map/index agreement, and volume accounting.
// Tests call it after mutating sequences.
func (s *Space) Verify() error {
	if s.byStart.len() != len(s.objects) {
		return fmt.Errorf("addrspace: index has %d entries, map has %d", s.byStart.len(), len(s.objects))
	}
	if err := s.byStart.verify(); err != nil {
		return err
	}
	var vol int64
	var verr error
	var prev placement
	havePrev := false
	s.byStart.forEach(func(id ID, ext Extent) {
		p := placement{id: id, ext: ext}
		if verr != nil {
			return
		}
		if p.ext.Size < 1 || p.ext.Start < 0 {
			verr = fmt.Errorf("addrspace: object %d has bad extent %v", p.id, p.ext)
			return
		}
		if got := s.objects[p.id]; got != p.ext {
			verr = fmt.Errorf("addrspace: object %d extent mismatch: map %v index %v", p.id, got, p.ext)
			return
		}
		if havePrev && prev.ext.End() > p.ext.Start {
			verr = fmt.Errorf("addrspace: objects %d %v and %d %v overlap", prev.id, prev.ext, p.id, p.ext)
			return
		}
		if s.opts.TrackCells && !s.HoldsData(p.id, p.ext) {
			verr = fmt.Errorf("addrspace: object %d data missing at %v", p.id, p.ext)
			return
		}
		prev, havePrev = p, true
		vol += p.ext.Size
	})
	if verr != nil {
		return verr
	}
	if vol != s.volume {
		return fmt.Errorf("addrspace: volume accounting: tracked %d, actual %d", s.volume, vol)
	}
	return s.freed.verify()
}

// subtract computes the parts of a not covered by b, writing them into out
// (sized for the worst case) and returning how many pieces there are. The
// out parameter keeps the move hot path allocation-free.
func subtract(a, b Extent, out *[2]Extent) int {
	if !a.Overlaps(b) {
		out[0] = a
		return 1
	}
	n := 0
	if a.Start < b.Start {
		out[n] = Extent{Start: a.Start, Size: b.Start - a.Start}
		n++
	}
	if a.End() > b.End() {
		out[n] = Extent{Start: b.End(), Size: a.End() - b.End()}
		n++
	}
	return n
}
