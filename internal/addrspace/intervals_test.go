package addrspace

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

// flatIntervalSet is the pre-blocking implementation of the freed set — a
// flat sorted slice with O(pieces) insertion — kept verbatim as the test
// oracle for the blocked container.
type flatIntervalSet []Extent

func (s *flatIntervalSet) add(ext Extent) {
	if ext.Size <= 0 {
		return
	}
	set := *s
	lo := sort.Search(len(set), func(i int) bool { return set[i].End() >= ext.Start })
	hi := sort.Search(len(set), func(i int) bool { return set[i].Start > ext.End() })
	if lo == hi {
		set = append(set, Extent{})
		copy(set[lo+1:], set[lo:])
		set[lo] = ext
		*s = set
		return
	}
	merged := ext
	if set[lo].Start < merged.Start {
		merged.Size += merged.Start - set[lo].Start
		merged.Start = set[lo].Start
	}
	if e := set[hi-1].End(); e > merged.End() {
		merged.Size += e - merged.End()
	}
	set[lo] = merged
	set = append(set[:lo+1], set[hi:]...)
	*s = set
}

func (s flatIntervalSet) intersects(ext Extent) bool {
	if ext.Size <= 0 {
		return false
	}
	i := sort.Search(len(s), func(i int) bool { return s[i].End() > ext.Start })
	return i < len(s) && s[i].Start < ext.End()
}

func (s flatIntervalSet) volume() int64 {
	var v int64
	for _, e := range s {
		v += e.Size
	}
	return v
}

// flatten returns the blocked set's intervals in order.
func flatten(s *intervalSet) []Extent {
	var out []Extent
	s.forEach(func(e Extent) { out = append(out, e) })
	return out
}

func TestIntervalSetAddMerge(t *testing.T) {
	var s intervalSet
	s.add(Extent{10, 5})
	s.add(Extent{20, 5})
	if s.count() != 2 {
		t.Fatalf("want 2 intervals, got %v", flatten(&s))
	}
	s.add(Extent{15, 5}) // bridges the gap
	if got := flatten(&s); len(got) != 1 || got[0] != (Extent{10, 15}) {
		t.Fatalf("merge failed: %v", got)
	}
	s.add(Extent{5, 5}) // adjacent on the left
	if got := flatten(&s); len(got) != 1 || got[0] != (Extent{5, 20}) {
		t.Fatalf("left merge failed: %v", got)
	}
	s.add(Extent{0, 2})
	if s.count() != 2 {
		t.Fatalf("non-adjacent add: %v", flatten(&s))
	}
	s.add(Extent{0, 100}) // swallows everything
	if got := flatten(&s); len(got) != 1 || got[0] != (Extent{0, 100}) {
		t.Fatalf("swallow failed: %v", got)
	}
	s.add(Extent{50, 0}) // empty adds are ignored
	if s.count() != 1 {
		t.Fatalf("empty add changed the set: %v", flatten(&s))
	}
	if err := s.verify(); err != nil {
		t.Fatal(err)
	}
	s.reset()
	if s.count() != 0 || s.volume() != 0 {
		t.Fatalf("reset left %d intervals, volume %d", s.count(), s.volume())
	}
	s.add(Extent{7, 3})
	if got := flatten(&s); len(got) != 1 || got[0] != (Extent{7, 3}) {
		t.Fatalf("add after reset: %v", got)
	}
}

func TestIntervalSetIntersects(t *testing.T) {
	var s intervalSet
	s.add(Extent{10, 5})
	s.add(Extent{30, 5})
	cases := []struct {
		e    Extent
		want bool
	}{
		{Extent{0, 10}, false},  // touches the first interval's start
		{Extent{0, 11}, true},   // one cell in
		{Extent{14, 1}, true},   // last cell of first interval
		{Extent{15, 15}, false}, // exactly the gap
		{Extent{20, 11}, true},  // reaches the second interval
		{Extent{35, 5}, false},  // after everything
		{Extent{12, 0}, false},  // empty never intersects
	}
	for _, c := range cases {
		if got := s.intersects(c.e); got != c.want {
			t.Errorf("intersects(%v) = %v, want %v (set %v)", c.e, got, c.want, flatten(&s))
		}
	}
}

// TestIntervalSetQuick compares the merged set against a brute-force cell
// set under random adds.
func TestIntervalSetQuick(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		var s intervalSet
		cells := map[int64]bool{}
		for i := 0; i < 120; i++ {
			ext := Extent{Start: rng.Int64N(300), Size: 1 + rng.Int64N(30)}
			s.add(ext)
			for c := ext.Start; c < ext.End(); c++ {
				cells[c] = true
			}
			if err := s.verify(); err != nil {
				t.Log(err)
				return false
			}
			// Volume agreement.
			if s.volume() != int64(len(cells)) {
				t.Logf("volume %d != %d", s.volume(), len(cells))
				return false
			}
			// Random intersection probes.
			probe := Extent{Start: rng.Int64N(350), Size: 1 + rng.Int64N(20)}
			want := false
			for c := probe.Start; c < probe.End(); c++ {
				if cells[c] {
					want = true
					break
				}
			}
			if got := s.intersects(probe); got != want {
				t.Logf("intersects(%v) = %v, want %v", probe, got, want)
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

// TestIntervalSetVsFlatOracle drives the blocked container and the flat
// reference through identical random histories — fragment counts past 1e5
// so every structural path (splits, cross-block merges, directory splices,
// resets) runs many times — and asserts identical canonical sequences,
// volumes, and intersection answers throughout.
func TestIntervalSetVsFlatOracle(t *testing.T) {
	frags := 100_000 + 5_000
	if testing.Short() {
		frags = 20_000
	}
	for seed := uint64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewPCG(seed, 0x1e5))
		var blocked intervalSet
		var flat flatIntervalSet
		// Phase 1: build ~frags disjoint fragments (stride leaves gaps), in
		// shuffled order so inserts hit every directory position.
		span := int64(frags) * 3
		for i := 0; i < frags; i++ {
			ext := Extent{Start: rng.Int64N(span) * 3, Size: 1 + rng.Int64N(2)}
			blocked.add(ext)
			flat.add(ext)
		}
		if got, want := blocked.count(), len(flat); got != want {
			t.Fatalf("seed %d: %d intervals vs oracle %d", seed, got, want)
		}
		if err := blocked.verify(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Phase 2: churn with a mix of tiny adds, swallowing adds, and
		// probes; compare sequences periodically (full compare is O(n)).
		for i := 0; i < 2_000; i++ {
			var ext Extent
			switch rng.IntN(10) {
			case 0: // large add swallowing many fragments
				ext = Extent{Start: rng.Int64N(span * 3), Size: 1 + rng.Int64N(span/4)}
			default:
				ext = Extent{Start: rng.Int64N(span * 3), Size: 1 + rng.Int64N(40)}
			}
			blocked.add(ext)
			flat.add(ext)
			if blocked.volume() != flat.volume() {
				t.Fatalf("seed %d add %d: volume %d vs oracle %d", seed, i, blocked.volume(), flat.volume())
			}
			probe := Extent{Start: rng.Int64N(span * 3), Size: 1 + rng.Int64N(64)}
			if got, want := blocked.intersects(probe), flat.intersects(probe); got != want {
				t.Fatalf("seed %d add %d: intersects(%v) = %v, oracle %v", seed, i, probe, got, want)
			}
			if i%500 == 499 {
				if err := blocked.verify(); err != nil {
					t.Fatalf("seed %d add %d: %v", seed, i, err)
				}
				got := flatten(&blocked)
				if len(got) != len(flat) {
					t.Fatalf("seed %d add %d: %d intervals vs oracle %d", seed, i, len(got), len(flat))
				}
				for j := range got {
					if got[j] != flat[j] {
						t.Fatalf("seed %d add %d: interval %d is %v, oracle %v", seed, i, j, got[j], flat[j])
					}
				}
			}
		}
		// Reset (checkpoint) and make sure the recycled blocks behave.
		blocked.reset()
		flat = flat[:0]
		for i := 0; i < 1_000; i++ {
			ext := Extent{Start: rng.Int64N(5000), Size: 1 + rng.Int64N(30)}
			blocked.add(ext)
			flat.add(ext)
		}
		if err := blocked.verify(); err != nil {
			t.Fatalf("seed %d post-reset: %v", seed, err)
		}
		got := flatten(&blocked)
		if len(got) != len(flat) {
			t.Fatalf("seed %d post-reset: %d intervals vs oracle %d", seed, len(got), len(flat))
		}
		for j := range got {
			if got[j] != flat[j] {
				t.Fatalf("seed %d post-reset: interval %d is %v, oracle %v", seed, j, got[j], flat[j])
			}
		}
	}
}

// BenchmarkIntervalSetAdd measures add cost on a set holding frag live
// fragments: the delete-heavy Durable hot spot the blocked container
// exists for. Adds alternate fresh fragments and merges.
func BenchmarkIntervalSetAdd(b *testing.B) {
	for _, frags := range []int{1_000, 100_000} {
		b.Run(fmt.Sprintf("frags=%d", frags), func(b *testing.B) {
			rng := rand.New(rand.NewPCG(42, 0xadd))
			var s intervalSet
			span := int64(frags) * 4
			for s.count() < frags {
				s.add(Extent{Start: rng.Int64N(span) * 2, Size: 1})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.add(Extent{Start: rng.Int64N(span) * 2, Size: 1})
				if s.count() >= 2*frags {
					// Keep the fragment count near the target without
					// timing a full rebuild: swallow half the span.
					s.add(Extent{Start: 0, Size: span})
				}
			}
		})
	}
}

// BenchmarkIntervalSetIntersects measures the probe the checkpoint rule
// runs before every write.
func BenchmarkIntervalSetIntersects(b *testing.B) {
	rng := rand.New(rand.NewPCG(7, 0x15ec))
	var s intervalSet
	const frags = 100_000
	for s.count() < frags {
		s.add(Extent{Start: rng.Int64N(frags*4) * 2, Size: 1})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.intersects(Extent{Start: rng.Int64N(frags * 8), Size: 16})
	}
}
