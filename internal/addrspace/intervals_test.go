package addrspace

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestIntervalSetAddMerge(t *testing.T) {
	var s intervalSet
	s.add(Extent{10, 5})
	s.add(Extent{20, 5})
	if len(s) != 2 {
		t.Fatalf("want 2 intervals, got %v", s)
	}
	s.add(Extent{15, 5}) // bridges the gap
	if len(s) != 1 || s[0] != (Extent{10, 15}) {
		t.Fatalf("merge failed: %v", s)
	}
	s.add(Extent{5, 5}) // adjacent on the left
	if len(s) != 1 || s[0] != (Extent{5, 20}) {
		t.Fatalf("left merge failed: %v", s)
	}
	s.add(Extent{0, 2})
	if len(s) != 2 {
		t.Fatalf("non-adjacent add: %v", s)
	}
	s.add(Extent{0, 100}) // swallows everything
	if len(s) != 1 || s[0] != (Extent{0, 100}) {
		t.Fatalf("swallow failed: %v", s)
	}
	s.add(Extent{50, 0}) // empty adds are ignored
	if len(s) != 1 {
		t.Fatalf("empty add changed the set: %v", s)
	}
	if err := s.verify(); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalSetIntersects(t *testing.T) {
	var s intervalSet
	s.add(Extent{10, 5})
	s.add(Extent{30, 5})
	cases := []struct {
		e    Extent
		want bool
	}{
		{Extent{0, 10}, false},  // touches the first interval's start
		{Extent{0, 11}, true},   // one cell in
		{Extent{14, 1}, true},   // last cell of first interval
		{Extent{15, 15}, false}, // exactly the gap
		{Extent{20, 11}, true},  // reaches the second interval
		{Extent{35, 5}, false},  // after everything
		{Extent{12, 0}, false},  // empty never intersects
	}
	for _, c := range cases {
		if got := s.intersects(c.e); got != c.want {
			t.Errorf("intersects(%v) = %v, want %v (set %v)", c.e, got, c.want, s)
		}
	}
}

// TestIntervalSetQuick compares the merged set against a brute-force cell
// set under random adds.
func TestIntervalSetQuick(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		var s intervalSet
		cells := map[int64]bool{}
		for i := 0; i < 120; i++ {
			ext := Extent{Start: rng.Int64N(300), Size: 1 + rng.Int64N(30)}
			s.add(ext)
			for c := ext.Start; c < ext.End(); c++ {
				cells[c] = true
			}
			if err := s.verify(); err != nil {
				t.Log(err)
				return false
			}
			// Volume agreement.
			if s.volume() != int64(len(cells)) {
				t.Logf("volume %d != %d", s.volume(), len(cells))
				return false
			}
			// Random intersection probes.
			probe := Extent{Start: rng.Int64N(350), Size: 1 + rng.Int64N(20)}
			want := false
			for c := probe.Start; c < probe.End(); c++ {
				if cells[c] {
					want = true
					break
				}
			}
			if got := s.intersects(probe); got != want {
				t.Logf("intersects(%v) = %v, want %v", probe, got, want)
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}
