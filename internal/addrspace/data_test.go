package addrspace

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"realloc/internal/arena"
)

func newDataSpace(t *testing.T, opts Options, kind arena.Kind) *Space {
	t.Helper()
	b, err := arena.New(kind)
	if err != nil {
		t.Fatal(err)
	}
	opts.Data = b
	return New(opts)
}

// pattern fills a deterministic per-object byte pattern.
func pattern(id ID, size int64) []byte {
	p := make([]byte, size)
	for i := range p {
		p[i] = byte(int64(id)*31 + int64(i)*7)
	}
	return p
}

// checkPayloads verifies every object's bytes still match its pattern.
func checkPayloads(t *testing.T, s *Space, live map[ID]int64) {
	t.Helper()
	for id, size := range live {
		got := make([]byte, size)
		if _, err := s.ReadData(id, got); err != nil {
			t.Fatalf("ReadData(%d): %v", id, err)
		}
		if want := pattern(id, size); !bytes.Equal(got, want) {
			t.Fatalf("object %d payload corrupted: got %v want %v", id, got[:min(8, len(got))], want[:min(8, len(want))])
		}
	}
}

// TestPayloadAccess covers the WriteData/ReadData/DataBytes contract on
// real, metered, and absent backends.
func TestPayloadAccess(t *testing.T) {
	s := newDataSpace(t, RAM(), arena.Heap)
	if err := s.Place(1, Extent{Start: 5, Size: 4}); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteData(1, []byte("abcd")); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteData(1, []byte("abcde")); err == nil {
		t.Fatal("oversized write accepted")
	}
	if err := s.WriteData(9, []byte("x")); err == nil {
		t.Fatal("write to unknown object accepted")
	}
	buf := make([]byte, 8)
	n, err := s.ReadData(1, buf)
	if err != nil || n != 4 || string(buf[:4]) != "abcd" {
		t.Fatalf("ReadData = %d, %v, %q", n, err, buf[:4])
	}
	if b, ok := s.DataBytes(1); !ok || string(b) != "abcd" {
		t.Fatalf("DataBytes = %q, %v", b, ok)
	}

	m := newDataSpace(t, RAM(), arena.Metered)
	if err := m.Place(1, Extent{Start: 0, Size: 2}); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteData(1, []byte("ab")); err != ErrNoData {
		t.Fatalf("metered WriteData err = %v, want ErrNoData", err)
	}
	if _, ok := m.DataBytes(1); ok {
		t.Fatal("metered DataBytes succeeded")
	}

	bare := New(RAM())
	if err := bare.Place(1, Extent{Start: 0, Size: 2}); err != nil {
		t.Fatal(err)
	}
	if err := bare.WriteData(1, []byte("ab")); err != ErrNoData {
		t.Fatalf("bare WriteData err = %v, want ErrNoData", err)
	}
}

// TestMoveCarriesPayload: per-move relocation (including an overlapping
// self-move in RAM mode) carries bytes.
func TestMoveCarriesPayload(t *testing.T) {
	s := newDataSpace(t, RAM(), arena.Heap)
	if err := s.Place(7, Extent{Start: 10, Size: 6}); err != nil {
		t.Fatal(err)
	}
	want := pattern(7, 6)
	if err := s.WriteData(7, want); err != nil {
		t.Fatal(err)
	}
	for _, to := range []int64{40, 38, 39, 0} { // disjoint, overlap, overlap, far
		if err := s.Move(7, to); err != nil {
			t.Fatalf("Move to %d: %v", to, err)
		}
		got, _ := s.DataBytes(7)
		if !bytes.Equal(got, want) {
			t.Fatalf("after move to %d: payload %v, want %v", to, got, want)
		}
	}
}

// TestBulkAndSessionCarryPayload drives the same randomized plan
// through ApplyMoves, a single-chunk session, and a many-chunk session
// (both with and without an emitter), checking payload integrity and
// identical BytesMoved after each.
func TestBulkAndSessionCarryPayload(t *testing.T) {
	type runner struct {
		name string
		run  func(s *Space, plan []Relocation, maxRef int) error
	}
	emit := func(MoveResult) {}
	runners := []runner{
		{"applyMoves", func(s *Space, plan []Relocation, maxRef int) error {
			_, _, err := s.ApplyMoves(plan, maxRef, nil, 1<<40, nil)
			return err
		}},
		{"applyMovesEmit", func(s *Space, plan []Relocation, maxRef int) error {
			_, _, err := s.ApplyMoves(plan, maxRef, nil, 1<<40, emit)
			return err
		}},
		{"sessionBulk", func(s *Space, plan []Relocation, maxRef int) error {
			ms, err := s.BeginMoves(plan, maxRef, nil)
			if err != nil {
				return err
			}
			if _, _, err := ms.Advance(1<<40, nil); err != nil {
				return err
			}
			return ms.Commit()
		}},
		{"sessionChunks", func(s *Space, plan []Relocation, maxRef int) error {
			ms, err := s.BeginMoves(plan, maxRef, nil)
			if err != nil {
				return err
			}
			for !ms.Done() {
				if _, _, err := ms.Advance(3, nil); err != nil {
					return err
				}
			}
			return ms.Commit()
		}},
		{"sessionChunksEmit", func(s *Space, plan []Relocation, maxRef int) error {
			ms, err := s.BeginMoves(plan, maxRef, nil)
			if err != nil {
				return err
			}
			for !ms.Done() {
				if _, _, err := ms.Advance(2, emit); err != nil {
					return err
				}
			}
			return ms.Commit()
		}},
	}
	for _, r := range runners {
		t.Run(r.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(41))
			s := newDataSpace(t, RAM(), arena.Heap)
			live := map[ID]int64{}
			next := int64(0)
			for id := ID(1); id <= 12; id++ {
				size := 1 + rng.Int63n(5)
				if err := s.Place(id, Extent{Start: next, Size: size}); err != nil {
					t.Fatal(err)
				}
				if err := s.WriteData(id, pattern(id, size)); err != nil {
					t.Fatal(err)
				}
				live[id] = size
				next += size + rng.Int63n(3)
			}
			// A compaction-style plan: park everything past the frontier,
			// then pack leftward — the same two-hop shape flush schedules
			// produce, exercising multi-step refs and overlap ordering.
			overflow := next + 16
			var plan []Relocation
			park := overflow
			ref := int32(0)
			for id := ID(1); id <= 12; id++ {
				plan = append(plan, Relocation{ID: id, To: park, Ref: ref})
				park += live[id]
				ref++
			}
			pack := int64(0)
			ref = 0
			for id := ID(1); id <= 12; id++ {
				plan = append(plan, Relocation{ID: id, To: pack, Ref: ref})
				pack += live[id]
				ref++
			}
			if err := r.run(s, plan, 12); err != nil {
				t.Fatalf("%s: %v", r.name, err)
			}
			if err := s.Verify(); err != nil {
				t.Fatal(err)
			}
			checkPayloads(t, s, live)
			// Every runner applies the identical plan: identical volume.
			var wantMoved int64
			for _, size := range live {
				wantMoved += 2 * size
			}
			if got := s.Data().Counters().BytesMoved; got != wantMoved {
				t.Fatalf("BytesMoved = %d, want %d", got, wantMoved)
			}
		})
	}
}

// TestMeteredMatchesHeapCounters: the same op sequence produces the
// same BytesMoved on a metered and a heap space.
func TestMeteredMatchesHeapCounters(t *testing.T) {
	drive := func(s *Space) {
		rng := rand.New(rand.NewSource(7))
		next := int64(0)
		for id := ID(1); id <= 40; id++ {
			size := 1 + rng.Int63n(9)
			if err := s.Place(id, Extent{Start: next, Size: size}); err != nil {
				panic(err)
			}
			next += size
		}
		for i := 0; i < 200; i++ {
			id := ID(1 + rng.Intn(40))
			ext, _ := s.Extent(id)
			if err := s.Move(id, next); err != nil {
				panic(fmt.Sprintf("move %d: %v", id, err))
			}
			next += ext.Size
		}
	}
	met := newDataSpace(t, RAM(), arena.Metered)
	hp := newDataSpace(t, RAM(), arena.Heap)
	drive(met)
	drive(hp)
	mc, hc := met.Data().Counters(), hp.Data().Counters()
	if mc.BytesMoved != hc.BytesMoved || mc.Copies != hc.Copies {
		t.Fatalf("metered %+v vs heap %+v", mc, hc)
	}
	if mc.BytesMoved == 0 {
		t.Fatal("no moves recorded")
	}
}
