package addrspace

import (
	"fmt"
	"sort"
)

// intervalSet tracks the space freed since the last checkpoint: a
// canonical sequence of disjoint, non-adjacent extents in address order.
//
// Like the placement index, it is a two-level blocked container (a
// directory of bounded blocks whose concatenation is the canonical
// sequence). A flat sorted slice pays an O(pieces) memmove per insertion,
// which a delete-heavy Durable workload with tiny objects turns into the
// dominant cost once the freed set holds ~10^5 fragments between
// checkpoints; blocks cap the per-add memmove at O(intervalBlockCap)
// plus directory probes, while an add that swallows k existing intervals
// still retires them in one range splice. The total volume is maintained
// incrementally so FreedVolume is O(1).
type intervalSet struct {
	blocks [][]Extent // each non-empty; concatenation canonical
	vol    int64      // cached total volume
	pool   [][]Extent // retired block storage for reuse
}

// intervalBlockCap is the target block size: blocks split at
// 2*intervalBlockCap entries.
const intervalBlockCap = 128

// ipos addresses one interval: blocks[b][i].
type ipos struct {
	b, i int
}

// takeBlock returns an empty block with room for 2*intervalBlockCap
// entries.
func (s *intervalSet) takeBlock() []Extent {
	if n := len(s.pool); n > 0 {
		blk := s.pool[n-1]
		s.pool = s.pool[:n-1]
		return blk[:0]
	}
	return make([]Extent, 0, 2*intervalBlockCap)
}

// reset empties the set (a checkpoint makes all freed space reusable),
// keeping block storage for reuse.
func (s *intervalSet) reset() {
	for _, blk := range s.blocks {
		s.pool = append(s.pool, blk)
	}
	s.blocks = s.blocks[:0]
	s.vol = 0
}

// lowerMerge returns the position of the first interval whose end reaches
// ext.Start — the leftmost possible merge partner (overlapping or
// adjacent) — or ok=false if every interval ends strictly before it.
func (s *intervalSet) lowerMerge(ext Extent) (ipos, bool) {
	b := sort.Search(len(s.blocks), func(i int) bool {
		blk := s.blocks[i]
		return blk[len(blk)-1].End() >= ext.Start
	})
	if b == len(s.blocks) {
		return ipos{}, false
	}
	blk := s.blocks[b]
	i := sort.Search(len(blk), func(j int) bool { return blk[j].End() >= ext.Start })
	return ipos{b: b, i: i}, true
}

// upperMerge returns the position of the first interval starting strictly
// after ext.End() — one past the rightmost merge partner. The position may
// be one past the last block.
func (s *intervalSet) upperMerge(ext Extent) ipos {
	b := sort.Search(len(s.blocks), func(i int) bool {
		return s.blocks[i][0].Start > ext.End()
	})
	if b == 0 {
		return ipos{}
	}
	blk := s.blocks[b-1]
	i := sort.Search(len(blk), func(j int) bool { return blk[j].Start > ext.End() })
	if i == len(blk) {
		return ipos{b: b}
	}
	return ipos{b: b - 1, i: i}
}

// add inserts ext, merging with neighbors. Overlapping adds are tolerated
// (the same cell can be freed, checkpoint-skipped, and freed again only via
// distinct objects, but merging keeps the set canonical regardless).
func (s *intervalSet) add(ext Extent) {
	if ext.Size <= 0 {
		return
	}
	lo, ok := s.lowerMerge(ext)
	if !ok {
		// Strictly after everything: append to the last block.
		s.vol += ext.Size
		if len(s.blocks) == 0 {
			s.blocks = append(s.blocks, append(s.takeBlock(), ext))
			return
		}
		last := len(s.blocks) - 1
		s.blocks[last] = append(s.blocks[last], ext)
		if len(s.blocks[last]) == cap(s.blocks[last]) {
			s.splitBlock(last)
		}
		return
	}
	hi := s.upperMerge(ext)
	if lo == hi {
		// No merge partner: plain insertion at lo.
		s.vol += ext.Size
		blk := s.blocks[lo.b]
		blk = append(blk, Extent{})
		copy(blk[lo.i+1:], blk[lo.i:])
		blk[lo.i] = ext
		s.blocks[lo.b] = blk
		if len(blk) == cap(blk) {
			s.splitBlock(lo.b)
		}
		return
	}
	// Merge the range [lo, hi) with ext into one interval.
	merged := ext
	if first := s.blocks[lo.b][lo.i]; first.Start < merged.Start {
		merged.Size += merged.Start - first.Start
		merged.Start = first.Start
	}
	lastPos, _ := s.prevPos(hi)
	if e := s.blocks[lastPos.b][lastPos.i].End(); e > merged.End() {
		merged.Size += e - merged.End()
	}
	var removed int64
	if lo.b == hi.b {
		// The whole merge range lives in one block: replace its first
		// entry with the merged interval and close the gap in place.
		blk := s.blocks[lo.b]
		for _, e := range blk[lo.i:hi.i] {
			removed += e.Size
		}
		blk[lo.i] = merged
		s.blocks[lo.b] = append(blk[:lo.i+1], blk[hi.i:]...)
		s.vol += merged.Size - removed
		return
	}
	// Cross-block merge: the range covers block lo.b's whole tail, so
	// after the splice the merged interval appends to it, ahead of the
	// survivors of block hi.b.
	removed = s.spliceOut(lo, hi)
	s.vol += merged.Size - removed
	s.blocks[lo.b] = append(s.blocks[lo.b], merged)
	if len(s.blocks[lo.b]) == cap(s.blocks[lo.b]) {
		s.splitBlock(lo.b)
	}
}

// prevPos steps p back by one interval; ok is false at the beginning.
func (s *intervalSet) prevPos(p ipos) (ipos, bool) {
	if p.i > 0 {
		return ipos{b: p.b, i: p.i - 1}, true
	}
	if p.b == 0 {
		return ipos{}, false
	}
	return ipos{b: p.b - 1, i: len(s.blocks[p.b-1]) - 1}, true
}

// spliceOut removes the intervals in the cross-block range [lo, hi)
// (lo.b < hi.b), returning their total volume. Block lo.b keeps its head
// [0, lo.i); whole blocks in between retire to the pool; block hi.b, if
// any, keeps its tail from hi.i on (trimmed in place). The caller refills
// block lo.b, which may be left empty, immediately.
func (s *intervalSet) spliceOut(lo, hi ipos) int64 {
	var removed int64
	for _, e := range s.blocks[lo.b][lo.i:] {
		removed += e.Size
	}
	s.blocks[lo.b] = s.blocks[lo.b][:lo.i]
	for b := lo.b + 1; b < hi.b; b++ {
		for _, e := range s.blocks[b] {
			removed += e.Size
		}
		s.pool = append(s.pool, s.blocks[b])
	}
	if hi.b < len(s.blocks) && hi.i > 0 {
		blk := s.blocks[hi.b]
		for _, e := range blk[:hi.i] {
			removed += e.Size
		}
		copy(blk, blk[hi.i:])
		s.blocks[hi.b] = blk[:len(blk)-hi.i]
	}
	// Close the directory gap left by the retired middle blocks.
	n := copy(s.blocks[lo.b+1:], s.blocks[hi.b:])
	s.blocks = s.blocks[:lo.b+1+n]
	return removed
}

// splitBlock divides block b in two.
func (s *intervalSet) splitBlock(b int) {
	blk := s.blocks[b]
	half := len(blk) / 2
	right := append(s.takeBlock(), blk[half:]...)
	s.blocks[b] = blk[:half]
	s.blocks = append(s.blocks, nil)
	copy(s.blocks[b+2:], s.blocks[b+1:])
	s.blocks[b+1] = right
}

// intersects reports whether ext overlaps any interval in the set.
func (s *intervalSet) intersects(ext Extent) bool {
	if ext.Size <= 0 {
		return false
	}
	b := sort.Search(len(s.blocks), func(i int) bool {
		blk := s.blocks[i]
		return blk[len(blk)-1].End() > ext.Start
	})
	if b == len(s.blocks) {
		return false
	}
	blk := s.blocks[b]
	i := sort.Search(len(blk), func(j int) bool { return blk[j].End() > ext.Start })
	return blk[i].Start < ext.End()
}

// volume returns the total size of the set.
func (s *intervalSet) volume() int64 { return s.vol }

// count returns the number of intervals.
func (s *intervalSet) count() int {
	n := 0
	for _, blk := range s.blocks {
		n += len(blk)
	}
	return n
}

// forEach visits the intervals in address order.
func (s *intervalSet) forEach(fn func(Extent)) {
	for _, blk := range s.blocks {
		for _, e := range blk {
			fn(e)
		}
	}
}

// verify checks canonical form: non-empty blocks, sorted, disjoint,
// non-adjacent, non-empty intervals, and the cached volume.
func (s *intervalSet) verify() error {
	var vol int64
	var prev Extent
	havePrev := false
	for bi, blk := range s.blocks {
		if len(blk) == 0 {
			return fmt.Errorf("addrspace: freed set block %d is empty", bi)
		}
		for _, e := range blk {
			if e.Size <= 0 {
				return fmt.Errorf("addrspace: freed set has empty interval %v", e)
			}
			if havePrev && prev.End() >= e.Start {
				return fmt.Errorf("addrspace: freed set intervals %v and %v out of order/overlapping/adjacent", prev, e)
			}
			prev, havePrev = e, true
			vol += e.Size
		}
	}
	if vol != s.vol {
		return fmt.Errorf("addrspace: freed set volume: cached %d, actual %d", s.vol, vol)
	}
	return nil
}
