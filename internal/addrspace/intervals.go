package addrspace

import (
	"fmt"
	"sort"
)

// intervalSet is a sorted list of disjoint, non-adjacent extents. It tracks
// the space freed since the last checkpoint.
type intervalSet []Extent

// add inserts ext, merging with neighbors. Overlapping adds are tolerated
// (the same cell can be freed, checkpoint-skipped, and freed again only via
// distinct objects, but merging keeps the set canonical regardless).
func (s *intervalSet) add(ext Extent) {
	if ext.Size <= 0 {
		return
	}
	set := *s
	// First interval whose end reaches ext.Start (possible merge partner).
	lo := sort.Search(len(set), func(i int) bool { return set[i].End() >= ext.Start })
	// First interval starting strictly after ext.End() (beyond any merge).
	hi := sort.Search(len(set), func(i int) bool { return set[i].Start > ext.End() })
	if lo == hi {
		// No neighbors to merge: insert at lo.
		set = append(set, Extent{})
		copy(set[lo+1:], set[lo:])
		set[lo] = ext
		*s = set
		return
	}
	merged := ext
	if set[lo].Start < merged.Start {
		merged.Size += merged.Start - set[lo].Start
		merged.Start = set[lo].Start
	}
	if e := set[hi-1].End(); e > merged.End() {
		merged.Size += e - merged.End()
	}
	set[lo] = merged
	set = append(set[:lo+1], set[hi:]...)
	*s = set
}

// intersects reports whether ext overlaps any interval in the set.
func (s intervalSet) intersects(ext Extent) bool {
	if ext.Size <= 0 {
		return false
	}
	i := sort.Search(len(s), func(i int) bool { return s[i].End() > ext.Start })
	return i < len(s) && s[i].Start < ext.End()
}

// volume returns the total size of the set.
func (s intervalSet) volume() int64 {
	var v int64
	for _, e := range s {
		v += e.Size
	}
	return v
}

// verify checks canonical form: sorted, disjoint, non-empty intervals.
func (s intervalSet) verify() error {
	for i, e := range s {
		if e.Size <= 0 {
			return fmt.Errorf("addrspace: freed set has empty interval %v", e)
		}
		if i > 0 && s[i-1].End() > e.Start {
			return fmt.Errorf("addrspace: freed set intervals %v and %v out of order/overlapping", s[i-1], e)
		}
	}
	return nil
}
