package addrspace

import (
	"fmt"
	"sort"
)

// pindex is the address-ordered placement index: a two-level sorted
// container (a directory of bounded blocks) whose concatenation is the
// sorted-by-start sequence of all live placements.
//
// A flat sorted slice pays O(n) memmove per insert and remove — the
// dominant cost of buffered inserts and deletes once a single structure
// holds ~10^6 cells. Blocks cap that at O(blockCap) per mutation plus a
// directory probe, while keeping ordered scans and predecessor queries as
// cheap as before. The flush executor bypasses per-entry mutation
// entirely: it flattens the affected suffix, merges it with the move
// plan's final layout, and splices the result back in (replaceSuffix).
type pindex struct {
	blocks [][]placement // each non-empty, sorted; concatenation sorted
	count  int
	pool   [][]placement // retired block storage for reuse
}

// blockCap is the target block size: blocks split at 2*blockCap entries.
// 128 keeps the per-mutation memmove around 3 KB worst case while the
// directory stays small enough (n/128 headers) for cheap splices.
const blockCap = 128

// pos addresses one entry: blocks[b][i].
type pos struct {
	b, i int
}

// len returns the number of entries.
func (x *pindex) len() int { return x.count }

// last returns the final entry; callers check len first.
func (x *pindex) last() placement {
	blk := x.blocks[len(x.blocks)-1]
	return blk[len(blk)-1]
}

// at returns the entry at p.
func (x *pindex) at(p pos) placement { return x.blocks[p.b][p.i] }

// end reports the one-past-the-end position.
func (x *pindex) end() pos { return pos{b: len(x.blocks), i: 0} }

// valid reports whether p addresses an entry (not end).
func (x *pindex) valid(p pos) bool { return p.b < len(x.blocks) }

// next advances p by one entry.
func (x *pindex) next(p pos) pos {
	p.i++
	if p.i >= len(x.blocks[p.b]) {
		return pos{b: p.b + 1}
	}
	return p
}

// prev steps p back by one entry; ok is false at the beginning.
func (x *pindex) prev(p pos) (pos, bool) {
	if p.i > 0 {
		return pos{b: p.b, i: p.i - 1}, true
	}
	if p.b == 0 {
		return pos{}, false
	}
	return pos{b: p.b - 1, i: len(x.blocks[p.b-1]) - 1}, true
}

// lowerBound returns the position of the first entry with Start >= start
// (end() if none).
func (x *pindex) lowerBound(start int64) pos {
	// First block whose last entry reaches start, i.e. the block that
	// would contain it: directory probe on block minimums.
	b := sort.Search(len(x.blocks), func(i int) bool {
		blk := x.blocks[i]
		return blk[len(blk)-1].ext.Start >= start
	})
	if b == len(x.blocks) {
		return x.end()
	}
	blk := x.blocks[b]
	i := sort.Search(len(blk), func(j int) bool { return blk[j].ext.Start >= start })
	return pos{b: b, i: i}
}

// takeBlock returns an empty block with room for 2*blockCap entries.
func (x *pindex) takeBlock() []placement {
	if n := len(x.pool); n > 0 {
		blk := x.pool[n-1]
		x.pool = x.pool[:n-1]
		return blk[:0]
	}
	return make([]placement, 0, 2*blockCap)
}

// insert adds p, keeping order. Entries' starts are unique, so ties cannot
// occur.
func (x *pindex) insert(p placement) {
	x.count++
	if len(x.blocks) == 0 {
		blk := x.takeBlock()
		x.blocks = append(x.blocks, append(blk, p))
		return
	}
	// Block to host p: the one whose range covers it, i.e. the last block
	// whose first entry is <= p (new minima go to block 0).
	b := sort.Search(len(x.blocks), func(i int) bool {
		return x.blocks[i][0].ext.Start > p.ext.Start
	})
	if b > 0 {
		b--
	}
	blk := x.blocks[b]
	i := sort.Search(len(blk), func(j int) bool { return blk[j].ext.Start >= p.ext.Start })
	blk = append(blk, placement{})
	copy(blk[i+1:], blk[i:])
	blk[i] = p
	x.blocks[b] = blk
	if len(blk) == cap(blk) {
		x.split(b)
	}
}

// split divides block b in two.
func (x *pindex) split(b int) {
	blk := x.blocks[b]
	half := len(blk) / 2
	right := append(x.takeBlock(), blk[half:]...)
	x.blocks[b] = blk[:half]
	x.blocks = append(x.blocks, nil)
	copy(x.blocks[b+2:], x.blocks[b+1:])
	x.blocks[b+1] = right
}

// removeAt deletes the entry at p; empty blocks leave the directory.
func (x *pindex) removeAt(p pos) {
	x.count--
	blk := x.blocks[p.b]
	copy(blk[p.i:], blk[p.i+1:])
	blk = blk[:len(blk)-1]
	x.blocks[p.b] = blk
	if len(blk) == 0 {
		x.pool = append(x.pool, blk)
		copy(x.blocks[p.b:], x.blocks[p.b+1:])
		x.blocks = x.blocks[:len(x.blocks)-1]
	}
}

// find resolves the position of id, known to live at ext. Live starts are
// unique, so the exact search either lands on the entry or the index and
// the object map have desynced — a corrupted structure no defensive walk
// should paper over, so it panics.
func (x *pindex) find(id ID, ext Extent) pos {
	p := x.lowerBound(ext.Start)
	if !x.valid(p) || x.at(p).id != id || x.at(p).ext != ext {
		panic(fmt.Sprintf("addrspace: index desync: object %d at %v not found", id, ext))
	}
	return p
}

// forEach visits entries in address order.
func (x *pindex) forEach(fn func(id ID, ext Extent)) {
	for _, blk := range x.blocks {
		for _, p := range blk {
			fn(p.id, p.ext)
		}
	}
}

// forEachFrom visits entries from p to the end in address order.
func (x *pindex) forEachFrom(p pos, fn func(id ID, ext Extent)) {
	if !x.valid(p) {
		return
	}
	for _, e := range x.blocks[p.b][p.i:] {
		fn(e.id, e.ext)
	}
	for b := p.b + 1; b < len(x.blocks); b++ {
		for _, e := range x.blocks[b] {
			fn(e.id, e.ext)
		}
	}
}

// flattenFrom appends the entries from p to the end onto dst.
func (x *pindex) flattenFrom(p pos, dst []placement) []placement {
	if !x.valid(p) {
		return dst
	}
	dst = append(dst, x.blocks[p.b][p.i:]...)
	for b := p.b + 1; b < len(x.blocks); b++ {
		dst = append(dst, x.blocks[b]...)
	}
	return dst
}

// replaceSuffix substitutes everything from p on with ents (sorted, same
// address range), reusing retired blocks. The flush executor calls this
// once per batch instead of mutating entry by entry.
func (x *pindex) replaceSuffix(p pos, ents []placement) {
	removed := 0
	if x.valid(p) {
		blk := x.blocks[p.b]
		removed += len(blk) - p.i
		x.blocks[p.b] = blk[:p.i]
		for b := p.b + 1; b < len(x.blocks); b++ {
			removed += len(x.blocks[b])
			x.pool = append(x.pool, x.blocks[b])
		}
		keep := p.b + 1
		if p.i == 0 {
			x.pool = append(x.pool, x.blocks[p.b])
			keep = p.b
		}
		x.blocks = x.blocks[:keep]
	}
	x.count += len(ents) - removed
	for off := 0; off < len(ents); off += blockCap {
		end := off + blockCap
		if end > len(ents) {
			end = len(ents)
		}
		x.blocks = append(x.blocks, append(x.takeBlock(), ents[off:end]...))
	}
}

// verify checks the container invariants: non-empty blocks, global order,
// and an accurate count.
func (x *pindex) verify() error {
	total := 0
	var prev placement
	havePrev := false
	for bi, blk := range x.blocks {
		if len(blk) == 0 {
			return fmt.Errorf("addrspace: index block %d is empty", bi)
		}
		for _, p := range blk {
			if havePrev && prev.ext.Start >= p.ext.Start {
				return fmt.Errorf("addrspace: index entries out of order (%v then %v)", prev.ext, p.ext)
			}
			prev, havePrev = p, true
			total++
		}
	}
	if total != x.count {
		return fmt.Errorf("addrspace: index count %d, actual %d", x.count, total)
	}
	return nil
}
