package addrspace

import (
	"fmt"
	"sort"
)

// pindex is the address-ordered placement index: a two-level sorted
// container (a directory of bounded blocks) whose concatenation is the
// sorted-by-start sequence of all live placements.
//
// A flat sorted slice pays O(n) memmove per insert and remove — the
// dominant cost of buffered inserts and deletes once a single structure
// holds ~10^6 cells. Blocks cap that at O(blockCap) per mutation plus a
// directory probe, while keeping ordered scans and predecessor queries as
// cheap as before. The flush executor bypasses per-entry mutation
// entirely: it flattens the affected suffix, merges it with the move
// plan's final layout, and splices the result back in (replaceSuffix).
type pindex struct {
	blocks  [][]placement // each non-empty, sorted; concatenation sorted
	count   int
	pool    [][]placement // retired block storage for reuse
	scratch []placement   // insertRuns block-rebuild scratch
	gen     uint64        // bumped on every content mutation (staleness checks)
}

// blockCap is the target block size: blocks split at 2*blockCap entries.
// 128 keeps the per-mutation memmove around 3 KB worst case while the
// directory stays small enough (n/128 headers) for cheap splices.
const blockCap = 128

// pos addresses one entry: blocks[b][i].
type pos struct {
	b, i int
}

// len returns the number of entries.
func (x *pindex) len() int { return x.count }

// last returns the final entry; callers check len first.
func (x *pindex) last() placement {
	blk := x.blocks[len(x.blocks)-1]
	return blk[len(blk)-1]
}

// at returns the entry at p.
func (x *pindex) at(p pos) placement { return x.blocks[p.b][p.i] }

// end reports the one-past-the-end position.
func (x *pindex) end() pos { return pos{b: len(x.blocks), i: 0} }

// valid reports whether p addresses an entry (not end).
func (x *pindex) valid(p pos) bool { return p.b < len(x.blocks) }

// next advances p by one entry.
func (x *pindex) next(p pos) pos {
	p.i++
	if p.i >= len(x.blocks[p.b]) {
		return pos{b: p.b + 1}
	}
	return p
}

// prev steps p back by one entry; ok is false at the beginning.
func (x *pindex) prev(p pos) (pos, bool) {
	if p.i > 0 {
		return pos{b: p.b, i: p.i - 1}, true
	}
	if p.b == 0 {
		return pos{}, false
	}
	return pos{b: p.b - 1, i: len(x.blocks[p.b-1]) - 1}, true
}

// lowerBound returns the position of the first entry with Start >= start
// (end() if none).
func (x *pindex) lowerBound(start int64) pos {
	// First block whose last entry reaches start, i.e. the block that
	// would contain it: directory probe on block minimums.
	b := sort.Search(len(x.blocks), func(i int) bool {
		blk := x.blocks[i]
		return blk[len(blk)-1].ext.Start >= start
	})
	if b == len(x.blocks) {
		return x.end()
	}
	blk := x.blocks[b]
	i := sort.Search(len(blk), func(j int) bool { return blk[j].ext.Start >= start })
	return pos{b: b, i: i}
}

// takeBlock returns an empty block with room for 2*blockCap entries.
func (x *pindex) takeBlock() []placement {
	if n := len(x.pool); n > 0 {
		blk := x.pool[n-1]
		x.pool = x.pool[:n-1]
		return blk[:0]
	}
	return make([]placement, 0, 2*blockCap)
}

// insert adds p, keeping order. Entries' starts are unique, so ties cannot
// occur.
func (x *pindex) insert(p placement) {
	x.count++
	x.gen++
	if len(x.blocks) == 0 {
		blk := x.takeBlock()
		x.blocks = append(x.blocks, append(blk, p))
		return
	}
	// Block to host p: the one whose range covers it, i.e. the last block
	// whose first entry is <= p (new minima go to block 0).
	b := sort.Search(len(x.blocks), func(i int) bool {
		return x.blocks[i][0].ext.Start > p.ext.Start
	})
	if b > 0 {
		b--
	}
	blk := x.blocks[b]
	i := sort.Search(len(blk), func(j int) bool { return blk[j].ext.Start >= p.ext.Start })
	blk = append(blk, placement{})
	copy(blk[i+1:], blk[i:])
	blk[i] = p
	x.blocks[b] = blk
	if len(blk) == cap(blk) {
		x.split(b)
	}
}

// split divides block b in two.
func (x *pindex) split(b int) {
	blk := x.blocks[b]
	half := len(blk) / 2
	right := append(x.takeBlock(), blk[half:]...)
	x.blocks[b] = blk[:half]
	x.blocks = append(x.blocks, nil)
	copy(x.blocks[b+2:], x.blocks[b+1:])
	x.blocks[b+1] = right
}

// removeAt deletes the entry at p; empty blocks leave the directory.
func (x *pindex) removeAt(p pos) {
	x.count--
	x.gen++
	blk := x.blocks[p.b]
	copy(blk[p.i:], blk[p.i+1:])
	blk = blk[:len(blk)-1]
	x.blocks[p.b] = blk
	if len(blk) == 0 {
		x.pool = append(x.pool, blk)
		copy(x.blocks[p.b:], x.blocks[p.b+1:])
		x.blocks = x.blocks[:len(x.blocks)-1]
	}
}

// find resolves the position of id, known to live at ext. Live starts are
// unique, so the exact search either lands on the entry or the index and
// the object map have desynced — a corrupted structure no defensive walk
// should paper over, so it panics.
func (x *pindex) find(id ID, ext Extent) pos {
	p := x.lowerBound(ext.Start)
	if !x.valid(p) || x.at(p).id != id || x.at(p).ext != ext {
		panic(fmt.Sprintf("addrspace: index desync: object %d at %v not found", id, ext))
	}
	return p
}

// forEach visits entries in address order.
func (x *pindex) forEach(fn func(id ID, ext Extent)) {
	for _, blk := range x.blocks {
		for _, p := range blk {
			fn(p.id, p.ext)
		}
	}
}

// forEachFrom visits entries from p to the end in address order.
func (x *pindex) forEachFrom(p pos, fn func(id ID, ext Extent)) {
	if !x.valid(p) {
		return
	}
	for _, e := range x.blocks[p.b][p.i:] {
		fn(e.id, e.ext)
	}
	for b := p.b + 1; b < len(x.blocks); b++ {
		for _, e := range x.blocks[b] {
			fn(e.id, e.ext)
		}
	}
}

// flattenFrom appends the entries from p to the end onto dst.
func (x *pindex) flattenFrom(p pos, dst []placement) []placement {
	if !x.valid(p) {
		return dst
	}
	dst = append(dst, x.blocks[p.b][p.i:]...)
	for b := p.b + 1; b < len(x.blocks); b++ {
		dst = append(dst, x.blocks[b]...)
	}
	return dst
}

// replaceSuffix substitutes everything from p on with ents (sorted, same
// address range), reusing retired blocks. The flush executor calls this
// once per batch instead of mutating entry by entry.
func (x *pindex) replaceSuffix(p pos, ents []placement) {
	x.gen++
	removed := 0
	if x.valid(p) {
		blk := x.blocks[p.b]
		removed += len(blk) - p.i
		x.blocks[p.b] = blk[:p.i]
		for b := p.b + 1; b < len(x.blocks); b++ {
			removed += len(x.blocks[b])
			x.pool = append(x.pool, x.blocks[b])
		}
		keep := p.b + 1
		if p.i == 0 {
			x.pool = append(x.pool, x.blocks[p.b])
			keep = p.b
		}
		x.blocks = x.blocks[:keep]
	}
	x.count += len(ents) - removed
	for off := 0; off < len(ents); off += blockCap {
		end := off + blockCap
		if end > len(ents) {
			end = len(ents)
		}
		x.blocks = append(x.blocks, append(x.takeBlock(), ents[off:end]...))
	}
}

// removeStarts deletes the entries whose starts are listed in dels
// (ascending, each present — a missing start is an index desync and
// panics, like find). Each affected block compacts in one pass and empty
// blocks leave the directory in one splice, so a chunk of k deletions
// costs O(k + affected blocks · B + directory) instead of k tail
// memmoves.
func (x *pindex) removeStarts(dels []int64) {
	if len(dels) == 0 {
		return
	}
	x.gen++
	x.count -= len(dels)
	i := 0
	b := sort.Search(len(x.blocks), func(j int) bool {
		blk := x.blocks[j]
		return blk[len(blk)-1].ext.Start >= dels[0]
	})
	firstHole := -1
	for i < len(dels) {
		if b >= len(x.blocks) {
			panic(fmt.Sprintf("addrspace: index desync: entry with start %d not found", dels[i]))
		}
		blk := x.blocks[b]
		if blk[len(blk)-1].ext.Start < dels[i] {
			b++
			continue
		}
		w := sort.Search(len(blk), func(j int) bool { return blk[j].ext.Start >= dels[i] })
		r := w
		for r < len(blk) && i < len(dels) {
			if blk[r].ext.Start == dels[i] {
				i++
				r++
				continue
			}
			if dels[i] < blk[r].ext.Start {
				panic(fmt.Sprintf("addrspace: index desync: entry with start %d not found", dels[i]))
			}
			blk[w] = blk[r]
			w++
			r++
		}
		w += copy(blk[w:], blk[r:])
		x.blocks[b] = blk[:w]
		if w == 0 && firstHole < 0 {
			firstHole = b
		}
		b++
	}
	if firstHole >= 0 {
		out := firstHole
		for b := firstHole; b < len(x.blocks); b++ {
			if len(x.blocks[b]) == 0 {
				x.pool = append(x.pool, x.blocks[b])
				continue
			}
			x.blocks[out] = x.blocks[b]
			out++
		}
		x.blocks = x.blocks[:out]
	}
}

// insertRuns splices ins (sorted by start) into the index, validating
// every entry against its final neighbors: any overlap or duplicate start
// returns ErrOverlap. Each maximal run landing between two adjacent
// existing entries splices as one block edit (or block rebuild), so a
// chunk of k insertions clustered in r runs costs O(k + r·(B + log n))
// instead of k searches and tail memmoves.
func (x *pindex) insertRuns(ins []placement) error {
	if len(ins) == 0 {
		return nil
	}
	x.gen++
	for j := 0; j < len(ins); {
		if len(x.blocks) == 0 {
			for q := j; q+1 < len(ins); q++ {
				if ins[q].ext.End() > ins[q+1].ext.Start {
					return fmt.Errorf("%w: chunk lands %d at %v over %d at %v",
						ErrOverlap, ins[q+1].id, ins[q+1].ext, ins[q].id, ins[q].ext)
				}
			}
			for off := j; off < len(ins); off += blockCap {
				end := min(off+blockCap, len(ins))
				x.blocks = append(x.blocks, append(x.takeBlock(), ins[off:end]...))
				x.count += end - off
			}
			return nil
		}
		// Host block: the last one whose first entry is <= the run head
		// (new minima go to block 0), as in insert.
		b := sort.Search(len(x.blocks), func(k int) bool {
			return x.blocks[k][0].ext.Start > ins[j].ext.Start
		})
		if b > 0 {
			b--
		}
		blk := x.blocks[b]
		i := sort.Search(len(blk), func(k int) bool { return blk[k].ext.Start >= ins[j].ext.Start })
		var succ placement
		haveSucc := false
		if i < len(blk) {
			succ, haveSucc = blk[i], true
		} else if b+1 < len(x.blocks) {
			succ, haveSucc = x.blocks[b+1][0], true
		}
		k := j + 1
		for k < len(ins) && (!haveSucc || ins[k].ext.Start < succ.ext.Start) {
			k++
		}
		run := ins[j:k]
		if i > 0 {
			if p := blk[i-1]; p.ext.End() > run[0].ext.Start {
				return fmt.Errorf("%w: chunk lands %d at %v over %d at %v",
					ErrOverlap, run[0].id, run[0].ext, p.id, p.ext)
			}
		}
		for q := 0; q+1 < len(run); q++ {
			if run[q].ext.End() > run[q+1].ext.Start {
				return fmt.Errorf("%w: chunk lands %d at %v over %d at %v",
					ErrOverlap, run[q+1].id, run[q+1].ext, run[q].id, run[q].ext)
			}
		}
		if haveSucc && (run[0].ext.Start == succ.ext.Start || run[len(run)-1].ext.End() > succ.ext.Start) {
			return fmt.Errorf("%w: chunk lands %d at %v over %d at %v",
				ErrOverlap, run[len(run)-1].id, run[len(run)-1].ext, succ.id, succ.ext)
		}
		if len(blk)+len(run) <= cap(blk) {
			blk = blk[:len(blk)+len(run)]
			copy(blk[i+len(run):], blk[i:])
			copy(blk[i:], run)
			x.blocks[b] = blk
			if len(blk) == cap(blk) {
				x.split(b)
			}
		} else {
			// The run outgrows the block: rebuild it as a sequence of
			// blockCap-sized blocks spliced into the directory.
			x.scratch = append(append(append(x.scratch[:0], blk[:i]...), run...), blk[i:]...)
			x.pool = append(x.pool, blk)
			nb := (len(x.scratch) + blockCap - 1) / blockCap
			for t := 1; t < nb; t++ {
				x.blocks = append(x.blocks, nil)
			}
			copy(x.blocks[b+nb:], x.blocks[b+1:])
			off := 0
			for t := 0; t < nb; t++ {
				end := min(off+blockCap, len(x.scratch))
				x.blocks[b+t] = append(x.takeBlock(), x.scratch[off:end]...)
				off = end
			}
		}
		x.count += len(run)
		j = k
	}
	return nil
}

// verify checks the container invariants: non-empty blocks, global order,
// and an accurate count.
func (x *pindex) verify() error {
	total := 0
	var prev placement
	havePrev := false
	for bi, blk := range x.blocks {
		if len(blk) == 0 {
			return fmt.Errorf("addrspace: index block %d is empty", bi)
		}
		for _, p := range blk {
			if havePrev && prev.ext.Start >= p.ext.Start {
				return fmt.Errorf("addrspace: index entries out of order (%v then %v)", prev.ext, p.ext)
			}
			prev, havePrev = p, true
			total++
		}
	}
	if total != x.count {
		return fmt.Errorf("addrspace: index count %d, actual %d", x.count, total)
	}
	return nil
}
