package addrspace

import (
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestExtentBasics(t *testing.T) {
	e := Extent{Start: 10, Size: 5}
	if e.End() != 15 {
		t.Fatalf("End = %d", e.End())
	}
	cases := []struct {
		a, b Extent
		want bool
	}{
		{Extent{0, 5}, Extent{5, 5}, false},  // touching is not overlapping
		{Extent{0, 5}, Extent{4, 5}, true},   // one-cell overlap
		{Extent{0, 10}, Extent{2, 3}, true},  // containment
		{Extent{5, 5}, Extent{0, 5}, false},  // touching, other order
		{Extent{0, 1}, Extent{0, 1}, true},   // identical
		{Extent{0, 5}, Extent{20, 5}, false}, // far apart
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("%v overlaps %v = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(c.a); got != c.want {
			t.Errorf("overlap not symmetric for %v, %v", c.a, c.b)
		}
	}
}

func TestPlaceRejectsOverlap(t *testing.T) {
	s := New(RAM())
	if err := s.Place(1, Extent{0, 10}); err != nil {
		t.Fatal(err)
	}
	if err := s.Place(2, Extent{5, 10}); !errors.Is(err, ErrOverlap) {
		t.Fatalf("expected ErrOverlap, got %v", err)
	}
	if err := s.Place(2, Extent{10, 10}); err != nil {
		t.Fatalf("touching placement should work: %v", err)
	}
	if err := s.Place(2, Extent{30, 5}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("expected ErrDuplicate, got %v", err)
	}
	if err := s.Place(3, Extent{-1, 5}); !errors.Is(err, ErrBadExtent) {
		t.Fatalf("expected ErrBadExtent for negative start, got %v", err)
	}
	if err := s.Place(3, Extent{0, 0}); !errors.Is(err, ErrBadExtent) {
		t.Fatalf("expected ErrBadExtent for empty extent, got %v", err)
	}
	if err := s.Place(0, Extent{100, 5}); err == nil {
		t.Fatal("zero id accepted")
	}
}

func TestMoveSemantics(t *testing.T) {
	t.Run("ram allows self overlap", func(t *testing.T) {
		s := New(RAM())
		if err := s.Place(1, Extent{0, 10}); err != nil {
			t.Fatal(err)
		}
		if err := s.Move(1, 5); err != nil {
			t.Fatalf("memmove-style move failed: %v", err)
		}
		if e, _ := s.Extent(1); e.Start != 5 {
			t.Fatalf("extent after move: %v", e)
		}
	})
	t.Run("strict forbids self overlap", func(t *testing.T) {
		s := New(Options{StrictNonOverlap: true})
		if err := s.Place(1, Extent{0, 10}); err != nil {
			t.Fatal(err)
		}
		if err := s.Move(1, 5); !errors.Is(err, ErrSelfOverlap) {
			t.Fatalf("expected ErrSelfOverlap, got %v", err)
		}
		if err := s.Move(1, 10); err != nil {
			t.Fatalf("disjoint move failed: %v", err)
		}
	})
	t.Run("move onto other object fails", func(t *testing.T) {
		s := New(RAM())
		_ = s.Place(1, Extent{0, 10})
		_ = s.Place(2, Extent{20, 10})
		if err := s.Move(1, 15); !errors.Is(err, ErrOverlap) {
			t.Fatalf("expected ErrOverlap, got %v", err)
		}
	})
	t.Run("move unknown", func(t *testing.T) {
		s := New(RAM())
		if err := s.Move(42, 0); !errors.Is(err, ErrUnknownObject) {
			t.Fatalf("expected ErrUnknownObject, got %v", err)
		}
	})
	t.Run("no-op move", func(t *testing.T) {
		s := New(RAM())
		_ = s.Place(1, Extent{3, 4})
		if err := s.Move(1, 3); err != nil {
			t.Fatal(err)
		}
		if s.Moves() != 0 {
			t.Fatal("no-op move counted")
		}
	})
}

func TestCheckpointRule(t *testing.T) {
	s := New(Durable())
	if err := s.Place(1, Extent{0, 10}); err != nil {
		t.Fatal(err)
	}
	if err := s.Place(2, Extent{10, 10}); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(1); err != nil {
		t.Fatal(err)
	}
	// The freed space cannot be rewritten before a checkpoint.
	if err := s.Place(3, Extent{0, 5}); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("expected ErrWouldBlock, got %v", err)
	}
	if !s.WouldBlock(Extent{5, 2}) {
		t.Fatal("WouldBlock should report the freed range")
	}
	if s.BlockedWrites() != 1 {
		t.Fatalf("blocked writes = %d", s.BlockedWrites())
	}
	if s.FreedVolume() != 10 {
		t.Fatalf("freed volume = %d", s.FreedVolume())
	}
	s.Checkpoint()
	if s.WouldBlock(Extent{0, 10}) {
		t.Fatal("freed set should clear at checkpoint")
	}
	if err := s.Place(3, Extent{0, 5}); err != nil {
		t.Fatalf("place after checkpoint: %v", err)
	}
	// A move frees its source.
	if err := s.Move(2, 40); err != nil {
		t.Fatal(err)
	}
	if err := s.Place(4, Extent{12, 2}); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("move source should be freed-since-checkpoint: %v", err)
	}
	s.Checkpoint()
	if err := s.Place(4, Extent{12, 2}); err != nil {
		t.Fatal(err)
	}
}

func TestCellTrackingGhosts(t *testing.T) {
	s := New(Options{StrictNonOverlap: true, CheckpointRule: true, TrackCells: true})
	if err := s.Place(1, Extent{0, 8}); err != nil {
		t.Fatal(err)
	}
	if !s.HoldsData(1, Extent{0, 8}) {
		t.Fatal("data missing after place")
	}
	if err := s.Move(1, 20); err != nil {
		t.Fatal(err)
	}
	// Both copies exist until something overwrites the ghost.
	if !s.HoldsData(1, Extent{20, 8}) {
		t.Fatal("data missing at new location")
	}
	if !s.HoldsData(1, Extent{0, 8}) {
		t.Fatal("ghost copy should remain at the old location")
	}
	s.Checkpoint()
	if err := s.Place(2, Extent{0, 4}); err != nil {
		t.Fatal(err)
	}
	if s.HoldsData(1, Extent{0, 8}) {
		t.Fatal("ghost should be overwritten by object 2")
	}
	if s.CellOwner(0) != 2 || s.CellOwner(4) != 1 {
		t.Fatalf("cell owners: %d %d", s.CellOwner(0), s.CellOwner(4))
	}
	if s.CellOwner(-1) != 0 || s.CellOwner(1<<40) != 0 {
		t.Fatal("out-of-range cells should report 0")
	}
}

func TestRemoveAndVolume(t *testing.T) {
	s := New(RAM())
	_ = s.Place(1, Extent{0, 5})
	_ = s.Place(2, Extent{5, 7})
	if s.Volume() != 12 || s.Len() != 2 {
		t.Fatalf("volume=%d len=%d", s.Volume(), s.Len())
	}
	if s.MaxEnd() != 12 {
		t.Fatalf("maxEnd=%d", s.MaxEnd())
	}
	if err := s.Remove(2); err != nil {
		t.Fatal(err)
	}
	if s.Volume() != 5 || s.MaxEnd() != 5 {
		t.Fatalf("after remove: volume=%d maxEnd=%d", s.Volume(), s.MaxEnd())
	}
	if err := s.Remove(2); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("double remove: %v", err)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestForEachOrder(t *testing.T) {
	s := New(RAM())
	_ = s.Place(3, Extent{20, 5})
	_ = s.Place(1, Extent{0, 5})
	_ = s.Place(2, Extent{10, 5})
	var order []ID
	s.ForEach(func(id ID, ext Extent) { order = append(order, id) })
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("address order: %v", order)
	}
}

// TestIndexDesyncPanics asserts the placement lookup refuses to walk past
// a corrupted index: with unique live starts the exact binary search must
// land on the object, so a mismatch is a structural desync that panics
// instead of being silently tolerated.
func TestIndexDesyncPanics(t *testing.T) {
	mustPanic := func(name string, corrupt func(*Space), op func(*Space) error) {
		t.Helper()
		s := New(RAM())
		for i, ext := range []Extent{{0, 4}, {10, 4}, {20, 4}} {
			if err := s.Place(ID(i+1), ext); err != nil {
				t.Fatal(err)
			}
		}
		corrupt(s)
		defer func() {
			if recover() == nil {
				t.Errorf("%s: corrupted index did not panic", name)
			}
		}()
		_ = op(s)
	}
	// Shift an index entry so the map and the index disagree.
	shift := func(s *Space) { s.byStart.blocks[0][1].ext.Start += 2 }
	mustPanic("remove", shift, func(s *Space) error { return s.Remove(2) })
	mustPanic("relocate", shift, func(s *Space) error { return s.Move(2, 50) })
	// Swap two entries' identities: search lands on the wrong object.
	swap := func(s *Space) {
		blk := s.byStart.blocks[0]
		blk[0].id, blk[1].id = blk[1].id, blk[0].id
	}
	mustPanic("wrong id", swap, func(s *Space) error { return s.Remove(1) })
}

func TestSubtract(t *testing.T) {
	cases := []struct {
		a, b Extent
		want []Extent
	}{
		{Extent{0, 10}, Extent{20, 5}, []Extent{{0, 10}}},       // disjoint
		{Extent{0, 10}, Extent{0, 10}, nil},                     // full cover
		{Extent{0, 10}, Extent{0, 4}, []Extent{{4, 6}}},         // prefix covered
		{Extent{0, 10}, Extent{6, 10}, []Extent{{0, 6}}},        // suffix covered
		{Extent{0, 10}, Extent{3, 4}, []Extent{{0, 3}, {7, 3}}}, // middle covered
	}
	for _, c := range cases {
		var pieces [2]Extent
		got := pieces[:subtract(c.a, c.b, &pieces)]
		if len(got) != len(c.want) {
			t.Errorf("subtract(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("subtract(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
			}
		}
	}
}

// refSpace is a brute-force reference: a map of cells.
type refSpace struct {
	cells map[int64]ID
	exts  map[ID]Extent
}

func newRef() *refSpace {
	return &refSpace{cells: map[int64]ID{}, exts: map[ID]Extent{}}
}

func (r *refSpace) canWrite(ext Extent, self ID) bool {
	for i := ext.Start; i < ext.End(); i++ {
		if o, ok := r.cells[i]; ok && o != self {
			return false
		}
	}
	return true
}

func (r *refSpace) place(id ID, ext Extent) bool {
	if _, dup := r.exts[id]; dup || !r.canWrite(ext, 0) {
		return false
	}
	r.exts[id] = ext
	for i := ext.Start; i < ext.End(); i++ {
		r.cells[i] = id
	}
	return true
}

func (r *refSpace) move(id ID, to int64) bool {
	old, ok := r.exts[id]
	if !ok {
		return false
	}
	ext := Extent{to, old.Size}
	if !r.canWrite(ext, id) {
		return false
	}
	for i := old.Start; i < old.End(); i++ {
		delete(r.cells, i)
	}
	for i := ext.Start; i < ext.End(); i++ {
		r.cells[i] = id
	}
	r.exts[id] = ext
	return true
}

func (r *refSpace) remove(id ID) bool {
	old, ok := r.exts[id]
	if !ok {
		return false
	}
	for i := old.Start; i < old.End(); i++ {
		delete(r.cells, i)
	}
	delete(r.exts, id)
	return true
}

func (r *refSpace) maxEnd() int64 {
	var m int64
	for _, e := range r.exts {
		if e.End() > m {
			m = e.End()
		}
	}
	return m
}

// TestDifferentialAgainstReference drives random operations through the
// sorted-index implementation and a brute-force cell map; outcomes and
// aggregate state must agree exactly.
func TestDifferentialAgainstReference(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		s := New(RAM())
		ref := newRef()
		nextID := ID(1)
		var live []ID
		for op := 0; op < 300; op++ {
			switch rng.IntN(3) {
			case 0: // place
				id := nextID
				nextID++
				ext := Extent{Start: rng.Int64N(400), Size: 1 + rng.Int64N(20)}
				got := s.Place(id, ext) == nil
				want := ref.place(id, ext)
				if got != want {
					t.Logf("place(%d,%v): impl=%v ref=%v", id, ext, got, want)
					return false
				}
				if got {
					live = append(live, id)
				}
			case 1: // move
				if len(live) == 0 {
					continue
				}
				id := live[rng.IntN(len(live))]
				to := rng.Int64N(400)
				// RAM mode allows self overlap; the reference must treat
				// the object's own cells as writable, which canWrite does.
				got := s.Move(id, to) == nil
				want := ref.move(id, to)
				if got != want {
					t.Logf("move(%d,%d): impl=%v ref=%v", id, to, got, want)
					return false
				}
			case 2: // remove
				if len(live) == 0 {
					continue
				}
				i := rng.IntN(len(live))
				id := live[i]
				got := s.Remove(id) == nil
				want := ref.remove(id)
				if got != want {
					t.Logf("remove(%d): impl=%v ref=%v", id, got, want)
					return false
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			if s.MaxEnd() != ref.maxEnd() {
				t.Logf("maxEnd: impl=%d ref=%d", s.MaxEnd(), ref.maxEnd())
				return false
			}
			if err := s.Verify(); err != nil {
				t.Log(err)
				return false
			}
		}
		// Extent agreement for all survivors.
		for id, want := range ref.exts {
			got, ok := s.Extent(id)
			if !ok || got != want {
				t.Logf("extent(%d): impl=%v,%v ref=%v", id, got, ok, want)
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	s := New(RAM())
	_ = s.Place(1, Extent{0, 5})
	_ = s.Place(2, Extent{10, 5})
	// Corrupt internals deliberately.
	s.byStart.blocks[0][0].ext.Size = 100
	if err := s.Verify(); err == nil {
		t.Fatal("Verify missed an index/map mismatch")
	}
}
