package addrspace

import (
	"errors"
	"math/rand/v2"
	"testing"
)

// buildChurnSpaces builds a pair of spaces sharing a randomized history
// and returns a flush-shaped plan over the survivors (evacuate far right,
// pack leftward), exactly like the ApplyMoves cross-check.
func buildChurnSpaces(t *testing.T, opts Options, seed uint64) (s, mirror *Space, plan []Relocation, maxRef int) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 0x5e55))
	n := 20 + rng.IntN(80)
	sizes := make([]int64, n)
	gaps := make([]int64, n)
	for i := range sizes {
		sizes[i] = int64(1 + rng.IntN(9))
		gaps[i] = int64(rng.IntN(4))
	}
	var err error
	s, mirror, err = spacePair(opts, func(sp *Space) error {
		pos := int64(0)
		for i := 1; i <= n; i++ {
			if err := sp.Place(ID(i), Extent{Start: pos + gaps[i-1], Size: sizes[i-1]}); err != nil {
				return err
			}
			pos += gaps[i-1] + sizes[i-1]
		}
		for i := 1; i <= n; i += 7 {
			if err := sp.Remove(ID(i)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	far := s.MaxEnd() + s.Volume()
	off := far
	ref := int32(0)
	s.ForEach(func(id ID, ext Extent) {
		plan = append(plan, Relocation{ID: id, To: off, Ref: ref})
		off += ext.Size
		ref++
	})
	cursor := int64(0)
	ref = 0
	s.ForEach(func(id ID, ext Extent) {
		plan = append(plan, Relocation{ID: id, To: cursor, Ref: ref})
		cursor += ext.Size
		ref++
	})
	return s, mirror, plan, s.Len()
}

// TestSessionMatchesSerialChunked drives a session through random budget
// chunks and the mirror through the per-move loop with identical chunking,
// asserting identical MoveResults, stats, layouts, and a verified space
// after every chunk — the property the deamortized variant depends on.
func TestSessionMatchesSerialChunked(t *testing.T) {
	for _, opts := range []Options{RAM(), Durable()} {
		for seed := uint64(0); seed < 20; seed++ {
			rng := rand.New(rand.NewPCG(seed, 0xc4a))
			s, mirror, plan, maxRef := buildChurnSpaces(t, opts, seed)
			sess, err := s.BeginMoves(plan, maxRef, nil)
			if err != nil {
				t.Fatalf("opts %+v seed %d: BeginMoves: %v", opts, seed, err)
			}
			next := 0
			for !sess.Done() {
				budget := 1 + int64(rng.IntN(12))
				var got applyRecorder
				consumed, vol, err := sess.Advance(budget, got.add)
				if err != nil {
					t.Fatalf("opts %+v seed %d: Advance: %v", opts, seed, err)
				}
				wantConsumed, wantVol, want := applySerial(t, mirror, plan[next:], budget)
				if consumed != wantConsumed || vol != wantVol {
					t.Fatalf("opts %+v seed %d at %d: consumed/vol %d/%d, serial %d/%d",
						opts, seed, next, consumed, vol, wantConsumed, wantVol)
				}
				if len(got) != len(want) {
					t.Fatalf("opts %+v seed %d at %d: %d results vs %d serial", opts, seed, next, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("opts %+v seed %d at %d: result %d differs:\n session %+v\n serial  %+v",
							opts, seed, next, i, got[i], want[i])
					}
				}
				next += consumed
				// The index must be fully consistent between chunks.
				if err := s.Verify(); err != nil {
					t.Fatalf("opts %+v seed %d at %d: verify: %v", opts, seed, next, err)
				}
				if s.MaxEnd() != mirror.MaxEnd() {
					t.Fatalf("opts %+v seed %d at %d: maxend %d vs %d", opts, seed, next, s.MaxEnd(), mirror.MaxEnd())
				}
			}
			if err := sess.Commit(); err != nil {
				t.Fatalf("opts %+v seed %d: commit: %v", opts, seed, err)
			}
			if s.Moves() != mirror.Moves() || s.Checkpoints() != mirror.Checkpoints() ||
				s.BlockedWrites() != mirror.BlockedWrites() || s.FreedVolume() != mirror.FreedVolume() {
				t.Fatalf("opts %+v seed %d: stats diverge: moves %d/%d ckpts %d/%d blocked %d/%d freed %d/%d",
					opts, seed, s.Moves(), mirror.Moves(), s.Checkpoints(), mirror.Checkpoints(),
					s.BlockedWrites(), mirror.BlockedWrites(), s.FreedVolume(), mirror.FreedVolume())
			}
			s.ForEach(func(id ID, ext Extent) {
				if got, _ := mirror.Extent(id); got != ext {
					t.Fatalf("opts %+v seed %d: object %d at %v, serial at %v", opts, seed, id, ext, got)
				}
			})
		}
	}
}

// TestSessionBatchedChunksMatchSerial drives the unobserved fast path
// (nil emitter → chunk-end index reconciliation through sorted range
// edits) and asserts it leaves the space byte-for-byte where the per-move
// loop does: verified index, identical stats, layouts, and footprints
// after every chunk.
func TestSessionBatchedChunksMatchSerial(t *testing.T) {
	for _, opts := range []Options{RAM(), Durable()} {
		for seed := uint64(0); seed < 20; seed++ {
			rng := rand.New(rand.NewPCG(seed, 0xba7c4ed))
			s, mirror, plan, maxRef := buildChurnSpaces(t, opts, seed+100)
			sess, err := s.BeginMoves(plan, maxRef, nil)
			if err != nil {
				t.Fatalf("opts %+v seed %d: BeginMoves: %v", opts, seed, err)
			}
			// Burn the pristine state so the bulk path cannot trigger and
			// every chunk exercises the batched reconciliation.
			next := 0
			for !sess.Done() {
				budget := 1 + int64(rng.IntN(25))
				consumed, vol, err := sess.Advance(budget, nil)
				if err != nil {
					t.Fatalf("opts %+v seed %d at %d: Advance: %v", opts, seed, next, err)
				}
				wantConsumed, wantVol, _ := applySerial(t, mirror, plan[next:], budget)
				if consumed != wantConsumed || vol != wantVol {
					t.Fatalf("opts %+v seed %d at %d: consumed/vol %d/%d, serial %d/%d",
						opts, seed, next, consumed, vol, wantConsumed, wantVol)
				}
				next += consumed
				if err := s.Verify(); err != nil {
					t.Fatalf("opts %+v seed %d at %d: verify: %v", opts, seed, next, err)
				}
				if s.MaxEnd() != mirror.MaxEnd() {
					t.Fatalf("opts %+v seed %d at %d: maxend %d vs %d", opts, seed, next, s.MaxEnd(), mirror.MaxEnd())
				}
			}
			if err := sess.Commit(); err != nil {
				t.Fatalf("opts %+v seed %d: commit: %v", opts, seed, err)
			}
			if s.Moves() != mirror.Moves() || s.Checkpoints() != mirror.Checkpoints() ||
				s.BlockedWrites() != mirror.BlockedWrites() || s.FreedVolume() != mirror.FreedVolume() {
				t.Fatalf("opts %+v seed %d: stats diverge: moves %d/%d ckpts %d/%d blocked %d/%d freed %d/%d",
					opts, seed, s.Moves(), mirror.Moves(), s.Checkpoints(), mirror.Checkpoints(),
					s.BlockedWrites(), mirror.BlockedWrites(), s.FreedVolume(), mirror.FreedVolume())
			}
			s.ForEach(func(id ID, ext Extent) {
				if got, _ := mirror.Extent(id); got != ext {
					t.Fatalf("opts %+v seed %d: object %d at %v, serial at %v", opts, seed, id, ext, got)
				}
			})
		}
	}
}

// TestSessionBulkFirstChunk: a first Advance whose budget covers the whole
// plan must behave exactly like one-shot ApplyMoves (it takes the bulk
// path) — results, layout, and stats.
func TestSessionBulkFirstChunk(t *testing.T) {
	for _, opts := range []Options{RAM(), Durable()} {
		s, mirror, plan, maxRef := buildChurnSpaces(t, opts, 99)
		sess, err := s.BeginMoves(plan, maxRef, nil)
		if err != nil {
			t.Fatal(err)
		}
		var got applyRecorder
		consumed, vol, err := sess.Advance(1<<40, got.add)
		if err != nil {
			t.Fatal(err)
		}
		if !sess.Done() || consumed != len(plan) {
			t.Fatalf("bulk advance consumed %d of %d", consumed, len(plan))
		}
		if err := sess.Commit(); err != nil {
			t.Fatal(err)
		}
		var want applyRecorder
		wantConsumed, wantVol, err := mirror.ApplyMoves(plan, maxRef, nil, 1<<40, want.add)
		if err != nil {
			t.Fatal(err)
		}
		if consumed != wantConsumed || vol != wantVol || len(got) != len(want) {
			t.Fatalf("bulk session diverges from ApplyMoves: %d/%d vs %d/%d", consumed, vol, wantConsumed, wantVol)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("result %d differs:\n session %+v\n apply   %+v", i, got[i], want[i])
			}
		}
		if err := s.Verify(); err != nil {
			t.Fatal(err)
		}
		s.ForEach(func(id ID, ext Extent) {
			if w, _ := mirror.Extent(id); w != ext {
				t.Fatalf("object %d at %v vs %v", id, ext, w)
			}
		})
	}
}

// TestSessionMidPlacements: placing and removing objects beyond the plan's
// range between chunks (the update log's behavior) must leave the session
// unaffected and the index consistent.
func TestSessionMidPlacements(t *testing.T) {
	s := New(Durable())
	for i := 0; i < 6; i++ {
		if err := s.Place(ID(i+1), Extent{Start: int64(i * 10), Size: 4}); err != nil {
			t.Fatal(err)
		}
	}
	// Park everything at 100.. then pack to 0.. .
	var plan []Relocation
	off := int64(100)
	for i := 0; i < 6; i++ {
		plan = append(plan, Relocation{ID: ID(i + 1), To: off, Ref: int32(i)})
		off += 4
	}
	pos := int64(0)
	for i := 0; i < 6; i++ {
		plan = append(plan, Relocation{ID: ID(i + 1), To: pos, Ref: int32(i)})
		pos += 4
	}
	sess, err := s.BeginMoves(plan, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	logBase := int64(200)
	logID := ID(1000)
	for !sess.Done() {
		if _, _, err := sess.Advance(5, nil); err != nil {
			t.Fatal(err)
		}
		// Log-style traffic past the plan's range.
		if err := s.Place(logID, Extent{Start: logBase, Size: 3}); err != nil {
			t.Fatalf("mid-session place: %v", err)
		}
		logBase += 3
		logID++
		if logID%2 == 0 {
			if err := s.Remove(logID - 1); err != nil {
				t.Fatalf("mid-session remove: %v", err)
			}
		}
		if err := s.Verify(); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Commit(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if ext, _ := s.Extent(ID(i + 1)); ext.Start != int64(i*4) {
			t.Fatalf("object %d at %v, want start %d", i+1, ext, i*4)
		}
	}
}

// TestSessionIntermediateOverlap: a plan whose final layout is valid but
// whose chunk boundary lands on an overlapping intermediate layout is the
// schedule builder's bug; the observed path reports it as ErrOverlap with
// the move unapplied, the unobserved path panics rather than keep a
// corrupt index.
func TestSessionIntermediateOverlap(t *testing.T) {
	build := func() (*Space, *MoveSession) {
		s := New(RAM())
		for i, ext := range []Extent{{0, 5}, {10, 5}} {
			if err := s.Place(ID(i+1), ext); err != nil {
				t.Fatal(err)
			}
		}
		// A's final position (20) is disjoint, but its first hop (8)
		// overlaps B at [10,15).
		sess, err := s.BeginMoves([]Relocation{{ID: 1, To: 8, Ref: 0}, {ID: 1, To: 20, Ref: 0}}, 1, nil)
		if err != nil {
			t.Fatalf("final layout is valid, BeginMoves rejected it: %v", err)
		}
		return s, sess
	}
	// Observed path: graceful error, index still consistent.
	s, sess := build()
	var rec applyRecorder
	if _, _, err := sess.Advance(5, rec.add); !errors.Is(err, ErrOverlap) {
		t.Fatalf("observed path: err %v, want ErrOverlap", err)
	}
	if err := s.Verify(); err != nil {
		t.Fatalf("observed path left inconsistent space: %v", err)
	}
	// Unobserved path: the chunk-end reconciliation panics.
	_, sess = build()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("unobserved path: no panic on overlapping intermediate layout")
			}
		}()
		sess.Advance(5, nil)
	}()
}

// TestSessionGuards pins the session discipline: empty plans and
// overlapping sessions are rejected, premature and double commits fail,
// ApplyMoves is locked out while a session is active, and whole-plan
// validation rejects a plan whose tail is invalid up front.
func TestSessionGuards(t *testing.T) {
	s := New(RAM())
	for i := 0; i < 3; i++ {
		if err := s.Place(ID(i+1), Extent{Start: int64(i * 10), Size: 4}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.BeginMoves(nil, 0, nil); err == nil {
		t.Fatal("empty plan accepted")
	}
	// Whole-plan validation: the second entry collides with object 3.
	bad := []Relocation{{ID: 1, To: 50, Ref: 0}, {ID: 2, To: 22, Ref: 1}}
	if _, err := s.BeginMoves(bad, 2, nil); !errors.Is(err, ErrOverlap) {
		t.Fatalf("invalid tail: err %v, want ErrOverlap", err)
	}
	if s.Moves() != 0 {
		t.Fatal("rejected plan mutated the space")
	}
	plan := []Relocation{{ID: 1, To: 50, Ref: 0}, {ID: 2, To: 60, Ref: 1}}
	sess, err := s.BeginMoves(plan, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.BeginMoves(plan, 2, nil); err == nil {
		t.Fatal("second concurrent session accepted")
	}
	if _, _, err := s.ApplyMoves(plan, 2, nil, 1<<40, nil); err == nil {
		t.Fatal("ApplyMoves accepted during an active session")
	}
	if err := sess.Commit(); err == nil {
		t.Fatal("premature commit accepted")
	}
	if _, _, err := sess.Advance(1<<40, nil); err != nil {
		t.Fatal(err)
	}
	if err := sess.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Commit(); err == nil {
		t.Fatal("double commit accepted")
	}
	// The space is free for the next plan.
	back := []Relocation{{ID: 1, To: 0, Ref: 0}, {ID: 2, To: 10, Ref: 1}}
	sess2, err := s.BeginMoves(back, 2, nil)
	if err != nil {
		t.Fatalf("session after commit: %v", err)
	}
	if _, _, err := sess2.Advance(1, nil); err != nil {
		t.Fatal(err)
	}
	if sess2.Done() {
		t.Fatal("budget 1 finished an 8-volume plan")
	}
	if _, _, err := sess2.Advance(1<<40, nil); err != nil {
		t.Fatal(err)
	}
	if err := sess2.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}
