package addrspace

// Op is one request of a batched op group: an insert of Size cells
// under ID, or (Del) a delete of ID. It lives here — the one leaf
// package every engine already imports — so the cores, the engine
// boundary, and the facades can all speak the same group record
// without an import cycle.
type Op struct {
	ID   ID
	Size int64
	Del  bool
}
