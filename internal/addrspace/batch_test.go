package addrspace

import (
	"errors"
	"math/rand/v2"
	"testing"
)

// applyRecorder captures MoveResults.
type applyRecorder []MoveResult

func (a *applyRecorder) add(m MoveResult) { *a = append(*a, m) }

// spacePair runs build against two fresh spaces so they share the whole
// history — placements and the freed-since-checkpoint set included.
func spacePair(opts Options, build func(*Space) error) (*Space, *Space, error) {
	s, m := New(opts), New(opts)
	if err := build(s); err != nil {
		return nil, nil, err
	}
	return s, m, build(m)
}

// applySerial replays a plan through Move with the per-move blocking
// loop, recording the same observables ApplyMoves reports.
func applySerial(t *testing.T, s *Space, plan []Relocation, budget int64) (int, int64, []MoveResult) {
	t.Helper()
	var out []MoveResult
	var vol int64
	for i, mv := range plan {
		if vol >= budget {
			return i, vol, out
		}
		old, ok := s.Extent(mv.ID)
		if !ok {
			t.Fatalf("serial: unknown object %d", mv.ID)
		}
		if old.Start == mv.To {
			continue
		}
		res := MoveResult{ID: mv.ID, Size: old.Size, From: old.Start, To: mv.To, PreFootprint: s.MaxEnd()}
		for {
			err := s.Move(mv.ID, mv.To)
			if err == nil {
				break
			}
			if errors.Is(err, ErrWouldBlock) {
				s.Checkpoint()
				res.Checkpointed = true
				continue
			}
			t.Fatalf("serial move %d to %d: %v", mv.ID, mv.To, err)
		}
		res.Footprint = s.MaxEnd()
		vol += old.Size
		out = append(out, res)
	}
	return len(plan), vol, out
}

// TestApplyMovesMatchesSerial cross-checks ApplyMoves against per-move
// execution on randomized compaction-style plans, for both rule sets and
// with quota-bounded partial application.
func TestApplyMovesMatchesSerial(t *testing.T) {
	for _, opts := range []Options{RAM(), Durable()} {
		for seed := uint64(0); seed < 20; seed++ {
			rng := rand.New(rand.NewPCG(seed, 0xba7c4))
			n := 20 + rng.IntN(60)
			sizes := make([]int64, n)
			gaps := make([]int64, n)
			for i := range sizes {
				sizes[i] = int64(1 + rng.IntN(9))
				gaps[i] = int64(rng.IntN(4))
			}
			s, mirror, err := spacePair(opts, func(sp *Space) error {
				pos := int64(0)
				for i := 1; i <= n; i++ {
					if err := sp.Place(ID(i), Extent{Start: pos + gaps[i-1], Size: sizes[i-1]}); err != nil {
						return err
					}
					pos += gaps[i-1] + sizes[i-1]
				}
				// Remove a few objects so the Durable runs have a freed
				// set to block on.
				for i := 1; i <= n; i += 7 {
					if err := sp.Remove(ID(i)); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}

			// Plan: evacuate every survivor far right, then pack leftward
			// from zero — the shape of a real flush, self-overlap free.
			// Refs are dense in index order, repeated across both passes.
			var plan []Relocation
			far := s.MaxEnd() + s.Volume()
			off := far
			ref := int32(0)
			s.ForEach(func(id ID, ext Extent) {
				plan = append(plan, Relocation{ID: id, To: off, Ref: ref})
				off += ext.Size
				ref++
			})
			cursor := int64(0)
			ref = 0
			s.ForEach(func(id ID, ext Extent) {
				plan = append(plan, Relocation{ID: id, To: cursor, Ref: ref})
				cursor += ext.Size
				ref++
			})
			maxRef := s.Len()

			budget := int64(1) << 40
			if seed%2 == 1 {
				budget = 1 + int64(rng.IntN(int(s.Volume()+1)))
			}
			var got applyRecorder
			consumed, vol, err := s.ApplyMoves(plan, maxRef, nil, budget, got.add)
			if err != nil {
				t.Fatalf("opts %+v seed %d: ApplyMoves: %v", opts, seed, err)
			}
			wantConsumed, wantVol, want := applySerial(t, mirror, plan, budget)

			if consumed != wantConsumed || vol != wantVol {
				t.Fatalf("opts %+v seed %d: consumed/vol %d/%d, serial %d/%d",
					opts, seed, consumed, vol, wantConsumed, wantVol)
			}
			if len(got) != len(want) {
				t.Fatalf("opts %+v seed %d: %d results vs %d serial", opts, seed, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("opts %+v seed %d: result %d differs:\n batch  %+v\n serial %+v",
						opts, seed, i, got[i], want[i])
				}
			}
			if err := s.Verify(); err != nil {
				t.Fatalf("opts %+v seed %d: verify: %v", opts, seed, err)
			}
			if s.Moves() != mirror.Moves() || s.Checkpoints() != mirror.Checkpoints() ||
				s.BlockedWrites() != mirror.BlockedWrites() || s.FreedVolume() != mirror.FreedVolume() ||
				s.MaxEnd() != mirror.MaxEnd() {
				t.Fatalf("opts %+v seed %d: stats diverge: moves %d/%d ckpts %d/%d blocked %d/%d freed %d/%d maxend %d/%d",
					opts, seed, s.Moves(), mirror.Moves(), s.Checkpoints(), mirror.Checkpoints(),
					s.BlockedWrites(), mirror.BlockedWrites(), s.FreedVolume(), mirror.FreedVolume(),
					s.MaxEnd(), mirror.MaxEnd())
			}
			s.ForEach(func(id ID, ext Extent) {
				if got, _ := mirror.Extent(id); got != ext {
					t.Fatalf("opts %+v seed %d: object %d at %v, serial at %v", opts, seed, id, ext, got)
				}
			})
		}
	}
}

// TestApplyMovesValidation exercises the up-front plan validation: every
// rejection leaves the space untouched.
func TestApplyMovesValidation(t *testing.T) {
	build := func(opts Options) *Space {
		s := New(opts)
		for i, ext := range []Extent{{0, 4}, {10, 4}, {20, 4}} {
			if err := s.Place(ID(i+1), ext); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	cases := []struct {
		name string
		opts Options
		plan []Relocation
		want error
	}{
		{"unknown object", RAM(), []Relocation{{ID: 99, To: 50}}, ErrUnknownObject},
		{"negative target", RAM(), []Relocation{{ID: 1, To: -3}}, ErrBadExtent},
		{"lands on unmoved", RAM(), []Relocation{{ID: 1, To: 12}}, ErrOverlap},
		{"moved collide", RAM(), []Relocation{{ID: 1, To: 50}, {ID: 2, To: 52, Ref: 1}}, ErrOverlap},
		{"strict self overlap", Durable(), []Relocation{{ID: 1, To: 2}}, ErrSelfOverlap},
		{"ref out of range", RAM(), []Relocation{{ID: 1, To: 50, Ref: 7}}, nil},
		{"ref reuse across objects", RAM(), []Relocation{{ID: 1, To: 50}, {ID: 2, To: 60}}, nil},
	}
	for _, c := range cases {
		s := build(c.opts)
		before := s.MaxEnd()
		_, _, err := s.ApplyMoves(c.plan, 3, nil, 1<<40, nil)
		if c.want != nil && !errors.Is(err, c.want) {
			t.Errorf("%s: got error %v, want %v", c.name, err, c.want)
		}
		if err == nil {
			t.Errorf("%s: invalid plan accepted", c.name)
		}
		if s.MaxEnd() != before || s.Moves() != 0 {
			t.Errorf("%s: rejected plan mutated the space", c.name)
		}
		if err := s.Verify(); err != nil {
			t.Errorf("%s: verify after rejection: %v", c.name, err)
		}
	}
	// Memmove semantics allow self-overlap without strict mode.
	s := build(RAM())
	if _, _, err := s.ApplyMoves([]Relocation{{ID: 1, To: 2}}, 1, nil, 1<<40, nil); err != nil {
		t.Errorf("memmove self overlap rejected: %v", err)
	}
}

// TestApplyMovesRevisits covers plans that move the same object several
// times, including back to its origin (net no-op must keep its index
// entry valid).
func TestApplyMovesRevisits(t *testing.T) {
	s := New(RAM())
	for i, ext := range []Extent{{0, 4}, {10, 4}} {
		if err := s.Place(ID(i+1), ext); err != nil {
			t.Fatal(err)
		}
	}
	plan := []Relocation{
		{ID: 1, To: 30, Ref: 0}, // park far right
		{ID: 2, To: 40, Ref: 1},
		{ID: 1, To: 0, Ref: 0}, // back to origin: net no-op
		{ID: 2, To: 4, Ref: 1}, // pack against it
	}
	var rec applyRecorder
	consumed, vol, err := s.ApplyMoves(plan, 2, nil, 1<<40, rec.add)
	if err != nil {
		t.Fatal(err)
	}
	if consumed != 4 || vol != 16 {
		t.Fatalf("consumed %d vol %d, want 4/16", consumed, vol)
	}
	// Footprint trajectory: 34 after parking 1, 44 after parking 2, still
	// 44 while 2 is parked, 8 at the end.
	wantFoot := []int64{34, 44, 44, 8}
	for i, m := range rec {
		if m.Footprint != wantFoot[i] {
			t.Fatalf("move %d footprint %d, want %d (%+v)", i, m.Footprint, wantFoot[i], m)
		}
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Extent(1); got.Start != 0 {
		t.Fatalf("object 1 at %v, want start 0", got)
	}
	if got, _ := s.Extent(2); got.Start != 4 {
		t.Fatalf("object 2 at %v, want start 4", got)
	}
}

// TestApplyMovesBudget pins the quota semantics: entries are consumed
// while the applied volume is below budget (overshooting by at most one
// move), and no-ops consume entries but no budget.
func TestApplyMovesBudget(t *testing.T) {
	s := New(RAM())
	for i := 0; i < 4; i++ {
		if err := s.Place(ID(i+1), Extent{Start: int64(i * 10), Size: 4}); err != nil {
			t.Fatal(err)
		}
	}
	plan := []Relocation{
		{ID: 1, To: 0, Ref: 0},   // no-op: consumes the entry, not the budget
		{ID: 2, To: 50, Ref: 1},  // 4 volume
		{ID: 3, To: 60, Ref: 2},  // 4 volume: crosses the budget, still applied
		{ID: 4, To: 100, Ref: 3}, // not reached
	}
	consumed, vol, err := s.ApplyMoves(plan, 4, nil, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if consumed != 3 || vol != 8 {
		t.Fatalf("consumed %d vol %d, want 3/8", consumed, vol)
	}
	if got, _ := s.Extent(4); got.Start != 30 {
		t.Fatalf("object 4 moved to %v despite exhausted budget", got)
	}
	if consumed, vol, err = s.ApplyMoves(plan[3:], 4, nil, 1, nil); err != nil || consumed != 1 || vol != 4 {
		t.Fatalf("resume: consumed %d vol %d err %v, want 1/4/nil", consumed, vol, err)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}
