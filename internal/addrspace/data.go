package addrspace

import (
	"fmt"

	"realloc/internal/arena"
)

// This file is the payload surface of the substrate: per-object byte
// access over the arena backend the space was configured with. The
// relocation executors (Move, ApplyMoves, session chunks) keep the
// backend coherent with the index — whatever bytes an object holds, a
// flush carries them to the object's new extent — so these accessors
// always address the object's *current* placement.

// Data exposes the payload backend (nil for index-only spaces). Callers
// use it for counters and for raw extent access during recovery; all
// object-relative access should go through WriteData/ReadData/DataBytes.
func (s *Space) Data() arena.Backend { return s.data }

// HasData reports whether the space has a real payload backend: one that
// physically stores bytes, as opposed to the metered backend or none.
func (s *Space) HasData() bool { return s.data != nil && s.data.Real() }

// WriteData copies p into object id's payload, starting at the object's
// first cell. len(p) must not exceed the object's size.
func (s *Space) WriteData(id ID, p []byte) error {
	ext, ok := s.objects[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownObject, id)
	}
	if !s.HasData() {
		return ErrNoData
	}
	if int64(len(p)) > ext.Size {
		return fmt.Errorf("addrspace: write of %d bytes into object %d of size %d", len(p), id, ext.Size)
	}
	copy(s.data.Bytes(ext.Start, int64(len(p))), p)
	return nil
}

// ReadData copies object id's payload into p, starting at the object's
// first cell, and returns how many bytes were copied: min(len(p), size).
func (s *Space) ReadData(id ID, p []byte) (int, error) {
	ext, ok := s.objects[id]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownObject, id)
	}
	if !s.HasData() {
		return 0, ErrNoData
	}
	n := int64(len(p))
	if n > ext.Size {
		n = ext.Size
	}
	copy(p[:n], s.data.Bytes(ext.Start, n))
	return int(n), nil
}

// DataBytes returns the live byte slice of object id's payload: the
// object's full extent, aliasing backend memory. The slice is valid only
// until the next operation that can move objects or grow the backend.
// It returns false for unknown objects and spaces without a real
// backend.
func (s *Space) DataBytes(id ID) ([]byte, bool) {
	ext, ok := s.objects[id]
	if !ok || !s.HasData() {
		return nil, false
	}
	return s.data.Bytes(ext.Start, ext.Size), true
}
