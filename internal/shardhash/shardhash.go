// Package shardhash is the one shared definition of the static id→shard
// hash: the SplitMix64 finalizer reduced modulo the shard count. The
// sharded reallocator uses it as the default (pre-rebalancing) route, and
// the skewed workload generators use it to construct id populations whose
// hash homes concentrate on chosen shards.
package shardhash

// Mix64 is the SplitMix64 finalizer: a cheap bijective scrambler that
// spreads sequential ids evenly across shards.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Home returns the static hash home of id among n shards.
func Home(id int64, n int) int {
	return int(Mix64(uint64(id)) % uint64(n))
}
