package baseline

import (
	"realloc/internal/addrspace"
	"realloc/internal/trace"
)

// LogCompact is the logging-and-compacting reallocator from the paper's
// Section 2 intuition: allocate left to right, leave holes on delete, and
// compact everything whenever the footprint reaches Threshold times the
// live volume. With Threshold = 2 it is (2,2)-competitive for the linear
// cost function — and Θ(∆)-amortized per delete under unit cost, which is
// exactly the failure mode cost-oblivious reallocation removes.
type LogCompact struct {
	base
	// Threshold is the footprint/volume compaction trigger; 0 means 2.
	Threshold float64
	end       int64
	compacts  int64
}

// NewLogCompact returns a logging-and-compacting allocator.
func NewLogCompact(rec trace.Recorder) *LogCompact {
	return &LogCompact{base: newBase(rec), Threshold: 2}
}

// Name implements Allocator.
func (l *LogCompact) Name() string { return "logcompact" }

// Compactions returns how many full compactions have run.
func (l *LogCompact) Compactions() int64 { return l.compacts }

// Insert appends at the log head.
func (l *LogCompact) Insert(id addrspace.ID, size int64) error {
	if err := l.place(id, addrspace.Extent{Start: l.end, Size: size}); err != nil {
		return err
	}
	l.end += size
	if err := l.maybeCompact(); err != nil {
		return err
	}
	l.emitOpEnd()
	return nil
}

// Delete leaves a hole; a compaction reclaims it when the footprint
// reaches Threshold times the live volume.
func (l *LogCompact) Delete(id addrspace.ID) error {
	ext, err := l.remove(id)
	if err != nil {
		return err
	}
	if ext.End() == l.end {
		l.end = l.lastEnd()
	}
	if err := l.maybeCompact(); err != nil {
		return err
	}
	l.emitOpEnd()
	return nil
}

// lastEnd recomputes the bump pointer after a trailing delete.
func (l *LogCompact) lastEnd() int64 { return l.space.MaxEnd() }

// maybeCompact packs every live object leftward when the trigger fires.
func (l *LogCompact) maybeCompact() error {
	thr := l.Threshold
	if thr == 0 {
		thr = 2
	}
	if l.vol == 0 || float64(l.end) < thr*float64(l.vol) {
		return nil
	}
	l.compacts++
	type placed struct {
		id  addrspace.ID
		ext addrspace.Extent
	}
	var objs []placed
	l.space.ForEach(func(id addrspace.ID, ext addrspace.Extent) {
		objs = append(objs, placed{id, ext})
	})
	pos := int64(0)
	for _, o := range objs {
		if err := l.move(o.id, pos); err != nil {
			return err
		}
		pos += o.ext.Size
	}
	l.end = pos
	return nil
}
