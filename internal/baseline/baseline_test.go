package baseline

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"realloc/internal/addrspace"
	"realloc/internal/trace"
	"realloc/internal/workload"
)

// allAllocators builds one of each baseline.
func allAllocators(rec trace.Recorder) []Allocator {
	return []Allocator{
		NewFirstFit(rec),
		NewBestFit(rec),
		NewNextFit(rec),
		NewBuddy(rec),
		NewLogCompact(rec),
		NewClassGap(rec),
	}
}

// TestChurnCorrectness drives every baseline through churn, verifying the
// substrate invariants (disjoint extents, consistent volume) throughout.
func TestChurnCorrectness(t *testing.T) {
	for _, a := range allAllocators(nil) {
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			churn := &workload.Churn{Seed: 11, Sizes: workload.Uniform{Min: 1, Max: 64}, TargetVolume: 3000}
			for i := 0; i < 3000; i++ {
				op, _ := churn.Next()
				var err error
				if op.Insert {
					err = a.Insert(op.ID, op.Size)
				} else {
					err = a.Delete(op.ID)
				}
				if err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
				if i%97 == 0 {
					if err := spaceOf(a).Verify(); err != nil {
						t.Fatalf("op %d: %v", i, err)
					}
				}
			}
			if got, want := a.Volume(), churn.LiveVolume(); got != want {
				t.Fatalf("volume %d != generator %d", got, want)
			}
			if a.Footprint() < a.Volume() {
				t.Fatalf("footprint %d below volume %d", a.Footprint(), a.Volume())
			}
		})
	}
}

// spaceOf digs out the substrate for verification.
func spaceOf(a Allocator) *addrspace.Space {
	switch v := a.(type) {
	case *FreeListAllocator:
		return v.Space()
	case *Buddy:
		return v.Space()
	case *LogCompact:
		return v.Space()
	case *ClassGap:
		return v.Space()
	}
	panic("unknown allocator")
}

func TestErrorsOnBadOps(t *testing.T) {
	for _, a := range allAllocators(nil) {
		if err := a.Delete(42); err == nil {
			t.Errorf("%s accepted delete of unknown object", a.Name())
		}
		if err := a.Insert(1, 8); err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if err := a.Insert(1, 8); err == nil {
			t.Errorf("%s accepted duplicate insert", a.Name())
		}
	}
}

func TestFirstFitReusesHoles(t *testing.T) {
	a := NewFirstFit(nil)
	for i := int64(1); i <= 5; i++ {
		if err := a.Insert(addrspace.ID(i), 10); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Delete(2); err != nil { // hole at [10,20)
		t.Fatal(err)
	}
	if err := a.Insert(6, 10); err != nil {
		t.Fatal(err)
	}
	ext, _ := a.Space().Extent(6)
	if ext.Start != 10 {
		t.Fatalf("first fit placed at %d, want the hole at 10", ext.Start)
	}
	// A too-large request skips the (now absent) hole and extends.
	if err := a.Insert(7, 11); err != nil {
		t.Fatal(err)
	}
	if ext, _ := a.Space().Extent(7); ext.Start != 50 {
		t.Fatalf("oversized insert placed at %d, want 50", ext.Start)
	}
}

func TestBestFitPicksTightest(t *testing.T) {
	a := NewBestFit(nil)
	// Build holes of size 10 and 6.
	ids := []struct {
		id   addrspace.ID
		size int64
	}{{1, 10}, {2, 5}, {3, 6}, {4, 5}}
	for _, x := range ids {
		if err := a.Insert(x.id, x.size); err != nil {
			t.Fatal(err)
		}
	}
	_ = a.Delete(1) // hole [0,10)
	_ = a.Delete(3) // hole [15,21)
	if err := a.Insert(5, 6); err != nil {
		t.Fatal(err)
	}
	ext, _ := a.Space().Extent(5)
	if ext.Start != 15 {
		t.Fatalf("best fit chose %d, want the size-6 hole at 15", ext.Start)
	}
}

func TestFreeListMergingAndTrim(t *testing.T) {
	a := NewFirstFit(nil)
	for i := int64(1); i <= 4; i++ {
		_ = a.Insert(addrspace.ID(i), 10)
	}
	_ = a.Delete(2)
	_ = a.Delete(3) // adjacent holes merge: [10,30)
	if a.FreeVolume() != 20 {
		t.Fatalf("free volume = %d", a.FreeVolume())
	}
	if err := a.Insert(5, 20); err != nil {
		t.Fatal(err)
	}
	if ext, _ := a.Space().Extent(5); ext.Start != 10 {
		t.Fatalf("merged hole not reused: placed at %d", ext.Start)
	}
	// Trailing deletes retreat the bump pointer.
	_ = a.Delete(4)
	if a.Footprint() != 30 {
		t.Fatalf("footprint after trailing delete = %d", a.Footprint())
	}
	if err := a.Insert(6, 5); err != nil {
		t.Fatal(err)
	}
	if ext, _ := a.Space().Extent(6); ext.Start != 30 {
		t.Fatalf("bump pointer did not retreat: %d", ext.Start)
	}
}

func TestBuddyAlignmentAndCoalescing(t *testing.T) {
	b := NewBuddy(nil)
	ids := []addrspace.ID{1, 2, 3, 4}
	for _, id := range ids {
		if err := b.Insert(id, 3); err != nil { // rounds to 4
			t.Fatal(err)
		}
		ext, _ := b.Space().Extent(id)
		if ext.Start%4 != 0 {
			t.Fatalf("block %d misaligned at %d", id, ext.Start)
		}
	}
	if b.Arena() < 16 {
		t.Fatalf("arena = %d", b.Arena())
	}
	for _, id := range ids {
		if err := b.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	// Everything freed: full coalescing back to one arena-order block.
	top := 0
	for k := 0; int64(1)<<uint(k) <= b.Arena(); k++ {
		if n := b.FreeBlocks(k); n > 0 {
			if int64(1)<<uint(k) != b.Arena() {
				t.Fatalf("expected one arena-sized free block, found order-%d blocks", k)
			}
			top += n
		}
	}
	if top != 1 {
		t.Fatalf("free arena blocks = %d", top)
	}
}

func TestBuddyRounding(t *testing.T) {
	if orderFor(1) != 0 || orderFor(2) != 1 || orderFor(3) != 2 || orderFor(4) != 2 || orderFor(5) != 3 {
		t.Fatal("orderFor wrong")
	}
}

func TestLogCompactCompacts(t *testing.T) {
	m := trace.NewMetrics()
	a := NewLogCompact(m)
	// Interior holes: insert small objects, delete the middle ones.
	for i := int64(1); i <= 10; i++ {
		_ = a.Insert(addrspace.ID(i), 10)
	}
	for i := int64(2); i <= 9; i++ {
		_ = a.Delete(addrspace.ID(i))
	}
	// footprint 100 vs V=20: compaction must have fired.
	if a.Compactions() == 0 {
		t.Fatal("no compaction despite 5x slack")
	}
	if a.Footprint() > 2*a.Volume() {
		t.Fatalf("footprint %d > 2V=%d after compaction", a.Footprint(), 2*a.Volume())
	}
	// Packed: objects contiguous from 0.
	var pos int64
	a.Space().ForEach(func(id addrspace.ID, ext addrspace.Extent) {
		if ext.Start != pos {
			t.Fatalf("object %d at %d, want %d (not packed)", id, ext.Start, pos)
		}
		pos = ext.End()
	})
}

func TestClassGapInvariants(t *testing.T) {
	a := NewClassGap(nil)
	rng := rand.New(rand.NewPCG(5, 6))
	live := []addrspace.ID{}
	next := addrspace.ID(1)
	for op := 0; op < 4000; op++ {
		if len(live) == 0 || rng.IntN(5) < 3 {
			size := int64(1 + rng.Int64N(100))
			if err := a.Insert(next, size); err != nil {
				t.Fatalf("op %d insert: %v", op, err)
			}
			live = append(live, next)
			next++
		} else {
			i := rng.IntN(len(live))
			if err := a.Delete(live[i]); err != nil {
				t.Fatalf("op %d delete: %v", op, err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if op%101 == 0 {
			if err := a.Space().Verify(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			if err := checkClassOrder(a); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
	// Footprint bound: padded volume at most 2V, blocks at most 2x padded.
	if f := a.Footprint(); f > 4*a.Volume()+64 {
		t.Fatalf("footprint %d too large for V=%d", f, a.Volume())
	}
}

// checkClassOrder verifies objects appear in ascending padded-class order
// by address.
func checkClassOrder(a *ClassGap) error {
	lastClass := -1
	var err error
	a.Space().ForEach(func(id addrspace.ID, ext addrspace.Extent) {
		c := a.meta[id].class
		if c < lastClass {
			err = errClassOrder
		}
		lastClass = c
	})
	return err
}

var errClassOrder = &classOrderErr{}

type classOrderErr struct{}

func (*classOrderErr) Error() string { return "classgap: class order violated" }

// TestClassGapDisplacementChain forces the recursive displacement and
// verifies its unit-cost geometric behavior.
func TestClassGapDisplacementChain(t *testing.T) {
	m := trace.NewMetrics()
	a := NewClassGap(m)
	// One object per class 1..6, then many size-1 inserts.
	for c := 1; c <= 6; c++ {
		if err := a.Insert(addrspace.ID(c), int64(1)<<uint(c)); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(100); i < 400; i++ {
		if err := a.Insert(addrspace.ID(i), 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Space().Verify(); err != nil {
		t.Fatal(err)
	}
	// Amortized unit cost per insert must be O(1): geometric series.
	ratio := m.Meter.Ratio("unit")
	if ratio > 3 {
		t.Fatalf("classgap unit ratio %v should be O(1)", ratio)
	}
}

// TestBaselinesQuick cross-validates every baseline against random
// workloads with substrate verification.
func TestBaselinesQuick(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		for _, a := range allAllocators(nil) {
			churn := &workload.Churn{Seed: seed, Sizes: workload.Pareto{Min: 1, Max: 128, Alpha: 1.3}, TargetVolume: 800}
			if _, err := workload.Drive(a, churn, 400); err != nil {
				t.Logf("%s: %v", a.Name(), err)
				return false
			}
			if err := spaceOf(a).Verify(); err != nil {
				t.Logf("%s: %v", a.Name(), err)
				return false
			}
			if a.Volume() != churn.LiveVolume() {
				t.Logf("%s: volume mismatch", a.Name())
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 15})
	if err != nil {
		t.Fatal(err)
	}
}
