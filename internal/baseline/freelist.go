package baseline

import (
	"sort"

	"realloc/internal/addrspace"
	"realloc/internal/trace"
)

// fitPolicy selects a gap from a free list.
type fitPolicy int

const (
	firstFit fitPolicy = iota
	bestFit
	nextFit
)

// FreeListAllocator is a classic no-move allocator over a sorted free
// list. It never relocates objects, so deallocation holes can only be
// reused by later requests that happen to fit — the regime in which the
// memory-allocation lower bounds bite.
type FreeListAllocator struct {
	base
	policy fitPolicy
	name   string
	free   []addrspace.Extent // sorted by Start, disjoint, non-adjacent
	end    int64              // bump pointer past the last placement
	rover  int64              // next-fit scan position
}

// NewFirstFit returns a first-fit allocator.
func NewFirstFit(rec trace.Recorder) *FreeListAllocator {
	return &FreeListAllocator{base: newBase(rec), policy: firstFit, name: "firstfit"}
}

// NewBestFit returns a best-fit allocator.
func NewBestFit(rec trace.Recorder) *FreeListAllocator {
	return &FreeListAllocator{base: newBase(rec), policy: bestFit, name: "bestfit"}
}

// NewNextFit returns a next-fit (roving first-fit) allocator.
func NewNextFit(rec trace.Recorder) *FreeListAllocator {
	return &FreeListAllocator{base: newBase(rec), policy: nextFit, name: "nextfit"}
}

// Name implements Allocator.
func (a *FreeListAllocator) Name() string { return a.name }

// Insert places the object in the chosen gap, or at the end when no gap
// fits.
func (a *FreeListAllocator) Insert(id addrspace.ID, size int64) error {
	pos, ok := a.take(size)
	if !ok {
		pos = a.end
	}
	if err := a.place(id, addrspace.Extent{Start: pos, Size: size}); err != nil {
		return err
	}
	if pos+size > a.end {
		a.end = pos + size
	}
	a.emitOpEnd()
	return nil
}

// Delete frees the object's extent back to the free list.
func (a *FreeListAllocator) Delete(id addrspace.ID) error {
	ext, err := a.remove(id)
	if err != nil {
		return err
	}
	a.release(ext)
	a.emitOpEnd()
	return nil
}

// take finds and claims a gap of at least size cells per the policy.
func (a *FreeListAllocator) take(size int64) (int64, bool) {
	pick := -1
	switch a.policy {
	case firstFit:
		for i, g := range a.free {
			if g.Size >= size {
				pick = i
				break
			}
		}
	case bestFit:
		var bestSz int64 = 1<<62 - 1
		for i, g := range a.free {
			if g.Size >= size && g.Size < bestSz {
				bestSz = g.Size
				pick = i
			}
		}
	case nextFit:
		for i, g := range a.free {
			if g.Start >= a.rover && g.Size >= size {
				pick = i
				break
			}
		}
		if pick < 0 {
			for i, g := range a.free {
				if g.Size >= size {
					pick = i
					break
				}
			}
		}
	}
	if pick < 0 {
		return 0, false
	}
	g := a.free[pick]
	pos := g.Start
	if g.Size == size {
		a.free = append(a.free[:pick], a.free[pick+1:]...)
	} else {
		a.free[pick] = addrspace.Extent{Start: g.Start + size, Size: g.Size - size}
	}
	a.rover = pos + size
	return pos, true
}

// release returns ext to the free list, merging neighbors. Free space at
// the very end is trimmed and the bump pointer retreats, so the footprint
// can shrink when the last objects disappear.
func (a *FreeListAllocator) release(ext addrspace.Extent) {
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].Start >= ext.Start })
	a.free = append(a.free, addrspace.Extent{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = ext
	// Merge with predecessor and successor.
	if i > 0 && a.free[i-1].End() == a.free[i].Start {
		a.free[i-1].Size += a.free[i].Size
		a.free = append(a.free[:i], a.free[i+1:]...)
		i--
	}
	if i+1 < len(a.free) && a.free[i].End() == a.free[i+1].Start {
		a.free[i].Size += a.free[i+1].Size
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	// Trim a trailing gap.
	if n := len(a.free); n > 0 && a.free[n-1].End() >= a.end {
		a.end = a.free[n-1].Start
		a.free = a.free[:n-1]
	}
	if a.rover > a.end {
		a.rover = 0
	}
}

// FreeVolume returns the total size of reusable gaps (tests).
func (a *FreeListAllocator) FreeVolume() int64 {
	var v int64
	for _, g := range a.free {
		v += g.Size
	}
	return v
}
