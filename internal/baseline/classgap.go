package baseline

import (
	"fmt"
	"sort"

	"realloc/internal/addrspace"
	"realloc/internal/trace"
)

// ClassGap reconstructs the size-class reallocator of Bender, Fekete,
// Kamphans and Schweer (2009) as sketched in the paper's Section 2
// intuition: object sizes round up to powers of two; blocks of equal-class
// objects are kept in ascending class order; inserting into a full class
// displaces the first object of the next nonempty class and recursively
// reinserts it. The per-unit-volume displacement costs form a geometric
// series, giving O(1) amortized reallocation under unit cost — but a
// single insert can move one object of every larger class, which is why
// the strategy is only Θ(log ∆)-competitive under linear cost.
//
// The 2009 paper is not public here; deletions (move-last-into-hole plus a
// footprint-triggered compaction) are our reconstruction and are
// documented as such in DESIGN.md.
type ClassGap struct {
	base
	blocks   map[int]*cgBlock
	classes  []int // sorted classes with nonempty blocks
	meta     map[addrspace.ID]cgMeta
	padVol   int64 // live volume after rounding to powers of two
	compacts int64
	// Threshold triggers compaction at footprint > Threshold*padVol; 0
	// means 2.
	Threshold float64
}

type cgMeta struct {
	class int
	seq   int64 // index within the block, offset by the block's popped count
}

type cgBlock struct {
	class  int
	start  int64
	ids    []addrspace.ID
	popped int64 // number of popFront operations, for stable seq numbers
}

func (b *cgBlock) slot() int64 { return int64(1) << uint(b.class) }
func (b *cgBlock) end() int64  { return b.start + int64(len(b.ids))*b.slot() }

// posOf returns the slot start of the i-th object.
func (b *cgBlock) posOf(i int) int64 { return b.start + int64(i)*b.slot() }

// NewClassGap returns an empty ClassGap allocator.
func NewClassGap(rec trace.Recorder) *ClassGap {
	return &ClassGap{
		base:      newBase(rec),
		blocks:    make(map[int]*cgBlock),
		meta:      make(map[addrspace.ID]cgMeta),
		Threshold: 2,
	}
}

// Name implements Allocator.
func (c *ClassGap) Name() string { return "classgap" }

// Compactions returns how many full compactions have run.
func (c *ClassGap) Compactions() int64 { return c.compacts }

// PaddedVolume returns the live volume after power-of-two rounding.
func (c *ClassGap) PaddedVolume() int64 { return c.padVol }

// Insert places the object in its padded size class.
func (c *ClassGap) Insert(id addrspace.ID, size int64) error {
	k := orderFor(size)
	if err := c.makeRoom(k); err != nil {
		return err
	}
	blk := c.block(k)
	pos := blk.end()
	if err := c.place(id, addrspace.Extent{Start: pos, Size: size}); err != nil {
		return err
	}
	c.meta[id] = cgMeta{class: k, seq: int64(len(blk.ids)) + blk.popped}
	blk.ids = append(blk.ids, id)
	c.padVol += blk.slot()
	if err := c.maybeCompact(); err != nil {
		return err
	}
	c.emitOpEnd()
	return nil
}

// Delete fills the hole with the block's last object (one move) and may
// trigger a compaction.
func (c *ClassGap) Delete(id addrspace.ID) error {
	m, ok := c.meta[id]
	if !ok {
		return fmt.Errorf("classgap: delete of unknown object %d", id)
	}
	blk := c.blocks[m.class]
	i := int(m.seq - blk.popped)
	if i < 0 || i >= len(blk.ids) || blk.ids[i] != id {
		return fmt.Errorf("classgap: index desync for object %d", id)
	}
	if _, err := c.remove(id); err != nil {
		return err
	}
	delete(c.meta, id)
	c.padVol -= blk.slot()
	last := len(blk.ids) - 1
	if i != last {
		moved := blk.ids[last]
		if err := c.move(moved, blk.posOf(i)); err != nil {
			return err
		}
		blk.ids[i] = moved
		mm := c.meta[moved]
		mm.seq = int64(i) + blk.popped
		c.meta[moved] = mm
	}
	blk.ids = blk.ids[:last]
	if len(blk.ids) == 0 {
		c.dropClass(m.class)
	}
	if err := c.maybeCompact(); err != nil {
		return err
	}
	c.emitOpEnd()
	return nil
}

// block returns (creating if needed) the class-k block; a new block starts
// at the end of the last nonempty block of a smaller class.
func (c *ClassGap) block(k int) *cgBlock {
	if blk, ok := c.blocks[k]; ok {
		return blk
	}
	start := int64(0)
	for _, cl := range c.classes {
		if cl < k {
			start = c.blocks[cl].end()
		}
	}
	blk := &cgBlock{class: k, start: start}
	c.blocks[k] = blk
	i := sort.SearchInts(c.classes, k)
	c.classes = append(c.classes, 0)
	copy(c.classes[i+1:], c.classes[i:])
	c.classes[i] = k
	return blk
}

// dropClass removes an empty block.
func (c *ClassGap) dropClass(k int) {
	delete(c.blocks, k)
	i := sort.SearchInts(c.classes, k)
	if i < len(c.classes) && c.classes[i] == k {
		c.classes = append(c.classes[:i], c.classes[i+1:]...)
	}
}

// nextNonempty returns the smallest class > k with a block.
func (c *ClassGap) nextNonempty(k int) (*cgBlock, bool) {
	i := sort.SearchInts(c.classes, k+1)
	if i < len(c.classes) {
		return c.blocks[c.classes[i]], true
	}
	return nil, false
}

// makeRoom guarantees a free slot after block k's end, displacing the
// first object of the next nonempty class (and recursively reinserting it
// into its own class) when the corridor is too tight.
func (c *ClassGap) makeRoom(k int) error {
	blk := c.block(k)
	next, ok := c.nextNonempty(k)
	if !ok {
		return nil // open corridor to infinity
	}
	if next.start-blk.end() >= blk.slot() {
		return nil
	}
	// Displace the first object of the next nonempty block.
	victim := next.ids[0]
	next.ids = next.ids[1:]
	next.popped++
	next.start += next.slot()
	if err := c.appendTo(next.class, victim); err != nil {
		return err
	}
	if next.start-blk.end() < blk.slot() {
		return fmt.Errorf("classgap: displacement of class %d freed insufficient room for class %d", next.class, k)
	}
	return nil
}

// appendTo reinserts a displaced object at the end of its class block,
// recursively making room first.
func (c *ClassGap) appendTo(k int, id addrspace.ID) error {
	if err := c.makeRoom(k); err != nil {
		return err
	}
	blk := c.block(k)
	if err := c.move(id, blk.end()); err != nil {
		return err
	}
	c.meta[id] = cgMeta{class: k, seq: int64(len(blk.ids)) + blk.popped}
	blk.ids = append(blk.ids, id)
	return nil
}

// maybeCompact packs all blocks contiguously from 0 when the footprint
// exceeds Threshold times the padded volume.
func (c *ClassGap) maybeCompact() error {
	thr := c.Threshold
	if thr == 0 {
		thr = 2
	}
	end := int64(0)
	for _, cl := range c.classes {
		if e := c.blocks[cl].end(); e > end {
			end = e
		}
	}
	if c.padVol == 0 || float64(end) < thr*float64(c.padVol) {
		return nil
	}
	c.compacts++
	pos := int64(0)
	for _, cl := range c.classes {
		blk := c.blocks[cl]
		blk.start = pos
		for i, id := range blk.ids {
			if err := c.move(id, blk.posOf(i)); err != nil {
				return err
			}
		}
		pos = blk.end()
	}
	return nil
}
