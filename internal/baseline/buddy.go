package baseline

import (
	"fmt"
	"math/bits"
	"sort"

	"realloc/internal/addrspace"
	"realloc/internal/trace"
)

// Buddy is a classic binary buddy allocator (Knowlton 1965): sizes round
// up to powers of two; blocks split recursively and coalesce with their
// buddies on free. It never moves objects. Internal fragmentation (up to
// 2x from rounding) plus external holes give it the familiar footprint
// overhead that reallocation eliminates.
type Buddy struct {
	base
	arena int64           // current arena size (power of two)
	free  map[int][]int64 // order -> sorted starts of free blocks
	order map[addrspace.ID]int
}

// NewBuddy returns an empty buddy allocator.
func NewBuddy(rec trace.Recorder) *Buddy {
	return &Buddy{
		base:  newBase(rec),
		free:  make(map[int][]int64),
		order: make(map[addrspace.ID]int),
	}
}

// Name implements Allocator.
func (b *Buddy) Name() string { return "buddy" }

// orderFor returns the buddy order for a size: the smallest k with
// 2^k >= size.
func orderFor(size int64) int {
	if size <= 1 {
		return 0
	}
	return bits.Len64(uint64(size - 1))
}

// Insert places the object in the lowest-address free block of its order,
// growing the arena when necessary.
func (b *Buddy) Insert(id addrspace.ID, size int64) error {
	k := orderFor(size)
	start, ok := b.alloc(k)
	for !ok {
		b.grow(k)
		start, ok = b.alloc(k)
	}
	if err := b.place(id, addrspace.Extent{Start: start, Size: size}); err != nil {
		return err
	}
	b.order[id] = k
	b.emitOpEnd()
	return nil
}

// Delete frees the object's block and coalesces buddies.
func (b *Buddy) Delete(id addrspace.ID) error {
	k, ok := b.order[id]
	if !ok {
		return fmt.Errorf("buddy: delete of unknown object %d", id)
	}
	ext, err := b.remove(id)
	if err != nil {
		return err
	}
	delete(b.order, id)
	b.insertFree(k, ext.Start)
	b.emitOpEnd()
	return nil
}

// alloc takes the lowest-address free block of order k, splitting larger
// blocks as needed.
func (b *Buddy) alloc(k int) (int64, bool) {
	for j := k; ; j++ {
		if int64(1)<<uint(j) > b.arena {
			return 0, false
		}
		blocks := b.free[j]
		if len(blocks) == 0 {
			continue
		}
		start := blocks[0]
		b.free[j] = blocks[1:]
		// Split back down to order k, freeing the upper halves.
		for j > k {
			j--
			b.insertFree(j, start+int64(1)<<uint(j))
		}
		return start, true
	}
}

// grow doubles the arena until a block of order k can exist, freeing the
// newly added upper halves.
func (b *Buddy) grow(k int) {
	if b.arena == 0 {
		b.arena = int64(1) << uint(k)
		b.insertFree(k, 0)
		return
	}
	// Doubling the arena adds a free block equal to the old arena size.
	oldOrder := bits.Len64(uint64(b.arena)) - 1
	b.insertFree(oldOrder, b.arena)
	b.arena *= 2
	if int64(1)<<uint(k) > b.arena {
		b.grow(k)
	}
}

// insertFree adds a free block, coalescing with its buddy recursively.
func (b *Buddy) insertFree(k int, start int64) {
	size := int64(1) << uint(k)
	buddy := start ^ size
	blocks := b.free[k]
	i := sort.Search(len(blocks), func(i int) bool { return blocks[i] >= buddy })
	if i < len(blocks) && blocks[i] == buddy && int64(1)<<uint(k+1) <= b.arena {
		b.free[k] = append(blocks[:i], blocks[i+1:]...)
		if buddy < start {
			start = buddy
		}
		b.insertFree(k+1, start)
		return
	}
	i = sort.Search(len(blocks), func(i int) bool { return blocks[i] >= start })
	blocks = append(blocks, 0)
	copy(blocks[i+1:], blocks[i:])
	blocks[i] = start
	b.free[k] = blocks
}

// FreeBlocks returns the number of free blocks of order k (tests).
func (b *Buddy) FreeBlocks(k int) int { return len(b.free[k]) }

// Arena returns the current arena size (tests).
func (b *Buddy) Arena() int64 { return b.arena }
