// Package baseline implements the comparator allocators the paper argues
// against:
//
//   - No-move allocators (First Fit, Best Fit, Next Fit, Buddy), which
//     suffer the classic Ω(log)-factor footprint blowup because they can
//     never consolidate holes (Section 1, Luby et al. / Robson bounds).
//   - LogCompact, the logging-and-compacting reallocator: (2,2)-competitive
//     under linear cost but Θ(∆)-amortized under unit cost (Section 2
//     intuition).
//   - ClassGap, a reconstruction of the size-class/gap reallocator of
//     Bender et al. 2009 sketched in Section 2: O(1) amortized moves under
//     unit cost but Θ(log ∆)-competitive under linear cost.
//
// All baselines drive the same address-space substrate and emit the same
// trace events as the core reallocators, so one metrics pipeline prices
// every contender identically.
package baseline

import (
	"fmt"

	"realloc/internal/addrspace"
	"realloc/internal/trace"
)

// Allocator is the common surface of every baseline. It matches
// workload.Target.
type Allocator interface {
	Insert(id addrspace.ID, size int64) error
	Delete(id addrspace.ID) error
	Footprint() int64
	Volume() int64
	Name() string
}

// base carries the plumbing shared by all baselines.
type base struct {
	space *addrspace.Space
	rec   trace.Recorder
	vol   int64
}

func newBase(rec trace.Recorder) base {
	if rec == nil {
		rec = trace.Null{}
	}
	return base{space: addrspace.New(addrspace.RAM()), rec: rec}
}

// Footprint returns the largest allocated address.
func (b *base) Footprint() int64 { return b.space.MaxEnd() }

// Volume returns the total live volume.
func (b *base) Volume() int64 { return b.vol }

// Space exposes the substrate for tests.
func (b *base) Space() *addrspace.Space { return b.space }

func (b *base) emit(kind trace.Kind, id addrspace.ID, size, from, to int64) {
	b.rec.Record(trace.Event{
		Kind: kind, ID: int64(id), Size: size, From: from, To: to,
		Footprint: b.space.MaxEnd(), Volume: b.vol,
	})
}

func (b *base) emitOpEnd() {
	b.rec.Record(trace.Event{
		Kind: trace.KOpEnd, From: b.space.MaxEnd(),
		Footprint: b.space.MaxEnd(), Volume: b.vol,
	})
}

// place writes an object and emits the allocation event.
func (b *base) place(id addrspace.ID, ext addrspace.Extent) error {
	if err := b.space.Place(id, ext); err != nil {
		return err
	}
	b.vol += ext.Size
	b.emit(trace.KInsert, id, ext.Size, 0, ext.Start)
	return nil
}

// move relocates an object and emits the reallocation event.
func (b *base) move(id addrspace.ID, to int64) error {
	ext, ok := b.space.Extent(id)
	if !ok {
		return fmt.Errorf("baseline: move of unknown object %d", id)
	}
	if ext.Start == to {
		return nil
	}
	if err := b.space.Move(id, to); err != nil {
		return err
	}
	b.emit(trace.KMove, id, ext.Size, ext.Start, to)
	return nil
}

// remove frees an object and emits the delete event.
func (b *base) remove(id addrspace.ID) (addrspace.Extent, error) {
	ext, ok := b.space.Extent(id)
	if !ok {
		return ext, fmt.Errorf("baseline: delete of unknown object %d", id)
	}
	if err := b.space.Remove(id); err != nil {
		return ext, err
	}
	b.vol -= ext.Size
	b.emit(trace.KDelete, id, ext.Size, 0, 0)
	return ext, nil
}
