// Package defrag implements the cost-oblivious defragmentation corollary
// (Theorem 2.7): given objects occupying at most (1+ε)·V space and an
// arbitrary comparison function, sort the objects physically using at most
// (1+ε)·V + ∆ space and O((1/ε)·log(1/ε)) amortized moves per object —
// versus the naïve defragmenter's 2·V space.
//
// The construction uses the Section 2 reallocator as a black box planning
// structure over the array prefix. Every placement the reallocator decides
// is mirrored as a physical move on the caller's address space:
//
//  1. crunch all objects into the rightmost V cells, leaving a ⌊εV⌋ prefix
//     free;
//  2. feed suffix objects left-to-right through a ∆-sized scratch slot
//     into the reallocator-managed prefix;
//  3. drain the prefix in reverse sorted order, rebuilding the suffix
//     right-to-left in sorted order (again via the scratch slot, so the
//     reallocator's compaction never collides with the object in transit).
package defrag

import (
	"errors"
	"fmt"
	"sort"

	"realloc/internal/addrspace"
	"realloc/internal/core"
	"realloc/internal/trace"
)

// ErrTooSparse reports an input allocation wider than (1+ε)·V, violating
// Theorem 2.7's precondition.
var ErrTooSparse = errors.New("defrag: input allocation exceeds (1+eps)*V")

// Stats summarizes a defragmentation run.
type Stats struct {
	Objects            int
	Volume             int64
	Delta              int64
	PeakFootprint      int64
	SpaceBudget        int64 // (1+eps)V + Delta
	TotalMoves         int64
	MaxMovesPerObject  int64
	MeanMovesPerObject float64
}

// mirror replays the planning reallocator's placements as physical moves
// on the real space and tallies per-object move counts.
type mirror struct {
	space *addrspace.Space
	moves map[addrspace.ID]int64
	total int64
	peak  int64
	err   error
}

func (m *mirror) Record(e trace.Event) {
	if m.err != nil {
		return
	}
	switch e.Kind {
	case trace.KInsert, trace.KMove:
		id := addrspace.ID(e.ID)
		cur, ok := m.space.Extent(id)
		if !ok {
			m.err = fmt.Errorf("defrag: planner placed unknown object %d", id)
			return
		}
		if cur.Start == e.To {
			return
		}
		if err := m.space.Move(id, e.To); err != nil {
			m.err = fmt.Errorf("defrag: mirroring planner move of %d to %d: %w", id, e.To, err)
			return
		}
		m.bump(id)
	}
}

func (m *mirror) bump(id addrspace.ID) {
	m.moves[id]++
	m.total++
	if fp := m.space.MaxEnd(); fp > m.peak {
		m.peak = fp
	}
}

// move relocates an object directly (crunch/scratch/suffix moves).
func (m *mirror) move(id addrspace.ID, to int64) error {
	if m.err != nil {
		return m.err
	}
	cur, ok := m.space.Extent(id)
	if !ok {
		return fmt.Errorf("defrag: move of unknown object %d", id)
	}
	if cur.Start == to {
		return nil
	}
	if err := m.space.Move(id, to); err != nil {
		return fmt.Errorf("defrag: moving %d to %d: %w", id, to, err)
	}
	m.bump(id)
	return nil
}

// Sort physically sorts all objects of sp by less, packing them
// contiguously into [⌊εV⌋, ⌊εV⌋+V) in ascending order. sp must use RAM
// semantics (the Section 2 algorithm assumes memmove-style moves).
func Sort(sp *addrspace.Space, less func(a, b addrspace.ID) bool, eps float64) (Stats, error) {
	if eps <= 0 || eps > 1 {
		return Stats{}, fmt.Errorf("defrag: eps %v out of (0,1]", eps)
	}
	type obj struct {
		id   addrspace.ID
		ext  addrspace.Extent
		size int64
	}
	var objs []obj
	var vol, delta int64
	sp.ForEach(func(id addrspace.ID, ext addrspace.Extent) {
		objs = append(objs, obj{id: id, ext: ext, size: ext.Size})
		vol += ext.Size
		if ext.Size > delta {
			delta = ext.Size
		}
	})
	st := Stats{Objects: len(objs), Volume: vol, Delta: delta}
	if len(objs) == 0 {
		return st, nil
	}
	bound := int64(float64(vol)*(1+eps)) + 1
	st.SpaceBudget = bound + delta
	if sp.MaxEnd() > bound {
		return st, fmt.Errorf("%w: footprint %d > %d", ErrTooSparse, sp.MaxEnd(), bound)
	}

	m := &mirror{space: sp, moves: make(map[addrspace.ID]int64), peak: sp.MaxEnd()}
	prefix := int64(eps * float64(vol)) // ⌊εV⌋
	suffixEnd := prefix + vol
	scratch := suffixEnd // ∆ cells of working space

	// Phase 1: crunch everything into [prefix, suffixEnd), rightmost
	// object first.
	cursor := suffixEnd
	for i := len(objs) - 1; i >= 0; i-- {
		cursor -= objs[i].size
		if err := m.move(objs[i].id, cursor); err != nil {
			return st, err
		}
	}

	// Phase 2: feed suffix objects (left to right) through the scratch
	// slot into the reallocator-managed prefix.
	planner, err := core.New(core.Config{Epsilon: eps, Variant: core.Amortized, Recorder: m})
	if err != nil {
		return st, err
	}
	for _, o := range objs {
		if err := m.move(o.id, scratch); err != nil {
			return st, err
		}
		if err := planner.Insert(o.id, o.size); err != nil {
			return st, fmt.Errorf("defrag: planner insert: %w", err)
		}
		if m.err != nil {
			return st, m.err
		}
	}

	// Phase 3: extract in reverse sorted order, rebuilding the suffix
	// right-to-left so it ends fully sorted ascending.
	order := make([]addrspace.ID, len(objs))
	sizes := make(map[addrspace.ID]int64, len(objs))
	for i, o := range objs {
		order[i] = o.id
		sizes[o.id] = o.size
	}
	sort.Slice(order, func(i, j int) bool { return less(order[i], order[j]) })
	front := suffixEnd
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		if err := m.move(id, scratch); err != nil {
			return st, err
		}
		if err := planner.Delete(id); err != nil {
			return st, fmt.Errorf("defrag: planner delete: %w", err)
		}
		if m.err != nil {
			return st, m.err
		}
		front -= sizes[id]
		if err := m.move(id, front); err != nil {
			return st, err
		}
	}

	st.PeakFootprint = m.peak
	st.TotalMoves = m.total
	for _, n := range m.moves {
		if n > st.MaxMovesPerObject {
			st.MaxMovesPerObject = n
		}
	}
	st.MeanMovesPerObject = float64(m.total) / float64(len(objs))
	return st, nil
}

// NaiveSort is the trivial 2·V-space defragmenter: pack everything into
// [V, 2V), then place each object at its sorted position in [0, V).
// Exactly two moves per object, but double the working space.
func NaiveSort(sp *addrspace.Space, less func(a, b addrspace.ID) bool) (Stats, error) {
	type obj struct {
		id   addrspace.ID
		size int64
	}
	var objs []obj
	var vol, delta int64
	sp.ForEach(func(id addrspace.ID, ext addrspace.Extent) {
		objs = append(objs, obj{id: id, size: ext.Size})
		vol += ext.Size
		if ext.Size > delta {
			delta = ext.Size
		}
	})
	st := Stats{Objects: len(objs), Volume: vol, Delta: delta, SpaceBudget: 2 * vol}
	if len(objs) == 0 {
		return st, nil
	}
	m := &mirror{space: sp, moves: make(map[addrspace.ID]int64), peak: sp.MaxEnd()}
	// Pack into [V, 2V), rightmost first.
	cursor := 2 * vol
	for i := len(objs) - 1; i >= 0; i-- {
		cursor -= objs[i].size
		if err := m.move(objs[i].id, cursor); err != nil {
			return st, err
		}
	}
	order := make([]addrspace.ID, len(objs))
	for i, o := range objs {
		order[i] = o.id
	}
	sort.Slice(order, func(i, j int) bool { return less(order[i], order[j]) })
	sizes := make(map[addrspace.ID]int64, len(objs))
	for _, o := range objs {
		sizes[o.id] = o.size
	}
	pos := int64(0)
	for _, id := range order {
		if err := m.move(id, pos); err != nil {
			return st, err
		}
		pos += sizes[id]
	}
	st.PeakFootprint = m.peak
	st.TotalMoves = m.total
	for _, n := range m.moves {
		if n > st.MaxMovesPerObject {
			st.MaxMovesPerObject = n
		}
	}
	st.MeanMovesPerObject = float64(m.total) / float64(len(objs))
	return st, nil
}
