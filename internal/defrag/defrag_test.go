package defrag

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"realloc/internal/addrspace"
)

// buildFragmented places n objects with the given sizes in a shuffled
// order with holes, keeping the footprint within (1+eps)V.
func buildFragmented(t *testing.T, rng *rand.Rand, sizes []int64, eps float64) (*addrspace.Space, int64) {
	t.Helper()
	var vol int64
	for _, s := range sizes {
		vol += s
	}
	gapBudget := int64(eps * 0.9 * float64(vol))
	sp := addrspace.New(addrspace.RAM())
	order := rng.Perm(len(sizes))
	pos := int64(0)
	for _, idx := range order {
		if gapBudget > 0 && rng.IntN(4) == 0 {
			g := 1 + rng.Int64N(gapBudget/3+1)
			if g > gapBudget {
				g = gapBudget
			}
			pos += g
			gapBudget -= g
		}
		if err := sp.Place(addrspace.ID(idx+1), addrspace.Extent{Start: pos, Size: sizes[idx]}); err != nil {
			t.Fatal(err)
		}
		pos += sizes[idx]
	}
	return sp, vol
}

func idLess(a, b addrspace.ID) bool { return a < b }

// assertSorted checks objects are packed contiguously in ascending ID
// order starting at the prefix boundary.
func assertSorted(t *testing.T, sp *addrspace.Space, vol int64, eps float64) {
	t.Helper()
	prefix := int64(eps * float64(vol))
	pos := prefix
	last := addrspace.ID(0)
	sp.ForEach(func(id addrspace.ID, ext addrspace.Extent) {
		if id < last {
			t.Fatalf("order violated: %d after %d", id, last)
		}
		if ext.Start != pos {
			t.Fatalf("object %d at %d, want %d (not packed)", id, ext.Start, pos)
		}
		last = id
		pos = ext.End()
	})
	if pos != prefix+vol {
		t.Fatalf("packed extent ends at %d, want %d", pos, prefix+vol)
	}
}

func TestSortBasic(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	sizes := make([]int64, 200)
	for i := range sizes {
		sizes[i] = 1 + rng.Int64N(50)
	}
	eps := 0.25
	sp, vol := buildFragmented(t, rng, sizes, eps)
	st, err := Sort(sp, idLess, eps)
	if err != nil {
		t.Fatal(err)
	}
	assertSorted(t, sp, vol, eps)
	if st.PeakFootprint > st.SpaceBudget {
		t.Fatalf("peak %d exceeded budget %d", st.PeakFootprint, st.SpaceBudget)
	}
	if st.Objects != 200 || st.Volume != vol {
		t.Fatalf("stats: %+v", st)
	}
	if st.MaxMovesPerObject < 1 || st.TotalMoves == 0 {
		t.Fatalf("move accounting: %+v", st)
	}
}

func TestSortEmptyAndSingle(t *testing.T) {
	sp := addrspace.New(addrspace.RAM())
	st, err := Sort(sp, idLess, 0.5)
	if err != nil || st.Objects != 0 {
		t.Fatalf("empty sort: %v %+v", err, st)
	}
	if err := sp.Place(1, addrspace.Extent{Start: 3, Size: 7}); err != nil {
		t.Fatal(err)
	}
	st, err = Sort(sp, idLess, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if st.Objects != 1 {
		t.Fatalf("single sort: %+v", st)
	}
	ext, _ := sp.Extent(1)
	if ext.Size != 7 {
		t.Fatalf("object resized: %v", ext)
	}
}

func TestSortRejectsEps(t *testing.T) {
	sp := addrspace.New(addrspace.RAM())
	if _, err := Sort(sp, idLess, 0); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := Sort(sp, idLess, 1.5); err == nil {
		t.Fatal("eps>1 accepted")
	}
}

func TestSortRejectsTooSparse(t *testing.T) {
	sp := addrspace.New(addrspace.RAM())
	_ = sp.Place(1, addrspace.Extent{Start: 0, Size: 10})
	_ = sp.Place(2, addrspace.Extent{Start: 100, Size: 10}) // footprint 110 >> (1+eps)*20
	_, err := Sort(sp, idLess, 0.25)
	if !errors.Is(err, ErrTooSparse) {
		t.Fatalf("want ErrTooSparse, got %v", err)
	}
}

func TestSortByReverseOrder(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	sizes := make([]int64, 100)
	for i := range sizes {
		sizes[i] = 1 + rng.Int64N(30)
	}
	sp, _ := buildFragmented(t, rng, sizes, 0.5)
	greater := func(a, b addrspace.ID) bool { return a > b }
	if _, err := Sort(sp, greater, 0.5); err != nil {
		t.Fatal(err)
	}
	last := addrspace.ID(1 << 30)
	sp.ForEach(func(id addrspace.ID, ext addrspace.Extent) {
		if id > last {
			t.Fatalf("descending order violated: %d after %d", id, last)
		}
		last = id
	})
}

func TestNaiveSort(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	sizes := make([]int64, 150)
	for i := range sizes {
		sizes[i] = 1 + rng.Int64N(40)
	}
	sp, vol := buildFragmented(t, rng, sizes, 0.4)
	st, err := NaiveSort(sp, idLess)
	if err != nil {
		t.Fatal(err)
	}
	// Packed at 0, sorted ascending.
	pos := int64(0)
	last := addrspace.ID(0)
	sp.ForEach(func(id addrspace.ID, ext addrspace.Extent) {
		if id < last || ext.Start != pos {
			t.Fatalf("naive sort result malformed at %d", id)
		}
		last = id
		pos = ext.End()
	})
	// Exactly two moves per object; peak near 2V.
	if st.MaxMovesPerObject != 2 {
		t.Fatalf("naive max moves = %d", st.MaxMovesPerObject)
	}
	if st.PeakFootprint < vol*3/2 {
		t.Fatalf("naive peak %d suspiciously small for V=%d", st.PeakFootprint, vol)
	}
}

// TestSortQuick is the Theorem 2.7 property test: random inputs, random
// eps; result sorted, space budget respected, amortized moves bounded by
// a constant times (1/eps)ln(1/eps).
func TestSortQuick(t *testing.T) {
	err := quick.Check(func(seed uint64, epsPick uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 77))
		eps := []float64{0.5, 0.25, 0.125}[int(epsPick)%3]
		n := 30 + rng.IntN(150)
		sizes := make([]int64, n)
		for i := range sizes {
			sizes[i] = 1 + rng.Int64N(64)
			if rng.IntN(10) == 0 {
				sizes[i] = 64 + rng.Int64N(128)
			}
		}
		sp, vol := buildFragmented(t, rng, sizes, eps)
		st, err := Sort(sp, idLess, eps)
		if err != nil {
			t.Log(err)
			return false
		}
		if st.PeakFootprint > st.SpaceBudget {
			t.Logf("peak %d > budget %d", st.PeakFootprint, st.SpaceBudget)
			return false
		}
		prefix := int64(eps * float64(vol))
		pos := prefix
		last := addrspace.ID(0)
		ok := true
		sp.ForEach(func(id addrspace.ID, ext addrspace.Extent) {
			if id < last || ext.Start != pos {
				ok = false
			}
			last = id
			pos = ext.End()
		})
		if !ok {
			t.Log("result not sorted/packed")
			return false
		}
		// Amortized move bound with a generous constant.
		bound := 40 * (1 / eps) * (1 + math.Log(1/eps))
		if st.MeanMovesPerObject > bound {
			t.Logf("mean moves %v > bound %v (eps=%v)", st.MeanMovesPerObject, bound, eps)
			return false
		}
		if err := sp.Verify(); err != nil {
			t.Log(err)
			return false
		}
		return true
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Fatal(err)
	}
}
